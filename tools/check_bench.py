#!/usr/bin/env python3
"""Regression gate over BENCH_fig6.json (ROADMAP item 1's acceptance hook).

Every bench_fig6 run records, for each `secure-projected` row, both the
batched-engine projection and its seed-schedule baseline measured in the
SAME run on the SAME machine, so the recorded speedup column is immune to
host speed and only moves when the engine/baseline ratio moves. This gate
fails the run if any row's speedup falls below the floor — i.e. if the
transfer crypto engine's win over the seed schedule regresses.

Usage: tools/check_bench.py BENCH_fig6.json [--min-speedup 5.0]
                                            [--mode secure-projected]
Exit status 0 = every row at or above the floor; nonzero prints each
offending row. Stdlib only.
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", help="path to BENCH_fig6.json")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="floor for every row's same-run speedup")
    parser.add_argument("--mode", default="secure-projected",
                        help="entry mode the gate applies to")
    args = parser.parse_args()

    with open(args.bench_json) as f:
        bench = json.load(f)

    rows = [e for e in bench.get("entries", []) if e.get("mode") == args.mode]
    if not rows:
        print(f"FAIL: no '{args.mode}' entries in {args.bench_json}")
        return 1

    failures = []
    worst = None
    for e in rows:
        baseline = e.get("wall_ms_baseline")
        wall = e.get("wall_ms")
        if baseline is None or not wall or wall <= 0:
            failures.append((e, None))
            continue
        speedup = baseline / wall
        if worst is None or speedup < worst[1]:
            worst = (e, speedup)
        if speedup < args.min_speedup:
            failures.append((e, speedup))

    if failures:
        for e, speedup in failures:
            shown = "missing baseline" if speedup is None else f"{speedup:.2f}x"
            print(f"FAIL: N={e.get('N')} D={e.get('D')} {args.mode}: {shown} "
                  f"< {args.min_speedup:.2f}x floor")
        return 1

    e, speedup = worst
    print(f"OK: {len(rows)} '{args.mode}' rows >= {args.min_speedup:.2f}x "
          f"(worst {speedup:.2f}x at N={e.get('N')} D={e.get('D')}, "
          f"block_size={bench.get('block_size')}, "
          f"transfer_workers={bench.get('transfer_workers')})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
