#!/usr/bin/env python3
"""Regression gate over BENCH_fig6.json (ROADMAP item 1's acceptance hook).

Every bench_fig6 run records, for each `secure-projected` row, both the
batched-engine projection and its seed-schedule baseline measured in the
SAME run on the SAME machine, so the recorded speedup column is immune to
host speed and only moves when the engine/baseline ratio moves. This gate
fails the run if any row's speedup falls below the floor — i.e. if the
transfer crypto engine's win over the seed schedule regresses.

With --ensemble-min-speedup the gate additionally pins the scenario-ensemble
amortization: every `cleartext-ensemble` row (wall_ms vs wall_ms_baseline =
K independent solo runs) must be at or above that floor.

With --ot-min-speedup the gate additionally pins the batched offline phase
(docs/offline-phase.md): every `secure-ot` row (wall_ms = node-pair triple
factory run, wall_ms_baseline = per-role IKNP baseline in the same run) must
be at or above that floor. The rows' base_ot_count / base_ot_count_baseline
and offline/overlap walls are printed as informational columns.

With --cleartext-max-wall-ms the gate additionally pins the flat-arena graph
plane's headline (ROADMAP item 3): every `cleartext` row with N >= 1,000,000
must finish within that absolute wall-clock budget. When the run produced no
such row (e.g. a reduced grid), the gate prints a named SKIP instead of
passing silently.

Row hygiene: a row whose wall_ms_baseline is 0 is SKIPPED by name (a zero
baseline means "no baseline measured this run", and dividing by it would
crash the gate); a row with missing or non-numeric wall_ms / wall_ms_baseline
is a FAILURE naming the offending row's N, D, and mode.

`secure-ha` rows (docs/ha.md) carry ha_control_bytes / ha_checkpoint_ms;
those are printed as informational columns — HA overhead vs the plain run,
heartbeat/control traffic, checkpoint wall time — and are never gated.

Usage: tools/check_bench.py BENCH_fig6.json [--min-speedup 5.0]
                                            [--mode secure-projected]
                                            [--ensemble-min-speedup 10.0]
                                            [--ot-min-speedup 3.0]
                                            [--cleartext-max-wall-ms 10000]
Exit status 0 = every gated row at or above its floor; nonzero prints each
offending row. Stdlib only.
"""

import argparse
import json
import sys


def is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def row_name(entry, mode) -> str:
    return f"N={entry.get('N')} D={entry.get('D')} mode={entry.get('mode', mode)}"


def gate_rows(rows, mode, floor):
    """Returns (failure_lines, skip_lines, worst) for one mode's rows."""
    failures = []
    skips = []
    worst = None
    for e in rows:
        baseline = e.get("wall_ms_baseline")
        wall = e.get("wall_ms")
        if not is_number(wall) or wall <= 0:
            failures.append(f"FAIL: {row_name(e, mode)}: malformed wall_ms {wall!r}")
            continue
        if not is_number(baseline):
            failures.append(
                f"FAIL: {row_name(e, mode)}: malformed wall_ms_baseline {baseline!r}")
            continue
        if baseline == 0:
            skips.append(f"SKIP: {row_name(e, mode)}: wall_ms_baseline == 0 "
                         "(no baseline measured); row not gated")
            continue
        speedup = baseline / wall
        if worst is None or speedup < worst[1]:
            worst = (e, speedup)
        if speedup < floor:
            failures.append(f"FAIL: {row_name(e, mode)}: {speedup:.2f}x "
                            f"< {floor:.2f}x floor")
    return failures, skips, worst


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", help="path to BENCH_fig6.json")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="floor for every row's same-run speedup")
    parser.add_argument("--mode", default="secure-projected",
                        help="entry mode the gate applies to")
    parser.add_argument("--ensemble-min-speedup", type=float, default=None,
                        help="when set, also gate 'cleartext-ensemble' rows "
                             "(wall vs K solo runs) at this amortization floor")
    parser.add_argument("--ot-min-speedup", type=float, default=None,
                        help="when set, also gate 'secure-ot' rows (triple "
                             "factory vs per-role IKNP baseline) at this floor")
    parser.add_argument("--cleartext-max-wall-ms", type=float, default=None,
                        help="when set, every 'cleartext' row with N >= 1e6 "
                             "must finish within this wall-clock budget (ms)")
    args = parser.parse_args()

    with open(args.bench_json) as f:
        bench = json.load(f)
    entries = bench.get("entries", [])

    rows = [e for e in entries if e.get("mode") == args.mode]
    if not rows:
        print(f"FAIL: no '{args.mode}' entries in {args.bench_json}")
        return 1
    failures, skips, worst = gate_rows(rows, args.mode, args.min_speedup)

    # HA overhead rows (mode "secure-ha", docs/ha.md): purely informational
    # — heartbeat traffic scales with wall time, not protocol work, so these
    # columns are printed but never gated.
    for e in entries:
        if not is_number(e.get("ha_control_bytes")):
            continue
        wall = e.get("wall_ms")
        plain = e.get("wall_ms_baseline")
        if is_number(wall) and is_number(plain) and plain > 0:
            overhead = f"{(wall / plain - 1.0) * 100.0:+.1f}% wall overhead vs plain"
        else:
            overhead = "no plain-run baseline"
        ckpt_ms = e.get("ha_checkpoint_ms")
        ckpt = f"{ckpt_ms / 1e3:.3f}" if is_number(ckpt_ms) else "?"
        print(f"ha: N={e.get('N')} D={e.get('D')}: {overhead}, "
              f"{e['ha_control_bytes'] / 1e6:.2f} MB heartbeat/control traffic, "
              f"{ckpt} s checkpointing (informational, not gated)")

    ensemble_rows = []
    if args.ensemble_min_speedup is not None:
        ensemble_rows = [e for e in entries if e.get("mode") == "cleartext-ensemble"]
        if not ensemble_rows:
            failures.append(f"FAIL: no 'cleartext-ensemble' entries in "
                            f"{args.bench_json} (ensemble gate requested)")
        else:
            ens_failures, ens_skips, ens_worst = gate_rows(
                ensemble_rows, "cleartext-ensemble", args.ensemble_min_speedup)
            failures += ens_failures
            skips += ens_skips
            if ens_worst is not None:
                e, speedup = ens_worst
                skips.append(f"ensemble: {len(ensemble_rows)} rows, worst "
                             f"{speedup:.2f}x amortization at N={e.get('N')} "
                             f"K={e.get('scenarios')} scenarios")

    if args.ot_min_speedup is not None:
        ot_rows = [e for e in entries if e.get("mode") == "secure-ot"]
        if not ot_rows:
            failures.append(f"FAIL: no 'secure-ot' entries in "
                            f"{args.bench_json} (OT gate requested)")
        else:
            ot_failures, ot_skips, ot_worst = gate_rows(
                ot_rows, "secure-ot", args.ot_min_speedup)
            failures += ot_failures
            skips += ot_skips
            for e in ot_rows:
                if is_number(e.get("base_ot_count")):
                    print(f"ot: N={e.get('N')} base OTs "
                          f"{e['base_ot_count']:.0f} (factory) vs "
                          f"{e.get('base_ot_count_baseline', 0):.0f} (per-role), "
                          f"offline {e.get('offline_ms', 0):.0f} ms, "
                          f"{e.get('overlap_ms', 0):.0f} ms overlapped with the "
                          "online phase (informational, not gated)")
            if ot_worst is not None:
                e, speedup = ot_worst
                skips.append(f"ot: {len(ot_rows)} rows, worst {speedup:.2f}x "
                             f"factory speedup at N={e.get('N')}")

    # Absolute wall-clock budget for the arena graph plane's large-N sweep
    # point (ROADMAP item 3: N=1M in single-digit seconds).
    if args.cleartext_max_wall_ms is not None:
        million_rows = [e for e in entries
                        if e.get("mode") == "cleartext"
                        and is_number(e.get("N")) and e.get("N") >= 1_000_000]
        if not million_rows:
            skips.append("SKIP: no 'cleartext' row with N >= 1,000,000 in "
                         f"{args.bench_json}; wall-clock gate not applied "
                         "(reduced sweep grid?)")
        for e in million_rows:
            wall = e.get("wall_ms")
            if not is_number(wall) or wall <= 0:
                failures.append(f"FAIL: {row_name(e, 'cleartext')}: "
                                f"malformed wall_ms {wall!r}")
            elif wall > args.cleartext_max_wall_ms:
                failures.append(f"FAIL: {row_name(e, 'cleartext')}: "
                                f"{wall:.0f} ms > "
                                f"{args.cleartext_max_wall_ms:.0f} ms budget")
            else:
                print(f"cleartext: N={e.get('N')} in {wall:.0f} ms "
                      f"(budget {args.cleartext_max_wall_ms:.0f} ms)")

    for line in skips:
        print(line)
    if failures:
        for line in failures:
            print(line)
        return 1

    if worst is None:
        print(f"FAIL: every '{args.mode}' row was skipped; nothing gated")
        return 1
    e, speedup = worst
    print(f"OK: {len(rows)} '{args.mode}' rows >= {args.min_speedup:.2f}x "
          f"(worst {speedup:.2f}x at N={e.get('N')} D={e.get('D')}, "
          f"block_size={bench.get('block_size')}, "
          f"transfer_workers={bench.get('transfer_workers')})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
