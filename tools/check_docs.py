#!/usr/bin/env python3
"""Documentation lint for the DStress repo.

Keeps README.md and docs/ honest against the code:

  1. Every relative markdown link resolves to an existing file, and every
     in-page anchor (#section) matches a real heading in its target.
  2. Every scenario file under examples/scenarios/ parses and validates
     (`dstress_run --check`).
  3. Every fenced scenario snippet in the markdown (a ```text block whose
     first directive is `network ...`) also parses and validates — docs
     can't drift from the parser.

Usage: tools/check_docs.py [--build-dir build]
Exit status 0 = clean; nonzero prints every failure.

Stdlib only; needs an existing build of examples/dstress_run for steps
2 and 3.
"""

import argparse
import pathlib
import re
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent
DOC_FILES = [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
FENCE_RE = re.compile(r"```([^\n`]*)\n(.*?)```", re.DOTALL)


def github_anchor(heading: str) -> str:
    """GitHub's heading -> anchor rule (lowercase, strip punctuation, dashes)."""
    anchor = heading.strip().lower()
    anchor = re.sub(r"[^\w\- ]", "", anchor)
    return anchor.replace(" ", "-")


def check_links(errors: list) -> None:
    for doc in DOC_FILES:
        text = doc.read_text()
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, anchor = target.partition("#")
            resolved = (doc.parent / path_part).resolve() if path_part else doc
            if not resolved.exists():
                errors.append(f"{doc.relative_to(REPO)}: broken link -> {target}")
                continue
            if anchor and resolved.suffix == ".md":
                anchors = {github_anchor(h) for h in HEADING_RE.findall(resolved.read_text())}
                if anchor not in anchors:
                    errors.append(f"{doc.relative_to(REPO)}: dead anchor -> {target}")


def run_check(dstress_run: pathlib.Path, scenario: pathlib.Path, label: str, errors: list) -> None:
    proc = subprocess.run(
        [str(dstress_run), "--check", str(scenario)], capture_output=True, text=True
    )
    if proc.returncode != 0:
        errors.append(f"{label}: dstress_run --check failed:\n{proc.stderr.strip()}")


def check_scenarios(dstress_run: pathlib.Path, errors: list) -> None:
    scenarios = sorted((REPO / "examples" / "scenarios").glob("*.scenario"))
    if not scenarios:
        errors.append("examples/scenarios/ contains no .scenario files")
    for scenario in scenarios:
        run_check(dstress_run, scenario, str(scenario.relative_to(REPO)), errors)


def check_snippets(dstress_run: pathlib.Path, errors: list) -> None:
    for doc in DOC_FILES:
        for i, (lang, body) in enumerate(FENCE_RE.findall(doc.read_text())):
            first = next((ln for ln in body.splitlines() if ln.strip()), "")
            if lang not in ("", "text") or not first.strip().startswith("network "):
                continue
            with tempfile.NamedTemporaryFile("w", suffix=".scenario", delete=False) as tmp:
                tmp.write(body)
                path = pathlib.Path(tmp.name)
            run_check(dstress_run, path, f"{doc.relative_to(REPO)} snippet #{i + 1}", errors)
            path.unlink()


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--build-dir", default="build")
    args = parser.parse_args()

    dstress_run = REPO / args.build_dir / "examples" / "dstress_run"
    errors: list = []
    check_links(errors)
    if dstress_run.exists():
        check_scenarios(dstress_run, errors)
        check_snippets(dstress_run, errors)
    else:
        errors.append(f"{dstress_run} not built; run cmake --build first")

    for error in errors:
        print(f"FAIL: {error}", file=sys.stderr)
    if not errors:
        count = sum(1 for _ in (REPO / "examples" / "scenarios").glob("*.scenario"))
        print(f"docs OK: {len(DOC_FILES)} markdown files linted, {count} scenarios validated")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
