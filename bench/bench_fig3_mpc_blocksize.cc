// Figure 3 (left): MPC computation time of the five circuit kinds —
// Initialization, EN step (D=100), EGJ step (D=100), Aggregation (N=100),
// Noising — as a function of the block size {8, 12, 16, 20}.
//
// Expected shape (paper §5.2): end-to-end completion time is linear in the
// block size, because GMW's total cost is quadratic but the members work in
// parallel. Absolute values differ from the paper (software simulation vs
// EC2 cluster); the block-size slope and the relative ordering of the
// circuits are the reproduced quantities.
//
// Also includes the dealer-vs-OT triple ablation called out in DESIGN.md:
// the EN step rerun with online IKNP OT-extension triples.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/core/vertex_program.h"
#include "src/dp/noise_circuit.h"
#include "src/mpc/sharing.h"

namespace dstress::bench {
namespace {

int DegreeBound() { return FullScale() ? 100 : 30; }
int AggNodes() { return FullScale() ? 100 : 100; }

// Initialization: the share-split + distribution of a node's initial state
// (2D value words) to its block. No MPC circuit — measured directly.
void BM_Initialization(benchmark::State& state) {
  int block_size = static_cast<int>(state.range(0));
  auto params = EnParams(DegreeBound());
  auto program = finance::MakeEnProgram(params);
  auto prg = crypto::ChaCha20Prg::FromSeed(1);
  mpc::BitVector bits(program.state_bits, 1);
  for (auto _ : state) {
    std::unique_ptr<net::Transport> net_owner = net::MakeSimTransport(block_size);
    net::Transport& net = *net_owner;
    auto shares = mpc::ShareBits(bits, block_size, prg);
    for (int m = 0; m < block_size; m++) {
      Bytes packed((shares[m].size() + 7) / 8);
      for (size_t i = 0; i < shares[m].size(); i++) {
        if (shares[m][i]) {
          packed[i / 8] |= 1 << (i % 8);
        }
      }
      net.Send(0, m, std::move(packed));
    }
    for (int m = 0; m < block_size; m++) {
      benchmark::DoNotOptimize(net.Recv(m, 0));
    }
    state.counters["bytes_per_node"] = net.AverageBytesPerNode();
  }
}

void RunCircuitBench(benchmark::State& state, const circuit::Circuit& circuit) {
  int block_size = static_cast<int>(state.range(0));
  for (auto _ : state) {
    BlockMpcResult result = RunBlockMpc(circuit, block_size);
    state.SetIterationTime(result.seconds);
    state.counters["bytes_per_node"] = result.bytes_per_node;
  }
  state.counters["and_gates"] = static_cast<double>(circuit.stats().num_and);
}

void BM_EnStep(benchmark::State& state) {
  auto program = finance::MakeEnProgram(EnParams(DegreeBound()));
  RunCircuitBench(state, core::BuildUpdateCircuit(program));
}

void BM_EgjStep(benchmark::State& state) {
  auto program = finance::MakeEgjProgram(EgjParams(DegreeBound()));
  RunCircuitBench(state, core::BuildUpdateCircuit(program));
}

void BM_Aggregation(benchmark::State& state) {
  auto program = finance::MakeEnProgram(EnParams(10));
  RunCircuitBench(state, core::BuildAggregateCircuit(program, AggNodes(), /*with_noise=*/false));
}

void BM_Noising(benchmark::State& state) {
  circuit::Builder b;
  dp::NoiseCircuitSpec spec;
  spec.alpha = 0.5;
  spec.magnitude_bits = 16;
  spec.threshold_bits = 16;
  circuit::Word total = b.InputWord(24);
  circuit::Word noise = dp::BuildGeometricNoise(b, spec, 24);
  b.OutputWord(b.Add(total, noise));
  RunCircuitBench(state, b.Build());
}

void BM_EnStepOtTriples(benchmark::State& state) {
  // Ablation: the same EN step with online OT-extension triples instead of
  // the dealer (simulated offline phase).
  auto program = finance::MakeEnProgram(EnParams(FullScale() ? 100 : 10));
  circuit::Circuit circuit = core::BuildUpdateCircuit(program);
  int block_size = static_cast<int>(state.range(0));
  for (auto _ : state) {
    BlockMpcResult result = RunBlockMpc(circuit, block_size, /*use_ot=*/true);
    state.SetIterationTime(result.seconds);
    state.counters["bytes_per_node"] = result.bytes_per_node;
  }
  state.counters["and_gates"] = static_cast<double>(circuit.stats().num_and);
}

#define BLOCK_SIZES Arg(8)->Arg(12)->Arg(16)->Arg(20)

BENCHMARK(BM_Initialization)->BLOCK_SIZES->Unit(benchmark::kMillisecond)->Iterations(3);
BENCHMARK(BM_EnStep)->BLOCK_SIZES->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
BENCHMARK(BM_EgjStep)->BLOCK_SIZES->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
BENCHMARK(BM_Aggregation)
    ->BLOCK_SIZES->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Iterations(1);
BENCHMARK(BM_Noising)->BLOCK_SIZES->Unit(benchmark::kMillisecond)->UseManualTime()->Iterations(1);
BENCHMARK(BM_EnStepOtTriples)
    ->Arg(8)
    ->Arg(12)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Iterations(1);

}  // namespace
}  // namespace dstress::bench

BENCHMARK_MAIN();
