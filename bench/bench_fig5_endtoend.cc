// Figure 5: end-to-end DStress runs of Eisenberg–Noe and
// Elliott–Golub–Jackson — completion time (left) and average per-node
// traffic (right) as a function of block size.
//
// Paper configuration: N = 100 vertices, degree bound D = 10, I = 7
// iterations, block sizes {8, 12, 16, 20}; observed completion time grows
// ~O(k^2) (each node both computes bigger MPCs and serves in more blocks)
// and per-node traffic grows similarly.
//
// Default run uses a reduced configuration (N = 40, D = 6, I = 5, blocks
// {4, 8, 12}) to finish in a few minutes; set DSTRESS_FULL=1 for the exact
// paper parameters. The O(k^2) time shape and the per-phase traffic split
// are preserved at either scale.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/runtime.h"
#include "src/finance/workload.h"
#include "src/graph/generators.h"

namespace dstress::bench {
namespace {

struct Config {
  int num_nodes;
  int degree_bound;
  int iterations;
  std::vector<int> block_sizes;
};

Config ActiveConfig() {
  if (FullScale()) {
    return Config{100, 10, 7, {8, 12, 16, 20}};
  }
  return Config{40, 6, 5, {4, 8, 12}};
}

template <typename MakeProgram, typename MakeStates>
void RunSeries(const char* name, const graph::Graph& g, const Config& config,
               MakeProgram make_program, MakeStates make_states) {
  for (int block_size : config.block_sizes) {
    core::RuntimeConfig rc;
    rc.block_size = block_size;
    rc.transfer_budget_alpha = 0.99;
    rc.dlog_range = 0;  // auto-size for negligible lookup failure
    rc.seed = 11;
    core::Runtime runtime(rc, g, make_program());
    core::RunMetrics metrics;
    int64_t tds = runtime.Run(make_states(), &metrics);
    std::printf(
        "%-4s B=%-3d time=%7.2f s  (init=%5.2f comp=%6.2f comm=%6.2f agg=%5.2f)  "
        "traffic/node=%7.2f MB  tds=%lld\n",
        name, block_size, metrics.total_seconds, metrics.init.seconds, metrics.compute.seconds,
        metrics.communicate.seconds, metrics.aggregate.seconds, metrics.avg_bytes_per_node / 1e6,
        static_cast<long long>(tds));
    std::fflush(stdout);
  }
}

void Run() {
  Config config = ActiveConfig();
  std::printf("# Figure 5: end-to-end runs, N=%d D=%d I=%d (%s scale)\n", config.num_nodes,
              config.degree_bound, config.iterations, FullScale() ? "paper" : "reduced");

  Rng rng(3);
  graph::CorePeripheryParams topo;
  topo.num_vertices = config.num_nodes;
  topo.core_size = config.num_nodes / 10 + 2;
  topo.core_density = 0.5;
  graph::Graph g =
      graph::CapDegree(graph::GenerateCorePeriphery(topo, rng), config.degree_bound);

  finance::WorkloadParams wp;
  wp.format.value_bits = 12;
  wp.format.frac_bits = 8;
  wp.core_size = topo.core_size;
  finance::ShockParams shock;
  shock.shocked_banks = {0, 1};

  {
    auto params = EnParams(config.degree_bound, config.iterations);
    finance::EnInstance instance = finance::MakeEnWorkload(g, wp, shock);
    RunSeries(
        "EN", g, config, [&] { return finance::MakeEnProgram(params); },
        [&] { return finance::MakeEnInitialStates(instance, params); });
  }
  {
    auto params = EgjParams(config.degree_bound, config.iterations);
    finance::EgjInstance instance = finance::MakeEgjWorkload(g, wp, shock);
    RunSeries(
        "EGJ", g, config, [&] { return finance::MakeEgjProgram(params); },
        [&] { return finance::MakeEgjInitialStates(instance, params); });
  }
  std::printf("# shape check: time and traffic grow ~O(k^2) with block size\n");
}

}  // namespace
}  // namespace dstress::bench

int main() {
  dstress::bench::Run();
  return 0;
}
