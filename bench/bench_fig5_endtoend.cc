// Figure 5: end-to-end DStress runs of Eisenberg–Noe and
// Elliott–Golub–Jackson — completion time (left) and average per-node
// traffic (right) as a function of block size.
//
// Paper configuration: N = 100 vertices, degree bound D = 10, I = 7
// iterations, block sizes {8, 12, 16, 20}; observed completion time grows
// ~O(k^2) (each node both computes bigger MPCs and serves in more blocks)
// and per-node traffic grows similarly.
//
// Default run uses a reduced configuration (N = 40, D = 6, I = 5, blocks
// {4, 8, 12}) to finish in a few minutes; set DSTRESS_FULL=1 for the exact
// paper parameters. The O(k^2) time shape and the per-phase traffic split
// are preserved at either scale.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/engine/engine.h"

namespace dstress::bench {
namespace {

struct Config {
  int num_nodes;
  int degree_bound;
  int iterations;
  std::vector<int> block_sizes;
};

Config ActiveConfig() {
  if (FullScale()) {
    return Config{100, 10, 7, {8, 12, 16, 20}};
  }
  return Config{40, 6, 5, {4, 8, 12}};
}

void RunSeries(const char* name, engine::ContagionModel model, const engine::RunSpec& base,
               const Config& config) {
  for (int block_size : config.block_sizes) {
    engine::RunSpec spec = base;
    spec.model = model;
    spec.block_size = block_size;
    engine::RunReport report = engine::Engine(spec).Run();
    const core::RunMetrics& metrics = report.metrics;
    std::printf(
        "%-4s B=%-3d time=%7.2f s  (init=%5.2f comp=%6.2f comm=%6.2f agg=%5.2f)  "
        "traffic/node=%7.2f MB  tds=%lld\n",
        name, block_size, metrics.total_seconds, metrics.init.seconds, metrics.compute.seconds,
        metrics.communicate.seconds, metrics.aggregate.seconds, metrics.avg_bytes_per_node / 1e6,
        static_cast<long long>(report.released));
    std::fflush(stdout);
  }
}

void Run() {
  Config config = ActiveConfig();
  std::printf("# Figure 5: end-to-end runs, N=%d D=%d I=%d (%s scale)\n", config.num_nodes,
              config.degree_bound, config.iterations, FullScale() ? "paper" : "reduced");

  engine::RunSpec base;
  base.topology = engine::CorePeripheryTopology(config.num_nodes, config.num_nodes / 10 + 2);
  base.topology.core_density = 0.5;
  base.topology.degree_cap = config.degree_bound;
  base.degree_bound = config.degree_bound;
  base.iterations = config.iterations;
  base.format = BenchFormat();
  base.aggregate_bits = 24;
  base.noise_alpha = 0.5;
  base.shock.shocked_banks = {0, 1};
  base.transfer_budget_alpha = 0.99;
  base.dlog_range = 0;  // auto-size for negligible lookup failure
  base.seed = 11;
  {
    finance::WorkloadParams wp;
    wp.format = BenchFormat();
    wp.core_size = base.topology.core_size;
    base.workload = wp;
  }

  RunSeries("EN", engine::ContagionModel::kEisenbergNoe, base, config);
  RunSeries("EGJ", engine::ContagionModel::kElliottGolubJackson, base, config);
  std::printf("# shape check: time and traffic grow ~O(k^2) with block size\n");
}

}  // namespace
}  // namespace dstress::bench

int main() {
  dstress::bench::Run();
  return 0;
}
