// Figure 6: projected end-to-end computation time (left) and per-node
// traffic (right) for Eisenberg–Noe runs on networks of N = 250..2000
// nodes with degree bounds D in {10, 40, 70, 100}, plus validation points
// from real runs.
//
// Methodology mirrors the paper's §5.5: per-operation costs are measured
// with microbenchmarks of the actual protocol implementations, then
// combined analytically under conservative assumptions (block size 20, no
// overlap between a node's block computations, two-level aggregation tree
// of fan-in 100, I = ceil(log2 N) iterations). The paper's headline from
// this figure — a full U.S.-banking-system run (N=1750, D=100) costs hours,
// not years — is reproduced as the final row.
//
// Since the packed-share refactor (docs/packed-eval.md) and the transfer
// crypto engine (docs/transfer-crypto.md) the bench calibrates every term
// twice — the MPC per-AND cost with the seed one-role-per-task schedule vs
// the batched bitsliced data plane, and the four transfer role costs with
// the seed pure-scheme functions vs the batched wire-level engine
// (fixed-base key tables, batch-affine encryption, cached noise points) —
// and A/B-runs the real validation points with both schedules, so every
// speedup claim carries its own baseline measured in the same run and
// build. The projected batched rows also carry the engine's once-per-run
// certificate-table build charge, so the speedup is honest about setup.
// Scheduling assumptions differ by design: the seed baseline keeps the
// paper's conservative no-overlap serialization, while the batched rows
// model the worker-pool transfer plane overlapping a node's independent
// per-edge tasks across kTransferWorkers deployment cores (recorded in the
// JSON as "transfer_workers"); the validation runs below are real
// wall-clock on this machine and make no such assumption.
// Everything is also written to BENCH_fig6.json (in the working directory;
// CI runs from the repo root and uploads it), one entry per (N, mode) with
// wall-ms, bytes/node and, where a baseline exists, its wall-ms.
//
// Validation: the same projection is evaluated at small N and compared to
// real end-to-end runs (the paper validates at N=20 and N=100 with D=10;
// the reduced default validates at N=20, DSTRESS_FULL=1 adds N=100).

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <new>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/check.h"
#include "src/core/runtime.h"
#include "src/costmodel/cost_model.h"
#include "src/engine/engine.h"

// Global allocation accounting for the steady-state assertion below: the
// arena graph plane's hot loop must not allocate per iteration once warm
// (EvalPlan::EvalPacked scratch and the plane's buffers are grow-only), so
// a warmed N=100k run's total allocation volume is bounded by small per-run
// transients, not by circuit-wire or arena sizes.
namespace {
std::atomic<uint64_t> g_alloc_bytes{0};
std::atomic<uint64_t> g_alloc_calls{0};

void* CountedAlloc(std::size_t size) {
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) {
    return p;
  }
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dstress::bench {
namespace {

int IterationsFor(int n) { return static_cast<int>(std::ceil(std::log2(n))); }

// Deployment cores the batched plane's projection overlaps a node's
// independent per-edge transfer tasks across (the paper-era EC2 compute
// node, c4.2xlarge, has 8 vCPUs). The seed-schedule baseline keeps the
// paper's §5.5 no-overlap serialization (transfer_workers = 1), so the
// secure-projected speedup column reports the full engine delta: batched
// arithmetic (tables + batch-affine + caches) times scheduling (worker-pool
// overlap vs the paper's conservative serialization). See
// ProjectionParams::transfer_workers and docs/transfer-crypto.md.
constexpr int kTransferWorkers = 8;

costmodel::ProjectionParams ParamsFor(int n, int degree, int block_size) {
  auto en = EnParams(degree, IterationsFor(n));
  auto program = finance::MakeEnProgram(en);
  costmodel::ProjectionParams p;
  p.num_nodes = n;
  p.degree_bound = degree;
  p.block_size = block_size;
  p.iterations = en.iterations;
  p.message_bits = 12;
  p.aggregation_fanout = 100;
  circuit::Circuit update = core::BuildUpdateCircuit(program);
  circuit::Circuit aggregate = core::BuildAggregateCircuit(program, std::min(n, 100), false);
  circuit::Circuit combine =
      core::BuildCombineCircuit(program, std::max(1, (n + 99) / 100), true);
  p.update_and_gates = update.stats().num_and;
  p.aggregate_and_gates_per_group = aggregate.stats().num_and;
  p.combine_and_gates = combine.stats().num_and;
  p.update_and_depth = update.stats().and_depth;
  p.aggregate_and_depth = aggregate.stats().and_depth;
  p.combine_and_depth = combine.stats().and_depth;
  p.state_bits = program.state_bits;
  return p;
}

// One BENCH_fig6.json entry. wall_ms_baseline < 0 means "no baseline for
// this row" (it is omitted from the JSON).
struct JsonEntry {
  int n = 0;
  int degree = 0;
  std::string mode;
  double wall_ms = 0;
  double wall_ms_baseline = -1;
  double bytes_per_node = 0;
  // Scenario-ensemble rows only: lane count K (baseline = K solo runs).
  int scenarios = 0;
  // secure-ha rows only (docs/ha.md): heartbeat/control traffic and
  // checkpoint wall time. Negative = not an HA row (fields omitted).
  // check_bench.py prints these as informational columns, never gated.
  double ha_control_bytes = -1;
  double ha_checkpoint_ms = -1;
  // secure-ot rows only (docs/offline-phase.md): base-OT protocol
  // executions under the factory vs the per-role baseline, the factory's
  // offline generation / online-wait wall, and how much of the offline work
  // overlapped the online phase. Negative = not an OT row (fields omitted).
  double base_ot_count = -1;
  double base_ot_count_baseline = -1;
  double offline_ms = -1;
  double offline_wait_ms = -1;
  double overlap_ms = -1;
};

void WriteJson(const std::vector<JsonEntry>& entries, int block_size, double per_and_seed_us,
               double per_and_batched_us) {
  std::FILE* f = std::fopen("BENCH_fig6.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "BENCH_fig6.json: cannot open for writing, skipping\n");
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"fig6\",\n");
  std::fprintf(f, "  \"block_size\": %d,\n", block_size);
  std::fprintf(f, "  \"transfer_workers\": %d,\n", kTransferWorkers);
  std::fprintf(f, "  \"mpc_us_per_and_baseline\": %.4f,\n", per_and_seed_us);
  std::fprintf(f, "  \"mpc_us_per_and_batched\": %.4f,\n", per_and_batched_us);
  std::fprintf(f, "  \"mpc_per_and_speedup\": %.2f,\n", per_and_seed_us / per_and_batched_us);
  std::fprintf(f, "  \"entries\": [\n");
  for (size_t i = 0; i < entries.size(); i++) {
    const JsonEntry& e = entries[i];
    std::fprintf(f, "    {\"N\": %d, \"D\": %d, \"mode\": \"%s\", \"wall_ms\": %.2f", e.n,
                 e.degree, e.mode.c_str(), e.wall_ms);
    if (e.scenarios > 0) {
      std::fprintf(f, ", \"scenarios\": %d", e.scenarios);
    }
    if (e.wall_ms_baseline >= 0) {
      std::fprintf(f, ", \"wall_ms_baseline\": %.2f, \"speedup\": %.2f", e.wall_ms_baseline,
                   e.wall_ms > 0 ? e.wall_ms_baseline / e.wall_ms : 0.0);
    }
    if (e.ha_control_bytes >= 0) {
      std::fprintf(f, ", \"ha_control_bytes\": %.0f, \"ha_checkpoint_ms\": %.2f",
                   e.ha_control_bytes, e.ha_checkpoint_ms);
    }
    if (e.base_ot_count >= 0) {
      std::fprintf(f,
                   ", \"base_ot_count\": %.0f, \"base_ot_count_baseline\": %.0f"
                   ", \"offline_ms\": %.2f, \"offline_wait_ms\": %.2f, \"overlap_ms\": %.2f",
                   e.base_ot_count, e.base_ot_count_baseline, e.offline_ms, e.offline_wait_ms,
                   e.overlap_ms);
    }
    std::fprintf(f, ", \"bytes_per_node\": %.0f}%s\n", e.bytes_per_node,
                 i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("# wrote BENCH_fig6.json (%zu entries)\n", entries.size());
}

// --- Secure OT offline phase (docs/offline-phase.md) -----------------------
//
// Real end-to-end runs with IKNP OT-extension triples, driven through
// core::Runtime directly so a transport observer can split the wire into
// offline (session namespace 8 — all OT-triple traffic) and online bytes.
// The factory and per-role rows must release the same figure over
// bit-identical per-node ONLINE traffic — the offline phase is the only
// thing the factory is allowed to change.

struct OtOnlineStats {
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t msgs_sent = 0;
  uint64_t msgs_received = 0;
  bool operator==(const OtOnlineStats& o) const {
    return bytes_sent == o.bytes_sent && bytes_received == o.bytes_received &&
           msgs_sent == o.msgs_sent && msgs_received == o.msgs_received;
  }
};

class OtTrafficSplitter : public net::NetworkObserver {
 public:
  void OnSend(net::NodeId from, net::NodeId, net::SessionId session,
              const Bytes& payload) override {
    if ((session >> 60) == 8) {
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    online_[from].bytes_sent += payload.size();
    online_[from].msgs_sent += 1;
  }
  void OnRecv(net::NodeId to, net::NodeId, net::SessionId session,
              const Bytes& payload) override {
    if ((session >> 60) == 8) {
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    online_[to].bytes_received += payload.size();
    online_[to].msgs_received += 1;
  }
  std::map<net::NodeId, OtOnlineStats> online() const {
    std::lock_guard<std::mutex> lock(mu_);
    return online_;
  }

 private:
  mutable std::mutex mu_;
  std::map<net::NodeId, OtOnlineStats> online_;
};

struct OtRunResult {
  int64_t released = 0;
  core::RunMetrics metrics;
  std::map<net::NodeId, OtOnlineStats> online;
};

OtRunResult RunSecureOt(int n, int degree, int block_size, int fanout, bool ot_batching) {
  engine::TopologySpec topo = engine::CorePeripheryTopology(n, std::max(2, n / 10));
  topo.degree_cap = degree;
  graph::Graph g = engine::BuildTopologyGraph(topo, /*seed=*/4);
  finance::EnProgramParams en = EnParams(degree, /*iterations=*/1);
  // Lean 8-bit fixed point: the row is an offline-phase A/B, and the
  // shared online/extension work (which scales with circuit size and is
  // identical in both runs) would otherwise dilute the base-OT delta the
  // row exists to measure.
  en.format.value_bits = 8;
  en.format.frac_bits = 4;
  finance::WorkloadParams workload;
  workload.format = en.format;
  workload.seed = 4;
  workload.core_size = std::max(2, n / 10);
  finance::ShockParams shock;
  shock.shocked_banks = {0};
  finance::EnInstance instance = finance::MakeEnWorkload(g, workload, shock);
  core::VertexProgram program = finance::MakeEnProgram(en);
  std::vector<mpc::BitVector> states = finance::MakeEnInitialStates(instance, en);

  core::RuntimeConfig config;
  config.block_size = block_size;
  config.seed = 4;
  config.transfer_budget_alpha = 0.99;
  config.use_ot_triples = true;
  config.ot_batching = ot_batching;
  config.aggregation_fanout = fanout;
  core::Runtime runtime(config, g, program);
  OtTrafficSplitter meter;
  runtime.AttachObserver(&meter);
  OtRunResult result;
  result.released = runtime.Run(states, &result.metrics);
  result.online = meter.online();
  return result;
}

engine::RunSpec ValidationSpec(int n, int degree, int block_size) {
  engine::RunSpec spec;
  spec.topology = engine::CorePeripheryTopology(n, std::max(2, n / 10));
  spec.topology.degree_cap = degree;
  spec.degree_bound = degree;
  spec.model = engine::ContagionModel::kEisenbergNoe;
  spec.format = BenchFormat();
  spec.aggregate_bits = 24;
  spec.noise_alpha = 0.5;
  spec.iterations = IterationsFor(n);
  spec.shock.shocked_banks = {0};
  spec.block_size = block_size;
  spec.transfer_budget_alpha = 0.99;
  spec.dlog_range = 0;  // auto-size for negligible lookup failure
  spec.seed = 4;
  return spec;
}

void Run() {
  int block_size = FullScale() ? 20 : 8;
  std::vector<JsonEntry> json;

  std::printf("# Figure 6: projected EN end-to-end cost, block size %d, tree fan-in 100\n",
              block_size);
  std::printf("# calibrating per-operation costs on this machine (seed vs batched data plane)\n");
  costmodel::MicroCosts seed_costs = costmodel::Calibrate(block_size, 12);
  costmodel::MicroCosts costs = costmodel::CalibrateBatched(seed_costs, 12, /*batch_width=*/64);
  std::printf("# seed    : %s\n", seed_costs.ToString().c_str());
  std::printf("# batched : %s\n", costs.ToString().c_str());
  double per_and_speedup = seed_costs.seconds_per_and / costs.seconds_per_and;
  std::printf("# GMW per-AND speedup (batched over seed, width 64): %.1fx\n", per_and_speedup);

  // The sweep grid. The projected end-to-end rows use the batched costs
  // (today's data planes) with the seed-cost projection as their same-run
  // baseline; the secure-mpc rows isolate the MPC term the packed-share
  // refactor moves. End-to-end time is dominated by the EC transfer
  // crypto, which the batched wire-level engine now moves directly, so the
  // secure-projected speedup column is the transfer engine's headline.
  std::printf("%6s %6s %6s %12s %12s %16s %10s %12s\n", "N", "D", "I", "time(min)", "mpc(min)",
              "traffic/node(MB)", "speedup", "mpc-speedup");
  for (int degree : {10, 40, 70, 100}) {
    for (int n : {250, 500, 750, 1000, 1250, 1500, 1750, 2000}) {
      costmodel::ProjectionParams params = ParamsFor(n, degree, block_size);
      // Seed baseline: paper methodology (transfer_workers = 1). Batched:
      // the engine's worker-pool transfer plane on a kTransferWorkers-core
      // deployment node.
      costmodel::Projection proj_seed = Project(seed_costs, params);
      params.transfer_workers = kTransferWorkers;
      costmodel::Projection proj = Project(costs, params);
      double mpc_s = proj.compute_seconds + proj.aggregate_seconds;
      double mpc_seed_s = proj_seed.compute_seconds + proj_seed.aggregate_seconds;
      std::printf("%6d %6d %6d %12.1f %12.2f %16.1f %9.1fx %11.1fx\n", n, degree,
                  IterationsFor(n), proj.total_seconds / 60, mpc_s / 60,
                  proj.traffic_bytes_per_node / 1e6, proj_seed.total_seconds / proj.total_seconds,
                  mpc_seed_s / mpc_s);
      JsonEntry endtoend{n, degree, "secure-projected", proj.total_seconds * 1e3,
                         proj_seed.total_seconds * 1e3, proj.traffic_bytes_per_node};
      json.push_back(endtoend);
      JsonEntry mpc{n, degree, "secure-mpc-projected", mpc_s * 1e3, mpc_seed_s * 1e3,
                    proj.traffic_bytes_per_node};
      json.push_back(mpc);
    }
  }
  {
    costmodel::ProjectionParams us_params = ParamsFor(1750, 100, block_size);
    us_params.transfer_workers = kTransferWorkers;
    costmodel::Projection us = Project(costs, us_params);
    std::printf("# headline: N=1750 D=100 -> %.1f hours, %.0f MB per node "
                "(paper: ~4.8 h, ~750 MB on EC2)\n",
                us.total_seconds / 3600, us.traffic_bytes_per_node / 1e6);
  }

  // Wide-area deployment model (§5.3's caveat): GMW round latency and a
  // bounded uplink at every bank. Rounds still equal AND-depth in the
  // batched plane, so the latency term is unchanged.
  std::printf("\n# wide-area deployment model (N=1750, D=100): each GMW round pays an RTT\n");
  std::printf("%10s %15s %12s\n", "rtt(ms)", "uplink(Mbps)", "time(h)");
  for (double rtt : {10.0, 50.0}) {
    for (double mbps : {100.0, 1000.0}) {
      costmodel::WanParams wan;
      wan.rtt_ms = rtt;
      wan.bandwidth_mbps = mbps;
      costmodel::ProjectionParams wan_params = ParamsFor(1750, 100, block_size);
      wan_params.transfer_workers = kTransferWorkers;
      costmodel::Projection proj = ProjectWan(costs, wan_params, wan);
      std::printf("%10.0f %15.0f %12.1f\n", rtt, mbps, proj.total_seconds / 3600);
    }
  }
  std::printf("# latency, not bandwidth, dominates a WAN deployment; the run stays in the\n"
              "# hours-not-years regime the paper's conclusion needs\n");

  // Validation points: projection vs a real end-to-end run, executed with
  // both data planes. Released figures and per-node traffic must agree
  // bit-for-bit (engine_test pins this); wall time is the A/B quantity.
  std::printf("\n# validation runs (D and N reduced to keep the default bench fast)\n");
  std::vector<int> validation_ns = FullScale() ? std::vector<int>{20, 100}
                                               : std::vector<int>{20};
  for (int n : validation_ns) {
    int degree = FullScale() ? 10 : 6;
    engine::RunSpec spec = ValidationSpec(n, degree, block_size);

    // Baseline = the full seed schedule: both batched planes off.
    spec.mpc_batching = false;
    spec.transfer_batching = false;
    engine::RunReport baseline = engine::Engine(spec).Run();
    spec.mpc_batching = true;
    spec.transfer_batching = true;
    engine::RunReport report = engine::Engine(spec).Run();
    // The batched planes must release the same figure over the same wire
    // bytes — speedup claims only count if the protocol is unchanged.
    DSTRESS_CHECK(report.released == baseline.released);
    DSTRESS_CHECK(report.metrics.total_bytes == baseline.metrics.total_bytes);
    DSTRESS_CHECK(report.metrics.avg_bytes_per_node == baseline.metrics.avg_bytes_per_node);

    costmodel::Projection proj = Project(costs, ParamsFor(n, degree, block_size));
    std::printf(
        "N=%-5d D=%-3d measured: %6.1f s end-to-end (seed %6.1f s), MPC compute %5.2f s "
        "(seed %5.2f s, %.1fx), %6.2f MB/node | projected: %6.1f s\n",
        n, degree, report.metrics.total_seconds, baseline.metrics.total_seconds,
        report.metrics.compute.seconds, baseline.metrics.compute.seconds,
        baseline.metrics.compute.seconds / std::max(report.metrics.compute.seconds, 1e-9),
        report.metrics.avg_bytes_per_node / 1e6, proj.total_seconds);
    json.push_back(JsonEntry{n, degree, "secure", report.metrics.total_seconds * 1e3,
                             baseline.metrics.total_seconds * 1e3,
                             report.metrics.avg_bytes_per_node});
    json.push_back(JsonEntry{n, degree, "secure-mpc", report.metrics.compute.seconds * 1e3,
                             baseline.metrics.compute.seconds * 1e3,
                             report.metrics.avg_bytes_per_node});

    // Batched-phase scheduling A/B (RunSpec::mpc_per_node_schedule): the
    // same batched data plane scheduled as one lockstep task per node (the
    // OT path's shape, here with dealer triples) vs one whole-phase
    // lockstep call. Results and wire bytes must be identical — this row
    // measures pure core::Runtime::RunBatchedPhase scheduling, multi-thread
    // task dispatch against a single bitsliced pass.
    spec.mpc_per_node_schedule = true;
    engine::RunReport per_node = engine::Engine(spec).Run();
    spec.mpc_per_node_schedule = false;
    DSTRESS_CHECK(per_node.released == report.released);
    DSTRESS_CHECK(per_node.metrics.total_bytes == report.metrics.total_bytes);
    std::printf(
        "N=%-5d D=%-3d mpc sched: per-node %5.2f s vs lockstep %5.2f s compute "
        "(identical figure and wire bytes)\n",
        n, degree, per_node.metrics.compute.seconds, report.metrics.compute.seconds);
    json.push_back(JsonEntry{n, degree, "secure-mpc-sched", per_node.metrics.compute.seconds * 1e3,
                             report.metrics.compute.seconds * 1e3,
                             per_node.metrics.avg_bytes_per_node});

    // HA overhead at the acceptance point (N=20, docs/ha.md): the same
    // run over real sockets, plain vs HA-enabled (heartbeats + sequence
    // wrapping + periodic checkpoints). check_bench.py prints the row's
    // control traffic and checkpoint time as informational columns; it is
    // never gated — heartbeat bytes scale with wall time, not protocol.
    if (n == 20) {
      engine::RunSpec tcp_spec = ValidationSpec(n, degree, block_size);
      tcp_spec.transport.backend = "tcp";
      engine::RunReport tcp_plain = engine::Engine(tcp_spec).Run();
      DSTRESS_CHECK(tcp_plain.released == report.released);

      const char* ckpt = "/tmp/bench_fig6_ha.ckpt";
      tcp_spec.transport.ha.enabled = true;
      tcp_spec.transport.ha.heartbeat_ms = 50;
      tcp_spec.ha_checkpoint_every = 2;
      tcp_spec.ha_checkpoint_path = ckpt;
      engine::RunReport tcp_ha = engine::Engine(tcp_spec).Run();
      DSTRESS_CHECK(tcp_ha.released == report.released);
      DSTRESS_CHECK(tcp_ha.metrics.avg_bytes_per_node == tcp_plain.metrics.avg_bytes_per_node);
      std::remove(ckpt);

      double overhead_pct = tcp_plain.metrics.total_seconds > 0
                                ? (tcp_ha.metrics.total_seconds / tcp_plain.metrics.total_seconds -
                                   1.0) * 100.0
                                : 0.0;
      std::printf(
          "N=%-5d D=%-3d ha (tcp): %6.1f s vs %6.1f s plain (%+.1f%%), %.2f MB control "
          "traffic, %.3f s checkpointing\n",
          n, degree, tcp_ha.metrics.total_seconds, tcp_plain.metrics.total_seconds, overhead_pct,
          tcp_ha.metrics.ha_control_bytes / 1e6, tcp_ha.metrics.ha_checkpoint_seconds);
      JsonEntry ha_row{n, degree, "secure-ha", tcp_ha.metrics.total_seconds * 1e3,
                       tcp_plain.metrics.total_seconds * 1e3,
                       tcp_ha.metrics.avg_bytes_per_node};
      ha_row.ha_control_bytes = static_cast<double>(tcp_ha.metrics.ha_control_bytes);
      ha_row.ha_checkpoint_ms = tcp_ha.metrics.ha_checkpoint_seconds * 1e3;
      json.push_back(ha_row);
    }
  }
  std::printf("# note: end-to-end time on this container is dominated by the EC transfer\n"
              "# crypto, so the 'secure' rows' speedup tracks the batched transfer engine;\n"
              "# the MPC rows isolate the packed evaluation path.\n");

  // Secure OT offline phase: the node-pair triple factory (ot_batching on,
  // the default for `triples ot` runs) against the per-role IKNP baseline,
  // in the same build and run. The factory pays base OTs once per node pair
  // instead of once per (role, peer) and prefetches iteration i+1's triples
  // while iteration i evaluates; tools/check_bench.py --ot-min-speedup pins
  // the wall-clock floor. Block size 10 keeps the per-role baseline's
  // setup-dominated regime honest at bench-friendly N; the N=20 row runs a
  // fanout-4 aggregation tree, which both exercises the factory's tree
  // demand re-derivation and reflects how per-role setup cost scales with
  // role-group count.
  std::printf("\n# secure OT offline phase: node-pair triple factory vs per-role IKNP\n");
  std::printf("%6s %6s %12s %12s %10s %10s %12s %12s\n", "N", "k+1", "factory(s)",
              "per-role(s)", "speedup", "base-OTs", "(baseline)", "overlap(ms)");
  const int ot_block_size = 10;
  for (int n : {10, 20}) {
    const int ot_degree = 3;
    const int ot_fanout = n == 20 ? 4 : 0;
    OtRunResult baseline =
        RunSecureOt(n, ot_degree, ot_block_size, ot_fanout, /*ot_batching=*/false);
    OtRunResult factory =
        RunSecureOt(n, ot_degree, ot_block_size, ot_fanout, /*ot_batching=*/true);
    // Fidelity re-assertion at bench scale: same released figure, and the
    // online phase's per-node traffic (everything outside the offline
    // session namespace) identical in bytes and message counts.
    DSTRESS_CHECK(factory.released == baseline.released);
    DSTRESS_CHECK(factory.online.size() == baseline.online.size());
    for (const auto& [node, stats] : factory.online) {
      DSTRESS_CHECK(stats == baseline.online.at(node));
    }
    double overlap_ms = std::max(
        0.0, (factory.metrics.offline_seconds - factory.metrics.offline_wait_seconds) * 1e3);
    std::printf("%6d %6d %12.2f %12.2f %9.1fx %10llu %12llu %12.0f\n", n, ot_block_size,
                factory.metrics.total_seconds, baseline.metrics.total_seconds,
                baseline.metrics.total_seconds /
                    std::max(factory.metrics.total_seconds, 1e-9),
                static_cast<unsigned long long>(factory.metrics.base_ot_executions),
                static_cast<unsigned long long>(baseline.metrics.base_ot_executions),
                overlap_ms);
    JsonEntry ot_row{n, ot_degree, "secure-ot", factory.metrics.total_seconds * 1e3,
                     baseline.metrics.total_seconds * 1e3,
                     factory.metrics.avg_bytes_per_node};
    ot_row.base_ot_count = static_cast<double>(factory.metrics.base_ot_executions);
    ot_row.base_ot_count_baseline = static_cast<double>(baseline.metrics.base_ot_executions);
    ot_row.offline_ms = factory.metrics.offline_seconds * 1e3;
    ot_row.offline_wait_ms = factory.metrics.offline_wait_seconds * 1e3;
    ot_row.overlap_ms = overlap_ms;
    json.push_back(ot_row);
  }
  std::printf("# identical released figures and per-node online traffic both rows; only the\n"
              "# offline phase (base-OT count, extend batching, prefetch) differs\n");

  // Beyond the projection: the cleartext fast path actually executes the
  // large-N sweep the secure mode can only model — same circuits, same
  // transport and scheduler, word-parallel over the same EvalPlan. Since
  // the flat-arena graph plane (src/graphplane) the sweep reaches N=1M;
  // smaller points A/B the arena against the retired container plane
  // (wall_ms_baseline), whose figures and wire bytes must agree
  // bit-for-bit, and tools/check_bench.py --cleartext-max-wall-ms pins the
  // N=1M row's wall clock.
  std::printf("\n# cleartext fast-path sweep (real runs through engine::Engine)\n");
  std::printf("%8s %6s %12s %12s %18s\n", "N", "I", "arena(s)", "legacy(s)",
              "traffic/node(kB)");
  std::vector<int> sweep_ns = FullScale()
                                  ? std::vector<int>{2000, 10000, 20000, 100000, 1000000}
                                  : std::vector<int>{2000, 10000, 100000, 1000000};
  for (int n : sweep_ns) {
    engine::RunSpec spec;
    spec.topology = engine::ScaleFreeTopology(n, 2);
    spec.topology.degree_cap = 8;
    spec.degree_bound = 8;
    spec.model = engine::ContagionModel::kEisenbergNoe;
    spec.format = BenchFormat();
    spec.aggregate_bits = 24;
    spec.noise_alpha = 0.5;
    spec.iterations = IterationsFor(n);
    spec.shock.shocked_banks = {0, 1, 2};
    spec.seed = 4;
    spec.mode = engine::ExecutionMode::kCleartextFast;

    // Container-plane baseline, A/B'd at the sizes it can still sustain;
    // the arena row must release the identical figure over identical wire
    // bytes (the graphplane_test corpus pins the full surface).
    double legacy_ms = -1;
    if (n <= 20000) {
      spec.cleartext_arena = false;
      engine::RunReport legacy = engine::Engine(spec).Run();
      spec.cleartext_arena = true;
      engine::RunReport arena = engine::Engine(spec).Run();
      DSTRESS_CHECK(arena.released == legacy.released);
      DSTRESS_CHECK(arena.metrics.total_bytes == legacy.metrics.total_bytes);
      legacy_ms = legacy.metrics.total_seconds * 1e3;
    }

    engine::Engine eng(spec);
    engine::RunReport report = eng.Run();
    if (n == 100000) {
      // Steady-state allocation assertion: the first run warmed every
      // grow-only buffer (arena, frontier, EvalPacked scratch, sender
      // staging), so a second run must allocate only small per-run
      // transients — far below the ~50 MB arena or the circuit-wire
      // scratch a per-chunk allocation would re-acquire ~1600x per pass.
      uint64_t bytes_before = g_alloc_bytes.load(std::memory_order_relaxed);
      uint64_t calls_before = g_alloc_calls.load(std::memory_order_relaxed);
      report = eng.Run();
      uint64_t bytes = g_alloc_bytes.load(std::memory_order_relaxed) - bytes_before;
      uint64_t calls = g_alloc_calls.load(std::memory_order_relaxed) - calls_before;
      std::printf("# steady-state N=100k run: %.1f MB allocated in %llu calls\n", bytes / 1e6,
                  static_cast<unsigned long long>(calls));
      DSTRESS_CHECK(bytes < 64ull << 20);
    }
    std::printf("%8d %6d %12.2f %12.2f %18.2f\n", n, report.iterations,
                report.metrics.total_seconds, legacy_ms < 0 ? 0.0 : legacy_ms / 1e3,
                report.metrics.avg_bytes_per_node / 1e3);
    json.push_back(JsonEntry{n, 8, "cleartext", report.metrics.total_seconds * 1e3, legacy_ms,
                             report.metrics.avg_bytes_per_node});
  }
  std::printf("# the sweep grid that took the paper a cost model now runs for real,\n"
              "# including the N=1M point ROADMAP item 3 asked for\n");

  // Scenario-ensemble amortization (src/ensemble): K Monte Carlo draws
  // evaluated as lanes of one lockstep pass vs the same K scenarios run
  // solo, measured in the same build. The per-lane figures must agree
  // bit-for-bit with the solos (ensemble_test pins this at small N;
  // re-checked here at bench scale), so the amortization column compares
  // identical computations.
  std::printf("\n# cleartext scenario-ensemble amortization (N=1000 scale-free, real runs)\n");
  std::printf("%6s %14s %14s %14s\n", "K", "ensemble(s)", "K solos(s)", "amortization");
  // K=64 fills one packed word per lane group; K=128 exercises the chunked
  // (two-pass) plane. Smaller K amortizes less (compute scales with the
  // lane stride) and is not a row the >=10x gate should pin.
  for (int k_scenarios : {64, 128}) {
    engine::RunSpec spec;
    spec.topology = engine::ScaleFreeTopology(1000, 2);
    spec.topology.degree_cap = 8;
    spec.degree_bound = 8;
    spec.model = engine::ContagionModel::kEisenbergNoe;
    spec.format = BenchFormat();
    spec.aggregate_bits = 24;
    spec.noise_alpha = 0.5;
    spec.iterations = IterationsFor(1000);
    spec.shock.shocked_banks = {0, 1, 2};
    spec.seed = 4;
    spec.mode = engine::ExecutionMode::kCleartextFast;
    spec.ensemble.emplace();
    spec.ensemble->shock_draws = k_scenarios;
    spec.ensemble->draw_seed = 9;
    spec.ensemble->has_magnitude_range = true;
    spec.ensemble->magnitude_lo = 0.0;
    spec.ensemble->magnitude_hi = 0.5;

    ensemble::EnsembleReport report = engine::Engine(spec).RunEnsemble();
    std::vector<ensemble::Scenario> scenarios =
        ensemble::MaterializeScenarios(*spec.ensemble, spec.shock, 1000);
    double solo_seconds = 0;
    for (int s = 0; s < k_scenarios; s++) {
      engine::RunReport solo =
          engine::Engine(ensemble::SoloSpecFor(spec, scenarios[s])).Run();
      DSTRESS_CHECK(solo.released == report.scenarios[s].released);
      solo_seconds += solo.metrics.total_seconds;
    }
    std::printf("%6d %14.2f %14.2f %13.1fx\n", k_scenarios, report.metrics.total_seconds,
                solo_seconds, solo_seconds / report.metrics.total_seconds);
    JsonEntry row{1000, 8, "cleartext-ensemble", report.metrics.total_seconds * 1e3,
                  solo_seconds * 1e3, report.metrics.avg_bytes_per_node};
    row.scenarios = k_scenarios;
    json.push_back(row);
  }
  std::printf("# one lockstep pass amortizes per-edge messaging and fixed overheads across\n"
              "# lanes; tools/check_bench.py --ensemble-min-speedup pins the floor. Since\n"
              "# the arena graph plane the solo baselines are themselves bitsliced (64\n"
              "# vertices per word), so the margin is ~2x fixed-cost amortization, not the\n"
              "# ~13x the container-plane solos left on the table.\n");

  WriteJson(json, block_size, seed_costs.seconds_per_and * 1e6, costs.seconds_per_and * 1e6);
}

}  // namespace
}  // namespace dstress::bench

int main() {
  dstress::bench::Run();
  return 0;
}
