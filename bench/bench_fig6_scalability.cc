// Figure 6: projected end-to-end computation time (left) and per-node
// traffic (right) for Eisenberg–Noe runs on networks of N = 250..2000
// nodes with degree bounds D in {10, 40, 70, 100}, plus validation points
// from real runs.
//
// Methodology mirrors the paper's §5.5: per-operation costs are measured
// with microbenchmarks of the actual protocol implementations, then
// combined analytically under conservative assumptions (block size 20, no
// overlap between a node's block computations, two-level aggregation tree
// of fan-in 100, I = ceil(log2 N) iterations). The paper's headline from
// this figure — a full U.S.-banking-system run (N=1750, D=100) costs hours,
// not years — is reproduced as the final row.
//
// Validation: the same projection is evaluated at small N and compared to
// real end-to-end runs (the paper validates at N=20 and N=100 with D=10;
// the reduced default validates at N=20, DSTRESS_FULL=1 adds N=100).

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/costmodel/cost_model.h"
#include "src/engine/engine.h"

namespace dstress::bench {
namespace {

int IterationsFor(int n) { return static_cast<int>(std::ceil(std::log2(n))); }

costmodel::ProjectionParams ParamsFor(int n, int degree, int block_size) {
  auto en = EnParams(degree, IterationsFor(n));
  auto program = finance::MakeEnProgram(en);
  costmodel::ProjectionParams p;
  p.num_nodes = n;
  p.degree_bound = degree;
  p.block_size = block_size;
  p.iterations = en.iterations;
  p.message_bits = 12;
  p.aggregation_fanout = 100;
  circuit::Circuit update = core::BuildUpdateCircuit(program);
  circuit::Circuit aggregate = core::BuildAggregateCircuit(program, std::min(n, 100), false);
  circuit::Circuit combine =
      core::BuildCombineCircuit(program, std::max(1, (n + 99) / 100), true);
  p.update_and_gates = update.stats().num_and;
  p.aggregate_and_gates_per_group = aggregate.stats().num_and;
  p.combine_and_gates = combine.stats().num_and;
  p.update_and_depth = update.stats().and_depth;
  p.aggregate_and_depth = aggregate.stats().and_depth;
  p.combine_and_depth = combine.stats().and_depth;
  p.state_bits = program.state_bits;
  return p;
}

void Run() {
  int block_size = FullScale() ? 20 : 8;
  std::printf("# Figure 6: projected EN end-to-end cost, block size %d, tree fan-in 100\n",
              block_size);
  std::printf("# calibrating per-operation costs on this machine...\n");
  costmodel::MicroCosts costs = costmodel::Calibrate(block_size, 12);
  std::printf("# calibration: %s\n", costs.ToString().c_str());

  std::printf("%6s %6s %6s %12s %16s\n", "N", "D", "I", "time(min)", "traffic/node(MB)");
  for (int degree : {10, 40, 70, 100}) {
    for (int n : {250, 500, 750, 1000, 1250, 1500, 1750, 2000}) {
      costmodel::Projection proj = Project(costs, ParamsFor(n, degree, block_size));
      std::printf("%6d %6d %6d %12.1f %16.1f\n", n, degree, IterationsFor(n),
                  proj.total_seconds / 60, proj.traffic_bytes_per_node / 1e6);
    }
  }
  {
    costmodel::Projection us =
        Project(costs, ParamsFor(1750, 100, block_size));
    std::printf("# headline: N=1750 D=100 -> %.1f hours, %.0f MB per node "
                "(paper: ~4.8 h, ~750 MB on EC2)\n",
                us.total_seconds / 3600, us.traffic_bytes_per_node / 1e6);
  }

  // Wide-area deployment model (§5.3's caveat): GMW round latency and a
  // bounded uplink at every bank.
  std::printf("\n# wide-area deployment model (N=1750, D=100): each GMW round pays an RTT\n");
  std::printf("%10s %15s %12s\n", "rtt(ms)", "uplink(Mbps)", "time(h)");
  for (double rtt : {10.0, 50.0}) {
    for (double mbps : {100.0, 1000.0}) {
      costmodel::WanParams wan;
      wan.rtt_ms = rtt;
      wan.bandwidth_mbps = mbps;
      costmodel::Projection proj = ProjectWan(costs, ParamsFor(1750, 100, block_size), wan);
      std::printf("%10.0f %15.0f %12.1f\n", rtt, mbps, proj.total_seconds / 3600);
    }
  }
  std::printf("# latency, not bandwidth, dominates a WAN deployment; the run stays in the\n"
              "# hours-not-years regime the paper's conclusion needs\n");

  // Validation points: projection vs a real end-to-end run.
  std::printf("\n# validation runs (D and N reduced to keep the default bench fast)\n");
  std::vector<int> validation_ns = FullScale() ? std::vector<int>{20, 100}
                                               : std::vector<int>{20};
  for (int n : validation_ns) {
    int degree = FullScale() ? 10 : 6;
    engine::RunSpec spec;
    spec.topology = engine::CorePeripheryTopology(n, std::max(2, n / 10));
    spec.topology.degree_cap = degree;
    spec.degree_bound = degree;
    spec.model = engine::ContagionModel::kEisenbergNoe;
    spec.format = BenchFormat();
    spec.aggregate_bits = 24;
    spec.noise_alpha = 0.5;
    spec.iterations = IterationsFor(n);
    spec.shock.shocked_banks = {0};
    spec.block_size = block_size;
    spec.transfer_budget_alpha = 0.99;
    spec.dlog_range = 0;  // auto-size for negligible lookup failure
    spec.seed = 4;
    engine::RunReport report = engine::Engine(spec).Run();

    costmodel::Projection proj = Project(costs, ParamsFor(n, degree, block_size));
    std::printf(
        "N=%-5d D=%-3d measured: %6.1f s, %6.2f MB/node | projected (serial bound): %6.1f s, "
        "%6.2f MB/node\n",
        n, degree, report.metrics.total_seconds, report.metrics.avg_bytes_per_node / 1e6,
        proj.total_seconds, proj.traffic_bytes_per_node / 1e6);
  }
  std::printf("# note: real runs overlap block computations across cores, so measured time\n"
              "# falls below the conservative serial projection — same effect as the paper's\n"
              "# red validation circles sitting under the model curve.\n");

  // Beyond the projection: the cleartext fast path actually executes the
  // large-N sweep the secure mode can only model — same circuits, same
  // transport and scheduler, no crypto (engine::ExecutionMode docs).
  std::printf("\n# cleartext fast-path sweep (real runs through engine::Engine)\n");
  std::printf("%8s %6s %12s %18s\n", "N", "I", "time(s)", "traffic/node(kB)");
  std::vector<int> sweep_ns =
      FullScale() ? std::vector<int>{2000, 10000, 20000} : std::vector<int>{2000, 10000};
  for (int n : sweep_ns) {
    engine::RunSpec spec;
    spec.topology = engine::ScaleFreeTopology(n, 2);
    spec.topology.degree_cap = 8;
    spec.degree_bound = 8;
    spec.model = engine::ContagionModel::kEisenbergNoe;
    spec.format = BenchFormat();
    spec.aggregate_bits = 24;
    spec.noise_alpha = 0.5;
    spec.iterations = IterationsFor(n);
    spec.shock.shocked_banks = {0, 1, 2};
    spec.seed = 4;
    spec.mode = engine::ExecutionMode::kCleartextFast;
    engine::RunReport report = engine::Engine(spec).Run();
    std::printf("%8d %6d %12.2f %18.2f\n", n, report.iterations,
                report.metrics.total_seconds, report.metrics.avg_bytes_per_node / 1e3);
  }
  std::printf("# the sweep grid that took the paper a cost model now runs for real\n");
}

}  // namespace
}  // namespace dstress::bench

int main() {
  dstress::bench::Run();
  return 0;
}
