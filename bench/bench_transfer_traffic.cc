// §5.3 "Message transfers" traffic: bytes handled per role during one
// message transfer, as a function of block size.
//
// Paper numbers (secp384r1 points): node i receives the (k+1)^2 encrypted
// subshares — 97 kB (8-node blocks) to 595 kB (20-node blocks); members of
// B_i and node j send k+1 encrypted columns each (linear in k, <= 29 kB);
// members of B_j receive one constant-size column (~1.4 kB). With our
// 33-byte compressed secp256k1 points the absolute numbers are ~40%
// smaller; the quadratic/linear/constant split per role is identical.
//
// This is a plain table harness (no timing): it prints one row per block
// size with measured per-role byte counts.

#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "src/transfer/transfer.h"

namespace dstress::bench {
namespace {

void Run() {
  constexpr int kBits = 12;
  std::printf("# Message-transfer traffic per role, L = %d-bit messages, 33-byte points\n",
              kBits);
  std::printf("%-10s %16s %16s %14s %16s\n", "block", "i_recv_bytes", "member_Bi_sent",
              "j_sent_bytes", "member_Bj_recv");
  for (int block_size : {8, 12, 16, 20}) {
    auto prg = crypto::ChaCha20Prg::FromSeed(5);
    transfer::TransferParams params;
    params.block_size = block_size;
    params.message_bits = kBits;
    params.budget_alpha = 0.99;
    params.dlog_range = params.RecommendedDlogRange(1e-12);
    transfer::BlockKeys dest_keys = transfer::TransferSetup(block_size, kBits, prg);
    crypto::U256 neighbor_key = prg.NextScalar(crypto::CurveOrder());
    transfer::BlockCertificate cert =
        transfer::MakeBlockCertificate(transfer::PublicKeysOf(dest_keys), neighbor_key);
    crypto::DlogTable table(params.dlog_range);

    mpc::BitVector message(kBits, 1);
    auto shares = mpc::ShareBits(message, block_size, prg);

    std::unique_ptr<net::Transport> net_owner = net::MakeSimTransport(2 + 2 * block_size);
    net::Transport& net = *net_owner;
    std::vector<net::NodeId> members_i, members_j;
    for (int m = 0; m < block_size; m++) {
      members_i.push_back(2 + m);
      members_j.push_back(2 + block_size + m);
    }
    std::vector<std::thread> threads;
    for (int x = 0; x < block_size; x++) {
      threads.emplace_back([&, x] {
        auto role_prg = crypto::ChaCha20Prg::FromSeed(100 + x);
        transfer::RunSenderMember(&net, members_i[x], 0, 1, shares[x], cert, role_prg);
      });
    }
    threads.emplace_back([&] {
      auto role_prg = crypto::ChaCha20Prg::FromSeed(200);
      transfer::RunSourceEndpoint(&net, 0, members_i, 1, 1, params, role_prg);
    });
    threads.emplace_back(
        [&] { transfer::RunDestEndpoint(&net, 1, 0, members_j, 1, neighbor_key, params); });
    for (int y = 0; y < block_size; y++) {
      threads.emplace_back([&, y] {
        transfer::RunReceiverMember(&net, members_j[y], 1, 1, dest_keys.members[y], table,
                                    params);
      });
    }
    for (auto& t : threads) {
      t.join();
    }

    std::printf("%-10d %13.1f kB %13.1f kB %11.1f kB %13.2f kB\n", block_size,
                net.NodeStats(0).bytes_received / 1e3,
                net.NodeStats(members_i[0]).bytes_sent / 1e3, net.NodeStats(1).bytes_sent / 1e3,
                net.NodeStats(members_j[0]).bytes_received / 1e3);
  }
  std::printf("# shape check: i_recv quadratic in k, member/j linear, Bj-member constant\n");
}

}  // namespace
}  // namespace dstress::bench

int main() {
  dstress::bench::Run();
  return 0;
}
