// Figure 3 (right): MPC time at block size B = 20 as a function of the
// degree bound D (initialization, EN step, EGJ step with D = 10/40/70/100)
// and of the node count N (aggregation with N = 50/100/150/200).
//
// Expected shape: roughly linear in D and in N — the circuits are simple,
// so gate count is dominated by the number of inputs (paper §5.2).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/core/vertex_program.h"
#include "src/mpc/sharing.h"

namespace dstress::bench {
namespace {

int BlockSize() { return FullScale() ? 20 : 8; }

void BM_InitializationVsDegree(benchmark::State& state) {
  int degree = static_cast<int>(state.range(0));
  int block_size = BlockSize();
  auto program = finance::MakeEnProgram(EnParams(degree));
  auto prg = crypto::ChaCha20Prg::FromSeed(1);
  mpc::BitVector bits(program.state_bits, 1);
  for (auto _ : state) {
    std::unique_ptr<net::Transport> net_owner = net::MakeSimTransport(block_size);
    net::Transport& net = *net_owner;
    auto shares = mpc::ShareBits(bits, block_size, prg);
    for (int m = 0; m < block_size; m++) {
      Bytes packed((shares[m].size() + 7) / 8);
      net.Send(0, m, std::move(packed));
    }
    for (int m = 0; m < block_size; m++) {
      benchmark::DoNotOptimize(net.Recv(m, 0));
    }
  }
  state.counters["state_bits"] = program.state_bits;
}

void BM_EnStepVsDegree(benchmark::State& state) {
  int degree = static_cast<int>(state.range(0));
  auto circuit = core::BuildUpdateCircuit(finance::MakeEnProgram(EnParams(degree)));
  for (auto _ : state) {
    BlockMpcResult result = RunBlockMpc(circuit, BlockSize());
    state.SetIterationTime(result.seconds);
  }
  state.counters["and_gates"] = static_cast<double>(circuit.stats().num_and);
}

void BM_EgjStepVsDegree(benchmark::State& state) {
  int degree = static_cast<int>(state.range(0));
  auto circuit = core::BuildUpdateCircuit(finance::MakeEgjProgram(EgjParams(degree)));
  for (auto _ : state) {
    BlockMpcResult result = RunBlockMpc(circuit, BlockSize());
    state.SetIterationTime(result.seconds);
  }
  state.counters["and_gates"] = static_cast<double>(circuit.stats().num_and);
}

void BM_AggregationVsNodes(benchmark::State& state) {
  int nodes = static_cast<int>(state.range(0));
  auto program = finance::MakeEnProgram(EnParams(10));
  auto circuit = core::BuildAggregateCircuit(program, nodes, /*with_noise=*/false);
  for (auto _ : state) {
    BlockMpcResult result = RunBlockMpc(circuit, BlockSize());
    state.SetIterationTime(result.seconds);
  }
  state.counters["and_gates"] = static_cast<double>(circuit.stats().num_and);
}

BENCHMARK(BM_InitializationVsDegree)
    ->Arg(10)
    ->Arg(40)
    ->Arg(70)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);
BENCHMARK(BM_EnStepVsDegree)
    ->Arg(10)
    ->Arg(40)
    ->Arg(70)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Iterations(1);
BENCHMARK(BM_EgjStepVsDegree)
    ->Arg(10)
    ->Arg(40)
    ->Arg(70)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Iterations(1);
BENCHMARK(BM_AggregationVsNodes)
    ->Arg(50)
    ->Arg(100)
    ->Arg(150)
    ->Arg(200)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Iterations(1);

}  // namespace
}  // namespace dstress::bench

BENCHMARK_MAIN();
