// Appendix C: contagion behaviour on synthetic two-tier banking networks,
// and the iteration budget I = ceil(log2 N).
//
// Reproduces the two 50-bank scenarios (10-bank dense core + periphery,
// following Cocco et al.):
//  1. a periphery shock that the core absorbs (small TDS, no core failures);
//  2. a core shock that cascades through the densely connected core
//     (large TDS).
// Then verifies, for N = 50..400, that ceil(log2 N) iterations bring the
// Eisenberg–Noe clearing vector within 5% of its converged value — the
// basis for the paper's choice of I.

#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/finance/workload.h"
#include "src/graph/generators.h"

namespace dstress::bench {
namespace {

void ScenarioTable() {
  Rng rng(21);
  graph::CorePeripheryParams topo;
  topo.num_vertices = 50;
  topo.core_size = 10;
  graph::Graph g = graph::GenerateCorePeriphery(topo, rng);

  finance::WorkloadParams wp;
  wp.core_size = 10;
  wp.cross_holding = 0.3;
  wp.threshold_ratio = 0.8;
  wp.penalty_ratio = 0.4;

  std::printf("# Appendix C scenarios: 50 banks, 10-bank dense core\n");
  std::printf("%-28s %14s %14s\n", "scenario", "EN TDS", "EGJ TDS");
  struct Scenario {
    const char* name;
    std::vector<int> shocked;
  };
  for (const Scenario& s :
       {Scenario{"no shock", {}}, Scenario{"periphery shock (3 banks)", {45, 46, 47}},
        Scenario{"core shock (3 banks)", {0, 1, 2}},
        Scenario{"core wipeout (6 banks)", {0, 1, 2, 3, 4, 5}}}) {
    finance::ShockParams shock;
    shock.shocked_banks = s.shocked;
    auto en_params = EnParams(g.MaxDegree(), 8);
    auto egj_params = EgjParams(g.MaxDegree(), 8);
    uint64_t en_tds =
        finance::EnSolveFixed(finance::MakeEnWorkload(g, wp, shock), en_params);
    uint64_t egj_tds =
        finance::EgjSolveFixed(finance::MakeEgjWorkload(g, wp, shock), egj_params);
    std::printf("%-28s %14llu %14llu\n", s.name, static_cast<unsigned long long>(en_tds),
                static_cast<unsigned long long>(egj_tds));
  }
  std::printf("# shape check: core shocks escalate, periphery shocks are absorbed\n\n");
}

void ConvergenceTable() {
  std::printf("# Iterations to converge vs ceil(log2 N) (EN, core shock)\n");
  std::printf("%6s %10s %12s %22s\n", "N", "log2(N)", "TDS@log2N", "rel. gap to converged");
  for (int n : {50, 100, 200, 400}) {
    Rng rng(n);
    graph::CorePeripheryParams topo;
    topo.num_vertices = n;
    topo.core_size = n / 5;
    graph::Graph g = graph::GenerateCorePeriphery(topo, rng);
    finance::WorkloadParams wp;
    wp.core_size = topo.core_size;
    finance::ShockParams shock;
    for (int b = 0; b < std::max(3, n / 16); b++) {
      shock.shocked_banks.push_back(b);  // shock ~20% of the core
    }
    finance::EnInstance instance = finance::MakeEnWorkload(g, wp, shock);

    // Dense cores at larger N need 16-bit headroom to avoid totalDebt
    // saturation masking shortfalls.
    int log_n = static_cast<int>(std::ceil(std::log2(n)));
    auto at_log = EnParams(g.MaxDegree(), log_n);
    at_log.format.value_bits = 16;
    auto converged = EnParams(g.MaxDegree(), 4 * log_n);
    converged.format.value_bits = 16;
    uint64_t tds_log = finance::EnSolveFixed(instance, at_log);
    uint64_t tds_conv = finance::EnSolveFixed(instance, converged);
    double gap = tds_conv == 0 ? 0.0
                               : std::abs(static_cast<double>(tds_log) -
                                          static_cast<double>(tds_conv)) /
                                     static_cast<double>(tds_conv);
    std::printf("%6d %10d %12llu %21.2f%%\n", n, log_n,
                static_cast<unsigned long long>(tds_log), 100 * gap);
  }
  std::printf("# paper: I = log2 N is enough for convergence on two-tier networks\n");
}

}  // namespace
}  // namespace dstress::bench

int main() {
  dstress::bench::ScenarioTable();
  dstress::bench::ConvergenceTable();
  return 0;
}
