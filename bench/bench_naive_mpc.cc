// §5.5 baseline: the naïve monolithic-MPC strawman.
//
// The paper measures a Wysteria matrix-multiplication MPC at N = 10..25
// (1.8 min at N=10, 40 min at N=25, O(N^3) growth, out of memory beyond)
// and extrapolates raising a 1750x1750 matrix to the 11th power to ~287
// years — the number motivating DStress's decomposition.
//
// We reproduce the methodology: measure our GMW engine on the same circuit
// at small N, verify the cubic growth, and extrapolate. Our engine is
// faster per gate than Wysteria's (bit-packed layers, dealer offline
// phase), so the absolute extrapolation lands in months-to-years rather
// than centuries, but the qualitative conclusion — the monolithic approach
// is 4-5 orders of magnitude slower than DStress's ~hours — is unchanged,
// and the final row prints that factor.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/baseline/naive_mpc.h"

namespace dstress::bench {
namespace {

void Run() {
  std::vector<int> sizes = FullScale() ? std::vector<int>{10, 15, 20, 25}
                                       : std::vector<int>{4, 6, 8, 10};
  std::printf("# Naive monolithic MPC baseline: N x N fixed-point matrix multiply in GMW\n");
  std::printf("%6s %12s %12s %14s %10s\n", "N", "and_gates", "time(s)", "traffic(MB)", "ok");

  double last_seconds = 0;
  int last_n = 0;
  for (int n : sizes) {
    baseline::NaiveMpcParams params;
    params.matrix_n = n;
    params.value_bits = 12;
    params.parties = 3;  // delegated-MPC variant (Sharemind-style party count)
    baseline::NaiveMpcResult result = baseline::RunNaiveMatMul(params);
    std::printf("%6d %12zu %12.2f %14.2f %10s\n", n, result.and_gates, result.seconds,
                result.total_bytes / 1e6, result.verified ? "yes" : "NO");
    std::fflush(stdout);
    last_seconds = result.seconds;
    last_n = n;
  }

  // Extrapolate the full U.S. banking system: N = 1750, I - 1 = 11 chained
  // multiplications (paper: (1750/25)^3 * 40 min * 11 ~ 287 years).
  double full_seconds = baseline::ExtrapolateMatrixPowerSeconds(last_seconds, last_n, 1750, 12);
  double years = full_seconds / (365.25 * 24 * 3600);
  double days = full_seconds / (24 * 3600);
  if (years >= 1) {
    std::printf("\n# extrapolation: N=1750, 11 multiplications -> %.0f years (%.2e s) of\n"
                "# monolithic MPC\n",
                years, full_seconds);
  } else {
    std::printf("\n# extrapolation: N=1750, 11 multiplications -> %.0f days (%.2e s) of\n"
                "# monolithic MPC\n",
                days, full_seconds);
  }
  std::printf("# paper's extrapolation from Wysteria at N=25: ~287 years; our GMW engine\n"
              "# is ~1000x faster per gate, which shrinks the absolute number but not the\n"
              "# O(N^3) shape\n");
  std::printf("# the distributed DStress run of the same system takes minutes-to-hours\n"
              "# (bench_fig6): the monolithic baseline remains ~%.0fx slower\n",
              full_seconds / (5 * 3600.0));
}

}  // namespace
}  // namespace dstress::bench

int main() {
  dstress::bench::Run();
  return 0;
}
