// §4.5 utility analysis: how often can the systemic-risk queries run, and
// how much does the DP noise distort the released TDS?
//
// Paper numbers reproduced here:
//  * privacy budget eps_max = ln 2 (adversary's confidence can at most
//    double), replenished yearly;
//  * granularity T = $1B, EGJ sensitivity 2/r = 20 at the Basel III
//    leverage bound r = 0.1 (EN: 1/r = 10);
//  * +-$200B accuracy at 95% confidence -> eps_query >= 0.23;
//  * (ln 2)/0.23 ~ 3 runs per year.
// Plus an empirical section: quantiles of the released noise at those
// parameters, confirming the $500B-scale 2015 Dodd-Frank TDS would be
// measured to within a few tens of billions.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "src/dp/edge_privacy.h"
#include "src/dp/samplers.h"
#include "src/finance/utility.h"

namespace dstress::bench {
namespace {

void Run() {
  constexpr double kLeverage = 0.1;       // Basel III bound r
  constexpr double kGranularity = 1.0;    // T, in units of $1B
  constexpr double kErrorBound = 200.0;   // +-$200B
  constexpr double kConfidence = 0.95;
  const double budget = std::log(2.0);

  double en_sensitivity = finance::EnSensitivity(kLeverage);
  double egj_sensitivity = finance::EgjSensitivity(kLeverage);
  std::printf("# Sensitivity bounds (Hemenway-Khanna), leverage r = %.2f\n", kLeverage);
  std::printf("EN  sensitivity: %5.1f x T   (paper: 1/r = 10)\n", en_sensitivity);
  std::printf("EGJ sensitivity: %5.1f x T   (paper: 2/r = 20)\n", egj_sensitivity);

  double eps_query =
      finance::EpsilonForAccuracy(egj_sensitivity, kGranularity, kErrorBound, kConfidence);
  std::printf("\n# Accuracy target: noise <= $%.0fB with %.0f%% confidence (T = $%.0fB)\n",
              kErrorBound, kConfidence * 100, kGranularity);
  std::printf("eps_query = %.3f            (paper: >= 0.23)\n", eps_query);
  std::printf("queries/year at budget ln2 = %.1f  (paper: ~3)\n",
              finance::QueriesPerYear(budget, eps_query));

  // Empirical noise draws at the chosen parameters.
  std::printf("\n# Empirical released-noise distribution, Lap(T*s/eps), s=20, eps=%.3f\n",
              eps_query);
  auto prg = crypto::ChaCha20Prg::FromSeed(99);
  constexpr int kTrials = 100000;
  std::vector<double> noise(kTrials);
  for (auto& v : noise) {
    v = dp::LaplaceSample(prg, kGranularity * egj_sensitivity / eps_query);
  }
  std::sort(noise.begin(), noise.end());
  auto quantile = [&](double q) { return noise[static_cast<size_t>(q * (kTrials - 1))]; };
  std::printf("median |noise|: $%.1fB   90%%: $%.1fB   95%%: $%.1fB   99%%: $%.1fB\n",
              std::abs(quantile(0.5)), quantile(0.95), quantile(0.975), quantile(0.995));
  int within = 0;
  for (double v : noise) {
    within += std::abs(v) <= kErrorBound ? 1 : 0;
  }
  std::printf("P(noise <= $%.0fB one-sided) target %.2f; measured two-sided coverage = %.3f\n"
              "# (the paper's eps=0.23 uses the one-sided tail; two-sided coverage at the\n"
              "#  same eps is ~90%%)\n",
              kErrorBound, kConfidence, static_cast<double>(within) / kTrials);
  std::printf("\n# context: the 2015 Dodd-Frank stress test found a TDS of ~$500B; a\n"
              "# +-$200B-accurate private estimate still separates 'safe' from 'crisis'.\n");
}

}  // namespace
}  // namespace dstress::bench

int main() {
  dstress::bench::Run();
  return 0;
}
