// Shared helpers for the benchmark harness.
//
// Scale note: every bench prints the paper-parameter rows when the
// environment variable DSTRESS_FULL=1 is set; by default the expensive
// end-to-end sweeps run a reduced configuration that finishes in minutes
// while preserving the paper's scaling shape (linear in block size for
// per-node MPC cost, ~quadratic end-to-end, O(N^3) for the naive baseline).
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <thread>
#include <vector>

#include "src/circuit/circuit.h"
#include "src/common/stopwatch.h"
#include "src/finance/eisenberg_noe.h"
#include "src/finance/elliott_golub_jackson.h"
#include "src/mpc/gmw.h"
#include "src/mpc/sharing.h"
#include "src/mpc/triples.h"
#include "src/net/transport_spec.h"

namespace dstress::bench {

inline bool FullScale() {
  const char* v = std::getenv("DSTRESS_FULL");
  return v != nullptr && v[0] == '1';
}

struct BlockMpcResult {
  double seconds = 0;
  double bytes_per_node = 0;
};

// Evaluates `circuit` once in GMW within a single block of `block_size`
// parties (dealer triples unless use_ot), mirroring the paper's Figure 3/4
// microbenchmarks that run each MPC in isolation.
inline BlockMpcResult RunBlockMpc(const circuit::Circuit& circuit, int block_size,
                                  bool use_ot = false, uint64_t seed = 1) {
  std::unique_ptr<net::Transport> net_owner = net::MakeSimTransport(block_size);
  net::Transport& net = *net_owner;
  auto prg = crypto::ChaCha20Prg::FromSeed(seed);
  mpc::BitVector inputs(circuit.num_inputs());
  for (auto& bit : inputs) {
    bit = prg.NextBit() ? 1 : 0;
  }
  auto shares = mpc::ShareBits(inputs, block_size, prg);

  std::vector<net::NodeId> ids(block_size);
  for (int i = 0; i < block_size; i++) {
    ids[i] = i;
  }
  // OT setup excluded from timing (offline phase), as in the prototype.
  std::vector<std::unique_ptr<mpc::TripleSource>> sources(block_size);
  for (int p = 0; p < block_size; p++) {
    if (use_ot) {
      sources[p] = std::make_unique<mpc::OtTripleSource>(
          &net, ids, p, crypto::ChaCha20Prg::FromSeed(seed + 1000 + p));
    } else {
      sources[p] = std::make_unique<mpc::DealerTripleSource>(p, block_size, seed);
    }
  }

  Stopwatch timer;
  std::vector<std::thread> threads;
  for (int p = 0; p < block_size; p++) {
    threads.emplace_back(
        [&, p] { mpc::GmwParty(&net, ids, p, sources[p].get()).Eval(circuit, shares[p]); });
  }
  for (auto& t : threads) {
    t.join();
  }
  BlockMpcResult result;
  result.seconds = timer.ElapsedSeconds();
  result.bytes_per_node = net.AverageBytesPerNode();
  return result;
}

// The figure benches' fixed-point format (the prototype's 12-bit shares).
inline finance::FixedPointFormat BenchFormat() {
  finance::FixedPointFormat format;
  format.value_bits = 12;
  format.frac_bits = 8;
  return format;
}

// Standard program parameters used across the figure benches.
inline finance::EnProgramParams EnParams(int degree_bound, int iterations = 7) {
  finance::EnProgramParams params;
  params.format = BenchFormat();
  params.degree_bound = degree_bound;
  params.iterations = iterations;
  params.noise_alpha = 0.5;
  params.aggregate_bits = 24;
  return params;
}

inline finance::EgjProgramParams EgjParams(int degree_bound, int iterations = 7) {
  finance::EgjProgramParams params;
  params.format = BenchFormat();
  params.degree_bound = degree_bound;
  params.iterations = iterations;
  params.noise_alpha = 0.5;
  params.aggregate_bits = 24;
  return params;
}

}  // namespace dstress::bench

#endif  // BENCH_BENCH_UTIL_H_
