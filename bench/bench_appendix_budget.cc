// Appendix B concrete instantiation: edge-privacy budget accounting for the
// message-transfer protocol at U.S.-banking-system scale.
//
// Paper numbers reproduced:
//  * N_q = Y*R*I*N*D*L*(k+1)^2 ~ 370 billion bit-share transfers over a
//    10-year failure horizon (k+1=20, L=16, I=11, R=3, N=1750, D=100);
//  * with an 8 GB lookup table (N_l ~ 230M entries) and a once-per-decade
//    failure budget, alpha_max corresponds to eps = -ln(alpha) ~ 2.34e-7
//    per transfer;
//  * an adversary watching one edge observes k*(k+1)*L noised sums per
//    iteration -> 0.0014 of the alpha-budget per iteration, 0.0469 per year
//    (33 iterations) — comfortably inside the yearly replenished budget.

#include <cstdio>
#include <initializer_list>

#include "src/dp/edge_privacy.h"

namespace dstress::bench {
namespace {

void Run() {
  dp::TransferAccountingParams params;
  params.collusion_bound_k = 19;
  params.message_bits = 16;
  params.iterations = 11;
  params.runs_per_year = 3;
  params.num_nodes = 1750;
  params.degree_bound = 100;
  params.years = 10;
  params.lookup_entries = 230'000'000;

  dp::TransferBudgetReport report = dp::EvaluateTransferBudget(params);
  std::printf("# Appendix B edge-privacy budget, k+1=%d, L=%d, N=%d, D=%d\n",
              params.collusion_bound_k + 1, params.message_bits, params.num_nodes,
              params.degree_bound);
  std::printf("sensitivity per transfer     Delta = %d\n",
              dp::TransferSensitivity(params.collusion_bound_k));
  std::printf("total transfers (10y)        N_q   = %.3e   (paper: ~3.7e11)\n",
              report.total_transfers);
  std::printf("max alpha (P_fail<=1/N_q)    alpha = %.9f\n", report.alpha_max);
  std::printf("eps per transfer             eps   = %.3e   (paper: 2.34e-7)\n",
              report.epsilon_per_transfer);
  std::printf("per-iteration budget use     k(k+1)L*eps = %.4f   (paper: 0.0014)\n",
              report.per_iteration_epsilon);
  std::printf("yearly budget use (33 iter)  %.4f   (paper: 0.0469)\n", report.yearly_epsilon);
  std::printf("failure probability          P_fail = %.3e (<= 1/N_q = %.3e)\n",
              report.failure_probability, 1.0 / report.total_transfers);

  // Sweep: how the affordable alpha scales with lookup-table memory.
  std::printf("\n# lookup-table size vs per-transfer epsilon (same N_q)\n");
  std::printf("%16s %18s\n", "table entries", "eps per transfer");
  for (int64_t entries : {10'000'000LL, 50'000'000LL, 230'000'000LL, 1'000'000'000LL}) {
    dp::TransferAccountingParams p = params;
    p.lookup_entries = entries;
    dp::TransferBudgetReport r = dp::EvaluateTransferBudget(p);
    std::printf("%16lld %18.3e\n", static_cast<long long>(entries), r.epsilon_per_transfer);
  }
}

}  // namespace
}  // namespace dstress::bench

int main() {
  dstress::bench::Run();
  return 0;
}
