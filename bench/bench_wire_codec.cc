// Wire-codec microbenchmark: encode/decode throughput of the
// length-prefixed (from, to, session, payload) frames every TCP
// multi-process run serializes. The TCP backend re-frames each message
// three times (driver -> sender bank -> receiver bank -> driver), so codec
// cost is a direct multiplier on the transport's per-message overhead.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "src/net/wire.h"

namespace dstress::bench {
namespace {

using net::FrameDecoder;
using net::WireFrame;

void BM_EncodeFrame(benchmark::State& state) {
  WireFrame frame;
  frame.from = 3;
  frame.to = 17;
  frame.session = 5ULL << 60;
  frame.payload.assign(static_cast<size_t>(state.range(0)), 0x5a);
  Bytes out;
  for (auto _ : state) {
    out.clear();
    net::AppendFrame(frame, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(out.size()));
}
BENCHMARK(BM_EncodeFrame)->Arg(16)->Arg(256)->Arg(4096)->Arg(65536);

void BM_DecodeFrameStream(benchmark::State& state) {
  // A stream of 64 frames fed in 16 KB slices, the TCP reader's pattern.
  WireFrame frame;
  frame.from = 1;
  frame.to = 2;
  frame.session = 7;
  frame.payload.assign(static_cast<size_t>(state.range(0)), 0xa5);
  Bytes stream;
  for (int i = 0; i < 64; i++) {
    net::AppendFrame(frame, &stream);
  }
  constexpr size_t kChunk = 16384;
  for (auto _ : state) {
    FrameDecoder decoder;
    WireFrame out;
    size_t pos = 0;
    while (pos < stream.size()) {
      size_t n = std::min(kChunk, stream.size() - pos);
      decoder.Feed(stream.data() + pos, n);
      pos += n;
      while (decoder.Next(&out)) {
        benchmark::DoNotOptimize(out.payload.data());
      }
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_DecodeFrameStream)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace dstress::bench

BENCHMARK_MAIN();
