// Ablation studies for the design decisions DESIGN.md calls out:
//
//  1. Kurosawa multi-recipient ElGamal (§5.1's ephemeral-key reuse) versus
//     independent encryptions — time and wire bytes per encrypted share.
//  2. Single aggregation block versus the §3.6 two-level aggregation tree —
//     aggregation-phase time and traffic as N grows.
//  3. §3.7 degree bucketing — per-vertex MPC cost under one conservative
//     degree bound versus per-bucket bounds on a core–periphery network.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/crypto/elgamal.h"
#include "src/engine/engine.h"
#include "src/graph/generators.h"
#include "src/programs/private_sum.h"

namespace dstress::bench {
namespace {

// --- 1. Kurosawa ephemeral reuse --------------------------------------------

void KurosawaAblation() {
  std::printf("# Ablation 1: multi-recipient ElGamal (Kurosawa) vs independent encryptions\n");
  std::printf("# one L=12-bit share encrypted for k+1 recipients\n");
  std::printf("block    independent(ms)  bytes     shared-ephemeral(ms)  bytes    speedup\n");
  constexpr int kBits = 12;
  constexpr int kTrials = 8;
  auto prg = crypto::ChaCha20Prg::FromSeed(42);
  for (int block_size : {8, 12, 16, 20}) {
    std::vector<crypto::ElGamalPublicKey> keys;
    std::vector<int64_t> msgs;
    for (int slot = 0; slot < block_size * kBits; slot++) {
      keys.push_back(crypto::ElGamalKeyGen(prg).pub);
      msgs.push_back(prg.NextBit() ? 1 : 0);
    }

    Stopwatch independent;
    size_t independent_bytes = 0;
    for (int t = 0; t < kTrials; t++) {
      independent_bytes = 0;
      for (size_t slot = 0; slot < keys.size(); slot++) {
        auto ct = crypto::ElGamalEncrypt(keys[slot], msgs[slot], prg);
        independent_bytes += crypto::ElGamalCiphertext::kSerializedSize;
        (void)ct;
      }
    }
    double independent_ms = independent.ElapsedSeconds() * 1e3 / kTrials;

    Stopwatch shared;
    size_t shared_bytes = 0;
    for (int t = 0; t < kTrials; t++) {
      auto multi = crypto::ElGamalEncryptMulti(keys, msgs, prg);
      shared_bytes = multi.SerializedSize();
    }
    double shared_ms = shared.ElapsedSeconds() * 1e3 / kTrials;

    std::printf("%-5d    %10.2f  %8zu     %14.2f  %8zu    %5.2fx\n", block_size, independent_ms,
                independent_bytes, shared_ms, shared_bytes, independent_ms / shared_ms);
  }
  std::printf("# shared ephemeral halves the point multiplications (2s -> s+1) and saves\n");
  std::printf("# one c1 point per slot on the wire\n\n");
}

// --- 2. aggregation tree ------------------------------------------------------

void AggregationTreeAblation() {
  std::printf("# Ablation 2: single aggregation block vs two-level tree (fanout 16)\n");
  std::printf("    N    flat agg(s)  flat MB    tree agg(s)  tree MB\n");
  for (int n : {32, 96, 200}) {
    programs::PrivateSumParams params;
    params.degree_bound = 1;
    params.noise.alpha = 0.5;
    params.noise.magnitude_bits = 8;
    params.noise.threshold_bits = 10;

    engine::RunSpec base;
    base.graph = graph::Graph(n);  // no edges: isolates the aggregation phase
    base.model = engine::ContagionModel::kCustom;
    base.custom_program = programs::BuildPrivateSumProgram(params);
    std::vector<uint32_t> values(n, 7);
    base.custom_states = programs::MakePrivateSumStates(values, params.value_bits);
    base.block_size = 4;
    base.seed = 9 + n;

    double seconds[2];
    double megabytes[2];
    int variant = 0;
    for (int fanout : {0, 16}) {
      engine::RunSpec spec = base;
      spec.aggregation_fanout = fanout;
      engine::RunReport report = engine::Engine(spec).Run();
      seconds[variant] = report.metrics.aggregate.seconds;
      megabytes[variant] = static_cast<double>(report.metrics.aggregate.bytes) / 1e6;
      variant++;
    }
    std::printf("%5d    %10.2f  %7.2f    %11.2f  %7.2f\n", n, seconds[0], megabytes[0],
                seconds[1], megabytes[1]);
  }
  std::printf("# the tree bounds the root circuit at fanout inputs; the flat block's\n");
  std::printf("# circuit (and the root node's traffic) grows linearly with N\n\n");
}

// --- 3. degree bucketing ------------------------------------------------------

void DegreeBucketingAblation() {
  std::printf("# Ablation 3: one conservative degree bound vs degree buckets (§3.7)\n");
  graph::CorePeripheryParams gp;
  gp.num_vertices = 100;
  gp.core_size = 10;
  gp.core_density = 0.9;
  gp.max_core_links = 2;
  Rng rng(5);
  graph::Graph g = graph::GenerateCorePeriphery(gp, rng);
  int conservative_d = g.MaxDegree();

  // Buckets: periphery (small degree) and core (up to max degree).
  std::vector<int> thresholds = {8, conservative_d};
  std::vector<int> buckets = graph::DegreeBuckets(g, thresholds);
  int small = 0;
  for (int b : buckets) {
    small += b == 0 ? 1 : 0;
  }

  finance::EnProgramParams en;
  en.degree_bound = conservative_d;
  en.iterations = 1;
  circuit::Circuit big = core::BuildUpdateCircuit(finance::MakeEnProgram(en));
  en.degree_bound = thresholds[0];
  circuit::Circuit small_c = core::BuildUpdateCircuit(finance::MakeEnProgram(en));

  constexpr int kBlock = 8;
  BlockMpcResult big_cost = RunBlockMpc(big, kBlock);
  BlockMpcResult small_cost = RunBlockMpc(small_c, kBlock);

  double uniform_total = static_cast<double>(g.num_vertices()) * big_cost.seconds;
  double bucketed_total =
      small * small_cost.seconds + (g.num_vertices() - small) * big_cost.seconds;

  std::printf("network: %d banks, %d-bank dense core, max degree %d\n", gp.num_vertices,
              gp.core_size, conservative_d);
  std::printf("buckets: %d banks with degree <= %d, %d with degree <= %d\n", small,
              thresholds[0], gp.num_vertices - small, conservative_d);
  std::printf("EN update circuit: D=%-3d -> %zu AND gates, %.3f s per block MPC\n",
              conservative_d, big.stats().num_and, big_cost.seconds);
  std::printf("                   D=%-3d -> %zu AND gates, %.3f s per block MPC\n", thresholds[0],
              small_c.stats().num_and, small_cost.seconds);
  std::printf("total compute-step MPC time, uniform bound:  %.1f s\n", uniform_total);
  std::printf("total compute-step MPC time, bucketed:       %.1f s (%.1fx less)\n",
              bucketed_total, uniform_total / bucketed_total);
  std::printf("# cost: reveals which bucket each bank is in (coarse degree information)\n");
}

}  // namespace
}  // namespace dstress::bench

int main() {
  dstress::bench::KurosawaAblation();
  dstress::bench::AggregationTreeAblation();
  dstress::bench::DegreeBucketingAblation();
  return 0;
}
