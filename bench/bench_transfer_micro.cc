// §5.2 "Message transfers" microbenchmarks, extended for the batched
// transfer crypto engine (docs/transfer-crypto.md).
//
// Three sections:
//  1. EC primitives (per-operation µs): variable-base EcPoint::Mul,
//     fixed-base table-backed FixedBaseTable::Mul, the generator comb
//     MulBase, and batch compression/decompression — the operations whose
//     ratio explains every role-level speedup below.
//  2. Per-transfer role walls with same-run baselines: each of the four
//     transfer roles (bundle encryption, source aggregation, destination
//     adjustment, column recovery) timed through the seed pure-scheme
//     functions AND the batched wire-level engine, on identical inputs.
//     The wire bytes are bit-identical (transfer_test pins this); only the
//     CPU time differs, so the speedup column is apples-to-apples.
//  3. The paper's §5.2 curve: end-to-end time to transfer a single 12-bit
//     message between two blocks as a function of block size (285 ms at
//     block 8 to 610 ms at block 20 in the paper; linear in k with a
//     milder quadratic component at the source endpoint).
//
// Everything is written to BENCH_transfer.json in the working directory
// (CI runs from the repo root and uploads it next to BENCH_fig6.json).

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/check.h"
#include "src/crypto/fixed_base.h"
#include "src/transfer/batch_engine.h"
#include "src/transfer/transfer.h"

namespace dstress::bench {
namespace {

struct RoleRow {
  std::string role;
  double us = 0;           // batched engine, per transfer
  double baseline_us = 0;  // seed scheme functions, per transfer
};

struct PrimitiveRow {
  std::string name;
  double us = 0;
};

void WriteJson(int block_size, const std::vector<PrimitiveRow>& primitives,
               const std::vector<RoleRow>& roles) {
  std::FILE* f = std::fopen("BENCH_transfer.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "BENCH_transfer.json: cannot open for writing, skipping\n");
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"transfer\",\n");
  std::fprintf(f, "  \"block_size\": %d,\n", block_size);
  std::fprintf(f, "  \"primitives_us\": {\n");
  for (size_t i = 0; i < primitives.size(); i++) {
    std::fprintf(f, "    \"%s\": %.3f%s\n", primitives[i].name.c_str(), primitives[i].us,
                 i + 1 < primitives.size() ? "," : "");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"roles\": [\n");
  for (size_t i = 0; i < roles.size(); i++) {
    const RoleRow& r = roles[i];
    std::fprintf(f,
                 "    {\"role\": \"%s\", \"us\": %.1f, \"baseline_us\": %.1f, "
                 "\"speedup\": %.2f}%s\n",
                 r.role.c_str(), r.us, r.baseline_us, r.baseline_us / r.us,
                 i + 1 < roles.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("# wrote BENCH_transfer.json (%zu primitives, %zu roles)\n", primitives.size(),
              roles.size());
}

std::vector<PrimitiveRow> BenchPrimitives() {
  std::vector<PrimitiveRow> rows;
  auto prg = crypto::ChaCha20Prg::FromSeed(7);
  const crypto::U256 order = crypto::CurveOrder();
  crypto::EcPoint base = crypto::MulBase(prg.NextScalar(order));

  constexpr int kOps = 256;
  std::vector<crypto::U256> scalars;
  for (int i = 0; i < kOps; i++) {
    scalars.push_back(prg.NextScalar(order));
  }

  std::vector<crypto::EcPoint> points;
  {
    Stopwatch timer;
    for (const auto& s : scalars) {
      points.push_back(base.Mul(s));
    }
    rows.push_back({"mul_variable_base", timer.ElapsedSeconds() * 1e6 / kOps});
  }
  {
    Stopwatch timer;
    crypto::FixedBaseTable table(base);
    rows.push_back({"fixed_base_table_build", timer.ElapsedSeconds() * 1e6});
    timer.Reset();
    for (const auto& s : scalars) {
      crypto::EcPoint p = table.Mul(s);
      DSTRESS_CHECK(!p.IsInfinity());
    }
    rows.push_back({"mul_fixed_base_table", timer.ElapsedSeconds() * 1e6 / kOps});
  }
  {
    Stopwatch timer;
    for (const auto& s : scalars) {
      crypto::EcPoint p = crypto::MulBase(s);
      DSTRESS_CHECK(!p.IsInfinity());
    }
    rows.push_back({"mul_base_comb", timer.ElapsedSeconds() * 1e6 / kOps});
  }
  {
    std::vector<uint8_t> wire(kOps * crypto::EcPoint::kCompressedSize);
    Stopwatch timer;
    crypto::EcPoint::CompressBatch(points.data(), kOps, wire.data());
    rows.push_back({"compress_batch", timer.ElapsedSeconds() * 1e6 / kOps});
    std::vector<crypto::EcPoint> back(kOps);
    timer.Reset();
    DSTRESS_CHECK(crypto::EcPoint::DecompressBatch(wire.data(), kOps, back.data()));
    rows.push_back({"decompress_batch", timer.ElapsedSeconds() * 1e6 / kOps});
  }
  return rows;
}

// The four transfer roles on identical inputs, seed scheme functions vs the
// batched wire engine. Per-transfer wall: encrypt and recover are per
// member-bundle/member-column (the per-edge cost a node pays as a block
// member), aggregate and adjust are per edge.
std::vector<RoleRow> BenchRoles(int block_size) {
  constexpr int kBits = 12;
  auto prg = crypto::ChaCha20Prg::FromSeed(77);
  transfer::TransferParams params;
  params.block_size = block_size;
  params.message_bits = kBits;
  params.budget_alpha = 0.9;
  params.dlog_range = params.RecommendedDlogRange(1e-9);

  transfer::BlockKeys dest_keys = transfer::TransferSetup(block_size, kBits, prg);
  crypto::U256 neighbor_key = prg.NextScalar(crypto::CurveOrder());
  transfer::BlockCertificate cert =
      transfer::MakeBlockCertificate(transfer::PublicKeysOf(dest_keys), neighbor_key);
  crypto::DlogTable table(params.dlog_range);
  transfer::EvenNoiseCache noise(table.range());
  {
    // Steady state below: tables built once per run, reused per edge. Time
    // the amortized BuildMany path here (one cert = (k+1)*L keys).
    Stopwatch timer;
    size_t keys = cert.Tables()->set.num_keys();
    double us = timer.ElapsedSeconds() * 1e6;
    std::printf("# cert table build: %.1f us (%zu keys, %.1f us/key)\n", us, keys, us / keys);
  }

  mpc::BitVector share(kBits, 0);
  for (auto& bit : share) {
    bit = prg.NextBit() ? 1 : 0;
  }
  std::vector<mpc::BitVector> member_shares(block_size, share);

  std::vector<RoleRow> rows;

  // Every seed baseline below is wire-to-wire, mirroring the Run*-task
  // bodies: deserialize incoming bytes, run the scheme function, serialize
  // outgoing bytes. The codec (an inversion per point written, a sqrt per
  // point read) is real per-role CPU on both paths.

  // --- Encrypt.
  std::vector<Bytes> seed_bundle_wires;
  double seed_encrypt_us;
  {
    std::vector<crypto::ChaCha20Prg> prgs;
    for (int x = 0; x < block_size; x++) {
      prgs.push_back(crypto::ChaCha20Prg::FromSeed(100 + x));
    }
    Stopwatch timer;
    for (int x = 0; x < block_size; x++) {
      seed_bundle_wires.push_back(transfer::EncryptSubshares(share, cert, prgs[x]).Serialize());
    }
    seed_encrypt_us = timer.ElapsedSeconds() * 1e6 / block_size;
  }
  std::vector<Bytes> bundles;
  {
    std::vector<crypto::ChaCha20Prg> prgs;
    for (int x = 0; x < block_size; x++) {
      prgs.push_back(crypto::ChaCha20Prg::FromSeed(100 + x));
    }
    Stopwatch timer;
    bundles = transfer::EncryptSubsharesWire(member_shares, cert, prgs);
    rows.push_back({"encrypt", timer.ElapsedSeconds() * 1e6 / block_size, seed_encrypt_us});
  }

  // --- Aggregate.
  Bytes seed_agg_wire;
  double seed_aggregate_us;
  {
    auto mask_prg = crypto::ChaCha20Prg::FromSeed(200);
    Stopwatch timer;
    std::vector<transfer::SubshareBundle> seed_bundles;
    for (const Bytes& raw : seed_bundle_wires) {
      seed_bundles.push_back(transfer::SubshareBundle::Deserialize(raw, block_size, kBits));
    }
    seed_agg_wire = transfer::AggregateSubshares(seed_bundles, params, mask_prg).Serialize();
    seed_aggregate_us = timer.ElapsedSeconds() * 1e6;
  }
  Bytes agg;
  {
    auto mask_prg = crypto::ChaCha20Prg::FromSeed(200);
    Stopwatch timer;
    agg = transfer::AggregateSubsharesWire(bundles, params, mask_prg, noise);
    rows.push_back({"aggregate", timer.ElapsedSeconds() * 1e6, seed_aggregate_us});
  }

  // --- Adjust (+ the fan-out split both role bodies perform).
  std::vector<Bytes> seed_column_wires;
  double seed_adjust_us;
  {
    Stopwatch timer;
    transfer::AggregatedColumns agg_cols =
        transfer::AggregatedColumns::Deserialize(seed_agg_wire, block_size, kBits);
    transfer::AggregatedColumns adjusted = transfer::AdjustAggregated(agg_cols, neighbor_key);
    for (int y = 0; y < block_size; y++) {
      transfer::MemberColumn column{adjusted.c1, adjusted.c2[y]};
      seed_column_wires.push_back(column.Serialize());
    }
    seed_adjust_us = timer.ElapsedSeconds() * 1e6;
  }
  std::vector<Bytes> columns;
  {
    Stopwatch timer;
    columns = transfer::AdjustAndSplitWire(agg, neighbor_key, params);
    rows.push_back({"adjust", timer.ElapsedSeconds() * 1e6, seed_adjust_us});
  }

  // --- Recover.
  double seed_recover_us;
  {
    Stopwatch timer;
    for (int y = 0; y < block_size; y++) {
      transfer::MemberColumn column =
          transfer::MemberColumn::Deserialize(seed_column_wires[y], kBits);
      mpc::BitVector recovered;
      DSTRESS_CHECK(transfer::RecoverShare(column, dest_keys.members[y], table, &recovered));
    }
    seed_recover_us = timer.ElapsedSeconds() * 1e6 / block_size;
  }
  {
    std::vector<const transfer::MemberKeys*> member_keys;
    for (int y = 0; y < block_size; y++) {
      member_keys.push_back(&dest_keys.members[y]);
    }
    std::vector<mpc::BitVector> recovered;
    Stopwatch timer;
    DSTRESS_CHECK(transfer::RecoverSharesWire(columns, member_keys, table, params, &recovered));
    rows.push_back({"recover", timer.ElapsedSeconds() * 1e6 / block_size, seed_recover_us});
  }
  return rows;
}

// §5.2 end-to-end single-message transfer through the real role tasks and a
// sim transport, per block size (the paper's 285 ms .. 610 ms curve).
double SingleTransferMs(int block_size) {
  constexpr int kBits = 12;
  auto prg = crypto::ChaCha20Prg::FromSeed(77);
  transfer::TransferParams params;
  params.block_size = block_size;
  params.message_bits = kBits;
  params.budget_alpha = 0.99;
  params.dlog_range = params.RecommendedDlogRange(1e-12);

  transfer::BlockKeys dest_keys = transfer::TransferSetup(block_size, kBits, prg);
  crypto::U256 neighbor_key = prg.NextScalar(crypto::CurveOrder());
  transfer::BlockCertificate cert =
      transfer::MakeBlockCertificate(transfer::PublicKeysOf(dest_keys), neighbor_key);
  crypto::DlogTable table(params.dlog_range);

  mpc::BitVector message(kBits, 1);
  auto shares = mpc::ShareBits(message, block_size, prg);

  // Nodes: 0 = i, 1 = j, 2.. = block members (distinct for clean per-role
  // accounting).
  std::unique_ptr<net::Transport> net_owner = net::MakeSimTransport(2 + 2 * block_size);
  net::Transport& net = *net_owner;
  std::vector<net::NodeId> members_i, members_j;
  for (int m = 0; m < block_size; m++) {
    members_i.push_back(2 + m);
    members_j.push_back(2 + block_size + m);
  }
  Stopwatch timer;
  std::vector<std::thread> threads;
  for (int x = 0; x < block_size; x++) {
    threads.emplace_back([&, x] {
      auto role_prg = crypto::ChaCha20Prg::FromSeed(100 + x);
      transfer::RunSenderMember(&net, members_i[x], 0, 1, shares[x], cert, role_prg);
    });
  }
  threads.emplace_back([&] {
    auto role_prg = crypto::ChaCha20Prg::FromSeed(200);
    transfer::RunSourceEndpoint(&net, 0, members_i, 1, 1, params, role_prg);
  });
  threads.emplace_back(
      [&] { transfer::RunDestEndpoint(&net, 1, 0, members_j, 1, neighbor_key, params); });
  std::vector<mpc::BitVector> received(block_size);
  for (int y = 0; y < block_size; y++) {
    threads.emplace_back([&, y] {
      received[y] = transfer::RunReceiverMember(&net, members_j[y], 1, 1, dest_keys.members[y],
                                                table, params);
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  double ms = timer.ElapsedSeconds() * 1e3;
  DSTRESS_CHECK(mpc::ReconstructBits(received) == message);
  return ms;
}

void Run() {
  std::printf("# transfer-phase crypto microbenchmarks (docs/transfer-crypto.md)\n");

  std::printf("\n# EC primitives\n%28s %12s\n", "op", "us");
  std::vector<PrimitiveRow> primitives = BenchPrimitives();
  for (const PrimitiveRow& p : primitives) {
    std::printf("%28s %12.3f\n", p.name.c_str(), p.us);
  }

  int block_size = FullScale() ? 20 : 8;
  std::printf("\n# transfer roles, block size %d: batched wire engine vs seed scheme\n",
              block_size);
  std::printf("%12s %12s %14s %10s\n", "role", "us", "baseline-us", "speedup");
  std::vector<RoleRow> roles = BenchRoles(block_size);
  for (const RoleRow& r : roles) {
    std::printf("%12s %12.1f %14.1f %9.1fx\n", r.role.c_str(), r.us, r.baseline_us,
                r.baseline_us / r.us);
  }

  std::printf("\n# §5.2 single 12-bit message transfer, seed role tasks over sim transport\n");
  std::printf("# (paper: 285 ms at block 8 .. 610 ms at block 20)\n");
  std::printf("%12s %12s\n", "block", "ms");
  std::vector<int> block_sizes =
      FullScale() ? std::vector<int>{8, 12, 16, 20} : std::vector<int>{8, 12};
  for (int b : block_sizes) {
    std::printf("%12d %12.1f\n", b, SingleTransferMs(b));
  }

  WriteJson(block_size, primitives, roles);
}

}  // namespace
}  // namespace dstress::bench

int main() {
  dstress::bench::Run();
  return 0;
}
