// §5.2 "Message transfers": end-to-end time to transfer a single 12-bit
// message between two blocks, as a function of block size.
//
// Paper numbers: 285 ms with 8-node blocks to 610 ms with 20-node blocks,
// roughly proportional to k (each member encrypts k+1 subshare columns)
// with a milder quadratic component at node i (combining the (k+1)^2
// encrypted subshares via cheap homomorphic additions; exponentiations
// dominate). Our curve preserves exactly that shape: the wall time is
// dominated by the (k+1)^2 * L variable-base scalar multiplications of the
// sender members, which run in parallel across members.

#include <benchmark/benchmark.h>

#include <thread>

#include "bench/bench_util.h"
#include "src/transfer/transfer.h"

namespace dstress::bench {
namespace {

void BM_SingleMessageTransfer(benchmark::State& state) {
  int block_size = static_cast<int>(state.range(0));
  constexpr int kBits = 12;
  auto prg = crypto::ChaCha20Prg::FromSeed(77);
  transfer::TransferParams params;
  params.block_size = block_size;
  params.message_bits = kBits;
  params.budget_alpha = 0.99;
  params.dlog_range = params.RecommendedDlogRange(1e-12);

  transfer::BlockKeys dest_keys = transfer::TransferSetup(block_size, kBits, prg);
  crypto::U256 neighbor_key = prg.NextScalar(crypto::CurveOrder());
  transfer::BlockCertificate cert =
      transfer::MakeBlockCertificate(transfer::PublicKeysOf(dest_keys), neighbor_key);
  crypto::DlogTable table(params.dlog_range);

  mpc::BitVector message(kBits, 1);
  auto shares = mpc::ShareBits(message, block_size, prg);

  for (auto _ : state) {
    // Nodes: 0 = i, 1 = j, 2.. = block members (distinct for clean
    // per-role accounting).
    std::unique_ptr<net::Transport> net_owner = net::MakeSimTransport(2 + 2 * block_size);
    net::Transport& net = *net_owner;
    std::vector<net::NodeId> members_i, members_j;
    for (int m = 0; m < block_size; m++) {
      members_i.push_back(2 + m);
      members_j.push_back(2 + block_size + m);
    }
    Stopwatch timer;
    std::vector<std::thread> threads;
    for (int x = 0; x < block_size; x++) {
      threads.emplace_back([&, x] {
        auto role_prg = crypto::ChaCha20Prg::FromSeed(100 + x);
        transfer::RunSenderMember(&net, members_i[x], 0, 1, shares[x], cert, role_prg);
      });
    }
    threads.emplace_back([&] {
      auto role_prg = crypto::ChaCha20Prg::FromSeed(200);
      transfer::RunSourceEndpoint(&net, 0, members_i, 1, 1, params, role_prg);
    });
    threads.emplace_back(
        [&] { transfer::RunDestEndpoint(&net, 1, 0, members_j, 1, neighbor_key, params); });
    std::vector<mpc::BitVector> received(block_size);
    for (int y = 0; y < block_size; y++) {
      threads.emplace_back([&, y] {
        received[y] = transfer::RunReceiverMember(&net, members_j[y], 1, 1,
                                                  dest_keys.members[y], table, params);
      });
    }
    for (auto& t : threads) {
      t.join();
    }
    state.SetIterationTime(timer.ElapsedSeconds());
    if (mpc::ReconstructBits(received) != message) {
      state.SkipWithError("transfer corrupted the message");
    }
  }
}

BENCHMARK(BM_SingleMessageTransfer)
    ->Arg(8)
    ->Arg(12)
    ->Arg(16)
    ->Arg(20)
    ->Unit(benchmark::kMillisecond)
    ->UseManualTime()
    ->Iterations(2);

}  // namespace
}  // namespace dstress::bench

BENCHMARK_MAIN();
