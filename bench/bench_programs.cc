// Cost of the general-purpose program library (not a paper figure; supports
// the §3.1 claim that the vertex-program model covers non-finance
// workloads). Reports update-circuit complexity per program and a small
// end-to-end run, so regressions in the generic programs are visible next
// to the finance ones.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/engine/engine.h"
#include "src/graph/generators.h"
#include "src/programs/components.h"
#include "src/programs/histogram.h"
#include "src/programs/influence.h"
#include "src/programs/private_sum.h"
#include "src/programs/reachability.h"

namespace dstress::bench {
namespace {

void CircuitComplexity() {
  std::printf("# update-circuit complexity per program (degree bound 16)\n");
  std::printf("%-14s %12s %12s %10s\n", "program", "AND gates", "AND depth", "inputs");
  dp::NoiseCircuitSpec noise;

  programs::PrivateSumParams sum;
  sum.degree_bound = 16;
  sum.noise = noise;
  programs::ReachabilityParams reach;
  reach.degree_bound = 16;
  reach.hops = 1;
  reach.noise = noise;
  programs::InfluenceParams inf;
  inf.degree_bound = 16;
  inf.noise = noise;
  programs::ComponentsParams comp;
  comp.degree_bound = 16;
  comp.label_bits = 10;
  comp.noise = noise;
  programs::HistogramParams hist;
  hist.degree_bound = 16;
  hist.num_buckets = 4;
  hist.counter_bits = 8;
  hist.noise = noise;

  struct Row {
    const char* name;
    core::VertexProgram program;
  };
  const Row rows[] = {
      {"private_sum", programs::BuildPrivateSumProgram(sum)},
      {"reachability", programs::BuildReachabilityProgram(reach)},
      {"influence", programs::BuildInfluenceProgram(inf)},
      {"components", programs::BuildComponentsProgram(comp)},
      {"histogram", programs::BuildHistogramProgram(hist)},
  };
  for (const Row& row : rows) {
    circuit::Circuit c = core::BuildUpdateCircuit(row.program);
    std::printf("%-14s %12zu %12zu %10zu\n", row.name, c.stats().num_and, c.stats().and_depth,
                c.stats().num_inputs);
  }
  std::printf("# OR/min-compare programs are far cheaper per step than the fixed-point\n"
              "# division in EN/EGJ (compare bench_fig3: ~4k-59k AND gates)\n\n");
}

void EndToEnd() {
  std::printf("# end-to-end: influence diffusion, N=24 scale-free, block 4, 3 iterations\n");
  Rng rng(6);
  graph::Graph g = graph::GenerateScaleFree(24, 2, rng);
  programs::InfluenceParams params;
  params.degree_bound = g.MaxDegree();
  params.iterations = 3;
  params.noise.alpha = 0.5;
  params.noise.magnitude_bits = 8;
  params.noise.threshold_bits = 12;
  std::vector<uint16_t> masses(24, 500);
  engine::RunSpec spec;
  spec.graph = g;
  spec.model = engine::ContagionModel::kCustom;
  spec.custom_program = programs::BuildInfluenceProgram(params);
  spec.custom_states = programs::MakeInfluenceStates(masses);
  spec.block_size = 4;
  spec.seed = 12;
  engine::RunReport report = engine::Engine(spec).Run();
  auto reference = programs::PlaintextInfluence(g, masses, params);
  int64_t expected = 0;
  for (uint16_t mass : reference) {
    expected += mass;
  }
  std::printf("released %lld (exact %lld), %s\n", static_cast<long long>(report.released),
              static_cast<long long>(expected), report.metrics.ToString().c_str());
}

}  // namespace
}  // namespace dstress::bench

int main() {
  dstress::bench::CircuitComplexity();
  dstress::bench::EndToEnd();
  return 0;
}
