#include "src/graphplane/plane.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace dstress::graphplane {

namespace {

// Words of up to 64 lanes evaluated per pool task: keeps the per-task wire
// scratch (num_wires * chunk words) cache-resident, same sizing as the
// packed-share data plane's chunking.
constexpr size_t kWordsPerTask = 16;

int SlotOf(const std::vector<int>& neighbors, int target) {
  for (size_t i = 0; i < neighbors.size(); i++) {
    if (neighbors[i] == target) {
      return static_cast<int>(i);
    }
  }
  DSTRESS_CHECK(false);
  return -1;
}

}  // namespace

void InsertBits(Bytes* out, size_t bit_offset, uint64_t bits, int count) {
  if (count < 64) {
    bits &= (1ULL << count) - 1;
  }
  size_t byte = bit_offset / 8;
  const int shift = static_cast<int>(bit_offset % 8);
  (*out)[byte] |= static_cast<uint8_t>(bits << shift);
  for (int written = 8 - shift; written < count; written += 8) {
    (*out)[++byte] |= static_cast<uint8_t>(bits >> written);
  }
}

uint64_t ExtractBits(const Bytes& raw, size_t bit_offset, int count) {
  size_t byte = bit_offset / 8;
  const int shift = static_cast<int>(bit_offset % 8);
  uint64_t bits = raw[byte] >> shift;
  for (int got = 8 - shift; got < count; got += 8) {
    bits |= static_cast<uint64_t>(raw[++byte]) << got;
  }
  if (count < 64) {
    bits &= (1ULL << count) - 1;
  }
  return bits;
}

void PackSoloStates(const std::vector<mpc::BitVector>& states, mpc::PackedShareMatrix* in_mat) {
  const int n = static_cast<int>(states.size());
  DSTRESS_CHECK(n > 0);
  DSTRESS_CHECK(in_mat->instances() == static_cast<size_t>(n));
  const size_t sb = states[0].size();
  DSTRESS_CHECK(in_mat->rows() >= sb);
  for (int lo = 0; lo < n; lo += 64) {
    const int hi = std::min(n, lo + 64);
    const size_t w = static_cast<size_t>(lo) / 64;
    for (size_t r = 0; r < sb; r++) {
      uint64_t word = 0;
      for (int v = lo; v < hi; v++) {
        word |= static_cast<uint64_t>(states[static_cast<size_t>(v)][r] & 1)
                << (v - lo);
      }
      in_mat->row(r)[w] = word;
    }
  }
}

GraphPlane::GraphPlane(const graph::Graph& graph, const core::VertexProgram& program,
                       const circuit::EvalPlan& update_plan, core::WorkerPool* pool,
                       net::Transport* net, Options options)
    : graph_(graph),
      update_plan_(update_plan),
      pool_(pool),
      net_(net),
      n_(graph.num_vertices()),
      sb_(program.state_bits),
      mb_(program.message_bits),
      degree_bound_(program.degree_bound),
      num_scenarios_(options.num_scenarios),
      stride_(options.stride),
      session_base_(options.edge_session_base) {
  DSTRESS_CHECK(n_ > 0);
  DSTRESS_CHECK(num_scenarios_ >= 1 && num_scenarios_ <= 64);
  DSTRESS_CHECK(stride_ >= num_scenarios_ && stride_ <= 64);
  DSTRESS_CHECK((stride_ & (stride_ - 1)) == 0);  // power of two => divides 64
  DSTRESS_CHECK(update_plan_.num_inputs() ==
                static_cast<size_t>(sb_) + static_cast<size_t>(degree_bound_) * mb_);
  DSTRESS_CHECK(update_plan_.num_outputs() == update_plan_.num_inputs());

  lanes_ = static_cast<size_t>(n_) * stride_;
  words_ = (lanes_ + 63) / 64;
  group_mask_ = num_scenarios_ >= 64 ? ~0ULL : (1ULL << num_scenarios_) - 1;

  // CSR over Edges() order: out-neighbors are stored in insertion order, so
  // the global edge index of v's slot-th out-edge is out_start_[v] + slot.
  out_start_.resize(static_cast<size_t>(n_) + 1, 0);
  out_deg_.resize(static_cast<size_t>(n_), 0);
  for (int v = 0; v < n_; v++) {
    out_deg_[static_cast<size_t>(v)] = graph_.OutDegree(v);
    out_start_[static_cast<size_t>(v) + 1] =
        out_start_[static_cast<size_t>(v)] + static_cast<size_t>(graph_.OutDegree(v));
  }
  const size_t num_edges = out_start_[static_cast<size_t>(n_)];
  edge_dst_.reserve(num_edges);
  edge_in_slot_.reserve(num_edges);
  for (int v = 0; v < n_; v++) {
    for (int dst : graph_.OutNeighbors(v)) {
      edge_dst_.push_back(dst);
      edge_in_slot_.push_back(SlotOf(graph_.InNeighbors(dst), v));
    }
  }

  valid_mask_.resize(words_, 0);
  for (size_t w = 0; w < words_; w++) {
    uint64_t mask = 0;
    for (int bit = 0; bit < 64; bit++) {
      const size_t lane = w * 64 + static_cast<size_t>(bit);
      if (lane >= lanes_) {
        break;
      }
      if (static_cast<int>(lane % static_cast<size_t>(stride_)) < num_scenarios_) {
        mask |= 1ULL << bit;
      }
    }
    valid_mask_[w] = mask;
  }

  const uint64_t payload_bytes =
      (static_cast<uint64_t>(mb_) * static_cast<uint64_t>(num_scenarios_) + 7) / 8;
  edge_delta_.resize(static_cast<size_t>(n_));
  for (int v = 0; v < n_; v++) {
    for (int slot = 0; slot < out_deg_[static_cast<size_t>(v)]; slot++) {
      const int dst = edge_dst_[out_start_[static_cast<size_t>(v)] + static_cast<size_t>(slot)];
      edge_delta_[static_cast<size_t>(v)].bytes_sent += payload_bytes;
      edge_delta_[static_cast<size_t>(v)].messages_sent += 1;
      edge_delta_[static_cast<size_t>(dst)].bytes_received += payload_bytes;
      edge_delta_[static_cast<size_t>(dst)].messages_received += 1;
    }
  }

  in_mat_ = mpc::PackedShareMatrix(update_plan_.num_inputs(), lanes_);
  out_msg_mat_ =
      mpc::PackedShareMatrix(static_cast<size_t>(degree_bound_) * mb_, lanes_);
  active_.resize(words_, 0);
  next_active_.resize(words_, 0);
  msg_dirty_.resize(words_ * static_cast<size_t>(degree_bound_), 0);
  Reset();
}

void GraphPlane::Reset() {
  std::fill(in_mat_.data(), in_mat_.data() + in_mat_.rows() * in_mat_.words_per_row(), 0);
  std::fill(out_msg_mat_.data(),
            out_msg_mat_.data() + out_msg_mat_.rows() * out_msg_mat_.words_per_row(), 0);
  std::fill(active_.begin(), active_.end(), 1);
  std::fill(next_active_.begin(), next_active_.end(), 0);
  std::fill(msg_dirty_.begin(), msg_dirty_.end(), 0);
  active_list_.clear();
  stats_ = Stats{};
}

void GraphPlane::ComputeStep() {
  active_list_.clear();
  for (size_t w = 0; w < words_; w++) {
    if (active_[w]) {
      active_list_.push_back(w);
    }
  }
  stats_.words_evaluated += active_list_.size();
  stats_.words_skipped += words_ - active_list_.size();
  std::fill(next_active_.begin(), next_active_.end(), 0);
  std::fill(msg_dirty_.begin(), msg_dirty_.end(), 0);
  if (active_list_.empty()) {
    return;
  }

  const size_t in_rows = update_plan_.num_inputs();
  const size_t out_rows = update_plan_.num_outputs();
  const size_t num_wires = update_plan_.num_wires();
  const int d = degree_bound_;
  const size_t num_tasks = (active_list_.size() + kWordsPerTask - 1) / kWordsPerTask;
  pool_->RunGrouped(num_tasks, 1, [&](size_t task, size_t) {
    const size_t i0 = task * kWordsPerTask;
    const size_t cw = std::min(kWordsPerTask, active_list_.size() - i0);
    // Grow-only thread-local staging: the frontier's words are scattered,
    // so they are gathered into contiguous rows for EvalPacked and
    // scattered back. Buffers persist across iterations and runs (the pool
    // threads are persistent), so the hot loop allocates nothing once warm.
    static thread_local std::vector<uint64_t> in_buf;
    static thread_local std::vector<uint64_t> out_buf;
    static thread_local std::vector<uint64_t> scratch_buf;
    if (in_buf.size() < in_rows * cw) in_buf.resize(in_rows * cw);
    if (out_buf.size() < out_rows * cw) out_buf.resize(out_rows * cw);
    if (scratch_buf.size() < num_wires * cw) scratch_buf.resize(num_wires * cw);
    for (size_t r = 0; r < in_rows; r++) {
      const uint64_t* src = in_mat_.row(r);
      for (size_t k = 0; k < cw; k++) {
        in_buf[r * cw + k] = src[active_list_[i0 + k]];
      }
    }
    update_plan_.EvalPacked(in_buf.data(), cw, out_buf.data(), scratch_buf.data());
    for (size_t k = 0; k < cw; k++) {
      const size_t w = active_list_[i0 + k];
      const uint64_t valid = valid_mask_[w];
      // New state goes straight back into the input arena (the container
      // plane's out->in state copy, fused); a masked change re-activates
      // the word, since its next evaluation reads the changed state.
      uint64_t state_changed = 0;
      for (int r = 0; r < sb_; r++) {
        uint64_t* dst = &in_mat_.row(static_cast<size_t>(r))[w];
        const uint64_t value = out_buf[static_cast<size_t>(r) * cw + k];
        state_changed |= (*dst ^ value) & valid;
        *dst = value;
      }
      if (state_changed != 0) {
        next_active_[w] = 1;
      }
      // Out-messages land in the message arena; per-slot masked diffs
      // become the dirty set the communicate step delivers.
      for (int slot = 0; slot < d; slot++) {
        uint64_t changed = 0;
        for (int r = 0; r < mb_; r++) {
          const size_t msg_row = static_cast<size_t>(slot) * mb_ + static_cast<size_t>(r);
          uint64_t* dst = &out_msg_mat_.row(msg_row)[w];
          const uint64_t value = out_buf[(static_cast<size_t>(sb_) + msg_row) * cw + k];
          changed |= (*dst ^ value) & valid;
          *dst = value;
        }
        msg_dirty_[w * static_cast<size_t>(d) + static_cast<size_t>(slot)] = changed;
      }
    }
  });
}

void GraphPlane::CommunicateStep() {
  stats_.iterations++;
  if (net_->MeterSelfDelivered(edge_delta_)) {
    stats_.bulk_metered = true;
    DeliverDirtyGroups();
  } else {
    stats_.bulk_metered = false;
    SendAllEdges();
  }
  std::swap(active_, next_active_);
}

// In-arena delivery: only edges whose out-message changed at the last
// evaluation move bytes (invariant: after every CommunicateStep, each
// in-slot equals its source's current out-slot — both start at ⊥ and every
// change is delivered — so an unchanged out-message is already present at
// the receiver). Receivers of a changed message are re-activated.
void GraphPlane::DeliverDirtyGroups() {
  const int d = degree_bound_;
  for (size_t w : active_list_) {
    for (int slot = 0; slot < d; slot++) {
      uint64_t dirty = msg_dirty_[w * static_cast<size_t>(d) + static_cast<size_t>(slot)];
      while (dirty != 0) {
        const int bit = __builtin_ctzll(dirty);
        const size_t lane = w * 64 + static_cast<size_t>(bit);
        const size_t v = lane / static_cast<size_t>(stride_);
        const size_t group_lane = v * static_cast<size_t>(stride_);
        const int shift = static_cast<int>(group_lane & 63);
        dirty &= ~(group_mask_ << shift);
        if (slot >= out_deg_[v]) {
          continue;  // padded slot: the update emits it but no edge carries it
        }
        const size_t e = out_start_[v] + static_cast<size_t>(slot);
        const size_t dest_lane = static_cast<size_t>(edge_dst_[e]) * stride_;
        const size_t dest_word = dest_lane >> 6;
        const int dest_shift = static_cast<int>(dest_lane & 63);
        const size_t src_row0 = static_cast<size_t>(slot) * mb_;
        const size_t dst_row0 =
            static_cast<size_t>(sb_) + static_cast<size_t>(edge_in_slot_[e]) * mb_;
        for (int r = 0; r < mb_; r++) {
          const uint64_t bits =
              (out_msg_mat_.row(src_row0 + static_cast<size_t>(r))[w] >> shift) & group_mask_;
          uint64_t* dst = &in_mat_.row(dst_row0 + static_cast<size_t>(r))[dest_word];
          *dst = (*dst & ~(group_mask_ << dest_shift)) | (bits << dest_shift);
        }
        next_active_[dest_word] = 1;
        stats_.groups_delivered++;
      }
    }
  }
}

// Literal-send fallback (observer attached, or a non-sim wire): every edge
// carries its payload for real, byte-identical to the container plane —
// send-all then receive-all in global edge order, payload bit r*S+s =
// message bit r of scenario s. Receipt of a changed message re-activates
// the receiver; receipt of an identical one is a no-op either way.
void GraphPlane::SendAllEdges() {
  const int s_count = num_scenarios_;
  const size_t payload_bits = static_cast<size_t>(mb_) * static_cast<size_t>(s_count);
  const size_t payload_bytes = (payload_bits + 7) / 8;
  for (int v = 0; v < n_; v++) {
    const size_t lane = static_cast<size_t>(v) * stride_;
    const size_t w = lane >> 6;
    const int shift = static_cast<int>(lane & 63);
    for (int slot = 0; slot < out_deg_[static_cast<size_t>(v)]; slot++) {
      const size_t e = out_start_[static_cast<size_t>(v)] + static_cast<size_t>(slot);
      Bytes payload(payload_bytes, 0);
      for (int r = 0; r < mb_; r++) {
        const uint64_t bits =
            (out_msg_mat_.row(static_cast<size_t>(slot) * mb_ + static_cast<size_t>(r))[w] >>
             shift) &
            group_mask_;
        InsertBits(&payload, static_cast<size_t>(r) * static_cast<size_t>(s_count), bits,
                   s_count);
      }
      net_->Send(v, edge_dst_[e], std::move(payload), session_base_ | e);
    }
  }
  for (int v = 0; v < n_; v++) {
    for (int slot = 0; slot < out_deg_[static_cast<size_t>(v)]; slot++) {
      const size_t e = out_start_[static_cast<size_t>(v)] + static_cast<size_t>(slot);
      const int j = edge_dst_[e];
      Bytes raw = net_->Recv(j, v, session_base_ | e);
      DSTRESS_CHECK(raw.size() == payload_bytes);
      const size_t dest_lane = static_cast<size_t>(j) * stride_;
      const size_t dest_word = dest_lane >> 6;
      const int dest_shift = static_cast<int>(dest_lane & 63);
      const size_t dst_row0 =
          static_cast<size_t>(sb_) + static_cast<size_t>(edge_in_slot_[e]) * mb_;
      bool changed = false;
      for (int r = 0; r < mb_; r++) {
        const uint64_t bits =
            ExtractBits(raw, static_cast<size_t>(r) * static_cast<size_t>(s_count), s_count);
        uint64_t* dst = &in_mat_.row(dst_row0 + static_cast<size_t>(r))[dest_word];
        if (((*dst >> dest_shift) & group_mask_) != bits) {
          changed = true;
        }
        *dst = (*dst & ~(group_mask_ << dest_shift)) | (bits << dest_shift);
      }
      if (changed) {
        next_active_[dest_word] = 1;
        stats_.groups_delivered++;
      }
    }
  }
}

bool GraphPlane::AllConverged() const {
  for (uint8_t a : active_) {
    if (a) {
      return false;
    }
  }
  return true;
}

size_t GraphPlane::ActiveWords() const {
  size_t count = 0;
  for (uint8_t a : active_) {
    count += a ? 1 : 0;
  }
  return count;
}

mpc::BitVector GraphPlane::VertexState(int vertex, int scenario) const {
  DSTRESS_CHECK(vertex >= 0 && vertex < n_);
  DSTRESS_CHECK(scenario >= 0 && scenario < num_scenarios_);
  const size_t lane = static_cast<size_t>(vertex) * stride_ + static_cast<size_t>(scenario);
  mpc::BitVector state(static_cast<size_t>(sb_));
  for (int r = 0; r < sb_; r++) {
    state[static_cast<size_t>(r)] = in_mat_.Get(static_cast<size_t>(r), lane) ? 1 : 0;
  }
  return state;
}

uint64_t GraphPlane::StateLaneGroup(size_t row, int vertex, int count) const {
  return in_mat_.GetLaneGroup(row, static_cast<size_t>(vertex) * stride_, count);
}

mpc::PackedShareMatrix GraphPlane::EvalOverStates(const circuit::EvalPlan& plan) const {
  DSTRESS_CHECK(plan.num_inputs() == static_cast<size_t>(sb_));
  mpc::PackedShareMatrix out(plan.num_outputs(), lanes_);
  const size_t in_rows = plan.num_inputs();
  const size_t out_rows = plan.num_outputs();
  const size_t num_wires = plan.num_wires();
  const size_t num_tasks = (words_ + kWordsPerTask - 1) / kWordsPerTask;
  pool_->RunGrouped(num_tasks, 1, [&](size_t task, size_t) {
    const size_t w0 = task * kWordsPerTask;
    const size_t cw = std::min(kWordsPerTask, words_ - w0);
    static thread_local std::vector<uint64_t> in_buf;
    static thread_local std::vector<uint64_t> out_buf;
    static thread_local std::vector<uint64_t> scratch_buf;
    if (in_buf.size() < in_rows * cw) in_buf.resize(in_rows * cw);
    if (out_buf.size() < out_rows * cw) out_buf.resize(out_rows * cw);
    if (scratch_buf.size() < num_wires * cw) scratch_buf.resize(num_wires * cw);
    for (size_t r = 0; r < in_rows; r++) {
      std::copy_n(in_mat_.row(r) + w0, cw, &in_buf[r * cw]);
    }
    plan.EvalPacked(in_buf.data(), cw, out_buf.data(), scratch_buf.data());
    for (size_t r = 0; r < out_rows; r++) {
      std::copy_n(&out_buf[r * cw], cw, out.row(r) + w0);
    }
  });
  return out;
}

std::vector<uint64_t> GraphPlane::ScenarioSums(const mpc::PackedShareMatrix& contrib,
                                               int agg_bits) const {
  DSTRESS_CHECK(agg_bits > 0 && agg_bits <= 64);
  DSTRESS_CHECK(contrib.rows() >= static_cast<size_t>(agg_bits));
  DSTRESS_CHECK(contrib.instances() == lanes_);
  std::vector<uint64_t> sums(static_cast<size_t>(num_scenarios_), 0);
  uint64_t block[64];
  for (size_t w = 0; w < words_; w++) {
    for (int b = 0; b < 64; b++) {
      block[b] = b < agg_bits ? contrib.row(static_cast<size_t>(b))[w] : 0;
    }
    mpc::TransposeBits64x64(block);
    uint64_t valid = valid_mask_[w];
    while (valid != 0) {
      const int bit = __builtin_ctzll(valid);
      valid &= valid - 1;
      const size_t lane = w * 64 + static_cast<size_t>(bit);
      sums[lane % static_cast<size_t>(stride_)] += block[bit];
    }
  }
  return sums;
}

}  // namespace dstress::graphplane
