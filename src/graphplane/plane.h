// Flat-arena cleartext graph plane (docs/graph-plane.md).
//
// The first cleartext backend kept per-vertex std::vector<uint8_t> state
// and message containers — three heap objects per vertex plus two per edge
// slot — which capped scenario sweeps around N=10k (ROADMAP item 3). This
// module is the FlashGraph-shaped replacement: the whole iteration state
// lives in two flat bitsliced arenas indexed by vertex lane, an
// active-vertex frontier skips words whose inputs cannot have changed, and
// message movement is a masked word copy along CSR edge offsets instead of
// a per-edge heap allocation.
//
//  * State arena: one mpc::PackedShareMatrix holding the update circuit's
//    input rows — [state_bits rows][degree_bound * message_bits in-slot
//    rows] — over n * stride lanes (scenario s of vertex v at lane
//    v*stride + s, exactly the ensemble lane plane's layout; a solo run is
//    the degenerate S = stride = 1 case).
//  * Message arena: the out-message rows of the last evaluation, double-
//    buffered against the state arena's in-slots so an iteration reads last
//    round's messages while writing this round's.
//  * Frontier: one byte per 64-lane word. A word is evaluated only when its
//    state changed at its last evaluation or a changed message was
//    delivered to it; the update circuit is deterministic, so skipping a
//    word with unchanged inputs reproduces its outputs by definition.
//  * Fidelity: the frontier changes which words are *evaluated*, never what
//    is *sent*. Every directed edge is metered (or literally sent) every
//    iteration, so released figures, per-vertex states, per-node
//    TrafficStats and ensemble per-lane results are bit-identical to the
//    container plane. Bulk metering needs the transport's cooperation
//    (net::Transport::MeterSelfDelivered); when the transport refuses —
//    attached observer, real wire — the plane falls back to one literal
//    Send/Recv per edge with the legacy payload bytes.
//
// The plane is engine-agnostic: it owns no transport, pool or circuits,
// only references, so tests drive it directly and the arena backend
// (src/engine/arena_cleartext_backend.cc) composes it per run or per
// ensemble chunk.
#ifndef SRC_GRAPHPLANE_PLANE_H_
#define SRC_GRAPHPLANE_PLANE_H_

#include <cstdint>
#include <vector>

#include "src/circuit/eval_plan.h"
#include "src/common/bytes.h"
#include "src/core/vertex_program.h"
#include "src/core/worker_pool.h"
#include "src/graph/graph.h"
#include "src/mpc/packed.h"
#include "src/net/transport.h"

namespace dstress::graphplane {

// Ensemble payload bit helpers (payload bit r*S + s is message bit r of
// scenario s; S=1 degenerates to plain LSB-first bit packing). Shared by
// the plane's literal-send fallback and the arena backend's gather phase.
void InsertBits(Bytes* out, size_t bit_offset, uint64_t bits, int count);
uint64_t ExtractBits(const Bytes& raw, size_t bit_offset, int count);

// Packs one solo state vector per vertex into the first state_bits rows of
// a stride-1 input matrix (lane v = vertex v). `in_mat` must already have
// >= states[0].size() rows and exactly states.size() instances.
void PackSoloStates(const std::vector<mpc::BitVector>& states, mpc::PackedShareMatrix* in_mat);

class GraphPlane {
 public:
  struct Options {
    // Scenario lanes per vertex (S) and the lane-group stride (P): P is the
    // smallest power of two >= S, so P divides 64 and a vertex's lane group
    // never straddles a word. Solo runs use S = P = 1.
    int num_scenarios = 1;
    int stride = 1;
    // Session namespace for the literal-send fallback: edge e's message
    // travels on session `edge_session_base | e` (e = global CSR edge
    // index, the graph's Edges() order).
    net::SessionId edge_session_base = 0;
  };

  struct Stats {
    uint64_t iterations = 0;       // CommunicateStep calls
    uint64_t words_evaluated = 0;  // lane words the frontier admitted
    uint64_t words_skipped = 0;    // lane words the frontier skipped
    uint64_t groups_delivered = 0; // dirty per-edge lane groups moved in-arena
    bool bulk_metered = false;     // last CommunicateStep used bulk metering
  };

  // References must outlive the plane. `update_plan` is the program's
  // update circuit plan (inputs = state_bits + degree_bound*message_bits
  // rows, outputs likewise).
  GraphPlane(const graph::Graph& graph, const core::VertexProgram& program,
             const circuit::EvalPlan& update_plan, core::WorkerPool* pool, net::Transport* net,
             Options options);

  // The update-circuit input arena. Callers pack initial states into rows
  // [0, state_bits) (PackSoloStates or SetLaneGroup) after Reset(); in-slot
  // rows start at ⊥ (all-zero), matching the container plane's init.
  mpc::PackedShareMatrix& input_matrix() { return in_mat_; }
  const mpc::PackedShareMatrix& input_matrix() const { return in_mat_; }

  size_t lane_words() const { return words_; }
  const std::vector<uint64_t>& valid_masks() const { return valid_mask_; }

  // Zeroes both arenas, re-arms the frontier (everything active) and
  // clears the stats. One Reset + init packing per run.
  void Reset();

  // One computation step: evaluates every active word's lanes through the
  // update plan (bitsliced, chunked over the worker pool, thread-local
  // grow-only scratch — no per-iteration allocation once warm), writes new
  // states into the state arena and new out-messages into the message
  // arena, and stages the next frontier from the observed diffs.
  void ComputeStep();

  // One communication step: meters every directed edge's message (bulk
  // TrafficStats delta when the transport accepts, literal Send/Recv per
  // edge otherwise), moves changed messages into the receivers' in-slots,
  // activates receivers of changed messages, and flips the frontier.
  void CommunicateStep();

  // True when the next ComputeStep would evaluate nothing — every lane's
  // state and in-messages are unchanged since its last evaluation, i.e.
  // further iterations are figure-identical no-ops.
  bool AllConverged() const;
  size_t ActiveWords() const;

  // Scenario `scenario` of vertex `vertex` as an unpacked state BitVector
  // (rows [0, state_bits) of the vertex's lane).
  mpc::BitVector VertexState(int vertex, int scenario) const;

  // The `count`-lane group of state row `row` at vertex `vertex`'s lanes.
  uint64_t StateLaneGroup(size_t row, int vertex, int count) const;

  // Evaluates `plan` (inputs = state_bits rows) over every lane of the
  // state arena — the aggregation phase's per-vertex contribution pass.
  mpc::PackedShareMatrix EvalOverStates(const circuit::EvalPlan& plan) const;

  // Reduces a contribution matrix (agg_bits rows over this plane's lanes)
  // to one wrapping uint64 sum per scenario, skipping garbage lanes.
  // Addition order is (vertex-major per scenario), identical to the
  // container plane's reduction.
  std::vector<uint64_t> ScenarioSums(const mpc::PackedShareMatrix& contrib, int agg_bits) const;

  const Stats& stats() const { return stats_; }

 private:
  void DeliverDirtyGroups();
  void SendAllEdges();

  const graph::Graph& graph_;
  const circuit::EvalPlan& update_plan_;
  core::WorkerPool* pool_;
  net::Transport* net_;

  int n_ = 0;
  int sb_ = 0;             // state_bits
  int mb_ = 0;             // message_bits
  int degree_bound_ = 0;
  int num_scenarios_ = 0;  // S
  int stride_ = 0;         // P
  net::SessionId session_base_ = 0;
  size_t lanes_ = 0;       // n * P
  size_t words_ = 0;       // ceil(lanes / 64)
  uint64_t group_mask_ = 0;  // low S bits

  // CSR over the graph's Edges() order: edge e = out_start_[v] + slot is
  // v's slot-th out-edge, landing in in-slot edge_in_slot_[e] of
  // edge_dst_[e].
  std::vector<size_t> out_start_;
  std::vector<int> out_deg_;
  std::vector<int> edge_dst_;
  std::vector<int> edge_in_slot_;

  // Update-circuit input rows (state + in-slots) over all lanes.
  mpc::PackedShareMatrix in_mat_;
  // Out-message rows of the last evaluation (update output row sb_ + r
  // lives at row r here; new-state output rows are written straight back
  // into in_mat_).
  mpc::PackedShareMatrix out_msg_mat_;

  // Frontier: byte per word, double-buffered across the iteration barrier.
  std::vector<uint8_t> active_;
  std::vector<uint8_t> next_active_;
  std::vector<size_t> active_list_;  // words evaluated by the last ComputeStep

  // msg_dirty_[w * degree_bound + slot]: lanes of word w whose slot
  // out-message changed at the last ComputeStep (pre-masked by
  // valid_mask_).
  std::vector<uint64_t> msg_dirty_;

  // Lanes of each word that carry a real (vertex < n, scenario < S) value;
  // everything else is bitsliced garbage and must not feed diffs or sums.
  std::vector<uint64_t> valid_mask_;

  // Per-iteration all-edges traffic delta for bulk metering, precomputed
  // once: every directed edge's (message_bits*S+7)/8-byte payload, counted
  // at sender and receiver.
  std::vector<net::TrafficStats> edge_delta_;

  Stats stats_;
};

}  // namespace dstress::graphplane

#endif  // SRC_GRAPHPLANE_PLANE_H_
