#include "src/crypto/ec.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "src/common/check.h"

namespace dstress::crypto {

namespace {

const U256 kN(0xBFD25E8CD0364141ULL, 0xBAAEDCE6AF48A03BULL, 0xFFFFFFFFFFFFFFFEULL,
              0xFFFFFFFFFFFFFFFFULL);

const char kGxHex[] = "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798";
const char kGyHex[] = "483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8";

Fp CurveB() { return Fp::FromUint64(7); }

// --- GLV endomorphism (secp256k1-specific speedup) ---------------------------
// The curve admits an efficient endomorphism phi(x, y) = (beta*x, y) with
// phi(P) = lambda*P. Splitting k = k1 + lambda*k2 with |k1|, |k2| ~ 2^128
// halves the doubling chain of a variable-base multiplication. Constants
// and the split follow the standard lattice decomposition (GLV 2001), with
// the rounded multipliers g1, g2 = round(2^384 * b_i / n).
const char kBetaHex[] = "7ae96a2b657c07106e64479eac3434e99cf0497512f58995c1396c28719501ee";
const U256 kMinusLambda = U256::FromHex(
    "ac9c52b33fa3cf1f5ad9e3fd77ed9ba4a880b9fc8ec739c2e0cfc810b51283cf");  // n - lambda
const U256 kMinusB1 = U256::FromHex("e4437ed6010e88286f547fa90abfe4c3");
const U256 kMinusB2 =
    U256::FromHex("fffffffffffffffffffffffffffffffe8a280ac50774346dd765cda83db1562c");
const U256 kG1 =
    U256::FromHex("3086d221a7d46bcde86c90e49284eb153daa8a1471e8ca7fe893209a45dbb031");
const U256 kG2 =
    U256::FromHex("e4437ed6010e88286f547fa90abfe4c4221208ac9df506c61571b4ae8ac47f71");
const U256 kHalfN =
    U256::FromHex("7fffffffffffffffffffffffffffffff5d576e7357a4501ddfe92f46681b20a0");

// High 128 bits of k*g, rounded: round(k*g / 2^384).
U256 MulShift384(const U256& k, const U256& g) {
  U512 prod = MulFull(k, g);
  U256 out(prod.w[6], prod.w[7], 0, 0);
  if (prod.w[5] >> 63) {
    AddWithCarry(out, U256::One(), &out);
  }
  return out;
}

// Splits e (reduced mod n) into e = sign1*k1 + lambda*sign2*k2 with k1, k2
// short (~128 bits).
void SplitLambda(const U256& e, U256* k1, int* sign1, U256* k2, int* sign2) {
  U256 c1 = MulShift384(e, kG1);
  U256 c2 = MulShift384(e, kG2);
  c1 = ModMul(c1, kMinusB1, kN);
  c2 = ModMul(c2, kMinusB2, kN);
  U256 r2 = ModAdd(c1, c2, kN);
  U256 r1 = ModAdd(e, ModMul(r2, kMinusLambda, kN), kN);
  *sign1 = 1;
  *sign2 = 1;
  if (Cmp(r1, kHalfN) > 0) {
    SubWithBorrow(kN, r1, &r1);
    *sign1 = -1;
  }
  if (Cmp(r2, kHalfN) > 0) {
    SubWithBorrow(kN, r2, &r2);
    *sign2 = -1;
  }
  *k1 = r1;
  *k2 = r2;
}

// Width-5 wNAF digit expansion; returns the index of the top nonzero digit.
int ComputeWnaf(U256 e, int8_t digits[260]) {
  int top = -1;
  for (int i = 0; !e.IsZero(); i++) {
    int8_t d = 0;
    if (e.IsOdd()) {
      int v = static_cast<int>(e.w[0] & 31);
      if (v >= 16) {
        v -= 32;
        AddWithCarry(e, U256(static_cast<uint64_t>(-v)), &e);
      } else {
        SubWithBorrow(e, U256(static_cast<uint64_t>(v)), &e);
      }
      d = static_cast<int8_t>(v);
      top = i;
    }
    digits[i] = d;
    e = Shr(e, 1);
  }
  return top;
}

}  // namespace

const U256& CurveOrder() { return kN; }

const EcPoint& EcPoint::Generator() {
  static const EcPoint g = EcPoint::FromAffine(Fp::FromHex(kGxHex), Fp::FromHex(kGyHex));
  return g;
}

EcPoint EcPoint::FromAffine(const Fp& x, const Fp& y) {
  DSTRESS_DCHECK(y.Square() == x.Square() * x + CurveB());
  return EcPoint(x, y, Fp::FromUint64(1));
}

EcPoint EcPoint::FromAffinePoint(const AffinePoint& p) {
  if (p.infinity) {
    return Infinity();
  }
  DSTRESS_DCHECK(p.y.Square() == p.x.Square() * p.x + CurveB());
  return EcPoint(p.x, p.y, Fp::FromUint64(1));
}

EcPoint EcPoint::Neg() const {
  if (IsInfinity()) {
    return *this;
  }
  return EcPoint(x_, y_.Neg(), z_);
}

EcPoint EcPoint::Double() const {
  if (IsInfinity() || y_.IsZero()) {
    return Infinity();
  }
  // Standard Jacobian doubling for a = 0 curves (dbl-2009-l).
  Fp a = x_.Square();
  Fp b = y_.Square();
  Fp c = b.Square();
  Fp t = (x_ + b).Square() - a - c;
  Fp d = t + t;  // 2*((X+B)^2 - A - C)
  Fp e = a + a + a;
  Fp f = e.Square();
  Fp x3 = f - (d + d);
  Fp c8 = c + c;
  c8 = c8 + c8;
  c8 = c8 + c8;
  Fp y3 = e * (d - x3) - c8;
  Fp z3 = (y_ + y_) * z_;
  return EcPoint(x3, y3, z3);
}

EcPoint EcPoint::Add(const EcPoint& other) const {
  if (IsInfinity()) {
    return other;
  }
  if (other.IsInfinity()) {
    return *this;
  }
  // General Jacobian addition (add-2007-bl structure, unoptimized).
  Fp z1z1 = z_.Square();
  Fp z2z2 = other.z_.Square();
  Fp u1 = x_ * z2z2;
  Fp u2 = other.x_ * z1z1;
  Fp s1 = y_ * z2z2 * other.z_;
  Fp s2 = other.y_ * z1z1 * z_;
  if (u1 == u2) {
    if (s1 != s2) {
      return Infinity();
    }
    return Double();
  }
  Fp h = u2 - u1;
  Fp r = s2 - s1;
  Fp h2 = h.Square();
  Fp h3 = h2 * h;
  Fp u1h2 = u1 * h2;
  Fp x3 = r.Square() - h3 - (u1h2 + u1h2);
  Fp y3 = r * (u1h2 - x3) - s1 * h3;
  Fp z3 = z_ * other.z_ * h;
  return EcPoint(x3, y3, z3);
}

EcPoint EcPoint::Mul(const U256& k) const {
  // Reduce the scalar mod n so callers can pass raw 256-bit values.
  U256 e = k;
  while (Cmp(e, kN) >= 0) {
    SubWithBorrow(e, kN, &e);
  }
  if (e.IsZero() || IsInfinity()) {
    return Infinity();
  }
  // GLV split: e = s1*k1 + lambda*s2*k2 with short k1, k2, then a shared
  // ~130-step doubling chain with interleaved width-5 wNAF additions from
  // two tables (P and phi(P)).
  U256 k1, k2;
  int sign1 = 0, sign2 = 0;
  SplitLambda(e, &k1, &sign1, &k2, &sign2);

  int8_t digits1[260] = {0};
  int8_t digits2[260] = {0};
  int top1 = ComputeWnaf(k1, digits1);
  int top2 = ComputeWnaf(k2, digits2);

  EcPoint base1 = (sign1 > 0) ? *this : Neg();
  // phi(P): scale the Jacobian X coordinate by beta (affine x -> beta*x).
  static const Fp kBeta = Fp::FromHex(kBetaHex);
  EcPoint base2(x_ * kBeta, y_, z_);
  if (sign2 < 0) {
    base2 = base2.Neg();
  }

  // Odd-multiple tables: table[t] = (2t+1) * base.
  EcPoint table1[8], table2[8];
  table1[0] = base1;
  table2[0] = base2;
  EcPoint twice1 = base1.Double();
  EcPoint twice2 = base2.Double();
  for (int t = 1; t < 8; t++) {
    table1[t] = table1[t - 1].Add(twice1);
    table2[t] = table2[t - 1].Add(twice2);
  }

  auto add_digit = [](EcPoint acc, int d, const EcPoint table[8]) {
    if (d > 0) {
      return acc.Add(table[(d - 1) / 2]);
    }
    if (d < 0) {
      return acc.Add(table[(-d - 1) / 2].Neg());
    }
    return acc;
  };

  EcPoint acc = Infinity();
  int top = std::max(top1, top2);
  for (int i = top; i >= 0; i--) {
    acc = acc.Double();
    if (i <= top1) {
      acc = add_digit(acc, digits1[i], table1);
    }
    if (i <= top2) {
      acc = add_digit(acc, digits2[i], table2);
    }
  }
  return acc;
}

void EcPoint::ToAffine(Fp* x, Fp* y) const {
  DSTRESS_CHECK(!IsInfinity());
  Fp zinv = z_.Inv();
  Fp zinv2 = zinv.Square();
  *x = x_ * zinv2;
  *y = y_ * zinv2 * zinv;
}

bool EcPoint::operator==(const EcPoint& other) const {
  if (IsInfinity() || other.IsInfinity()) {
    return IsInfinity() == other.IsInfinity();
  }
  // Cross-multiplied comparison avoids field inversions.
  Fp z1z1 = z_.Square();
  Fp z2z2 = other.z_.Square();
  if (x_ * z2z2 != other.x_ * z1z1) {
    return false;
  }
  return y_ * z2z2 * other.z_ == other.y_ * z1z1 * z_;
}

std::array<uint8_t, EcPoint::kCompressedSize> EcPoint::Compress() const {
  std::array<uint8_t, kCompressedSize> out{};
  if (IsInfinity()) {
    return out;  // all-zero encoding
  }
  Fp ax = Fp::FromUint64(0), ay = Fp::FromUint64(0);
  ToAffine(&ax, &ay);
  out[0] = ay.IsOdd() ? 0x03 : 0x02;
  ax.raw().ToBytesBe(out.data() + 1);
  return out;
}

std::optional<EcPoint> EcPoint::Decompress(const uint8_t* bytes33) {
  if (bytes33[0] == 0) {
    for (int i = 1; i < 33; i++) {
      if (bytes33[i] != 0) {
        return std::nullopt;
      }
    }
    return Infinity();
  }
  if (bytes33[0] != 0x02 && bytes33[0] != 0x03) {
    return std::nullopt;
  }
  U256 raw_x = U256::FromBytesBe(bytes33 + 1);
  if (Cmp(raw_x, Fp::P()) >= 0) {
    return std::nullopt;
  }
  Fp x = Fp::FromU256(raw_x);
  Fp rhs = x.Square() * x + CurveB();
  Fp y = Fp::FromUint64(0);
  if (!rhs.Sqrt(&y)) {
    return std::nullopt;
  }
  bool want_odd = bytes33[0] == 0x03;
  if (y.IsOdd() != want_odd) {
    y = y.Neg();
  }
  return FromAffine(x, y);
}

EcPoint MulBase(const U256& k) {
  // table[w][d] = d * 256^w * G for w in [0, 32), d in [0, 256). ~0.8 MB,
  // built once; every fixed-base multiplication is then at most 32 adds.
  static const std::vector<std::vector<EcPoint>>* kTable = [] {
    auto* t = new std::vector<std::vector<EcPoint>>(32, std::vector<EcPoint>(256));
    EcPoint window_base = EcPoint::Generator();
    for (int w = 0; w < 32; w++) {
      (*t)[w][0] = EcPoint::Infinity();
      for (int d = 1; d < 256; d++) {
        (*t)[w][d] = (*t)[w][d - 1].Add(window_base);
      }
      window_base = (*t)[w][255].Add(window_base);  // 256^(w+1) * G
    }
    return t;
  }();

  U256 e = k;
  while (Cmp(e, CurveOrder()) >= 0) {
    SubWithBorrow(e, CurveOrder(), &e);
  }
  EcPoint acc = EcPoint::Infinity();
  for (int byte = 0; byte < 32; byte++) {
    unsigned d = static_cast<unsigned>(e.w[byte / 8] >> (8 * (byte % 8))) & 0xff;
    if (d != 0) {
      acc = acc.Add((*kTable)[byte][d]);
    }
  }
  return acc;
}

void EcPoint::CompressBatch(const EcPoint* points, size_t count, uint8_t* out) {
  // Montgomery batch inversion over the non-infinity z coordinates.
  std::vector<Fp> prefix(count);
  Fp running = Fp::FromUint64(1);
  for (size_t i = 0; i < count; i++) {
    prefix[i] = running;
    if (!points[i].IsInfinity()) {
      running = running * points[i].z_;
    }
  }
  Fp inv_all = running.Inv();
  // Walk backwards: zinv_i = inv(prod_{j<=i}) * prefix_i.
  for (size_t idx = count; idx-- > 0;) {
    uint8_t* slot = out + idx * kCompressedSize;
    const EcPoint& p = points[idx];
    if (p.IsInfinity()) {
      std::memset(slot, 0, kCompressedSize);
      continue;
    }
    Fp zinv = inv_all * prefix[idx];
    inv_all = inv_all * p.z_;
    Fp zinv2 = zinv.Square();
    Fp ax = p.x_ * zinv2;
    Fp ay = p.y_ * zinv2 * zinv;
    slot[0] = ay.IsOdd() ? 0x03 : 0x02;
    ax.raw().ToBytesBe(slot + 1);
  }
}

void EcPoint::ToAffineBatch(const EcPoint* points, size_t count, AffinePoint* out) {
  // Same Montgomery walk as CompressBatch, but the affine coordinates are
  // the product rather than an intermediate.
  std::vector<Fp> prefix(count);
  Fp running = Fp::FromUint64(1);
  for (size_t i = 0; i < count; i++) {
    prefix[i] = running;
    if (!points[i].IsInfinity()) {
      running = running * points[i].z_;
    }
  }
  Fp inv_all = running.Inv();
  for (size_t idx = count; idx-- > 0;) {
    const EcPoint& p = points[idx];
    if (p.IsInfinity()) {
      out[idx] = AffinePoint{};
      continue;
    }
    Fp zinv = inv_all * prefix[idx];
    inv_all = inv_all * p.z_;
    Fp zinv2 = zinv.Square();
    out[idx].x = p.x_ * zinv2;
    out[idx].y = p.y_ * zinv2 * zinv;
    out[idx].infinity = false;
  }
}

bool EcPoint::DecompressBatch(const uint8_t* in, size_t count, EcPoint* out) {
  for (size_t i = 0; i < count; i++) {
    auto p = Decompress(in + i * kCompressedSize);
    if (!p.has_value()) {
      return false;
    }
    out[i] = *p;
  }
  return true;
}

bool EcPoint::DecompressBatch(const uint8_t* in, size_t count, AffinePoint* out) {
  for (size_t i = 0; i < count; i++) {
    auto p = Decompress(in + i * kCompressedSize);
    if (!p.has_value()) {
      return false;
    }
    if (p->IsInfinity()) {
      out[i] = AffinePoint{};
    } else {
      // Decompress() constructs via FromAffine, so z == 1 and the Jacobian
      // coordinates are already the affine ones.
      out[i].x = p->x_;
      out[i].y = p->y_;
      out[i].infinity = false;
    }
  }
  return true;
}

void SplitScalarGlv(const U256& e, U256* k1, int* sign1, U256* k2, int* sign2) {
  SplitLambda(e, k1, sign1, k2, sign2);
}

const Fp& EndomorphismBeta() {
  static const Fp beta = Fp::FromHex(kBetaHex);
  return beta;
}

}  // namespace dstress::crypto
