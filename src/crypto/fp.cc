#include "src/crypto/fp.h"

#include "src/common/check.h"

namespace dstress::crypto {

namespace {

using uint128 = unsigned __int128;

// 2^256 ≡ kFold (mod p), kFold = 2^32 + 977.
constexpr uint64_t kFold = 0x1000003D1ULL;

const U256 kP(0xFFFFFFFEFFFFFC2FULL, 0xFFFFFFFFFFFFFFFFULL, 0xFFFFFFFFFFFFFFFFULL,
              0xFFFFFFFFFFFFFFFFULL);

// Folds an 8-limb product into a fully reduced 4-limb value. Hot path: the
// entire EC layer funnels through here, so the loops are flat and allocation
// free.
inline U256 Reduce512(const uint64_t t[8]) {
  // First fold: r = lo + hi * kFold.
  uint64_t m[5];
  uint128 carry = 0;
  for (int i = 0; i < 4; i++) {
    uint128 cur = static_cast<uint128>(t[4 + i]) * kFold + carry;
    m[i] = static_cast<uint64_t>(cur);
    carry = cur >> 64;
  }
  m[4] = static_cast<uint64_t>(carry);

  U256 r;
  uint128 acc = 0;
  for (int i = 0; i < 4; i++) {
    acc += static_cast<uint128>(t[i]) + m[i];
    r.w[i] = static_cast<uint64_t>(acc);
    acc >>= 64;
  }
  uint64_t overflow = m[4] + static_cast<uint64_t>(acc);

  while (overflow != 0) {
    uint128 prod = static_cast<uint128>(overflow) * kFold;
    U256 add(static_cast<uint64_t>(prod), static_cast<uint64_t>(prod >> 64), 0, 0);
    overflow = AddWithCarry(r, add, &r);
  }
  while (Cmp(r, kP) >= 0) {
    SubWithBorrow(r, kP, &r);
  }
  return r;
}

// 4x4 schoolbook multiply into 8 limbs (operand scanning; the compiler
// unrolls the fixed-trip loops and keeps the carries in registers).
inline void Mul4x4(const uint64_t a[4], const uint64_t b[4], uint64_t out[8]) {
  for (int i = 0; i < 8; i++) {
    out[i] = 0;
  }
  for (int i = 0; i < 4; i++) {
    uint64_t carry = 0;
    for (int j = 0; j < 4; j++) {
      uint128 cur = static_cast<uint128>(a[i]) * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    out[i + 4] = carry;
  }
}

}  // namespace

const U256& Fp::P() { return kP; }

Fp Fp::FromU256(const U256& v) {
  U256 r = v;
  while (Cmp(r, kP) >= 0) {
    SubWithBorrow(r, kP, &r);
  }
  Fp out;
  out.v_ = r;
  return out;
}

Fp Fp::operator+(const Fp& o) const {
  U256 s;
  uint64_t carry = AddWithCarry(v_, o.v_, &s);
  if (carry != 0 || Cmp(s, kP) >= 0) {
    SubWithBorrow(s, kP, &s);
  }
  Fp out;
  out.v_ = s;
  return out;
}

Fp Fp::operator-(const Fp& o) const {
  U256 d;
  uint64_t borrow = SubWithBorrow(v_, o.v_, &d);
  if (borrow != 0) {
    AddWithCarry(d, kP, &d);
  }
  Fp out;
  out.v_ = d;
  return out;
}

Fp Fp::Neg() const {
  if (v_.IsZero()) {
    return *this;
  }
  U256 d;
  SubWithBorrow(kP, v_, &d);
  Fp out;
  out.v_ = d;
  return out;
}

Fp Fp::operator*(const Fp& o) const {
  uint64_t t[8];
  Mul4x4(v_.w, o.v_.w, t);
  Fp out;
  out.v_ = Reduce512(t);
  return out;
}

Fp Fp::Square() const { return *this * *this; }

Fp Fp::Pow(const U256& e) const {
  Fp result = Fp::FromUint64(1);
  Fp base = *this;
  int top = e.BitLength();
  for (int i = 0; i <= top; i++) {
    if (e.Bit(i)) {
      result = result * base;
    }
    base = base.Square();
  }
  return result;
}

Fp Fp::Inv() const {
  DSTRESS_CHECK(!IsZero());
  U256 e;
  SubWithBorrow(kP, U256(2), &e);
  return Pow(e);
}

bool Fp::Sqrt(Fp* out) const {
  // p ≡ 3 (mod 4): candidate = a^((p+1)/4).
  U256 e;
  AddWithCarry(kP, U256::One(), &e);
  e = Shr(e, 2);
  Fp cand = Pow(e);
  if (cand.Square() != *this) {
    return false;
  }
  *out = cand;
  return true;
}

}  // namespace dstress::crypto
