#include "src/crypto/fp.h"

#include <vector>

#include "src/common/check.h"

namespace dstress::crypto {

namespace {

using uint128 = unsigned __int128;

// 2^256 ≡ kFold (mod p), kFold = 2^32 + 977.
constexpr uint64_t kFold = 0x1000003D1ULL;

const U256 kP(0xFFFFFFFEFFFFFC2FULL, 0xFFFFFFFFFFFFFFFFULL, 0xFFFFFFFFFFFFFFFFULL,
              0xFFFFFFFFFFFFFFFFULL);

// Folds an 8-limb product into a fully reduced 4-limb value. Hot path: the
// entire EC layer funnels through here, so the loops are flat and allocation
// free.
inline U256 Reduce512(const uint64_t t[8]) {
  // First fold: r = lo + hi * kFold.
  uint64_t m[5];
  uint128 carry = 0;
  for (int i = 0; i < 4; i++) {
    uint128 cur = static_cast<uint128>(t[4 + i]) * kFold + carry;
    m[i] = static_cast<uint64_t>(cur);
    carry = cur >> 64;
  }
  m[4] = static_cast<uint64_t>(carry);

  U256 r;
  uint128 acc = 0;
  for (int i = 0; i < 4; i++) {
    acc += static_cast<uint128>(t[i]) + m[i];
    r.w[i] = static_cast<uint64_t>(acc);
    acc >>= 64;
  }
  uint64_t overflow = m[4] + static_cast<uint64_t>(acc);

  while (overflow != 0) {
    uint128 prod = static_cast<uint128>(overflow) * kFold;
    U256 add(static_cast<uint64_t>(prod), static_cast<uint64_t>(prod >> 64), 0, 0);
    overflow = AddWithCarry(r, add, &r);
  }
  while (Cmp(r, kP) >= 0) {
    SubWithBorrow(r, kP, &r);
  }
  return r;
}

// 4x4 schoolbook multiply into 8 limbs (operand scanning; the compiler
// unrolls the fixed-trip loops and keeps the carries in registers).
inline void Mul4x4(const uint64_t a[4], const uint64_t b[4], uint64_t out[8]) {
  for (int i = 0; i < 8; i++) {
    out[i] = 0;
  }
  for (int i = 0; i < 4; i++) {
    uint64_t carry = 0;
    for (int j = 0; j < 4; j++) {
      uint128 cur = static_cast<uint128>(a[i]) * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    out[i + 4] = carry;
  }
}

// Squares `x` n times.
inline Fp SqN(Fp x, int n) {
  for (int i = 0; i < n; i++) {
    x = x.Square();
  }
  return x;
}

// Shared prefix of the secp256k1 inversion and square-root addition chains:
// x_n = a^(2^n - 1) for the block lengths both exponents decompose into.
// p = 2^256 - 2^32 - 977 is all-ones in its top 223 bits, so a^(p-2) and
// a^((p+1)/4) both start from x223 and differ only in a short tail; the
// chain costs ~255 squarings + ~16 multiplications, vs ~250 squarings +
// ~240 multiplications for generic square-and-multiply on these nearly
// all-ones exponents.
struct ChainParts {
  Fp x2, x22, x223;
};

inline ChainParts ChainCore(const Fp& a) {
  Fp x2 = a.Square() * a;
  Fp x3 = x2.Square() * a;
  Fp x6 = SqN(x3, 3) * x3;
  Fp x9 = SqN(x6, 3) * x3;
  Fp x11 = SqN(x9, 2) * x2;
  Fp x22 = SqN(x11, 11) * x11;
  Fp x44 = SqN(x22, 22) * x22;
  Fp x88 = SqN(x44, 44) * x44;
  Fp x176 = SqN(x88, 88) * x88;
  Fp x220 = SqN(x176, 44) * x44;
  Fp x222 = SqN(x220, 2) * x2;
  Fp x223 = x222.Square() * a;
  return {x2, x22, x223};
}

}  // namespace

const U256& Fp::P() { return kP; }

Fp Fp::FromU256(const U256& v) {
  U256 r = v;
  while (Cmp(r, kP) >= 0) {
    SubWithBorrow(r, kP, &r);
  }
  Fp out;
  out.v_ = r;
  return out;
}

Fp Fp::operator+(const Fp& o) const {
  U256 s;
  uint64_t carry = AddWithCarry(v_, o.v_, &s);
  if (carry != 0 || Cmp(s, kP) >= 0) {
    SubWithBorrow(s, kP, &s);
  }
  Fp out;
  out.v_ = s;
  return out;
}

Fp Fp::operator-(const Fp& o) const {
  U256 d;
  uint64_t borrow = SubWithBorrow(v_, o.v_, &d);
  if (borrow != 0) {
    AddWithCarry(d, kP, &d);
  }
  Fp out;
  out.v_ = d;
  return out;
}

Fp Fp::Neg() const {
  if (v_.IsZero()) {
    return *this;
  }
  U256 d;
  SubWithBorrow(kP, v_, &d);
  Fp out;
  out.v_ = d;
  return out;
}

Fp Fp::operator*(const Fp& o) const {
  uint64_t t[8];
  Mul4x4(v_.w, o.v_.w, t);
  Fp out;
  out.v_ = Reduce512(t);
  return out;
}

Fp Fp::Square() const { return *this * *this; }

Fp Fp::Pow(const U256& e) const {
  Fp result = Fp::FromUint64(1);
  Fp base = *this;
  int top = e.BitLength();
  for (int i = 0; i <= top; i++) {
    if (e.Bit(i)) {
      result = result * base;
    }
    base = base.Square();
  }
  return result;
}

Fp Fp::Inv() const {
  DSTRESS_CHECK(!IsZero());
  // a^(p-2) assembled from the shared chain:
  // p-2 = (2^223-1)·2^33 + (2^22-1)·2^11 + ...; the tail below reproduces
  // the low 33 bits 0xFFFFFEFFFFFC2D exactly.
  ChainParts c = ChainCore(*this);
  Fp t = SqN(c.x223, 23) * c.x22;
  t = SqN(t, 5) * *this;
  t = SqN(t, 3) * c.x2;
  t = SqN(t, 2) * *this;
  return t;
}

void Fp::BatchInvert(Fp* values, size_t count) {
  if (count == 0) {
    return;
  }
  // prefix[i] = v_0 * ... * v_{i-1}; one Inv of the total product, then a
  // backward walk peels off individual inverses. Scratch persists across
  // calls: this is on the batch-affine hot path.
  static thread_local std::vector<Fp> prefix;
  prefix.resize(count);
  Fp running = Fp::FromUint64(1);
  for (size_t i = 0; i < count; i++) {
    prefix[i] = running;
    running = running * values[i];
  }
  Fp inv_all = running.Inv();
  for (size_t i = count; i-- > 0;) {
    Fp v = values[i];
    values[i] = inv_all * prefix[i];
    inv_all = inv_all * v;
  }
}

bool Fp::Sqrt(Fp* out) const {
  // p ≡ 3 (mod 4): candidate = a^((p+1)/4), with (p+1)/4 = 2^254 - 2^30 - 244
  // assembled from the same chain as Inv().
  ChainParts c = ChainCore(*this);
  Fp cand = SqN(c.x223, 23) * c.x22;
  cand = SqN(cand, 6) * c.x2;
  cand = SqN(cand, 2);
  if (cand.Square() != *this) {
    return false;
  }
  *out = cand;
  return true;
}

}  // namespace dstress::crypto
