#include "src/crypto/u256.h"

#include "src/common/check.h"

namespace dstress::crypto {

using uint128 = unsigned __int128;

U256 U256::FromHex(const std::string& hex) {
  DSTRESS_CHECK(hex.size() <= 64);
  std::string padded(64 - hex.size(), '0');
  padded += hex;
  Bytes raw = HexDecode(padded);
  return FromBytesBe(raw.data());
}

U256 U256::FromBytesBe(const uint8_t* bytes32) {
  U256 out;
  for (int limb = 0; limb < 4; limb++) {
    uint64_t v = 0;
    for (int b = 0; b < 8; b++) {
      v = (v << 8) | bytes32[(3 - limb) * 8 + b];
    }
    out.w[limb] = v;
  }
  return out;
}

void U256::ToBytesBe(uint8_t* bytes32) const {
  for (int limb = 0; limb < 4; limb++) {
    uint64_t v = w[limb];
    for (int b = 7; b >= 0; b--) {
      bytes32[(3 - limb) * 8 + b] = static_cast<uint8_t>(v);
      v >>= 8;
    }
  }
}

std::string U256::ToHex() const {
  uint8_t raw[32];
  ToBytesBe(raw);
  return HexEncode(raw, 32);
}

int U256::BitLength() const {
  for (int limb = 3; limb >= 0; limb--) {
    if (w[limb] != 0) {
      return limb * 64 + 63 - __builtin_clzll(w[limb]);
    }
  }
  return -1;
}

int Cmp(const U256& a, const U256& b) {
  for (int i = 3; i >= 0; i--) {
    if (a.w[i] < b.w[i]) {
      return -1;
    }
    if (a.w[i] > b.w[i]) {
      return 1;
    }
  }
  return 0;
}

uint64_t AddWithCarry(const U256& a, const U256& b, U256* out) {
  uint128 carry = 0;
  for (int i = 0; i < 4; i++) {
    uint128 s = static_cast<uint128>(a.w[i]) + b.w[i] + carry;
    out->w[i] = static_cast<uint64_t>(s);
    carry = s >> 64;
  }
  return static_cast<uint64_t>(carry);
}

uint64_t SubWithBorrow(const U256& a, const U256& b, U256* out) {
  uint64_t borrow = 0;
  for (int i = 0; i < 4; i++) {
    uint128 d = static_cast<uint128>(a.w[i]) - b.w[i] - borrow;
    out->w[i] = static_cast<uint64_t>(d);
    borrow = (d >> 64) ? 1 : 0;
  }
  return borrow;
}

U512 MulFull(const U256& a, const U256& b) {
  U512 out;
  for (int i = 0; i < 4; i++) {
    uint64_t carry = 0;
    for (int j = 0; j < 4; j++) {
      uint128 cur = static_cast<uint128>(a.w[i]) * b.w[j] + out.w[i + j] + carry;
      out.w[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    out.w[i + 4] = carry;
  }
  return out;
}

U256 Shl(const U256& a, int bits) {
  DSTRESS_DCHECK(bits >= 0 && bits < 256);
  U256 out;
  int limb_shift = bits / 64;
  int bit_shift = bits % 64;
  for (int i = 3; i >= 0; i--) {
    uint64_t v = 0;
    int src = i - limb_shift;
    if (src >= 0) {
      v = a.w[src] << bit_shift;
      if (bit_shift != 0 && src - 1 >= 0) {
        v |= a.w[src - 1] >> (64 - bit_shift);
      }
    }
    out.w[i] = v;
  }
  return out;
}

U256 Shr(const U256& a, int bits) {
  DSTRESS_DCHECK(bits >= 0 && bits < 256);
  U256 out;
  int limb_shift = bits / 64;
  int bit_shift = bits % 64;
  for (int i = 0; i < 4; i++) {
    uint64_t v = 0;
    int src = i + limb_shift;
    if (src < 4) {
      v = a.w[src] >> bit_shift;
      if (bit_shift != 0 && src + 1 < 4) {
        v |= a.w[src + 1] << (64 - bit_shift);
      }
    }
    out.w[i] = v;
  }
  return out;
}

U256 Mod512(const U512& a, const U256& m) {
  DSTRESS_CHECK(!m.IsZero());
  // Binary long division over the 512-bit dividend, most significant bit
  // first. rem stays < m < 2^256 throughout, so the shift-in step needs one
  // overflow bit which we track explicitly.
  U256 rem;
  for (int bit = 511; bit >= 0; bit--) {
    uint64_t top = rem.w[3] >> 63;
    rem = Shl(rem, 1);
    uint64_t in = (a.w[bit >> 6] >> (bit & 63)) & 1;
    rem.w[0] |= in;
    if (top != 0 || Cmp(rem, m) >= 0) {
      SubWithBorrow(rem, m, &rem);
    }
  }
  return rem;
}

U256 ModAdd(const U256& a, const U256& b, const U256& m) {
  U256 s;
  uint64_t carry = AddWithCarry(a, b, &s);
  if (carry != 0 || Cmp(s, m) >= 0) {
    SubWithBorrow(s, m, &s);
  }
  return s;
}

U256 ModSub(const U256& a, const U256& b, const U256& m) {
  U256 d;
  uint64_t borrow = SubWithBorrow(a, b, &d);
  if (borrow != 0) {
    AddWithCarry(d, m, &d);
  }
  return d;
}

U256 ModMul(const U256& a, const U256& b, const U256& m) { return Mod512(MulFull(a, b), m); }

U256 ModPow(const U256& a, const U256& e, const U256& m) {
  U256 result = U256::One();
  U256 base = a;
  int top = e.BitLength();
  for (int i = 0; i <= top; i++) {
    if (e.Bit(i)) {
      result = ModMul(result, base, m);
    }
    base = ModMul(base, base, m);
  }
  return result;
}

U256 ModInv(const U256& a, const U256& m) {
  DSTRESS_CHECK(!a.IsZero());
  DSTRESS_CHECK(m.IsOdd());
  // Binary extended GCD (classic algorithm; see HAC 14.61). Maintains
  //   u = A*a mod m,  v = C*a mod m
  // with A, C tracked modulo m using half-sized steps.
  U256 u = a;
  U256 v = m;
  U256 big_a = U256::One();
  U256 big_c = U256::Zero();
  auto halve = [&m](U256* x) {
    if (x->IsOdd()) {
      uint64_t carry = AddWithCarry(*x, m, x);
      *x = Shr(*x, 1);
      if (carry != 0) {
        x->w[3] |= 1ULL << 63;
      }
    } else {
      *x = Shr(*x, 1);
    }
  };
  while (!u.IsZero()) {
    while (!u.IsOdd()) {
      u = Shr(u, 1);
      halve(&big_a);
    }
    while (!v.IsOdd()) {
      v = Shr(v, 1);
      halve(&big_c);
    }
    if (Cmp(u, v) >= 0) {
      SubWithBorrow(u, v, &u);
      big_a = ModSub(big_a, big_c, m);
    } else {
      SubWithBorrow(v, u, &v);
      big_c = ModSub(big_c, big_a, m);
    }
  }
  // gcd is in v; callers must pass coprime inputs.
  DSTRESS_CHECK(v == U256::One());
  return big_c;
}

}  // namespace dstress::crypto
