// Exponential ElGamal over secp256k1, with the two extra properties DStress
// needs (paper §3, "ElGamal encryption"):
//
//  * additive homomorphism — messages are encoded in the exponent
//    (m -> m*G), so adding ciphertexts adds plaintexts;
//  * public-key re-randomization — a public key P = x*G can be blinded to
//    r*P without knowledge of x, and a ciphertext produced under r*P can be
//    adjusted (c1 -> r*c1) so that the original secret key x decrypts it.
//
// Decryption recovers m*G; mapping back to the integer m uses a bounded
// discrete-log lookup table (DlogTable), exactly as in the paper.
#ifndef SRC_CRYPTO_ELGAMAL_H_
#define SRC_CRYPTO_ELGAMAL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/crypto/chacha20.h"
#include "src/crypto/ec.h"

namespace dstress::crypto {

struct ElGamalPublicKey {
  EcPoint point;  // x*G, possibly blinded to r*x*G

  Bytes Serialize() const;
  static ElGamalPublicKey Deserialize(const Bytes& raw);
};

struct ElGamalKeyPair {
  U256 secret;
  ElGamalPublicKey pub;
};

struct ElGamalCiphertext {
  EcPoint c1;  // y*G (ephemeral)
  EcPoint c2;  // m*G + y*P

  // Wire size: two compressed points.
  static constexpr size_t kSerializedSize = 2 * EcPoint::kCompressedSize;
  Bytes Serialize() const;
  static ElGamalCiphertext Deserialize(const Bytes& raw);
};

// A Kurosawa multi-recipient ciphertext: one shared ephemeral component and
// one payload component per recipient key. The prototype's §5.1 optimization.
struct ElGamalMultiCiphertext {
  EcPoint c1;
  std::vector<EcPoint> c2;

  size_t SerializedSize() const { return (1 + c2.size()) * EcPoint::kCompressedSize; }
};

ElGamalKeyPair ElGamalKeyGen(ChaCha20Prg& prg);

// Encodes a signed message in the exponent: negative m maps to n - |m|.
U256 EncodeExponent(int64_t m);

ElGamalCiphertext ElGamalEncrypt(const ElGamalPublicKey& pub, int64_t m, ChaCha20Prg& prg);
// Encryption with caller-chosen ephemeral scalar (deterministic; test use).
ElGamalCiphertext ElGamalEncryptWithEphemeral(const ElGamalPublicKey& pub, int64_t m,
                                              const U256& ephemeral);
// One ephemeral scalar shared across all recipients; msgs[i] goes to keys[i].
ElGamalMultiCiphertext ElGamalEncryptMulti(const std::vector<ElGamalPublicKey>& keys,
                                           const std::vector<int64_t>& msgs, ChaCha20Prg& prg);

// Homomorphic addition: Dec(HomAdd(E(a), E(b))) = a + b.
ElGamalCiphertext HomAdd(const ElGamalCiphertext& a, const ElGamalCiphertext& b);
// Adds a known constant to the plaintext without decrypting: c2 += delta*G.
// This is how node i folds geometric masking noise into forwarded shares.
ElGamalCiphertext HomAddPlain(const ElGamalCiphertext& ct, int64_t delta);

// Blinds a public key: P -> r*P. Performed by the trusted party with the
// neighbor key r during setup (block certificates).
ElGamalPublicKey RandomizePublicKey(const ElGamalPublicKey& pub, const U256& r);
// Adjusts a ciphertext produced under the blinded key r*P so the original
// secret decrypts it: c1 -> r*c1. Performed by the edge endpoint j, which
// knows r but not the block members' secrets.
ElGamalCiphertext AdjustCiphertext(const ElGamalCiphertext& ct, const U256& r);

// Recovers the message point m*G.
EcPoint ElGamalDecryptPoint(const U256& secret, const ElGamalCiphertext& ct);

// Bounded discrete-log lookup table over [-range, +range] (paper Appendix B:
// decryption "using a lookup table of N_l entries").
class DlogTable {
 public:
  explicit DlogTable(int64_t range);

  int64_t range() const { return range_; }
  size_t entries() const { return map_.size(); }

  // Returns false if the point is outside the covered range (the protocol's
  // "failure probability" event, Appendix B).
  bool Lookup(const EcPoint& point, int64_t* out) const;
  // Lookup keyed by an already-compressed encoding — the batched decrypt
  // path serializes decrypted points in bulk and never materializes
  // EcPoint forms just to hash them.
  bool LookupCompressed(const uint8_t* bytes33, int64_t* out) const;
  // Convenience: full decrypt of a ciphertext.
  bool Decrypt(const U256& secret, const ElGamalCiphertext& ct, int64_t* out) const;

 private:
  static uint64_t KeyOf(const EcPoint& point);
  static uint64_t KeyOfBytes(const uint8_t* bytes33);

  int64_t range_;
  std::unordered_map<uint64_t, int64_t> map_;
};

}  // namespace dstress::crypto

#endif  // SRC_CRYPTO_ELGAMAL_H_
