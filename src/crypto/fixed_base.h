// Fixed-base scalar multiplication for arbitrary base points, plus the
// lockstep batch-affine engine behind the transfer-phase crypto path
// (docs/transfer-crypto.md).
//
// A FixedBaseTable generalizes the MulBase generator comb to any base point
// P: it precomputes signed-window multiples of P in *affine* coordinates
// (normalized with Montgomery-trick batch inversion at build time) so each
// evaluation window costs one mixed addition instead of a full Jacobian one.
// The scalar is GLV-split into two ~128-bit halves, one walked against the
// table for P and one against the derived table for phi(P) = (beta*x, y) —
// halving the window count for the same digit density, and making the
// endomorphism table almost free to build (one field multiplication per
// entry).
//
// The table exists for the transfer hot path, where the *same* certificate
// key multiplies a fresh ephemeral every transfer and the same ephemeral
// multiplies (k+1)*L different keys per bundle: recodings are computed once
// per scalar and shared across every lane that uses that scalar, and MulBatch
// advances all lanes in lockstep so each window level pays a single shared
// field inversion for the whole burst.
#ifndef SRC_CRYPTO_FIXED_BASE_H_
#define SRC_CRYPTO_FIXED_BASE_H_

#include <cstdint>
#include <vector>

#include "src/crypto/ec.h"

namespace dstress::crypto {

class FixedBaseTable {
 public:
  static constexpr int kWindowBits = 4;
  // ceil(129 / 4) = 33 windows cover a GLV half-scalar (|k| < 2^129) plus
  // the signed-digit carry out of window 31.
  static constexpr int kHalfWindows = 33;
  static constexpr int kEntriesPerWindow = 8;  // digits d in [1, 8]

  // GLV-split signed-window digits of one scalar: digit1 walks the base
  // table, digit2 the endomorphism table, every digit in [-8, 8]. One
  // recoding serves every lane that multiplies by the same scalar.
  struct Recoding {
    int8_t digit1[kHalfWindows];
    int8_t digit2[kHalfWindows];
  };
  // k is interpreted mod n, like EcPoint::Mul.
  static Recoding Recode(const U256& k);

  explicit FixedBaseTable(const EcPoint& base);
  // Builds one table per base with every entry chain advanced in lockstep
  // (shared-inversion batch addition across all bases and windows) — the
  // per-certificate build path, ~7x cheaper per key than isolated builds.
  static std::vector<FixedBaseTable> BuildMany(const std::vector<EcPoint>& bases);

  // k * base; identical in value to base.Mul(k) for every k (the randomized
  // corpus test pins this). Single-point convenience — the hot path uses
  // MulBatch.
  EcPoint Mul(const U256& k) const;

  // Entry(j, d) = d * 16^j * base, EndoEntry(j, d) = d * 16^j * phi(base),
  // both affine; d in [1, kEntriesPerWindow].
  const AffinePoint& Entry(int window, int d) const {
    return entries_[window * kEntriesPerWindow + (d - 1)];
  }
  const AffinePoint& EndoEntry(int window, int d) const {
    return endo_entries_[window * kEntriesPerWindow + (d - 1)];
  }

 private:
  FixedBaseTable() = default;

  std::vector<AffinePoint> entries_;       // [kHalfWindows * kEntriesPerWindow]
  std::vector<AffinePoint> endo_entries_;  // phi(base) mirror
};

// --- batch-affine primitives -------------------------------------------------

// acc[i] += add[i] for every lane, sharing one field inversion across the
// batch (Montgomery's trick). Every special case is handled exactly:
// infinities on either side, doubling (P + P), and cancellation
// (P + (-P) = infinity).
void BatchAddAssign(AffinePoint* acc, const AffinePoint* add, size_t count);

// acc[indices[t]] += add[t]. Indices must be distinct within one call (each
// lane's accumulator is read once, before any write).
void BatchAddSelected(AffinePoint* acc, const size_t* indices, const AffinePoint* add,
                      size_t count);

// dst[t] = a[t] + T(b[t]) with T applying the optional endomorphism
// (x *= *endo) and negation to the addend as it is read — the zero-copy
// core under FixedBaseTableSet. `dst` may alias `a` (accumulate in place)
// and, when no transform is requested, pass-2 reads `b` directly, so a
// table row is consumed without ever being staged. `b` must not alias
// `dst` unless it also aliases `a` elementwise.
void BatchAddRows(const AffinePoint* a, const AffinePoint* b, AffinePoint* dst, size_t count,
                  const Fp* endo, bool negate);

// One lane of a batched multiplication: out = scalar(recoding) * base(table).
// Both pointers alias freely across lanes — e.g. one recoding against many
// tables (bundle encryption) or one table against many recodings (column
// decryption).
struct MulTask {
  const FixedBaseTable* table;
  const FixedBaseTable::Recoding* recoding;
};

// Evaluates every task in lockstep: per window level, one shared-inversion
// batch addition across all lanes with a nonzero digit. Results are affine,
// ready for direct compressed serialization.
void MulBatch(const MulTask* tasks, size_t count, AffinePoint* out);

// Window-major structure-of-arrays variant of BuildMany + MulBatch for the
// one shape the transfer hot path actually has: a fixed SET of base points
// (one per certificate [member][bit] key) all multiplied by the SAME scalar
// (the bundle's shared ephemeral). Storing entries row-major by
// (window, digit) makes every MulShared gather a contiguous num_keys-sized
// row instead of one cache-missing load per 42 KB-strided per-key table,
// and the shared scalar means one digit decision covers the whole row.
// The endomorphism mirror is not materialized: phi is applied to the row
// while the addend is staged (one field multiplication per lane), halving
// build work and memory next to FixedBaseTable.
class FixedBaseTableSet {
 public:
  // One shared normalization + per-window batch chains across all keys;
  // intended for certificate-sized sets (~100+ keys) where the per-row
  // inversion amortizes.
  static FixedBaseTableSet Build(const std::vector<EcPoint>& bases);

  size_t num_keys() const { return m_; }

  // out[i] = k(recoding) * base_i for every key, advanced entirely in
  // batch-affine lockstep across the set.
  void MulShared(const FixedBaseTable::Recoding& recoding, AffinePoint* out) const;

 private:
  const AffinePoint* Row(int window, int d) const {
    return entries_.data() +
           (static_cast<size_t>(window) * FixedBaseTable::kEntriesPerWindow + (d - 1)) * m_;
  }
  AffinePoint* MutableRow(int window, int d) {
    return entries_.data() +
           (static_cast<size_t>(window) * FixedBaseTable::kEntriesPerWindow + (d - 1)) * m_;
  }

  size_t m_ = 0;
  // Row (window j, digit d) holds d * 16^j * base_i for i = 0..m_-1.
  std::vector<AffinePoint> entries_;
};

}  // namespace dstress::crypto

#endif  // SRC_CRYPTO_FIXED_BASE_H_
