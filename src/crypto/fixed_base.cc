#include "src/crypto/fixed_base.h"

#include <utility>

#include "src/common/check.h"

namespace dstress::crypto {

namespace {

// Signed 4-bit-window expansion of a GLV half-scalar: k = sum d_j * 16^j
// with d_j in [-8, 8]. `sign` folds the decomposition sign into every digit.
void RecodeHalf(const U256& k, int sign, int8_t out[FixedBaseTable::kHalfWindows]) {
  int carry = 0;
  for (int j = 0; j < FixedBaseTable::kHalfWindows; j++) {
    int d = static_cast<int>((k.w[j / 16] >> (4 * (j % 16))) & 0xF) + carry;
    carry = 0;
    if (d > 8) {
      d -= 16;
      carry = 1;
    }
    out[j] = static_cast<int8_t>(sign * d);
  }
  // GLV halves are < 2^129, so window 32 (bits 128..131) absorbs the final
  // carry; anything left would silently drop scalar bits.
  DSTRESS_CHECK(carry == 0);
  DSTRESS_CHECK((k.w[2] >> 4) == 0 && k.w[3] == 0);
}

enum class AddKind : uint8_t { kKeep, kCopy, kGeneric, kDouble, kInfinity };

}  // namespace

FixedBaseTable::Recoding FixedBaseTable::Recode(const U256& k) {
  U256 e = k;
  while (Cmp(e, CurveOrder()) >= 0) {
    SubWithBorrow(e, CurveOrder(), &e);
  }
  U256 k1, k2;
  int sign1 = 1, sign2 = 1;
  SplitScalarGlv(e, &k1, &sign1, &k2, &sign2);
  Recoding r;
  RecodeHalf(k1, sign1, r.digit1);
  RecodeHalf(k2, sign2, r.digit2);
  return r;
}

FixedBaseTable::FixedBaseTable(const EcPoint& base) {
  *this = std::move(BuildMany({base}).front());
}

std::vector<FixedBaseTable> FixedBaseTable::BuildMany(const std::vector<EcPoint>& bases) {
  const size_t m = bases.size();
  std::vector<FixedBaseTable> out(m, FixedBaseTable());
  if (m == 0) {
    return out;
  }
  for (auto& table : out) {
    table.entries_.resize(kHalfWindows * kEntriesPerWindow);
    table.endo_entries_.resize(kHalfWindows * kEntriesPerWindow);
  }
  const Fp& beta = EndomorphismBeta();

  // Two build strategies with the same result. The per-window scheme pays
  // one shared inversion per batch-affine call (8 calls per window, 264
  // total), amortized across the m key lanes — a win for certificate-sized
  // batches but a 10x loss at m = 1, where each call inverts for a single
  // lane. Small batches take the ladder scheme, which amortizes across the
  // m * 33 window lanes instead.
  constexpr size_t kPerWindowThreshold = 32;

  if (m >= kPerWindowThreshold) {
    // Entirely affine, one lane per key: window j's entry chain d * B_j for
    // d = 1..8 is seven batch additions of B_j, and the next window base
    // B_{j+1} = 16 * B_j is ONE batch doubling of the d=8 entry (8 * B_j) —
    // replacing the four Jacobian doublings per window a 16^j ladder pays.
    // phi(x, y) = (beta*x, y) fills the endomorphism entry as each base
    // entry lands, for one field multiplication per entry.
    std::vector<AffinePoint> base(m);
    EcPoint::ToAffineBatch(bases.data(), m, base.data());
    std::vector<AffinePoint> cur(m);
    for (int j = 0; j < kHalfWindows; j++) {
      cur = base;
      for (int d = 1; d <= kEntriesPerWindow; d++) {
        if (d > 1) {
          BatchAddAssign(cur.data(), base.data(), m);
        }
        for (size_t t = 0; t < m; t++) {
          AffinePoint e = cur[t];
          out[t].entries_[j * kEntriesPerWindow + (d - 1)] = e;
          if (!e.infinity) {
            e.x = e.x * beta;
          }
          out[t].endo_entries_[j * kEntriesPerWindow + (d - 1)] = e;
        }
      }
      if (j + 1 < kHalfWindows) {
        base = cur;
        // Self-addition classifies every lane as a doubling (the addend is
        // never read back after the slope is formed), so aliasing is safe.
        BatchAddAssign(base.data(), base.data(), m);
      }
    }
    return out;
  }

  // Ladder 16^j * base per key (Jacobian doubling), normalized with one
  // shared inversion; entry chains d = 1..8 then advance in lockstep across
  // every (key, window) lane.
  const size_t lanes = m * kHalfWindows;
  std::vector<EcPoint> ladder(lanes);
  for (size_t t = 0; t < m; t++) {
    EcPoint p = bases[t];
    for (int j = 0; j < kHalfWindows; j++) {
      ladder[t * kHalfWindows + j] = p;
      p = p.Double().Double().Double().Double();
    }
  }
  std::vector<AffinePoint> base_row(lanes);
  EcPoint::ToAffineBatch(ladder.data(), lanes, base_row.data());

  std::vector<AffinePoint> cur = base_row;
  for (int d = 1; d <= kEntriesPerWindow; d++) {
    if (d > 1) {
      BatchAddAssign(cur.data(), base_row.data(), lanes);
    }
    for (size_t t = 0; t < m; t++) {
      for (int j = 0; j < kHalfWindows; j++) {
        AffinePoint e = cur[t * kHalfWindows + j];
        out[t].entries_[j * kEntriesPerWindow + (d - 1)] = e;
        if (!e.infinity) {
          e.x = e.x * beta;
        }
        out[t].endo_entries_[j * kEntriesPerWindow + (d - 1)] = e;
      }
    }
  }
  return out;
}

EcPoint FixedBaseTable::Mul(const U256& k) const {
  // Single-point evaluation accumulates in Jacobian form (mixed additions
  // against the affine entries); batched evaluation goes through MulBatch,
  // where the per-window inversion is shared.
  Recoding r = Recode(k);
  EcPoint acc = EcPoint::Infinity();
  for (int j = 0; j < kHalfWindows; j++) {
    for (int half = 0; half < 2; half++) {
      int d = half == 0 ? r.digit1[j] : r.digit2[j];
      if (d == 0) {
        continue;
      }
      const AffinePoint& entry =
          half == 0 ? Entry(j, d > 0 ? d : -d) : EndoEntry(j, d > 0 ? d : -d);
      EcPoint p = EcPoint::FromAffinePoint(entry);
      acc = acc.Add(d > 0 ? p : p.Neg());
    }
  }
  return acc;
}

void BatchAddSelected(AffinePoint* acc, const size_t* indices, const AffinePoint* add,
                      size_t count) {
  // Pass 1: classify every lane and collect the denominators that need
  // inverting (x2 - x1 for generic additions, 2*y for doublings). The
  // scratch vectors persist across calls: this runs once per window level
  // for every bundle in a transfer batch, and per-call allocation showed up
  // in profiles.
  static thread_local std::vector<AddKind> kind;
  static thread_local std::vector<Fp> den;
  kind.assign(count, AddKind::kKeep);
  den.clear();
  den.reserve(count);
  for (size_t t = 0; t < count; t++) {
    const AffinePoint& p = acc[indices ? indices[t] : t];
    const AffinePoint& q = add[t];
    if (q.infinity) {
      kind[t] = AddKind::kKeep;
    } else if (p.infinity) {
      kind[t] = AddKind::kCopy;
    } else if (p.x != q.x) {
      kind[t] = AddKind::kGeneric;
      den.push_back(q.x - p.x);
    } else if (p.y == q.y && !p.y.IsZero()) {
      kind[t] = AddKind::kDouble;
      den.push_back(p.y + p.y);
    } else {
      kind[t] = AddKind::kInfinity;  // P + (-P), or doubling a 2-torsion y=0
    }
  }
  Fp::BatchInvert(den.data(), den.size());

  // Pass 2: finish each lane with its inverted denominator.
  size_t cursor = 0;
  for (size_t t = 0; t < count; t++) {
    AffinePoint& p = acc[indices ? indices[t] : t];
    const AffinePoint& q = add[t];
    switch (kind[t]) {
      case AddKind::kKeep:
        break;
      case AddKind::kCopy:
        p = q;
        break;
      case AddKind::kInfinity:
        p = AffinePoint{};
        break;
      case AddKind::kGeneric: {
        Fp lambda = (q.y - p.y) * den[cursor++];
        Fp x3 = lambda.Square() - p.x - q.x;
        p.y = lambda * (p.x - x3) - p.y;
        p.x = x3;
        break;
      }
      case AddKind::kDouble: {
        Fp xx = p.x.Square();
        Fp lambda = (xx + xx + xx) * den[cursor++];
        Fp x3 = lambda.Square() - p.x - p.x;
        p.y = lambda * (p.x - x3) - p.y;
        p.x = x3;
        break;
      }
    }
  }
}

void BatchAddAssign(AffinePoint* acc, const AffinePoint* add, size_t count) {
  BatchAddSelected(acc, nullptr, add, count);
}

void BatchAddRows(const AffinePoint* a, const AffinePoint* b, AffinePoint* dst, size_t count,
                  const Fp* endo, bool negate) {
  static thread_local std::vector<AddKind> kind;
  static thread_local std::vector<Fp> den;
  static thread_local std::vector<AffinePoint> tb;
  kind.resize(count);
  den.clear();
  den.reserve(count);

  // Pass 1: classify and collect denominators. A transformed addend is
  // staged once; an untransformed one is read from `b` in both passes.
  const AffinePoint* qs = b;
  if (endo != nullptr || negate) {
    tb.resize(count);
    for (size_t t = 0; t < count; t++) {
      AffinePoint q = b[t];
      if (!q.infinity) {
        if (endo != nullptr) {
          q.x = q.x * *endo;
        }
        if (negate) {
          q.y = q.y.Neg();
        }
      }
      tb[t] = q;
    }
    qs = tb.data();
  }
  for (size_t t = 0; t < count; t++) {
    const AffinePoint& p = a[t];
    const AffinePoint& q = qs[t];
    if (q.infinity) {
      kind[t] = AddKind::kKeep;
    } else if (p.infinity) {
      kind[t] = AddKind::kCopy;
    } else if (p.x != q.x) {
      kind[t] = AddKind::kGeneric;
      den.push_back(q.x - p.x);
    } else if (p.y == q.y && !p.y.IsZero()) {
      kind[t] = AddKind::kDouble;
      den.push_back(p.y + p.y);
    } else {
      kind[t] = AddKind::kInfinity;
    }
  }
  Fp::BatchInvert(den.data(), den.size());

  // Pass 2: results are computed into locals before any store, so `dst`
  // aliasing `a` (or, lane-wise, `b`) stays correct.
  size_t cursor = 0;
  for (size_t t = 0; t < count; t++) {
    const AffinePoint& p = a[t];
    const AffinePoint& q = qs[t];
    switch (kind[t]) {
      case AddKind::kKeep:
        dst[t] = p;
        break;
      case AddKind::kCopy:
        dst[t] = q;
        break;
      case AddKind::kInfinity:
        dst[t] = AffinePoint{};
        break;
      case AddKind::kGeneric: {
        Fp lambda = (q.y - p.y) * den[cursor++];
        Fp x3 = lambda.Square() - p.x - q.x;
        Fp y3 = lambda * (p.x - x3) - p.y;
        dst[t].x = x3;
        dst[t].y = y3;
        dst[t].infinity = false;
        break;
      }
      case AddKind::kDouble: {
        Fp xx = p.x.Square();
        Fp lambda = (xx + xx + xx) * den[cursor++];
        Fp x3 = lambda.Square() - p.x - p.x;
        Fp y3 = lambda * (p.x - x3) - p.y;
        dst[t].x = x3;
        dst[t].y = y3;
        dst[t].infinity = false;
        break;
      }
    }
  }
}

void MulBatch(const MulTask* tasks, size_t count, AffinePoint* out) {
  for (size_t i = 0; i < count; i++) {
    out[i] = AffinePoint{};
  }
  static thread_local std::vector<size_t> idx;
  static thread_local std::vector<AffinePoint> add;
  idx.reserve(count);
  add.reserve(count);
  // Two passes per window level (base table, then endomorphism table) so a
  // lane never receives two addends inside one batch call.
  for (int j = 0; j < FixedBaseTable::kHalfWindows; j++) {
    for (int half = 0; half < 2; half++) {
      idx.clear();
      add.clear();
      for (size_t i = 0; i < count; i++) {
        const FixedBaseTable::Recoding& r = *tasks[i].recoding;
        int d = half == 0 ? r.digit1[j] : r.digit2[j];
        if (d == 0) {
          continue;
        }
        const AffinePoint& entry = half == 0 ? tasks[i].table->Entry(j, d > 0 ? d : -d)
                                             : tasks[i].table->EndoEntry(j, d > 0 ? d : -d);
        AffinePoint a = entry;
        if (d < 0 && !a.infinity) {
          a.y = a.y.Neg();
        }
        idx.push_back(i);
        add.push_back(a);
      }
      if (!idx.empty()) {
        BatchAddSelected(out, idx.data(), add.data(), idx.size());
      }
    }
  }
}

FixedBaseTableSet FixedBaseTableSet::Build(const std::vector<EcPoint>& bases) {
  FixedBaseTableSet set;
  set.m_ = bases.size();
  if (set.m_ == 0) {
    return set;
  }
  const size_t m = set.m_;
  set.entries_.resize(static_cast<size_t>(FixedBaseTable::kHalfWindows) *
                      FixedBaseTable::kEntriesPerWindow * m);

  // Same per-window affine lockstep as BuildMany, but zero-copy: row(j, 1)
  // IS the window base B_j, each chain step writes row(j, d) = row(j, d-1)
  // + row(j, 1) out of place, and B_{j+1} = 16 * B_j lands directly in
  // row(j+1, 1) as one batch doubling of row(j, 8).
  EcPoint::ToAffineBatch(bases.data(), m, set.MutableRow(0, 1));
  for (int j = 0; j < FixedBaseTable::kHalfWindows; j++) {
    const AffinePoint* base = set.Row(j, 1);
    for (int d = 2; d <= FixedBaseTable::kEntriesPerWindow; d++) {
      BatchAddRows(set.Row(j, d - 1), base, set.MutableRow(j, d), m, nullptr, false);
    }
    if (j + 1 < FixedBaseTable::kHalfWindows) {
      const AffinePoint* top = set.Row(j, FixedBaseTable::kEntriesPerWindow);
      // a == b, so every lane is a doubling (see BuildMany).
      BatchAddRows(top, top, set.MutableRow(j + 1, 1), m, nullptr, false);
    }
  }
  return set;
}

void FixedBaseTableSet::MulShared(const FixedBaseTable::Recoding& recoding,
                                  AffinePoint* out) const {
  const size_t m = m_;
  for (size_t i = 0; i < m; i++) {
    out[i] = AffinePoint{};
  }
  const Fp& beta = EndomorphismBeta();
  for (int j = 0; j < FixedBaseTable::kHalfWindows; j++) {
    for (int half = 0; half < 2; half++) {
      int d = half == 0 ? recoding.digit1[j] : recoding.digit2[j];
      if (d == 0) {
        continue;
      }
      // phi (x *= beta) for the endomorphism half and the digit sign are
      // applied by the add itself while the row is read.
      BatchAddRows(out, Row(j, d > 0 ? d : -d), out, m, half == 1 ? &beta : nullptr, d < 0);
    }
  }
}

}  // namespace dstress::crypto
