// Fixed-width 256-bit unsigned integer arithmetic.
//
// This is the bottom layer of the from-scratch cryptographic stack: the
// secp256k1 field (fp.h), the group-order scalar ring (scalar.h) and the
// elliptic-curve group (ec.h) are all built on U256. Limbs are stored
// little-endian (w[0] is least significant); 128-bit intermediates use the
// compiler's unsigned __int128.
#ifndef SRC_CRYPTO_U256_H_
#define SRC_CRYPTO_U256_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/common/bytes.h"

namespace dstress::crypto {

struct U256 {
  // Little-endian limbs: value = sum_i w[i] * 2^(64 i).
  uint64_t w[4] = {0, 0, 0, 0};

  constexpr U256() = default;
  constexpr explicit U256(uint64_t v) : w{v, 0, 0, 0} {}
  constexpr U256(uint64_t w0, uint64_t w1, uint64_t w2, uint64_t w3) : w{w0, w1, w2, w3} {}

  static U256 Zero() { return U256(); }
  static U256 One() { return U256(1); }

  // Parses a big-endian hex string of at most 64 digits.
  static U256 FromHex(const std::string& hex);
  // Big-endian 32-byte conversions (the standard wire encoding).
  static U256 FromBytesBe(const uint8_t* bytes32);
  void ToBytesBe(uint8_t* bytes32) const;
  std::string ToHex() const;

  bool IsZero() const { return (w[0] | w[1] | w[2] | w[3]) == 0; }
  bool IsOdd() const { return (w[0] & 1) != 0; }
  // Returns bit i (0 = least significant).
  bool Bit(int i) const { return (w[i >> 6] >> (i & 63)) & 1; }
  // Index of the highest set bit, or -1 if zero.
  int BitLength() const;

  bool operator==(const U256& o) const {
    return w[0] == o.w[0] && w[1] == o.w[1] && w[2] == o.w[2] && w[3] == o.w[3];
  }
  bool operator!=(const U256& o) const { return !(*this == o); }
};

// Comparison: -1, 0, +1 as a <, ==, > b.
int Cmp(const U256& a, const U256& b);

// out = a + b, returns the carry bit.
uint64_t AddWithCarry(const U256& a, const U256& b, U256* out);
// out = a - b, returns the borrow bit.
uint64_t SubWithBorrow(const U256& a, const U256& b, U256* out);

// 512-bit product of two 256-bit values, little-endian limbs.
struct U512 {
  uint64_t w[8] = {0, 0, 0, 0, 0, 0, 0, 0};
};
U512 MulFull(const U256& a, const U256& b);

// Logical shifts. Shift amounts in [0, 255].
U256 Shl(const U256& a, int bits);
U256 Shr(const U256& a, int bits);

// Generic (slow) modular reduction of a 512-bit value, for places where no
// special-form prime is available (the scalar ring). Binary long division.
U256 Mod512(const U512& a, const U256& m);

// Generic modular helpers built on Mod512; adequate for key generation and
// test support, not on any hot path.
U256 ModAdd(const U256& a, const U256& b, const U256& m);
U256 ModSub(const U256& a, const U256& b, const U256& m);
U256 ModMul(const U256& a, const U256& b, const U256& m);
U256 ModPow(const U256& a, const U256& e, const U256& m);
// Modular inverse for odd modulus m with gcd(a, m) = 1 (Fermat when m is
// prime is handled by callers; this uses the binary extended gcd).
U256 ModInv(const U256& a, const U256& m);

}  // namespace dstress::crypto

#endif  // SRC_CRYPTO_U256_H_
