// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used as the random-oracle hash inside the base OT, the IKNP OT extension,
// and for fingerprinting public keys in the discrete-log lookup table.
#ifndef SRC_CRYPTO_SHA256_H_
#define SRC_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>

#include "src/common/bytes.h"

namespace dstress::crypto {

using Sha256Digest = std::array<uint8_t, 32>;

class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(const uint8_t* data, size_t len);
  void Update(const Bytes& data) { Update(data.data(), data.size()); }
  Sha256Digest Finish();

  // One-shot convenience.
  static Sha256Digest Hash(const uint8_t* data, size_t len);
  static Sha256Digest Hash(const Bytes& data) { return Hash(data.data(), data.size()); }

 private:
  void ProcessBlock(const uint8_t block[64]);

  uint32_t state_[8];
  uint64_t total_len_ = 0;
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
};

}  // namespace dstress::crypto

#endif  // SRC_CRYPTO_SHA256_H_
