#include "src/crypto/elgamal.h"

#include <algorithm>
#include <cstring>

#include "src/common/check.h"
#include "src/crypto/sha256.h"

namespace dstress::crypto {

Bytes ElGamalPublicKey::Serialize() const {
  auto c = point.Compress();
  return Bytes(c.begin(), c.end());
}

ElGamalPublicKey ElGamalPublicKey::Deserialize(const Bytes& raw) {
  DSTRESS_CHECK(raw.size() == EcPoint::kCompressedSize);
  auto p = EcPoint::Decompress(raw.data());
  DSTRESS_CHECK(p.has_value());
  return ElGamalPublicKey{*p};
}

Bytes ElGamalCiphertext::Serialize() const {
  Bytes out;
  out.reserve(kSerializedSize);
  auto a = c1.Compress();
  auto b = c2.Compress();
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

ElGamalCiphertext ElGamalCiphertext::Deserialize(const Bytes& raw) {
  DSTRESS_CHECK(raw.size() == kSerializedSize);
  auto a = EcPoint::Decompress(raw.data());
  auto b = EcPoint::Decompress(raw.data() + EcPoint::kCompressedSize);
  DSTRESS_CHECK(a.has_value() && b.has_value());
  return ElGamalCiphertext{*a, *b};
}

ElGamalKeyPair ElGamalKeyGen(ChaCha20Prg& prg) {
  U256 x = prg.NextScalar(CurveOrder());
  return ElGamalKeyPair{x, ElGamalPublicKey{MulBase(x)}};
}

U256 EncodeExponent(int64_t m) {
  if (m >= 0) {
    return U256(static_cast<uint64_t>(m));
  }
  U256 e;
  SubWithBorrow(CurveOrder(), U256(static_cast<uint64_t>(-m)), &e);
  return e;
}

ElGamalCiphertext ElGamalEncryptWithEphemeral(const ElGamalPublicKey& pub, int64_t m,
                                              const U256& ephemeral) {
  EcPoint c1 = MulBase(ephemeral);
  EcPoint payload = MulBase(EncodeExponent(m));
  EcPoint c2 = payload.Add(pub.point.Mul(ephemeral));
  return ElGamalCiphertext{c1, c2};
}

ElGamalCiphertext ElGamalEncrypt(const ElGamalPublicKey& pub, int64_t m, ChaCha20Prg& prg) {
  return ElGamalEncryptWithEphemeral(pub, m, prg.NextScalar(CurveOrder()));
}

ElGamalMultiCiphertext ElGamalEncryptMulti(const std::vector<ElGamalPublicKey>& keys,
                                           const std::vector<int64_t>& msgs, ChaCha20Prg& prg) {
  DSTRESS_CHECK(keys.size() == msgs.size());
  U256 y = prg.NextScalar(CurveOrder());
  ElGamalMultiCiphertext out;
  out.c1 = MulBase(y);
  out.c2.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); i++) {
    EcPoint payload = MulBase(EncodeExponent(msgs[i]));
    out.c2.push_back(payload.Add(keys[i].point.Mul(y)));
  }
  return out;
}

ElGamalCiphertext HomAdd(const ElGamalCiphertext& a, const ElGamalCiphertext& b) {
  return ElGamalCiphertext{a.c1.Add(b.c1), a.c2.Add(b.c2)};
}

ElGamalCiphertext HomAddPlain(const ElGamalCiphertext& ct, int64_t delta) {
  if (delta == 0) {
    return ct;
  }
  return ElGamalCiphertext{ct.c1, ct.c2.Add(MulBase(EncodeExponent(delta)))};
}

ElGamalPublicKey RandomizePublicKey(const ElGamalPublicKey& pub, const U256& r) {
  return ElGamalPublicKey{pub.point.Mul(r)};
}

ElGamalCiphertext AdjustCiphertext(const ElGamalCiphertext& ct, const U256& r) {
  return ElGamalCiphertext{ct.c1.Mul(r), ct.c2};
}

EcPoint ElGamalDecryptPoint(const U256& secret, const ElGamalCiphertext& ct) {
  return ct.c2.Add(ct.c1.Mul(secret).Neg());
}

uint64_t DlogTable::KeyOfBytes(const uint8_t* bytes33) {
  Sha256Digest digest = Sha256::Hash(bytes33, EcPoint::kCompressedSize);
  uint64_t key;
  std::memcpy(&key, digest.data(), 8);
  return key;
}

uint64_t DlogTable::KeyOf(const EcPoint& point) {
  auto compressed = point.Compress();
  return KeyOfBytes(compressed.data());
}

DlogTable::DlogTable(int64_t range) : range_(range) {
  DSTRESS_CHECK(range >= 0);
  map_.reserve(static_cast<size_t>(2 * range + 1));
  auto insert = [this](uint64_t key, int64_t m) {
    bool inserted = map_.emplace(key, m).second;
    // Distinct m map to distinct points (prime group order far exceeds any
    // table range), so a duplicate key means the truncated 64-bit digests
    // collided — which would silently decrypt to the wrong plaintext on
    // every future hit. Abort the build instead.
    DSTRESS_CHECK(inserted);
  };
  // Walk m = 0, +1, ..., +range and 0, -1, ..., -range with cheap group
  // additions, compressing in chunks so the affine normalization cost is
  // one shared inversion per chunk rather than one per entry.
  const EcPoint& g = EcPoint::Generator();
  EcPoint neg_g = g.Neg();
  EcPoint pos = EcPoint::Infinity();
  EcPoint neg = EcPoint::Infinity();
  insert(KeyOf(pos), 0);
  constexpr int64_t kChunk = 512;
  std::vector<EcPoint> points;
  std::vector<int64_t> values;
  std::vector<uint8_t> compressed(2 * kChunk * EcPoint::kCompressedSize);
  for (int64_t start = 1; start <= range; start += kChunk) {
    const int64_t end = std::min(range, start + kChunk - 1);
    points.clear();
    values.clear();
    for (int64_t m = start; m <= end; m++) {
      pos = pos.Add(g);
      neg = neg.Add(neg_g);
      points.push_back(pos);
      values.push_back(m);
      points.push_back(neg);
      values.push_back(-m);
    }
    EcPoint::CompressBatch(points.data(), points.size(), compressed.data());
    for (size_t i = 0; i < points.size(); i++) {
      insert(KeyOfBytes(compressed.data() + i * EcPoint::kCompressedSize), values[i]);
    }
  }
}

bool DlogTable::Lookup(const EcPoint& point, int64_t* out) const {
  auto it = map_.find(KeyOf(point));
  if (it == map_.end()) {
    return false;
  }
  *out = it->second;
  return true;
}

bool DlogTable::LookupCompressed(const uint8_t* bytes33, int64_t* out) const {
  auto it = map_.find(KeyOfBytes(bytes33));
  if (it == map_.end()) {
    return false;
  }
  *out = it->second;
  return true;
}

bool DlogTable::Decrypt(const U256& secret, const ElGamalCiphertext& ct, int64_t* out) const {
  return Lookup(ElGamalDecryptPoint(secret, ct), out);
}

}  // namespace dstress::crypto
