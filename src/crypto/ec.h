// secp256k1 elliptic-curve group: y^2 = x^3 + 7 over GF(p).
//
// Points are held in Jacobian projective coordinates (X, Y, Z) with the
// point at infinity represented by Z = 0. The group has prime order n, so
// every non-identity point generates the full group — which is exactly the
// structure the exponential-ElGamal scheme in elgamal.h needs.
#ifndef SRC_CRYPTO_EC_H_
#define SRC_CRYPTO_EC_H_

#include <array>
#include <optional>

#include "src/crypto/fp.h"
#include "src/crypto/u256.h"

namespace dstress::crypto {

// Order of the secp256k1 group (prime).
const U256& CurveOrder();

// A point in affine coordinates with an explicit infinity flag — the element
// format of the batch-affine engine (fixed_base.h), whose shared-inversion
// addition needs x and y directly rather than Jacobian coordinates. The
// default-constructed value is the point at infinity.
struct AffinePoint {
  Fp x, y;
  bool infinity = true;
};

class EcPoint {
 public:
  // Point at infinity.
  EcPoint() : x_(Fp::FromUint64(1)), y_(Fp::FromUint64(1)), z_(Fp::FromUint64(0)) {}

  static EcPoint Infinity() { return EcPoint(); }
  // The standard generator G.
  static const EcPoint& Generator();
  // Constructs from affine coordinates; the caller asserts (x, y) is on the
  // curve (checked in debug builds).
  static EcPoint FromAffine(const Fp& x, const Fp& y);
  // Lifts a batch-engine affine point back into the Jacobian representation
  // (no field work; trusts the input is on the curve, like FromAffine).
  static EcPoint FromAffinePoint(const AffinePoint& p);

  bool IsInfinity() const { return z_.IsZero(); }

  EcPoint Double() const;
  EcPoint Add(const EcPoint& other) const;
  EcPoint Neg() const;
  // Scalar multiplication by k (interpreted mod n), 4-bit fixed-window.
  EcPoint Mul(const U256& k) const;

  // Converts to affine (x, y). Must not be infinity.
  void ToAffine(Fp* x, Fp* y) const;

  // Constant-size compressed encoding: 0x02/0x03 || x (33 bytes); infinity
  // encodes as 33 zero bytes. This is the wire format of every ElGamal
  // component, and the 33-byte size is what the traffic accounting charges.
  static constexpr size_t kCompressedSize = 33;
  std::array<uint8_t, kCompressedSize> Compress() const;
  static std::optional<EcPoint> Decompress(const uint8_t* bytes33);

  // Compresses `count` points into out[count*33] with one shared field
  // inversion (Montgomery's trick) — the serialization hot path for
  // subshare bundles, which carry (k+1)^2 * L points per transfer.
  static void CompressBatch(const EcPoint* points, size_t count, uint8_t* out);

  // Converts `count` points to affine with one shared field inversion —
  // feeds the batch-affine engine (table builds, burst decryption).
  static void ToAffineBatch(const EcPoint* points, size_t count, AffinePoint* out);

  // Decompresses `count` packed 33-byte encodings (the inverse of
  // CompressBatch's layout). Returns false if any encoding is invalid, in
  // which case `out` is unspecified. The square root per point is inherent;
  // what the batch form saves is the per-point validity plumbing on the
  // deserialization hot path.
  static bool DecompressBatch(const uint8_t* in, size_t count, EcPoint* out);
  // Same, decoding straight into batch-engine affine form (decompression is
  // natively affine, so this skips the Jacobian round trip).
  static bool DecompressBatch(const uint8_t* in, size_t count, AffinePoint* out);

  // Equality in the group (compares affine forms; handles infinity).
  bool operator==(const EcPoint& other) const;
  bool operator!=(const EcPoint& other) const { return !(*this == other); }

 private:
  EcPoint(const Fp& x, const Fp& y, const Fp& z) : x_(x), y_(y), z_(z) {}

  Fp x_, y_, z_;
};

// k*G using a precomputed table for the fixed generator (much faster than
// EcPoint::Generator().Mul(k); encryption does two of these per ciphertext).
EcPoint MulBase(const U256& k);

// --- GLV decomposition (exposed for the fixed-base tables) -------------------
// secp256k1 admits the endomorphism phi(x, y) = (beta*x, y) = lambda*(x, y).
// SplitScalarGlv writes e ≡ sign1*k1 + lambda*sign2*k2 (mod n) with k1, k2
// short (~128 bits); e must already be reduced mod n. EcPoint::Mul uses the
// same split internally; fixed_base.h uses it to halve the window count of
// its per-key tables (one table for P, one derived table for phi(P)).
void SplitScalarGlv(const U256& e, U256* k1, int* sign1, U256* k2, int* sign2);
const Fp& EndomorphismBeta();

}  // namespace dstress::crypto

#endif  // SRC_CRYPTO_EC_H_
