#include "src/crypto/chacha20.h"

#include <cstring>

#include "src/common/check.h"
#include "src/crypto/sha256.h"

namespace dstress::crypto {

namespace {

uint32_t Rotl32(uint32_t x, int n) { return (x << n) | (x >> (32 - n)); }

void QuarterRound(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b;
  d ^= a;
  d = Rotl32(d, 16);
  c += d;
  b ^= c;
  b = Rotl32(b, 12);
  a += b;
  d ^= a;
  d = Rotl32(d, 8);
  c += d;
  b ^= c;
  b = Rotl32(b, 7);
}

uint32_t LoadLe32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

}  // namespace

void ChaCha20Block(const uint8_t key[32], const uint8_t nonce[12], uint32_t counter,
                   uint8_t out[64]) {
  uint32_t state[16];
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; i++) {
    state[4 + i] = LoadLe32(key + 4 * i);
  }
  state[12] = counter;
  for (int i = 0; i < 3; i++) {
    state[13 + i] = LoadLe32(nonce + 4 * i);
  }

  uint32_t x[16];
  std::memcpy(x, state, sizeof(x));
  for (int round = 0; round < 10; round++) {
    QuarterRound(x[0], x[4], x[8], x[12]);
    QuarterRound(x[1], x[5], x[9], x[13]);
    QuarterRound(x[2], x[6], x[10], x[14]);
    QuarterRound(x[3], x[7], x[11], x[15]);
    QuarterRound(x[0], x[5], x[10], x[15]);
    QuarterRound(x[1], x[6], x[11], x[12]);
    QuarterRound(x[2], x[7], x[8], x[13]);
    QuarterRound(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; i++) {
    uint32_t v = x[i] + state[i];
    std::memcpy(out + 4 * i, &v, 4);
  }
}

ChaCha20Prg::ChaCha20Prg(const std::array<uint8_t, 32>& key, uint64_t stream_id) {
  std::memcpy(key_, key.data(), 32);
  std::memset(nonce_, 0, sizeof(nonce_));
  std::memcpy(nonce_, &stream_id, 8);
}

ChaCha20Prg ChaCha20Prg::FromSeed(uint64_t seed, uint64_t stream_id) {
  uint8_t seed_bytes[8];
  std::memcpy(seed_bytes, &seed, 8);
  Sha256Digest digest = Sha256::Hash(seed_bytes, 8);
  std::array<uint8_t, 32> key;
  std::memcpy(key.data(), digest.data(), 32);
  return ChaCha20Prg(key, stream_id);
}

void ChaCha20Prg::Refill() {
  ChaCha20Block(key_, nonce_, counter_, block_);
  counter_++;
  DSTRESS_CHECK(counter_ != 0);  // 256 GiB per stream is far beyond any run.
  pos_ = 0;
}

void ChaCha20Prg::Fill(uint8_t* out, size_t len) {
  while (len > 0) {
    if (pos_ == 64) {
      Refill();
    }
    size_t take = 64 - pos_;
    if (take > len) {
      take = len;
    }
    std::memcpy(out, block_ + pos_, take);
    pos_ += take;
    out += take;
    len -= take;
  }
}

Bytes ChaCha20Prg::NextBytes(size_t len) {
  Bytes out(len);
  Fill(out.data(), len);
  return out;
}

uint8_t ChaCha20Prg::NextByte() {
  uint8_t b;
  Fill(&b, 1);
  return b;
}

uint64_t ChaCha20Prg::NextU64() {
  uint64_t v;
  Fill(reinterpret_cast<uint8_t*>(&v), 8);
  return v;
}

bool ChaCha20Prg::NextBit() {
  if (bits_left_ == 0) {
    bit_byte_ = NextByte();
    bits_left_ = 8;
  }
  bool bit = (bit_byte_ & 1) != 0;
  bit_byte_ >>= 1;
  bits_left_--;
  return bit;
}

uint64_t ChaCha20Prg::NextBelow(uint64_t bound) {
  DSTRESS_CHECK(bound > 0);
  uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

U256 ChaCha20Prg::NextU256() {
  uint8_t raw[32];
  Fill(raw, 32);
  return U256::FromBytesBe(raw);
}

U256 ChaCha20Prg::NextScalar(const U256& order) {
  // Draw only BitLength(order) bits so the acceptance probability is at
  // least 1/2 regardless of how small the order is; sampling full 256-bit
  // values would essentially never terminate for short orders.
  const int bits = order.BitLength() + 1;  // BitLength is the top set bit index
  for (;;) {
    U256 v = NextU256();
    if (bits < 256) {
      v = Shr(v, 256 - bits);
    }
    if (!v.IsZero() && Cmp(v, order) < 0) {
      return v;
    }
  }
}

}  // namespace dstress::crypto
