// Arithmetic in the secp256k1 base field GF(p), p = 2^256 - 2^32 - 977.
//
// The special form of p admits a fast reduction: 2^256 ≡ 2^32 + 977 (mod p),
// so a 512-bit product folds down in two multiply-by-constant passes. All
// values are kept fully reduced in [0, p).
#ifndef SRC_CRYPTO_FP_H_
#define SRC_CRYPTO_FP_H_

#include "src/crypto/u256.h"

namespace dstress::crypto {

class Fp {
 public:
  // p = FFFFFFFF...FFFFFFFE FFFFFC2F.
  static const U256& P();

  constexpr Fp() = default;
  // v must already be < p for the fast path; Reduce() handles the general
  // case (used when loading external byte strings).
  static Fp FromU256(const U256& v);
  static Fp FromUint64(uint64_t v) { return Fp(U256(v)); }
  static Fp FromHex(const std::string& hex) { return FromU256(U256::FromHex(hex)); }

  const U256& raw() const { return v_; }
  bool IsZero() const { return v_.IsZero(); }
  bool IsOdd() const { return v_.IsOdd(); }

  bool operator==(const Fp& o) const { return v_ == o.v_; }
  bool operator!=(const Fp& o) const { return !(*this == o); }

  Fp operator+(const Fp& o) const;
  Fp operator-(const Fp& o) const;
  Fp operator*(const Fp& o) const;
  Fp Neg() const;
  Fp Square() const;
  // Multiplicative inverse via Fermat: a^(p-2). Requires a != 0.
  Fp Inv() const;
  // Inverts `count` values in place with one shared Inv() (Montgomery's
  // trick): 3 multiplications per value instead of one ~256-squaring
  // exponentiation each. Every value must be nonzero.
  static void BatchInvert(Fp* values, size_t count);
  // Square root via a^((p+1)/4) (valid since p ≡ 3 mod 4). Returns false if
  // no square root exists.
  bool Sqrt(Fp* out) const;
  Fp Pow(const U256& e) const;

 private:
  constexpr explicit Fp(const U256& v) : v_(v) {}

  U256 v_;
};

}  // namespace dstress::crypto

#endif  // SRC_CRYPTO_FP_H_
