// ChaCha20 stream cipher (RFC 8439 block function) and a PRG built on it.
//
// ChaCha20Prg is the cryptographic randomness source for the protocol stack:
// ephemeral ElGamal keys, OT choice bits, GMW share masks, and the jointly
// seeded in-MPC noise draw all pull from instances of this generator.
#ifndef SRC_CRYPTO_CHACHA20_H_
#define SRC_CRYPTO_CHACHA20_H_

#include <array>
#include <cstdint>

#include "src/common/bytes.h"
#include "src/crypto/u256.h"

namespace dstress::crypto {

// Computes one 64-byte ChaCha20 block for (key, nonce, counter).
void ChaCha20Block(const uint8_t key[32], const uint8_t nonce[12], uint32_t counter,
                   uint8_t out[64]);

class ChaCha20Prg {
 public:
  // Deterministic PRG from a 32-byte key. The 12-byte nonce defaults to a
  // stream id, letting one key derive independent streams.
  explicit ChaCha20Prg(const std::array<uint8_t, 32>& key, uint64_t stream_id = 0);
  // Convenience: derives the key by hashing a 64-bit seed. Test/simulation
  // entry point; protocol code should pass full-entropy keys.
  static ChaCha20Prg FromSeed(uint64_t seed, uint64_t stream_id = 0);

  void Fill(uint8_t* out, size_t len);
  Bytes NextBytes(size_t len);
  uint8_t NextByte();
  uint64_t NextU64();
  bool NextBit();
  // Uniform value below `bound` (rejection sampled).
  uint64_t NextBelow(uint64_t bound);
  // Uniform 256-bit value.
  U256 NextU256();
  // Uniform nonzero scalar below `order` (rejection sampled) — used for
  // ElGamal secret/ephemeral keys and neighbor keys.
  U256 NextScalar(const U256& order);

 private:
  void Refill();

  uint8_t key_[32];
  uint8_t nonce_[12];
  uint32_t counter_ = 0;
  uint8_t block_[64];
  size_t pos_ = 64;
  // Bit-level buffer for NextBit().
  uint8_t bit_byte_ = 0;
  int bits_left_ = 0;
};

}  // namespace dstress::crypto

#endif  // SRC_CRYPTO_CHACHA20_H_
