// Scenario files: a small text format that lets a regulator (or a test
// harness) describe a complete DStress stress test — network topology,
// contagion model, privacy parameters, and shock — without writing C++.
//
// Format: one directive per line, `#` starts a comment. Directives:
//
//   network core_periphery <N> <core_size>     (synthetic topologies)
//   network scale_free <N> <links_per_vertex>
//   network erdos_renyi <N> <edge_probability>
//   network explicit <N>                        (followed by `edge` lines)
//   network file <path>                         (edge-list file, src/graph/io.h)
//   edge <u> <v>                                (directed)
//   model <en|egj>                              (contagion model, §4.2/§4.3)
//   iterations <I>                              (0 = ceil(log2 N), App. C)
//   block_size <k+1>
//   epsilon <eps_query>                         (§4.5 output privacy)
//   leverage <r>                                (sensitivity = 1/r or 2/r)
//   shock <bank> [bank ...]                     (assets wiped before run)
//   seed <s>
//
// Unknown directives, malformed arguments, out-of-range vertices and
// missing required fields are reported with line numbers.
#ifndef SRC_CLI_SCENARIO_H_
#define SRC_CLI_SCENARIO_H_

#include <optional>
#include <string>
#include <vector>

#include "src/graph/graph.h"

namespace dstress::cli {

enum class Model {
  kEisenbergNoe,
  kElliottGolubJackson,
};

enum class Topology {
  kCorePeriphery,
  kScaleFree,
  kErdosRenyi,
  kExplicit,
};

struct Scenario {
  Topology topology = Topology::kCorePeriphery;
  int num_vertices = 0;
  int core_size = 0;           // core_periphery
  int links_per_vertex = 0;    // scale_free
  double edge_probability = 0; // erdos_renyi
  std::vector<std::pair<int, int>> edges;  // explicit

  Model model = Model::kEisenbergNoe;
  int iterations = 0;  // 0 = auto (ceil(log2 N))
  int block_size = 4;
  double epsilon = 0.23;
  double leverage = 0.1;
  std::vector<int> shocked_banks;
  uint64_t seed = 1;
};

// Parses scenario text. On failure returns std::nullopt and sets *error to
// a "line N: what" message.
std::optional<Scenario> ParseScenario(const std::string& text, std::string* error);

// Reads and parses a scenario file.
std::optional<Scenario> LoadScenarioFile(const std::string& path, std::string* error);

// Materializes the scenario's network.
graph::Graph BuildScenarioGraph(const Scenario& scenario);

// Effective iteration count (resolves the iterations=0 auto rule).
int ScenarioIterations(const Scenario& scenario);

struct ScenarioResult {
  int64_t released_tds = 0;     // the noised figure DStress outputs
  uint64_t reference_tds = 0;   // cleartext fixed-point reference
  double seconds = 0;
  double avg_megabytes_per_node = 0;
  int iterations = 0;
  std::string model_name;
};

// Runs the scenario end-to-end under the full DStress runtime.
ScenarioResult RunScenario(const Scenario& scenario);

// Human-readable report.
std::string FormatReport(const Scenario& scenario, const ScenarioResult& result);

}  // namespace dstress::cli

#endif  // SRC_CLI_SCENARIO_H_
