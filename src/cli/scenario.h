// Scenario files: a small text format that lets a regulator (or a test
// harness) describe a complete DStress stress test — network topology,
// contagion model, privacy parameters, shock, and execution mode — without
// writing C++. The parser is a thin front end: it produces an
// engine::RunSpec, which engine::Engine executes.
//
// Format: one directive per line, `#` starts a comment. Directives:
//
//   network core_periphery <N> <core_size>     (synthetic topologies)
//   network scale_free <N> <links_per_vertex>
//   network erdos_renyi <N> <edge_probability>
//   network explicit <N>                        (followed by `edge` lines)
//   network file <path>                         (edge-list file, src/graph/io.h)
//   edge <u> <v>                                (directed)
//   model <en|egj>                              (contagion model, §4.2/§4.3)
//   mode <secure|cleartext>                     (execution backend, default secure)
//   transport <sim|tcp> [host:port]             (wire backend, default sim; `tcp`
//                                                runs one process per bank, the
//                                                optional host:port fixes the
//                                                driver's rendezvous address — see
//                                                src/net/transport_spec.h)
//   node <bank> <host[:port]>                   (multi-machine deployment: bank
//                                                lives in an externally started
//                                                dstress_node at that endpoint;
//                                                any `node` line switches the
//                                                driver to waiting for remote
//                                                registrations instead of
//                                                spawning processes itself)
//   iterations <I>                              (0 = ceil(log2 N), App. C)
//   block_size <k+1>
//   fanout <F>                                  (aggregation tree fan-in; 0 = flat)
//   epsilon <eps_query>                         (§4.5 output privacy)
//   leverage <r>                                (sensitivity = 1/r or 2/r)
//   shock <bank> [bank ...]                     (assets wiped before run)
//   triples <dealer|ot>                         (secure-mode offline phase:
//                                                simulated dealer (default) or
//                                                real IKNP OT-extension
//                                                triples)
//   ot_batching <on|off>                        (with `triples ot`: node-pair
//                                                triple factory + offline/
//                                                online pipelining (default on)
//                                                vs the per-role baseline —
//                                                docs/offline-phase.md)
//   seed <s>
//
// Unknown directives, malformed arguments, out-of-range vertices and
// missing required fields are reported with line numbers.
#ifndef SRC_CLI_SCENARIO_H_
#define SRC_CLI_SCENARIO_H_

#include <optional>
#include <string>

#include "src/engine/run_spec.h"

namespace dstress::cli {

// Parses scenario text into a run spec. On failure returns std::nullopt and
// sets *error to a "line N: what" message.
std::optional<engine::RunSpec> ParseScenario(const std::string& text, std::string* error);

// Reads and parses a scenario file.
std::optional<engine::RunSpec> LoadScenarioFile(const std::string& path, std::string* error);

}  // namespace dstress::cli

#endif  // SRC_CLI_SCENARIO_H_
