// Argument parsing + entry point for the dstress_node runner — the
// per-bank process of the TCP transport (examples/dstress_node.cpp is the
// binary shell around this).
//
//   dstress_node --bank <id> --num-nodes <N> --driver-host <h> --driver-port <p>
//   dstress_node --node <id> --num-nodes <N> --driver <host:port>
//
// plus --listen-host / --listen-port / --advertise-host for multi-homed or
// port-pinned deployments (bind one interface, advertise the address peers
// dial; see README.md, "Quickstart: multi-machine tcp"). The process rendezvouses with the
// driver, joins the bank mesh, relays wire frames until the driver
// disconnects, then exits 0. A TcpNetwork whose TransportSpec::node_program
// points at this binary spawns one per bank; operators launch them by hand
// (possibly on separate machines) against a driver whose scenario fixes the
// rendezvous port and lists `node` directives.
#ifndef SRC_CLI_NODE_MAIN_H_
#define SRC_CLI_NODE_MAIN_H_

#include <optional>
#include <string>

#include "src/net/tcp_node.h"

namespace dstress::cli {

// Parses dstress_node's command line. On failure returns std::nullopt and
// sets *error to a usage message.
std::optional<net::TcpNodeConfig> ParseNodeArgs(int argc, char** argv, std::string* error);

// The whole runner: parse, relay, exit status (0 clean, 2 usage error).
int NodeMain(int argc, char** argv);

}  // namespace dstress::cli

#endif  // SRC_CLI_NODE_MAIN_H_
