#include "src/cli/scenario.h"

#include <arpa/inet.h>

#include <fstream>
#include <iterator>
#include <sstream>
#include <vector>

#include "src/graph/io.h"
#include "src/ha/faulty.h"
#include "src/net/transport_spec.h"

namespace dstress::cli {

namespace {

struct LineParser {
  std::vector<std::string> tokens;
  int line_number = 0;
  std::string* error;

  bool Fail(const std::string& what) const {
    *error = "line " + std::to_string(line_number) + ": " + what;
    return false;
  }

  bool ArgCount(size_t expected) const {
    if (tokens.size() - 1 != expected) {
      return Fail("expected " + std::to_string(expected) + " argument(s) for '" + tokens[0] +
                  "', got " + std::to_string(tokens.size() - 1));
    }
    return true;
  }

  bool Int(size_t index, int min_value, int* out) const {
    try {
      size_t used = 0;
      int v = std::stoi(tokens[index], &used);
      if (used != tokens[index].size() || v < min_value) {
        return Fail("bad integer '" + tokens[index] + "'");
      }
      *out = v;
      return true;
    } catch (...) {
      return Fail("bad integer '" + tokens[index] + "'");
    }
  }

  bool Double(size_t index, double* out) const {
    try {
      size_t used = 0;
      double v = std::stod(tokens[index], &used);
      if (used != tokens[index].size()) {
        return Fail("bad number '" + tokens[index] + "'");
      }
      *out = v;
      return true;
    } catch (...) {
      return Fail("bad number '" + tokens[index] + "'");
    }
  }

  // "host:port" or bare "host" (port stays 0). The port, when present,
  // must be a valid TCP port; the host must be a numeric IPv4 address —
  // that is all the socket layer (src/net/tcp_socket.h) speaks, and
  // rejecting hostnames here gives the error a line number instead of a
  // mid-bootstrap abort.
  bool Endpoint(size_t index, net::PeerEndpoint* out) const {
    const std::string& text = tokens[index];
    auto colon = text.rfind(':');
    if (colon == std::string::npos) {
      out->host = text;
      out->port = 0;
    } else {
      out->host = text.substr(0, colon);
      std::string port_text = text.substr(colon + 1);
      try {
        size_t used = 0;
        out->port = std::stoi(port_text, &used);
        if (used != port_text.size() || out->port < 1 || out->port > 65535) {
          return Fail("bad endpoint '" + text + "' (want host or host:port)");
        }
      } catch (...) {
        return Fail("bad endpoint '" + text + "' (want host or host:port)");
      }
    }
    if (out->host.empty()) {
      return Fail("bad endpoint '" + text + "' (empty host)");
    }
    in_addr parsed;
    if (inet_pton(AF_INET, out->host.c_str(), &parsed) != 1) {
      return Fail("host '" + out->host + "' is not a numeric IPv4 address (hostnames are"
                  " not supported)");
    }
    return true;
  }
};

}  // namespace

std::optional<engine::RunSpec> ParseScenario(const std::string& text, std::string* error) {
  // The "faulty" backend resolves through the registry like any other name;
  // make sure it is installed before `transport` directives are validated.
  ha::RegisterHaTransports();
  engine::RunSpec spec;
  bool saw_network = false;
  // `node` directives, indexed by bank; node_lines[bank] is the line that
  // placed it (0 = not placed), for duplicate reporting.
  std::vector<net::PeerEndpoint> node_endpoints;
  std::vector<int> node_lines;
  std::istringstream stream(text);
  std::string line;
  LineParser p;
  p.error = error;
  while (std::getline(stream, line)) {
    p.line_number++;
    auto hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream ls(line);
    p.tokens.assign(std::istream_iterator<std::string>(ls), {});
    if (p.tokens.empty()) {
      continue;
    }
    const std::string& directive = p.tokens[0];

    if (directive == "network") {
      if (p.tokens.size() < 2) {
        p.Fail("network needs a topology");
        return std::nullopt;
      }
      const std::string& topo = p.tokens[1];
      if (topo == "core_periphery") {
        spec.topology.kind = engine::TopologySpec::Kind::kCorePeriphery;
        if (p.tokens.size() != 4 || !p.Int(2, 1, &spec.topology.num_vertices) ||
            !p.Int(3, 1, &spec.topology.core_size)) {
          if (error->empty()) {
            p.Fail("usage: network core_periphery <N> <core_size>");
          }
          return std::nullopt;
        }
        if (spec.topology.core_size > spec.topology.num_vertices) {
          p.Fail("core_size exceeds N");
          return std::nullopt;
        }
      } else if (topo == "scale_free") {
        spec.topology.kind = engine::TopologySpec::Kind::kScaleFree;
        if (p.tokens.size() != 4 || !p.Int(2, 2, &spec.topology.num_vertices) ||
            !p.Int(3, 1, &spec.topology.links_per_vertex)) {
          if (error->empty()) {
            p.Fail("usage: network scale_free <N> <links_per_vertex>");
          }
          return std::nullopt;
        }
      } else if (topo == "erdos_renyi") {
        spec.topology.kind = engine::TopologySpec::Kind::kErdosRenyi;
        if (p.tokens.size() != 4 || !p.Int(2, 1, &spec.topology.num_vertices) ||
            !p.Double(3, &spec.topology.edge_probability)) {
          if (error->empty()) {
            p.Fail("usage: network erdos_renyi <N> <edge_probability>");
          }
          return std::nullopt;
        }
        if (spec.topology.edge_probability < 0 || spec.topology.edge_probability > 1) {
          p.Fail("edge_probability must be in [0, 1]");
          return std::nullopt;
        }
      } else if (topo == "file") {
        spec.topology.kind = engine::TopologySpec::Kind::kExplicit;
        if (p.tokens.size() != 3) {
          p.Fail("usage: network file <edge-list-path>");
          return std::nullopt;
        }
        std::string io_error;
        auto g = graph::LoadEdgeListFile(p.tokens[2], &io_error);
        if (!g.has_value()) {
          p.Fail("edge-list file: " + io_error);
          return std::nullopt;
        }
        spec.topology.num_vertices = g->num_vertices();
        spec.topology.edges = g->Edges();
      } else if (topo == "explicit") {
        spec.topology.kind = engine::TopologySpec::Kind::kExplicit;
        if (p.tokens.size() != 3 || !p.Int(2, 1, &spec.topology.num_vertices)) {
          if (error->empty()) {
            p.Fail("usage: network explicit <N>");
          }
          return std::nullopt;
        }
      } else {
        p.Fail("unknown topology '" + topo + "'");
        return std::nullopt;
      }
      saw_network = true;
    } else if (directive == "edge") {
      int u = 0;
      int v = 0;
      if (!p.ArgCount(2) || !p.Int(1, 0, &u) || !p.Int(2, 0, &v)) {
        return std::nullopt;
      }
      if (!saw_network || spec.topology.kind != engine::TopologySpec::Kind::kExplicit) {
        p.Fail("edge requires a preceding 'network explicit' directive");
        return std::nullopt;
      }
      if (u >= spec.topology.num_vertices || v >= spec.topology.num_vertices || u == v) {
        p.Fail("edge endpoints out of range");
        return std::nullopt;
      }
      spec.topology.edges.emplace_back(u, v);
    } else if (directive == "model") {
      if (!p.ArgCount(1)) {
        return std::nullopt;
      }
      if (p.tokens[1] == "en") {
        spec.model = engine::ContagionModel::kEisenbergNoe;
      } else if (p.tokens[1] == "egj") {
        spec.model = engine::ContagionModel::kElliottGolubJackson;
      } else {
        p.Fail("model must be 'en' or 'egj'");
        return std::nullopt;
      }
    } else if (directive == "mode") {
      if (!p.ArgCount(1)) {
        return std::nullopt;
      }
      auto mode = engine::ExecutionModeFromName(p.tokens[1]);
      if (!mode.has_value()) {
        p.Fail("mode must be 'secure' or 'cleartext'");
        return std::nullopt;
      }
      spec.mode = *mode;
    } else if (directive == "transport") {
      if (p.tokens.size() < 2) {
        p.Fail("usage: transport <backend> [rendezvous-host:port]");
        return std::nullopt;
      }
      if (!net::KnownTransportBackend(p.tokens[1])) {
        std::string known;
        for (const std::string& name : net::KnownTransportBackends()) {
          known += known.empty() ? "'" + name + "'" : " or '" + name + "'";
        }
        p.Fail("transport must be " + known);
        return std::nullopt;
      }
      spec.transport.backend = p.tokens[1];
      // The fault-injection wrapper names the real backend it decorates:
      // `transport faulty <sim|tcp> [host:port]` (docs/ha.md).
      size_t addr_index = 2;
      if (spec.transport.backend == "faulty") {
        if (p.tokens.size() < 3 || (p.tokens[2] != "sim" && p.tokens[2] != "tcp")) {
          p.Fail("usage: transport faulty <sim|tcp> [rendezvous-host:port]");
          return std::nullopt;
        }
        spec.transport.faulty_inner = p.tokens[2];
        addr_index = 3;
      }
      if (p.tokens.size() > addr_index + 1) {
        p.Fail("usage: transport <backend> [rendezvous-host:port]");
        return std::nullopt;
      }
      if (p.tokens.size() == addr_index + 1) {
        const bool tcp_like = spec.transport.backend == "tcp" ||
                              (spec.transport.backend == "faulty" &&
                               spec.transport.faulty_inner == "tcp");
        if (!tcp_like) {
          p.Fail("transport '" + spec.transport.backend + "' takes no rendezvous address");
          return std::nullopt;
        }
        net::PeerEndpoint rendezvous;
        if (!p.Endpoint(addr_index, &rendezvous)) {
          return std::nullopt;
        }
        if (rendezvous.port == 0) {
          p.Fail("transport tcp rendezvous needs an explicit port (host:port)");
          return std::nullopt;
        }
        spec.transport.host = rendezvous.host;
        spec.transport.port = rendezvous.port;
      }
    } else if (directive == "node_program") {
      // Path to a dstress_node binary the driver execs one-per-bank (the
      // real deployment shape; required for HA auto-respawn).
      if (!p.ArgCount(1)) {
        return std::nullopt;
      }
      spec.transport.node_program = p.tokens[1];
    } else if (directive == "ha") {
      if (p.tokens.size() < 2) {
        p.Fail("ha needs a sub-directive (on, heartbeat_ms, suspect_after_ms, dead_after_ms,"
               " resume_timeout_ms, resume_buffer_mb, respawn, checkpoint_every,"
               " checkpoint_path, fault)");
        return std::nullopt;
      }
      net::HaSpec& ha = spec.transport.ha;
      const std::string& sub = p.tokens[1];
      if (sub == "on") {
        if (!p.ArgCount(1)) {
          return std::nullopt;
        }
        ha.enabled = true;
      } else if (sub == "heartbeat_ms" || sub == "suspect_after_ms" || sub == "dead_after_ms" ||
                 sub == "resume_timeout_ms" || sub == "resume_buffer_mb") {
        int v = 0;
        if (!p.ArgCount(2) || !p.Int(2, 1, &v)) {
          return std::nullopt;
        }
        ha.enabled = true;
        if (sub == "heartbeat_ms") {
          ha.heartbeat_ms = v;
        } else if (sub == "suspect_after_ms") {
          ha.suspect_after_ms = v;
        } else if (sub == "dead_after_ms") {
          ha.dead_after_ms = v;
        } else if (sub == "resume_timeout_ms") {
          ha.resume_timeout_ms = v;
        } else {
          ha.resume_buffer_bytes = static_cast<size_t>(v) << 20;
        }
      } else if (sub == "respawn") {
        if (p.tokens.size() != 3 || (p.tokens[2] != "on" && p.tokens[2] != "off")) {
          p.Fail("usage: ha respawn on|off");
          return std::nullopt;
        }
        ha.enabled = true;
        ha.auto_respawn = p.tokens[2] == "on";
      } else if (sub == "checkpoint_every") {
        // Checkpointing is orthogonal to the transport HA layer: it also
        // protects sim runs (driver restart with --resume), so it does not
        // flip ha.enabled.
        if (!p.ArgCount(2) || !p.Int(2, 1, &spec.ha_checkpoint_every)) {
          return std::nullopt;
        }
      } else if (sub == "checkpoint_path") {
        if (!p.ArgCount(2)) {
          return std::nullopt;
        }
        spec.ha_checkpoint_path = p.tokens[2];
      } else if (sub == "fault") {
        // `ha fault kill|drop_link <bank> after_sends <K>` /
        // `ha fault delay <ms> after_sends <K>` — the deterministic fault
        // schedule of `transport faulty` (ha::FaultyTransport).
        net::FaultSpec fault;
        int value = 0;
        int after = 0;
        if (p.tokens.size() != 6 || p.tokens[4] != "after_sends" || !p.Int(3, 0, &value) ||
            !p.Int(5, 1, &after)) {
          if (error->empty()) {
            p.Fail("usage: ha fault kill|drop_link <bank> after_sends <K>  or"
                   "  ha fault delay <ms> after_sends <K>");
          }
          return std::nullopt;
        }
        if (p.tokens[2] == "kill") {
          fault.action = net::FaultSpec::Action::kKillNode;
          fault.node = value;
        } else if (p.tokens[2] == "drop_link") {
          fault.action = net::FaultSpec::Action::kDropLink;
          fault.node = value;
        } else if (p.tokens[2] == "delay") {
          fault.action = net::FaultSpec::Action::kDelay;
          fault.delay_ms = value;
        } else {
          p.Fail("ha fault action must be 'kill', 'drop_link' or 'delay'");
          return std::nullopt;
        }
        fault.after_sends = static_cast<uint64_t>(after);
        spec.transport.faults.push_back(fault);
      } else {
        p.Fail("unknown ha sub-directive '" + sub + "'");
        return std::nullopt;
      }
    } else if (directive == "node") {
      int bank = 0;
      net::PeerEndpoint endpoint;
      if (!p.ArgCount(2) || !p.Int(1, 0, &bank) || !p.Endpoint(2, &endpoint)) {
        return std::nullopt;
      }
      if (bank < static_cast<int>(node_lines.size()) && node_lines[bank] != 0) {
        p.Fail("bank " + std::to_string(bank) + " already placed on line " +
               std::to_string(node_lines[bank]));
        return std::nullopt;
      }
      if (bank >= static_cast<int>(node_lines.size())) {
        node_lines.resize(bank + 1, 0);
        node_endpoints.resize(bank + 1);
      }
      node_lines[bank] = p.line_number;
      node_endpoints[bank] = std::move(endpoint);
    } else if (directive == "iterations") {
      if (!p.ArgCount(1) || !p.Int(1, 0, &spec.iterations)) {
        return std::nullopt;
      }
    } else if (directive == "degree_cap") {
      // Caps the generated topology's degree (graph::CapDegree), which also
      // bounds the public degree bound D baked into the update circuit.
      if (!p.ArgCount(1) || !p.Int(1, 1, &spec.topology.degree_cap)) {
        return std::nullopt;
      }
    } else if (directive == "block_size") {
      if (!p.ArgCount(1) || !p.Int(1, 2, &spec.block_size)) {
        return std::nullopt;
      }
    } else if (directive == "fanout") {
      if (!p.ArgCount(1) || !p.Int(1, 0, &spec.aggregation_fanout)) {
        return std::nullopt;
      }
      // fanout 1 would make the aggregation-tree reduction never shrink.
      if (spec.aggregation_fanout == 1) {
        p.Fail("fanout must be 0 (flat aggregation) or >= 2");
        return std::nullopt;
      }
    } else if (directive == "epsilon") {
      if (!p.ArgCount(1) || !p.Double(1, &spec.epsilon)) {
        return std::nullopt;
      }
      if (spec.epsilon <= 0) {
        p.Fail("epsilon must be positive");
        return std::nullopt;
      }
    } else if (directive == "leverage") {
      if (!p.ArgCount(1) || !p.Double(1, &spec.leverage)) {
        return std::nullopt;
      }
      if (spec.leverage <= 0 || spec.leverage > 1) {
        p.Fail("leverage must be in (0, 1]");
        return std::nullopt;
      }
    } else if (directive == "shock") {
      if (p.tokens.size() < 2) {
        p.Fail("shock needs at least one bank index");
        return std::nullopt;
      }
      for (size_t i = 1; i < p.tokens.size(); i++) {
        int bank = 0;
        if (!p.Int(i, 0, &bank)) {
          return std::nullopt;
        }
        // A duplicate entry would double-shock a bank silently; more likely
        // it is a typo in a long bank list, so reject it with the index.
        for (int existing : spec.shock.shocked_banks) {
          if (existing == bank) {
            p.Fail("duplicate shocked bank " + std::to_string(bank));
            return std::nullopt;
          }
        }
        spec.shock.shocked_banks.push_back(bank);
      }
    } else if (directive == "ensemble") {
      if (p.tokens.size() < 2) {
        p.Fail("ensemble needs a sub-directive (scenario, shock_draws, shock_magnitude_range,"
               " banks_per_draw, perturb_workload, budget)");
        return std::nullopt;
      }
      if (!spec.ensemble.has_value()) {
        spec.ensemble.emplace();
      }
      ensemble::EnsembleSpec& es = *spec.ensemble;
      const std::string& sub = p.tokens[1];
      if (sub == "scenario") {
        if (p.tokens.size() < 3) {
          p.Fail("usage: ensemble scenario <bank> [bank...]");
          return std::nullopt;
        }
        ensemble::Scenario scenario;
        scenario.shock.survival = spec.shock.survival;
        scenario.label = "scenario";
        for (size_t i = 2; i < p.tokens.size(); i++) {
          int bank = 0;
          if (!p.Int(i, 0, &bank)) {
            return std::nullopt;
          }
          for (int existing : scenario.shock.shocked_banks) {
            if (existing == bank) {
              p.Fail("duplicate shocked bank " + std::to_string(bank));
              return std::nullopt;
            }
          }
          scenario.shock.shocked_banks.push_back(bank);
          scenario.label += " " + p.tokens[i];
        }
        es.scenarios.push_back(std::move(scenario));
      } else if (sub == "shock_draws") {
        // "ensemble shock_draws <K> seed <S>"
        if (p.tokens.size() != 5 || p.tokens[3] != "seed") {
          p.Fail("usage: ensemble shock_draws <K> seed <S>");
          return std::nullopt;
        }
        int draws = 0;
        int draw_seed = 0;
        if (!p.Int(2, 1, &draws) || !p.Int(4, 0, &draw_seed)) {
          return std::nullopt;
        }
        es.shock_draws = draws;
        es.draw_seed = static_cast<uint64_t>(draw_seed);
      } else if (sub == "shock_magnitude_range") {
        if (p.tokens.size() != 4 || !p.Double(2, &es.magnitude_lo) ||
            !p.Double(3, &es.magnitude_hi)) {
          if (error->empty()) {
            p.Fail("usage: ensemble shock_magnitude_range <lo> <hi>");
          }
          return std::nullopt;
        }
        if (es.magnitude_lo < 0 || es.magnitude_hi > 1 || es.magnitude_lo > es.magnitude_hi) {
          p.Fail("shock_magnitude_range wants 0 <= lo <= hi <= 1");
          return std::nullopt;
        }
        es.has_magnitude_range = true;
      } else if (sub == "banks_per_draw") {
        if (p.tokens.size() != 3 || !p.Int(2, 1, &es.banks_per_draw)) {
          if (error->empty()) {
            p.Fail("usage: ensemble banks_per_draw <B>");
          }
          return std::nullopt;
        }
      } else if (sub == "perturb_workload") {
        if (p.tokens.size() != 3 || (p.tokens[2] != "on" && p.tokens[2] != "off")) {
          p.Fail("usage: ensemble perturb_workload on|off");
          return std::nullopt;
        }
        es.perturb_workload = p.tokens[2] == "on";
      } else if (sub == "budget") {
        if (p.tokens.size() != 3 || !p.Double(2, &es.epsilon_budget)) {
          if (error->empty()) {
            p.Fail("usage: ensemble budget <epsilon>");
          }
          return std::nullopt;
        }
        if (es.epsilon_budget <= 0) {
          p.Fail("ensemble budget must be positive");
          return std::nullopt;
        }
      } else {
        p.Fail("unknown ensemble sub-directive '" + sub + "'");
        return std::nullopt;
      }
    } else if (directive == "transfer_batching") {
      // A/B knob for the batched transfer crypto engine; results and traffic
      // are bit-identical either way, only CPU time differs.
      if (!p.ArgCount(1)) {
        return std::nullopt;
      }
      if (p.tokens[1] == "on") {
        spec.transfer_batching = true;
      } else if (p.tokens[1] == "off") {
        spec.transfer_batching = false;
      } else {
        p.Fail("transfer_batching must be 'on' or 'off'");
        return std::nullopt;
      }
    } else if (directive == "triples") {
      // Offline-phase source for secure mode: "dealer" (simulated offline
      // phase, fast, default) or "ot" (IKNP OT-extension triples — the real
      // protocol; ~100x slower, see docs/offline-phase.md).
      if (!p.ArgCount(1)) {
        return std::nullopt;
      }
      if (p.tokens[1] == "dealer") {
        spec.use_ot_triples = false;
      } else if (p.tokens[1] == "ot") {
        spec.use_ot_triples = true;
      } else {
        p.Fail("triples must be 'dealer' or 'ot'");
        return std::nullopt;
      }
    } else if (directive == "ot_batching") {
      // A/B knob for the node-pair triple factory (docs/offline-phase.md);
      // released figures and online traffic are bit-identical either way,
      // only the offline phase's setup cost and overlap differ. No effect
      // without 'triples ot'.
      if (!p.ArgCount(1)) {
        return std::nullopt;
      }
      if (p.tokens[1] == "on") {
        spec.ot_batching = true;
      } else if (p.tokens[1] == "off") {
        spec.ot_batching = false;
      } else {
        p.Fail("ot_batching must be 'on' or 'off'");
        return std::nullopt;
      }
    } else if (directive == "graph_plane") {
      // Cleartext data-plane A/B (docs/graph-plane.md): "arena" is the flat
      // bitsliced plane (default), "legacy" the original container plane.
      // Figures, states and per-node traffic are bit-identical either way.
      if (!p.ArgCount(1)) {
        return std::nullopt;
      }
      if (p.tokens[1] == "arena") {
        spec.cleartext_arena = true;
      } else if (p.tokens[1] == "legacy") {
        spec.cleartext_arena = false;
      } else {
        p.Fail("graph_plane must be 'arena' or 'legacy'");
        return std::nullopt;
      }
    } else if (directive == "early_exit") {
      // Arena-plane convergence early exit: same released figure, fewer
      // metered communicate rounds once every vertex lane has converged.
      if (!p.ArgCount(1)) {
        return std::nullopt;
      }
      if (p.tokens[1] == "on") {
        spec.cleartext_early_exit = true;
      } else if (p.tokens[1] == "off") {
        spec.cleartext_early_exit = false;
      } else {
        p.Fail("early_exit must be 'on' or 'off'");
        return std::nullopt;
      }
    } else if (directive == "seed") {
      int s = 0;
      if (!p.ArgCount(1) || !p.Int(1, 0, &s)) {
        return std::nullopt;
      }
      spec.seed = static_cast<uint64_t>(s);
    } else {
      p.Fail("unknown directive '" + directive + "'");
      return std::nullopt;
    }
  }
  if (!saw_network) {
    *error = "scenario is missing a 'network' directive";
    return std::nullopt;
  }
  for (int bank : spec.shock.shocked_banks) {
    if (bank >= spec.topology.num_vertices) {
      *error = "shocked bank " + std::to_string(bank) + " out of range";
      return std::nullopt;
    }
  }
  if (spec.use_ot_triples && (spec.ha_checkpoint_every > 0 || spec.ha_resume)) {
    *error = "'triples ot' cannot be combined with HA checkpoint/resume"
             " (OT sessions hold unrewindable key state)";
    return std::nullopt;
  }
  if (spec.ensemble.has_value()) {
    const ensemble::EnsembleSpec& es = *spec.ensemble;
    if (es.scenarios.empty() && es.shock_draws == 0) {
      *error = "ensemble needs 'ensemble scenario' lines or 'ensemble shock_draws'";
      return std::nullopt;
    }
    if (!es.scenarios.empty() && es.shock_draws > 0) {
      *error = "ensemble cannot mix explicit 'ensemble scenario' lines with"
               " 'ensemble shock_draws'";
      return std::nullopt;
    }
    if (es.shock_draws == 0 && (es.has_magnitude_range || es.banks_per_draw > 0)) {
      *error = "ensemble draw knobs (shock_magnitude_range, banks_per_draw) require"
               " 'ensemble shock_draws'";
      return std::nullopt;
    }
    if (es.banks_per_draw > spec.topology.num_vertices) {
      *error = "ensemble banks_per_draw " + std::to_string(es.banks_per_draw) +
               " exceeds the network's " + std::to_string(spec.topology.num_vertices) + " banks";
      return std::nullopt;
    }
    for (const ensemble::Scenario& scenario : es.scenarios) {
      for (int bank : scenario.shock.shocked_banks) {
        if (bank >= spec.topology.num_vertices) {
          *error = "ensemble scenario bank " + std::to_string(bank) + " out of range";
          return std::nullopt;
        }
      }
    }
    if (es.Width() > 1 && spec.aggregation_fanout > 0) {
      *error = "an ensemble wider than 1 requires flat aggregation (fanout 0)";
      return std::nullopt;
    }
  }
  if (!node_endpoints.empty()) {
    // `node` directives describe a multi-machine deployment: the driver
    // waits for externally started dstress_node processes instead of
    // spawning its own.
    if (spec.transport.backend != "tcp") {
      *error = "'node' directives require 'transport tcp'";
      return std::nullopt;
    }
    if (spec.transport.port == 0) {
      *error = "'node' directives require 'transport tcp <host:port>' with a fixed"
               " rendezvous port (remote banks must know where to dial)";
      return std::nullopt;
    }
    if (static_cast<int>(node_endpoints.size()) > spec.topology.num_vertices) {
      *error = "node bank " + std::to_string(node_endpoints.size() - 1) + " out of range (" +
               std::to_string(spec.topology.num_vertices) + " banks)";
      return std::nullopt;
    }
    node_endpoints.resize(spec.topology.num_vertices);  // unnamed banks: any endpoint
    spec.transport.external_nodes = true;
    spec.transport.node_endpoints = std::move(node_endpoints);
  }
  if (!spec.transport.faults.empty() && spec.transport.backend != "faulty") {
    *error = "'ha fault' directives require 'transport faulty <sim|tcp>'";
    return std::nullopt;
  }
  for (const net::FaultSpec& fault : spec.transport.faults) {
    if (fault.action != net::FaultSpec::Action::kDelay &&
        fault.node >= spec.topology.num_vertices) {
      *error = "ha fault bank " + std::to_string(fault.node) + " out of range";
      return std::nullopt;
    }
  }
  if (spec.transport.ha.enabled &&
      spec.transport.ha.dead_after_ms < spec.transport.ha.suspect_after_ms) {
    *error = "ha dead_after_ms must be >= suspect_after_ms";
    return std::nullopt;
  }
  if (spec.ha_checkpoint_every > 0 && spec.ha_checkpoint_path.empty()) {
    *error = "'ha checkpoint_every' requires 'ha checkpoint_path <file>'";
    return std::nullopt;
  }
  return spec;
}

std::optional<engine::RunSpec> LoadScenarioFile(const std::string& path, std::string* error) {
  std::ifstream file(path);
  if (!file) {
    *error = "cannot open '" + path + "'";
    return std::nullopt;
  }
  std::ostringstream contents;
  contents << file.rdbuf();
  return ParseScenario(contents.str(), error);
}

}  // namespace dstress::cli
