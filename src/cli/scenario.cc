#include "src/cli/scenario.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <sstream>

#include "src/common/check.h"
#include "src/common/rng.h"
#include "src/common/stopwatch.h"
#include "src/core/runtime.h"
#include "src/finance/eisenberg_noe.h"
#include "src/finance/elliott_golub_jackson.h"
#include "src/finance/utility.h"
#include "src/finance/workload.h"
#include "src/graph/generators.h"
#include "src/graph/io.h"

namespace dstress::cli {

namespace {

struct LineParser {
  std::vector<std::string> tokens;
  int line_number = 0;
  std::string* error;

  bool Fail(const std::string& what) const {
    *error = "line " + std::to_string(line_number) + ": " + what;
    return false;
  }

  bool ArgCount(size_t expected) const {
    if (tokens.size() - 1 != expected) {
      return Fail("expected " + std::to_string(expected) + " argument(s) for '" + tokens[0] +
                  "', got " + std::to_string(tokens.size() - 1));
    }
    return true;
  }

  bool Int(size_t index, int min_value, int* out) const {
    try {
      size_t used = 0;
      int v = std::stoi(tokens[index], &used);
      if (used != tokens[index].size() || v < min_value) {
        return Fail("bad integer '" + tokens[index] + "'");
      }
      *out = v;
      return true;
    } catch (...) {
      return Fail("bad integer '" + tokens[index] + "'");
    }
  }

  bool Double(size_t index, double* out) const {
    try {
      size_t used = 0;
      double v = std::stod(tokens[index], &used);
      if (used != tokens[index].size()) {
        return Fail("bad number '" + tokens[index] + "'");
      }
      *out = v;
      return true;
    } catch (...) {
      return Fail("bad number '" + tokens[index] + "'");
    }
  }
};

}  // namespace

std::optional<Scenario> ParseScenario(const std::string& text, std::string* error) {
  Scenario scenario;
  bool saw_network = false;
  std::istringstream stream(text);
  std::string line;
  LineParser p;
  p.error = error;
  while (std::getline(stream, line)) {
    p.line_number++;
    auto hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream ls(line);
    p.tokens.assign(std::istream_iterator<std::string>(ls), {});
    if (p.tokens.empty()) {
      continue;
    }
    const std::string& directive = p.tokens[0];

    if (directive == "network") {
      if (p.tokens.size() < 2) {
        p.Fail("network needs a topology");
        return std::nullopt;
      }
      const std::string& topo = p.tokens[1];
      if (topo == "core_periphery") {
        scenario.topology = Topology::kCorePeriphery;
        if (p.tokens.size() != 4 || !p.Int(2, 1, &scenario.num_vertices) ||
            !p.Int(3, 1, &scenario.core_size)) {
          if (error->empty()) {
            p.Fail("usage: network core_periphery <N> <core_size>");
          }
          return std::nullopt;
        }
        if (scenario.core_size > scenario.num_vertices) {
          p.Fail("core_size exceeds N");
          return std::nullopt;
        }
      } else if (topo == "scale_free") {
        scenario.topology = Topology::kScaleFree;
        if (p.tokens.size() != 4 || !p.Int(2, 2, &scenario.num_vertices) ||
            !p.Int(3, 1, &scenario.links_per_vertex)) {
          if (error->empty()) {
            p.Fail("usage: network scale_free <N> <links_per_vertex>");
          }
          return std::nullopt;
        }
      } else if (topo == "erdos_renyi") {
        scenario.topology = Topology::kErdosRenyi;
        if (p.tokens.size() != 4 || !p.Int(2, 1, &scenario.num_vertices) ||
            !p.Double(3, &scenario.edge_probability)) {
          if (error->empty()) {
            p.Fail("usage: network erdos_renyi <N> <edge_probability>");
          }
          return std::nullopt;
        }
        if (scenario.edge_probability < 0 || scenario.edge_probability > 1) {
          p.Fail("edge_probability must be in [0, 1]");
          return std::nullopt;
        }
      } else if (topo == "file") {
        scenario.topology = Topology::kExplicit;
        if (p.tokens.size() != 3) {
          p.Fail("usage: network file <edge-list-path>");
          return std::nullopt;
        }
        std::string io_error;
        auto g = graph::LoadEdgeListFile(p.tokens[2], &io_error);
        if (!g.has_value()) {
          p.Fail("edge-list file: " + io_error);
          return std::nullopt;
        }
        scenario.num_vertices = g->num_vertices();
        scenario.edges = g->Edges();
      } else if (topo == "explicit") {
        scenario.topology = Topology::kExplicit;
        if (p.tokens.size() != 3 || !p.Int(2, 1, &scenario.num_vertices)) {
          if (error->empty()) {
            p.Fail("usage: network explicit <N>");
          }
          return std::nullopt;
        }
      } else {
        p.Fail("unknown topology '" + topo + "'");
        return std::nullopt;
      }
      saw_network = true;
    } else if (directive == "edge") {
      int u = 0;
      int v = 0;
      if (!p.ArgCount(2) || !p.Int(1, 0, &u) || !p.Int(2, 0, &v)) {
        return std::nullopt;
      }
      if (!saw_network || scenario.topology != Topology::kExplicit) {
        p.Fail("edge requires a preceding 'network explicit' directive");
        return std::nullopt;
      }
      if (u >= scenario.num_vertices || v >= scenario.num_vertices || u == v) {
        p.Fail("edge endpoints out of range");
        return std::nullopt;
      }
      scenario.edges.emplace_back(u, v);
    } else if (directive == "model") {
      if (!p.ArgCount(1)) {
        return std::nullopt;
      }
      if (p.tokens[1] == "en") {
        scenario.model = Model::kEisenbergNoe;
      } else if (p.tokens[1] == "egj") {
        scenario.model = Model::kElliottGolubJackson;
      } else {
        p.Fail("model must be 'en' or 'egj'");
        return std::nullopt;
      }
    } else if (directive == "iterations") {
      if (!p.ArgCount(1) || !p.Int(1, 0, &scenario.iterations)) {
        return std::nullopt;
      }
    } else if (directive == "block_size") {
      if (!p.ArgCount(1) || !p.Int(1, 2, &scenario.block_size)) {
        return std::nullopt;
      }
    } else if (directive == "epsilon") {
      if (!p.ArgCount(1) || !p.Double(1, &scenario.epsilon)) {
        return std::nullopt;
      }
      if (scenario.epsilon <= 0) {
        p.Fail("epsilon must be positive");
        return std::nullopt;
      }
    } else if (directive == "leverage") {
      if (!p.ArgCount(1) || !p.Double(1, &scenario.leverage)) {
        return std::nullopt;
      }
      if (scenario.leverage <= 0 || scenario.leverage > 1) {
        p.Fail("leverage must be in (0, 1]");
        return std::nullopt;
      }
    } else if (directive == "shock") {
      if (p.tokens.size() < 2) {
        p.Fail("shock needs at least one bank index");
        return std::nullopt;
      }
      for (size_t i = 1; i < p.tokens.size(); i++) {
        int bank = 0;
        if (!p.Int(i, 0, &bank)) {
          return std::nullopt;
        }
        scenario.shocked_banks.push_back(bank);
      }
    } else if (directive == "seed") {
      int s = 0;
      if (!p.ArgCount(1) || !p.Int(1, 0, &s)) {
        return std::nullopt;
      }
      scenario.seed = static_cast<uint64_t>(s);
    } else {
      p.Fail("unknown directive '" + directive + "'");
      return std::nullopt;
    }
  }
  if (!saw_network) {
    *error = "scenario is missing a 'network' directive";
    return std::nullopt;
  }
  for (int bank : scenario.shocked_banks) {
    if (bank >= scenario.num_vertices) {
      *error = "shocked bank " + std::to_string(bank) + " out of range";
      return std::nullopt;
    }
  }
  return scenario;
}

std::optional<Scenario> LoadScenarioFile(const std::string& path, std::string* error) {
  std::ifstream file(path);
  if (!file) {
    *error = "cannot open '" + path + "'";
    return std::nullopt;
  }
  std::ostringstream contents;
  contents << file.rdbuf();
  return ParseScenario(contents.str(), error);
}

graph::Graph BuildScenarioGraph(const Scenario& scenario) {
  Rng rng(scenario.seed);
  switch (scenario.topology) {
    case Topology::kCorePeriphery: {
      graph::CorePeripheryParams params;
      params.num_vertices = scenario.num_vertices;
      params.core_size = scenario.core_size;
      return graph::GenerateCorePeriphery(params, rng);
    }
    case Topology::kScaleFree:
      return graph::GenerateScaleFree(scenario.num_vertices, scenario.links_per_vertex, rng);
    case Topology::kErdosRenyi:
      return graph::GenerateErdosRenyi(scenario.num_vertices, scenario.edge_probability, rng);
    case Topology::kExplicit: {
      graph::Graph g(scenario.num_vertices);
      for (auto [u, v] : scenario.edges) {
        g.AddEdge(u, v);
      }
      return g;
    }
  }
  DSTRESS_CHECK(false);
}

int ScenarioIterations(const Scenario& scenario) {
  if (scenario.iterations > 0) {
    return scenario.iterations;
  }
  // Appendix C: I = ceil(log2 N) suffices on two-tier networks.
  int i = 1;
  while ((1 << i) < scenario.num_vertices) {
    i++;
  }
  return i;
}

ScenarioResult RunScenario(const Scenario& scenario) {
  graph::Graph network = BuildScenarioGraph(scenario);
  ScenarioResult result;
  result.iterations = ScenarioIterations(scenario);

  finance::WorkloadParams sheets;
  sheets.core_size = scenario.topology == Topology::kCorePeriphery ? scenario.core_size : 0;
  sheets.seed = scenario.seed;
  finance::ShockParams shock;
  shock.shocked_banks = scenario.shocked_banks;

  core::RuntimeConfig config;
  config.block_size = scenario.block_size;
  config.seed = scenario.seed;

  Stopwatch timer;
  core::RunMetrics metrics;
  if (scenario.model == Model::kEisenbergNoe) {
    result.model_name = "Eisenberg-Noe";
    finance::EnInstance instance = finance::MakeEnWorkload(network, sheets, shock);
    finance::EnProgramParams params;
    params.degree_bound = network.MaxDegree();
    params.iterations = result.iterations;
    params.noise_alpha = finance::NoiseAlphaForRelease(
        finance::EnSensitivity(scenario.leverage), scenario.epsilon, /*unit_dollars=*/1.0);
    core::Runtime runtime(config, network, finance::MakeEnProgram(params));
    result.released_tds = runtime.Run(finance::MakeEnInitialStates(instance, params), &metrics);
    result.reference_tds = finance::EnSolveFixed(instance, params);
  } else {
    result.model_name = "Elliott-Golub-Jackson";
    finance::EgjInstance instance = finance::MakeEgjWorkload(network, sheets, shock);
    finance::EgjProgramParams params;
    params.degree_bound = network.MaxDegree();
    params.iterations = result.iterations;
    params.noise_alpha = finance::NoiseAlphaForRelease(
        finance::EgjSensitivity(scenario.leverage), scenario.epsilon, /*unit_dollars=*/1.0);
    core::Runtime runtime(config, network, finance::MakeEgjProgram(params));
    result.released_tds = runtime.Run(finance::MakeEgjInitialStates(instance, params), &metrics);
    result.reference_tds = finance::EgjSolveFixed(instance, params);
  }
  result.seconds = timer.ElapsedSeconds();
  result.avg_megabytes_per_node = metrics.avg_bytes_per_node / 1e6;
  return result;
}

std::string FormatReport(const Scenario& scenario, const ScenarioResult& result) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "model:               %s\n"
      "banks:               %d (block size %d, %d iterations)\n"
      "shocked banks:       %zu\n"
      "released TDS:        %lld money units (eps=%.3f, leverage r=%.2f)\n"
      "reference TDS:       %llu money units (cleartext check, not released)\n"
      "wall time:           %.2f s\n"
      "traffic per bank:    %.2f MB\n",
      result.model_name.c_str(), scenario.num_vertices, scenario.block_size, result.iterations,
      scenario.shocked_banks.size(), static_cast<long long>(result.released_tds),
      scenario.epsilon, scenario.leverage, static_cast<unsigned long long>(result.reference_tds),
      result.seconds, result.avg_megabytes_per_node);
  return buf;
}

}  // namespace dstress::cli
