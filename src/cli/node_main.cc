#include "src/cli/node_main.h"

#include <cstdio>
#include <cstdlib>

namespace dstress::cli {

namespace {

constexpr char kUsage[] =
    "usage: dstress_node --node <id> --num-nodes <N> --driver <host:port>"
    " [--bootstrap-timeout-ms <ms>]";

bool ParseInt(const std::string& text, int min_value, int* out) {
  try {
    size_t used = 0;
    int v = std::stoi(text, &used);
    if (used != text.size() || v < min_value) {
      return false;
    }
    *out = v;
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace

std::optional<net::TcpNodeConfig> ParseNodeArgs(int argc, char** argv, std::string* error) {
  net::TcpNodeConfig config;
  bool saw_node = false;
  bool saw_num_nodes = false;
  bool saw_driver = false;
  if ((argc - 1) % 2 != 0) {
    *error = std::string("flag '") + argv[argc - 1] + "' is missing a value\n" + kUsage;
    return std::nullopt;
  }
  for (int i = 1; i + 1 < argc; i += 2) {
    std::string flag = argv[i];
    std::string value = argv[i + 1];
    if (flag == "--node") {
      saw_node = ParseInt(value, 0, &config.node_id);
      if (!saw_node) {
        *error = std::string("bad --node '") + value + "'\n" + kUsage;
        return std::nullopt;
      }
    } else if (flag == "--num-nodes") {
      saw_num_nodes = ParseInt(value, 1, &config.num_nodes);
      if (!saw_num_nodes) {
        *error = std::string("bad --num-nodes '") + value + "'\n" + kUsage;
        return std::nullopt;
      }
    } else if (flag == "--driver") {
      auto colon = value.rfind(':');
      if (colon == std::string::npos || colon == 0 ||
          !ParseInt(value.substr(colon + 1), 1, &config.driver_port)) {
        *error = std::string("bad --driver '") + value + "' (want host:port)\n" + kUsage;
        return std::nullopt;
      }
      config.driver_host = value.substr(0, colon);
      saw_driver = true;
    } else if (flag == "--bootstrap-timeout-ms") {
      if (!ParseInt(value, 1, &config.bootstrap_timeout_ms)) {
        *error = std::string("bad --bootstrap-timeout-ms '") + value + "'\n" + kUsage;
        return std::nullopt;
      }
    } else {
      *error = std::string("unknown flag '") + flag + "'\n" + kUsage;
      return std::nullopt;
    }
  }
  if (!saw_node || !saw_num_nodes || !saw_driver || config.node_id >= config.num_nodes) {
    *error = kUsage;
    return std::nullopt;
  }
  return config;
}

int NodeMain(int argc, char** argv) {
  std::string error;
  std::optional<net::TcpNodeConfig> config = ParseNodeArgs(argc, argv, &error);
  if (!config.has_value()) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  return net::RunTcpNode(*config);
}

}  // namespace dstress::cli
