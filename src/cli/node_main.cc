#include "src/cli/node_main.h"

#include <cstdio>
#include <cstdlib>

namespace dstress::cli {

namespace {

constexpr char kUsage[] =
    "usage: dstress_node --bank <id> --num-nodes <N> --driver-host <host> --driver-port <port>\n"
    "       dstress_node --node <id> --num-nodes <N> --driver <host:port>\n"
    "  [--listen-host <iface>]     interface the mesh listener binds (default: 0.0.0.0)\n"
    "  [--listen-port <port>]      mesh listen port (default: OS-assigned)\n"
    "  [--advertise-host <host>]   address peers dial to reach this bank (default: the\n"
    "                              listen host, or this machine's address toward the driver)\n"
    "  [--bootstrap-timeout-ms <ms>]\n"
    "  [--resume]                  rejoin a live HA run as this bank's replacement\n"
    "                              (docs/ha.md)";

bool ParseInt(const std::string& text, int min_value, int* out) {
  try {
    size_t used = 0;
    int v = std::stoi(text, &used);
    if (used != text.size() || v < min_value) {
      return false;
    }
    *out = v;
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace

std::optional<net::TcpNodeConfig> ParseNodeArgs(int argc, char** argv, std::string* error) {
  net::TcpNodeConfig config;
  bool saw_node = false;
  bool saw_num_nodes = false;
  bool saw_driver = false;
  for (int i = 1; i < argc; i++) {
    std::string flag = argv[i];
    // Valueless flags first; everything else consumes the next argument.
    if (flag == "--resume") {
      config.resume = true;
      continue;
    }
    if (i + 1 >= argc) {
      *error = std::string("flag '") + flag + "' is missing a value\n" + kUsage;
      return std::nullopt;
    }
    std::string value = argv[++i];
    if (flag == "--node" || flag == "--bank") {
      saw_node = ParseInt(value, 0, &config.node_id);
      if (!saw_node) {
        *error = "bad " + flag + " '" + value + "'\n" + kUsage;
        return std::nullopt;
      }
    } else if (flag == "--num-nodes") {
      saw_num_nodes = ParseInt(value, 1, &config.num_nodes);
      if (!saw_num_nodes) {
        *error = std::string("bad --num-nodes '") + value + "'\n" + kUsage;
        return std::nullopt;
      }
    } else if (flag == "--driver") {
      auto colon = value.rfind(':');
      if (colon == std::string::npos || colon == 0 ||
          !ParseInt(value.substr(colon + 1), 1, &config.driver_port)) {
        *error = std::string("bad --driver '") + value + "' (want host:port)\n" + kUsage;
        return std::nullopt;
      }
      config.driver_host = value.substr(0, colon);
      saw_driver = true;
    } else if (flag == "--driver-host") {
      if (value.empty()) {
        *error = std::string("bad --driver-host ''\n") + kUsage;
        return std::nullopt;
      }
      config.driver_host = value;
    } else if (flag == "--driver-port") {
      if (!ParseInt(value, 1, &config.driver_port)) {
        *error = std::string("bad --driver-port '") + value + "'\n" + kUsage;
        return std::nullopt;
      }
      saw_driver = true;
    } else if (flag == "--listen-host") {
      if (value.empty()) {
        *error = std::string("bad --listen-host ''\n") + kUsage;
        return std::nullopt;
      }
      config.listen_host = value;
    } else if (flag == "--listen-port") {
      if (!ParseInt(value, 1, &config.listen_port)) {
        *error = std::string("bad --listen-port '") + value + "'\n" + kUsage;
        return std::nullopt;
      }
    } else if (flag == "--advertise-host") {
      if (value.empty()) {
        *error = std::string("bad --advertise-host ''\n") + kUsage;
        return std::nullopt;
      }
      config.advertise_host = value;
    } else if (flag == "--bootstrap-timeout-ms") {
      if (!ParseInt(value, 1, &config.bootstrap_timeout_ms)) {
        *error = std::string("bad --bootstrap-timeout-ms '") + value + "'\n" + kUsage;
        return std::nullopt;
      }
    } else {
      *error = std::string("unknown flag '") + flag + "'\n" + kUsage;
      return std::nullopt;
    }
  }
  if (!saw_node || !saw_num_nodes || !saw_driver || config.node_id >= config.num_nodes) {
    *error = kUsage;
    return std::nullopt;
  }
  return config;
}

int NodeMain(int argc, char** argv) {
  std::string error;
  std::optional<net::TcpNodeConfig> config = ParseNodeArgs(argc, argv, &error);
  if (!config.has_value()) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  return net::RunTcpNode(*config);
}

}  // namespace dstress::cli
