// Per-node protocol transcripts for compartmentalized auditing.
//
// DStress's threat model (paper §3.2 assumption 1, revisited in §4.6)
// rests on honest-but-curious participants *because* each participant is
// already subject to a compartmentalized audit: an auditor may inspect one
// bank's books and verify that this one bank fed correct inputs and ran the
// protocol faithfully — without ever seeing another bank's data.
//
// This module gives that auditor something to check. Every node keeps an
// append-only, hash-chained transcript of the messages it sent and
// received (peer, session, payload digest — never the plaintext payload of
// other parties, so the transcript itself respects compartmentalization).
// The chain digest commits the node to its entire communication history;
// two nodes' transcripts can then be cross-checked pairwise (every message
// one claims to have sent must appear, in order, as received by the other)
// without revealing anything beyond what the two endpoints already knew.
#ifndef SRC_AUDIT_TRANSCRIPT_H_
#define SRC_AUDIT_TRANSCRIPT_H_

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/bytes.h"
#include "src/net/transport.h"

namespace dstress::audit {

using Digest = std::array<uint8_t, 32>;

enum class Direction : uint8_t {
  kSent = 0,
  kReceived = 1,
};

struct Event {
  Direction direction;
  net::NodeId peer;
  net::SessionId session;
  uint64_t payload_size;
  Digest payload_digest;
};

// One node's append-only transcript. Appends are cheap (one SHA-256 over
// the payload plus one over the chain header); the chain digest after n
// events commits to the exact sequence of all n.
class TranscriptLog {
 public:
  TranscriptLog();

  void Append(Direction direction, net::NodeId peer, net::SessionId session,
              const Bytes& payload);

  const std::vector<Event>& events() const { return events_; }
  const Digest& chain_digest() const { return chain_; }

  // Recomputes the chain from the event list and compares against the
  // stored digest; false means the log was tampered with after the fact.
  bool VerifyChain() const;

  // Chain value after folding `events` into `seed` (exposed so auditors can
  // recompute chains independently).
  static Digest FoldChain(const Digest& seed, const std::vector<Event>& events);

 private:
  std::vector<Event> events_;
  Digest chain_;
};

// Records transcripts for every node of a transport run. Thread-safe: the
// network invokes the observer from many protocol threads.
class TranscriptRecorder : public net::NetworkObserver {
 public:
  explicit TranscriptRecorder(int num_nodes);

  void OnSend(net::NodeId from, net::NodeId to, net::SessionId session,
              const Bytes& payload) override;
  void OnRecv(net::NodeId to, net::NodeId from, net::SessionId session,
              const Bytes& payload) override;

  int num_nodes() const { return static_cast<int>(logs_.size()); }
  const TranscriptLog& log(net::NodeId node) const { return logs_[node]; }
  // Mutable access for tamper-injection in tests.
  TranscriptLog& mutable_log(net::NodeId node) { return logs_[node]; }

 private:
  std::vector<TranscriptLog> logs_;
  std::vector<std::unique_ptr<std::mutex>> mus_;
};

}  // namespace dstress::audit

#endif  // SRC_AUDIT_TRANSCRIPT_H_
