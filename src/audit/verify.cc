#include "src/audit/verify.h"

#include <cstdio>
#include <map>
#include <tuple>

namespace dstress::audit {

namespace {

using StreamKey = std::tuple<net::NodeId, net::NodeId, net::SessionId>;  // sender, receiver, sess

std::map<StreamKey, std::vector<Digest>> CollectStreams(const TranscriptRecorder& recorder,
                                                        Direction direction) {
  std::map<StreamKey, std::vector<Digest>> streams;
  for (int node = 0; node < recorder.num_nodes(); node++) {
    for (const Event& event : recorder.log(node).events()) {
      if (event.direction != direction) {
        continue;
      }
      StreamKey key = direction == Direction::kSent
                          ? StreamKey{node, event.peer, event.session}
                          : StreamKey{event.peer, node, event.session};
      streams[key].push_back(event.payload_digest);
    }
  }
  return streams;
}

}  // namespace

std::string AuditReport::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "audit: chains %s (%zu broken), pairwise %s (%zu discrepancies)",
                chains_ok ? "ok" : "BROKEN", broken_chains.size(),
                pairwise_ok ? "ok" : "INCONSISTENT", discrepancies.size());
  return buf;
}

AuditReport VerifyTranscripts(const TranscriptRecorder& recorder) {
  AuditReport report;

  report.chains_ok = true;
  for (int node = 0; node < recorder.num_nodes(); node++) {
    if (!recorder.log(node).VerifyChain()) {
      report.chains_ok = false;
      report.broken_chains.push_back(node);
    }
  }

  auto sent = CollectStreams(recorder, Direction::kSent);
  auto received = CollectStreams(recorder, Direction::kReceived);

  report.pairwise_ok = true;
  auto add = [&report](const StreamKey& key, size_t index, const char* what) {
    report.pairwise_ok = false;
    Discrepancy d;
    d.sender = std::get<0>(key);
    d.receiver = std::get<1>(key);
    d.session = std::get<2>(key);
    d.message_index = index;
    d.description = what;
    report.discrepancies.push_back(std::move(d));
  };

  for (const auto& [key, sent_digests] : sent) {
    auto it = received.find(key);
    const std::vector<Digest>* recv_digests = it == received.end() ? nullptr : &it->second;
    size_t recv_count = recv_digests == nullptr ? 0 : recv_digests->size();
    size_t common = std::min(sent_digests.size(), recv_count);
    for (size_t i = 0; i < common; i++) {
      if (sent_digests[i] != (*recv_digests)[i]) {
        add(key, i, "payload digest mismatch");
      }
    }
    for (size_t i = common; i < sent_digests.size(); i++) {
      add(key, i, "sent but never received");
    }
    for (size_t i = common; i < recv_count; i++) {
      add(key, i, "received but never sent");
    }
  }
  // Streams that appear only on the receive side.
  for (const auto& [key, recv_digests] : received) {
    if (sent.find(key) == sent.end()) {
      for (size_t i = 0; i < recv_digests.size(); i++) {
        add(key, i, "received but never sent");
      }
    }
  }

  return report;
}

}  // namespace dstress::audit
