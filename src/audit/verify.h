// Auditor-side verification of recorded transcripts.
//
// Checks performed:
//
//  * chain integrity — every node's event list still matches its published
//    chain digest (a node cannot silently rewrite its history);
//  * pairwise consistency — for every ordered node pair and session, the
//    sequence of payload digests A claims to have sent to B equals the
//    sequence B claims to have received from A. A mismatch pinpoints the
//    first divergent message, which is exactly the granularity a
//    compartmentalized auditor needs ("bank A's third message on the edge
//    session differs from what bank B received").
//
// The pairwise check deliberately compares *digests*: the auditor of A
// never needs B's plaintext, preserving the compartmentalization the paper
// requires of real-world bank audits (§4.6).
#ifndef SRC_AUDIT_VERIFY_H_
#define SRC_AUDIT_VERIFY_H_

#include <string>
#include <vector>

#include "src/audit/transcript.h"

namespace dstress::audit {

struct Discrepancy {
  net::NodeId sender;
  net::NodeId receiver;
  net::SessionId session;
  // Index within the (sender, receiver, session) message sequence.
  size_t message_index;
  std::string description;
};

struct AuditReport {
  bool chains_ok = false;
  bool pairwise_ok = false;
  std::vector<net::NodeId> broken_chains;
  std::vector<Discrepancy> discrepancies;

  bool ok() const { return chains_ok && pairwise_ok; }
  std::string ToString() const;
};

// Runs both checks over a complete run's transcripts. A run is "complete"
// when every sent message has been consumed; undelivered messages are
// reported as discrepancies.
AuditReport VerifyTranscripts(const TranscriptRecorder& recorder);

}  // namespace dstress::audit

#endif  // SRC_AUDIT_VERIFY_H_
