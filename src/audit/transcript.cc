#include "src/audit/transcript.h"

#include "src/common/check.h"
#include "src/crypto/sha256.h"

namespace dstress::audit {

namespace {

Digest ChainStep(const Digest& prev, const Event& event) {
  crypto::Sha256 hasher;
  hasher.Update(prev.data(), prev.size());
  uint8_t header[1 + 8 + 8 + 8];
  header[0] = static_cast<uint8_t>(event.direction);
  uint64_t peer = static_cast<uint64_t>(event.peer);
  for (int i = 0; i < 8; i++) {
    header[1 + i] = static_cast<uint8_t>(peer >> (8 * i));
    header[9 + i] = static_cast<uint8_t>(event.session >> (8 * i));
    header[17 + i] = static_cast<uint8_t>(event.payload_size >> (8 * i));
  }
  hasher.Update(header, sizeof(header));
  hasher.Update(event.payload_digest.data(), event.payload_digest.size());
  return hasher.Finish();
}

}  // namespace

TranscriptLog::TranscriptLog() { chain_.fill(0); }

void TranscriptLog::Append(Direction direction, net::NodeId peer, net::SessionId session,
                           const Bytes& payload) {
  Event event;
  event.direction = direction;
  event.peer = peer;
  event.session = session;
  event.payload_size = payload.size();
  event.payload_digest = crypto::Sha256::Hash(payload);
  chain_ = ChainStep(chain_, event);
  events_.push_back(event);
}

bool TranscriptLog::VerifyChain() const {
  Digest seed;
  seed.fill(0);
  return FoldChain(seed, events_) == chain_;
}

Digest TranscriptLog::FoldChain(const Digest& seed, const std::vector<Event>& events) {
  Digest chain = seed;
  for (const Event& event : events) {
    chain = ChainStep(chain, event);
  }
  return chain;
}

TranscriptRecorder::TranscriptRecorder(int num_nodes) : logs_(num_nodes) {
  DSTRESS_CHECK(num_nodes > 0);
  mus_.reserve(num_nodes);
  for (int i = 0; i < num_nodes; i++) {
    mus_.push_back(std::make_unique<std::mutex>());
  }
}

void TranscriptRecorder::OnSend(net::NodeId from, net::NodeId to, net::SessionId session,
                                const Bytes& payload) {
  std::lock_guard<std::mutex> lock(*mus_[from]);
  logs_[from].Append(Direction::kSent, to, session, payload);
}

void TranscriptRecorder::OnRecv(net::NodeId to, net::NodeId from, net::SessionId session,
                                const Bytes& payload) {
  std::lock_guard<std::mutex> lock(*mus_[to]);
  logs_[to].Append(Direction::kReceived, from, session, payload);
}

}  // namespace dstress::audit
