#include "src/graph/generators.h"

#include <algorithm>

#include "src/common/check.h"

namespace dstress::graph {

Graph GenerateCorePeriphery(const CorePeripheryParams& params, Rng& rng) {
  DSTRESS_CHECK(params.core_size >= 2 && params.core_size <= params.num_vertices);
  DSTRESS_CHECK(params.max_core_links >= 1);
  Graph g(params.num_vertices);
  // Dense core: vertices [0, core_size).
  for (int u = 0; u < params.core_size; u++) {
    for (int v = u + 1; v < params.core_size; v++) {
      if (rng.Uniform() < params.core_density) {
        g.AddEdge(u, v);
        g.AddEdge(v, u);
      }
    }
  }
  // Make sure the core is connected even at low densities: chain fallback.
  for (int u = 0; u + 1 < params.core_size; u++) {
    g.AddEdge(u, u + 1);
    g.AddEdge(u + 1, u);
  }
  // Periphery: each bank links to 1..max_core_links distinct core banks.
  for (int v = params.core_size; v < params.num_vertices; v++) {
    int links = static_cast<int>(rng.Range(1, params.max_core_links));
    for (int l = 0; l < links; l++) {
      int core = static_cast<int>(rng.Below(static_cast<uint64_t>(params.core_size)));
      g.AddEdge(v, core);
      g.AddEdge(core, v);
    }
  }
  return g;
}

Graph GenerateScaleFree(int num_vertices, int links_per_vertex, Rng& rng) {
  DSTRESS_CHECK(links_per_vertex >= 1);
  DSTRESS_CHECK(num_vertices > links_per_vertex);
  Graph g(num_vertices);
  // Repeated-endpoint list realizes preferential attachment: a vertex
  // appears once per incident link, so sampling the list is
  // degree-proportional.
  std::vector<int> endpoints;
  // Seed clique over the first links_per_vertex + 1 vertices.
  int seed = links_per_vertex + 1;
  for (int u = 0; u < seed; u++) {
    for (int v = u + 1; v < seed; v++) {
      g.AddEdge(u, v);
      g.AddEdge(v, u);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (int v = seed; v < num_vertices; v++) {
    int added = 0;
    // Retry loop handles duplicate targets.
    while (added < links_per_vertex) {
      int target = endpoints[rng.Below(endpoints.size())];
      if (target == v || g.HasEdge(v, target)) {
        continue;
      }
      g.AddEdge(v, target);
      g.AddEdge(target, v);
      endpoints.push_back(v);
      endpoints.push_back(target);
      added++;
    }
  }
  return g;
}

Graph GenerateErdosRenyi(int num_vertices, double edge_probability, Rng& rng) {
  Graph g(num_vertices);
  for (int u = 0; u < num_vertices; u++) {
    for (int v = u + 1; v < num_vertices; v++) {
      if (rng.Uniform() < edge_probability) {
        g.AddEdge(u, v);
        g.AddEdge(v, u);
      }
    }
  }
  return g;
}

Graph CapDegree(const Graph& g, int max_degree) {
  DSTRESS_CHECK(max_degree >= 1);
  Graph capped(g.num_vertices());
  for (auto [u, v] : g.Edges()) {
    if (capped.OutDegree(u) < max_degree && capped.InDegree(v) < max_degree) {
      capped.AddEdge(u, v);
    }
  }
  return capped;
}

}  // namespace dstress::graph
