// Synthetic financial-network generators.
//
// There is no public dataset of interbank linkages — the confidentiality
// problem DStress exists to solve — so, exactly as the paper's Appendix C
// does, we generate networks following the empirical structure reported in
// the economics literature:
//
//  * Core–periphery (Cocco et al. [18]): a small, densely connected core of
//    money-center banks; peripheral banks each linked to one or two core
//    banks. Appendix C's 50-bank experiment uses a 10-bank core.
//  * Scale-free: preferential attachment; banks nearer the "center" have
//    exponentially more linkages.
//  * Erdős–Rényi: uniform random baseline for sensitivity studies.
//
// All generators emit symmetric edge pairs (u→v and v→u) because the
// contagion models exchange messages in both directions along a financial
// relationship (debts owed vs. payments expected; holdings vs. valuations).
#ifndef SRC_GRAPH_GENERATORS_H_
#define SRC_GRAPH_GENERATORS_H_

#include "src/common/rng.h"
#include "src/graph/graph.h"

namespace dstress::graph {

struct CorePeripheryParams {
  int num_vertices = 50;
  int core_size = 10;
  // Probability that an ordered core pair is linked (the core is dense).
  double core_density = 0.9;
  // Each peripheral bank links to 1..max_core_links core banks.
  int max_core_links = 2;
};

Graph GenerateCorePeriphery(const CorePeripheryParams& params, Rng& rng);

// Barabási–Albert preferential attachment with `links_per_vertex` edges per
// arriving vertex.
Graph GenerateScaleFree(int num_vertices, int links_per_vertex, Rng& rng);

// Erdős–Rényi G(n, p) on unordered pairs (each selected pair contributes
// both directions).
Graph GenerateErdosRenyi(int num_vertices, double edge_probability, Rng& rng);

// Caps every vertex at `max_degree` out- and in-neighbors by dropping the
// highest-index excess links; used to enforce a public degree bound D on
// generated graphs.
Graph CapDegree(const Graph& g, int max_degree);

}  // namespace dstress::graph

#endif  // SRC_GRAPH_GENERATORS_H_
