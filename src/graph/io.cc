#include "src/graph/io.h"

#include <fstream>
#include <sstream>

namespace dstress::graph {

std::string WriteEdgeList(const Graph& g) {
  std::ostringstream out;
  out << "graph " << g.num_vertices() << "\n";
  for (auto [u, v] : g.Edges()) {
    out << u << " " << v << "\n";
  }
  return out.str();
}

std::optional<Graph> ParseEdgeList(const std::string& text, std::string* error) {
  std::istringstream stream(text);
  std::string line;
  int line_number = 0;
  std::optional<Graph> g;
  auto fail = [error, &line_number](const std::string& what) {
    *error = "line " + std::to_string(line_number) + ": " + what;
    return std::nullopt;
  };
  while (std::getline(stream, line)) {
    line_number++;
    auto hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream ls(line);
    std::string first;
    if (!(ls >> first)) {
      continue;  // blank
    }
    if (!g.has_value()) {
      int n = 0;
      if (first != "graph" || !(ls >> n) || n <= 0) {
        return fail("expected 'graph <N>' header");
      }
      std::string extra;
      if (ls >> extra) {
        return fail("trailing tokens after header");
      }
      g.emplace(n);
      continue;
    }
    int u = 0;
    int v = 0;
    std::istringstream es(line);
    std::string extra;
    if (!(es >> u >> v) || (es >> extra)) {
      return fail("expected '<u> <v>'");
    }
    if (u < 0 || v < 0 || u >= g->num_vertices() || v >= g->num_vertices()) {
      return fail("edge endpoint out of range");
    }
    if (u == v) {
      return fail("self-loops are not allowed");
    }
    g->AddEdge(u, v);
  }
  if (!g.has_value()) {
    *error = "missing 'graph <N>' header";
    return std::nullopt;
  }
  return g;
}

std::optional<Graph> LoadEdgeListFile(const std::string& path, std::string* error) {
  std::ifstream file(path);
  if (!file) {
    *error = "cannot open '" + path + "'";
    return std::nullopt;
  }
  std::ostringstream contents;
  contents << file.rdbuf();
  return ParseEdgeList(contents.str(), error);
}

std::string WriteDot(const Graph& g, int core_size) {
  std::ostringstream out;
  out << "digraph dstress {\n";
  for (int v = 0; v < g.num_vertices(); v++) {
    out << "  n" << v;
    if (v < core_size) {
      out << " [style=filled, fillcolor=lightblue]";
    }
    out << ";\n";
  }
  for (auto [u, v] : g.Edges()) {
    out << "  n" << u << " -> n" << v << ";\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace dstress::graph
