// Directed graph model for DStress vertex programs.
//
// A directed edge (u, v) means u sends one message to v per iteration (and
// both endpoints know the edge exists — the paper's edge-knowledge model,
// §2). The runtime enforces a public degree bound D: vertices with fewer
// than D in-neighbors receive no-op messages in the remaining slots, and
// the update circuit always has exactly D message inputs and outputs
// (§3.6). Properties attached to edges/vertices (debts, cross-holdings)
// live with the applications in src/finance.
#ifndef SRC_GRAPH_GRAPH_H_
#define SRC_GRAPH_GRAPH_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace dstress::graph {

class Graph {
 public:
  explicit Graph(int num_vertices);

  int num_vertices() const { return n_; }
  int num_edges() const { return num_edges_; }

  // Adds the directed edge (u, v); duplicate adds are ignored.
  void AddEdge(int u, int v);
  bool HasEdge(int u, int v) const;

  const std::vector<int>& OutNeighbors(int v) const { return out_[v]; }
  const std::vector<int>& InNeighbors(int v) const { return in_[v]; }
  int OutDegree(int v) const { return static_cast<int>(out_[v].size()); }
  int InDegree(int v) const { return static_cast<int>(in_[v].size()); }

  // Maximum of in- and out-degree over all vertices: the smallest valid
  // public degree bound D.
  int MaxDegree() const;

  // All directed edges in deterministic (u, then insertion) order. This
  // ordering doubles as the global edge index used for communication-phase
  // scheduling.
  std::vector<std::pair<int, int>> Edges() const;

 private:
  int n_;
  int num_edges_ = 0;
  std::vector<std::vector<int>> out_;
  std::vector<std::vector<int>> in_;
};

// §3.7 degree bucketing: assigns each vertex the smallest bucket whose
// threshold covers the vertex's max degree. thresholds must be ascending;
// the last bucket is unbounded. Returns the bucket index per vertex.
std::vector<int> DegreeBuckets(const Graph& g, const std::vector<int>& thresholds);

}  // namespace dstress::graph

#endif  // SRC_GRAPH_GRAPH_H_
