// Graph serialization: a plain edge-list text format for moving topologies
// in and out of DStress (scenario files embed the same `edge` directives),
// plus a Graphviz DOT writer for visual inspection of synthetic networks.
//
// Edge-list format: first non-comment line `graph <N>`, then one `<u> <v>`
// pair per line; `#` starts a comment. Parsing is strict (line-precise
// errors) because topology files feed directly into privacy-sensitive runs.
#ifndef SRC_GRAPH_IO_H_
#define SRC_GRAPH_IO_H_

#include <optional>
#include <string>

#include "src/graph/graph.h"

namespace dstress::graph {

// Renders the edge-list text form.
std::string WriteEdgeList(const Graph& g);

// Parses the edge-list form; on failure returns std::nullopt and sets
// *error to a "line N: what" message.
std::optional<Graph> ParseEdgeList(const std::string& text, std::string* error);

// Reads and parses an edge-list file.
std::optional<Graph> LoadEdgeListFile(const std::string& path, std::string* error);

// Graphviz `digraph`, one node per vertex. `core_size` > 0 marks vertices
// [0, core_size) with a filled style (core-periphery visualization).
std::string WriteDot(const Graph& g, int core_size = 0);

}  // namespace dstress::graph

#endif  // SRC_GRAPH_IO_H_
