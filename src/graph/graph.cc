#include "src/graph/graph.h"

#include <algorithm>

#include "src/common/check.h"

namespace dstress::graph {

Graph::Graph(int num_vertices) : n_(num_vertices), out_(num_vertices), in_(num_vertices) {
  DSTRESS_CHECK(num_vertices > 0);
}

void Graph::AddEdge(int u, int v) {
  DSTRESS_CHECK(u >= 0 && u < n_ && v >= 0 && v < n_);
  DSTRESS_CHECK(u != v);
  if (HasEdge(u, v)) {
    return;
  }
  out_[u].push_back(v);
  in_[v].push_back(u);
  num_edges_++;
}

bool Graph::HasEdge(int u, int v) const {
  DSTRESS_CHECK(u >= 0 && u < n_ && v >= 0 && v < n_);
  return std::find(out_[u].begin(), out_[u].end(), v) != out_[u].end();
}

int Graph::MaxDegree() const {
  int max_degree = 0;
  for (int v = 0; v < n_; v++) {
    max_degree = std::max(max_degree, std::max(OutDegree(v), InDegree(v)));
  }
  return max_degree;
}

std::vector<std::pair<int, int>> Graph::Edges() const {
  std::vector<std::pair<int, int>> edges;
  edges.reserve(num_edges_);
  for (int u = 0; u < n_; u++) {
    for (int v : out_[u]) {
      edges.emplace_back(u, v);
    }
  }
  return edges;
}

std::vector<int> DegreeBuckets(const Graph& g, const std::vector<int>& thresholds) {
  std::vector<int> buckets(g.num_vertices());
  for (int v = 0; v < g.num_vertices(); v++) {
    int degree = std::max(g.OutDegree(v), g.InDegree(v));
    int bucket = static_cast<int>(thresholds.size());  // unbounded last bucket
    for (size_t t = 0; t < thresholds.size(); t++) {
      if (degree <= thresholds[t]) {
        bucket = static_cast<int>(t);
        break;
      }
    }
    buckets[v] = bucket;
  }
  return buckets;
}

}  // namespace dstress::graph
