// Precompiled evaluation plan for a boolean circuit.
//
// Both evaluation engines — GMW over XOR shares (src/mpc/gmw.h) and the
// cleartext fast path (src/engine/cleartext_backend.cc) — walk a circuit in
// the same layered order: the AND gates of communication round r, then the
// free gates (INPUT/CONST/XOR/NOT) that become computable at round r. The
// seed implementation re-derived that grouping on every Eval call; an
// EvalPlan computes it once per circuit and is reused across rounds,
// instances and runs.
//
// The plan also carries the word-parallel ("bitsliced") cleartext
// evaluator: W independent instances are packed instance-minor into 64-bit
// lanes (instance j lives at bit j%64 of word j/64 of every wire row), so
// one pass over the gate list evaluates up to 64 instances per word
// operation. This is the cleartext half of the packed-share data plane
// described in docs/packed-eval.md; the GMW half lives in
// src/mpc/batch_eval.h and consumes the same plan.
#ifndef SRC_CIRCUIT_EVAL_PLAN_H_
#define SRC_CIRCUIT_EVAL_PLAN_H_

#include <cstdint>
#include <vector>

#include "src/circuit/circuit.h"

namespace dstress::circuit {

class EvalPlan {
 public:
  // Self-contained: copies the gate list and layer structure out of
  // `circuit`, so the plan stays valid independently of the Circuit
  // object's lifetime and the Circuit type keeps value semantics.
  explicit EvalPlan(const Circuit& circuit);

  size_t num_wires() const { return gates_.size(); }
  size_t num_inputs() const { return num_inputs_; }
  size_t num_outputs() const { return outputs_.size(); }
  const std::vector<Gate>& gates() const { return gates_; }
  const std::vector<Wire>& outputs() const { return outputs_; }
  const CircuitStats& stats() const { return stats_; }

  // Communication rounds: 1-based round r evaluates and_layers()[r] (one
  // exchange in GMW), then local_layers()[r]. Round 0 has only local gates.
  // Both vectors have stats().and_depth + 1 entries; wires inside a layer
  // are in topological (index) order.
  const std::vector<std::vector<Wire>>& and_layers() const { return and_layers_; }
  const std::vector<std::vector<Wire>>& local_layers() const { return local_layers_; }

  // Word-parallel cleartext evaluation of up to 64*words_per_row instances.
  // `inputs` holds num_inputs() rows of words_per_row words each
  // (instance-minor packing); `outputs` receives num_outputs() such rows.
  // Lanes beyond the caller's real instance count hold garbage — callers
  // extract only the lanes they packed.
  void EvalPacked(const uint64_t* inputs, size_t words_per_row, uint64_t* outputs) const;

  // As above with a caller-provided wire scratch of num_wires() *
  // words_per_row words, for hot loops that evaluate the same plan many
  // times (the ensemble plane re-evaluates per 16-word chunk). The scratch
  // may be uninitialized: gates are written in topological order before any
  // reader, and lanes beyond the real instance count are garbage either way.
  void EvalPacked(const uint64_t* inputs, size_t words_per_row, uint64_t* outputs,
                  uint64_t* scratch) const;

 private:
  std::vector<Gate> gates_;
  std::vector<Wire> outputs_;
  size_t num_inputs_ = 0;
  CircuitStats stats_;
  std::vector<std::vector<Wire>> and_layers_;
  std::vector<std::vector<Wire>> local_layers_;
};

}  // namespace dstress::circuit

#endif  // SRC_CIRCUIT_EVAL_PLAN_H_
