// Circuit builder: gate-level construction with constant folding, plus a
// library of word-level (multi-bit, little-endian, two's-complement)
// arithmetic blocks used by the DStress vertex programs:
//
//  * ripple adders/subtractors with the 1-AND-per-bit full adder
//    (carry' = a ^ ((a^b) & (a^carry))),
//  * unsigned/signed comparators,
//  * schoolbook multiplier,
//  * restoring divider (the fixed-point prorate computation in
//    Eisenberg–Noe and the valuation discount in Elliott–Golub–Jackson),
//  * multiplexers, saturation and fixed-point scaling helpers.
#ifndef SRC_CIRCUIT_BUILDER_H_
#define SRC_CIRCUIT_BUILDER_H_

#include <cstdint>
#include <vector>

#include "src/circuit/circuit.h"

namespace dstress::circuit {

// A word is a vector of wires, least-significant bit first.
using Word = std::vector<Wire>;

class Builder {
 public:
  Builder();

  // --- single-bit layer ---
  Wire Input();
  Wire Const(bool v) { return v ? one_ : zero_; }
  Wire Zero() { return zero_; }
  Wire One() { return one_; }
  Wire Xor(Wire a, Wire b);
  Wire And(Wire a, Wire b);
  Wire Not(Wire a);
  Wire Or(Wire a, Wire b);
  // s ? t : f  — one AND.
  Wire Mux(Wire s, Wire t, Wire f);

  // --- word layer ---
  Word InputWord(int bits);
  Word ConstWord(uint64_t value, int bits);
  Word XorWord(const Word& a, const Word& b);
  Word AndWith(const Word& a, Wire bit);  // bitwise AND of a word with one bit
  Word NotWord(const Word& a);
  // s ? t : f elementwise; t and f must be the same width.
  Word MuxWord(Wire s, const Word& t, const Word& f);

  // Sum modulo 2^bits. Widths must match.
  Word Add(const Word& a, const Word& b);
  // a - b modulo 2^bits.
  Word Sub(const Word& a, const Word& b);
  // Unsigned a < b.
  Wire Ult(const Word& a, const Word& b);
  // Signed (two's-complement) a < b.
  Wire Slt(const Word& a, const Word& b);
  Wire EqZero(const Word& a);
  Wire Eq(const Word& a, const Word& b);

  // Low `out_bits` bits of a*b (unsigned). out_bits defaults to a.size().
  Word Mul(const Word& a, const Word& b, int out_bits = 0);
  // Unsigned restoring division: quotient = a / b, remainder = a % b.
  // Division by zero yields an all-ones quotient (saturation), mirroring the
  // defined-total-function requirement of circuit-based MPC.
  void DivMod(const Word& a, const Word& b, Word* quotient, Word* remainder);
  // Fixed-point ratio with `frac_bits` fractional bits:
  //   (a << frac_bits) / b, computed at width a.size() + frac_bits then
  //   truncated back to a.size() bits with saturation.
  Word DivFixed(const Word& a, const Word& b, int frac_bits);

  // Sign/zero extension and truncation.
  Word ZeroExtend(const Word& a, int bits);
  Word SignExtend(const Word& a, int bits);
  Word Truncate(const Word& a, int bits);
  Word ShiftLeftConst(const Word& a, int amount);
  Word ShiftRightConst(const Word& a, int amount);  // logical

  // min(a, clamp_max) for unsigned words (used for saturating fixed-point).
  Word ClampMax(const Word& a, const Word& clamp_max);

  // --- outputs & finalization ---
  void Output(Wire w) { outputs_.push_back(w); }
  void OutputWord(const Word& w);
  Circuit Build();

  size_t num_inputs() const { return num_inputs_; }
  size_t num_and_gates() const { return num_and_; }

 private:
  Wire Emit(GateOp op, Wire a, Wire b);
  // Constant value of a wire: -1 unknown, else 0/1.
  int ConstVal(Wire w) const { return const_val_[w]; }

  std::vector<Gate> gates_;
  std::vector<int8_t> const_val_;
  std::vector<Wire> outputs_;
  size_t num_inputs_ = 0;
  size_t num_and_ = 0;
  Wire zero_ = 0;
  Wire one_ = 0;
};

}  // namespace dstress::circuit

#endif  // SRC_CIRCUIT_BUILDER_H_
