// Boolean-circuit intermediate representation.
//
// DStress executes vertex-program update functions as boolean circuits
// inside GMW (paper §3.7: programs must be expressible as boolean circuits
// with static bounds). This IR is deliberately minimal: XOR / AND / NOT over
// single-bit wires, with constants. XOR and NOT are "free" in GMW (local on
// shares); AND costs one interaction, so the builder (builder.h) performs
// aggressive constant folding and uses 1-AND full adders to keep the AND
// count — the quantity that determines MPC time and traffic — low.
#ifndef SRC_CIRCUIT_CIRCUIT_H_
#define SRC_CIRCUIT_CIRCUIT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dstress::circuit {

using Wire = uint32_t;

enum class GateOp : uint8_t {
  kInput,  // value supplied by the environment
  kConst,  // constant bit; stored in Gate::a (0 or 1)
  kXor,    // a ^ b
  kAnd,    // a & b
  kNot,    // !a
};

struct Gate {
  GateOp op;
  Wire a = 0;
  Wire b = 0;
};

struct CircuitStats {
  size_t num_gates = 0;
  size_t num_inputs = 0;
  size_t num_outputs = 0;
  size_t num_and = 0;
  size_t num_xor = 0;
  size_t num_not = 0;
  // Number of GMW communication rounds = multiplicative (AND) depth.
  size_t and_depth = 0;

  std::string ToString() const;
};

class Circuit {
 public:
  Circuit(std::vector<Gate> gates, std::vector<Wire> outputs, size_t num_inputs);

  size_t num_wires() const { return gates_.size(); }
  size_t num_inputs() const { return num_inputs_; }
  size_t num_outputs() const { return outputs_.size(); }
  const std::vector<Gate>& gates() const { return gates_; }
  const std::vector<Wire>& outputs() const { return outputs_; }

  const CircuitStats& stats() const { return stats_; }

  // AND-depth (communication round) of each wire; round r ANDs become
  // evaluable after r-1 rounds of interaction.
  const std::vector<uint32_t>& and_depth() const { return depth_; }
  // AND gates grouped by round (1-based round index = depth of the gate).
  const std::vector<std::vector<Wire>>& and_layers() const { return and_layers_; }

  // Plaintext evaluation — the reference semantics used by tests and by the
  // cleartext baselines. inputs.size() must equal num_inputs().
  std::vector<uint8_t> Eval(const std::vector<uint8_t>& inputs) const;

 private:
  std::vector<Gate> gates_;
  std::vector<Wire> outputs_;
  size_t num_inputs_;
  std::vector<uint32_t> depth_;
  std::vector<std::vector<Wire>> and_layers_;
  CircuitStats stats_;
};

}  // namespace dstress::circuit

#endif  // SRC_CIRCUIT_CIRCUIT_H_
