#include "src/circuit/eval_plan.h"

#include <cstring>

#include "src/common/check.h"

namespace dstress::circuit {

EvalPlan::EvalPlan(const Circuit& circuit)
    : gates_(circuit.gates()),
      outputs_(circuit.outputs()),
      num_inputs_(circuit.num_inputs()),
      stats_(circuit.stats()),
      and_layers_(circuit.and_layers()) {
  const auto& depth = circuit.and_depth();
  local_layers_.resize(stats_.and_depth + 1);
  for (size_t i = 0; i < gates_.size(); i++) {
    if (gates_[i].op != GateOp::kAnd) {
      local_layers_[depth[i]].push_back(static_cast<Wire>(i));
    }
  }
  if (and_layers_.empty()) {
    and_layers_.resize(1);
  }
}

void EvalPlan::EvalPacked(const uint64_t* inputs, size_t words_per_row,
                          uint64_t* outputs) const {
  std::vector<uint64_t> value(gates_.size() * words_per_row);
  EvalPacked(inputs, words_per_row, outputs, value.data());
}

void EvalPlan::EvalPacked(const uint64_t* inputs, size_t words_per_row,
                          uint64_t* outputs, uint64_t* scratch) const {
  const size_t wpr = words_per_row;
  DSTRESS_CHECK(wpr > 0);
  uint64_t* rows = scratch;
  size_t next_input = 0;
  for (size_t i = 0; i < gates_.size(); i++) {
    const Gate& g = gates_[i];
    uint64_t* z = rows + i * wpr;
    switch (g.op) {
      case GateOp::kInput: {
        std::memcpy(z, inputs + next_input * wpr, wpr * sizeof(uint64_t));
        next_input++;
        break;
      }
      case GateOp::kConst: {
        uint64_t fill = (g.a & 1) ? ~0ULL : 0ULL;
        for (size_t w = 0; w < wpr; w++) {
          z[w] = fill;
        }
        break;
      }
      case GateOp::kXor: {
        const uint64_t* a = rows + g.a * wpr;
        const uint64_t* b = rows + g.b * wpr;
        for (size_t w = 0; w < wpr; w++) {
          z[w] = a[w] ^ b[w];
        }
        break;
      }
      case GateOp::kAnd: {
        const uint64_t* a = rows + g.a * wpr;
        const uint64_t* b = rows + g.b * wpr;
        for (size_t w = 0; w < wpr; w++) {
          z[w] = a[w] & b[w];
        }
        break;
      }
      case GateOp::kNot: {
        const uint64_t* a = rows + g.a * wpr;
        for (size_t w = 0; w < wpr; w++) {
          z[w] = ~a[w];
        }
        break;
      }
    }
  }
  DSTRESS_CHECK(next_input == num_inputs_);
  for (size_t o = 0; o < outputs_.size(); o++) {
    std::memcpy(outputs + o * wpr, rows + outputs_[o] * wpr, wpr * sizeof(uint64_t));
  }
}

}  // namespace dstress::circuit
