#include "src/circuit/circuit.h"

#include <algorithm>
#include <cstdio>

#include "src/common/check.h"

namespace dstress::circuit {

std::string CircuitStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "gates=%zu inputs=%zu outputs=%zu and=%zu xor=%zu not=%zu depth=%zu", num_gates,
                num_inputs, num_outputs, num_and, num_xor, num_not, and_depth);
  return buf;
}

Circuit::Circuit(std::vector<Gate> gates, std::vector<Wire> outputs, size_t num_inputs)
    : gates_(std::move(gates)), outputs_(std::move(outputs)), num_inputs_(num_inputs) {
  depth_.resize(gates_.size(), 0);
  stats_.num_gates = gates_.size();
  stats_.num_inputs = num_inputs_;
  stats_.num_outputs = outputs_.size();
  uint32_t max_depth = 0;
  for (size_t i = 0; i < gates_.size(); i++) {
    const Gate& g = gates_[i];
    switch (g.op) {
      case GateOp::kInput:
      case GateOp::kConst:
        depth_[i] = 0;
        break;
      case GateOp::kNot:
        DSTRESS_CHECK(g.a < i);
        depth_[i] = depth_[g.a];
        stats_.num_not++;
        break;
      case GateOp::kXor:
        DSTRESS_CHECK(g.a < i && g.b < i);
        depth_[i] = std::max(depth_[g.a], depth_[g.b]);
        stats_.num_xor++;
        break;
      case GateOp::kAnd:
        DSTRESS_CHECK(g.a < i && g.b < i);
        depth_[i] = std::max(depth_[g.a], depth_[g.b]) + 1;
        stats_.num_and++;
        break;
    }
    max_depth = std::max(max_depth, depth_[i]);
  }
  stats_.and_depth = max_depth;
  and_layers_.resize(max_depth + 1);
  for (size_t i = 0; i < gates_.size(); i++) {
    if (gates_[i].op == GateOp::kAnd) {
      and_layers_[depth_[i]].push_back(static_cast<Wire>(i));
    }
  }
  for (Wire w : outputs_) {
    DSTRESS_CHECK(w < gates_.size());
  }
}

std::vector<uint8_t> Circuit::Eval(const std::vector<uint8_t>& inputs) const {
  DSTRESS_CHECK(inputs.size() == num_inputs_);
  std::vector<uint8_t> value(gates_.size(), 0);
  size_t next_input = 0;
  for (size_t i = 0; i < gates_.size(); i++) {
    const Gate& g = gates_[i];
    switch (g.op) {
      case GateOp::kInput:
        value[i] = inputs[next_input++] & 1;
        break;
      case GateOp::kConst:
        value[i] = static_cast<uint8_t>(g.a & 1);
        break;
      case GateOp::kXor:
        value[i] = value[g.a] ^ value[g.b];
        break;
      case GateOp::kAnd:
        value[i] = value[g.a] & value[g.b];
        break;
      case GateOp::kNot:
        value[i] = value[g.a] ^ 1;
        break;
    }
  }
  DSTRESS_CHECK(next_input == num_inputs_);
  std::vector<uint8_t> out;
  out.reserve(outputs_.size());
  for (Wire w : outputs_) {
    out.push_back(value[w]);
  }
  return out;
}

}  // namespace dstress::circuit
