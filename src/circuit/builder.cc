#include "src/circuit/builder.h"

#include "src/common/check.h"

namespace dstress::circuit {

Builder::Builder() {
  zero_ = Emit(GateOp::kConst, 0, 0);
  one_ = Emit(GateOp::kConst, 1, 0);
}

Wire Builder::Emit(GateOp op, Wire a, Wire b) {
  Wire id = static_cast<Wire>(gates_.size());
  gates_.push_back(Gate{op, a, b});
  int8_t cv = -1;
  switch (op) {
    case GateOp::kConst:
      cv = static_cast<int8_t>(a & 1);
      break;
    case GateOp::kAnd:
      num_and_++;
      break;
    default:
      break;
  }
  const_val_.push_back(cv);
  return id;
}

Wire Builder::Input() {
  num_inputs_++;
  return Emit(GateOp::kInput, 0, 0);
}

Wire Builder::Xor(Wire a, Wire b) {
  int ca = ConstVal(a);
  int cb = ConstVal(b);
  if (a == b) {
    return zero_;
  }
  if (ca == 0) {
    return b;
  }
  if (cb == 0) {
    return a;
  }
  if (ca == 1) {
    return Not(b);
  }
  if (cb == 1) {
    return Not(a);
  }
  return Emit(GateOp::kXor, a, b);
}

Wire Builder::Not(Wire a) {
  int ca = ConstVal(a);
  if (ca >= 0) {
    return ca ? zero_ : one_;
  }
  // Collapse double negation.
  if (gates_[a].op == GateOp::kNot) {
    return gates_[a].a;
  }
  return Emit(GateOp::kNot, a, 0);
}

Wire Builder::And(Wire a, Wire b) {
  int ca = ConstVal(a);
  int cb = ConstVal(b);
  if (ca == 0 || cb == 0) {
    return zero_;
  }
  if (ca == 1) {
    return b;
  }
  if (cb == 1) {
    return a;
  }
  if (a == b) {
    return a;
  }
  return Emit(GateOp::kAnd, a, b);
}

Wire Builder::Or(Wire a, Wire b) {
  // a | b = (a ^ b) ^ (a & b): one AND.
  return Xor(Xor(a, b), And(a, b));
}

Wire Builder::Mux(Wire s, Wire t, Wire f) {
  // f ^ s&(t^f): one AND.
  return Xor(f, And(s, Xor(t, f)));
}

Word Builder::InputWord(int bits) {
  Word w(bits);
  for (auto& bit : w) {
    bit = Input();
  }
  return w;
}

Word Builder::ConstWord(uint64_t value, int bits) {
  DSTRESS_CHECK(bits <= 64);
  Word w(bits);
  for (int i = 0; i < bits; i++) {
    w[i] = Const((value >> i) & 1);
  }
  return w;
}

Word Builder::XorWord(const Word& a, const Word& b) {
  DSTRESS_CHECK(a.size() == b.size());
  Word out(a.size());
  for (size_t i = 0; i < a.size(); i++) {
    out[i] = Xor(a[i], b[i]);
  }
  return out;
}

Word Builder::AndWith(const Word& a, Wire bit) {
  Word out(a.size());
  for (size_t i = 0; i < a.size(); i++) {
    out[i] = And(a[i], bit);
  }
  return out;
}

Word Builder::NotWord(const Word& a) {
  Word out(a.size());
  for (size_t i = 0; i < a.size(); i++) {
    out[i] = Not(a[i]);
  }
  return out;
}

Word Builder::MuxWord(Wire s, const Word& t, const Word& f) {
  DSTRESS_CHECK(t.size() == f.size());
  Word out(t.size());
  for (size_t i = 0; i < t.size(); i++) {
    out[i] = Mux(s, t[i], f[i]);
  }
  return out;
}

namespace {

// Shared adder core: returns sum bits and exposes the final carry. One AND
// per bit: carry' = a ^ ((a^b) & (a^carry)).
struct AddResult {
  Word sum;
  Wire carry_out;
};

}  // namespace

Word Builder::Add(const Word& a, const Word& b) {
  DSTRESS_CHECK(a.size() == b.size());
  Word out(a.size());
  Wire carry = zero_;
  for (size_t i = 0; i < a.size(); i++) {
    Wire axb = Xor(a[i], b[i]);
    out[i] = Xor(axb, carry);
    if (i + 1 < a.size()) {
      carry = Xor(a[i], And(axb, Xor(a[i], carry)));
    }
  }
  return out;
}

Word Builder::Sub(const Word& a, const Word& b) {
  DSTRESS_CHECK(a.size() == b.size());
  // a - b = a + ~b + 1.
  Word out(a.size());
  Wire carry = one_;
  for (size_t i = 0; i < a.size(); i++) {
    Wire nb = Not(b[i]);
    Wire axb = Xor(a[i], nb);
    out[i] = Xor(axb, carry);
    if (i + 1 < a.size()) {
      carry = Xor(a[i], And(axb, Xor(a[i], carry)));
    }
  }
  return out;
}

Wire Builder::Ult(const Word& a, const Word& b) {
  DSTRESS_CHECK(a.size() == b.size());
  // a < b  <=>  carry-out of a + ~b + 1 is 0.
  Wire carry = one_;
  for (size_t i = 0; i < a.size(); i++) {
    Wire nb = Not(b[i]);
    Wire axb = Xor(a[i], nb);
    carry = Xor(a[i], And(axb, Xor(a[i], carry)));
  }
  return Not(carry);
}

Wire Builder::Slt(const Word& a, const Word& b) {
  DSTRESS_CHECK(!a.empty() && a.size() == b.size());
  // Flip the sign bits and compare unsigned.
  Word a2 = a;
  Word b2 = b;
  a2.back() = Not(a2.back());
  b2.back() = Not(b2.back());
  return Ult(a2, b2);
}

Wire Builder::EqZero(const Word& a) {
  Wire any = zero_;
  for (Wire bit : a) {
    any = Or(any, bit);
  }
  return Not(any);
}

Wire Builder::Eq(const Word& a, const Word& b) { return EqZero(XorWord(a, b)); }

Word Builder::Mul(const Word& a, const Word& b, int out_bits) {
  if (out_bits == 0) {
    out_bits = static_cast<int>(a.size());
  }
  Word acc = ConstWord(0, out_bits);
  for (int i = 0; i < static_cast<int>(b.size()) && i < out_bits; i++) {
    // partial = (a & b_i) << i, truncated to out_bits.
    Word partial = ConstWord(0, out_bits);
    for (int j = 0; j + i < out_bits && j < static_cast<int>(a.size()); j++) {
      partial[j + i] = And(a[j], b[i]);
    }
    acc = Add(acc, partial);
  }
  return acc;
}

void Builder::DivMod(const Word& a, const Word& b, Word* quotient, Word* remainder) {
  DSTRESS_CHECK(a.size() == b.size());
  int w = static_cast<int>(a.size());
  Wire div_by_zero = EqZero(b);
  Word rem = ConstWord(0, w);
  Word quot(w, zero_);
  for (int i = w - 1; i >= 0; i--) {
    // rem = (rem << 1) | a_i
    for (int j = w - 1; j >= 1; j--) {
      rem[j] = rem[j - 1];
    }
    rem[0] = a[i];
    Wire ge = Not(Ult(rem, b));
    quot[i] = ge;
    rem = MuxWord(ge, Sub(rem, b), rem);
  }
  // Saturate quotient on division by zero; remainder stays a (the restoring
  // loop already leaves rem == a when b == 0 since ge is always 1 there —
  // force the documented contract explicitly instead).
  Word all_ones(w, one_);
  *quotient = MuxWord(div_by_zero, all_ones, quot);
  *remainder = MuxWord(div_by_zero, a, rem);
}

Word Builder::DivFixed(const Word& a, const Word& b, int frac_bits) {
  int w = static_cast<int>(a.size());
  int wide = w + frac_bits;
  Word wa = ShiftLeftConst(ZeroExtend(a, wide), frac_bits);
  Word wb = ZeroExtend(b, wide);
  Word q, r;
  DivMod(wa, wb, &q, &r);
  // Saturate to w bits: if any high bit set, return all-ones.
  Wire overflow = zero_;
  for (int i = w; i < wide; i++) {
    overflow = Or(overflow, q[i]);
  }
  Word low = Truncate(q, w);
  Word all_ones(w, one_);
  return MuxWord(overflow, all_ones, low);
}

Word Builder::ZeroExtend(const Word& a, int bits) {
  DSTRESS_CHECK(bits >= static_cast<int>(a.size()));
  Word out = a;
  out.resize(bits, zero_);
  return out;
}

Word Builder::SignExtend(const Word& a, int bits) {
  DSTRESS_CHECK(!a.empty() && bits >= static_cast<int>(a.size()));
  Word out = a;
  out.resize(bits, a.back());
  return out;
}

Word Builder::Truncate(const Word& a, int bits) {
  DSTRESS_CHECK(bits <= static_cast<int>(a.size()));
  return Word(a.begin(), a.begin() + bits);
}

Word Builder::ShiftLeftConst(const Word& a, int amount) {
  int w = static_cast<int>(a.size());
  Word out(w, zero_);
  for (int i = w - 1; i >= amount; i--) {
    out[i] = a[i - amount];
  }
  return out;
}

Word Builder::ShiftRightConst(const Word& a, int amount) {
  int w = static_cast<int>(a.size());
  Word out(w, zero_);
  for (int i = 0; i + amount < w; i++) {
    out[i] = a[i + amount];
  }
  return out;
}

Word Builder::ClampMax(const Word& a, const Word& clamp_max) {
  Wire over = Ult(clamp_max, a);
  return MuxWord(over, clamp_max, a);
}

void Builder::OutputWord(const Word& w) {
  for (Wire bit : w) {
    outputs_.push_back(bit);
  }
}

Circuit Builder::Build() {
  return Circuit(std::move(gates_), std::move(outputs_), num_inputs_);
}

}  // namespace dstress::circuit
