#include "src/net/transport_spec.h"

#include <map>
#include <mutex>
#include <utility>

#include "src/common/check.h"
#include "src/net/sim_network.h"
#include "src/net/tcp_network.h"

namespace dstress::net {

namespace {

constexpr const char* kBuiltins[] = {"sim", "tcp"};

// Overrides installed with RegisterTransport. Built-ins dispatch directly
// (not via static self-registration, which a static-library link would
// silently drop), so "sim" and "tcp" always resolve.
std::mutex registry_mu;
std::map<std::string, TransportFactory>& Registry() {
  static auto* registry = new std::map<std::string, TransportFactory>();
  return *registry;
}

bool IsBuiltin(const std::string& backend) {
  for (const char* name : kBuiltins) {
    if (backend == name) {
      return true;
    }
  }
  return false;
}

std::unique_ptr<Transport> MakeBuiltin(const TransportSpec& spec, int num_nodes) {
  if (spec.backend == "sim") {
    return std::make_unique<SimNetwork>(num_nodes, spec.options);
  }
  if (spec.backend == "tcp") {
    return std::make_unique<TcpNetwork>(num_nodes, spec);
  }
  DSTRESS_CHECK(false);  // unknown transport backend
  return nullptr;
}

}  // namespace

TransportSpec SimTransportSpec() {
  TransportSpec spec;
  spec.backend = "sim";
  return spec;
}

TransportSpec TcpTransportSpec(std::string host, int port) {
  TransportSpec spec;
  spec.backend = "tcp";
  spec.host = std::move(host);
  spec.port = port;
  return spec;
}

std::unique_ptr<Transport> MakeSimTransport(int num_nodes) {
  return MakeTransport(SimTransportSpec(), num_nodes);
}

void RegisterTransport(const std::string& backend, TransportFactory factory) {
  DSTRESS_CHECK(factory != nullptr);
  std::lock_guard<std::mutex> lock(registry_mu);
  Registry()[backend] = std::move(factory);
}

void ResetTransport(const std::string& backend) {
  std::lock_guard<std::mutex> lock(registry_mu);
  Registry().erase(backend);
}

bool KnownTransportBackend(const std::string& backend) {
  if (IsBuiltin(backend)) {
    return true;
  }
  std::lock_guard<std::mutex> lock(registry_mu);
  return Registry().count(backend) > 0;
}

std::vector<std::string> KnownTransportBackends() {
  std::vector<std::string> names(std::begin(kBuiltins), std::end(kBuiltins));
  std::lock_guard<std::mutex> lock(registry_mu);
  for (const auto& [name, factory] : Registry()) {
    if (!IsBuiltin(name)) {
      names.push_back(name);
    }
  }
  return names;
}

std::unique_ptr<Transport> MakeTransport(const TransportSpec& spec, int num_nodes) {
  DSTRESS_CHECK(num_nodes > 0);
  TransportFactory factory;
  {
    std::lock_guard<std::mutex> lock(registry_mu);
    auto it = Registry().find(spec.backend);
    if (it != Registry().end()) {
      factory = it->second;
    }
  }
  if (factory) {
    return factory(num_nodes, spec);
  }
  return MakeBuiltin(spec, num_nodes);
}

}  // namespace dstress::net
