#include "src/net/channel.h"

#include <utility>

#include "src/common/check.h"

namespace dstress::net {

Channel::Channel(Transport* transport, NodeId self, std::vector<NodeId> peers, SessionId session)
    : transport_(transport),
      self_(self),
      peers_(std::move(peers)),
      session_(session),
      pending_(peers_.size()) {
  DSTRESS_CHECK(transport_ != nullptr);
}

Channel::~Channel() {
  // Dropping buffered messages would strand a peer's blocking Recv with no
  // diagnostic; a role must Flush (or Recv) before releasing its endpoint.
  DSTRESS_CHECK(!any_pending_);
}

Channel::Channel(Channel&& other) noexcept
    : transport_(other.transport_),
      self_(other.self_),
      peers_(std::move(other.peers_)),
      session_(other.session_),
      pending_(std::move(other.pending_)),
      any_pending_(other.any_pending_) {
  other.any_pending_ = false;
}

int Channel::PeerIndex(NodeId peer) const {
  for (size_t i = 0; i < peers_.size(); i++) {
    if (peers_[i] == peer) {
      return static_cast<int>(i);
    }
  }
  DSTRESS_CHECK(false);  // not in the peer set
  return -1;
}

void Channel::Send(NodeId to, Bytes message) {
  pending_[PeerIndex(to)].push_back(std::move(message));
  any_pending_ = true;
}

void Channel::Broadcast(const Bytes& message) {
  for (size_t i = 0; i < peers_.size(); i++) {
    if (peers_[i] != self_) {
      pending_[i].push_back(message);
      any_pending_ = true;
    }
  }
}

void Channel::Flush() {
  if (!any_pending_) {
    return;
  }
  for (size_t i = 0; i < peers_.size(); i++) {
    if (pending_[i].empty()) {
      continue;
    }
    if (pending_[i].size() == 1) {
      transport_->Send(self_, peers_[i], std::move(pending_[i].front()), session_);
      pending_[i].clear();
    } else {
      transport_->SendBatch(self_, peers_[i], std::move(pending_[i]), session_);
      pending_[i] = {};
    }
  }
  any_pending_ = false;
}

Bytes Channel::Recv(NodeId from) {
  Flush();
  return transport_->Recv(self_, from, session_);
}

}  // namespace dstress::net
