// Transport: the abstract message-passing substrate of the DStress runtime.
//
// The paper's execution engine (§3.3/§3.6) runs every protocol role as its
// own party exchanging serialized byte strings. Which wire actually carries
// those bytes is a deployment decision — the prototype used one EC2 machine
// per bank — so the channel is an abstraction selected per run, never named
// by the algorithm layer: a run describes its wire with a
// net::TransportSpec (backend name + options, transport_spec.h) and
// MakeTransport resolves it through a registry that mirrors the engine's
// ExecutionMode registry. Two backends are built in:
//
//   "sim" — net::SimNetwork (sim_network.h): in-process queues, every
//           protocol party on its own thread;
//   "tcp" — net::TcpNetwork (tcp_network.h): one process per bank, messages
//           crossing real sockets as the length-prefixed
//           (from, to, session, payload) frames defined in wire.h.
//
// Every protocol layer (mpc/, ot/, transfer/, core/) is written against
// this interface, and both backends meter the same payload bytes, so a
// run's TrafficStats are identical whichever wire carries it.
//
// Semantics all implementations must provide:
//
//  * Channels are keyed by (from, to, session) and are FIFO: messages sent
//    on one channel arrive in send order. The session id keeps concurrent
//    protocol instances' streams isolated, playing the role of one TCP
//    connection per instance.
//  * Send never blocks (the no-deadlock arguments of the scheduler rely on
//    this); Recv blocks until a message is available.
//  * Every message is metered per sender and per receiver — payload bytes
//    only, never wire framing — so the paper's traffic figures (Figures 4,
//    5-right, 6-right, §5.3) are exact and backend-independent.
#ifndef SRC_NET_TRANSPORT_H_
#define SRC_NET_TRANSPORT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/bytes.h"

namespace dstress::net {

using NodeId = int;
using SessionId = uint64_t;

struct TrafficStats {
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t messages_sent = 0;
  uint64_t messages_received = 0;
};

// Observes every message as it crosses the transport. OnSend runs right
// after the enqueue and OnRecv right after the dequeue, under the channel's
// synchronization, so per-channel observation order matches FIFO delivery
// order. Callbacks must be thread-safe across channels and must not call
// back into the transport. Used by the audit module (src/audit) to record
// transcripts.
class NetworkObserver {
 public:
  virtual ~NetworkObserver() = default;
  virtual void OnSend(NodeId from, NodeId to, SessionId session, const Bytes& payload) = 0;
  virtual void OnRecv(NodeId to, NodeId from, SessionId session, const Bytes& payload) = 0;
};

struct TransportOptions {
  // Upper bound on the bytes queued in any single (from, to, session)
  // channel; 0 = unbounded. Protocol rounds bound queue growth in a correct
  // run, so when a cap is set, exceeding it is a fatal CHECK — a runaway
  // protocol is caught at the offending Send instead of OOMing the process.
  // Size the cap for a full round's burst, not for a drain race: a
  // SendBatch enqueues its whole run before the receiver can dequeue, so a
  // cap must accommodate the largest coalesced burst a round emits. Note
  // the batched MPC data plane (core::RuntimeConfig::batch_mpc, default
  // on) coalesces a whole phase's per-instance openings onto one
  // (from, to) channel per round — the per-channel burst there is the sum
  // of every shared instance's opening block, not one vertex's, so a cap
  // tuned for the seed one-session-per-vertex schedule must be re-sized.
  size_t channel_high_watermark_bytes = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  virtual int num_nodes() const = 0;

  // Attaches an observer (nullptr detaches). Only legal before any traffic
  // has crossed the transport: implementations must reject a late attach or
  // detach (the protocol worker threads would race the pointer swap).
  virtual void SetObserver(NetworkObserver* observer) = 0;

  // Enqueues a message on the (from, to, session) channel. Thread-safe and
  // never blocking.
  virtual void Send(NodeId from, NodeId to, Bytes message, SessionId session = 0) = 0;

  // Enqueues `messages` on the (from, to, session) channel with the exact
  // observable behavior of calling Send once per element, in order —
  // same FIFO boundaries, same per-message metering — but lets the backend
  // amortize its synchronization (lock acquisition, consumer wakeup) over
  // the whole batch. The default implementation just loops over Send.
  virtual void SendBatch(NodeId from, NodeId to, std::vector<Bytes> messages,
                         SessionId session = 0);

  // Dequeues the next message on the (from, to, session) channel in FIFO
  // order, blocking until one arrives.
  virtual Bytes Recv(NodeId to, NodeId from, SessionId session = 0) = 0;

  // Dequeues the next `count` messages of the channel with the exact
  // observable behavior of calling Recv `count` times — same FIFO order,
  // same per-message metering and observer callbacks — but lets the
  // backend amortize its synchronization over the burst (the receive-side
  // mirror of SendBatch; the batched MPC path drains a round's openings
  // per peer with one call). Blocks until all `count` have arrived. The
  // default implementation just loops over Recv.
  virtual std::vector<Bytes> RecvBatch(NodeId to, NodeId from, size_t count,
                                       SessionId session = 0);

  virtual TrafficStats NodeStats(NodeId node) const = 0;
  virtual uint64_t TotalBytes() const = 0;
  virtual uint64_t MaxBytesPerNode() const = 0;
  virtual void ResetStats() = 0;

  // Bulk self-delivery metering (src/graphplane): a data plane that moves
  // per-edge payloads through its own memory arenas — bit-identical to
  // sending them — reports the skipped messages here as one TrafficStats
  // delta per node id, all applied atomically to the traffic counters.
  // Returns true when the deltas were applied, in which case the caller
  // must NOT also send the messages. The default refuses, and
  // implementations must refuse whenever per-message observation is
  // required (an attached NetworkObserver) or the wire is real (tcp): the
  // caller then falls back to literal per-message Send/Recv, so observers
  // and remote peers always see every message. Only the in-process "sim"
  // backend accepts.
  virtual bool MeterSelfDelivered(const std::vector<TrafficStats>& per_node_delta) {
    (void)per_node_delta;
    return false;
  }

  double AverageBytesPerNode() const {
    int n = num_nodes();
    return n > 0 ? static_cast<double>(TotalBytes()) / n : 0.0;
  }

  // --- HA surface (src/ha, docs/ha.md) -----------------------------------
  // Bytes of transport-internal fault-tolerance traffic (heartbeats, resume
  // handshakes, replayed frames). Excluded from the payload metering above,
  // so TrafficStats stay bit-identical between a fault-free run and one
  // that recovered from a fault.
  virtual uint64_t HaControlBytes() const { return 0; }

  // Completed session resumes: reconnects that replayed undelivered frames.
  virtual int HaResumeCount() const { return 0; }
};

// Implemented by transports that can inject deterministic faults into a
// live run; ha::FaultyTransport discovers it with a dynamic_cast. Both
// calls are asynchronous triggers: they start the fault and return, and
// the transport's HA machinery recovers on its own schedule.
class FaultInjectable {
 public:
  virtual ~FaultInjectable() = default;

  // SIGKILLs the spawned bank process (the bank must be driver-spawned).
  virtual void InjectNodeKill(NodeId node) = 0;

  // Severs the driver <-> bank socket; the bank itself stays up and is
  // expected to re-dial and resume its session.
  virtual void InjectLinkDrop(NodeId node) = 0;
};

}  // namespace dstress::net

#endif  // SRC_NET_TRANSPORT_H_
