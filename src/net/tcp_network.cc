#include "src/net/tcp_network.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <shared_mutex>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/net/tcp_node.h"

namespace dstress::net {

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

pid_t TcpNetwork::SpawnNodeProcess(NodeId node, bool resume) const {
  std::string node_arg = std::to_string(node);
  std::string n_arg = std::to_string(num_nodes_);
  std::string driver_arg = dial_host_ + ":" + std::to_string(rendezvous_port_);
  std::string timeout_arg = std::to_string(spec_.bootstrap_timeout_ms);
  pid_t pid = fork();
  DSTRESS_CHECK(pid >= 0);
  if (pid != 0) {
    return pid;
  }
  // Child: exec the dstress_node runner. Only fork+exec happens here, so
  // spawning from the HA monitor thread (respawn) is safe.
  if (resume) {
    execl(spec_.node_program.c_str(), spec_.node_program.c_str(), "--node", node_arg.c_str(),
          "--num-nodes", n_arg.c_str(), "--driver", driver_arg.c_str(),
          "--bootstrap-timeout-ms", timeout_arg.c_str(), "--resume",
          static_cast<char*>(nullptr));
  } else {
    execl(spec_.node_program.c_str(), spec_.node_program.c_str(), "--node", node_arg.c_str(),
          "--num-nodes", n_arg.c_str(), "--driver", driver_arg.c_str(),
          "--bootstrap-timeout-ms", timeout_arg.c_str(), static_cast<char*>(nullptr));
  }
  _exit(127);
}

void TcpNetwork::SpawnNodes(const TransportSpec& spec, int listen_fd, int rendezvous_port) {
  for (NodeId node = 0; node < num_nodes_; node++) {
    if (!spec.node_program.empty()) {
      // Exec mode: spawn the dstress_node runner (the real one-process-per-
      // bank deployment shape). The listen fd is CLOEXEC.
      links_[node] = std::make_unique<Link>();
      links_[node]->pid = SpawnNodeProcess(node, /*resume=*/false);
      continue;
    }
    pid_t pid = fork();
    DSTRESS_CHECK(pid >= 0);
    if (pid != 0) {
      links_[node] = std::make_unique<Link>();  // fd filled in at HELLO time
      links_[node]->pid = pid;
      continue;
    }
    // Fork mode: run the node loop directly in the child. Fork happens
    // before this transport creates any thread; callers construct the
    // transport before their worker pools for the same reason.
    close(listen_fd);
    TcpNodeConfig config;
    config.node_id = node;
    config.num_nodes = num_nodes_;
    config.driver_host = dial_host_;
    config.driver_port = rendezvous_port;
    config.bootstrap_timeout_ms = spec.bootstrap_timeout_ms;
    _exit(RunTcpNode(config) == 0 ? 0 : 1);
  }
}

TcpNetwork::TcpNetwork(int num_nodes, const TransportSpec& spec)
    : ChannelDemuxTransport(num_nodes, spec.options), ha_(spec.ha.enabled), spec_(spec) {
  links_.resize(num_nodes);
  endpoints_.resize(num_nodes);

  // Rendezvous: bind first so every node can dial immediately. The bind
  // interface may differ from the address nodes dial (listen_host
  // "0.0.0.0" on a multi-homed driver).
  const std::string& bind_host = spec.listen_host.empty() ? spec.host : spec.listen_host;
  dial_host_ = spec.advertise_host.empty() ? spec.host : spec.advertise_host;
  if (spec.external_nodes && spec.port == 0) {
    std::fprintf(stderr, "tcp bootstrap: external_nodes needs a fixed rendezvous port"
                 " (operators must know where to point dstress_node)\n");
    DSTRESS_CHECK(false);
  }
  DSTRESS_CHECK(spec.node_endpoints.empty() ||
                static_cast<int>(spec.node_endpoints.size()) == num_nodes);
  int listen_fd = TcpListen(bind_host, spec.port, /*backlog=*/num_nodes);
  fcntl(listen_fd, F_SETFD, FD_CLOEXEC);
  rendezvous_port_ = TcpListenPort(listen_fd);
  if (!spec.external_nodes) {
    SpawnNodes(spec, listen_fd, rendezvous_port_);
  }

  // HELLO: map each accepted connection to its bank and learn the mesh
  // endpoint it advertises to its peers.
  for (int pending = num_nodes; pending > 0; pending--) {
    std::string accept_error;
    int fd = TcpAccept(listen_fd, spec.bootstrap_timeout_ms, &accept_error);
    if (fd < 0) {
      std::string missing;
      for (NodeId node = 0; node < num_nodes; node++) {
        if (links_[node] == nullptr || links_[node]->fd < 0) {
          missing += missing.empty() ? std::to_string(node) : " " + std::to_string(node);
        }
      }
      std::fprintf(stderr, "tcp bootstrap: only %d of %d banks registered within %d ms;"
                   " aborting (a bank process never dialed %s:%d; missing bank(s): %s; %s)\n",
                   num_nodes - pending, num_nodes, spec.bootstrap_timeout_ms,
                   bind_host.c_str(), rendezvous_port_, missing.c_str(), accept_error.c_str());
      DSTRESS_CHECK(false);
    }
    FrameDecoder decoder;
    WireFrame frame;
    DSTRESS_CHECK(TcpReadFrameTimed(fd, &decoder, &frame, spec.bootstrap_timeout_ms));
    NodeId node = -1;
    PeerEndpoint endpoint;
    ParseHelloFrame(frame, &node, &endpoint);
    DSTRESS_CHECK(node >= 0 && node < num_nodes);
    if (spec.external_nodes && links_[node] == nullptr) {
      links_[node] = std::make_unique<Link>();  // pid stays -1: not ours to reap
    }
    if (links_[node]->fd >= 0) {
      std::fprintf(stderr, "tcp bootstrap: bank %d registered twice (second HELLO advertised"
                   " %s) — duplicate --bank in the deployment?\n",
                   node, endpoint.ToString().c_str());
      DSTRESS_CHECK(false);
    }
    if (!spec.node_endpoints.empty()) {
      const PeerEndpoint& expected = spec.node_endpoints[node];
      if ((!expected.host.empty() && expected.host != endpoint.host) ||
          (expected.port != 0 && expected.port != endpoint.port)) {
        std::fprintf(stderr, "tcp bootstrap: bank %d advertised %s but the scenario placed it"
                     " at %s\n", node, endpoint.ToString().c_str(),
                     expected.ToString().c_str());
        DSTRESS_CHECK(false);
      }
    }
    links_[node]->fd = fd;
    links_[node]->decoder = std::move(decoder);
    endpoints_[node] = std::move(endpoint);
    // Partial-mesh progress for multi-machine operators: who is in, who is
    // still being waited for.
    std::fprintf(stderr, "tcp bootstrap: bank %d registered from %s (%d/%d banks in)\n", node,
                 endpoints_[node].ToString().c_str(), num_nodes - pending + 1, num_nodes);
  }

  // PEERS out, READY back: the mesh is up once every bank confirms.
  Bytes peers = EncodeFrame(MakePeersFrame(endpoints_, ha_));
  for (auto& link : links_) {
    DSTRESS_CHECK(TcpWriteAll(link->fd, peers.data(), peers.size()));
  }
  for (NodeId node = 0; node < num_nodes; node++) {
    WireFrame frame;
    DSTRESS_CHECK(TcpReadFrameTimed(links_[node]->fd, &links_[node]->decoder, &frame,
                                    spec.bootstrap_timeout_ms));
    DSTRESS_CHECK(ParseReadyFrame(frame) == node);
  }

  for (NodeId node = 0; node < num_nodes; node++) {
    links_[node]->out = std::make_unique<FrameWriterQueue>();
    links_[node]->out->Start(links_[node]->fd);
    StartReader(node);
  }

  if (ha_) {
    // The rendezvous listener stays open: it is where a crashed bank's
    // replacement (or a bank whose driver link dropped) re-dials.
    listen_fd_ = listen_fd;
    resume_log_ = std::make_unique<ha::ResumeLog>(spec.ha.resume_buffer_bytes);
    ha::FailureDetectorParams params;
    params.suspect_after_ms = spec.ha.suspect_after_ms;
    params.dead_after_ms = spec.ha.dead_after_ms;
    detector_ = std::make_unique<ha::FailureDetector>(num_nodes, params, NowMs());
    acceptor_ = std::thread([this] { AcceptorLoop(); });
    monitor_ = std::thread([this] { MonitorLoop(); });
  } else {
    close(listen_fd);
  }
}

TcpNetwork::~TcpNetwork() {
  shutting_down_.store(true, std::memory_order_release);
  if (monitor_.joinable()) {
    monitor_.join();
  }
  if (ha_) {
    // Tell the banks this is a deliberate teardown, so their relay loops
    // treat the following EOF as clean instead of attempting a resume.
    Bytes bye = EncodeFrame(MakeShutdownFrame());
    std::shared_lock<std::shared_mutex> attach_guard(channels_mu_);
    for (auto& link : links_) {
      if (link->down.load(std::memory_order_acquire)) continue;
      std::lock_guard<std::mutex> lock(link->send_mu);
      link->out->Push(bye);
    }
  }
  // Drain every outgoing queue, then half-close: the nodes see driver EOF,
  // cascade their own shutdown, and our readers exit on their EOFs.
  for (auto& link : links_) {
    if (link->out) link->out->CloseAndJoin();
  }
  for (auto& link : links_) {
    if (link->fd >= 0) shutdown(link->fd, SHUT_WR);
  }
  for (auto& link : links_) {
    if (link->reader.joinable()) link->reader.join();
    if (link->fd >= 0) close(link->fd);
  }
  if (acceptor_.joinable()) {
    acceptor_.join();
  }
  if (listen_fd_ >= 0) {
    close(listen_fd_);
  }
  for (auto& link : links_) {
    pid_t pid = link->pid.load(std::memory_order_relaxed);
    if (pid > 0) {  // external nodes are not our children
      int status = 0;
      waitpid(pid, &status, 0);
    }
  }
}

void TcpNetwork::Send(NodeId from, NodeId to, Bytes message, SessionId session) {
  DSTRESS_DCHECK(from >= 0 && from < num_nodes_ && to >= 0 && to < num_nodes_);
  DSTRESS_CHECK(session != kControlSession);
  traffic_started_.store(true, std::memory_order_release);
  size_t len = message.size();
  WireFrame frame;
  frame.from = from;
  frame.to = to;
  frame.session = session;
  frame.payload = std::move(message);
  Link& link = *links_[from];
  {
    // The shared lock serializes the observer load against SetObserver's
    // exclusive attach (see channel_demux.h); send_mu orders OnSend with
    // the wire per sending bank.
    std::shared_lock<std::shared_mutex> attach_guard(channels_mu_);
    std::lock_guard<std::mutex> lock(link.send_mu);
    NetworkObserver* observer = observer_.load(std::memory_order_acquire);
    if (observer != nullptr) {
      observer->OnSend(from, to, session, frame.payload);
    }
    Bytes encoded;
    if (ha_) {
      // Sequence assignment and the queue push stay under send_mu so wire
      // order matches sequence order on every channel of this bank.
      ha::ChannelId ch{from, to, session};
      std::lock_guard<std::mutex> ha_lock(ha_mu_);
      uint64_t seq = resume_log_->NextSendSeq(ch);
      frame.payload = ha::WrapSeq(seq, frame.payload);
      encoded = EncodeFrame(frame);
      resume_log_->Buffer(ch, seq, encoded);
    } else {
      encoded = EncodeFrame(frame);
    }
    link.out->Push(std::move(encoded));
  }
  MeterSend(from, len, 1);
}

void TcpNetwork::SendBatch(NodeId from, NodeId to, std::vector<Bytes> messages,
                           SessionId session) {
  DSTRESS_DCHECK(from >= 0 && from < num_nodes_ && to >= 0 && to < num_nodes_);
  DSTRESS_CHECK(session != kControlSession);
  if (messages.empty()) {
    return;
  }
  traffic_started_.store(true, std::memory_order_release);
  uint64_t total_len = 0;
  size_t count = messages.size();
  for (const Bytes& payload : messages) {
    total_len += payload.size();
  }
  Link& link = *links_[from];
  {
    std::shared_lock<std::shared_mutex> attach_guard(channels_mu_);
    std::lock_guard<std::mutex> lock(link.send_mu);
    NetworkObserver* observer = observer_.load(std::memory_order_acquire);
    if (observer != nullptr) {
      for (const Bytes& payload : messages) {
        observer->OnSend(from, to, session, payload);
      }
    }
    WireFrame frame;
    frame.from = from;
    frame.to = to;
    frame.session = session;
    std::vector<Bytes> encoded;
    encoded.reserve(count);
    if (ha_) {
      ha::ChannelId ch{from, to, session};
      std::lock_guard<std::mutex> ha_lock(ha_mu_);
      for (Bytes& payload : messages) {
        uint64_t seq = resume_log_->NextSendSeq(ch);
        frame.payload = ha::WrapSeq(seq, payload);
        encoded.push_back(EncodeFrame(frame));
        resume_log_->Buffer(ch, seq, encoded.back());
      }
    } else {
      for (Bytes& payload : messages) {
        frame.payload = std::move(payload);
        encoded.push_back(EncodeFrame(frame));
      }
    }
    link.out->PushAll(std::move(encoded));
  }
  MeterSend(from, total_len, count);
}

void TcpNetwork::StartReader(NodeId bank) {
  Link& link = *links_[bank];
  int fd = link.fd;
  link.reader = std::thread(
      [this, bank, fd, decoder = std::move(link.decoder)]() mutable {
        ReaderLoop(bank, fd, std::move(decoder));
      });
}

void TcpNetwork::ReaderLoop(NodeId bank, int fd, FrameDecoder decoder) {
  WireFrame frame;
  while (TcpReadFrame(fd, &decoder, &frame)) {
    if (frame.session == kControlSession) {
      // The only control frame a bank sends mid-run is the heartbeat ack.
      DSTRESS_CHECK(ControlFrameType(frame) == kCtrlHeartbeatAck);
      NodeId node = -1;
      uint64_t seq = 0;
      ParseHeartbeatAckFrame(frame, &node, &seq);
      DSTRESS_CHECK(node == bank);
      ha_control_bytes_.fetch_add(kWireFrameOverhead + frame.payload.size(),
                                  std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(ha_mu_);
      detector_->OnHeartbeat(bank, NowMs());
      continue;
    }
    // A bank only forwards frames addressed to itself.
    DSTRESS_CHECK(frame.to == bank && frame.from >= 0 && frame.from < num_nodes_);
    Bytes payload = std::move(frame.payload);
    if (ha_) {
      uint64_t seq = ha::PeekSeq(payload);
      bool deliver;
      {
        std::lock_guard<std::mutex> lock(ha_mu_);
        deliver = resume_log_->Deliver(ha::ChannelId{frame.from, frame.to, frame.session}, seq);
      }
      // Duplicates (already delivered before a replay) and strays that
      // overtook a replay are dropped: the replay carries every pending
      // sequence in order, so the channel stays exactly-once FIFO.
      if (!deliver) continue;
      payload = ha::StripSeq(std::move(payload));
    }
    Channel& ch = ChannelFor(ChannelKey{frame.from, frame.to, frame.session});
    {
      std::lock_guard<std::mutex> lock(ch.mu);
      ch.queued_bytes += payload.size();
      ch.queue.push_back(std::move(payload));
      CheckWatermark(ch);
    }
    ch.cv.notify_one();
  }
  // EOF is the shutdown cascade finishing; mid-run it means the bank (or
  // its link) died — with HA on, that is the failure detector's business.
  if (shutting_down_.load(std::memory_order_acquire)) {
    return;
  }
  if (ha_) {
    std::fprintf(stderr, "tcp ha: bank %d link dropped mid-run; awaiting session resume\n",
                 bank);
    links_[bank]->down.store(true, std::memory_order_release);
    std::lock_guard<std::mutex> lock(ha_mu_);
    detector_->OnConnectionLoss(bank, NowMs());
    return;
  }
  DSTRESS_CHECK(shutting_down_.load(std::memory_order_acquire));
}

void TcpNetwork::MonitorLoop() {
  int64_t last_beat_ms = 0;
  uint64_t beat_seq = 0;
  while (!shutting_down_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    int64_t now = NowMs();
    if (now - last_beat_ms >= spec_.ha.heartbeat_ms) {
      last_beat_ms = now;
      Bytes beat = EncodeFrame(MakeHeartbeatFrame(beat_seq++));
      std::shared_lock<std::shared_mutex> attach_guard(channels_mu_);
      for (NodeId node = 0; node < num_nodes_; node++) {
        Link& link = *links_[node];
        if (link.down.load(std::memory_order_acquire)) continue;
        std::lock_guard<std::mutex> lock(link.send_mu);
        link.out->Push(beat);
        ha_control_bytes_.fetch_add(beat.size(), std::memory_order_relaxed);
      }
    }
    std::vector<ha::FailureDetector::Transition> transitions;
    std::vector<NodeId> lost;
    {
      std::lock_guard<std::mutex> lock(ha_mu_);
      transitions = detector_->Tick(now);
      for (NodeId node = 0; node < num_nodes_; node++) {
        if (detector_->DeadForMs(node, now) > spec_.ha.resume_timeout_ms) {
          lost.push_back(node);
        }
      }
    }
    for (const auto& t : transitions) {
      std::fprintf(stderr, "tcp ha: failure detector: bank %d %s -> %s\n", t.peer,
                   ha::PeerHealthName(t.from), ha::PeerHealthName(t.to));
    }
    // Past the resume budget: stop waiting and fail the blocked receivers
    // loudly (DeclarePeerDead takes channels_mu_, so it runs outside
    // ha_mu_ per the lock order).
    for (NodeId node : lost) {
      if (PeerDead(node)) continue;
      DeclarePeerDead(node, "bank " + std::to_string(node) + " did not resume within " +
                                std::to_string(spec_.ha.resume_timeout_ms) +
                                " ms (ha resume_timeout_ms)");
    }
    // Respawn driver-spawned banks that died, handing the replacement
    // --resume so it re-joins the session (exec mode only: a forked
    // in-library node has no binary to re-exec).
    if (!spec_.ha.auto_respawn) continue;
    for (NodeId node = 0; node < num_nodes_; node++) {
      Link& link = *links_[node];
      if (!link.down.load(std::memory_order_acquire) || link.respawned) continue;
      link.respawned = true;
      pid_t pid = link.pid.load(std::memory_order_relaxed);
      if (pid <= 0 || spec_.node_program.empty()) {
        std::fprintf(stderr, "tcp ha: cannot auto-respawn bank %d (%s); waiting for an"
                     " external `dstress_node --resume`\n", node,
                     pid <= 0 ? "externally started bank" : "fork-mode bank, no node_program");
        continue;
      }
      int status = 0;
      waitpid(pid, &status, 0);
      pid_t fresh = SpawnNodeProcess(node, /*resume=*/true);
      link.pid.store(fresh, std::memory_order_relaxed);
      std::fprintf(stderr, "tcp ha: respawned bank %d with --resume (pid %d)\n", node,
                   static_cast<int>(fresh));
    }
  }
}

void TcpNetwork::AcceptorLoop() {
  while (!shutting_down_.load(std::memory_order_acquire)) {
    int fd = TcpAccept(listen_fd_, /*timeout_ms=*/200);
    if (fd < 0) continue;  // tick: re-check shutting_down_
    if (shutting_down_.load(std::memory_order_acquire)) {
      close(fd);
      return;
    }
    FrameDecoder decoder;
    WireFrame frame;
    if (!TcpReadFrameTimed(fd, &decoder, &frame, spec_.ha.resume_timeout_ms)) {
      close(fd);  // dialer went away again before identifying itself
      continue;
    }
    DSTRESS_CHECK(ControlFrameType(frame) == kCtrlResumeHello);
    NodeId node = -1;
    PeerEndpoint endpoint;
    bool full_mesh = false;
    ParseResumeHelloFrame(frame, &node, &endpoint, &full_mesh);
    HandleResume(node, endpoint, fd, std::move(decoder));
  }
}

void TcpNetwork::HandleResume(NodeId node, const PeerEndpoint& endpoint, int fd,
                              FrameDecoder decoder) {
  DSTRESS_CHECK(node >= 0 && node < num_nodes_);
  Link& link = *links_[node];
  std::fprintf(stderr, "tcp ha: bank %d re-dialed from %s; resuming session\n", node,
               endpoint.ToString().c_str());
  // Quiesce the old session's reader before taking channels_mu_: a reader
  // mid-delivery needs that lock (shared) to finish, so joining under the
  // exclusive lock would deadlock.
  if (link.fd >= 0) shutdown(link.fd, SHUT_RDWR);
  if (link.reader.joinable()) link.reader.join();
  {
    std::unique_lock<std::shared_mutex> guard(channels_mu_);
    if (link.out) link.out->CloseAndJoin();
    if (link.fd >= 0) close(link.fd);
    link.fd = fd;
    endpoints_[node] = endpoint;
    // Handshake on the fresh socket: PEERS (the bank may have restarted
    // with no endpoint table), then wait for RESUME_READY — the bank's
    // confirmation that its mesh links are wired — before replaying.
    Bytes peers = EncodeFrame(MakePeersFrame(endpoints_, /*ha_enabled=*/true));
    DSTRESS_CHECK(TcpWriteAll(fd, peers.data(), peers.size()));
    ha_control_bytes_.fetch_add(peers.size(), std::memory_order_relaxed);
    WireFrame ready;
    DSTRESS_CHECK(TcpReadFrameTimed(fd, &decoder, &ready, spec_.ha.resume_timeout_ms));
    DSTRESS_CHECK(ParseResumeReadyFrame(ready) == node);
    link.out = std::make_unique<FrameWriterQueue>();
    link.out->Start(fd);
    // Replay every undelivered frame touching the bank. Sends are blocked
    // (they hold channels_mu_ shared), so pushing straight onto the from-
    // banks' queues splices the replay into each channel's FIFO cleanly.
    std::vector<ha::ResumeLog::ReplayFrame> replay;
    {
      std::lock_guard<std::mutex> ha_lock(ha_mu_);
      replay = resume_log_->UndeliveredFor(node);
      detector_->OnHeartbeat(node, NowMs());  // fresh silence window
    }
    for (auto& f : replay) {
      ha_control_bytes_.fetch_add(f.encoded.size(), std::memory_order_relaxed);
      links_[f.from]->out->Push(std::move(f.encoded));
    }
    link.down.store(false, std::memory_order_release);
    link.respawned = false;
    link.decoder = std::move(decoder);
    StartReader(node);
    ha_resumes_.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr, "tcp ha: bank %d session resumed (%zu frames replayed)\n", node,
                 replay.size());
  }
}

void TcpNetwork::InjectNodeKill(NodeId node) {
  DSTRESS_CHECK(node >= 0 && node < num_nodes_);
  DSTRESS_CHECK(ha_);  // without the HA layer nobody would recover
  pid_t pid = links_[node]->pid.load(std::memory_order_relaxed);
  if (pid <= 0) {
    std::fprintf(stderr, "tcp ha: fault injection: cannot kill bank %d — it is not a"
                 " driver-spawned process\n", node);
    DSTRESS_CHECK(false);
  }
  std::fprintf(stderr, "tcp ha: fault injection: SIGKILL bank %d (pid %d)\n", node,
               static_cast<int>(pid));
  kill(pid, SIGKILL);
}

void TcpNetwork::InjectLinkDrop(NodeId node) {
  DSTRESS_CHECK(node >= 0 && node < num_nodes_);
  DSTRESS_CHECK(ha_);
  std::fprintf(stderr, "tcp ha: fault injection: severing the driver link to bank %d\n", node);
  // The shared lock pins link.fd against a concurrent resume swap.
  std::shared_lock<std::shared_mutex> guard(channels_mu_);
  shutdown(links_[node]->fd, SHUT_RDWR);
}

}  // namespace dstress::net
