#include "src/net/tcp_network.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <shared_mutex>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/net/tcp_node.h"

namespace dstress::net {

void TcpNetwork::SpawnNodes(const TransportSpec& spec, int listen_fd, int rendezvous_port) {
  for (NodeId node = 0; node < num_nodes_; node++) {
    pid_t pid = fork();
    DSTRESS_CHECK(pid >= 0);
    if (pid != 0) {
      links_[node] = std::make_unique<Link>();  // fd filled in at HELLO time
      links_[node]->pid = pid;
      continue;
    }
    if (spec.node_program.empty()) {
      // Fork mode: run the node loop directly in the child. Fork happens
      // before this transport creates any thread; callers construct the
      // transport before their worker pools for the same reason.
      close(listen_fd);
      TcpNodeConfig config;
      config.node_id = node;
      config.num_nodes = num_nodes_;
      config.driver_host = spec.host;
      config.driver_port = rendezvous_port;
      config.bootstrap_timeout_ms = spec.bootstrap_timeout_ms;
      _exit(RunTcpNode(config) == 0 ? 0 : 1);
    }
    // Exec mode: spawn the dstress_node runner (the real one-process-per-
    // bank deployment shape). The listen fd is CLOEXEC.
    std::string node_arg = std::to_string(node);
    std::string n_arg = std::to_string(num_nodes_);
    std::string driver_arg = spec.host + ":" + std::to_string(rendezvous_port);
    std::string timeout_arg = std::to_string(spec.bootstrap_timeout_ms);
    execl(spec.node_program.c_str(), spec.node_program.c_str(), "--node", node_arg.c_str(),
          "--num-nodes", n_arg.c_str(), "--driver", driver_arg.c_str(),
          "--bootstrap-timeout-ms", timeout_arg.c_str(), static_cast<char*>(nullptr));
    _exit(127);
  }
}

TcpNetwork::TcpNetwork(int num_nodes, const TransportSpec& spec)
    : ChannelDemuxTransport(num_nodes, spec.options) {
  links_.resize(num_nodes);

  // Rendezvous: bind first so every spawned node can dial immediately.
  int listen_fd = TcpListen(spec.host, spec.port, /*backlog=*/num_nodes);
  fcntl(listen_fd, F_SETFD, FD_CLOEXEC);
  int rendezvous_port = TcpListenPort(listen_fd);
  SpawnNodes(spec, listen_fd, rendezvous_port);

  // HELLO: map each accepted connection to its bank and learn its mesh
  // listen port.
  std::vector<int> node_ports(num_nodes, 0);
  for (int pending = num_nodes; pending > 0; pending--) {
    int fd = TcpAccept(listen_fd, spec.bootstrap_timeout_ms);
    FrameDecoder decoder;
    WireFrame frame;
    DSTRESS_CHECK(TcpReadFrameTimed(fd, &decoder, &frame, spec.bootstrap_timeout_ms));
    NodeId node = -1;
    int port = 0;
    ParseHelloFrame(frame, &node, &port);
    DSTRESS_CHECK(node >= 0 && node < num_nodes && links_[node]->fd < 0);
    links_[node]->fd = fd;
    links_[node]->decoder = std::move(decoder);
    node_ports[node] = port;
  }
  close(listen_fd);

  // PEERS out, READY back: the mesh is up once every bank confirms.
  Bytes peers = EncodeFrame(MakePeersFrame(node_ports));
  for (auto& link : links_) {
    DSTRESS_CHECK(TcpWriteAll(link->fd, peers.data(), peers.size()));
  }
  for (NodeId node = 0; node < num_nodes; node++) {
    WireFrame frame;
    DSTRESS_CHECK(TcpReadFrameTimed(links_[node]->fd, &links_[node]->decoder, &frame,
                                    spec.bootstrap_timeout_ms));
    DSTRESS_CHECK(ParseReadyFrame(frame) == node);
  }

  for (NodeId node = 0; node < num_nodes; node++) {
    links_[node]->out.Start(links_[node]->fd);
    links_[node]->reader = std::thread([this, node] { ReaderLoop(node); });
  }
}

TcpNetwork::~TcpNetwork() {
  shutting_down_.store(true, std::memory_order_release);
  // Drain every outgoing queue, then half-close: the nodes see driver EOF,
  // cascade their own shutdown, and our readers exit on their EOFs.
  for (auto& link : links_) {
    link->out.CloseAndJoin();
  }
  for (auto& link : links_) {
    shutdown(link->fd, SHUT_WR);
  }
  for (auto& link : links_) {
    link->reader.join();
    close(link->fd);
  }
  for (auto& link : links_) {
    int status = 0;
    waitpid(link->pid, &status, 0);
  }
}

void TcpNetwork::Send(NodeId from, NodeId to, Bytes message, SessionId session) {
  DSTRESS_DCHECK(from >= 0 && from < num_nodes_ && to >= 0 && to < num_nodes_);
  DSTRESS_CHECK(session != kControlSession);
  traffic_started_.store(true, std::memory_order_release);
  size_t len = message.size();
  WireFrame frame;
  frame.from = from;
  frame.to = to;
  frame.session = session;
  frame.payload = std::move(message);
  Bytes encoded = EncodeFrame(frame);
  Link& link = *links_[from];
  {
    // The shared lock serializes the observer load against SetObserver's
    // exclusive attach (see channel_demux.h); send_mu orders OnSend with
    // the wire per sending bank.
    std::shared_lock<std::shared_mutex> attach_guard(channels_mu_);
    std::lock_guard<std::mutex> lock(link.send_mu);
    NetworkObserver* observer = observer_.load(std::memory_order_acquire);
    if (observer != nullptr) {
      observer->OnSend(from, to, session, frame.payload);
    }
    link.out.Push(std::move(encoded));
  }
  MeterSend(from, len, 1);
}

void TcpNetwork::SendBatch(NodeId from, NodeId to, std::vector<Bytes> messages,
                           SessionId session) {
  DSTRESS_DCHECK(from >= 0 && from < num_nodes_ && to >= 0 && to < num_nodes_);
  DSTRESS_CHECK(session != kControlSession);
  if (messages.empty()) {
    return;
  }
  traffic_started_.store(true, std::memory_order_release);
  uint64_t total_len = 0;
  size_t count = messages.size();
  std::vector<Bytes> encoded;
  encoded.reserve(count);
  WireFrame frame;
  frame.from = from;
  frame.to = to;
  frame.session = session;
  std::vector<Bytes> payloads = std::move(messages);
  for (Bytes& payload : payloads) {
    total_len += payload.size();
    frame.payload = std::move(payload);
    encoded.push_back(EncodeFrame(frame));
    payload = std::move(frame.payload);  // keep for the observer pass
  }
  Link& link = *links_[from];
  {
    std::shared_lock<std::shared_mutex> attach_guard(channels_mu_);
    std::lock_guard<std::mutex> lock(link.send_mu);
    NetworkObserver* observer = observer_.load(std::memory_order_acquire);
    if (observer != nullptr) {
      for (const Bytes& payload : payloads) {
        observer->OnSend(from, to, session, payload);
      }
    }
    link.out.PushAll(std::move(encoded));
  }
  MeterSend(from, total_len, count);
}

void TcpNetwork::ReaderLoop(NodeId bank) {
  Link& link = *links_[bank];
  WireFrame frame;
  while (TcpReadFrame(link.fd, &link.decoder, &frame)) {
    // A bank only forwards frames addressed to itself.
    DSTRESS_CHECK(frame.to == bank && frame.from >= 0 && frame.from < num_nodes_);
    Channel& ch = ChannelFor(ChannelKey{frame.from, frame.to, frame.session});
    {
      std::lock_guard<std::mutex> lock(ch.mu);
      ch.queued_bytes += frame.payload.size();
      ch.queue.push_back(std::move(frame.payload));
      CheckWatermark(ch);
    }
    ch.cv.notify_one();
  }
  // EOF is the shutdown cascade finishing; mid-run it means a bank died.
  DSTRESS_CHECK(shutting_down_.load(std::memory_order_acquire));
}

}  // namespace dstress::net
