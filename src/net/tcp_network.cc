#include "src/net/tcp_network.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <shared_mutex>
#include <string>
#include <utility>

#include "src/common/check.h"
#include "src/net/tcp_node.h"

namespace dstress::net {

void TcpNetwork::SpawnNodes(const TransportSpec& spec, int listen_fd, int rendezvous_port) {
  // Spawned nodes must dial a concrete address even when the driver's
  // listener binds a wildcard interface.
  const std::string& dial_host = spec.advertise_host.empty() ? spec.host : spec.advertise_host;
  for (NodeId node = 0; node < num_nodes_; node++) {
    pid_t pid = fork();
    DSTRESS_CHECK(pid >= 0);
    if (pid != 0) {
      links_[node] = std::make_unique<Link>();  // fd filled in at HELLO time
      links_[node]->pid = pid;
      continue;
    }
    if (spec.node_program.empty()) {
      // Fork mode: run the node loop directly in the child. Fork happens
      // before this transport creates any thread; callers construct the
      // transport before their worker pools for the same reason.
      close(listen_fd);
      TcpNodeConfig config;
      config.node_id = node;
      config.num_nodes = num_nodes_;
      config.driver_host = dial_host;
      config.driver_port = rendezvous_port;
      config.bootstrap_timeout_ms = spec.bootstrap_timeout_ms;
      _exit(RunTcpNode(config) == 0 ? 0 : 1);
    }
    // Exec mode: spawn the dstress_node runner (the real one-process-per-
    // bank deployment shape). The listen fd is CLOEXEC.
    std::string node_arg = std::to_string(node);
    std::string n_arg = std::to_string(num_nodes_);
    std::string driver_arg = dial_host + ":" + std::to_string(rendezvous_port);
    std::string timeout_arg = std::to_string(spec.bootstrap_timeout_ms);
    execl(spec.node_program.c_str(), spec.node_program.c_str(), "--node", node_arg.c_str(),
          "--num-nodes", n_arg.c_str(), "--driver", driver_arg.c_str(),
          "--bootstrap-timeout-ms", timeout_arg.c_str(), static_cast<char*>(nullptr));
    _exit(127);
  }
}

TcpNetwork::TcpNetwork(int num_nodes, const TransportSpec& spec)
    : ChannelDemuxTransport(num_nodes, spec.options) {
  links_.resize(num_nodes);

  // Rendezvous: bind first so every node can dial immediately. The bind
  // interface may differ from the address nodes dial (listen_host
  // "0.0.0.0" on a multi-homed driver).
  const std::string& bind_host = spec.listen_host.empty() ? spec.host : spec.listen_host;
  if (spec.external_nodes && spec.port == 0) {
    std::fprintf(stderr, "tcp bootstrap: external_nodes needs a fixed rendezvous port"
                 " (operators must know where to point dstress_node)\n");
    DSTRESS_CHECK(false);
  }
  DSTRESS_CHECK(spec.node_endpoints.empty() ||
                static_cast<int>(spec.node_endpoints.size()) == num_nodes);
  int listen_fd = TcpListen(bind_host, spec.port, /*backlog=*/num_nodes);
  fcntl(listen_fd, F_SETFD, FD_CLOEXEC);
  int rendezvous_port = TcpListenPort(listen_fd);
  if (!spec.external_nodes) {
    SpawnNodes(spec, listen_fd, rendezvous_port);
  }

  // HELLO: map each accepted connection to its bank and learn the mesh
  // endpoint it advertises to its peers.
  std::vector<PeerEndpoint> endpoints(num_nodes);
  for (int pending = num_nodes; pending > 0; pending--) {
    int fd = TcpAccept(listen_fd, spec.bootstrap_timeout_ms);
    if (fd < 0) {
      std::fprintf(stderr, "tcp bootstrap: only %d of %d banks registered within %d ms;"
                   " aborting (a bank process never dialed %s:%d)\n",
                   num_nodes - pending, num_nodes, spec.bootstrap_timeout_ms,
                   bind_host.c_str(), rendezvous_port);
      DSTRESS_CHECK(false);
    }
    FrameDecoder decoder;
    WireFrame frame;
    DSTRESS_CHECK(TcpReadFrameTimed(fd, &decoder, &frame, spec.bootstrap_timeout_ms));
    NodeId node = -1;
    PeerEndpoint endpoint;
    ParseHelloFrame(frame, &node, &endpoint);
    DSTRESS_CHECK(node >= 0 && node < num_nodes);
    if (spec.external_nodes && links_[node] == nullptr) {
      links_[node] = std::make_unique<Link>();  // pid stays -1: not ours to reap
    }
    if (links_[node]->fd >= 0) {
      std::fprintf(stderr, "tcp bootstrap: bank %d registered twice (second HELLO advertised"
                   " %s) — duplicate --bank in the deployment?\n",
                   node, endpoint.ToString().c_str());
      DSTRESS_CHECK(false);
    }
    if (!spec.node_endpoints.empty()) {
      const PeerEndpoint& expected = spec.node_endpoints[node];
      if ((!expected.host.empty() && expected.host != endpoint.host) ||
          (expected.port != 0 && expected.port != endpoint.port)) {
        std::fprintf(stderr, "tcp bootstrap: bank %d advertised %s but the scenario placed it"
                     " at %s\n", node, endpoint.ToString().c_str(),
                     expected.ToString().c_str());
        DSTRESS_CHECK(false);
      }
    }
    links_[node]->fd = fd;
    links_[node]->decoder = std::move(decoder);
    endpoints[node] = std::move(endpoint);
  }
  close(listen_fd);

  // PEERS out, READY back: the mesh is up once every bank confirms.
  Bytes peers = EncodeFrame(MakePeersFrame(endpoints));
  for (auto& link : links_) {
    DSTRESS_CHECK(TcpWriteAll(link->fd, peers.data(), peers.size()));
  }
  for (NodeId node = 0; node < num_nodes; node++) {
    WireFrame frame;
    DSTRESS_CHECK(TcpReadFrameTimed(links_[node]->fd, &links_[node]->decoder, &frame,
                                    spec.bootstrap_timeout_ms));
    DSTRESS_CHECK(ParseReadyFrame(frame) == node);
  }

  for (NodeId node = 0; node < num_nodes; node++) {
    links_[node]->out.Start(links_[node]->fd);
    links_[node]->reader = std::thread([this, node] { ReaderLoop(node); });
  }
}

TcpNetwork::~TcpNetwork() {
  shutting_down_.store(true, std::memory_order_release);
  // Drain every outgoing queue, then half-close: the nodes see driver EOF,
  // cascade their own shutdown, and our readers exit on their EOFs.
  for (auto& link : links_) {
    link->out.CloseAndJoin();
  }
  for (auto& link : links_) {
    shutdown(link->fd, SHUT_WR);
  }
  for (auto& link : links_) {
    link->reader.join();
    close(link->fd);
  }
  for (auto& link : links_) {
    if (link->pid > 0) {  // external nodes are not our children
      int status = 0;
      waitpid(link->pid, &status, 0);
    }
  }
}

void TcpNetwork::Send(NodeId from, NodeId to, Bytes message, SessionId session) {
  DSTRESS_DCHECK(from >= 0 && from < num_nodes_ && to >= 0 && to < num_nodes_);
  DSTRESS_CHECK(session != kControlSession);
  traffic_started_.store(true, std::memory_order_release);
  size_t len = message.size();
  WireFrame frame;
  frame.from = from;
  frame.to = to;
  frame.session = session;
  frame.payload = std::move(message);
  Bytes encoded = EncodeFrame(frame);
  Link& link = *links_[from];
  {
    // The shared lock serializes the observer load against SetObserver's
    // exclusive attach (see channel_demux.h); send_mu orders OnSend with
    // the wire per sending bank.
    std::shared_lock<std::shared_mutex> attach_guard(channels_mu_);
    std::lock_guard<std::mutex> lock(link.send_mu);
    NetworkObserver* observer = observer_.load(std::memory_order_acquire);
    if (observer != nullptr) {
      observer->OnSend(from, to, session, frame.payload);
    }
    link.out.Push(std::move(encoded));
  }
  MeterSend(from, len, 1);
}

void TcpNetwork::SendBatch(NodeId from, NodeId to, std::vector<Bytes> messages,
                           SessionId session) {
  DSTRESS_DCHECK(from >= 0 && from < num_nodes_ && to >= 0 && to < num_nodes_);
  DSTRESS_CHECK(session != kControlSession);
  if (messages.empty()) {
    return;
  }
  traffic_started_.store(true, std::memory_order_release);
  uint64_t total_len = 0;
  size_t count = messages.size();
  std::vector<Bytes> encoded;
  encoded.reserve(count);
  WireFrame frame;
  frame.from = from;
  frame.to = to;
  frame.session = session;
  std::vector<Bytes> payloads = std::move(messages);
  for (Bytes& payload : payloads) {
    total_len += payload.size();
    frame.payload = std::move(payload);
    encoded.push_back(EncodeFrame(frame));
    payload = std::move(frame.payload);  // keep for the observer pass
  }
  Link& link = *links_[from];
  {
    std::shared_lock<std::shared_mutex> attach_guard(channels_mu_);
    std::lock_guard<std::mutex> lock(link.send_mu);
    NetworkObserver* observer = observer_.load(std::memory_order_acquire);
    if (observer != nullptr) {
      for (const Bytes& payload : payloads) {
        observer->OnSend(from, to, session, payload);
      }
    }
    link.out.PushAll(std::move(encoded));
  }
  MeterSend(from, total_len, count);
}

void TcpNetwork::ReaderLoop(NodeId bank) {
  Link& link = *links_[bank];
  WireFrame frame;
  while (TcpReadFrame(link.fd, &link.decoder, &frame)) {
    // A bank only forwards frames addressed to itself.
    DSTRESS_CHECK(frame.to == bank && frame.from >= 0 && frame.from < num_nodes_);
    Channel& ch = ChannelFor(ChannelKey{frame.from, frame.to, frame.session});
    {
      std::lock_guard<std::mutex> lock(ch.mu);
      ch.queued_bytes += frame.payload.size();
      ch.queue.push_back(std::move(frame.payload));
      CheckWatermark(ch);
    }
    ch.cv.notify_one();
  }
  // EOF is the shutdown cascade finishing; mid-run it means a bank died.
  DSTRESS_CHECK(shutting_down_.load(std::memory_order_acquire));
}

}  // namespace dstress::net
