#include "src/net/sim_network.h"

#include "src/common/check.h"

namespace dstress::net {

SimNetwork::SimNetwork(int num_nodes) : num_nodes_(num_nodes) {
  DSTRESS_CHECK(num_nodes > 0);
  counters_.reserve(num_nodes);
  for (int i = 0; i < num_nodes; i++) {
    counters_.push_back(std::make_unique<PerNodeCounters>());
  }
}

SimNetwork::Channel& SimNetwork::ChannelFor(const ChannelKey& key) {
  {
    std::shared_lock<std::shared_mutex> read(channels_mu_);
    auto it = channels_.find(key);
    if (it != channels_.end()) {
      return *it->second;
    }
  }
  std::unique_lock<std::shared_mutex> write(channels_mu_);
  auto [it, _] = channels_.try_emplace(key, std::make_unique<Channel>());
  return *it->second;
}

void SimNetwork::Send(NodeId from, NodeId to, Bytes message, SessionId session) {
  DSTRESS_DCHECK(from >= 0 && from < num_nodes_ && to >= 0 && to < num_nodes_);
  size_t len = message.size();
  Channel& ch = ChannelFor(ChannelKey{from, to, session});
  {
    std::lock_guard<std::mutex> lock(ch.mu);
    if (observer_ != nullptr) {
      observer_->OnSend(from, to, session, message);
    }
    ch.queue.push_back(std::move(message));
  }
  ch.cv.notify_one();
  counters_[from]->bytes_sent.fetch_add(len, std::memory_order_relaxed);
  counters_[from]->messages_sent.fetch_add(1, std::memory_order_relaxed);
}

Bytes SimNetwork::Recv(NodeId to, NodeId from, SessionId session) {
  DSTRESS_DCHECK(from >= 0 && from < num_nodes_ && to >= 0 && to < num_nodes_);
  Channel& ch = ChannelFor(ChannelKey{from, to, session});
  Bytes msg;
  {
    std::unique_lock<std::mutex> lock(ch.mu);
    ch.cv.wait(lock, [&ch] { return !ch.queue.empty(); });
    msg = std::move(ch.queue.front());
    ch.queue.pop_front();
    if (observer_ != nullptr) {
      observer_->OnRecv(to, from, session, msg);
    }
  }
  counters_[to]->bytes_received.fetch_add(msg.size(), std::memory_order_relaxed);
  counters_[to]->messages_received.fetch_add(1, std::memory_order_relaxed);
  return msg;
}

TrafficStats SimNetwork::NodeStats(NodeId node) const {
  DSTRESS_CHECK(node >= 0 && node < num_nodes_);
  const PerNodeCounters& c = *counters_[node];
  TrafficStats s;
  s.bytes_sent = c.bytes_sent.load(std::memory_order_relaxed);
  s.bytes_received = c.bytes_received.load(std::memory_order_relaxed);
  s.messages_sent = c.messages_sent.load(std::memory_order_relaxed);
  s.messages_received = c.messages_received.load(std::memory_order_relaxed);
  return s;
}

uint64_t SimNetwork::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& c : counters_) {
    total += c->bytes_sent.load(std::memory_order_relaxed);
  }
  return total;
}

double SimNetwork::AverageBytesPerNode() const {
  return static_cast<double>(TotalBytes()) / num_nodes_;
}

uint64_t SimNetwork::MaxBytesPerNode() const {
  uint64_t max_bytes = 0;
  for (const auto& c : counters_) {
    uint64_t b = c->bytes_sent.load(std::memory_order_relaxed) +
                 c->bytes_received.load(std::memory_order_relaxed);
    if (b > max_bytes) {
      max_bytes = b;
    }
  }
  return max_bytes;
}

void SimNetwork::ResetStats() {
  for (auto& c : counters_) {
    c->bytes_sent.store(0, std::memory_order_relaxed);
    c->bytes_received.store(0, std::memory_order_relaxed);
    c->messages_sent.store(0, std::memory_order_relaxed);
    c->messages_received.store(0, std::memory_order_relaxed);
  }
}

}  // namespace dstress::net
