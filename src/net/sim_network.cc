#include "src/net/sim_network.h"

#include "src/common/check.h"

namespace dstress::net {

void SimNetwork::Send(NodeId from, NodeId to, Bytes message, SessionId session) {
  DSTRESS_DCHECK(from >= 0 && from < num_nodes_ && to >= 0 && to < num_nodes_);
  traffic_started_.store(true, std::memory_order_release);
  size_t len = message.size();
  Channel& ch = ChannelFor(ChannelKey{from, to, session});
  {
    std::lock_guard<std::mutex> lock(ch.mu);
    NetworkObserver* observer = observer_.load(std::memory_order_acquire);
    if (observer != nullptr) {
      observer->OnSend(from, to, session, message);
    }
    ch.queued_bytes += len;
    ch.queue.push_back(std::move(message));
    CheckWatermark(ch);
  }
  ch.cv.notify_one();
  MeterSend(from, len, 1);
}

void SimNetwork::SendBatch(NodeId from, NodeId to, std::vector<Bytes> messages,
                           SessionId session) {
  DSTRESS_DCHECK(from >= 0 && from < num_nodes_ && to >= 0 && to < num_nodes_);
  if (messages.empty()) {
    return;
  }
  traffic_started_.store(true, std::memory_order_release);
  uint64_t total_len = 0;
  size_t count = messages.size();
  Channel& ch = ChannelFor(ChannelKey{from, to, session});
  {
    std::lock_guard<std::mutex> lock(ch.mu);
    NetworkObserver* observer = observer_.load(std::memory_order_acquire);
    for (auto& message : messages) {
      if (observer != nullptr) {
        observer->OnSend(from, to, session, message);
      }
      total_len += message.size();
      ch.queued_bytes += message.size();
      ch.queue.push_back(std::move(message));
      // Per message, exactly as repeated Send would check it.
      CheckWatermark(ch);
    }
  }
  ch.cv.notify_all();
  MeterSend(from, total_len, count);
}

}  // namespace dstress::net
