#include "src/net/wire.h"

#include <cstdio>
#include <cstring>

#include "src/common/check.h"

namespace dstress::net {

void AppendFrame(const WireFrame& frame, Bytes* out) {
  DSTRESS_CHECK(frame.payload.size() <= kMaxWirePayload);
  uint32_t length = static_cast<uint32_t>(16 + frame.payload.size());
  size_t at = out->size();
  out->resize(at + 4 + length);
  uint8_t* p = out->data() + at;
  uint32_t from = static_cast<uint32_t>(frame.from);
  uint32_t to = static_cast<uint32_t>(frame.to);
  std::memcpy(p, &length, 4);
  std::memcpy(p + 4, &from, 4);
  std::memcpy(p + 8, &to, 4);
  std::memcpy(p + 12, &frame.session, 8);
  if (!frame.payload.empty()) {
    std::memcpy(p + 20, frame.payload.data(), frame.payload.size());
  }
}

Bytes EncodeFrame(const WireFrame& frame) {
  Bytes out;
  out.reserve(kWireFrameOverhead + frame.payload.size());
  AppendFrame(frame, &out);
  return out;
}

void FrameDecoder::Feed(const uint8_t* data, size_t len) {
  // Compact the consumed prefix before it dominates the buffer.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + len);
}

namespace {

WireFrame ControlFrame(NodeId from, Bytes payload) {
  WireFrame frame;
  frame.from = from;
  frame.to = -1;
  frame.session = kControlSession;
  frame.payload = std::move(payload);
  return frame;
}

// Checks the `type, version` preamble shared by every control frame and
// returns a reader positioned at the type-specific fields.
ByteReader ControlReader(const WireFrame& frame, ControlType expected) {
  DSTRESS_CHECK(frame.session == kControlSession);
  ByteReader reader(frame.payload);
  DSTRESS_CHECK(reader.U8() == expected);
  uint8_t version = reader.U8();
  if (version != kBootstrapProtocolVersion) {
    // Note: version-1 builds predate the version byte entirely, so a v1
    // peer shows up here as whatever byte its payload happened to carry.
    std::fprintf(stderr,
                 "bootstrap: peer speaks handshake protocol version %u, this build speaks %u"
                 " (mixed dstress builds in one deployment? a nonsense version usually means"
                 " a pre-versioned v1 build)\n",
                 version, kBootstrapProtocolVersion);
    DSTRESS_CHECK(false);
  }
  return reader;
}

void WriteEndpoint(ByteWriter* w, const PeerEndpoint& endpoint) {
  DSTRESS_CHECK(endpoint.host.size() <= 255);
  DSTRESS_CHECK(endpoint.port >= 0 && endpoint.port <= 65535);
  w->U8(static_cast<uint8_t>(endpoint.host.size()));
  w->Raw(reinterpret_cast<const uint8_t*>(endpoint.host.data()), endpoint.host.size());
  w->U32(static_cast<uint32_t>(endpoint.port));
}

PeerEndpoint ReadEndpoint(ByteReader* reader) {
  PeerEndpoint endpoint;
  uint8_t len = reader->U8();
  endpoint.host.resize(len);
  reader->Raw(reinterpret_cast<uint8_t*>(endpoint.host.data()), len);
  endpoint.port = static_cast<int>(reader->U32());
  return endpoint;
}

}  // namespace

uint8_t ControlFrameType(const WireFrame& frame) {
  DSTRESS_CHECK(frame.session == kControlSession);
  DSTRESS_CHECK(!frame.payload.empty());
  return frame.payload[0];
}

WireFrame MakeHelloFrame(NodeId node, const PeerEndpoint& endpoint) {
  ByteWriter w;
  w.U8(kCtrlHello);
  w.U8(kBootstrapProtocolVersion);
  w.U32(static_cast<uint32_t>(node));
  WriteEndpoint(&w, endpoint);
  return ControlFrame(node, w.Take());
}

void ParseHelloFrame(const WireFrame& frame, NodeId* node, PeerEndpoint* endpoint) {
  ByteReader reader = ControlReader(frame, kCtrlHello);
  *node = static_cast<NodeId>(reader.U32());
  *endpoint = ReadEndpoint(&reader);
  DSTRESS_CHECK(reader.AtEnd());
}

WireFrame MakePeersFrame(const std::vector<PeerEndpoint>& peers, bool ha_enabled) {
  ByteWriter w;
  w.U8(kCtrlPeers);
  w.U8(kBootstrapProtocolVersion);
  w.U32(static_cast<uint32_t>(peers.size()));
  for (const PeerEndpoint& endpoint : peers) {
    WriteEndpoint(&w, endpoint);
  }
  w.U8(ha_enabled ? 1 : 0);
  return ControlFrame(-1, w.Take());
}

std::vector<PeerEndpoint> ParsePeersFrame(const WireFrame& frame, bool* ha_enabled) {
  ByteReader reader = ControlReader(frame, kCtrlPeers);
  uint32_t count = reader.U32();
  std::vector<PeerEndpoint> peers(count);
  for (uint32_t i = 0; i < count; i++) {
    peers[i] = ReadEndpoint(&reader);
  }
  bool ha = reader.U8() != 0;
  if (ha_enabled != nullptr) *ha_enabled = ha;
  DSTRESS_CHECK(reader.AtEnd());
  return peers;
}

WireFrame MakeMeshHelloFrame(NodeId node) {
  ByteWriter w;
  w.U8(kCtrlMeshHello);
  w.U8(kBootstrapProtocolVersion);
  w.U32(static_cast<uint32_t>(node));
  return ControlFrame(node, w.Take());
}

NodeId ParseMeshHelloFrame(const WireFrame& frame) {
  ByteReader reader = ControlReader(frame, kCtrlMeshHello);
  NodeId node = static_cast<NodeId>(reader.U32());
  DSTRESS_CHECK(reader.AtEnd());
  return node;
}

WireFrame MakeReadyFrame(NodeId node) {
  ByteWriter w;
  w.U8(kCtrlReady);
  w.U8(kBootstrapProtocolVersion);
  w.U32(static_cast<uint32_t>(node));
  return ControlFrame(node, w.Take());
}

NodeId ParseReadyFrame(const WireFrame& frame) {
  ByteReader reader = ControlReader(frame, kCtrlReady);
  NodeId node = static_cast<NodeId>(reader.U32());
  DSTRESS_CHECK(reader.AtEnd());
  return node;
}

WireFrame MakeHeartbeatFrame(uint64_t seq) {
  ByteWriter w;
  w.U8(kCtrlHeartbeat);
  w.U8(kBootstrapProtocolVersion);
  w.U64(seq);
  return ControlFrame(-1, w.Take());
}

uint64_t ParseHeartbeatFrame(const WireFrame& frame) {
  ByteReader reader = ControlReader(frame, kCtrlHeartbeat);
  uint64_t seq = reader.U64();
  DSTRESS_CHECK(reader.AtEnd());
  return seq;
}

WireFrame MakeHeartbeatAckFrame(NodeId node, uint64_t seq) {
  ByteWriter w;
  w.U8(kCtrlHeartbeatAck);
  w.U8(kBootstrapProtocolVersion);
  w.U32(static_cast<uint32_t>(node));
  w.U64(seq);
  return ControlFrame(node, w.Take());
}

void ParseHeartbeatAckFrame(const WireFrame& frame, NodeId* node, uint64_t* seq) {
  ByteReader reader = ControlReader(frame, kCtrlHeartbeatAck);
  *node = static_cast<NodeId>(reader.U32());
  *seq = reader.U64();
  DSTRESS_CHECK(reader.AtEnd());
}

WireFrame MakeResumeHelloFrame(NodeId node, const PeerEndpoint& endpoint, bool full_mesh) {
  ByteWriter w;
  w.U8(kCtrlResumeHello);
  w.U8(kBootstrapProtocolVersion);
  w.U32(static_cast<uint32_t>(node));
  WriteEndpoint(&w, endpoint);
  w.U8(full_mesh ? 1 : 0);
  return ControlFrame(node, w.Take());
}

void ParseResumeHelloFrame(const WireFrame& frame, NodeId* node, PeerEndpoint* endpoint,
                           bool* full_mesh) {
  ByteReader reader = ControlReader(frame, kCtrlResumeHello);
  *node = static_cast<NodeId>(reader.U32());
  *endpoint = ReadEndpoint(&reader);
  *full_mesh = reader.U8() != 0;
  DSTRESS_CHECK(reader.AtEnd());
}

namespace {

WireFrame MakeNodeOnlyFrame(ControlType type, NodeId node) {
  ByteWriter w;
  w.U8(type);
  w.U8(kBootstrapProtocolVersion);
  w.U32(static_cast<uint32_t>(node));
  return ControlFrame(node, w.Take());
}

NodeId ParseNodeOnlyFrame(const WireFrame& frame, ControlType type) {
  ByteReader reader = ControlReader(frame, type);
  NodeId node = static_cast<NodeId>(reader.U32());
  DSTRESS_CHECK(reader.AtEnd());
  return node;
}

}  // namespace

WireFrame MakeMeshResumeFrame(NodeId node) { return MakeNodeOnlyFrame(kCtrlMeshResume, node); }

NodeId ParseMeshResumeFrame(const WireFrame& frame) {
  return ParseNodeOnlyFrame(frame, kCtrlMeshResume);
}

WireFrame MakeMeshResumeOkFrame(NodeId node) { return MakeNodeOnlyFrame(kCtrlMeshResumeOk, node); }

NodeId ParseMeshResumeOkFrame(const WireFrame& frame) {
  return ParseNodeOnlyFrame(frame, kCtrlMeshResumeOk);
}

WireFrame MakeResumeReadyFrame(NodeId node) { return MakeNodeOnlyFrame(kCtrlResumeReady, node); }

NodeId ParseResumeReadyFrame(const WireFrame& frame) {
  return ParseNodeOnlyFrame(frame, kCtrlResumeReady);
}

WireFrame MakeShutdownFrame() {
  ByteWriter w;
  w.U8(kCtrlShutdown);
  w.U8(kBootstrapProtocolVersion);
  return ControlFrame(-1, w.Take());
}

void ParseShutdownFrame(const WireFrame& frame) {
  ByteReader reader = ControlReader(frame, kCtrlShutdown);
  DSTRESS_CHECK(reader.AtEnd());
}

bool FrameDecoder::Next(WireFrame* out, Bytes* raw) {
  if (buffered_bytes() < 4) {
    return false;
  }
  uint32_t length = 0;
  std::memcpy(&length, buf_.data() + pos_, 4);
  DSTRESS_CHECK(length >= 16 && length - 16 <= kMaxWirePayload);
  if (buffered_bytes() < 4 + static_cast<size_t>(length)) {
    return false;
  }
  const uint8_t* p = buf_.data() + pos_;
  uint32_t from = 0;
  uint32_t to = 0;
  std::memcpy(&from, p + 4, 4);
  std::memcpy(&to, p + 8, 4);
  std::memcpy(&out->session, p + 12, 8);
  out->from = static_cast<NodeId>(static_cast<int32_t>(from));
  out->to = static_cast<NodeId>(static_cast<int32_t>(to));
  out->payload.assign(p + 20, p + 4 + length);
  if (raw != nullptr) {
    raw->assign(p, p + 4 + length);
  }
  pos_ += 4 + static_cast<size_t>(length);
  return true;
}

}  // namespace dstress::net
