#include "src/net/wire.h"

#include <cstring>

#include "src/common/check.h"

namespace dstress::net {

void AppendFrame(const WireFrame& frame, Bytes* out) {
  DSTRESS_CHECK(frame.payload.size() <= kMaxWirePayload);
  uint32_t length = static_cast<uint32_t>(16 + frame.payload.size());
  size_t at = out->size();
  out->resize(at + 4 + length);
  uint8_t* p = out->data() + at;
  uint32_t from = static_cast<uint32_t>(frame.from);
  uint32_t to = static_cast<uint32_t>(frame.to);
  std::memcpy(p, &length, 4);
  std::memcpy(p + 4, &from, 4);
  std::memcpy(p + 8, &to, 4);
  std::memcpy(p + 12, &frame.session, 8);
  if (!frame.payload.empty()) {
    std::memcpy(p + 20, frame.payload.data(), frame.payload.size());
  }
}

Bytes EncodeFrame(const WireFrame& frame) {
  Bytes out;
  out.reserve(kWireFrameOverhead + frame.payload.size());
  AppendFrame(frame, &out);
  return out;
}

void FrameDecoder::Feed(const uint8_t* data, size_t len) {
  // Compact the consumed prefix before it dominates the buffer.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + len);
}

bool FrameDecoder::Next(WireFrame* out, Bytes* raw) {
  if (buffered_bytes() < 4) {
    return false;
  }
  uint32_t length = 0;
  std::memcpy(&length, buf_.data() + pos_, 4);
  DSTRESS_CHECK(length >= 16 && length - 16 <= kMaxWirePayload);
  if (buffered_bytes() < 4 + static_cast<size_t>(length)) {
    return false;
  }
  const uint8_t* p = buf_.data() + pos_;
  uint32_t from = 0;
  uint32_t to = 0;
  std::memcpy(&from, p + 4, 4);
  std::memcpy(&to, p + 8, 4);
  std::memcpy(&out->session, p + 12, 8);
  out->from = static_cast<NodeId>(static_cast<int32_t>(from));
  out->to = static_cast<NodeId>(static_cast<int32_t>(to));
  out->payload.assign(p + 20, p + 4 + length);
  if (raw != nullptr) {
    raw->assign(p, p + 4 + length);
  }
  pos_ += 4 + static_cast<size_t>(length);
  return true;
}

}  // namespace dstress::net
