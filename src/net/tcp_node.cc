#include "src/net/tcp_node.h"

#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <thread>
#include <utility>

#include "src/common/check.h"
#include "src/net/tcp_socket.h"

namespace dstress::net {

namespace {

enum ControlType : uint8_t {
  kHello = 1,
  kPeers = 2,
  kMeshHello = 3,
  kReady = 4,
};

WireFrame ControlFrame(NodeId from, Bytes payload) {
  WireFrame frame;
  frame.from = from;
  frame.to = -1;
  frame.session = kControlSession;
  frame.payload = std::move(payload);
  return frame;
}

ByteReader ControlReader(const WireFrame& frame, ControlType expected) {
  DSTRESS_CHECK(frame.session == kControlSession);
  ByteReader reader(frame.payload);
  DSTRESS_CHECK(reader.U8() == expected);
  return reader;
}

}  // namespace

WireFrame MakeHelloFrame(NodeId node, int listen_port) {
  ByteWriter w;
  w.U8(kHello);
  w.U32(static_cast<uint32_t>(node));
  w.U32(static_cast<uint32_t>(listen_port));
  return ControlFrame(node, w.Take());
}

void ParseHelloFrame(const WireFrame& frame, NodeId* node, int* listen_port) {
  ByteReader reader = ControlReader(frame, kHello);
  *node = static_cast<NodeId>(reader.U32());
  *listen_port = static_cast<int>(reader.U32());
  DSTRESS_CHECK(reader.AtEnd());
}

WireFrame MakePeersFrame(const std::vector<int>& listen_ports) {
  ByteWriter w;
  w.U8(kPeers);
  w.U32(static_cast<uint32_t>(listen_ports.size()));
  for (int port : listen_ports) {
    w.U32(static_cast<uint32_t>(port));
  }
  return ControlFrame(-1, w.Take());
}

std::vector<int> ParsePeersFrame(const WireFrame& frame) {
  ByteReader reader = ControlReader(frame, kPeers);
  uint32_t count = reader.U32();
  std::vector<int> ports(count);
  for (uint32_t i = 0; i < count; i++) {
    ports[i] = static_cast<int>(reader.U32());
  }
  DSTRESS_CHECK(reader.AtEnd());
  return ports;
}

WireFrame MakeMeshHelloFrame(NodeId node) {
  ByteWriter w;
  w.U8(kMeshHello);
  w.U32(static_cast<uint32_t>(node));
  return ControlFrame(node, w.Take());
}

NodeId ParseMeshHelloFrame(const WireFrame& frame) {
  ByteReader reader = ControlReader(frame, kMeshHello);
  NodeId node = static_cast<NodeId>(reader.U32());
  DSTRESS_CHECK(reader.AtEnd());
  return node;
}

WireFrame MakeReadyFrame(NodeId node) {
  ByteWriter w;
  w.U8(kReady);
  w.U32(static_cast<uint32_t>(node));
  return ControlFrame(node, w.Take());
}

NodeId ParseReadyFrame(const WireFrame& frame) {
  ByteReader reader = ControlReader(frame, kReady);
  NodeId node = static_cast<NodeId>(reader.U32());
  DSTRESS_CHECK(reader.AtEnd());
  return node;
}

int RunTcpNode(const TcpNodeConfig& config) {
  const int n = config.num_nodes;
  const NodeId self = config.node_id;
  const int timeout = config.bootstrap_timeout_ms;
  DSTRESS_CHECK(self >= 0 && self < n);

  // Rendezvous: listen first, then report the assigned port to the driver.
  int listen_fd = TcpListen(config.driver_host, /*port=*/0, /*backlog=*/n);
  int my_port = TcpListenPort(listen_fd);
  int driver_fd = TcpConnect(config.driver_host, config.driver_port, timeout);
  {
    Bytes hello = EncodeFrame(MakeHelloFrame(self, my_port));
    DSTRESS_CHECK(TcpWriteAll(driver_fd, hello.data(), hello.size()));
  }
  FrameDecoder driver_decoder;
  WireFrame frame;
  DSTRESS_CHECK(TcpReadFrameTimed(driver_fd, &driver_decoder, &frame, timeout));
  std::vector<int> peer_ports = ParsePeersFrame(frame);
  DSTRESS_CHECK(static_cast<int>(peer_ports.size()) == n);

  // Mesh: dial every lower id, accept from every higher id. The MESH_HELLO
  // maps each accepted socket to its NodeId.
  std::vector<int> peer_fd(n, -1);
  std::vector<FrameDecoder> peer_decoder(n);
  for (NodeId j = 0; j < self; j++) {
    peer_fd[j] = TcpConnect(config.driver_host, peer_ports[j], timeout);
    Bytes mesh_hello = EncodeFrame(MakeMeshHelloFrame(self));
    DSTRESS_CHECK(TcpWriteAll(peer_fd[j], mesh_hello.data(), mesh_hello.size()));
  }
  for (int pending = n - 1 - self; pending > 0; pending--) {
    int fd = TcpAccept(listen_fd, timeout);
    FrameDecoder decoder;
    WireFrame mesh_hello;
    DSTRESS_CHECK(TcpReadFrameTimed(fd, &decoder, &mesh_hello, timeout));
    NodeId peer = ParseMeshHelloFrame(mesh_hello);
    DSTRESS_CHECK(peer > self && peer < n && peer_fd[peer] == -1);
    peer_fd[peer] = fd;
    peer_decoder[peer] = std::move(decoder);
  }
  close(listen_fd);
  {
    Bytes ready = EncodeFrame(MakeReadyFrame(self));
    DSTRESS_CHECK(TcpWriteAll(driver_fd, ready.data(), ready.size()));
  }

  // Data phase: per-peer writer queues keep forwarding non-blocking.
  FrameWriterQueue upstream;
  upstream.Start(driver_fd);
  std::vector<std::unique_ptr<FrameWriterQueue>> outbound(n);
  for (NodeId j = 0; j < n; j++) {
    if (peer_fd[j] >= 0) {
      outbound[j] = std::make_unique<FrameWriterQueue>();
      outbound[j]->Start(peer_fd[j]);
    }
  }

  // Mesh readers: everything a peer sends us is addressed to this bank and
  // goes up to the driver. A reader exits on its peer's EOF (that peer has
  // finished its own shutdown).
  std::vector<std::thread> mesh_readers;
  for (NodeId j = 0; j < n; j++) {
    if (peer_fd[j] < 0) {
      continue;
    }
    mesh_readers.emplace_back([&, j] {
      WireFrame incoming;
      Bytes raw;
      while (TcpReadFrame(peer_fd[j], &peer_decoder[j], &incoming, &raw)) {
        DSTRESS_CHECK(incoming.to == self);
        upstream.Push(std::move(raw));
      }
    });
  }

  // Driver reader (this thread): route our bank's outgoing frames onto the
  // mesh verbatim; a self-send loops straight back up.
  Bytes raw;
  while (TcpReadFrame(driver_fd, &driver_decoder, &frame, &raw)) {
    DSTRESS_CHECK(frame.from == self && frame.to >= 0 && frame.to < n);
    if (frame.to == self) {
      upstream.Push(std::move(raw));
    } else {
      outbound[frame.to]->Push(std::move(raw));
    }
  }

  // Driver EOF: drain and half-close every mesh link, wait for the peers'
  // half-closes, then flush the upstream queue and leave. Ordering matters:
  // the upstream socket must stay open until every mesh reader has drained,
  // or late frames from slower peers would be dropped.
  for (NodeId j = 0; j < n; j++) {
    if (outbound[j] != nullptr) {
      outbound[j]->CloseAndJoin();
      shutdown(peer_fd[j], SHUT_WR);
    }
  }
  for (std::thread& reader : mesh_readers) {
    reader.join();
  }
  upstream.CloseAndJoin();
  shutdown(driver_fd, SHUT_WR);
  for (NodeId j = 0; j < n; j++) {
    if (peer_fd[j] >= 0) {
      close(peer_fd[j]);
    }
  }
  close(driver_fd);
  return 0;
}

}  // namespace dstress::net
