#include "src/net/tcp_node.h"

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <shared_mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/net/tcp_socket.h"

namespace dstress::net {

namespace {

// One bank's relay session. The plain bootstrap path is the non-HA flow
// unchanged; the HA additions (heartbeat acks, the mesh-resume acceptor,
// driver reconnection, --resume rejoin) only activate when the PEERS frame
// carries the ha flag. Thread shape in HA mode:
//
//   relay (main)  reads the driver socket, routes to mesh/upstream
//   mesh readers  one per peer link, push inbound frames upstream
//   acceptor      accepts MESH_RESUME dials from restarted peers
//
// mesh_mu_ guards the peer-link table (readers of it: relay pushes, with
// the lock shared; writer: the acceptor splicing a fresh socket in,
// exclusive). up_mu_ guards the upstream queue the same way (shared for
// pushes, exclusive while ReconnectDriver swaps it).
class NodeSession {
 public:
  explicit NodeSession(const TcpNodeConfig& config)
      : config_(config),
        n_(config.num_nodes),
        self_(config.node_id),
        timeout_(config.bootstrap_timeout_ms) {}

  int Run() {
    DSTRESS_CHECK(self_ >= 0 && self_ < n_);
    peers_.reserve(static_cast<size_t>(n_));
    for (NodeId j = 0; j < n_; j++) {
      peers_.push_back(std::make_unique<PeerLink>());
    }
    Listen();
    if (config_.resume) {
      BootstrapResume();
    } else {
      BootstrapFresh();
    }
    StartDataPlane();
    return RelayLoop();
  }

 private:
  // One mesh link to a peer bank. `out` is a pointer because a writer queue
  // whose peer died stays quiet forever — a mesh resume installs a fresh
  // queue instead of reviving the old one.
  struct PeerLink {
    int fd = -1;
    FrameDecoder decoder;  // holds bytes read past the handshake frame
    std::unique_ptr<FrameWriterQueue> out;
    std::thread reader;
  };

  void Listen() {
    // Rendezvous: listen first, then report the advertised endpoint to the
    // driver. The listen interface defaults to the wildcard, which is right
    // on any machine — the advertised host (below) is what peers dial.
    const std::string listen_host =
        config_.listen_host.empty() ? "0.0.0.0" : config_.listen_host;
    listen_fd_ = TcpListen(listen_host, config_.listen_port, /*backlog=*/n_);
    my_endpoint_.port = TcpListenPort(listen_fd_);
  }

  void ResolveAdvertiseHost() {
    if (!config_.advertise_host.empty()) {
      my_endpoint_.host = config_.advertise_host;
    } else if (!config_.listen_host.empty() && config_.listen_host != "0.0.0.0") {
      my_endpoint_.host = config_.listen_host;
    } else {
      // The address this machine has on the route to the driver — what
      // peers on that network can dial.
      my_endpoint_.host = TcpLocalHost(driver_fd_);
    }
  }

  void BootstrapFresh() {
    driver_fd_ = TcpConnect(config_.driver_host, config_.driver_port, timeout_);
    ResolveAdvertiseHost();
    {
      Bytes hello = EncodeFrame(MakeHelloFrame(self_, my_endpoint_));
      DSTRESS_CHECK(TcpWriteAll(driver_fd_, hello.data(), hello.size()));
    }
    WireFrame frame;
    DSTRESS_CHECK(TcpReadFrameTimed(driver_fd_, &driver_decoder_, &frame, timeout_));
    peer_endpoints_ = ParsePeersFrame(frame, &ha_);
    DSTRESS_CHECK(static_cast<int>(peer_endpoints_.size()) == n_);

    // Mesh: dial every lower id at its advertised endpoint, accept from
    // every higher id. The MESH_HELLO maps each accepted socket to its
    // NodeId.
    for (NodeId j = 0; j < self_; j++) {
      PeerLink& pl = *peers_[j];
      pl.fd = TcpConnect(peer_endpoints_[j].host, peer_endpoints_[j].port, timeout_);
      Bytes mesh_hello = EncodeFrame(MakeMeshHelloFrame(self_));
      DSTRESS_CHECK(TcpWriteAll(pl.fd, mesh_hello.data(), mesh_hello.size()));
    }
    for (int pending = n_ - 1 - self_; pending > 0; pending--) {
      std::string accept_error;
      int fd = TcpAccept(listen_fd_, timeout_, &accept_error);
      if (fd < 0) {
        std::fprintf(stderr, "bank %d: bootstrap timed out after %d ms with %d peer link(s)"
                     " still missing (%s); waiting on bank(s):", self_, timeout_, pending,
                     accept_error.c_str());
        for (NodeId j = self_ + 1; j < n_; j++) {
          if (peers_[j]->fd < 0) {
            std::fprintf(stderr, " %d(%s)", j, peer_endpoints_[j].ToString().c_str());
          }
        }
        std::fprintf(stderr, "\n");
        DSTRESS_CHECK(false);
      }
      FrameDecoder decoder;
      WireFrame mesh_hello;
      DSTRESS_CHECK(TcpReadFrameTimed(fd, &decoder, &mesh_hello, timeout_));
      NodeId peer = ParseMeshHelloFrame(mesh_hello);
      DSTRESS_CHECK(peer > self_ && peer < n_ && peers_[peer]->fd == -1);
      peers_[peer]->fd = fd;
      peers_[peer]->decoder = std::move(decoder);
      std::fprintf(stderr, "bank %d: mesh link from bank %d up (%d peer link(s) to go)\n",
                   self_, peer, pending - 1);
    }
    {
      Bytes ready = EncodeFrame(MakeReadyFrame(self_));
      DSTRESS_CHECK(TcpWriteAll(driver_fd_, ready.data(), ready.size()));
    }
  }

  // --resume rejoin (docs/ha.md): a replacement process re-runs this bank's
  // slice of the rendezvous. RESUME_HELLO instead of HELLO, the same PEERS
  // reply, then a MESH_RESUME dial to *every* peer (each splices the fresh
  // socket in place of the dead one and answers MESH_RESUME_OK), then
  // RESUME_READY — after which the driver replays undelivered frames.
  void BootstrapResume() {
    driver_fd_ = TcpConnectBackoff(config_.driver_host, config_.driver_port, timeout_);
    if (driver_fd_ < 0) {
      std::fprintf(stderr, "bank %d: --resume could not reach the driver at %s:%d\n",
                   self_, config_.driver_host.c_str(), config_.driver_port);
      DSTRESS_CHECK(false);
    }
    ResolveAdvertiseHost();
    {
      Bytes hello = EncodeFrame(MakeResumeHelloFrame(self_, my_endpoint_, /*full_mesh=*/true));
      DSTRESS_CHECK(TcpWriteAll(driver_fd_, hello.data(), hello.size()));
    }
    WireFrame frame;
    DSTRESS_CHECK(TcpReadFrameTimed(driver_fd_, &driver_decoder_, &frame, timeout_));
    peer_endpoints_ = ParsePeersFrame(frame, &ha_);
    DSTRESS_CHECK(ha_);  // --resume against a run without the HA layer
    DSTRESS_CHECK(static_cast<int>(peer_endpoints_.size()) == n_);
    for (NodeId j = 0; j < n_; j++) {
      if (j == self_) {
        continue;
      }
      PeerLink& pl = *peers_[j];
      pl.fd = TcpConnect(peer_endpoints_[j].host, peer_endpoints_[j].port, timeout_);
      Bytes req = EncodeFrame(MakeMeshResumeFrame(self_));
      DSTRESS_CHECK(TcpWriteAll(pl.fd, req.data(), req.size()));
      WireFrame ok;
      DSTRESS_CHECK(TcpReadFrameTimed(pl.fd, &pl.decoder, &ok, timeout_));
      DSTRESS_CHECK(ParseMeshResumeOkFrame(ok) == j);
    }
    std::fprintf(stderr, "bank %d: rejoined the mesh with --resume\n", self_);
    {
      Bytes ready = EncodeFrame(MakeResumeReadyFrame(self_));
      DSTRESS_CHECK(TcpWriteAll(driver_fd_, ready.data(), ready.size()));
    }
  }

  void StartDataPlane() {
    upstream_ = std::make_unique<FrameWriterQueue>();
    upstream_->Start(driver_fd_);
    for (NodeId j = 0; j < n_; j++) {
      PeerLink& pl = *peers_[j];
      if (pl.fd < 0) {
        continue;
      }
      pl.out = std::make_unique<FrameWriterQueue>();
      pl.out->Start(pl.fd);
      StartMeshReader(j);
    }
    if (ha_) {
      // The listener stays open: a restarted peer re-dials it with
      // MESH_RESUME mid-run.
      acceptor_ = std::thread([this] { AcceptorLoop(); });
    } else {
      close(listen_fd_);
      listen_fd_ = -1;
    }
  }

  void StartMeshReader(NodeId j) {
    PeerLink& pl = *peers_[j];
    pl.reader = std::thread([this, j, fd = pl.fd, decoder = std::move(pl.decoder)]() mutable {
      MeshReaderLoop(j, fd, std::move(decoder));
    });
  }

  // Mesh reader: everything a peer sends us is addressed to this bank and
  // goes up to the driver. Exits on the peer's EOF — its clean shutdown, or
  // (HA) its death, in which case the acceptor later revives the link.
  void MeshReaderLoop(NodeId j, int fd, FrameDecoder decoder) {
    WireFrame incoming;
    Bytes raw;
    while (TcpReadFrame(fd, &decoder, &incoming, &raw)) {
      DSTRESS_CHECK(incoming.to == self_);
      PushUpstream(std::move(raw));
    }
    if (ha_ && !shutting_down_.load(std::memory_order_acquire)) {
      std::fprintf(stderr, "bank %d: mesh link to bank %d dropped; awaiting its resume\n",
                   self_, j);
    }
  }

  void PushUpstream(Bytes raw) {
    std::shared_lock<std::shared_mutex> guard(up_mu_);
    upstream_->Push(std::move(raw));
  }

  // Accepts MESH_RESUME dials from restarted peers and splices the fresh
  // socket in place of the dead link. HA mode only.
  void AcceptorLoop() {
    while (!shutting_down_.load(std::memory_order_acquire)) {
      int fd = TcpAccept(listen_fd_, /*timeout_ms=*/200);
      if (fd < 0) {
        continue;
      }
      if (shutting_down_.load(std::memory_order_acquire)) {
        close(fd);
        return;
      }
      FrameDecoder decoder;
      WireFrame frame;
      if (!TcpReadFrameTimed(fd, &decoder, &frame, timeout_)) {
        close(fd);  // dialer went away before identifying itself
        continue;
      }
      NodeId peer = ParseMeshResumeFrame(frame);
      DSTRESS_CHECK(peer >= 0 && peer < n_ && peer != self_);
      std::unique_lock<std::shared_mutex> guard(mesh_mu_);
      PeerLink& pl = *peers_[peer];
      if (pl.fd >= 0) {
        shutdown(pl.fd, SHUT_RDWR);  // wake the old reader if EOF hasn't landed yet
      }
      if (pl.reader.joinable()) {
        pl.reader.join();
      }
      if (pl.out != nullptr) {
        pl.out->CloseAndJoin();
      }
      if (pl.fd >= 0) {
        close(pl.fd);
      }
      pl.fd = fd;
      pl.decoder = std::move(decoder);
      pl.out = std::make_unique<FrameWriterQueue>();
      pl.out->Start(fd);
      pl.out->Push(EncodeFrame(MakeMeshResumeOkFrame(self_)));
      StartMeshReader(peer);
      std::fprintf(stderr, "bank %d: mesh link to bank %d resumed\n", self_, peer);
    }
  }

  // An HA node whose driver socket died (driver restart is not supported —
  // this covers transient link drops) re-dials the rendezvous and resumes
  // just its driver session; the mesh is still intact, so full_mesh=false.
  bool ReconnectDriver() {
    int fd = TcpConnectBackoff(config_.driver_host, config_.driver_port, timeout_);
    if (fd < 0) {
      return false;
    }
    Bytes hello = EncodeFrame(MakeResumeHelloFrame(self_, my_endpoint_, /*full_mesh=*/false));
    if (!TcpWriteAll(fd, hello.data(), hello.size())) {
      close(fd);
      return false;
    }
    FrameDecoder decoder;
    WireFrame frame;
    if (!TcpReadFrameTimed(fd, &decoder, &frame, timeout_)) {
      close(fd);
      return false;
    }
    bool ha = false;
    std::vector<PeerEndpoint> peers = ParsePeersFrame(frame, &ha);
    DSTRESS_CHECK(ha && static_cast<int>(peers.size()) == n_);
    peer_endpoints_ = std::move(peers);
    {
      // Swap the upstream queue under the exclusive lock so mesh readers
      // never push into a queue whose socket is being retired.
      std::unique_lock<std::shared_mutex> guard(up_mu_);
      upstream_->CloseAndJoin();
      Bytes ready = EncodeFrame(MakeResumeReadyFrame(self_));
      DSTRESS_CHECK(TcpWriteAll(fd, ready.data(), ready.size()));
      close(driver_fd_);
      driver_fd_ = fd;
      driver_decoder_ = std::move(decoder);
      upstream_ = std::make_unique<FrameWriterQueue>();
      upstream_->Start(fd);
    }
    std::fprintf(stderr, "bank %d: driver session resumed\n", self_);
    return true;
  }

  // Driver reader (the main thread): route our bank's outgoing frames onto
  // the mesh verbatim; a self-send loops straight back up. HA control
  // frames are answered here, before the from==self relay invariant.
  int RelayLoop() {
    WireFrame frame;
    Bytes raw;
    for (;;) {
      if (!TcpReadFrame(driver_fd_, &driver_decoder_, &frame, &raw)) {
        if (!ha_ || shutdown_seen_) {
          break;  // deliberate teardown: run the shutdown cascade
        }
        std::fprintf(stderr, "bank %d: driver link dropped; re-dialing for session resume\n",
                     self_);
        if (!ReconnectDriver()) {
          std::fprintf(stderr, "bank %d: driver session resume failed; exiting\n", self_);
          ShutdownCascade();
          return 1;
        }
        continue;
      }
      if (frame.session == kControlSession) {
        uint8_t type = ControlFrameType(frame);
        if (type == kCtrlHeartbeat) {
          uint64_t seq = ParseHeartbeatFrame(frame);
          PushUpstream(EncodeFrame(MakeHeartbeatAckFrame(self_, seq)));
          continue;
        }
        if (type == kCtrlShutdown) {
          ParseShutdownFrame(frame);
          shutdown_seen_ = true;
          continue;
        }
        std::fprintf(stderr, "bank %d: unexpected control frame type %u from the driver\n",
                     self_, type);
        DSTRESS_CHECK(false);
      }
      DSTRESS_CHECK(frame.from == self_ && frame.to >= 0 && frame.to < n_);
      if (frame.to == self_) {
        PushUpstream(std::move(raw));
      } else {
        std::shared_lock<std::shared_mutex> guard(mesh_mu_);
        peers_[frame.to]->out->Push(std::move(raw));
      }
    }
    ShutdownCascade();
    return 0;
  }

  // Driver EOF: drain and half-close every mesh link, wait for the peers'
  // half-closes, then flush the upstream queue and leave. Ordering matters:
  // the upstream socket must stay open until every mesh reader has drained,
  // or late frames from slower peers would be dropped.
  void ShutdownCascade() {
    shutting_down_.store(true, std::memory_order_release);
    {
      std::unique_lock<std::shared_mutex> guard(mesh_mu_);
      for (NodeId j = 0; j < n_; j++) {
        PeerLink& pl = *peers_[j];
        if (pl.out != nullptr) {
          pl.out->CloseAndJoin();
          shutdown(pl.fd, SHUT_WR);
        }
      }
    }
    for (NodeId j = 0; j < n_; j++) {
      if (peers_[j]->reader.joinable()) {
        peers_[j]->reader.join();
      }
    }
    {
      std::unique_lock<std::shared_mutex> guard(up_mu_);
      upstream_->CloseAndJoin();
    }
    shutdown(driver_fd_, SHUT_WR);
    if (acceptor_.joinable()) {
      acceptor_.join();  // wakes within one 200 ms accept tick
    }
    if (listen_fd_ >= 0) {
      close(listen_fd_);
      listen_fd_ = -1;
    }
    for (NodeId j = 0; j < n_; j++) {
      if (peers_[j]->fd >= 0) {
        close(peers_[j]->fd);
      }
    }
    close(driver_fd_);
  }

  const TcpNodeConfig config_;
  const int n_;
  const NodeId self_;
  const int timeout_;

  int listen_fd_ = -1;
  PeerEndpoint my_endpoint_;
  int driver_fd_ = -1;
  FrameDecoder driver_decoder_;
  std::vector<PeerEndpoint> peer_endpoints_;
  std::vector<std::unique_ptr<PeerLink>> peers_;  // peers_[self_] unused
  std::shared_mutex mesh_mu_;
  std::shared_mutex up_mu_;
  std::unique_ptr<FrameWriterQueue> upstream_;
  std::thread acceptor_;
  bool ha_ = false;
  std::atomic<bool> shutting_down_{false};
  bool shutdown_seen_ = false;  // relay thread only
};

}  // namespace

int RunTcpNode(const TcpNodeConfig& config) {
  NodeSession session(config);
  return session.Run();
}

}  // namespace dstress::net
