#include "src/net/tcp_node.h"

#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/net/tcp_socket.h"

namespace dstress::net {

int RunTcpNode(const TcpNodeConfig& config) {
  const int n = config.num_nodes;
  const NodeId self = config.node_id;
  const int timeout = config.bootstrap_timeout_ms;
  DSTRESS_CHECK(self >= 0 && self < n);

  // Rendezvous: listen first, then report the advertised endpoint to the
  // driver. The listen interface defaults to the wildcard, which is right
  // on any machine — the advertised host (below) is what peers dial.
  const std::string listen_host = config.listen_host.empty() ? "0.0.0.0" : config.listen_host;
  int listen_fd = TcpListen(listen_host, config.listen_port, /*backlog=*/n);
  int my_port = TcpListenPort(listen_fd);
  int driver_fd = TcpConnect(config.driver_host, config.driver_port, timeout);
  PeerEndpoint my_endpoint;
  my_endpoint.port = my_port;
  if (!config.advertise_host.empty()) {
    my_endpoint.host = config.advertise_host;
  } else if (!config.listen_host.empty() && config.listen_host != "0.0.0.0") {
    my_endpoint.host = config.listen_host;
  } else {
    // The address this machine has on the route to the driver — what peers
    // on that network can dial.
    my_endpoint.host = TcpLocalHost(driver_fd);
  }
  {
    Bytes hello = EncodeFrame(MakeHelloFrame(self, my_endpoint));
    DSTRESS_CHECK(TcpWriteAll(driver_fd, hello.data(), hello.size()));
  }
  FrameDecoder driver_decoder;
  WireFrame frame;
  DSTRESS_CHECK(TcpReadFrameTimed(driver_fd, &driver_decoder, &frame, timeout));
  std::vector<PeerEndpoint> peers = ParsePeersFrame(frame);
  DSTRESS_CHECK(static_cast<int>(peers.size()) == n);

  // Mesh: dial every lower id at its advertised endpoint, accept from every
  // higher id. The MESH_HELLO maps each accepted socket to its NodeId.
  std::vector<int> peer_fd(n, -1);
  std::vector<FrameDecoder> peer_decoder(n);
  for (NodeId j = 0; j < self; j++) {
    peer_fd[j] = TcpConnect(peers[j].host, peers[j].port, timeout);
    Bytes mesh_hello = EncodeFrame(MakeMeshHelloFrame(self));
    DSTRESS_CHECK(TcpWriteAll(peer_fd[j], mesh_hello.data(), mesh_hello.size()));
  }
  for (int pending = n - 1 - self; pending > 0; pending--) {
    int fd = TcpAccept(listen_fd, timeout);
    if (fd < 0) {
      std::fprintf(stderr, "bank %d: bootstrap timed out after %d ms with %d peer link(s)"
                   " still missing\n", self, timeout, pending);
      DSTRESS_CHECK(false);
    }
    FrameDecoder decoder;
    WireFrame mesh_hello;
    DSTRESS_CHECK(TcpReadFrameTimed(fd, &decoder, &mesh_hello, timeout));
    NodeId peer = ParseMeshHelloFrame(mesh_hello);
    DSTRESS_CHECK(peer > self && peer < n && peer_fd[peer] == -1);
    peer_fd[peer] = fd;
    peer_decoder[peer] = std::move(decoder);
  }
  close(listen_fd);
  {
    Bytes ready = EncodeFrame(MakeReadyFrame(self));
    DSTRESS_CHECK(TcpWriteAll(driver_fd, ready.data(), ready.size()));
  }

  // Data phase: per-peer writer queues keep forwarding non-blocking.
  FrameWriterQueue upstream;
  upstream.Start(driver_fd);
  std::vector<std::unique_ptr<FrameWriterQueue>> outbound(n);
  for (NodeId j = 0; j < n; j++) {
    if (peer_fd[j] >= 0) {
      outbound[j] = std::make_unique<FrameWriterQueue>();
      outbound[j]->Start(peer_fd[j]);
    }
  }

  // Mesh readers: everything a peer sends us is addressed to this bank and
  // goes up to the driver. A reader exits on its peer's EOF (that peer has
  // finished its own shutdown).
  std::vector<std::thread> mesh_readers;
  for (NodeId j = 0; j < n; j++) {
    if (peer_fd[j] < 0) {
      continue;
    }
    mesh_readers.emplace_back([&, j] {
      WireFrame incoming;
      Bytes raw;
      while (TcpReadFrame(peer_fd[j], &peer_decoder[j], &incoming, &raw)) {
        DSTRESS_CHECK(incoming.to == self);
        upstream.Push(std::move(raw));
      }
    });
  }

  // Driver reader (this thread): route our bank's outgoing frames onto the
  // mesh verbatim; a self-send loops straight back up.
  Bytes raw;
  while (TcpReadFrame(driver_fd, &driver_decoder, &frame, &raw)) {
    DSTRESS_CHECK(frame.from == self && frame.to >= 0 && frame.to < n);
    if (frame.to == self) {
      upstream.Push(std::move(raw));
    } else {
      outbound[frame.to]->Push(std::move(raw));
    }
  }

  // Driver EOF: drain and half-close every mesh link, wait for the peers'
  // half-closes, then flush the upstream queue and leave. Ordering matters:
  // the upstream socket must stay open until every mesh reader has drained,
  // or late frames from slower peers would be dropped.
  for (NodeId j = 0; j < n; j++) {
    if (outbound[j] != nullptr) {
      outbound[j]->CloseAndJoin();
      shutdown(peer_fd[j], SHUT_WR);
    }
  }
  for (std::thread& reader : mesh_readers) {
    reader.join();
  }
  upstream.CloseAndJoin();
  shutdown(driver_fd, SHUT_WR);
  for (NodeId j = 0; j < n; j++) {
    if (peer_fd[j] >= 0) {
      close(peer_fd[j]);
    }
  }
  close(driver_fd);
  return 0;
}

}  // namespace dstress::net
