#include "src/net/tcp_socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "src/common/check.h"

namespace dstress::net {

namespace {

sockaddr_in MakeAddr(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "'%s' is not a numeric IPv4 address (hostnames are not"
                 " supported)\n", host.c_str());
    DSTRESS_CHECK(false);
  }
  return addr;
}

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

int TcpListen(const std::string& host, int port, int backlog) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  DSTRESS_CHECK(fd >= 0);
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = MakeAddr(host, port);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::fprintf(stderr, "TcpListen: cannot bind %s:%d: %s (not an address on this machine,"
                 " or the port is taken)\n", host.c_str(), port, std::strerror(errno));
    DSTRESS_CHECK(false);
  }
  DSTRESS_CHECK(listen(fd, backlog) == 0);
  return fd;
}

int TcpListenPort(int listen_fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  DSTRESS_CHECK(getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0);
  return static_cast<int>(ntohs(addr.sin_port));
}

int TcpAccept(int listen_fd, int timeout_ms, std::string* error) {
  auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    pollfd p{};
    p.fd = listen_fd;
    p.events = POLLIN;
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    int ready = poll(&p, 1, static_cast<int>(std::max<int64_t>(left.count(), 0)));
    if (ready < 0 && errno == EINTR) {
      continue;
    }
    if (ready == 0) {
      // Bootstrap timeout: nobody dialed in. Surface the poll verdict so a
      // multi-machine operator can tell "nothing arrived" from a socket
      // error that merely looked like silence.
      if (error != nullptr) {
        *error = "poll(listen_fd) saw no incoming connection (errno " +
                 std::to_string(errno) + ": " + std::strerror(errno) + ")";
      }
      return -1;
    }
    DSTRESS_CHECK(ready == 1);
    break;
  }
  int fd = accept(listen_fd, nullptr, nullptr);
  DSTRESS_CHECK(fd >= 0);
  SetNoDelay(fd);
  return fd;
}

std::string TcpLocalHost(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  DSTRESS_CHECK(getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0);
  char buf[INET_ADDRSTRLEN];
  DSTRESS_CHECK(inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof(buf)) != nullptr);
  return buf;
}

int TcpConnect(const std::string& host, int port, int timeout_ms) {
  sockaddr_in addr = MakeAddr(host, port);
  auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    DSTRESS_CHECK(fd >= 0);
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      SetNoDelay(fd);
      return fd;
    }
    int err = errno;
    close(fd);
    // Only "listener not up yet" is transient mid-bootstrap; any other
    // errno is a misconfiguration worth reporting immediately, with the
    // endpoint, instead of burning the whole bootstrap budget.
    if (err != ECONNREFUSED && err != EINTR && err != ETIMEDOUT && err != EAGAIN) {
      std::fprintf(stderr, "TcpConnect %s:%d failed: %s\n", host.c_str(), port,
                   std::strerror(err));
      DSTRESS_CHECK(false);
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      std::fprintf(stderr, "TcpConnect %s:%d timed out after %d ms (last error: %s)\n",
                   host.c_str(), port, timeout_ms, std::strerror(err));
      DSTRESS_CHECK(false);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

int TcpConnectBackoff(const std::string& host, int port, int budget_ms) {
  sockaddr_in addr = MakeAddr(host, port);
  auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(budget_ms);
  int backoff_ms = 10;
  for (;;) {
    int fd = socket(AF_INET, SOCK_STREAM, 0);
    DSTRESS_CHECK(fd >= 0);
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      SetNoDelay(fd);
      return fd;
    }
    int err = errno;
    close(fd);
    if (std::chrono::steady_clock::now() >= deadline) {
      std::fprintf(stderr, "reconnect %s:%d gave up after %d ms (last error: %s)\n",
                   host.c_str(), port, budget_ms, std::strerror(err));
      return -1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    backoff_ms = std::min(backoff_ms * 2, 500);
  }
}

bool TcpWriteAll(int fd, const uint8_t* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    ssize_t n = send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EPIPE || errno == ECONNRESET) {
        return false;
      }
      DSTRESS_CHECK(false);
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

FrameWriterQueue::~FrameWriterQueue() {
  if (writer_.joinable()) {
    CloseAndJoin();
  }
}

void FrameWriterQueue::Start(int fd) {
  fd_ = fd;
  writer_ = std::thread([this] { Loop(); });
}

void FrameWriterQueue::Push(Bytes encoded) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(encoded));
  }
  cv_.notify_one();
}

void FrameWriterQueue::PushAll(std::vector<Bytes> encoded) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& frame : encoded) {
      queue_.push_back(std::move(frame));
    }
  }
  cv_.notify_one();
}

void FrameWriterQueue::CloseAndJoin() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closing_ = true;
  }
  cv_.notify_one();
  writer_.join();
}

namespace {

// Writes all `frames` with gathered sendmsg calls (up to 64 buffers per
// syscall), advancing through partial writes. Returns false if the peer is
// gone; aborts on other errors.
bool TcpWritevAll(int fd, const std::vector<Bytes>& frames) {
  constexpr int kMaxIov = 64;
  size_t next = 0;
  while (next < frames.size()) {
    iovec iov[kMaxIov];
    int count = 0;
    size_t total = 0;
    for (size_t j = next; j < frames.size() && count < kMaxIov; j++, count++) {
      iov[count].iov_base = const_cast<uint8_t*>(frames[j].data());
      iov[count].iov_len = frames[j].size();
      total += frames[j].size();
    }
    size_t written = 0;
    int done = 0;  // fully-sent iovecs in this group
    while (written < total) {
      msghdr msg{};
      msg.msg_iov = iov + done;
      msg.msg_iovlen = static_cast<size_t>(count - done);
      ssize_t n = sendmsg(fd, &msg, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        if (errno == EPIPE || errno == ECONNRESET) {
          return false;
        }
        DSTRESS_CHECK(false);
      }
      written += static_cast<size_t>(n);
      size_t advance = static_cast<size_t>(n);
      while (done < count && advance >= iov[done].iov_len) {
        advance -= iov[done].iov_len;
        done++;
      }
      if (done < count) {
        iov[done].iov_base = static_cast<uint8_t*>(iov[done].iov_base) + advance;
        iov[done].iov_len -= advance;
      }
    }
    next += static_cast<size_t>(count);
  }
  return true;
}

}  // namespace

void FrameWriterQueue::Loop() {
  std::vector<Bytes> batch;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return closing_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // closing_ with nothing left to drain
      }
      batch.assign(std::make_move_iterator(queue_.begin()),
                   std::make_move_iterator(queue_.end()));
      queue_.clear();
    }
    if (!peer_gone_ && !TcpWritevAll(fd_, batch)) {
      peer_gone_ = true;
    }
    batch.clear();
  }
}

bool TcpReadFrame(int fd, FrameDecoder* decoder, WireFrame* out, Bytes* raw) {
  while (!decoder->Next(out, raw)) {
    uint8_t buf[65536];
    ssize_t n = read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == ECONNRESET) {
        return false;
      }
      DSTRESS_CHECK(false);
    }
    if (n == 0) {
      return false;  // clean EOF
    }
    decoder->Feed(buf, static_cast<size_t>(n));
  }
  return true;
}

bool TcpReadFrameTimed(int fd, FrameDecoder* decoder, WireFrame* out, int timeout_ms) {
  auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (!decoder->Next(out)) {
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    int ready = poll(&p, 1, static_cast<int>(std::max<int64_t>(left.count(), 0)));
    if (ready < 0 && errno == EINTR) {
      continue;
    }
    if (ready == 0) {
      std::fprintf(stderr, "bootstrap: no frame arrived within %d ms (a peer stalled"
                   " mid-handshake)\n", timeout_ms);
      DSTRESS_CHECK(false);
    }
    DSTRESS_CHECK(ready == 1);
    uint8_t buf[65536];
    ssize_t n = read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == ECONNRESET) {
        return false;
      }
      DSTRESS_CHECK(false);
    }
    if (n == 0) {
      return false;  // clean EOF
    }
    decoder->Feed(buf, static_cast<size_t>(n));
  }
  return true;
}

}  // namespace dstress::net
