// Thin blocking-socket helpers shared by the TCP transport's driver side
// (tcp_network.cc) and its per-bank node process (tcp_node.cc). IPv4 only,
// numeric addresses; multi-machine placement lives in the PEERS handshake
// (wire.h / docs/wire-protocol.md), not this layer.
#ifndef SRC_NET_TCP_SOCKET_H_
#define SRC_NET_TCP_SOCKET_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/bytes.h"
#include "src/net/wire.h"

namespace dstress::net {

// Binds and listens on host:port (port 0 = OS-assigned) with SO_REUSEADDR
// and TCP_NODELAY-ready defaults. Returns the listening fd; aborts on
// failure.
int TcpListen(const std::string& host, int port, int backlog);

// The port a listening fd is bound to.
int TcpListenPort(int listen_fd);

// Accepts one connection, waiting up to timeout_ms. Returns -1 on timeout
// (so the caller can abort with bootstrap context — who is missing, how
// long it waited); aborts on other errors. Sets TCP_NODELAY on the
// accepted socket. When `error` is non-null a timeout fills it with the
// poll/errno detail for the caller's abort message.
int TcpAccept(int listen_fd, int timeout_ms, std::string* error = nullptr);

// The numeric local (our-side) address of a connected socket — the address
// this machine has on the route to the peer. Nodes use it as the default
// advertised mesh host.
std::string TcpLocalHost(int fd);

// Connects to host:port, retrying briefly (the listener may not be up yet
// during bootstrap) up to timeout_ms; aborts on timeout. TCP_NODELAY set.
int TcpConnect(const std::string& host, int port, int timeout_ms);

// Reconnect variant for the HA layer (docs/ha.md): retries with
// exponential backoff (10 ms doubling, capped at 500 ms) until budget_ms
// runs out, treating every connect failure as transient, and returns -1
// instead of aborting — a resuming bank reports the failure and exits
// rather than taking the deployment down with a CHECK.
int TcpConnectBackoff(const std::string& host, int port, int budget_ms);

// Writes the whole buffer (MSG_NOSIGNAL). Returns false if the peer is
// gone; aborts on other errors.
bool TcpWriteAll(int fd, const uint8_t* data, size_t len);

// Blocking-reads into `decoder` until it yields a frame. Returns false on
// clean EOF with no complete frame pending; aborts on read errors. `raw`
// (optional) receives the frame's exact wire bytes for verbatim relaying.
bool TcpReadFrame(int fd, FrameDecoder* decoder, WireFrame* out, Bytes* raw = nullptr);

// TcpReadFrame with a deadline: aborts if no complete frame arrives within
// timeout_ms. Bootstrap handshakes use this so a stalled peer (or a stray
// connection to the rendezvous port) turns into the documented
// bootstrap-timeout abort instead of a hang.
bool TcpReadFrameTimed(int fd, FrameDecoder* decoder, WireFrame* out, int timeout_ms);

// A never-blocking outgoing frame queue drained to one socket by a
// dedicated writer thread — the mechanism that keeps Transport::Send
// non-blocking regardless of TCP backpressure. Push appends encoded frames
// in call order; the writer coalesces whatever has queued into a single
// write. If the peer disappears the queue goes quiet instead of aborting
// (expected during shutdown; during a run the protocol surfaces it as a
// hung Recv).
class FrameWriterQueue {
 public:
  FrameWriterQueue() = default;
  FrameWriterQueue(const FrameWriterQueue&) = delete;
  FrameWriterQueue& operator=(const FrameWriterQueue&) = delete;
  ~FrameWriterQueue();

  // Starts the writer thread draining to `fd` (not owned).
  void Start(int fd);

  // Enqueues one encoded frame. Never blocks.
  void Push(Bytes encoded);

  // Enqueues a run of encoded frames with one lock acquisition and one
  // writer wakeup, preserving element order. Never blocks.
  void PushAll(std::vector<Bytes> encoded);

  // Lets the writer drain everything queued, then stops and joins it. The
  // fd stays open (the caller decides when to shut it down).
  void CloseAndJoin();

 private:
  void Loop();

  int fd_ = -1;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Bytes> queue_;
  bool closing_ = false;
  bool peer_gone_ = false;
  std::thread writer_;
};

}  // namespace dstress::net

#endif  // SRC_NET_TCP_SOCKET_H_
