// In-process simulated network: the first Transport backend ("sim" in the
// transport registry, transport_spec.h).
//
// The paper evaluates DStress on EC2 with one machine per bank; this
// backend substitutes an in-process transport where every protocol party
// runs on its own thread and exchanges the *same serialized byte strings*
// it would send over TCP. Two consequences matter for the reproduction:
//
//  * traffic numbers (Figures 4, 5-right, 6-right and the §5.3 message-
//    transfer measurements) are exact — every Send() is metered per sender
//    and per receiver;
//  * timing numbers keep the paper's *shape* (how costs scale in block size,
//    degree, N) while absolute values reflect local compute rather than LAN
//    latency.
//
// Channels are keyed by (from, to, session); see transport.h for the
// FIFO/session semantics and channel_demux.h for the shared queue/metering
// core (Recv, stats, observer rule) this backend inherits. SendBatch takes
// the channel lock once and wakes the consumer once for a whole run of
// messages, which is what makes net::Channel's coalescing worthwhile on
// this backend.
#ifndef SRC_NET_SIM_NETWORK_H_
#define SRC_NET_SIM_NETWORK_H_

#include <vector>

#include "src/common/bytes.h"
#include "src/net/channel_demux.h"
#include "src/net/transport.h"

namespace dstress::net {

class SimNetwork : public ChannelDemuxTransport {
 public:
  explicit SimNetwork(int num_nodes, TransportOptions options = {})
      : ChannelDemuxTransport(num_nodes, options) {}

  // Enqueues a message on the (from, to, session) channel. Thread-safe;
  // never blocks. Queues are unbounded unless
  // TransportOptions::channel_high_watermark_bytes is set, in which case
  // exceeding the cap on any single channel aborts.
  void Send(NodeId from, NodeId to, Bytes message, SessionId session = 0) override;

  // Batched Send: identical FIFO boundaries and metering, one lock
  // acquisition and one consumer wakeup for the whole run.
  void SendBatch(NodeId from, NodeId to, std::vector<Bytes> messages,
                 SessionId session = 0) override;

  // Bulk self-delivery metering (transport.h): payloads that the arena
  // graph plane moved through its own memory never leave the process on
  // this backend, so metering the per-node deltas is observably identical
  // to sending and receiving every message. Refuses when an observer is
  // attached (it must see per-message callbacks); the caller then falls
  // back to literal sends.
  bool MeterSelfDelivered(const std::vector<TrafficStats>& per_node_delta) override {
    return TryMeterSelfDelivered(per_node_delta);
  }
};

}  // namespace dstress::net

#endif  // SRC_NET_SIM_NETWORK_H_
