// In-process simulated network: the first Transport backend.
//
// The paper evaluates DStress on EC2 with one machine per bank; this
// backend substitutes an in-process transport where every protocol party
// runs on its own thread and exchanges the *same serialized byte strings*
// it would send over TCP. Two consequences matter for the reproduction:
//
//  * traffic numbers (Figures 4, 5-right, 6-right and the §5.3 message-
//    transfer measurements) are exact — every Send() is metered per sender
//    and per receiver;
//  * timing numbers keep the paper's *shape* (how costs scale in block size,
//    degree, N) while absolute values reflect local compute rather than LAN
//    latency.
//
// Channels are keyed by (from, to, session); see transport.h for the
// FIFO/session semantics. SendBatch takes the channel lock once and wakes
// the consumer once for a whole run of messages, which is what makes
// net::Channel's coalescing worthwhile on this backend.
#ifndef SRC_NET_SIM_NETWORK_H_
#define SRC_NET_SIM_NETWORK_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "src/common/bytes.h"
#include "src/net/transport.h"

namespace dstress::net {

class SimNetwork : public Transport {
 public:
  explicit SimNetwork(int num_nodes, TransportOptions options = {});

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  int num_nodes() const override { return num_nodes_; }

  // Attaches an observer (nullptr detaches). Attaching or detaching after
  // any message has crossed the network is a fatal CHECK: the swap would
  // race the protocol worker threads (see transport.h).
  void SetObserver(NetworkObserver* observer) override;

  // Enqueues a message on the (from, to, session) channel. Thread-safe;
  // never blocks. Queues are unbounded unless
  // TransportOptions::channel_high_watermark_bytes is set, in which case
  // exceeding the cap on any single channel aborts.
  void Send(NodeId from, NodeId to, Bytes message, SessionId session = 0) override;

  // Batched Send: identical FIFO boundaries and metering, one lock
  // acquisition and one consumer wakeup for the whole run.
  void SendBatch(NodeId from, NodeId to, std::vector<Bytes> messages,
                 SessionId session = 0) override;

  // Dequeues the next message on the (from, to, session) channel in FIFO
  // order, blocking until one arrives.
  Bytes Recv(NodeId to, NodeId from, SessionId session = 0) override;

  TrafficStats NodeStats(NodeId node) const override;
  uint64_t TotalBytes() const override;
  uint64_t MaxBytesPerNode() const override;
  void ResetStats() override;

 private:
  struct Channel {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Bytes> queue;
    size_t queued_bytes = 0;  // bytes currently in `queue`
  };

  struct PerNodeCounters {
    std::atomic<uint64_t> bytes_sent{0};
    std::atomic<uint64_t> bytes_received{0};
    std::atomic<uint64_t> messages_sent{0};
    std::atomic<uint64_t> messages_received{0};
  };

  struct ChannelKey {
    NodeId from;
    NodeId to;
    SessionId session;
    bool operator==(const ChannelKey& o) const {
      return from == o.from && to == o.to && session == o.session;
    }
  };
  struct ChannelKeyHash {
    size_t operator()(const ChannelKey& k) const {
      uint64_t h = static_cast<uint64_t>(k.from) * 0x9e3779b97f4a7c15ULL;
      h ^= static_cast<uint64_t>(k.to) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      h ^= k.session + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };

  Channel& ChannelFor(const ChannelKey& key);
  void CheckWatermark(const Channel& ch) const;

  int num_nodes_;
  TransportOptions options_;
  // Atomic so a SetObserver that loses the race with the first Send is a
  // missed CHECK rather than undefined behavior.
  std::atomic<NetworkObserver*> observer_{nullptr};
  // Set on the first Send; SetObserver refuses to attach afterwards.
  std::atomic<bool> traffic_started_{false};
  std::shared_mutex channels_mu_;
  std::unordered_map<ChannelKey, std::unique_ptr<Channel>, ChannelKeyHash> channels_;
  std::vector<std::unique_ptr<PerNodeCounters>> counters_;
};

}  // namespace dstress::net

#endif  // SRC_NET_SIM_NETWORK_H_
