// In-process simulated network.
//
// The paper evaluates DStress on EC2 with one machine per bank; this repo
// substitutes an in-process transport where every protocol party runs on its
// own thread and exchanges the *same serialized byte strings* it would send
// over TCP. Two consequences matter for the reproduction:
//
//  * traffic numbers (Figures 4, 5-right, 6-right and the §5.3 message-
//    transfer measurements) are exact — every Send() is metered per sender
//    and per receiver;
//  * timing numbers keep the paper's *shape* (how costs scale in block size,
//    degree, N) while absolute values reflect local compute rather than LAN
//    latency.
//
// Channels are keyed by (from, to, session). A DStress node participates in
// many concurrent protocol instances — GMW member in several blocks, edge
// endpoint, aggregator — and the session id keeps each instance's FIFO
// stream isolated, playing the role of one TCP connection per protocol
// instance.
#ifndef SRC_NET_SIM_NETWORK_H_
#define SRC_NET_SIM_NETWORK_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "src/common/bytes.h"

namespace dstress::net {

using NodeId = int;
using SessionId = uint64_t;

struct TrafficStats {
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t messages_sent = 0;
  uint64_t messages_received = 0;
};

// Observes every message as it crosses the network. OnSend runs inside the
// channel lock right after the enqueue and OnRecv right after the dequeue,
// so per-channel observation order matches FIFO delivery order. Callbacks
// must be thread-safe across channels and must not call back into the
// network. Used by the audit module (src/audit) to record transcripts.
class NetworkObserver {
 public:
  virtual ~NetworkObserver() = default;
  virtual void OnSend(NodeId from, NodeId to, SessionId session, const Bytes& payload) = 0;
  virtual void OnRecv(NodeId to, NodeId from, SessionId session, const Bytes& payload) = 0;
};

class SimNetwork {
 public:
  explicit SimNetwork(int num_nodes);

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  int num_nodes() const { return num_nodes_; }

  // Attaches an observer (nullptr detaches). Not thread-safe with respect
  // to in-flight Send/Recv: attach before the protocol threads start.
  void SetObserver(NetworkObserver* observer) { observer_ = observer; }

  // Enqueues a message on the (from, to, session) channel. Thread-safe;
  // never blocks (queues are unbounded — protocol rounds bound growth).
  void Send(NodeId from, NodeId to, Bytes message, SessionId session = 0);

  // Dequeues the next message on the (from, to, session) channel in FIFO
  // order, blocking until one arrives.
  Bytes Recv(NodeId to, NodeId from, SessionId session = 0);

  TrafficStats NodeStats(NodeId node) const;
  uint64_t TotalBytes() const;
  double AverageBytesPerNode() const;
  uint64_t MaxBytesPerNode() const;
  void ResetStats();

 private:
  struct Channel {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Bytes> queue;
  };

  struct PerNodeCounters {
    std::atomic<uint64_t> bytes_sent{0};
    std::atomic<uint64_t> bytes_received{0};
    std::atomic<uint64_t> messages_sent{0};
    std::atomic<uint64_t> messages_received{0};
  };

  struct ChannelKey {
    NodeId from;
    NodeId to;
    SessionId session;
    bool operator==(const ChannelKey& o) const {
      return from == o.from && to == o.to && session == o.session;
    }
  };
  struct ChannelKeyHash {
    size_t operator()(const ChannelKey& k) const {
      uint64_t h = static_cast<uint64_t>(k.from) * 0x9e3779b97f4a7c15ULL;
      h ^= static_cast<uint64_t>(k.to) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      h ^= k.session + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };

  Channel& ChannelFor(const ChannelKey& key);

  int num_nodes_;
  NetworkObserver* observer_ = nullptr;
  std::shared_mutex channels_mu_;
  std::unordered_map<ChannelKey, std::unique_ptr<Channel>, ChannelKeyHash> channels_;
  std::vector<std::unique_ptr<PerNodeCounters>> counters_;
};

}  // namespace dstress::net

#endif  // SRC_NET_SIM_NETWORK_H_
