// Shared channel-demultiplexing and metering core for queue-based
// Transport backends.
//
// SimNetwork and TcpNetwork differ only in how a sent message reaches the
// receiving channel's queue (directly under the channel lock vs. through
// per-bank processes and a reader thread). Everything else — the
// (from, to, session) channel map, blocking FIFO Recv with its OnRecv
// hook, per-node traffic counters, the high-watermark cap, and the
// attach-before-traffic observer rule — is semantics the two must share
// bit for bit, so it lives here exactly once and backends inherit it.
//
// Concurrency contract for derived Send paths: store traffic_started_
// before acquiring channels_mu_ (shared) and load observer_ under it. With
// SetObserver holding channels_mu_ exclusively, either the attach CHECK
// observes the started traffic and aborts, or the attach fully completes
// first and the send observes the new pointer — never a silently
// unobserved message.
#ifndef SRC_NET_CHANNEL_DEMUX_H_
#define SRC_NET_CHANNEL_DEMUX_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "src/common/bytes.h"
#include "src/net/transport.h"

namespace dstress::net {

class ChannelDemuxTransport : public Transport {
 public:
  ChannelDemuxTransport(int num_nodes, TransportOptions options);

  ChannelDemuxTransport(const ChannelDemuxTransport&) = delete;
  ChannelDemuxTransport& operator=(const ChannelDemuxTransport&) = delete;

  int num_nodes() const override { return num_nodes_; }

  // Attaches an observer (nullptr detaches). Attaching or detaching after
  // any message has crossed the transport is a fatal CHECK: the swap would
  // race the protocol worker threads (see transport.h).
  void SetObserver(NetworkObserver* observer) override;

  // Dequeues the next message on the (from, to, session) channel in FIFO
  // order, blocking until one arrives; runs the observer's OnRecv under the
  // channel lock.
  Bytes Recv(NodeId to, NodeId from, SessionId session = 0) override;

  // Batched Recv: drains `count` messages under one channel-lock
  // acquisition per wakeup instead of one per message, with per-message
  // metering and OnRecv callbacks identical to `count` single Recvs.
  std::vector<Bytes> RecvBatch(NodeId to, NodeId from, size_t count,
                               SessionId session = 0) override;

  TrafficStats NodeStats(NodeId node) const override;
  uint64_t TotalBytes() const override;
  uint64_t MaxBytesPerNode() const override;
  void ResetStats() override;

  // Declares `node` dead (failure detector verdict, or an injected kill on
  // the sim backend): every Recv/RecvBatch blocked on — or later reaching —
  // an empty channel to or from it aborts with `reason` instead of hanging
  // forever. Messages already queued still drain first, so a receiver that
  // is merely behind does not lose data.
  void DeclarePeerDead(NodeId node, const std::string& reason);

  bool PeerDead(NodeId node) const {
    return dead_peers_[static_cast<size_t>(node)]->load(std::memory_order_acquire);
  }

 protected:
  struct Channel {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Bytes> queue;
    size_t queued_bytes = 0;  // bytes currently in `queue`
  };

  struct PerNodeCounters {
    std::atomic<uint64_t> bytes_sent{0};
    std::atomic<uint64_t> bytes_received{0};
    std::atomic<uint64_t> messages_sent{0};
    std::atomic<uint64_t> messages_received{0};
  };

  struct ChannelKey {
    NodeId from;
    NodeId to;
    SessionId session;
    bool operator==(const ChannelKey& o) const {
      return from == o.from && to == o.to && session == o.session;
    }
  };
  struct ChannelKeyHash {
    size_t operator()(const ChannelKey& k) const {
      uint64_t h = static_cast<uint64_t>(k.from) * 0x9e3779b97f4a7c15ULL;
      h ^= static_cast<uint64_t>(k.to) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      h ^= k.session + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };

  Channel& ChannelFor(const ChannelKey& key);
  void CheckWatermark(const Channel& ch) const;
  void MeterSend(NodeId from, uint64_t bytes, uint64_t messages);

  // Shared implementation behind Transport::MeterSelfDelivered, protected
  // so only backends that really keep payloads in-process expose it
  // (SimNetwork does; TcpNetwork must not — its peers live in other
  // processes and need the literal frames). Follows the Send-path observer
  // contract: traffic_started_ is stored before the observer is loaded
  // under the shared channels lock, so either an in-flight attach completes
  // first and this call refuses, or the attach CHECK sees started traffic.
  bool TryMeterSelfDelivered(const std::vector<TrafficStats>& per_node_delta);

  // True when the (from, to) pair touches a dead peer — the Recv wait
  // predicates wake on it and abort via AbortDeadPeer.
  bool PairDead(NodeId from, NodeId to) const { return PeerDead(from) || PeerDead(to); }
  [[noreturn]] void AbortDeadPeer(NodeId to, NodeId from, SessionId session) const;

  int num_nodes_;
  TransportOptions options_;
  // Atomic so a SetObserver that loses the race with the first Send is a
  // missed CHECK rather than undefined behavior.
  std::atomic<NetworkObserver*> observer_{nullptr};
  // Set on the first Send; SetObserver refuses to attach afterwards.
  std::atomic<bool> traffic_started_{false};
  std::shared_mutex channels_mu_;
  std::unordered_map<ChannelKey, std::unique_ptr<Channel>, ChannelKeyHash> channels_;
  std::vector<std::unique_ptr<PerNodeCounters>> counters_;

  // Dead-peer flags (unique_ptr so the vector of atomics can be built once
  // in the constructor) plus the human-readable reason for the abort.
  std::vector<std::unique_ptr<std::atomic<bool>>> dead_peers_;
  mutable std::mutex dead_reason_mu_;
  std::string dead_reason_;
};

}  // namespace dstress::net

#endif  // SRC_NET_CHANNEL_DEMUX_H_
