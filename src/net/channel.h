// Channel: one protocol endpoint's handle onto a session.
//
// A protocol role (a GMW party, a transfer-protocol endpoint, …) talks to a
// fixed peer set over one session id. A Channel buffers a role's outgoing
// messages per peer and delivers each peer's pending run with one
// Transport::SendBatch call on Flush, without changing what crosses the
// wire: message boundaries, FIFO order, and per-message traffic metering
// are identical to unbuffered sends.
//
// When a round emits several messages to the same peer, the batch
// amortizes the backend's per-send synchronization (one lock + one wakeup
// on SimNetwork; one writer-queue handoff on TcpNetwork). The protocol
// rounds wired up so far — GMW's per-layer broadcast, the transfer
// fan-out — emit one message per peer per flush, where Flush degenerates
// to plain Send: for them the Channel buys the uniform endpoint idiom and
// deferred delivery (all of a burst is serialized before the first peer
// wakes), not a wakeup reduction.
//
// Recv flushes all buffered messages first. This preserves the
// never-blocking-send invariant the runtime's deadlock-freedom argument
// rests on (runtime.h): a role never parks on a receive while messages its
// peers are waiting for sit in a local buffer. Destroying a Channel with
// unflushed messages is a fatal CHECK for the same reason.
//
// A Channel belongs to one role thread; it is not thread-safe (the
// underlying Transport is).
#ifndef SRC_NET_CHANNEL_H_
#define SRC_NET_CHANNEL_H_

#include <vector>

#include "src/net/transport.h"

namespace dstress::net {

class Channel {
 public:
  // `peers` lists the node ids this endpoint exchanges messages with, in a
  // fixed order. It may include `self`: Send(self, …) is a real message
  // through the transport's self-channel (a node can be a member of its own
  // block); only Broadcast skips self.
  Channel(Transport* transport, NodeId self, std::vector<NodeId> peers, SessionId session);
  ~Channel();

  Channel(Channel&& other) noexcept;
  Channel& operator=(Channel&&) = delete;
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  NodeId self() const { return self_; }
  SessionId session() const { return session_; }
  const std::vector<NodeId>& peers() const { return peers_; }

  // Buffers `message` for `to`, which must be in the peer set.
  void Send(NodeId to, Bytes message);

  // Buffers a copy of `message` for every peer except self.
  void Broadcast(const Bytes& message);

  // Delivers all buffered messages, one SendBatch per peer with pending
  // traffic, in peer-set order.
  void Flush();

  // Flushes, then blocks for the next message from `from` on this session.
  Bytes Recv(NodeId from);

 private:
  int PeerIndex(NodeId peer) const;

  Transport* transport_;
  NodeId self_;
  std::vector<NodeId> peers_;
  SessionId session_;
  std::vector<std::vector<Bytes>> pending_;  // parallel to peers_
  bool any_pending_ = false;
};

}  // namespace dstress::net

#endif  // SRC_NET_CHANNEL_H_
