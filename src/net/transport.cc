#include "src/net/transport.h"

namespace dstress::net {

void Transport::SendBatch(NodeId from, NodeId to, std::vector<Bytes> messages,
                          SessionId session) {
  for (auto& message : messages) {
    Send(from, to, std::move(message), session);
  }
}

}  // namespace dstress::net
