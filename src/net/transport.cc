#include "src/net/transport.h"

namespace dstress::net {

void Transport::SendBatch(NodeId from, NodeId to, std::vector<Bytes> messages,
                          SessionId session) {
  for (auto& message : messages) {
    Send(from, to, std::move(message), session);
  }
}

std::vector<Bytes> Transport::RecvBatch(NodeId to, NodeId from, size_t count,
                                        SessionId session) {
  std::vector<Bytes> messages;
  messages.reserve(count);
  for (size_t i = 0; i < count; i++) {
    messages.push_back(Recv(to, from, session));
  }
  return messages;
}

}  // namespace dstress::net
