// TCP multi-process transport: the deployment-shaped Transport backend
// ("tcp" in the transport registry, transport_spec.h).
//
// The paper ran one party per EC2 machine exchanging serialized byte
// strings; TcpNetwork reproduces that process boundary on one machine. The
// driver process (whoever constructed this object — the engine's secure or
// cleartext backend) spawns one process per bank (forking the node loop in
// tcp_node.h, or spawning a dstress_node binary when
// TransportSpec::node_program is set), rendezvouses them into a full TCP
// mesh, and then every Send travels as a wire.h frame:
//
//   driver --> bank `from` process --> bank `to` process --> driver
//
// so each message genuinely crosses its sender's and receiver's processes.
// Delivered frames are demultiplexed into the per-(from, to, session) FIFO
// queues of the shared channel_demux.h core, whose Recv/stats/observer
// semantics this backend inherits — which is what keeps a run's per-node
// TrafficStats bit-identical to the same run over SimNetwork (payload
// bytes at Send, payload bytes at Recv, frame overhead excluded; asserted
// in engine_test.cc).
//
//  * Send never blocks: frames go onto a per-bank FrameWriterQueue drained
//    by a dedicated writer thread, regardless of TCP backpressure.
//  * FIFO per channel: a channel's frames follow one fixed socket path
//    (driver->from, from->to, to->driver), each hop order-preserving.
//  * Observer: OnSend fires at Send (the per-bank send lock orders it with
//    the wire; a shared lock on the core's channels_mu_ serializes it
//    against SetObserver exactly as in SimNetwork), OnRecv at Recv.
//  * The high-watermark cap bounds bytes delivered to a channel but not yet
//    Recv'd (frames still inside the socket path are not counted).
//
// Spawn modes: with node_program unset the constructor fork()s the node
// loop without exec. The children run regular (non-async-signal-safe) code,
// which glibc supports after fork but POSIX leaves undefined if other
// threads exist at fork time — the runtime constructs its transport before
// its worker pool for exactly this reason, and callers holding long-lived
// thread pools should prefer the exec mode (node_program =
// examples/dstress_node), which is the real deployment shape anyway.
//
// Multi-machine mode (TransportSpec::external_nodes): the constructor
// spawns nothing and instead waits for num_nodes externally started
// dstress_node processes — on this machine or others — to dial the
// rendezvous at host:port and register. The PEERS reply carries each
// bank's advertised (host, port), so the mesh forms across machines; the
// optional node_endpoints table pins where each bank must be. Bootstrap
// failures (a bank that never dials in, a duplicate registration, a
// version mismatch, a misplaced bank) abort with a message naming the
// offending bank instead of hanging.
#ifndef SRC_NET_TCP_NETWORK_H_
#define SRC_NET_TCP_NETWORK_H_

#include <sys/types.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/bytes.h"
#include "src/net/channel_demux.h"
#include "src/net/tcp_socket.h"
#include "src/net/transport.h"
#include "src/net/transport_spec.h"

namespace dstress::net {

class TcpNetwork : public ChannelDemuxTransport {
 public:
  // Spawns the bank processes and completes the bootstrap handshake;
  // returns with the mesh established. Aborts if a bank fails to rendezvous
  // within spec.bootstrap_timeout_ms.
  TcpNetwork(int num_nodes, const TransportSpec& spec);
  ~TcpNetwork() override;

  // Enqueues the frame on the sending bank's writer queue. Thread-safe;
  // never blocks.
  void Send(NodeId from, NodeId to, Bytes message, SessionId session = 0) override;

  // Batched Send: identical FIFO boundaries and metering, one writer-queue
  // handoff for the whole run.
  void SendBatch(NodeId from, NodeId to, std::vector<Bytes> messages,
                 SessionId session = 0) override;

 private:
  // One bank process: its driver-side socket, outgoing writer queue, and
  // the reader thread delivering its inbound frames.
  struct Link {
    int fd = -1;
    pid_t pid = -1;
    // Orders OnSend callbacks with the enqueue, per sending bank.
    std::mutex send_mu;
    FrameWriterQueue out;
    FrameDecoder decoder;
    std::thread reader;
  };

  void SpawnNodes(const TransportSpec& spec, int listen_fd, int rendezvous_port);
  void ReaderLoop(NodeId bank);

  std::atomic<bool> shutting_down_{false};
  std::vector<std::unique_ptr<Link>> links_;
};

}  // namespace dstress::net

#endif  // SRC_NET_TCP_NETWORK_H_
