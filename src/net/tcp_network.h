// TCP multi-process transport: the deployment-shaped Transport backend
// ("tcp" in the transport registry, transport_spec.h).
//
// The paper ran one party per EC2 machine exchanging serialized byte
// strings; TcpNetwork reproduces that process boundary on one machine. The
// driver process (whoever constructed this object — the engine's secure or
// cleartext backend) spawns one process per bank (forking the node loop in
// tcp_node.h, or spawning a dstress_node binary when
// TransportSpec::node_program is set), rendezvouses them into a full TCP
// mesh, and then every Send travels as a wire.h frame:
//
//   driver --> bank `from` process --> bank `to` process --> driver
//
// so each message genuinely crosses its sender's and receiver's processes.
// Delivered frames are demultiplexed into the per-(from, to, session) FIFO
// queues of the shared channel_demux.h core, whose Recv/stats/observer
// semantics this backend inherits — which is what keeps a run's per-node
// TrafficStats bit-identical to the same run over SimNetwork (payload
// bytes at Send, payload bytes at Recv, frame overhead excluded; asserted
// in engine_test.cc).
//
//  * Send never blocks: frames go onto a per-bank FrameWriterQueue drained
//    by a dedicated writer thread, regardless of TCP backpressure.
//  * FIFO per channel: a channel's frames follow one fixed socket path
//    (driver->from, from->to, to->driver), each hop order-preserving.
//  * Observer: OnSend fires at Send (the per-bank send lock orders it with
//    the wire; a shared lock on the core's channels_mu_ serializes it
//    against SetObserver exactly as in SimNetwork), OnRecv at Recv.
//  * The high-watermark cap bounds bytes delivered to a channel but not yet
//    Recv'd (frames still inside the socket path are not counted).
//
// Spawn modes: with node_program unset the constructor fork()s the node
// loop without exec. The children run regular (non-async-signal-safe) code,
// which glibc supports after fork but POSIX leaves undefined if other
// threads exist at fork time — the runtime constructs its transport before
// its worker pool for exactly this reason, and callers holding long-lived
// thread pools should prefer the exec mode (node_program =
// examples/dstress_node), which is the real deployment shape anyway.
//
// Multi-machine mode (TransportSpec::external_nodes): the constructor
// spawns nothing and instead waits for num_nodes externally started
// dstress_node processes — on this machine or others — to dial the
// rendezvous at host:port and register. The PEERS reply carries each
// bank's advertised (host, port), so the mesh forms across machines; the
// optional node_endpoints table pins where each bank must be. Bootstrap
// failures (a bank that never dials in, a duplicate registration, a
// version mismatch, a misplaced bank) abort with a message naming the
// offending bank instead of hanging.
//
// HA mode (TransportSpec::ha.enabled, docs/ha.md): the driver anchors the
// fault-tolerance layer. Every data payload is prefixed with a per-channel
// sequence number and the encoded frame is kept in a bounded retransmit
// buffer (ha::ResumeLog) until the frame is observed back at the driver —
// driver receipt is end-to-end delivery proof, since every frame's last
// hop lands here. A monitor thread heartbeats every bank and runs the
// failure detector; an acceptor thread keeps the rendezvous listener open
// and resumes a re-dialing bank's session: retire the old socket, replay
// every undelivered frame touching that bank, splice in the new socket.
// The sequence cursor makes redelivery exactly-once, so recovered runs
// release figures and per-node TrafficStats bit-identical to fault-free
// runs (HA control traffic and replays are metered separately, in
// HaControlBytes).
#ifndef SRC_NET_TCP_NETWORK_H_
#define SRC_NET_TCP_NETWORK_H_

#include <sys/types.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/bytes.h"
#include "src/ha/failure_detector.h"
#include "src/ha/resume.h"
#include "src/net/channel_demux.h"
#include "src/net/tcp_socket.h"
#include "src/net/transport.h"
#include "src/net/transport_spec.h"

namespace dstress::net {

class TcpNetwork : public ChannelDemuxTransport, public FaultInjectable {
 public:
  // Spawns the bank processes and completes the bootstrap handshake;
  // returns with the mesh established. Aborts if a bank fails to rendezvous
  // within spec.bootstrap_timeout_ms.
  TcpNetwork(int num_nodes, const TransportSpec& spec);
  ~TcpNetwork() override;

  // Enqueues the frame on the sending bank's writer queue. Thread-safe;
  // never blocks.
  void Send(NodeId from, NodeId to, Bytes message, SessionId session = 0) override;

  // Batched Send: identical FIFO boundaries and metering, one writer-queue
  // handoff for the whole run.
  void SendBatch(NodeId from, NodeId to, std::vector<Bytes> messages,
                 SessionId session = 0) override;

  uint64_t HaControlBytes() const override {
    return ha_control_bytes_.load(std::memory_order_relaxed);
  }
  int HaResumeCount() const override { return ha_resumes_.load(std::memory_order_relaxed); }

  // FaultInjectable (ha::FaultyTransport): both require HA mode, since
  // without it nobody recovers.
  void InjectNodeKill(NodeId node) override;
  void InjectLinkDrop(NodeId node) override;

 private:
  // One bank process: its driver-side socket, outgoing writer queue, and
  // the reader thread delivering its inbound frames. `out` is a pointer
  // because a writer queue whose peer vanished is permanently quiet — a
  // session resume installs a fresh queue (under channels_mu_ exclusive)
  // rather than reviving the old one.
  struct Link {
    int fd = -1;
    std::atomic<pid_t> pid{-1};
    // Orders OnSend callbacks with the enqueue, per sending bank.
    std::mutex send_mu;
    std::unique_ptr<FrameWriterQueue> out;
    FrameDecoder decoder;  // bootstrap only; moved into the reader thread
    std::thread reader;
    // HA: the reader saw EOF mid-run and the link awaits a session resume.
    std::atomic<bool> down{false};
    bool respawned = false;  // monitor thread only
  };

  void SpawnNodes(const TransportSpec& spec, int listen_fd, int rendezvous_port);
  // Exec-mode spawn of one dstress_node (initial bootstrap and HA respawn).
  pid_t SpawnNodeProcess(NodeId node, bool resume) const;
  void StartReader(NodeId bank);
  void ReaderLoop(NodeId bank, int fd, FrameDecoder decoder);

  // HA threads (spec.ha.enabled only).
  void MonitorLoop();
  void AcceptorLoop();
  // Retires bank `node`'s old session and splices in the freshly accepted
  // socket `fd`, replaying every undelivered frame that touches the bank.
  void HandleResume(NodeId node, const PeerEndpoint& endpoint, int fd, FrameDecoder decoder);

  std::atomic<bool> shutting_down_{false};
  std::vector<std::unique_ptr<Link>> links_;

  // --- HA state (docs/ha.md) ---------------------------------------------
  bool ha_ = false;
  TransportSpec spec_;       // respawn + HA knobs
  std::string dial_host_;    // address spawned nodes dial
  int rendezvous_port_ = 0;
  int listen_fd_ = -1;       // kept open for session resumes (HA only)
  std::vector<PeerEndpoint> endpoints_;
  std::thread monitor_;
  std::thread acceptor_;
  std::atomic<uint64_t> ha_control_bytes_{0};
  std::atomic<int> ha_resumes_{0};
  // Guards the resume log and failure detector. Lock order:
  // channels_mu_ (shared) -> Link::send_mu -> ha_mu_.
  std::mutex ha_mu_;
  std::unique_ptr<ha::ResumeLog> resume_log_;
  std::unique_ptr<ha::FailureDetector> detector_;
};

}  // namespace dstress::net

#endif  // SRC_NET_TCP_NETWORK_H_
