// The DStress wire codec: the byte format every multi-process transport
// backend puts on the wire, one length-prefixed frame per transport message,
// plus the versioned bootstrap control frames the TCP backend's rendezvous
// handshake exchanges before data flows. docs/wire-protocol.md is the
// normative prose description of everything in this header.
//
// A frame carries exactly the tuple the Transport interface routes on —
// (from, to, session, payload) — so a backend that forwards frames verbatim
// preserves channel identity, FIFO order (frames on one byte stream decode
// in encode order) and byte-exact traffic metering: the metered quantity is
// payload.size(), identical to what SimNetwork meters for the same Send.
//
// Layout (all integers little-endian, matching ByteWriter):
//
//   u32 frame_length   bytes that follow this field (16 + payload size)
//   u32 from           NodeId, two's complement
//   u32 to             NodeId, two's complement
//   u64 session        SessionId
//   payload            frame_length - 16 raw bytes
//
// FrameDecoder is incremental: feed it arbitrary byte slices (whatever
// read(2) returned) and pop complete frames as they become available, so a
// socket reader never needs to know frame boundaries up front.
#ifndef SRC_NET_WIRE_H_
#define SRC_NET_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/net/transport.h"

namespace dstress::net {

struct WireFrame {
  NodeId from = 0;
  NodeId to = 0;
  SessionId session = 0;
  Bytes payload;

  bool operator==(const WireFrame& o) const {
    return from == o.from && to == o.to && session == o.session && payload == o.payload;
  }
};

// The session id reserved for transport-internal control traffic (the TCP
// backend's bootstrap handshake). Protocol layers must not use it; the
// runtime's session namespaces (top bits select the phase) never do.
constexpr SessionId kControlSession = ~0ULL;

// Frame byte overhead on top of the payload (length prefix + header).
constexpr size_t kWireFrameOverhead = 20;

// Frames larger than this abort the decoder: no DStress protocol message
// comes anywhere close, so a bigger length prefix means stream corruption.
constexpr size_t kMaxWirePayload = size_t{1} << 30;

// Appends the encoded frame to `out` (so a writer can coalesce a run of
// frames into one buffer / one write call).
void AppendFrame(const WireFrame& frame, Bytes* out);

Bytes EncodeFrame(const WireFrame& frame);

// Incremental frame parser for one byte stream.
class FrameDecoder {
 public:
  // Buffers `len` more stream bytes.
  void Feed(const uint8_t* data, size_t len);

  // Pops the next complete frame into *out. Returns false when the buffered
  // bytes do not yet contain a full frame. Aborts (DSTRESS_CHECK) on a
  // corrupt length prefix (payload larger than kMaxWirePayload). When `raw`
  // is non-null it receives the frame's exact wire bytes, so a relay can
  // forward them verbatim instead of re-encoding.
  bool Next(WireFrame* out, Bytes* raw = nullptr);

  // Bytes buffered but not yet returned as frames.
  size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  Bytes buf_;
  size_t pos_ = 0;  // consumed prefix of buf_
};

// ---------------------------------------------------------------------------
// Bootstrap control frames (TCP rendezvous handshake, kControlSession).
//
// Every control payload starts with `u8 type, u8 version`; parsers abort
// with a version-mismatch message when a peer speaks a different bootstrap
// protocol revision, so mixed-build deployments fail loudly at rendezvous
// instead of corrupting a run. Version 2 introduced per-bank (host, port)
// endpoints in HELLO and PEERS — the multi-machine deployment format;
// version 1 carried bare ports and assumed every bank lived on the
// driver's host. Version 3 added the HA frames (heartbeats, session
// resume, shutdown — docs/ha.md) and the trailing ha flag in PEERS.

constexpr uint8_t kBootstrapProtocolVersion = 3;

// Control frame type byte (first payload byte of every kControlSession
// frame). In the header so relays can dispatch on it without parsing.
enum ControlType : uint8_t {
  kCtrlHello = 1,
  kCtrlPeers = 2,
  kCtrlMeshHello = 3,
  kCtrlReady = 4,
  kCtrlHeartbeat = 5,
  kCtrlHeartbeatAck = 6,
  kCtrlResumeHello = 7,
  kCtrlMeshResume = 8,
  kCtrlMeshResumeOk = 9,
  kCtrlResumeReady = 10,
  kCtrlShutdown = 11,
};

// Peeks a control frame's type byte. Aborts when `frame` is not a control
// frame or has an empty payload.
uint8_t ControlFrameType(const WireFrame& frame);

// One bank's advertised mesh listener: the address its peers dial.
struct PeerEndpoint {
  std::string host;
  int port = 0;

  bool operator==(const PeerEndpoint& o) const { return host == o.host && port == o.port; }
  std::string ToString() const { return host + ":" + std::to_string(port); }
};

// HELLO — node -> driver: "bank `node` is up; peers reach me at
// `endpoint`". Sent once, immediately after dialing the rendezvous.
WireFrame MakeHelloFrame(NodeId node, const PeerEndpoint& endpoint);
void ParseHelloFrame(const WireFrame& frame, NodeId* node, PeerEndpoint* endpoint);

// PEERS — driver -> every node: the full bank -> endpoint table, sent once
// all banks have said HELLO (and again as the reply to RESUME_HELLO). The
// trailing flag tells nodes whether the HA layer is on — an HA node keeps
// its mesh listener open after bootstrap and answers heartbeats.
WireFrame MakePeersFrame(const std::vector<PeerEndpoint>& peers, bool ha_enabled = false);
std::vector<PeerEndpoint> ParsePeersFrame(const WireFrame& frame, bool* ha_enabled = nullptr);

// MESH_HELLO — dialing node -> accepting node: identifies which bank just
// connected on the mesh.
WireFrame MakeMeshHelloFrame(NodeId node);
NodeId ParseMeshHelloFrame(const WireFrame& frame);

// READY — node -> driver: the node's mesh links are all up.
WireFrame MakeReadyFrame(NodeId node);
NodeId ParseReadyFrame(const WireFrame& frame);

// ---------------------------------------------------------------------------
// HA frames (version 3, docs/ha.md). Heartbeats ride the links between data
// frames; the resume frames re-run a bank's slice of the rendezvous after a
// crash or link drop.

// HEARTBEAT — driver -> node, every `ha heartbeat_ms`.
WireFrame MakeHeartbeatFrame(uint64_t seq);
uint64_t ParseHeartbeatFrame(const WireFrame& frame);

// HEARTBEAT_ACK — node -> driver: echo of the heartbeat sequence.
WireFrame MakeHeartbeatAckFrame(NodeId node, uint64_t seq);
void ParseHeartbeatAckFrame(const WireFrame& frame, NodeId* node, uint64_t* seq);

// RESUME_HELLO — node -> driver on a fresh socket: "resume bank `node`'s
// session; peers reach me at `endpoint`". full_mesh says whether the node is
// a restarted process that must re-dial every peer (true) or an already
// meshed node whose driver link alone dropped (false).
WireFrame MakeResumeHelloFrame(NodeId node, const PeerEndpoint& endpoint, bool full_mesh);
void ParseResumeHelloFrame(const WireFrame& frame, NodeId* node, PeerEndpoint* endpoint,
                           bool* full_mesh);

// MESH_RESUME — restarted node -> peer: replace your mesh link to me with
// this socket. Answered with MESH_RESUME_OK once the swap is done.
WireFrame MakeMeshResumeFrame(NodeId node);
NodeId ParseMeshResumeFrame(const WireFrame& frame);
WireFrame MakeMeshResumeOkFrame(NodeId node);
NodeId ParseMeshResumeOkFrame(const WireFrame& frame);

// RESUME_READY — node -> driver: the resumed session is fully wired; the
// driver replays undelivered frames after reading this.
WireFrame MakeResumeReadyFrame(NodeId node);
NodeId ParseResumeReadyFrame(const WireFrame& frame);

// SHUTDOWN — driver -> node before the clean end-of-run half-close, so HA
// nodes can tell a deliberate teardown from a driver crash.
WireFrame MakeShutdownFrame();
void ParseShutdownFrame(const WireFrame& frame);

}  // namespace dstress::net

#endif  // SRC_NET_WIRE_H_
