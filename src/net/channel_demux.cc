#include "src/net/channel_demux.h"

#include <cstdio>

#include "src/common/check.h"

namespace dstress::net {

ChannelDemuxTransport::ChannelDemuxTransport(int num_nodes, TransportOptions options)
    : num_nodes_(num_nodes), options_(options) {
  DSTRESS_CHECK(num_nodes > 0);
  counters_.reserve(num_nodes);
  dead_peers_.reserve(num_nodes);
  for (int i = 0; i < num_nodes; i++) {
    counters_.push_back(std::make_unique<PerNodeCounters>());
    dead_peers_.push_back(std::make_unique<std::atomic<bool>>(false));
  }
}

void ChannelDemuxTransport::DeclarePeerDead(NodeId node, const std::string& reason) {
  DSTRESS_CHECK(node >= 0 && node < num_nodes_);
  {
    std::lock_guard<std::mutex> lock(dead_reason_mu_);
    if (!dead_reason_.empty()) dead_reason_ += "; ";
    dead_reason_ += reason;
  }
  dead_peers_[static_cast<size_t>(node)]->store(true, std::memory_order_release);
  // Wake every parked receiver so its predicate re-checks the dead flags.
  std::shared_lock<std::shared_mutex> read(channels_mu_);
  for (auto& entry : channels_) {
    std::lock_guard<std::mutex> lock(entry.second->mu);
    entry.second->cv.notify_all();
  }
}

void ChannelDemuxTransport::AbortDeadPeer(NodeId to, NodeId from, SessionId session) const {
  std::string reason;
  {
    std::lock_guard<std::mutex> lock(dead_reason_mu_);
    reason = dead_reason_;
  }
  std::fprintf(stderr,
               "transport: Recv(to=%d, from=%d, session=%llu) woke on a dead peer with no "
               "message to deliver: %s\n",
               to, from, static_cast<unsigned long long>(session),
               reason.empty() ? "peer declared dead" : reason.c_str());
  DSTRESS_CHECK(false);
  std::abort();  // DSTRESS_CHECK(false) never returns; this placates [[noreturn]]
}

void ChannelDemuxTransport::SetObserver(NetworkObserver* observer) {
  // Attach and detach both swap a pointer the protocol threads read, so
  // neither is legal once traffic has started. The exclusive channels lock
  // serializes this against in-flight sends: a Send marks traffic_started_
  // before it takes the shared lock, so either that Send's lock acquisition
  // happens first (the CHECK below fires) or the attach completes first
  // (the Send observes the new pointer) — never a silently missed message.
  std::unique_lock<std::shared_mutex> lock(channels_mu_);
  DSTRESS_CHECK(!traffic_started_.load(std::memory_order_acquire));
  observer_.store(observer, std::memory_order_release);
}

ChannelDemuxTransport::Channel& ChannelDemuxTransport::ChannelFor(const ChannelKey& key) {
  {
    std::shared_lock<std::shared_mutex> read(channels_mu_);
    auto it = channels_.find(key);
    if (it != channels_.end()) {
      return *it->second;
    }
  }
  std::unique_lock<std::shared_mutex> write(channels_mu_);
  auto [it, _] = channels_.try_emplace(key, std::make_unique<Channel>());
  return *it->second;
}

void ChannelDemuxTransport::CheckWatermark(const Channel& ch) const {
  if (options_.channel_high_watermark_bytes > 0) {
    DSTRESS_CHECK(ch.queued_bytes <= options_.channel_high_watermark_bytes);
  }
}

void ChannelDemuxTransport::MeterSend(NodeId from, uint64_t bytes, uint64_t messages) {
  counters_[from]->bytes_sent.fetch_add(bytes, std::memory_order_relaxed);
  counters_[from]->messages_sent.fetch_add(messages, std::memory_order_relaxed);
}

bool ChannelDemuxTransport::TryMeterSelfDelivered(
    const std::vector<TrafficStats>& per_node_delta) {
  DSTRESS_CHECK(per_node_delta.size() == static_cast<size_t>(num_nodes_));
  traffic_started_.store(true, std::memory_order_release);
  {
    // An attached observer must see every message individually; refuse so
    // the caller falls back to literal sends. The shared lock orders this
    // against SetObserver exactly like a Send (see SetObserver).
    std::shared_lock<std::shared_mutex> read(channels_mu_);
    if (observer_.load(std::memory_order_acquire) != nullptr) {
      return false;
    }
  }
  for (int v = 0; v < num_nodes_; v++) {
    const TrafficStats& d = per_node_delta[static_cast<size_t>(v)];
    PerNodeCounters& c = *counters_[static_cast<size_t>(v)];
    c.bytes_sent.fetch_add(d.bytes_sent, std::memory_order_relaxed);
    c.bytes_received.fetch_add(d.bytes_received, std::memory_order_relaxed);
    c.messages_sent.fetch_add(d.messages_sent, std::memory_order_relaxed);
    c.messages_received.fetch_add(d.messages_received, std::memory_order_relaxed);
  }
  return true;
}

Bytes ChannelDemuxTransport::Recv(NodeId to, NodeId from, SessionId session) {
  DSTRESS_DCHECK(from >= 0 && from < num_nodes_ && to >= 0 && to < num_nodes_);
  Channel& ch = ChannelFor(ChannelKey{from, to, session});
  Bytes msg;
  {
    std::unique_lock<std::mutex> lock(ch.mu);
    ch.cv.wait(lock, [&] { return !ch.queue.empty() || PairDead(from, to); });
    if (ch.queue.empty()) {
      AbortDeadPeer(to, from, session);
    }
    // Loaded after the wait: a Recv parked before an (otherwise legal)
    // pre-traffic attach must still record its OnRecv.
    NetworkObserver* observer = observer_.load(std::memory_order_acquire);
    msg = std::move(ch.queue.front());
    ch.queue.pop_front();
    ch.queued_bytes -= msg.size();
    if (observer != nullptr) {
      observer->OnRecv(to, from, session, msg);
    }
  }
  counters_[to]->bytes_received.fetch_add(msg.size(), std::memory_order_relaxed);
  counters_[to]->messages_received.fetch_add(1, std::memory_order_relaxed);
  return msg;
}

std::vector<Bytes> ChannelDemuxTransport::RecvBatch(NodeId to, NodeId from, size_t count,
                                                    SessionId session) {
  DSTRESS_DCHECK(from >= 0 && from < num_nodes_ && to >= 0 && to < num_nodes_);
  std::vector<Bytes> messages;
  if (count == 0) {
    return messages;
  }
  messages.reserve(count);
  Channel& ch = ChannelFor(ChannelKey{from, to, session});
  uint64_t bytes = 0;
  {
    std::unique_lock<std::mutex> lock(ch.mu);
    while (messages.size() < count) {
      ch.cv.wait(lock, [&] { return !ch.queue.empty() || PairDead(from, to); });
      if (ch.queue.empty()) {
        AbortDeadPeer(to, from, session);
      }
      NetworkObserver* observer = observer_.load(std::memory_order_acquire);
      while (!ch.queue.empty() && messages.size() < count) {
        Bytes msg = std::move(ch.queue.front());
        ch.queue.pop_front();
        ch.queued_bytes -= msg.size();
        if (observer != nullptr) {
          observer->OnRecv(to, from, session, msg);
        }
        bytes += msg.size();
        messages.push_back(std::move(msg));
      }
    }
  }
  counters_[to]->bytes_received.fetch_add(bytes, std::memory_order_relaxed);
  counters_[to]->messages_received.fetch_add(count, std::memory_order_relaxed);
  return messages;
}

TrafficStats ChannelDemuxTransport::NodeStats(NodeId node) const {
  DSTRESS_CHECK(node >= 0 && node < num_nodes_);
  const PerNodeCounters& c = *counters_[node];
  TrafficStats s;
  s.bytes_sent = c.bytes_sent.load(std::memory_order_relaxed);
  s.bytes_received = c.bytes_received.load(std::memory_order_relaxed);
  s.messages_sent = c.messages_sent.load(std::memory_order_relaxed);
  s.messages_received = c.messages_received.load(std::memory_order_relaxed);
  return s;
}

uint64_t ChannelDemuxTransport::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& c : counters_) {
    total += c->bytes_sent.load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t ChannelDemuxTransport::MaxBytesPerNode() const {
  uint64_t max_bytes = 0;
  for (const auto& c : counters_) {
    uint64_t b = c->bytes_sent.load(std::memory_order_relaxed) +
                 c->bytes_received.load(std::memory_order_relaxed);
    if (b > max_bytes) {
      max_bytes = b;
    }
  }
  return max_bytes;
}

void ChannelDemuxTransport::ResetStats() {
  for (auto& c : counters_) {
    c->bytes_sent.store(0, std::memory_order_relaxed);
    c->bytes_received.store(0, std::memory_order_relaxed);
    c->messages_sent.store(0, std::memory_order_relaxed);
    c->messages_received.store(0, std::memory_order_relaxed);
  }
}

}  // namespace dstress::net
