// The per-bank node process of the TCP transport (the deployment unit the
// paper ran one-per-EC2-machine).
//
// A node process owns one bank's network presence: it rendezvouses with the
// driver, establishes a full mesh of TCP connections to its peer banks
// (NodeId -> socket), and then forwards wire frames — frames arriving from
// the driver with from == self go out on the mesh link for `to` (self-sends
// loop straight back up); frames arriving on a mesh link with to == self go
// up to the driver. All forwarding uses per-peer FrameWriterQueue writer
// threads, so a slow peer never blocks traffic to the others.
//
// Bootstrap (all control frames use wire.h's kControlSession and carry the
// bootstrap protocol version; see docs/wire-protocol.md):
//   1. node listens on listen_host:listen_port (OS-assigned port when 0),
//      connects to the driver's rendezvous address and sends
//      HELLO{node_id, advertised (host, port)};
//   2. driver answers PEERS{(host, port) of every bank} once every bank has
//      said hello — banks may live on different machines;
//   3. node dials every lower-numbered peer at that peer's advertised
//      endpoint (MESH_HELLO{node_id} identifies the dialer) and accepts one
//      connection from every higher-numbered peer, then reports READY;
//   4. data frames flow; driver EOF starts the shutdown cascade (drain and
//      close mesh writes, wait for peer EOFs, flush upstream, exit).
//
// HA mode (signalled by the PEERS frame's ha flag; docs/ha.md): the node
// keeps its mesh listener open, answers driver heartbeats, and survives
// faults instead of dying with the socket. A dropped driver link makes the
// relay loop re-dial the rendezvous with exponential backoff and resume
// its session (RESUME_HELLO / RESUME_READY); a restarted replacement
// process (`dstress_node --resume`) additionally re-dials every peer with
// MESH_RESUME, and each peer splices the fresh socket into its mesh in
// place of the dead one. The driver tells a deliberate teardown apart from
// a crash with an explicit SHUTDOWN frame before its half-close.
//
// RunTcpNode is the whole process body: TcpNetwork forks it directly for
// same-machine runs, and the dstress_node CLI (examples/dstress_node.cpp,
// src/cli/node_main.h) wraps it for spawning real separate processes —
// including on machines other than the driver's.
#ifndef SRC_NET_TCP_NODE_H_
#define SRC_NET_TCP_NODE_H_

#include <string>

#include "src/net/wire.h"

namespace dstress::net {

struct TcpNodeConfig {
  int node_id = -1;
  int num_nodes = 0;
  // The driver's rendezvous endpoint this node dials.
  std::string driver_host = "127.0.0.1";
  int driver_port = 0;
  // Interface the node's mesh listener binds; empty = "0.0.0.0" (all
  // interfaces), which works on any machine.
  std::string listen_host;
  // Mesh listen port; 0 = OS-assigned. Operators pin it when a scenario's
  // `node` directive declares a fixed endpoint for this bank.
  int listen_port = 0;
  // The host peers dial to reach this node (goes into HELLO). Empty = the
  // listen_host when that names a concrete interface, else the local
  // address of the driver connection — which is this machine's address on
  // the route to the driver, the right default on a flat network.
  std::string advertise_host;
  int bootstrap_timeout_ms = 30000;
  // Rejoin a live run as bank `node_id`'s replacement (docs/ha.md): dial
  // the rendezvous with RESUME_HELLO instead of HELLO and rebuild the mesh
  // with MESH_RESUME. Requires the run to have the HA layer enabled.
  bool resume = false;
};

// Runs one bank's relay loop to completion (driver EOF). Returns 0 on a
// clean shutdown, 1 when an HA session resume failed; aborts on protocol
// violations.
int RunTcpNode(const TcpNodeConfig& config);

}  // namespace dstress::net

#endif  // SRC_NET_TCP_NODE_H_
