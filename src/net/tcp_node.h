// The per-bank node process of the TCP transport (the deployment unit the
// paper ran one-per-EC2-machine).
//
// A node process owns one bank's network presence: it rendezvouses with the
// driver, establishes a full mesh of TCP connections to its peer banks
// (NodeId -> socket), and then forwards wire frames — frames arriving from
// the driver with from == self go out on the mesh link for `to` (self-sends
// loop straight back up); frames arriving on a mesh link with to == self go
// up to the driver. All forwarding uses per-peer FrameWriterQueue writer
// threads, so a slow peer never blocks traffic to the others.
//
// Bootstrap (all control frames use wire.h's kControlSession):
//   1. node listens on an OS-assigned port, connects to the driver's
//      rendezvous address and sends HELLO{node_id, listen_port};
//   2. driver answers PEERS{listen ports of all banks} once every bank has
//      said hello;
//   3. node dials every lower-numbered peer (MESH_HELLO{node_id} identifies
//      the dialer) and accepts one connection from every higher-numbered
//      peer, then reports READY;
//   4. data frames flow; driver EOF starts the shutdown cascade (drain and
//      close mesh writes, wait for peer EOFs, flush upstream, exit).
//
// RunTcpNode is the whole process body: TcpNetwork forks it directly for
// same-machine runs, and the dstress_node CLI (examples/dstress_node.cpp,
// src/cli/node_main.h) wraps it for spawning real separate processes.
#ifndef SRC_NET_TCP_NODE_H_
#define SRC_NET_TCP_NODE_H_

#include <string>
#include <vector>

#include "src/net/wire.h"

namespace dstress::net {

struct TcpNodeConfig {
  int node_id = -1;
  int num_nodes = 0;
  // The driver's rendezvous endpoint; also the interface this node binds.
  std::string driver_host = "127.0.0.1";
  int driver_port = 0;
  int bootstrap_timeout_ms = 30000;
};

// Runs one bank's relay loop to completion (driver EOF). Returns 0 on a
// clean shutdown; aborts on protocol violations.
int RunTcpNode(const TcpNodeConfig& config);

// Bootstrap control frames (shared between the node loop and the driver in
// tcp_network.cc). Parsers abort on malformed frames.
WireFrame MakeHelloFrame(NodeId node, int listen_port);
void ParseHelloFrame(const WireFrame& frame, NodeId* node, int* listen_port);
WireFrame MakePeersFrame(const std::vector<int>& listen_ports);
std::vector<int> ParsePeersFrame(const WireFrame& frame);
WireFrame MakeMeshHelloFrame(NodeId node);
NodeId ParseMeshHelloFrame(const WireFrame& frame);
WireFrame MakeReadyFrame(NodeId node);
NodeId ParseReadyFrame(const WireFrame& frame);

}  // namespace dstress::net

#endif  // SRC_NET_TCP_NODE_H_
