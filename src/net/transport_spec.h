// TransportSpec + the transport registry: how a deployment chooses the wire
// its run crosses, mirroring the ExecutionMode registry in
// src/engine/backend.h.
//
// A TransportSpec names a backend plus its options; MakeTransport resolves
// the name — first against factories installed with RegisterTransport (test
// doubles, out-of-tree backends), then against the built-ins:
//
//   "sim" — net::SimNetwork, the in-process backend (sim_network.h);
//   "tcp" — net::TcpNetwork, one process per bank exchanging wire.h frames
//           over real sockets (tcp_network.h).
//
// Nothing outside src/net names a concrete transport type: the scheduler
// (core::RuntimeConfig), the engine (engine::RunSpec) and the CLI
// (`transport` directive) all carry a TransportSpec and call MakeTransport.
#ifndef SRC_NET_TRANSPORT_SPEC_H_
#define SRC_NET_TRANSPORT_SPEC_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/net/transport.h"
#include "src/net/wire.h"

namespace dstress::net {

// Knobs for the fault-tolerance layer (src/ha, docs/ha.md). Only the TCP
// backend acts on them; the sim backend has no sockets to lose.
struct HaSpec {
  // Master switch: heartbeats, session resume, kept-open rendezvous.
  bool enabled = false;
  // Driver -> bank heartbeat period.
  int heartbeat_ms = 250;
  // Silence thresholds of the failure detector (ha::FailureDetector).
  int suspect_after_ms = 1000;
  int dead_after_ms = 3000;
  // How long a bank may stay dead before the run is declared lost and
  // blocked receivers abort instead of waiting forever.
  int resume_timeout_ms = 15000;
  // Cap on buffered undelivered frames kept for replay; overflow aborts.
  size_t resume_buffer_bytes = size_t{256} << 20;
  // Respawn a crashed driver-spawned bank with --resume. Requires
  // node_program (a forked in-library node cannot be re-exec'd).
  bool auto_respawn = true;
};

// One scripted fault for ha::FaultyTransport (`transport faulty`): fire
// `action` when the wrapped transport's cumulative send count reaches
// `after_sends`. Deterministic by construction — send counts, unlike
// timers, are identical across runs of the same scenario.
struct FaultSpec {
  enum class Action { kKillNode, kDropLink, kDelay };
  Action action = Action::kDelay;
  int node = 0;            // target bank (kKillNode / kDropLink)
  uint64_t after_sends = 0;
  int delay_ms = 0;        // kDelay: stall the offending Send this long
};

struct TransportSpec {
  // Registry key; see KnownTransportBackends().
  std::string backend = "sim";

  // Semantics shared by every backend (channel high-watermark cap).
  TransportOptions options;

  // --- "tcp" backend only ------------------------------------------------
  // Rendezvous address the per-bank processes dial. Port 0 = OS-assigned
  // (only usable when this driver spawns the nodes itself; external_nodes
  // deployments need a port the operators can be told in advance).
  std::string host = "127.0.0.1";
  int port = 0;
  // Interface the driver binds its rendezvous listener on; empty = host.
  // A multi-machine driver typically binds "0.0.0.0" here while `host`
  // stays the address spawned/locally-started nodes dial.
  std::string listen_host;
  // Address written into locally spawned nodes' --driver flag; empty =
  // host. Only matters when listen_host is a wildcard and the spawned
  // nodes must dial a concrete address.
  std::string advertise_host;
  // Multi-machine mode: spawn nothing and instead wait for num_nodes
  // externally started dstress_node processes (one per bank, possibly on
  // other machines) to dial the rendezvous and register. See
  // docs/scenario-format.md ("node" directive).
  bool external_nodes = false;
  // external_nodes only: the expected advertised endpoint per bank, from
  // the scenario's `node` directives. An empty host accepts any; a port of
  // 0 accepts any. A registration that contradicts this table aborts the
  // bootstrap (a mis-wired deployment fails at rendezvous, not mid-run).
  std::vector<PeerEndpoint> node_endpoints;
  // Path to a dstress_node binary to spawn one-per-bank; empty = fork the
  // in-library node loop directly (the test/CI default). Ignored when
  // external_nodes is set.
  std::string node_program;
  int bootstrap_timeout_ms = 30000;

  // --- HA layer (src/ha) --------------------------------------------------
  HaSpec ha;

  // --- "faulty" backend only (ha::FaultyTransport) ------------------------
  // The real backend the fault-injection wrapper decorates ("sim"/"tcp")
  // and the scripted fault schedule it fires.
  std::string faulty_inner = "sim";
  std::vector<FaultSpec> faults;

  // Copy of this spec with the channel high-watermark overridden when
  // `cap` is nonzero — the rule every scheduler-level knob
  // (RuntimeConfig::channel_high_watermark_bytes) applies before
  // MakeTransport.
  TransportSpec WithChannelHighWatermark(size_t cap) const {
    TransportSpec spec = *this;
    if (cap > 0) {
      spec.options.channel_high_watermark_bytes = cap;
    }
    return spec;
  }
};

// Convenience constructors, mirroring the topology helpers in run_spec.h.
TransportSpec SimTransportSpec();
TransportSpec TcpTransportSpec(std::string host = "127.0.0.1", int port = 0);

// A ready-to-use in-process transport — the one-liner for microbenchmarks
// and baselines that just need a default metered wire.
std::unique_ptr<Transport> MakeSimTransport(int num_nodes);

using TransportFactory =
    std::function<std::unique_ptr<Transport>(int num_nodes, const TransportSpec& spec)>;

// Installs (or replaces) the factory for `backend` process-wide.
// Thread-safe. Registering a built-in name overrides it.
void RegisterTransport(const std::string& backend, TransportFactory factory);

// Drops an installed factory; built-in names fall back to the built-in.
void ResetTransport(const std::string& backend);

// True if MakeTransport can resolve `backend` (built-in or registered).
bool KnownTransportBackend(const std::string& backend);

// Every currently resolvable backend name, built-ins first.
std::vector<std::string> KnownTransportBackends();

// Instantiates the transport `spec` describes for `num_nodes` banks.
// Aborts on an unknown backend (validate scenario input upstream with
// KnownTransportBackend).
std::unique_ptr<Transport> MakeTransport(const TransportSpec& spec, int num_nodes);

}  // namespace dstress::net

#endif  // SRC_NET_TRANSPORT_SPEC_H_
