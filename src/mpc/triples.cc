#include "src/mpc/triples.h"

#include "src/common/check.h"

namespace dstress::mpc {

namespace {

using ot::GetBit;
using ot::PackedWords;

PackedBits RandomPacked(crypto::ChaCha20Prg& prg, size_t words) {
  PackedBits out(words);
  prg.Fill(reinterpret_cast<uint8_t*>(out.data()), words * 8);
  return out;
}

}  // namespace

DealerTripleSource::DealerTripleSource(int party_index, int num_parties, uint64_t dealer_seed)
    : party_index_(party_index), num_parties_(num_parties), dealer_seed_(dealer_seed) {
  DSTRESS_CHECK(party_index >= 0 && party_index < num_parties);
}

BitTriples DealerTripleSource::Generate(size_t count) {
  size_t words = PackedWords(count);
  // Re-derive the dealer tape from the shared seed at the current offset.
  // Every party regenerates the same tape, so shares stay consistent
  // without communication — this is precisely why dealer mode is a
  // simulation of an offline phase rather than a secure protocol.
  BitTriples mine;
  mine.count = count;
  PackedBits a_total(words, 0);
  PackedBits b_total(words, 0);
  PackedBits c_rest(words, 0);
  for (int j = 0; j < num_parties_; j++) {
    auto prg_a = crypto::ChaCha20Prg::FromSeed(dealer_seed_ + offset_, 4ULL * j + 0);
    auto prg_b = crypto::ChaCha20Prg::FromSeed(dealer_seed_ + offset_, 4ULL * j + 1);
    PackedBits a_j = RandomPacked(prg_a, words);
    PackedBits b_j = RandomPacked(prg_b, words);
    for (size_t w = 0; w < words; w++) {
      a_total[w] ^= a_j[w];
      b_total[w] ^= b_j[w];
    }
    PackedBits c_j;
    if (j > 0) {
      auto prg_c = crypto::ChaCha20Prg::FromSeed(dealer_seed_ + offset_, 4ULL * j + 2);
      c_j = RandomPacked(prg_c, words);
      for (size_t w = 0; w < words; w++) {
        c_rest[w] ^= c_j[w];
      }
    }
    if (j == party_index_) {
      mine.a = std::move(a_j);
      mine.b = std::move(b_j);
      mine.c = std::move(c_j);  // empty for party 0, fixed below
    }
  }
  if (party_index_ == 0) {
    mine.c.assign(words, 0);
    for (size_t w = 0; w < words; w++) {
      mine.c[w] = (a_total[w] & b_total[w]) ^ c_rest[w];
    }
  }
  offset_ += count;
  return mine;
}

OtTripleSource::OtTripleSource(net::Transport* net, std::vector<net::NodeId> parties,
                               int my_index, crypto::ChaCha20Prg prg, net::SessionId session)
    : net_(net),
      parties_(std::move(parties)),
      my_index_(my_index),
      prg_(std::move(prg)),
      session_(session) {
  DSTRESS_CHECK(my_index_ >= 0 && my_index_ < static_cast<int>(parties_.size()));
}

OtTripleSource::~OtTripleSource() = default;

int OtTripleSource::RoundCount() const {
  int n = static_cast<int>(parties_.size());
  int m = (n % 2 == 0) ? n : n + 1;
  return m - 1;
}

int OtTripleSource::PeerInRound(int round) const {
  // Circle-method tournament over m players (m even; the last slot is a bye
  // when the real party count is odd). Slot m-1 is fixed; the others rotate.
  int n = static_cast<int>(parties_.size());
  int m = (n % 2 == 0) ? n : n + 1;
  auto slot_player = [&](int slot) -> int {
    if (slot == m - 1) {
      return m - 1;
    }
    return (round + slot) % (m - 1);
  };
  for (int k = 0; k < m / 2; k++) {
    int p1 = slot_player(k);
    int p2 = slot_player(m - 1 - k);
    if (p1 == my_index_ || p2 == my_index_) {
      int peer = (p1 == my_index_) ? p2 : p1;
      if (peer >= n) {
        return -1;  // bye against the padding slot
      }
      return peer;
    }
  }
  return -1;
}

void OtTripleSource::EnsureSetup() {
  if (setup_done_) {
    return;
  }
  for (int round = 0; round < RoundCount(); round++) {
    int peer = PeerInRound(round);
    if (peer < 0) {
      continue;
    }
    PeerSession session;
    net::NodeId self_node = parties_[my_index_];
    net::NodeId peer_node = parties_[peer];
    if (my_index_ < peer) {
      // Direction lower-as-extension-sender first, then the reverse.
      session.sender = std::make_unique<ot::IknpSender>(net_, self_node, peer_node, prg_, session_);
      session.receiver = std::make_unique<ot::IknpReceiver>(net_, self_node, peer_node, prg_, session_);
    } else {
      session.receiver = std::make_unique<ot::IknpReceiver>(net_, self_node, peer_node, prg_, session_);
      session.sender = std::make_unique<ot::IknpSender>(net_, self_node, peer_node, prg_, session_);
    }
    sessions_.emplace(peer, std::move(session));
  }
  setup_done_ = true;
}

BitTriples OtTripleSource::Generate(size_t count) {
  EnsureSetup();
  size_t words = PackedWords(count);

  BitTriples mine;
  mine.count = count;
  mine.a = RandomPacked(prg_, words);
  mine.b = RandomPacked(prg_, words);
  mine.c.assign(words, 0);
  for (size_t w = 0; w < words; w++) {
    mine.c[w] = mine.a[w] & mine.b[w];
  }

  net::NodeId self_node = parties_[my_index_];
  for (int round = 0; round < RoundCount(); round++) {
    int peer = PeerInRound(round);
    if (peer < 0) {
      continue;
    }
    PeerSession& session = sessions_.at(peer);
    net::NodeId peer_node = parties_[peer];

    auto run_as_sender = [&] {
      // I contribute a_i; the peer's choice bits are its b_j. I keep r0 as
      // my share of a_i AND b_j and send the correction r0^r1^a_i.
      ot::RandomOtPairs pairs = session.sender->Extend(count);
      ByteWriter corrections;
      for (size_t w = 0; w < words; w++) {
        corrections.U64(pairs.r0[w] ^ pairs.r1[w] ^ mine.a[w]);
        mine.c[w] ^= pairs.r0[w];
      }
      net_->Send(self_node, peer_node, corrections.Take(), session_);
    };
    auto run_as_receiver = [&] {
      // My choice bits are b_i; I receive r_{b} plus the correction and end
      // with r0 ^ (b_i AND a_peer).
      ot::RandomOtChosen chosen = session.receiver->Extend(mine.b, count);
      Bytes corrections = net_->Recv(self_node, peer_node, session_);
      DSTRESS_CHECK(corrections.size() == words * 8);
      ByteReader reader(corrections);
      for (size_t w = 0; w < words; w++) {
        uint64_t d = reader.U64();
        mine.c[w] ^= chosen.r[w] ^ (mine.b[w] & d);
      }
    };

    if (my_index_ < peer) {
      run_as_sender();
      run_as_receiver();
    } else {
      run_as_receiver();
      run_as_sender();
    }
  }
  return mine;
}

}  // namespace dstress::mpc
