#include "src/mpc/triples.h"

#include "src/common/check.h"

namespace dstress::mpc {

namespace {

using ot::GetBit;
using ot::PackedWords;

PackedBits RandomPacked(crypto::ChaCha20Prg& prg, size_t words) {
  PackedBits out(words);
  prg.Fill(reinterpret_cast<uint8_t*>(out.data()), words * 8);
  return out;
}

}  // namespace

BitTriples SliceTriples(const BitTriples& src, size_t start, size_t count) {
  DSTRESS_CHECK(start + count <= src.count);
  size_t words = PackedWords(count);
  BitTriples out;
  out.count = count;
  out.a.assign(words, 0);
  out.b.assign(words, 0);
  out.c.assign(words, 0);
  for (size_t i = 0; i < count; i++) {
    ot::SetBit(out.a, i, GetBit(src.a, start + i));
    ot::SetBit(out.b, i, GetBit(src.b, start + i));
    if (!src.c.empty()) {
      ot::SetBit(out.c, i, GetBit(src.c, start + i));
    }
  }
  return out;
}

DealerTripleSource::DealerTripleSource(int party_index, int num_parties, uint64_t dealer_seed)
    : party_index_(party_index), num_parties_(num_parties), dealer_seed_(dealer_seed) {
  DSTRESS_CHECK(party_index >= 0 && party_index < num_parties);
}

BitTriples DealerTripleSource::Generate(size_t count) {
  size_t words = PackedWords(count);
  // Re-derive the dealer tape from the shared seed. Every party regenerates
  // the same streams, so shares stay consistent without communication —
  // this is precisely why dealer mode is a simulation of an offline phase
  // rather than a secure protocol. Each call claims the next 4*num_parties
  // block of stream ids under the fixed seed (see calls_ in the header).
  //
  // Parties j > 0 hold plain PRG streams (a_j, b_j, c_j) and derive only
  // their own; party 0's c closes the relation c = a AND b, which is the
  // only place the other parties' streams are needed. The seed code had
  // every party derive every stream — an 8x tape-derivation overhead at
  // block size 8 that the batched data plane's bulk draws made visible.
  uint64_t stream_base = calls_ * (4ULL * static_cast<uint64_t>(num_parties_));
  calls_ += 1;
  auto stream = [&](int j, uint64_t role) {
    auto prg = crypto::ChaCha20Prg::FromSeed(dealer_seed_, stream_base + 4ULL * j + role);
    return RandomPacked(prg, words);
  };
  BitTriples mine;
  mine.count = count;
  mine.a = stream(party_index_, 0);
  mine.b = stream(party_index_, 1);
  if (party_index_ != 0) {
    mine.c = stream(party_index_, 2);
    return mine;
  }
  PackedBits a_total = mine.a;
  PackedBits b_total = mine.b;
  mine.c.assign(words, 0);
  for (int j = 1; j < num_parties_; j++) {
    PackedBits a_j = stream(j, 0);
    PackedBits b_j = stream(j, 1);
    PackedBits c_j = stream(j, 2);
    for (size_t w = 0; w < words; w++) {
      a_total[w] ^= a_j[w];
      b_total[w] ^= b_j[w];
      mine.c[w] ^= c_j[w];
    }
  }
  for (size_t w = 0; w < words; w++) {
    mine.c[w] ^= a_total[w] & b_total[w];
  }
  return mine;
}

std::unique_ptr<PeerIknp> IknpSessionCache::Take(net::NodeId self, net::NodeId peer,
                                                 net::SessionId session) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find({self, peer, session});
  if (it == entries_.end()) {
    return nullptr;
  }
  std::unique_ptr<PeerIknp> pair = std::move(it->second);
  entries_.erase(it);
  return pair;
}

void IknpSessionCache::Put(net::NodeId self, net::NodeId peer, net::SessionId session,
                           std::unique_ptr<PeerIknp> pair) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_[{self, peer, session}] = std::move(pair);
}

OtTripleSource::OtTripleSource(net::Transport* net, std::vector<net::NodeId> parties,
                               int my_index, crypto::ChaCha20Prg prg, net::SessionId session,
                               IknpSessionCache* cache)
    : net_(net),
      parties_(std::move(parties)),
      my_index_(my_index),
      prg_(std::move(prg)),
      session_(session),
      cache_(cache) {
  DSTRESS_CHECK(my_index_ >= 0 && my_index_ < static_cast<int>(parties_.size()));
}

OtTripleSource::~OtTripleSource() {
  if (cache_ == nullptr) {
    return;
  }
  net::NodeId self_node = parties_[my_index_];
  for (auto& [peer, pair] : sessions_) {
    cache_->Put(self_node, parties_[peer], session_, std::move(pair));
  }
}

int OtTripleSource::RoundCount() const {
  int n = static_cast<int>(parties_.size());
  int m = (n % 2 == 0) ? n : n + 1;
  return m - 1;
}

int OtTripleSource::PeerInRound(int round) const {
  // Circle-method tournament over m players (m even; the last slot is a bye
  // when the real party count is odd). Slot m-1 is fixed; the others rotate.
  int n = static_cast<int>(parties_.size());
  int m = (n % 2 == 0) ? n : n + 1;
  auto slot_player = [&](int slot) -> int {
    if (slot == m - 1) {
      return m - 1;
    }
    return (round + slot) % (m - 1);
  };
  for (int k = 0; k < m / 2; k++) {
    int p1 = slot_player(k);
    int p2 = slot_player(m - 1 - k);
    if (p1 == my_index_ || p2 == my_index_) {
      int peer = (p1 == my_index_) ? p2 : p1;
      if (peer >= n) {
        return -1;  // bye against the padding slot
      }
      return peer;
    }
  }
  return -1;
}

void OtTripleSource::EnsureSetup() {
  if (setup_done_) {
    return;
  }
  for (int round = 0; round < RoundCount(); round++) {
    int peer = PeerInRound(round);
    if (peer < 0) {
      continue;
    }
    net::NodeId self_node = parties_[my_index_];
    net::NodeId peer_node = parties_[peer];
    std::unique_ptr<PeerIknp> session;
    if (cache_ != nullptr) {
      session = cache_->Take(self_node, peer_node, session_);
    }
    if (session == nullptr) {
      session = std::make_unique<PeerIknp>();
      if (my_index_ < peer) {
        // Direction lower-as-extension-sender first, then the reverse.
        session->sender =
            std::make_unique<ot::IknpSender>(net_, self_node, peer_node, prg_, session_);
        session->receiver =
            std::make_unique<ot::IknpReceiver>(net_, self_node, peer_node, prg_, session_);
      } else {
        session->receiver =
            std::make_unique<ot::IknpReceiver>(net_, self_node, peer_node, prg_, session_);
        session->sender =
            std::make_unique<ot::IknpSender>(net_, self_node, peer_node, prg_, session_);
      }
    }
    sessions_.emplace(peer, std::move(session));
  }
  setup_done_ = true;
}

BitTriples OtTripleSource::Generate(size_t count) {
  EnsureSetup();
  size_t words = PackedWords(count);

  BitTriples mine;
  mine.count = count;
  mine.a = RandomPacked(prg_, words);
  mine.b = RandomPacked(prg_, words);
  mine.c.assign(words, 0);
  for (size_t w = 0; w < words; w++) {
    mine.c[w] = mine.a[w] & mine.b[w];
  }

  net::NodeId self_node = parties_[my_index_];
  for (int round = 0; round < RoundCount(); round++) {
    int peer = PeerInRound(round);
    if (peer < 0) {
      continue;
    }
    PeerIknp& session = *sessions_.at(peer);
    net::NodeId peer_node = parties_[peer];

    auto run_as_sender = [&] {
      // I contribute a_i; the peer's choice bits are its b_j. I keep r0 as
      // my share of a_i AND b_j and send the correction r0^r1^a_i.
      ot::RandomOtPairs pairs = session.sender->Extend(count);
      ByteWriter corrections;
      for (size_t w = 0; w < words; w++) {
        corrections.U64(pairs.r0[w] ^ pairs.r1[w] ^ mine.a[w]);
        mine.c[w] ^= pairs.r0[w];
      }
      net_->Send(self_node, peer_node, corrections.Take(), session_);
    };
    auto run_as_receiver = [&] {
      // My choice bits are b_i; I receive r_{b} plus the correction and end
      // with r0 ^ (b_i AND a_peer).
      ot::RandomOtChosen chosen = session.receiver->Extend(mine.b, count);
      Bytes corrections = net_->Recv(self_node, peer_node, session_);
      DSTRESS_CHECK(corrections.size() == words * 8);
      ByteReader reader(corrections);
      for (size_t w = 0; w < words; w++) {
        uint64_t d = reader.U64();
        mine.c[w] ^= chosen.r[w] ^ (mine.b[w] & d);
      }
    };

    if (my_index_ < peer) {
      run_as_sender();
      run_as_receiver();
    } else {
      run_as_receiver();
      run_as_sender();
    }
  }
  return mine;
}

}  // namespace dstress::mpc
