// Node-pair OT triple factory: the batched offline phase.
//
// The per-role path (OtTripleSource) gives every (role-group, member)
// instance its own IKNP sessions, so each role pays a 128-base-OT setup per
// peer and issues tiny per-batch extends. On one executing node those roles
// overwhelmingly face the same peer nodes — the factory exploits that:
//
//  * ONE IknpSender/IknpReceiver pair per unordered node pair per run
//    (lazily established the first time two nodes co-occur in a wave, kept
//    for the whole run), so base OTs are paid O(node pairs) instead of
//    O(roles x peers).
//  * Per wave, each co-occurring node pair runs ONE bulk Extend sized to
//    the aggregate demand of every role group the two nodes share, with
//    cross-term corrections for all groups batched into one message per
//    direction.
//  * A partitioner deals each group's shares out to per-(group, member)
//    TripleSource views — blocking cursors over a buffered stream with
//    SliceTriples semantics — so GmwParty / EvalBatchInstances consume
//    triples exactly as before and the online phase is untouched.
//
// Pipelining: with Options::pipeline, Enqueue hands waves to a background
// dispatcher thread (with its own WorkerPool, so offline role tasks never
// compete for the runtime's phase scheduler) and returns immediately; the
// runtime enqueues iteration i+1's demand while iteration i evaluates
// online. The queue is bounded (max_pending_waves) — Enqueue blocks when
// the factory is that far ahead, which is the pool's backpressure.
//
// Fidelity contract: every share is derived from per-(group, member) PRG
// streams advanced once per wave plus OT extensions whose order within a
// wave is fixed by the tournament schedule and tag-sorted segment layout.
// Generation is therefore deterministic in (seed, wave sequence) no matter
// how generation and consumption interleave, so pipelined and unpipelined
// runs release bit-identical figures and identical per-node TrafficStats.
// All factory traffic rides session ids under kOfflineSessionNamespace,
// which is how tests and bench_fig6 split offline from online traffic.
#ifndef SRC_MPC_TRIPLE_FACTORY_H_
#define SRC_MPC_TRIPLE_FACTORY_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/worker_pool.h"
#include "src/crypto/chacha20.h"
#include "src/mpc/triples.h"
#include "src/net/transport.h"

namespace dstress::mpc {

// Session-id namespace (src/core/runtime.cc owns 1..7) for ALL OT-triple
// traffic — factory waves and the legacy per-role path alike. Observers
// classify a message as offline iff (session >> 60) == 8.
inline constexpr net::SessionId kOfflineSessionNamespace = 8ULL << 60;

// One role group's share of a wave: `parties[i]` hosts member i and will
// draw `count` triples from ViewFor(tag, i). Tags must be unique within a
// wave (they name the per-group PRG streams and the segment sort order);
// the runtime reuses its role tags, which satisfy this per phase.
struct TripleDemand {
  uint64_t tag = 0;
  std::vector<net::NodeId> parties;
  size_t count = 0;
};

struct TripleFactoryOptions {
  net::SessionId session = kOfflineSessionNamespace;
  uint64_t prg_seed = 0;
  // Generate waves on a background dispatcher thread (Enqueue returns
  // immediately, bounded by max_pending_waves). Off = Enqueue generates
  // synchronously on the caller; the A/B knob behind the pipelined ==
  // unpipelined fidelity tests.
  bool pipeline = true;
  int max_pending_waves = 2;
};

struct TripleFactoryStats {
  double offline_seconds = 0;       // wall time spent generating waves
  double online_wait_seconds = 0;   // consumer time blocked on the pool
  uint64_t waves = 0;
  uint64_t triples = 0;             // per-member triples summed over demands
  uint64_t pair_sessions = 0;       // distinct node pairs with IKNP state
};

class TripleFactory {
 public:
  TripleFactory(net::Transport* net, TripleFactoryOptions options);
  ~TripleFactory();

  TripleFactory(const TripleFactory&) = delete;
  TripleFactory& operator=(const TripleFactory&) = delete;

  // Registers one offline wave. Every (tag, member) gains `count` promised
  // triples; views fail fast (DSTRESS_CHECK) if consumption ever outruns
  // what was promised, instead of deadlocking on triples that will never
  // arrive. Blocks when max_pending_waves are already queued.
  void Enqueue(std::vector<TripleDemand> demands);

  // Blocking cursor view over member `member`'s stream of `tag`. Stable for
  // the factory's lifetime; Generate blocks until the wave that promised
  // the range has been dealt out. Views are local (no traffic), so
  // consumers need no inter-node call-order coordination beyond their own
  // stream order.
  TripleSource* ViewFor(uint64_t tag, int member);

  TripleFactoryStats stats() const;

 private:
  // Per-(tag, member) buffered stream: promised/generated/consumed are
  // cumulative bit counts, `pending` holds [consumed, generated) with its
  // front `cursor` bits already drawn.
  struct Buffer {
    std::mutex mu;
    std::condition_variable cv;
    BitTriples pending;
    size_t cursor = 0;
    uint64_t promised = 0;
    uint64_t generated = 0;
    uint64_t consumed = 0;
    uint64_t waves_drawn = 0;  // PRG stream counter; generation side only
  };

  class View;

  Buffer* BufferFor(uint64_t tag, int member);
  PeerIknp& PairFor(net::NodeId self, net::NodeId peer);
  void GenerateWave(const std::vector<TripleDemand>& demands);
  void DispatcherLoop();
  void AddWaitSeconds(double seconds);

  net::Transport* net_;
  TripleFactoryOptions options_;
  core::WorkerPool pool_;

  std::mutex buffers_mu_;
  std::map<std::pair<uint64_t, int>, std::unique_ptr<Buffer>> buffers_;
  std::map<std::pair<uint64_t, int>, std::unique_ptr<View>> views_;

  // Established IKNP state per (self, peer). The outer map is guarded by
  // pairs_mu_; each inner per-self map is only ever touched by the worker
  // task playing `self` (waves run one at a time, and RunGrouped's join
  // orders successive waves' accesses).
  std::mutex pairs_mu_;
  std::map<net::NodeId, std::map<net::NodeId, std::unique_ptr<PeerIknp>>> pair_sessions_;

  // Dispatcher state (pipeline mode).
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::vector<TripleDemand>> pending_waves_;
  bool shutdown_ = false;
  std::thread dispatcher_;

  mutable std::mutex stats_mu_;
  TripleFactoryStats stats_;
};

}  // namespace dstress::mpc

#endif  // SRC_MPC_TRIPLE_FACTORY_H_
