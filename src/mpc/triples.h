// Beaver multiplication triples for boolean GMW.
//
// A bit triple is an XOR-sharing of (a, b, c) with c = a AND b. The GMW
// engine consumes one triple per AND gate: parties open d = x^a and
// e = y^b, then locally compute shares of x AND y.
//
// Two sources are provided:
//
//  * OtTripleSource — the real protocol. Every ordered pair of parties runs
//    IKNP-extended random OTs to produce XOR shares of the cross terms
//    a_i AND b_j; sessions are scheduled with a round-robin tournament so
//    disjoint pairs run concurrently. This is what the paper's prototype
//    does via the Choi et al. GMW implementation with OT extensions.
//
//  * DealerTripleSource — a simulated offline phase: all parties derive
//    their shares deterministically from a shared dealer seed. This mode
//    provides NO privacy (any party can recompute the dealer tape) and
//    exists so that large benchmark sweeps can exercise the online phase at
//    scale; see DESIGN.md §2.
#ifndef SRC_MPC_TRIPLES_H_
#define SRC_MPC_TRIPLES_H_

#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "src/crypto/chacha20.h"
#include "src/net/transport.h"
#include "src/ot/iknp.h"

namespace dstress::mpc {

using ot::PackedBits;

struct BitTriples {
  PackedBits a;
  PackedBits b;
  PackedBits c;
  size_t count = 0;
};

class TripleSource {
 public:
  virtual ~TripleSource() = default;
  // Collective: every party in the group must call Generate with the same
  // count, in the same protocol position. Counts may vary call to call
  // (the batched evaluation path draws one bulk range per EvalBatch) as
  // long as all parties' call sequences match.
  virtual BitTriples Generate(size_t count) = 0;
};

// One extension-sender/receiver pair toward a peer, established with one
// base-OT setup in each direction.
struct PeerIknp {
  std::unique_ptr<ot::IknpSender> sender;
  std::unique_ptr<ot::IknpReceiver> receiver;
};

// Shared pool of established IKNP sessions keyed by (self, peer, session).
// An OtTripleSource constructed with a cache checks pairs out in
// EnsureSetup and returns them on destruction, so a role that is destroyed
// and re-created over the same session resumes the peer's OT-extension
// stream instead of re-running the 128-base-OT setup (both sides must
// regenerate symmetrically — the extension counters only advance on
// collective Extend calls, so a cached pair is always stream-consistent
// with its peer). Thread-safe.
class IknpSessionCache {
 public:
  std::unique_ptr<PeerIknp> Take(net::NodeId self, net::NodeId peer, net::SessionId session);
  void Put(net::NodeId self, net::NodeId peer, net::SessionId session,
           std::unique_ptr<PeerIknp> pair);

 private:
  std::mutex mu_;
  std::map<std::tuple<net::NodeId, net::NodeId, net::SessionId>, std::unique_ptr<PeerIknp>>
      entries_;
};

// Copies triples [start, start+count) of `src` into a fresh BitTriples.
// Used to split one bulk Generate across the instances of an EvalBatch.
BitTriples SliceTriples(const BitTriples& src, size_t start, size_t count);

class DealerTripleSource : public TripleSource {
 public:
  DealerTripleSource(int party_index, int num_parties, uint64_t dealer_seed);
  BitTriples Generate(size_t count) override;

  // Checkpoint support (src/ha/checkpoint.h): the call counter is this
  // source's only cross-call state, so persisting it and fast-forwarding a
  // freshly constructed source reproduces the tape position exactly.
  uint64_t calls() const { return calls_; }
  void FastForward(uint64_t calls) { calls_ = calls; }

 private:
  int party_index_;
  int num_parties_;
  uint64_t dealer_seed_;
  // Generate *calls* completed so far — advanced once per call, not once
  // per triple. The call counter selects a disjoint PRG stream-id range
  // under the fixed dealer seed, so parties stay in sync for any agreed
  // sequence of batch sizes and tapes can never collide with another
  // source's differently-seeded streams (the old per-bit advance perturbed
  // the seed itself, which adjacent sources could alias).
  uint64_t calls_ = 0;
};

class OtTripleSource : public TripleSource {
 public:
  // `parties` are the transport node ids of the group, `my_index` is this
  // party's position in that list. Base-OT setup with every peer happens
  // lazily on the first Generate call. With a non-null `cache`, established
  // peer sessions are checked out of / returned to the cache so a
  // regenerated role reuses its base-OT setup (see IknpSessionCache).
  OtTripleSource(net::Transport* net, std::vector<net::NodeId> parties, int my_index,
                 crypto::ChaCha20Prg prg, net::SessionId session = 0,
                 IknpSessionCache* cache = nullptr);
  ~OtTripleSource() override;

  BitTriples Generate(size_t count) override;

 private:
  void EnsureSetup();
  // Tournament schedule: returns the peer index this party meets in
  // `round`, or -1 for a bye. Rounds 0 .. RoundCount()-1 enumerate all
  // unordered pairs with disjoint pairs per round.
  int PeerInRound(int round) const;
  int RoundCount() const;

  net::Transport* net_;
  std::vector<net::NodeId> parties_;
  int my_index_;
  crypto::ChaCha20Prg prg_;
  net::SessionId session_;
  IknpSessionCache* cache_;
  bool setup_done_ = false;
  std::map<int, std::unique_ptr<PeerIknp>> sessions_;  // keyed by peer index
};

}  // namespace dstress::mpc

#endif  // SRC_MPC_TRIPLES_H_
