// Lockstep batched GMW evaluation — the secure half of the packed-share
// data plane (docs/packed-eval.md).
//
// One node usually plays roles in many concurrent GMW instances: it is a
// member of several vertex blocks in a computation step, of several leaf or
// combine blocks in an aggregation tree. The seed runtime ran each
// (instance, member) role as its own pool task with its own GmwParty, so a
// node paid the per-layer synchronization cost (enqueue wakeups, blocking
// receives, context switches) once per instance per AND layer. Because all
// of a step's instances evaluate circuits with aligned layer structure,
// those roles can instead advance through the AND layers in lockstep: one
// task per node evaluates all of its instances together, bitsliced
// instance-minor (PackedShareMatrix) so XOR/NOT/CONST gates cost one word
// op per 64 instances, and ships each layer's d/e openings for all
// instances in one coalesced SendBatch run per peer.
//
// Wire compatibility is a hard invariant: the batched path sends exactly
// the same per-instance payloads as the unbatched path — one
// [d-words | e-words] block per instance per nonempty AND layer per peer,
// byte-identical to GmwParty::Eval's message — as individual messages
// inside the SendBatch run. Per-node TrafficStats (bytes *and* message
// counts) are therefore bit-identical to the unbatched schedule; only the
// session ids and the synchronization cost differ. Communication rounds
// stay equal to the circuit's AND depth.
//
// Deadlock freedom: all participating nodes run their batch call
// concurrently (the runtime admits the whole phase as one worker-pool
// group) and every round's sends are issued before any of its blocking
// receives — a standard bulk-synchronous superstep. Across nodes, the
// per-peer message order is fixed by each instance's `order_key`, on which
// all parties of an instance agree.
//
// Because each instance names its own executing node (parties[my_index]),
// one call may also cover the roles of *many* nodes — the runtime's
// single-scheduler mode: with a non-interactive triple source the whole
// phase runs as one call on one thread, every Recv is satisfied by a Send
// earlier in the same round, no thread ever parks, and the bitslicing
// width grows to every role of the phase. Wire traffic is unchanged — the
// same messages cross the same (from, to) channels either way.
#ifndef SRC_MPC_BATCH_EVAL_H_
#define SRC_MPC_BATCH_EVAL_H_

#include <cstdint>
#include <vector>

#include "src/circuit/eval_plan.h"
#include "src/mpc/packed.h"
#include "src/mpc/sharing.h"
#include "src/mpc/triples.h"
#include "src/net/transport.h"

namespace dstress::mpc {

// One GMW instance this node participates in.
struct BatchInstance {
  // Evaluation plan of the instance's circuit (precompiled once per
  // circuit; see circuit::EvalPlan). Instances sharing a plan are bitsliced
  // into one PackedShareMatrix internally.
  const circuit::EvalPlan* plan = nullptr;
  // Transport node ids of the instance's parties, in the fixed order all
  // parties agree on; my_index is the executing node's position (the
  // instance runs as node parties[my_index]).
  std::vector<net::NodeId> parties;
  int my_index = 0;
  // This party's triples for the instance, >= plan->stats().num_and of
  // them, consumed in AND-layer round order (prefetched by the caller so
  // collective TripleSource protocols run in a globally consistent order).
  BitTriples triples;
  // This party's XOR share of every circuit input, in input order.
  BitVector input_shares;
  // Deterministic cross-party ordering key (e.g. the vertex id): parties of
  // an instance must all use the same key, and two instances sharing two or
  // more parties must have distinct keys.
  uint64_t order_key = 0;
};

struct BatchStats {
  size_t rounds = 0;            // exchange rounds executed
  size_t triples_consumed = 0;  // summed over instances
};

// Evaluates every instance in lockstep, exchanging openings on `session`.
// Returns each instance's output shares, parallel to `instances`.
// Collective: every party of every instance must run a batch call covering
// that instance with the same session — either concurrently from its own
// thread, or inside this very call (the many-nodes single-scheduler mode
// above). `stats` may be nullptr.
std::vector<BitVector> EvalBatchInstances(net::Transport* net, net::SessionId session,
                                          std::vector<BatchInstance> instances,
                                          BatchStats* stats = nullptr);

}  // namespace dstress::mpc

#endif  // SRC_MPC_BATCH_EVAL_H_
