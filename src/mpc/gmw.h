// GMW protocol engine (Goldreich–Micali–Wigderson 1987) for boolean
// circuits, generalized to k+1 parties with XOR sharing.
//
// This is the workhorse behind every DStress computation step: the members
// of a block each hold XOR shares of the circuit inputs (vertex state +
// incoming messages) and jointly evaluate the update function so that both
// inputs and outputs stay shared and no individual member learns anything
// (paper §3.3, §3.6).
//
// Evaluation strategy:
//  * XOR and NOT gates are local (free).
//  * AND gates consume a Beaver triple and require opening d = x^a,
//    e = y^b. All AND gates of the same multiplicative depth are batched
//    into one bit-packed all-to-all exchange, so the number of
//    communication rounds equals the circuit's AND depth, not its gate
//    count. This mirrors the layer batching that makes the paper's
//    measured MPC costs linear in block size per node.
//
// Collusion resistance: with k+1 parties, any k colluding members see only
// uniformly random shares (GMW's guarantee), matching assumption 3 of the
// threat model.
#ifndef SRC_MPC_GMW_H_
#define SRC_MPC_GMW_H_

#include <vector>

#include "src/circuit/circuit.h"
#include "src/mpc/sharing.h"
#include "src/mpc/triples.h"
#include "src/net/channel.h"
#include "src/net/transport.h"

namespace dstress::mpc {

class GmwParty {
 public:
  // `parties` lists the transport node ids of the block members in a fixed
  // order all members agree on; `my_index` is this party's position.
  GmwParty(net::Transport* net, std::vector<net::NodeId> parties, int my_index,
           TripleSource* triples, net::SessionId session = 0);

  // Evaluates `circuit` on XOR-shared inputs. `input_shares` is this
  // party's share of every input bit (in circuit input order). Returns this
  // party's share of every output bit. Collective: all parties must call
  // Eval with the same circuit, concurrently.
  BitVector Eval(const circuit::Circuit& circuit, const BitVector& input_shares);

  // Opens shared bits to all parties (used for final outputs that are
  // public by design). Collective.
  BitVector Open(const BitVector& my_shares);

  int my_index() const { return my_index_; }
  int num_parties() const { return static_cast<int>(channel_.peers().size()); }
  bool is_leader() const { return my_index_ == 0; }

 private:
  // Bounds-checks my_index, then builds the party's session endpoint (the
  // channel's peer list doubles as the party list).
  static net::Channel MakeChannel(net::Transport* net, std::vector<net::NodeId> parties,
                                  int my_index, net::SessionId session);

  // All-to-all exchange of a packed word block; returns the XOR of all
  // parties' blocks (i.e., the opened values). Sends coalesce through the
  // channel: one buffered broadcast, one flush, then the blocking receives.
  std::vector<uint64_t> ExchangeXor(const std::vector<uint64_t>& mine);

  net::Channel channel_;
  int my_index_;
  TripleSource* triples_;
};

}  // namespace dstress::mpc

#endif  // SRC_MPC_GMW_H_
