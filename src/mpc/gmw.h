// GMW protocol engine (Goldreich–Micali–Wigderson 1987) for boolean
// circuits, generalized to k+1 parties with XOR sharing.
//
// This is the workhorse behind every DStress computation step: the members
// of a block each hold XOR shares of the circuit inputs (vertex state +
// incoming messages) and jointly evaluate the update function so that both
// inputs and outputs stay shared and no individual member learns anything
// (paper §3.3, §3.6).
//
// Evaluation strategy:
//  * XOR and NOT gates are local (free).
//  * AND gates consume a Beaver triple and require opening d = x^a,
//    e = y^b. All AND gates of the same multiplicative depth are batched
//    into one bit-packed all-to-all exchange, so the number of
//    communication rounds equals the circuit's AND depth, not its gate
//    count. This mirrors the layer batching that makes the paper's
//    measured MPC costs linear in block size per node.
//  * Independent instances of the same circuit batch further: EvalBatch
//    evaluates W instances together over a bitsliced PackedShareMatrix
//    (packed.h), turning the free gates into word ops (64 instances per
//    uint64 lane), drawing all W * num_and triples in one bulk
//    TripleSource::Generate, and coalescing each AND layer's W opening
//    messages per peer into one SendBatch run. Rounds stay equal to the
//    AND depth, and each instance's messages stay byte-identical to a solo
//    Eval — see batch_eval.h. Eval is the W=1 case.
//
// Collusion resistance: with k+1 parties, any k colluding members see only
// uniformly random shares (GMW's guarantee), matching assumption 3 of the
// threat model.
#ifndef SRC_MPC_GMW_H_
#define SRC_MPC_GMW_H_

#include <vector>

#include "src/circuit/circuit.h"
#include "src/circuit/eval_plan.h"
#include "src/mpc/batch_eval.h"
#include "src/mpc/packed.h"
#include "src/mpc/sharing.h"
#include "src/mpc/triples.h"
#include "src/net/channel.h"
#include "src/net/transport.h"

namespace dstress::mpc {

class GmwParty {
 public:
  // `parties` lists the transport node ids of the block members in a fixed
  // order all members agree on; `my_index` is this party's position.
  GmwParty(net::Transport* net, std::vector<net::NodeId> parties, int my_index,
           TripleSource* triples, net::SessionId session = 0);

  // Evaluates `circuit` on XOR-shared inputs. `input_shares` is this
  // party's share of every input bit (in circuit input order). Returns this
  // party's share of every output bit. Collective: all parties must call
  // Eval with the same circuit, concurrently. This overload compiles an
  // EvalPlan per call; hot paths should precompile the plan once and use
  // the overloads below.
  BitVector Eval(const circuit::Circuit& circuit, const BitVector& input_shares);
  BitVector Eval(const circuit::EvalPlan& plan, const BitVector& input_shares);

  // Evaluates the plan's circuit for all W = input_shares.instances()
  // independent instances together (bitsliced; see file comment). Returns
  // this party's output shares, one column per instance. Collective: all
  // parties must call EvalBatch with the same plan and instance count,
  // concurrently; triples are drawn as one Generate(W * num_and) every
  // party performs in the same position. `stats` may be nullptr.
  PackedShareMatrix EvalBatch(const circuit::EvalPlan& plan,
                              const PackedShareMatrix& input_shares,
                              BatchStats* stats = nullptr);

  // Opens shared bits to all parties (used for final outputs that are
  // public by design). Collective.
  BitVector Open(const BitVector& my_shares);

  int my_index() const { return my_index_; }
  int num_parties() const { return static_cast<int>(channel_.peers().size()); }
  bool is_leader() const { return my_index_ == 0; }

 private:
  // Bounds-checks my_index, then builds the party's session endpoint (the
  // channel's peer list doubles as the party list).
  static net::Channel MakeChannel(net::Transport* net, std::vector<net::NodeId> parties,
                                  int my_index, net::SessionId session);

  // All-to-all exchange of a packed word block; returns the XOR of all
  // parties' blocks (i.e., the opened values). Sends coalesce through the
  // channel: one buffered broadcast, one flush, then the blocking receives.
  std::vector<uint64_t> ExchangeXor(const std::vector<uint64_t>& mine);

  net::Transport* net_;
  net::Channel channel_;
  int my_index_;
  TripleSource* triples_;
};

}  // namespace dstress::mpc

#endif  // SRC_MPC_GMW_H_
