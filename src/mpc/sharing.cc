#include "src/mpc/sharing.h"

#include "src/common/check.h"

namespace dstress::mpc {

std::vector<BitVector> ShareBits(const BitVector& bits, int parties, crypto::ChaCha20Prg& prg) {
  DSTRESS_CHECK(parties >= 1);
  std::vector<BitVector> shares(parties);
  for (int p = 0; p + 1 < parties; p++) {
    shares[p].resize(bits.size());
    for (auto& b : shares[p]) {
      b = prg.NextBit() ? 1 : 0;
    }
  }
  BitVector& last = shares[parties - 1];
  last = bits;
  for (int p = 0; p + 1 < parties; p++) {
    for (size_t i = 0; i < bits.size(); i++) {
      last[i] ^= shares[p][i];
    }
  }
  return shares;
}

BitVector ReconstructBits(const std::vector<BitVector>& shares) {
  DSTRESS_CHECK(!shares.empty());
  BitVector out = shares[0];
  for (size_t p = 1; p < shares.size(); p++) {
    DSTRESS_CHECK(shares[p].size() == out.size());
    for (size_t i = 0; i < out.size(); i++) {
      out[i] ^= shares[p][i];
    }
  }
  return out;
}

BitVector WordToBits(uint64_t value, int bits) {
  BitVector out(bits);
  for (int i = 0; i < bits; i++) {
    out[i] = (value >> i) & 1;
  }
  return out;
}

uint64_t BitsToWord(const BitVector& bits, size_t offset, int count) {
  DSTRESS_CHECK(offset + count <= bits.size());
  uint64_t v = 0;
  for (int i = 0; i < count; i++) {
    v |= static_cast<uint64_t>(bits[offset + i] & 1) << i;
  }
  return v;
}

int64_t BitsToSignedWord(const BitVector& bits, size_t offset, int count) {
  uint64_t v = BitsToWord(bits, offset, count);
  if (count < 64 && (v >> (count - 1)) & 1) {
    v |= ~0ULL << count;
  }
  return static_cast<int64_t>(v);
}

void AppendBits(BitVector* dst, const BitVector& src) {
  dst->insert(dst->end(), src.begin(), src.end());
}

}  // namespace dstress::mpc
