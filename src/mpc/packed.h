// PackedShareMatrix: the bitsliced share representation of the packed-share
// data plane (docs/packed-eval.md).
//
// W independent instances of the same bit-width quantity (circuit inputs,
// wire shares, outputs) are stored wire-major, instance-minor: row i holds
// bit i of every instance, with instance j at bit j%64 of word j/64. Local
// GMW gates (XOR, NOT, constants) and cleartext gate evaluation then act on
// whole rows — one uint64 word covers 64 instances — which is where the
// batched evaluation path gets its per-gate throughput.
//
// The layout trades off against the wire format: a GMW exchange ships each
// instance's d/e block contiguously (so the batched path's messages stay
// byte-identical to the unbatched path's, see batch_eval.h), which needs a
// row<->column transpose at the AND layers. Extract/insert helpers below do
// that per-instance; everything between two AND layers stays word-parallel.
#ifndef SRC_MPC_PACKED_H_
#define SRC_MPC_PACKED_H_

#include <cstdint>
#include <vector>

#include "src/mpc/sharing.h"

namespace dstress::mpc {

// In-place 64x64 bit-matrix transpose (the Hacker's Delight butterfly):
// afterwards, bit r of word c equals what bit c of word r was. This is the
// workhorse that moves data between the wire-major share rows and the
// per-instance wire format without touching individual bits.
void TransposeBits64x64(uint64_t x[64]);

class PackedShareMatrix {
 public:
  PackedShareMatrix() = default;
  PackedShareMatrix(size_t rows, size_t instances)
      : rows_(rows),
        instances_(instances),
        wpr_((instances + 63) / 64),
        data_(rows * ((instances + 63) / 64), 0) {}

  size_t rows() const { return rows_; }
  size_t instances() const { return instances_; }
  // Words per row (= ceil(instances/64)); every row is this wide.
  size_t words_per_row() const { return wpr_; }

  uint64_t* row(size_t r) { return data_.data() + r * wpr_; }
  const uint64_t* row(size_t r) const { return data_.data() + r * wpr_; }
  uint64_t* data() { return data_.data(); }
  const uint64_t* data() const { return data_.data(); }

  bool Get(size_t r, size_t j) const { return (row(r)[j / 64] >> (j % 64)) & 1; }
  void Set(size_t r, size_t j, bool bit) {
    if (bit) {
      row(r)[j / 64] |= 1ULL << (j % 64);
    } else {
      row(r)[j / 64] &= ~(1ULL << (j % 64));
    }
  }

  // Column accessors: instance j as a one-bit-per-byte BitVector (the
  // unbatched representation). SetInstance requires bits.size() == rows().
  BitVector Instance(size_t j) const;
  void SetInstance(size_t j, const BitVector& bits);

  // Lane-group accessors for the scenario-ensemble planes (src/ensemble):
  // a vertex's W scenario lanes form one contiguous `count`-bit group
  // (count <= 64) that may straddle a word boundary. GetLaneGroup reads the
  // group of row r starting at lane `first`; SetLaneGroup overwrites it
  // (clearing the old group first, so per-iteration message rows can be
  // re-injected without residue). These are how lane-distinct inputs enter
  // and leave a packed matrix without per-bit Set/Get loops.
  uint64_t GetLaneGroup(size_t r, size_t first, int count) const;
  void SetLaneGroup(size_t r, size_t first, int count, uint64_t bits);

  // Packs W same-length BitVectors (instances) into a matrix; instances[j]
  // becomes column j.
  static PackedShareMatrix FromInstances(const std::vector<BitVector>& instances);
  std::vector<BitVector> ToInstances() const;

 private:
  size_t rows_ = 0;
  size_t instances_ = 0;
  size_t wpr_ = 0;
  std::vector<uint64_t> data_;
};

}  // namespace dstress::mpc

#endif  // SRC_MPC_PACKED_H_
