#include "src/mpc/triple_factory.h"

#include <algorithm>

#include "src/common/bytes.h"
#include "src/common/check.h"
#include "src/common/stopwatch.h"

namespace dstress::mpc {

namespace {

using ot::GetBit;
using ot::PackedWords;
using ot::SetBit;

// Same mixing idiom as the runtime's RolePrgSeed: one multiplicative spread
// of the run seed plus a role selector. 0xba5e splits the pair-session
// base-OT streams from the per-(tag, member) share streams below.
constexpr uint64_t kSeedMix = 0x9e3779b97f4a7c15ULL;

PackedBits RandomPacked(crypto::ChaCha20Prg& prg, size_t words) {
  PackedBits out(words);
  prg.Fill(reinterpret_cast<uint8_t*>(out.data()), words * 8);
  return out;
}

// Circle-method tournament over n players, generalized from
// OtTripleSource: rounds 0 .. TournamentRounds(n)-1 enumerate all unordered
// pairs, one perfect matching per round (slot n-1 padded for odd n).
int TournamentRounds(int n) {
  int m = (n % 2 == 0) ? n : n + 1;
  return m - 1;
}

int TournamentPeer(int n, int me, int round) {
  int m = (n % 2 == 0) ? n : n + 1;
  auto slot_player = [&](int slot) -> int {
    if (slot == m - 1) {
      return m - 1;
    }
    return (round + slot) % (m - 1);
  };
  for (int k = 0; k < m / 2; k++) {
    int p1 = slot_player(k);
    int p2 = slot_player(m - 1 - k);
    if (p1 == me || p2 == me) {
      int peer = (p1 == me) ? p2 : p1;
      if (peer >= n) {
        return -1;  // bye against the padding slot
      }
      return peer;
    }
  }
  return -1;
}

// Appends `count` bits of (a, b, c) to the end of `dst` (bit-granular; the
// destination's tail is rarely word-aligned once draws of mixed sizes have
// passed through).
void AppendTriples(BitTriples& dst, const PackedBits& a, const PackedBits& b, const PackedBits& c,
                   size_t count) {
  size_t base = dst.count;
  size_t words = PackedWords(base + count);
  dst.a.resize(words, 0);
  dst.b.resize(words, 0);
  dst.c.resize(words, 0);
  for (size_t i = 0; i < count; i++) {
    SetBit(dst.a, base + i, GetBit(a, i));
    SetBit(dst.b, base + i, GetBit(b, i));
    SetBit(dst.c, base + i, GetBit(c, i));
  }
  dst.count = base + count;
}

}  // namespace

// Blocking cursor over one (tag, member) stream. Local only: Generate never
// touches the network, so views impose no call-order coordination across
// nodes — exactly why the online single-scheduler fast path stays legal
// with the factory on (see Runtime::RunBatchedPhase).
class TripleFactory::View : public TripleSource {
 public:
  View(TripleFactory* factory, Buffer* buf) : factory_(factory), buf_(buf) {}

  BitTriples Generate(size_t count) override {
    std::unique_lock<std::mutex> lock(buf_->mu);
    // Fail fast instead of deadlocking: a draw beyond what Enqueue promised
    // means the runtime's demand estimate diverged from consumption.
    DSTRESS_CHECK(buf_->consumed + count <= buf_->promised);
    if (buf_->generated - buf_->consumed < count) {
      Stopwatch wait;
      buf_->cv.wait(lock, [&] { return buf_->generated - buf_->consumed >= count; });
      factory_->AddWaitSeconds(wait.ElapsedSeconds());
    }
    BitTriples out = SliceTriples(buf_->pending, buf_->cursor, count);
    buf_->cursor += count;
    buf_->consumed += count;
    if (buf_->cursor == buf_->pending.count) {
      buf_->pending = BitTriples{};
      buf_->cursor = 0;
    }
    return out;
  }

 private:
  TripleFactory* factory_;
  Buffer* buf_;
};

TripleFactory::TripleFactory(net::Transport* net, TripleFactoryOptions options)
    : net_(net), options_(options), pool_(1) {
  DSTRESS_CHECK(options_.max_pending_waves >= 1);
  if (options_.pipeline) {
    dispatcher_ = std::thread([this] { DispatcherLoop(); });
  }
}

TripleFactory::~TripleFactory() {
  if (dispatcher_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      shutdown_ = true;
    }
    queue_cv_.notify_all();
    dispatcher_.join();
  }
}

void TripleFactory::Enqueue(std::vector<TripleDemand> demands) {
  // Record the promises first so consumers started before generation can
  // tell "not yet generated" (wait) from "never coming" (fail fast).
  for (const TripleDemand& d : demands) {
    DSTRESS_CHECK(!d.parties.empty());
    for (int m = 0; m < static_cast<int>(d.parties.size()); m++) {
      Buffer* buf = BufferFor(d.tag, m);
      std::lock_guard<std::mutex> lock(buf->mu);
      buf->promised += d.count;
    }
  }
  if (!options_.pipeline) {
    GenerateWave(demands);
    return;
  }
  std::unique_lock<std::mutex> lock(queue_mu_);
  // Bounded pool: the factory runs at most max_pending_waves ahead of the
  // online phase; beyond that the enqueuer (the runtime's scheduler) blocks
  // here, which is the backpressure.
  queue_cv_.wait(lock, [&] {
    return static_cast<int>(pending_waves_.size()) < options_.max_pending_waves;
  });
  pending_waves_.push_back(std::move(demands));
  queue_cv_.notify_all();
}

TripleSource* TripleFactory::ViewFor(uint64_t tag, int member) {
  std::lock_guard<std::mutex> lock(buffers_mu_);
  auto key = std::make_pair(tag, member);
  auto it = views_.find(key);
  if (it != views_.end()) {
    return it->second.get();
  }
  std::unique_ptr<Buffer>& buf = buffers_[key];
  if (buf == nullptr) {
    buf = std::make_unique<Buffer>();
  }
  auto [inserted, _] = views_.emplace(key, std::make_unique<View>(this, buf.get()));
  return inserted->second.get();
}

TripleFactoryStats TripleFactory::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

TripleFactory::Buffer* TripleFactory::BufferFor(uint64_t tag, int member) {
  std::lock_guard<std::mutex> lock(buffers_mu_);
  std::unique_ptr<Buffer>& buf = buffers_[{tag, member}];
  if (buf == nullptr) {
    buf = std::make_unique<Buffer>();
  }
  return buf.get();
}

PeerIknp& TripleFactory::PairFor(net::NodeId self, net::NodeId peer) {
  std::map<net::NodeId, std::unique_ptr<PeerIknp>>* mine;
  {
    std::lock_guard<std::mutex> lock(pairs_mu_);
    mine = &pair_sessions_[self];
  }
  auto it = mine->find(peer);
  if (it != mine->end()) {
    return *it->second;
  }
  // First co-occurrence of this node pair in any wave: pay the base-OT
  // setup once for the whole run. Construction order is keyed by node id
  // (lower id acts as extension sender first) so both endpoints agree.
  auto prg = crypto::ChaCha20Prg::FromSeed(
      options_.prg_seed * kSeedMix + 0xba5e,
      (static_cast<uint64_t>(self) << 32) | static_cast<uint32_t>(peer));
  auto pair = std::make_unique<PeerIknp>();
  if (self < peer) {
    pair->sender = std::make_unique<ot::IknpSender>(net_, self, peer, prg, options_.session);
    pair->receiver = std::make_unique<ot::IknpReceiver>(net_, self, peer, prg, options_.session);
  } else {
    pair->receiver = std::make_unique<ot::IknpReceiver>(net_, self, peer, prg, options_.session);
    pair->sender = std::make_unique<ot::IknpSender>(net_, self, peer, prg, options_.session);
  }
  std::unique_ptr<PeerIknp>& slot = (*mine)[peer];
  slot = std::move(pair);
  if (self < peer) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.pair_sessions += 1;  // count unordered pairs once
  }
  return *slot;
}

void TripleFactory::GenerateWave(const std::vector<TripleDemand>& demands_in) {
  Stopwatch wave_clock;
  std::vector<TripleDemand> demands;
  for (const TripleDemand& d : demands_in) {
    if (d.count > 0) {
      demands.push_back(d);
    }
  }
  std::sort(demands.begin(), demands.end(),
            [](const TripleDemand& x, const TripleDemand& y) { return x.tag < y.tag; });
  for (size_t d = 1; d < demands.size(); d++) {
    DSTRESS_CHECK(demands[d].tag != demands[d - 1].tag);  // tags name PRG streams
  }
  if (demands.empty()) {
    return;
  }

  // Wave layout, computed once before fan-out: participant set, each
  // participant's (demand, member) roles, and per unordered participant
  // pair the tag-sorted list of demands both nodes are in — the segments of
  // that pair's single bulk Extend.
  std::vector<net::NodeId> participants;
  for (const TripleDemand& d : demands) {
    participants.insert(participants.end(), d.parties.begin(), d.parties.end());
  }
  std::sort(participants.begin(), participants.end());
  participants.erase(std::unique(participants.begin(), participants.end()), participants.end());
  const int num_nodes = static_cast<int>(participants.size());
  std::map<net::NodeId, int> index_of;
  for (int p = 0; p < num_nodes; p++) {
    index_of[participants[p]] = p;
  }

  struct Shares {
    std::vector<PackedBits> a, b, c;  // indexed by member
  };
  std::vector<Shares> shares(demands.size());
  std::vector<std::vector<std::pair<size_t, int>>> roles(num_nodes);  // (demand, member)
  std::vector<std::map<int, int>> member_of(demands.size());          // participant -> member
  std::map<std::pair<int, int>, std::vector<size_t>> shared;          // pair -> demand indices
  std::vector<std::vector<Buffer*>> bufs(demands.size());
  std::vector<std::vector<uint64_t>> streams(demands.size());
  uint64_t wave_triples = 0;
  for (size_t d = 0; d < demands.size(); d++) {
    const TripleDemand& dem = demands[d];
    const int members = static_cast<int>(dem.parties.size());
    shares[d].a.resize(members);
    shares[d].b.resize(members);
    shares[d].c.resize(members);
    bufs[d].resize(members);
    streams[d].resize(members);
    wave_triples += dem.count;
    for (int m = 0; m < members; m++) {
      int p = index_of.at(dem.parties[m]);
      DSTRESS_CHECK(member_of[d].emplace(p, m).second);  // block nodes are distinct
      roles[p].push_back({d, m});
      Buffer* buf = BufferFor(dem.tag, m);
      bufs[d][m] = buf;
      std::lock_guard<std::mutex> lock(buf->mu);
      streams[d][m] = buf->waves_drawn++;
    }
    for (int i = 0; i < members; i++) {
      for (int j = i + 1; j < members; j++) {
        int pi = index_of.at(dem.parties[i]);
        int pj = index_of.at(dem.parties[j]);
        shared[{std::min(pi, pj), std::max(pi, pj)}].push_back(d);
      }
    }
  }

  // One task per participating node; whole-group admission on the private
  // pool keeps every node runnable at once, which the tournament's blocking
  // pairwise exchanges require (same invariant as the runtime's phase
  // scheduling, see worker_pool.h).
  const int rounds = TournamentRounds(num_nodes);
  pool_.RunGrouped(1, num_nodes, [&](size_t, size_t task) {
    const int p = static_cast<int>(task);
    const net::NodeId self = participants[p];

    // Local shares: a, b from this member's per-tag PRG stream (advanced
    // once per wave — deterministic regardless of pipelining), c seeded
    // with the local product a AND b; the tournament below folds in the
    // cross terms.
    for (const auto& [d, m] : roles[p]) {
      const TripleDemand& dem = demands[d];
      size_t words = PackedWords(dem.count);
      auto prg = crypto::ChaCha20Prg::FromSeed(
          options_.prg_seed * kSeedMix + ((dem.tag << 8) | static_cast<uint64_t>(m)),
          streams[d][m]);
      shares[d].a[m] = RandomPacked(prg, words);
      shares[d].b[m] = RandomPacked(prg, words);
      shares[d].c[m].assign(words, 0);
      for (size_t w = 0; w < words; w++) {
        shares[d].c[m][w] = shares[d].a[m][w] & shares[d].b[m][w];
      }
    }

    for (int round = 0; round < rounds; round++) {
      const int q = TournamentPeer(num_nodes, p, round);
      if (q < 0) {
        continue;
      }
      auto it = shared.find({std::min(p, q), std::max(p, q)});
      if (it == shared.end()) {
        continue;  // no co-hosted role group with this peer
      }
      const std::vector<size_t>& segs = it->second;
      const net::NodeId peer = participants[q];
      size_t total = 0;
      for (size_t d : segs) {
        total += demands[d].count;
      }
      size_t twords = PackedWords(total);
      PeerIknp& session = PairFor(self, peer);

      // Concatenate this node's per-segment bits (tag order — `segs` is
      // sorted because demands are) into one Extend-sized vector.
      auto concat = [&](bool use_a) {
        PackedBits cat(twords, 0);
        size_t off = 0;
        for (size_t d : segs) {
          int m = member_of[d].at(p);
          const PackedBits& src = use_a ? shares[d].a[m] : shares[d].b[m];
          for (size_t i = 0; i < demands[d].count; i++) {
            SetBit(cat, off + i, GetBit(src, i));
          }
          off += demands[d].count;
        }
        return cat;
      };
      // XOR a concatenated delta back into the per-segment c shares.
      auto scatter = [&](const PackedBits& delta) {
        size_t off = 0;
        for (size_t d : segs) {
          int m = member_of[d].at(p);
          PackedBits& c = shares[d].c[m];
          for (size_t i = 0; i < demands[d].count; i++) {
            SetBit(c, i, GetBit(c, i) ^ GetBit(delta, off + i));
          }
          off += demands[d].count;
        }
      };

      auto run_as_sender = [&] {
        // I contribute the a sides; the peer's choice bits are its b
        // shares. I keep r0 as my cross-term share and send the correction
        // r0 ^ r1 ^ a for every segment in one message.
        ot::RandomOtPairs pairs = session.sender->Extend(total);
        PackedBits a_cat = concat(/*use_a=*/true);
        ByteWriter corrections;
        for (size_t w = 0; w < twords; w++) {
          corrections.U64(pairs.r0[w] ^ pairs.r1[w] ^ a_cat[w]);
        }
        net_->Send(self, peer, corrections.Take(), options_.session);
        scatter(pairs.r0);
      };
      auto run_as_receiver = [&] {
        PackedBits b_cat = concat(/*use_a=*/false);
        ot::RandomOtChosen chosen = session.receiver->Extend(b_cat, total);
        Bytes corrections = net_->Recv(self, peer, options_.session);
        DSTRESS_CHECK(corrections.size() == twords * 8);
        ByteReader reader(corrections);
        PackedBits delta(twords, 0);
        for (size_t w = 0; w < twords; w++) {
          delta[w] = chosen.r[w] ^ (b_cat[w] & reader.U64());
        }
        scatter(delta);
      };

      if (self < peer) {
        run_as_sender();
        run_as_receiver();
      } else {
        run_as_receiver();
        run_as_sender();
      }
    }

    // Deal the finished shares out to this node's views. Per-(demand,
    // member) arrays are owned by this task, so only the buffer append
    // needs the lock.
    for (const auto& [d, m] : roles[p]) {
      Buffer* buf = bufs[d][m];
      std::lock_guard<std::mutex> lock(buf->mu);
      AppendTriples(buf->pending, shares[d].a[m], shares[d].b[m], shares[d].c[m],
                    demands[d].count);
      buf->generated += demands[d].count;
      buf->cv.notify_all();
    }
  });

  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.offline_seconds += wave_clock.ElapsedSeconds();
  stats_.waves += 1;
  stats_.triples += wave_triples;
}

void TripleFactory::DispatcherLoop() {
  for (;;) {
    std::vector<TripleDemand> wave;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return shutdown_ || !pending_waves_.empty(); });
      if (shutdown_) {
        return;  // drop undealt waves; nothing consumes them past this point
      }
      wave = std::move(pending_waves_.front());
      pending_waves_.pop_front();
      queue_cv_.notify_all();  // wake an Enqueue blocked on backpressure
    }
    GenerateWave(wave);
  }
}

void TripleFactory::AddWaitSeconds(double seconds) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.online_wait_seconds += seconds;
}

}  // namespace dstress::mpc
