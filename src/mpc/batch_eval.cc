#include "src/mpc/batch_eval.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "src/common/bytes.h"
#include "src/common/check.h"

namespace dstress::mpc {

namespace {

using circuit::Gate;
using circuit::GateOp;
using circuit::Wire;
using ot::PackedBits;
using ot::PackedWords;

// Instances sharing an evaluation plan, bitsliced into one share matrix:
// column c of every row is the c-th member instance's share of that wire.
struct Group {
  const circuit::EvalPlan* plan = nullptr;
  std::vector<size_t> members;  // indices into the sorted instance order
  PackedShareMatrix shares;     // num_wires x W
  // Triple shares in consumption (AND-layer round) order, wire-major like
  // the share matrix so the Beaver completion is pure word ops.
  PackedShareMatrix ta, tb, tc;  // num_and x W
  std::vector<uint64_t> leader_mask;  // bit c set iff member c is leader
  size_t triple_cursor = 0;
  // Current layer's masked openings, wire-major (layer_size x W).
  PackedShareMatrix d_rows, e_rows;
};

void XorRows(const uint64_t* a, const uint64_t* b, uint64_t* z, size_t words) {
  for (size_t w = 0; w < words; w++) {
    z[w] = a[w] ^ b[w];
  }
}

// Below this many instances, row<->column moves use plain bit loops; at or
// above it, 64x64 block transposes (TransposeBits64x64) pay for themselves.
constexpr size_t kNarrowBatch = 4;

}  // namespace

std::vector<BitVector> EvalBatchInstances(net::Transport* net, net::SessionId session,
                                          std::vector<BatchInstance> instances,
                                          BatchStats* stats) {
  const size_t count = instances.size();
  if (count == 0) {
    return {};
  }

  // Deterministic cross-party instance order: ascending order_key. Results
  // are mapped back to the caller's order at the end.
  std::vector<size_t> sorted(count);
  std::iota(sorted.begin(), sorted.end(), 0);
  std::stable_sort(sorted.begin(), sorted.end(), [&](size_t a, size_t b) {
    return instances[a].order_key < instances[b].order_key;
  });

  // Group instances by plan; membership follows the sorted order.
  std::vector<Group> groups;
  std::map<const circuit::EvalPlan*, size_t> group_of_plan;
  std::vector<size_t> group_of(count), col_of(count);
  for (size_t s = 0; s < count; s++) {
    const BatchInstance& inst = instances[sorted[s]];
    DSTRESS_CHECK(inst.plan != nullptr);
    DSTRESS_CHECK(inst.my_index >= 0 &&
                  inst.my_index < static_cast<int>(inst.parties.size()));
    DSTRESS_CHECK(inst.input_shares.size() == inst.plan->num_inputs());
    auto [it, inserted] = group_of_plan.emplace(inst.plan, groups.size());
    if (inserted) {
      groups.emplace_back();
      groups.back().plan = inst.plan;
    }
    group_of[s] = it->second;
    col_of[s] = groups[it->second].members.size();
    groups[it->second].members.push_back(s);
  }

  // Directed channels this call exchanges on: for each (executing node,
  // peer) pair, the sorted instances they share — both the sends (self ->
  // peer) and the expected receives (peer -> self) of one channel-pair are
  // exactly this list, in sorted-instance order (the agreed per-channel
  // message order).
  std::map<std::pair<net::NodeId, net::NodeId>, std::vector<size_t>> channel_instances;
  for (size_t s = 0; s < count; s++) {
    const BatchInstance& inst = instances[sorted[s]];
    net::NodeId inst_self = inst.parties[inst.my_index];
    for (net::NodeId p : inst.parties) {
      if (p != inst_self) {
        channel_instances[{inst_self, p}].push_back(s);
      }
    }
  }

  size_t max_depth = 0;
  size_t triples_consumed = 0;
  for (Group& g : groups) {
    const circuit::EvalPlan& plan = *g.plan;
    const size_t w_count = g.members.size();
    const size_t num_and = plan.stats().num_and;
    max_depth = std::max(max_depth, plan.stats().and_depth);
    g.shares = PackedShareMatrix(plan.num_wires(), w_count);
    g.ta = PackedShareMatrix(num_and, w_count);
    g.tb = PackedShareMatrix(num_and, w_count);
    g.tc = PackedShareMatrix(num_and, w_count);
    g.leader_mask.assign(g.shares.words_per_row(), 0);
    for (size_t c = 0; c < w_count; c++) {
      const BatchInstance& inst = instances[sorted[g.members[c]]];
      if (inst.my_index == 0) {
        g.leader_mask[c / 64] |= 1ULL << (c % 64);
      }
      DSTRESS_CHECK(inst.triples.count >= num_and || num_and == 0);
      triples_consumed += num_and;
    }
    // Transpose the per-instance triple tapes (bit t of instance c) into
    // the wire-major matrices (row t, lane c): 64x64 blocks for wide
    // batches, a plain bit loop for narrow ones (where a block transpose
    // would do 64 lanes of work for a handful of instances — the W=1 path
    // must stay as cheap as the seed schedule it reproduces).
    auto fill_triple_matrix = [&](PackedShareMatrix& dst, PackedBits BitTriples::*tape) {
      if (w_count <= kNarrowBatch) {
        for (size_t c = 0; c < w_count; c++) {
          const PackedBits& bits = instances[sorted[g.members[c]]].triples.*tape;
          for (size_t t = 0; t < num_and; t++) {
            dst.Set(t, c, ot::GetBit(bits, t));
          }
        }
        return;
      }
      const size_t wpr = dst.words_per_row();
      const size_t tape_words = PackedWords(num_and);
      uint64_t block[64];
      for (size_t jb = 0; jb < wpr; jb++) {
        for (size_t wi = 0; wi < tape_words; wi++) {
          for (size_t j = 0; j < 64; j++) {
            size_t c = jb * 64 + j;
            block[j] =
                c < w_count ? (instances[sorted[g.members[c]]].triples.*tape)[wi] : 0;
          }
          TransposeBits64x64(block);
          size_t rows = std::min<size_t>(64, num_and - wi * 64);
          for (size_t r = 0; r < rows; r++) {
            dst.row(wi * 64 + r)[jb] = block[r];
          }
        }
      }
    };
    if (num_and > 0) {
      fill_triple_matrix(g.ta, &BitTriples::a);
      fill_triple_matrix(g.tb, &BitTriples::b);
      fill_triple_matrix(g.tc, &BitTriples::c);
    }
  }

  // Word-parallel evaluation of one round's free gates; CONST and NOT act
  // through the leader mask, so mixed leadership inside a group is fine.
  auto eval_local_layer = [&](Group& g, size_t round) {
    const circuit::EvalPlan& plan = *g.plan;
    if (round >= plan.local_layers().size()) {
      return;
    }
    const size_t words = g.shares.words_per_row();
    const auto& gates = plan.gates();
    for (Wire w : plan.local_layers()[round]) {
      const Gate& gate = gates[w];
      uint64_t* z = g.shares.row(w);
      switch (gate.op) {
        case GateOp::kInput:
          // Handled by the input prefill below; inputs are all depth 0.
          break;
        case GateOp::kConst:
          if (gate.a & 1) {
            std::copy(g.leader_mask.begin(), g.leader_mask.end(), z);
          }
          break;
        case GateOp::kXor:
          XorRows(g.shares.row(gate.a), g.shares.row(gate.b), z, words);
          break;
        case GateOp::kNot:
          XorRows(g.shares.row(gate.a), g.leader_mask.data(), z, words);
          break;
        case GateOp::kAnd:
          DSTRESS_CHECK(false);  // never in a local layer
          break;
      }
    }
  };

  for (Group& g : groups) {
    // Input prefill: the kInput gates are exactly local_layers()[0]'s input
    // entries, in circuit input order.
    size_t next_input = 0;
    for (Wire w : g.plan->local_layers()[0]) {
      if (g.plan->gates()[w].op != GateOp::kInput) {
        continue;
      }
      for (size_t c = 0; c < g.members.size(); c++) {
        g.shares.Set(w, c, instances[sorted[g.members[c]]].input_shares[next_input] & 1);
      }
      next_input++;
    }
    DSTRESS_CHECK(next_input == g.plan->num_inputs());
    eval_local_layer(g, 0);
  }

  // Per-instance opened d/e accumulators and serialized payloads for the
  // current round; hoisted so their buffers are reused across rounds.
  std::vector<PackedBits> opened(count);
  std::vector<Bytes> payload(count);
  size_t rounds = 0;

  for (size_t round = 1; round <= max_depth; round++) {
    bool any_exchange = false;

    // Mask this round's AND inputs with the triples and serialize each
    // instance's opening block — byte-identical to GmwParty::Eval's
    // per-layer message: d words then e words, little-endian u64.
    for (Group& g : groups) {
      const circuit::EvalPlan& plan = *g.plan;
      if (round >= plan.and_layers().size() || plan.and_layers()[round].empty()) {
        continue;
      }
      any_exchange = true;
      const auto& layer = plan.and_layers()[round];
      const size_t n = layer.size();
      const size_t words = g.shares.words_per_row();
      g.d_rows = PackedShareMatrix(n, g.members.size());
      g.e_rows = PackedShareMatrix(n, g.members.size());
      for (size_t i = 0; i < n; i++) {
        const Gate& gate = plan.gates()[layer[i]];
        size_t t = g.triple_cursor + i;
        XorRows(g.shares.row(gate.a), g.ta.row(t), g.d_rows.row(i), words);
        XorRows(g.shares.row(gate.b), g.tb.row(t), g.e_rows.row(i), words);
      }
      const size_t lw = PackedWords(n);
      const size_t w_count = g.members.size();
      for (size_t c = 0; c < w_count; c++) {
        opened[g.members[c]].assign(2 * lw, 0);
      }
      // Transpose the layer's masked rows into each instance's wire-format
      // opening block: d words [0, lw), e words [lw, 2*lw).
      if (w_count <= kNarrowBatch) {
        for (size_t c = 0; c < w_count; c++) {
          PackedBits& acc = opened[g.members[c]];
          for (size_t i = 0; i < n; i++) {
            if (g.d_rows.Get(i, c)) {
              acc[i / 64] |= 1ULL << (i % 64);
            }
            if (g.e_rows.Get(i, c)) {
              acc[lw + i / 64] |= 1ULL << (i % 64);
            }
          }
        }
        continue;
      }
      uint64_t block[64];
      for (size_t jb = 0; jb < g.d_rows.words_per_row(); jb++) {
        for (size_t gb = 0; gb < lw; gb++) {
          size_t rows = std::min<size_t>(64, n - gb * 64);
          for (int which = 0; which < 2; which++) {
            const PackedShareMatrix& src = which == 0 ? g.d_rows : g.e_rows;
            for (size_t i = 0; i < 64; i++) {
              block[i] = i < rows ? src.row(gb * 64 + i)[jb] : 0;
            }
            TransposeBits64x64(block);
            for (size_t j = 0; j < 64 && jb * 64 + j < w_count; j++) {
              opened[g.members[jb * 64 + j]][which * lw + gb] = block[j];
            }
          }
        }
      }
    }
    if (any_exchange) {
      rounds++;
    }

    std::vector<size_t> round_layer_size(count);
    for (size_t s = 0; s < count; s++) {
      const circuit::EvalPlan& plan = *instances[sorted[s]].plan;
      round_layer_size[s] = round < plan.and_layers().size() ? plan.and_layers()[round].size() : 0;
    }
    auto layer_size_of = [&](size_t s) -> size_t { return round_layer_size[s]; };

    // Superstep: all sends first (never blocking), then the receives. One
    // SendBatch run per channel carries this round's per-instance messages,
    // and one RecvBatch drains the mirror channel. Each instance's payload
    // is serialized once (little-endian u64 words, the ExchangeXor format)
    // and copied per peer.
    for (size_t s = 0; s < count; s++) {
      if (layer_size_of(s) == 0) {
        continue;
      }
      payload[s].resize(opened[s].size() * 8);
      std::memcpy(payload[s].data(), opened[s].data(), payload[s].size());
    }
    for (auto& [channel, shared] : channel_instances) {
      std::vector<Bytes> messages;
      messages.reserve(shared.size());
      for (size_t s : shared) {
        if (layer_size_of(s) != 0) {
          messages.push_back(payload[s]);
        }
      }
      if (!messages.empty()) {
        net->SendBatch(channel.first, channel.second, std::move(messages), session);
      }
    }
    for (auto& [channel, shared] : channel_instances) {
      size_t expected = 0;
      for (size_t s : shared) {
        if (layer_size_of(s) != 0) {
          expected++;
        }
      }
      if (expected == 0) {
        continue;
      }
      std::vector<Bytes> incoming =
          net->RecvBatch(channel.first, channel.second, expected, session);
      size_t next = 0;
      for (size_t s : shared) {
        if (layer_size_of(s) == 0) {
          continue;
        }
        const Bytes& msg = incoming[next++];
        DSTRESS_CHECK(msg.size() == opened[s].size() * 8);
        for (size_t w = 0; w < opened[s].size(); w++) {
          uint64_t word;
          std::memcpy(&word, msg.data() + w * 8, 8);
          opened[s][w] ^= word;
        }
      }
    }

    // Beaver completion, word-parallel: z = c ^ d&b ^ e&a, plus d&e on the
    // leader lanes.
    for (Group& g : groups) {
      const circuit::EvalPlan& plan = *g.plan;
      if (round >= plan.and_layers().size() || plan.and_layers()[round].empty()) {
        continue;
      }
      const auto& layer = plan.and_layers()[round];
      const size_t n = layer.size();
      const size_t words = g.shares.words_per_row();
      // Transpose the opened bits back into wire-major rows.
      const size_t lw = PackedWords(n);
      const size_t w_count = g.members.size();
      if (w_count <= kNarrowBatch) {
        for (size_t c = 0; c < w_count; c++) {
          const PackedBits& acc = opened[g.members[c]];
          for (size_t i = 0; i < n; i++) {
            g.d_rows.Set(i, c, (acc[i / 64] >> (i % 64)) & 1);
            g.e_rows.Set(i, c, (acc[lw + i / 64] >> (i % 64)) & 1);
          }
        }
      } else {
        uint64_t block[64];
        for (size_t jb = 0; jb < g.d_rows.words_per_row(); jb++) {
          for (size_t gb = 0; gb < lw; gb++) {
            size_t rows = std::min<size_t>(64, n - gb * 64);
            for (int which = 0; which < 2; which++) {
              PackedShareMatrix& dst = which == 0 ? g.d_rows : g.e_rows;
              for (size_t j = 0; j < 64; j++) {
                size_t c = jb * 64 + j;
                block[j] = c < w_count ? opened[g.members[c]][which * lw + gb] : 0;
              }
              TransposeBits64x64(block);
              for (size_t i = 0; i < rows; i++) {
                dst.row(gb * 64 + i)[jb] = block[i];
              }
            }
          }
        }
      }
      for (size_t i = 0; i < n; i++) {
        size_t t = g.triple_cursor + i;
        const uint64_t* d = g.d_rows.row(i);
        const uint64_t* e = g.e_rows.row(i);
        uint64_t* z = g.shares.row(layer[i]);
        for (size_t w = 0; w < words; w++) {
          z[w] = g.tc.row(t)[w] ^ (d[w] & g.tb.row(t)[w]) ^ (e[w] & g.ta.row(t)[w]) ^
                 (d[w] & e[w] & g.leader_mask[w]);
        }
      }
      g.triple_cursor += n;
    }

    for (Group& g : groups) {
      eval_local_layer(g, round);
    }
  }

  if (stats != nullptr) {
    stats->rounds = rounds;
    stats->triples_consumed = triples_consumed;
  }

  std::vector<BitVector> outputs(count);
  for (size_t s = 0; s < count; s++) {
    const Group& g = groups[group_of[s]];
    const auto& outs = g.plan->outputs();
    BitVector out(outs.size());
    for (size_t o = 0; o < outs.size(); o++) {
      out[o] = g.shares.Get(outs[o], col_of[s]) ? 1 : 0;
    }
    outputs[sorted[s]] = std::move(out);
  }
  return outputs;
}

}  // namespace dstress::mpc
