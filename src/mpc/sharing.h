// XOR secret sharing over bit vectors.
//
// DStress represents every piece of confidential state as an XOR sharing
// among the k+1 members of a block: the value is the XOR of all shares, so
// any k shares are uniformly random (paper §3, "Secure multiparty
// computation"). These helpers create, combine and reconstruct such
// sharings; word values use a fixed little-endian bit order so circuit
// inputs and outputs line up across modules.
#ifndef SRC_MPC_SHARING_H_
#define SRC_MPC_SHARING_H_

#include <cstdint>
#include <vector>

#include "src/crypto/chacha20.h"

namespace dstress::mpc {

using BitVector = std::vector<uint8_t>;  // one bit per byte (0/1)

// Splits `bits` into `parties` XOR shares: all but the last are uniform.
std::vector<BitVector> ShareBits(const BitVector& bits, int parties, crypto::ChaCha20Prg& prg);

// XOR of all share vectors.
BitVector ReconstructBits(const std::vector<BitVector>& shares);

// Little-endian bit (de)composition of integer words, the canonical layout
// for circuit inputs/outputs.
BitVector WordToBits(uint64_t value, int bits);
uint64_t BitsToWord(const BitVector& bits, size_t offset, int count);
// Sign-extended read (two's complement).
int64_t BitsToSignedWord(const BitVector& bits, size_t offset, int count);

// Concatenation helper for assembling circuit input vectors.
void AppendBits(BitVector* dst, const BitVector& src);

}  // namespace dstress::mpc

#endif  // SRC_MPC_SHARING_H_
