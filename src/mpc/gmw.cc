#include "src/mpc/gmw.h"

#include "src/common/check.h"

namespace dstress::mpc {

using ot::PackedWords;

net::Channel GmwParty::MakeChannel(net::Transport* net, std::vector<net::NodeId> parties,
                                   int my_index, net::SessionId session) {
  DSTRESS_CHECK(my_index >= 0 && my_index < static_cast<int>(parties.size()));
  net::NodeId self = parties[my_index];
  return net::Channel(net, self, std::move(parties), session);
}

GmwParty::GmwParty(net::Transport* net, std::vector<net::NodeId> parties, int my_index,
                   TripleSource* triples, net::SessionId session)
    : net_(net),
      channel_(MakeChannel(net, std::move(parties), my_index, session)),
      my_index_(my_index),
      triples_(triples) {}

std::vector<uint64_t> GmwParty::ExchangeXor(const std::vector<uint64_t>& mine) {
  ByteWriter block;
  for (uint64_t w : mine) {
    block.U64(w);
  }
  channel_.Broadcast(block.bytes());
  const std::vector<net::NodeId>& parties = channel_.peers();
  std::vector<uint64_t> total = mine;
  for (int p = 0; p < static_cast<int>(parties.size()); p++) {
    if (p == my_index_) {
      continue;
    }
    Bytes incoming = channel_.Recv(parties[p]);
    DSTRESS_CHECK(incoming.size() == mine.size() * 8);
    ByteReader reader(incoming);
    for (size_t w = 0; w < total.size(); w++) {
      total[w] ^= reader.U64();
    }
  }
  return total;
}

BitVector GmwParty::Eval(const circuit::Circuit& circuit, const BitVector& input_shares) {
  circuit::EvalPlan plan(circuit);
  return Eval(plan, input_shares);
}

BitVector GmwParty::Eval(const circuit::EvalPlan& plan, const BitVector& input_shares) {
  PackedShareMatrix input(plan.num_inputs(), 1);
  input.SetInstance(0, input_shares);
  return EvalBatch(plan, input).Instance(0);
}

PackedShareMatrix GmwParty::EvalBatch(const circuit::EvalPlan& plan,
                                      const PackedShareMatrix& input_shares,
                                      BatchStats* stats) {
  const size_t w_count = input_shares.instances();
  DSTRESS_CHECK(w_count > 0);
  DSTRESS_CHECK(input_shares.rows() == plan.num_inputs());

  // One bulk draw covers every instance; slice j gets the contiguous range
  // [j*num_and, (j+1)*num_and), a split all parties derive identically.
  const size_t num_and = plan.stats().num_and;
  BitTriples bulk;
  if (num_and > 0) {
    bulk = triples_->Generate(num_and * w_count);
  }

  std::vector<BatchInstance> items(w_count);
  for (size_t j = 0; j < w_count; j++) {
    items[j].plan = &plan;
    items[j].parties = channel_.peers();
    items[j].my_index = my_index_;
    if (num_and > 0) {
      items[j].triples = SliceTriples(bulk, j * num_and, num_and);
    }
    items[j].input_shares = input_shares.Instance(j);
    items[j].order_key = j;
  }
  std::vector<BitVector> outputs =
      EvalBatchInstances(net_, channel_.session(), std::move(items), stats);

  PackedShareMatrix result(plan.num_outputs(), w_count);
  for (size_t j = 0; j < w_count; j++) {
    result.SetInstance(j, outputs[j]);
  }
  return result;
}

BitVector GmwParty::Open(const BitVector& my_shares) {
  size_t n = my_shares.size();
  size_t words = PackedWords(n);
  std::vector<uint64_t> packed(words, 0);
  for (size_t i = 0; i < n; i++) {
    if (my_shares[i] & 1) {
      packed[i / 64] |= 1ULL << (i % 64);
    }
  }
  std::vector<uint64_t> opened = ExchangeXor(packed);
  BitVector out(n);
  for (size_t i = 0; i < n; i++) {
    out[i] = (opened[i / 64] >> (i % 64)) & 1;
  }
  return out;
}

}  // namespace dstress::mpc
