#include "src/mpc/gmw.h"

#include "src/common/check.h"

namespace dstress::mpc {

using circuit::Gate;
using circuit::GateOp;
using circuit::Wire;
using ot::GetBit;
using ot::PackedWords;
using ot::SetBit;

net::Channel GmwParty::MakeChannel(net::Transport* net, std::vector<net::NodeId> parties,
                                   int my_index, net::SessionId session) {
  DSTRESS_CHECK(my_index >= 0 && my_index < static_cast<int>(parties.size()));
  net::NodeId self = parties[my_index];
  return net::Channel(net, self, std::move(parties), session);
}

GmwParty::GmwParty(net::Transport* net, std::vector<net::NodeId> parties, int my_index,
                   TripleSource* triples, net::SessionId session)
    : channel_(MakeChannel(net, std::move(parties), my_index, session)),
      my_index_(my_index),
      triples_(triples) {}

std::vector<uint64_t> GmwParty::ExchangeXor(const std::vector<uint64_t>& mine) {
  ByteWriter block;
  for (uint64_t w : mine) {
    block.U64(w);
  }
  channel_.Broadcast(block.bytes());
  const std::vector<net::NodeId>& parties = channel_.peers();
  std::vector<uint64_t> total = mine;
  for (int p = 0; p < static_cast<int>(parties.size()); p++) {
    if (p == my_index_) {
      continue;
    }
    Bytes incoming = channel_.Recv(parties[p]);
    DSTRESS_CHECK(incoming.size() == mine.size() * 8);
    ByteReader reader(incoming);
    for (size_t w = 0; w < total.size(); w++) {
      total[w] ^= reader.U64();
    }
  }
  return total;
}

BitVector GmwParty::Eval(const circuit::Circuit& circuit, const BitVector& input_shares) {
  DSTRESS_CHECK(input_shares.size() == circuit.num_inputs());

  // Pre-fetch all triples for this circuit in one batch, so triple
  // generation cost amortizes across layers.
  BitTriples triples;
  size_t triple_cursor = 0;
  if (circuit.stats().num_and > 0) {
    triples = triples_->Generate(circuit.stats().num_and);
  }

  const auto& gates = circuit.gates();
  const auto& depth = circuit.and_depth();
  const auto& and_layers = circuit.and_layers();

  // Group non-AND gates by AND-depth, preserving topological (index) order
  // inside each group. Within one round r we evaluate the AND gates of
  // depth r (one exchange), then the local gates of depth r.
  std::vector<std::vector<Wire>> local_layers(circuit.stats().and_depth + 1);
  for (size_t i = 0; i < gates.size(); i++) {
    if (gates[i].op != GateOp::kAnd) {
      local_layers[depth[i]].push_back(static_cast<Wire>(i));
    }
  }

  std::vector<uint8_t> share(gates.size(), 0);
  size_t next_input = 0;
  auto eval_local = [&](Wire w) {
    const Gate& g = gates[w];
    switch (g.op) {
      case GateOp::kInput:
        share[w] = input_shares[next_input++] & 1;
        break;
      case GateOp::kConst:
        // Public constants are held by the leader only; XOR of all shares
        // then equals the constant.
        share[w] = is_leader() ? static_cast<uint8_t>(g.a & 1) : 0;
        break;
      case GateOp::kXor:
        share[w] = share[g.a] ^ share[g.b];
        break;
      case GateOp::kNot:
        // NOT is XOR with public 1: the leader flips its share.
        share[w] = is_leader() ? (share[g.a] ^ 1) : share[g.a];
        break;
      case GateOp::kAnd:
        DSTRESS_CHECK(false);  // handled in the batched path
        break;
    }
  };

  for (Wire w : local_layers[0]) {
    eval_local(w);
  }

  for (size_t round = 1; round < and_layers.size() || round < local_layers.size(); round++) {
    if (round < and_layers.size() && !and_layers[round].empty()) {
      const std::vector<Wire>& layer = and_layers[round];
      size_t n = layer.size();
      size_t words = PackedWords(n);
      // Pack d = x ^ a and e = y ^ b for the whole layer: d in words
      // [0, words), e in [words, 2*words).
      std::vector<uint64_t> masked(2 * words, 0);
      for (size_t i = 0; i < n; i++) {
        const Gate& g = gates[layer[i]];
        size_t t = triple_cursor + i;
        bool d = (share[g.a] ^ static_cast<uint8_t>(GetBit(triples.a, t))) & 1;
        bool e = (share[g.b] ^ static_cast<uint8_t>(GetBit(triples.b, t))) & 1;
        if (d) {
          masked[i / 64] |= 1ULL << (i % 64);
        }
        if (e) {
          masked[words + i / 64] |= 1ULL << (i % 64);
        }
      }
      std::vector<uint64_t> opened = ExchangeXor(masked);
      for (size_t i = 0; i < n; i++) {
        size_t t = triple_cursor + i;
        bool d = (opened[i / 64] >> (i % 64)) & 1;
        bool e = (opened[words + i / 64] >> (i % 64)) & 1;
        // z = c ^ d*b ^ e*a (^ d*e for the leader).
        uint8_t z = static_cast<uint8_t>(GetBit(triples.c, t));
        if (d) {
          z ^= static_cast<uint8_t>(GetBit(triples.b, t));
        }
        if (e) {
          z ^= static_cast<uint8_t>(GetBit(triples.a, t));
        }
        if (d && e && is_leader()) {
          z ^= 1;
        }
        share[layer[i]] = z;
      }
      triple_cursor += n;
    }
    if (round < local_layers.size()) {
      for (Wire w : local_layers[round]) {
        eval_local(w);
      }
    }
  }
  DSTRESS_CHECK(next_input == circuit.num_inputs());

  BitVector out;
  out.reserve(circuit.num_outputs());
  for (Wire w : circuit.outputs()) {
    out.push_back(share[w]);
  }
  return out;
}

BitVector GmwParty::Open(const BitVector& my_shares) {
  size_t n = my_shares.size();
  size_t words = PackedWords(n);
  std::vector<uint64_t> packed(words, 0);
  for (size_t i = 0; i < n; i++) {
    if (my_shares[i] & 1) {
      packed[i / 64] |= 1ULL << (i % 64);
    }
  }
  std::vector<uint64_t> opened = ExchangeXor(packed);
  BitVector out(n);
  for (size_t i = 0; i < n; i++) {
    out[i] = (opened[i / 64] >> (i % 64)) & 1;
  }
  return out;
}

}  // namespace dstress::mpc
