#include "src/mpc/packed.h"

#include "src/common/check.h"

namespace dstress::mpc {

void TransposeBits64x64(uint64_t x[64]) {
  // Butterfly formulated for LSB-first bit order (bit c of word r is
  // element (r, c)): each stage swaps the (row-low, col-high) quadrant
  // with the (row-high, col-low) quadrant at its scale.
  uint64_t mask = 0x00000000FFFFFFFFULL;
  for (int j = 32; j != 0; j >>= 1, mask ^= mask << j) {
    for (int k = 0; k < 64; k = (k + j + 1) & ~j) {
      uint64_t t = ((x[k] >> j) ^ x[k + j]) & mask;
      x[k] ^= t << j;
      x[k + j] ^= t;
    }
  }
}

BitVector PackedShareMatrix::Instance(size_t j) const {
  DSTRESS_CHECK(j < instances_);
  BitVector out(rows_);
  for (size_t r = 0; r < rows_; r++) {
    out[r] = Get(r, j) ? 1 : 0;
  }
  return out;
}

void PackedShareMatrix::SetInstance(size_t j, const BitVector& bits) {
  DSTRESS_CHECK(j < instances_ && bits.size() == rows_);
  for (size_t r = 0; r < rows_; r++) {
    Set(r, j, bits[r] & 1);
  }
}

PackedShareMatrix PackedShareMatrix::FromInstances(const std::vector<BitVector>& instances) {
  DSTRESS_CHECK(!instances.empty());
  PackedShareMatrix m(instances[0].size(), instances.size());
  for (size_t j = 0; j < instances.size(); j++) {
    m.SetInstance(j, instances[j]);
  }
  return m;
}

std::vector<BitVector> PackedShareMatrix::ToInstances() const {
  std::vector<BitVector> out;
  out.reserve(instances_);
  for (size_t j = 0; j < instances_; j++) {
    out.push_back(Instance(j));
  }
  return out;
}

}  // namespace dstress::mpc
