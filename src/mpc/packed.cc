#include "src/mpc/packed.h"

#include "src/common/check.h"

namespace dstress::mpc {

void TransposeBits64x64(uint64_t x[64]) {
  // Butterfly formulated for LSB-first bit order (bit c of word r is
  // element (r, c)): each stage swaps the (row-low, col-high) quadrant
  // with the (row-high, col-low) quadrant at its scale.
  uint64_t mask = 0x00000000FFFFFFFFULL;
  for (int j = 32; j != 0; j >>= 1, mask ^= mask << j) {
    for (int k = 0; k < 64; k = (k + j + 1) & ~j) {
      uint64_t t = ((x[k] >> j) ^ x[k + j]) & mask;
      x[k] ^= t << j;
      x[k + j] ^= t;
    }
  }
}

BitVector PackedShareMatrix::Instance(size_t j) const {
  DSTRESS_CHECK(j < instances_);
  BitVector out(rows_);
  for (size_t r = 0; r < rows_; r++) {
    out[r] = Get(r, j) ? 1 : 0;
  }
  return out;
}

void PackedShareMatrix::SetInstance(size_t j, const BitVector& bits) {
  DSTRESS_CHECK(j < instances_ && bits.size() == rows_);
  for (size_t r = 0; r < rows_; r++) {
    Set(r, j, bits[r] & 1);
  }
}

uint64_t PackedShareMatrix::GetLaneGroup(size_t r, size_t first, int count) const {
  DSTRESS_CHECK(count >= 1 && count <= 64 && first + count <= instances_);
  const uint64_t* w = row(r);
  const size_t word = first / 64;
  const int shift = static_cast<int>(first % 64);
  uint64_t bits = w[word] >> shift;
  if (shift != 0 && shift + count > 64) {
    bits |= w[word + 1] << (64 - shift);
  }
  if (count < 64) {
    bits &= (1ULL << count) - 1;
  }
  return bits;
}

void PackedShareMatrix::SetLaneGroup(size_t r, size_t first, int count, uint64_t bits) {
  DSTRESS_CHECK(count >= 1 && count <= 64 && first + count <= instances_);
  const uint64_t mask = count == 64 ? ~0ULL : (1ULL << count) - 1;
  bits &= mask;
  uint64_t* w = row(r);
  const size_t word = first / 64;
  const int shift = static_cast<int>(first % 64);
  w[word] = (w[word] & ~(mask << shift)) | (bits << shift);
  if (shift != 0 && shift + count > 64) {
    const int spill = shift + count - 64;
    const uint64_t spill_mask = (1ULL << spill) - 1;
    w[word + 1] = (w[word + 1] & ~spill_mask) | (bits >> (64 - shift));
  }
}

PackedShareMatrix PackedShareMatrix::FromInstances(const std::vector<BitVector>& instances) {
  DSTRESS_CHECK(!instances.empty());
  PackedShareMatrix m(instances[0].size(), instances.size());
  for (size_t j = 0; j < instances.size(); j++) {
    m.SetInstance(j, instances[j]);
  }
  return m;
}

std::vector<BitVector> PackedShareMatrix::ToInstances() const {
  std::vector<BitVector> out;
  out.reserve(instances_);
  for (size_t j = 0; j < instances_; j++) {
    out.push_back(Instance(j));
  }
  return out;
}

}  // namespace dstress::mpc
