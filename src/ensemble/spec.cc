#include "src/ensemble/spec.h"

#include <algorithm>
#include <cstdio>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace dstress::ensemble {

std::vector<Scenario> MaterializeScenarios(const EnsembleSpec& spec,
                                           const finance::ShockParams& base_shock,
                                           int num_banks) {
  if (!spec.scenarios.empty()) {
    DSTRESS_CHECK(spec.shock_draws == 0);
    return spec.scenarios;
  }
  DSTRESS_CHECK(spec.shock_draws > 0);
  DSTRESS_CHECK(num_banks > 0);
  int per_draw = spec.banks_per_draw > 0
                     ? spec.banks_per_draw
                     : std::max(1, static_cast<int>(base_shock.shocked_banks.size()));
  DSTRESS_CHECK(per_draw <= num_banks);
  Rng rng(spec.draw_seed);
  std::vector<Scenario> out;
  out.reserve(spec.shock_draws);
  for (int k = 0; k < spec.shock_draws; k++) {
    Scenario sc;
    // Distinct banks per draw: rejection-sample against the set so far.
    while (static_cast<int>(sc.shock.shocked_banks.size()) < per_draw) {
      int bank = static_cast<int>(rng.Below(static_cast<uint64_t>(num_banks)));
      if (std::find(sc.shock.shocked_banks.begin(), sc.shock.shocked_banks.end(), bank) ==
          sc.shock.shocked_banks.end()) {
        sc.shock.shocked_banks.push_back(bank);
      }
    }
    std::sort(sc.shock.shocked_banks.begin(), sc.shock.shocked_banks.end());
    sc.shock.survival =
        spec.has_magnitude_range
            ? spec.magnitude_lo + (spec.magnitude_hi - spec.magnitude_lo) * rng.Uniform()
            : base_shock.survival;
    if (spec.perturb_workload) {
      sc.workload_seed = rng.Next();
    }
    char label[96];
    std::snprintf(label, sizeof(label), "draw %d: %d banks, survival %.3f", k, per_draw,
                  sc.shock.survival);
    sc.label = label;
    out.push_back(std::move(sc));
  }
  return out;
}

}  // namespace dstress::ensemble
