#include "src/ensemble/ensemble.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/common/check.h"

namespace dstress::ensemble {

int64_t QuantileNearestRank(const std::vector<int64_t>& sorted, double q) {
  DSTRESS_CHECK(!sorted.empty());
  DSTRESS_CHECK(q >= 0.0 && q <= 1.0);
  // Nearest-rank: the ceil(q*K)-th smallest value (1-based), q=0 -> minimum.
  size_t rank = static_cast<size_t>(std::ceil(q * static_cast<double>(sorted.size())));
  if (rank == 0) {
    rank = 1;
  }
  return sorted[rank - 1];
}

void ReduceEnsemble(const std::vector<std::vector<uint8_t>>& defaults, EnsembleReport* report) {
  const size_t k = report->scenarios.size();
  DSTRESS_CHECK(k > 0);
  std::vector<int64_t> sorted;
  sorted.reserve(k);
  double sum = 0;
  for (const ScenarioResult& sc : report->scenarios) {
    sorted.push_back(sc.released);
    sum += static_cast<double>(sc.released);
  }
  std::sort(sorted.begin(), sorted.end());
  report->mean = sum / static_cast<double>(k);
  double var = 0;
  for (int64_t v : sorted) {
    double d = static_cast<double>(v) - report->mean;
    var += d * d;
  }
  report->stddev = k > 1 ? std::sqrt(var / static_cast<double>(k - 1)) : 0.0;
  report->min_released = sorted.front();
  report->max_released = sorted.back();
  report->p05 = QuantileNearestRank(sorted, 0.05);
  report->p25 = QuantileNearestRank(sorted, 0.25);
  report->p50 = QuantileNearestRank(sorted, 0.50);
  report->p75 = QuantileNearestRank(sorted, 0.75);
  report->p95 = QuantileNearestRank(sorted, 0.95);

  report->default_probability.clear();
  report->default_band_lo.clear();
  report->default_band_hi.clear();
  if (!defaults.empty()) {
    DSTRESS_CHECK(defaults.size() == k);
    const size_t n = defaults[0].size();
    report->default_probability.resize(n);
    report->default_band_lo.resize(n);
    report->default_band_hi.resize(n);
    for (size_t v = 0; v < n; v++) {
      double hits = 0;
      for (size_t s = 0; s < k; s++) {
        DSTRESS_CHECK(defaults[s].size() == n);
        hits += defaults[s][v] ? 1.0 : 0.0;
      }
      double p = hits / static_cast<double>(k);
      double half = 1.96 * std::sqrt(p * (1.0 - p) / static_cast<double>(k));
      report->default_probability[v] = p;
      report->default_band_lo[v] = std::max(0.0, p - half);
      report->default_band_hi[v] = std::min(1.0, p + half);
    }
  }
}

engine::RunSpec SoloSpecFor(const engine::RunSpec& base, const Scenario& scenario) {
  engine::RunSpec solo = base;
  solo.ensemble.reset();
  solo.shock = scenario.shock;
  if (scenario.workload_seed.has_value()) {
    solo.workload = engine::DeriveWorkloadParams(base);
    solo.workload->seed = *scenario.workload_seed;
  }
  return solo;
}

std::string EnsembleReport::ToString() const {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "ensemble W=%zu mode=%s mean=%.1f sd=%.1f p05=%lld p50=%lld p95=%lld "
                "eps_total=%.3f %s",
                scenarios.size(), engine::ExecutionModeName(mode), mean, stddev,
                static_cast<long long>(p05), static_cast<long long>(p50),
                static_cast<long long>(p95), epsilon_total, metrics.ToString().c_str());
  return buf;
}

std::string FormatEnsembleReport(const engine::RunSpec& spec, const EnsembleReport& report) {
  const size_t k = report.scenarios.size();
  int num_vertices =
      spec.graph.has_value() ? spec.graph->num_vertices() : spec.topology.num_vertices;
  std::string out;
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "model:               %s\n"
                "mode:                %s\n"
                "transport:           %s (mpc_batching=%s, transfer_batching=%s)\n"
                "banks:               %d (block size %d, %d iterations)\n"
                "scenarios:           %zu per lockstep pass\n",
                report.model_name.c_str(), engine::ExecutionModeName(report.mode),
                spec.transport.backend.c_str(), spec.mpc_batching ? "on" : "off",
                spec.transfer_batching ? "on" : "off", num_vertices, spec.block_size,
                report.iterations, k);
  out += buf;
  if (report.epsilon_budget > 0) {
    std::snprintf(buf, sizeof(buf),
                  "privacy:             eps %.3f per scenario, %.3f composed (budget %.3f)\n",
                  report.epsilon_each, report.epsilon_total, report.epsilon_budget);
  } else {
    std::snprintf(buf, sizeof(buf),
                  "privacy:             eps %.3f per scenario, %.3f composed (uncapped)\n",
                  report.epsilon_each, report.epsilon_total);
  }
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "released TDS:        mean %.1f, stddev %.1f money units\n"
                "quantiles:           p05=%lld p25=%lld p50=%lld p75=%lld p95=%lld "
                "(nearest-rank)\n"
                "range:               [%lld, %lld]\n",
                report.mean, report.stddev, static_cast<long long>(report.p05),
                static_cast<long long>(report.p25), static_cast<long long>(report.p50),
                static_cast<long long>(report.p75), static_cast<long long>(report.p95),
                static_cast<long long>(report.min_released),
                static_cast<long long>(report.max_released));
  out += buf;
  if (!report.default_probability.empty()) {
    int at_risk = 0;
    for (double p : report.default_probability) {
      if (p > 0.5) {
        at_risk++;
      }
    }
    std::snprintf(buf, sizeof(buf),
                  "default risk:        %d of %zu banks with P(default) > 0.5 "
                  "(95%% bands, cleartext check, not released)\n",
                  at_risk, report.default_probability.size());
    out += buf;
    // Per-bank bands, bounded: the highest-risk banks only.
    std::vector<size_t> order(report.default_probability.size());
    for (size_t v = 0; v < order.size(); v++) {
      order[v] = v;
    }
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return report.default_probability[a] > report.default_probability[b];
    });
    size_t shown = std::min<size_t>(order.size(), 8);
    for (size_t i = 0; i < shown; i++) {
      size_t v = order[i];
      std::snprintf(buf, sizeof(buf), "  bank %-5zu P(default) = %.3f  [%.3f, %.3f]\n", v,
                    report.default_probability[v], report.default_band_lo[v],
                    report.default_band_hi[v]);
      out += buf;
    }
  }
  if (k <= 16) {
    for (const ScenarioResult& sc : report.scenarios) {
      if (sc.has_reference) {
        std::snprintf(buf, sizeof(buf), "  %-36s released %lld (ref %llu)\n", sc.label.c_str(),
                      static_cast<long long>(sc.released),
                      static_cast<unsigned long long>(sc.reference));
      } else {
        std::snprintf(buf, sizeof(buf), "  %-36s released %lld\n", sc.label.c_str(),
                      static_cast<long long>(sc.released));
      }
      out += buf;
    }
  }
  std::snprintf(buf, sizeof(buf),
                "phases:              init %.2fs, compute %.2fs, communicate %.2fs,"
                " aggregate %.2fs\n"
                "wall time:           %.2f s\n"
                "traffic per bank:    %.2f MB\n",
                report.metrics.init.seconds, report.metrics.compute.seconds,
                report.metrics.communicate.seconds, report.metrics.aggregate.seconds,
                report.metrics.total_seconds, report.metrics.avg_bytes_per_node / 1e6);
  out += buf;
  return out;
}

}  // namespace dstress::ensemble
