// Scenario-ensemble specification: what varies across the lanes of one run.
//
// PR 5's packed planes evaluate up to 64 instances per 64-bit word, but
// every lane carried the *same* scenario — pure throughput. An EnsembleSpec
// describes a set of scenarios (explicit shock lists, or seeded Monte Carlo
// draws over shocked-bank sets, shock magnitudes, and balance-sheet
// perturbations) that the engine materializes into per-lane initial shares,
// so one lockstep pass returns a distribution instead of a point estimate.
//
// This header is engine-free on purpose: RunSpec embeds an EnsembleSpec, and
// the reduce/report half that needs the engine lives in
// src/ensemble/ensemble.h.
#ifndef SRC_ENSEMBLE_SPEC_H_
#define SRC_ENSEMBLE_SPEC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/finance/workload.h"

namespace dstress::ensemble {

// One lane's worth of "what is different about this world".
struct Scenario {
  finance::ShockParams shock;
  // When set, the scenario also perturbs the balance sheets: the workload is
  // regenerated with this seed instead of the base spec's (per-lane workload
  // materialization). Unset = every lane shares the base balance sheets.
  std::optional<uint64_t> workload_seed;
  std::string label;
};

struct EnsembleSpec {
  // Explicit scenario list ("ensemble scenario <bank...>" directives). When
  // non-empty it *is* the ensemble; the draw knobs below must stay unset.
  std::vector<Scenario> scenarios;

  // Monte Carlo generator ("shock_draws <K> seed <S>"): K scenarios, each
  // shocking a freshly drawn set of distinct banks.
  int shock_draws = 0;
  uint64_t draw_seed = 1;
  // Banks per drawn shock set; 0 = size of the base spec's shock set
  // (minimum 1).
  int banks_per_draw = 0;

  // "shock_magnitude_range <lo> <hi>": each draw's survival fraction is
  // uniform in [lo, hi] instead of the base shock's survival.
  bool has_magnitude_range = false;
  double magnitude_lo = 0.0;
  double magnitude_hi = 0.0;

  // "ensemble perturb_workload on": each draw also regenerates the balance
  // sheets under a drawn workload seed.
  bool perturb_workload = false;

  // "ensemble budget <eps>": cap on the composed epsilon of the whole
  // ensemble (count * per-scenario epsilon). 0 = uncapped. The engine
  // refuses (aborts, naming the overrun) before computing anything.
  double epsilon_budget = 0.0;

  int Width() const {
    return scenarios.empty() ? shock_draws : static_cast<int>(scenarios.size());
  }
};

// Expands the spec into Width() concrete scenarios. Explicit scenarios pass
// through verbatim; draws are deterministic in draw_seed (Rng-driven:
// distinct-bank sets over [0, num_banks), survival from the magnitude range
// or base_shock.survival, workload seeds when perturb_workload).
std::vector<Scenario> MaterializeScenarios(const EnsembleSpec& spec,
                                           const finance::ShockParams& base_shock,
                                           int num_banks);

}  // namespace dstress::ensemble

#endif  // SRC_ENSEMBLE_SPEC_H_
