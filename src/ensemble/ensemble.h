// Ensemble reduce + report: from per-lane released figures to a
// distributional stress report.
//
// The engine runs every scenario of an EnsembleSpec as one lane of the
// batched planes and hands the per-lane figures (plus the cleartext
// reference channel: per-scenario reference TDS and per-bank default
// indicators) to this layer, which reduces them into loss quantiles,
// mean/stddev, and per-bank default-probability bands.
//
// Semantics pinned here (and asserted by tests/ensemble_test.cc):
//  - each lane's released figure is bit-identical to an independent solo
//    run of SoloSpecFor(base, scenario);
//  - quantiles are nearest-rank over the per-scenario released figures;
//  - default bands are normal-approximation 95% intervals
//    p ± 1.96·sqrt(p(1−p)/K), clamped to [0, 1], over the cleartext
//    per-scenario default indicators (diagnostic channel — never released
//    in a real deployment, like RunReport::reference).
#ifndef SRC_ENSEMBLE_ENSEMBLE_H_
#define SRC_ENSEMBLE_ENSEMBLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/engine/run_spec.h"
#include "src/ensemble/spec.h"

namespace dstress::ensemble {

struct ScenarioResult {
  std::string label;
  int64_t released = 0;
  bool has_reference = false;
  uint64_t reference = 0;
};

struct EnsembleReport {
  std::vector<ScenarioResult> scenarios;

  // Distribution of the released figure across scenarios.
  double mean = 0;
  double stddev = 0;
  int64_t min_released = 0;
  int64_t max_released = 0;
  int64_t p05 = 0, p25 = 0, p50 = 0, p75 = 0, p95 = 0;

  // Per-bank default-probability bands (empty for custom programs without a
  // reference channel): point estimate + clamped 95% interval.
  std::vector<double> default_probability;
  std::vector<double> default_band_lo;
  std::vector<double> default_band_hi;

  // Privacy accounting: composed epsilon of the ensemble vs the cap.
  double epsilon_each = 0;
  double epsilon_total = 0;
  double epsilon_budget = 0;  // 0 = uncapped

  core::RunMetrics metrics;
  int iterations = 0;
  std::string model_name;
  engine::ExecutionMode mode = engine::ExecutionMode::kSecure;

  std::string ToString() const;
};

// Nearest-rank quantile (q in [0, 1]) of an ascending-sorted sample.
int64_t QuantileNearestRank(const std::vector<int64_t>& sorted, double q);

// Fills the distributional fields of *report from report->scenarios and the
// per-scenario per-bank default indicators (defaults[s][v]; pass {} when the
// model has no reference channel).
void ReduceEnsemble(const std::vector<std::vector<uint8_t>>& defaults, EnsembleReport* report);

// The solo RunSpec a scenario is equivalent to: base spec with the
// scenario's shock, the ensemble cleared, and the workload re-seeded when
// the scenario perturbs balance sheets. Lane s of an ensemble run must
// reproduce SoloSpecFor(base, scenarios[s]) bit-exactly.
engine::RunSpec SoloSpecFor(const engine::RunSpec& base, const Scenario& scenario);

// Multi-line regulator-facing report (the ensemble sibling of
// engine::FormatReport).
std::string FormatEnsembleReport(const engine::RunSpec& spec, const EnsembleReport& report);

}  // namespace dstress::ensemble

#endif  // SRC_ENSEMBLE_ENSEMBLE_H_
