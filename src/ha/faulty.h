// ha::FaultyTransport — deterministic fault injection for any transport
// backend (`transport faulty <sim|tcp>` in scenarios; docs/ha.md).
//
// The wrapper decorates a real backend (TransportSpec::faulty_inner) and
// fires the scripted FaultSpec schedule at exact cumulative send counts:
// the Kth Send of a scenario is the same Send every run, so a fault fires
// at an identical protocol position with no timers or races involved —
// which is what lets CI assert bit-identical recovery output.
//
//   kKillNode — SIGKILL the target bank (TCP, via net::FaultInjectable);
//               on backends without process boundaries it declares the
//               peer dead (ChannelDemuxTransport::DeclarePeerDead), which
//               exercises the blocked-Recv wake-with-error path instead.
//   kDropLink — sever the driver <-> bank socket (TCP); declares the peer
//               dead elsewhere.
//   kDelay    — stall the offending Send by delay_ms. Perturbs timing
//               without touching delivery: figures must be unchanged.
//
// All forwarding is transparent: metering, observers and the HA counters
// come straight from the inner backend, so a faulty-wrapped run's
// TrafficStats equal the unwrapped run's.
#ifndef SRC_HA_FAULTY_H_
#define SRC_HA_FAULTY_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "src/net/transport.h"
#include "src/net/transport_spec.h"

namespace dstress::ha {

class FaultyTransport : public net::Transport {
 public:
  // Builds the inner backend from `spec` with backend = spec.faulty_inner
  // and arms spec.faults (sorted by after_sends).
  FaultyTransport(int num_nodes, const net::TransportSpec& spec);

  int num_nodes() const override { return inner_->num_nodes(); }
  void SetObserver(net::NetworkObserver* observer) override { inner_->SetObserver(observer); }
  void Send(net::NodeId from, net::NodeId to, Bytes message,
            net::SessionId session = 0) override;
  void SendBatch(net::NodeId from, net::NodeId to, std::vector<Bytes> messages,
                 net::SessionId session = 0) override;
  Bytes Recv(net::NodeId to, net::NodeId from, net::SessionId session = 0) override {
    return inner_->Recv(to, from, session);
  }
  std::vector<Bytes> RecvBatch(net::NodeId to, net::NodeId from, size_t count,
                               net::SessionId session = 0) override {
    return inner_->RecvBatch(to, from, count, session);
  }
  net::TrafficStats NodeStats(net::NodeId node) const override {
    return inner_->NodeStats(node);
  }
  uint64_t TotalBytes() const override { return inner_->TotalBytes(); }
  uint64_t MaxBytesPerNode() const override { return inner_->MaxBytesPerNode(); }
  void ResetStats() override { inner_->ResetStats(); }
  uint64_t HaControlBytes() const override { return inner_->HaControlBytes(); }
  int HaResumeCount() const override { return inner_->HaResumeCount(); }

  // Cumulative sends observed (SendBatch counts each element), for tuning
  // a scenario's after_sends against a trial run.
  uint64_t sends() const { return sends_.load(std::memory_order_relaxed); }

  net::Transport* inner() { return inner_.get(); }

 private:
  // Fires every not-yet-fired fault with after_sends <= count; called with
  // the counter value that includes the Send about to be forwarded, so a
  // kDelay stalls the offending Send itself.
  void MaybeFire(uint64_t count);
  void Fire(const net::FaultSpec& fault);

  std::unique_ptr<net::Transport> inner_;
  std::vector<net::FaultSpec> faults_;  // sorted by after_sends
  std::atomic<uint64_t> sends_{0};
  std::mutex fault_mu_;
  size_t next_fault_ = 0;  // under fault_mu_
};

// Installs the "faulty" backend in the transport registry. Idempotent and
// thread-safe; called by the engine at construction so scenarios can name
// the backend. (Explicit registration because the linker may drop
// self-registering objects from a static library.)
void RegisterHaTransports();

}  // namespace dstress::ha

#endif  // SRC_HA_FAULTY_H_
