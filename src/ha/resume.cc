#include "src/ha/resume.h"

#include <algorithm>
#include <cstddef>
#include <cstdio>

#include "src/common/check.h"

namespace dstress::ha {

Bytes WrapSeq(uint64_t seq, const Bytes& payload) {
  Bytes out;
  out.reserve(payload.size() + 8);
  for (int i = 0; i < 8; i++) out.push_back(static_cast<uint8_t>(seq >> (8 * i)));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

uint64_t PeekSeq(const Bytes& wrapped) {
  DSTRESS_CHECK(wrapped.size() >= 8);
  uint64_t seq = 0;
  for (int i = 0; i < 8; i++) seq |= static_cast<uint64_t>(wrapped[i]) << (8 * i);
  return seq;
}

Bytes StripSeq(Bytes wrapped) {
  DSTRESS_CHECK(wrapped.size() >= 8);
  wrapped.erase(wrapped.begin(), wrapped.begin() + 8);
  return wrapped;
}

ResumeLog::ResumeLog(size_t max_buffered_bytes) : max_buffered_bytes_(max_buffered_bytes) {}

uint64_t ResumeLog::NextSendSeq(const ChannelId& ch) { return channels_[ch].next_send++; }

void ResumeLog::Buffer(const ChannelId& ch, uint64_t seq, Bytes encoded_frame) {
  ChannelState& state = channels_[ch];
  // Sends are buffered in issue order, so the pending window stays contiguous.
  DSTRESS_CHECK(seq == state.next_deliver + (state.pending.size() - state.pending_head));
  buffered_bytes_ += encoded_frame.size();
  buffered_frames_++;
  if (buffered_bytes_ > max_buffered_bytes_) {
    std::fprintf(stderr,
                 "ha: resume buffer overflow: %zu bytes of undelivered frames exceed the "
                 "%zu-byte budget (raise `ha resume_buffer_mb` or lower the fault window)\n",
                 buffered_bytes_, max_buffered_bytes_);
    DSTRESS_CHECK(false);
  }
  state.pending.push_back(std::move(encoded_frame));
}

bool ResumeLog::Deliver(const ChannelId& ch, uint64_t seq) {
  ChannelState& state = channels_[ch];
  if (seq != state.next_deliver) return false;  // duplicate (below) or stray (above)
  state.next_deliver++;
  DSTRESS_CHECK(state.pending_head < state.pending.size());
  Bytes& front = state.pending[state.pending_head];
  buffered_bytes_ -= front.size();
  buffered_frames_--;
  Bytes().swap(front);
  state.pending_head++;
  if (state.pending_head == state.pending.size() || state.pending_head >= 1024) {
    state.pending.erase(state.pending.begin(),
                        state.pending.begin() + static_cast<ptrdiff_t>(state.pending_head));
    state.pending_head = 0;
  }
  return true;
}

std::vector<ResumeLog::ReplayFrame> ResumeLog::UndeliveredFor(int32_t node) const {
  std::vector<const std::pair<const ChannelId, ChannelState>*> touched;
  for (const auto& entry : channels_) {
    if (entry.first.from != node && entry.first.to != node) continue;
    if (entry.second.pending_head == entry.second.pending.size()) continue;
    touched.push_back(&entry);
  }
  std::sort(touched.begin(), touched.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  std::vector<ReplayFrame> out;
  for (const auto* entry : touched) {
    const ChannelState& state = entry->second;
    for (size_t i = state.pending_head; i < state.pending.size(); i++) {
      out.push_back(ReplayFrame{entry->first.from, state.pending[i]});
    }
  }
  return out;
}

}  // namespace dstress::ha
