#include "src/ha/checkpoint.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "src/common/check.h"
#include "src/crypto/sha256.h"

namespace dstress::ha {

namespace {

constexpr char kMagic[8] = {'D', 'S', 'T', 'R', 'C', 'K', 'P', 'T'};
constexpr uint32_t kFormatVersion = 1;

void WriteBits(ByteWriter* w, const mpc::BitVector& bits) { w->Blob(bits); }

mpc::BitVector ReadBits(ByteReader* r) { return r->Blob(); }

void WriteShares2(ByteWriter* w, const std::vector<std::vector<mpc::BitVector>>& a) {
  w->U32(static_cast<uint32_t>(a.size()));
  for (const auto& row : a) {
    w->U32(static_cast<uint32_t>(row.size()));
    for (const auto& bits : row) {
      WriteBits(w, bits);
    }
  }
}

std::vector<std::vector<mpc::BitVector>> ReadShares2(ByteReader* r) {
  std::vector<std::vector<mpc::BitVector>> a(r->U32());
  for (auto& row : a) {
    row.resize(r->U32());
    for (auto& bits : row) {
      bits = ReadBits(r);
    }
  }
  return a;
}

void WriteShares3(ByteWriter* w, const std::vector<std::vector<std::vector<mpc::BitVector>>>& a) {
  w->U32(static_cast<uint32_t>(a.size()));
  for (const auto& plane : a) {
    WriteShares2(w, plane);
  }
}

std::vector<std::vector<std::vector<mpc::BitVector>>> ReadShares3(ByteReader* r) {
  std::vector<std::vector<std::vector<mpc::BitVector>>> a(r->U32());
  for (auto& plane : a) {
    plane = ReadShares2(r);
  }
  return a;
}

}  // namespace

Bytes EncodeSnapshot(const RuntimeSnapshot& snapshot) {
  ByteWriter w;
  w.U64(snapshot.config_fingerprint);
  w.U32(static_cast<uint32_t>(snapshot.next_iteration));
  WriteShares2(&w, snapshot.state_shares);
  WriteShares3(&w, snapshot.inmsg_shares);
  WriteShares3(&w, snapshot.outmsg_shares);
  w.U32(static_cast<uint32_t>(snapshot.triple_cursors.size()));
  for (const auto& cursor : snapshot.triple_cursors) {
    w.U64(cursor.tag);
    w.U32(static_cast<uint32_t>(cursor.member));
    w.U64(cursor.calls);
  }
  return w.Take();
}

RuntimeSnapshot DecodeSnapshot(const Bytes& body) {
  ByteReader r(body);
  RuntimeSnapshot snapshot;
  snapshot.config_fingerprint = r.U64();
  snapshot.next_iteration = static_cast<int32_t>(r.U32());
  snapshot.state_shares = ReadShares2(&r);
  snapshot.inmsg_shares = ReadShares3(&r);
  snapshot.outmsg_shares = ReadShares3(&r);
  snapshot.triple_cursors.resize(r.U32());
  for (auto& cursor : snapshot.triple_cursors) {
    cursor.tag = r.U64();
    cursor.member = static_cast<int32_t>(r.U32());
    cursor.calls = r.U64();
  }
  DSTRESS_CHECK(r.AtEnd());
  return snapshot;
}

bool SaveSnapshot(const std::string& path, const RuntimeSnapshot& snapshot, std::string* error) {
  Bytes body = EncodeSnapshot(snapshot);
  crypto::Sha256Digest digest = crypto::Sha256::Hash(body);

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = "cannot open " + tmp + " for writing: " + std::strerror(errno);
    }
    return false;
  }
  bool ok = std::fwrite(kMagic, 1, sizeof(kMagic), f) == sizeof(kMagic);
  uint32_t version = kFormatVersion;
  ok = ok && std::fwrite(&version, 1, sizeof(version), f) == sizeof(version);
  ok = ok && (body.empty() || std::fwrite(body.data(), 1, body.size(), f) == body.size());
  ok = ok && std::fwrite(digest.data(), 1, digest.size(), f) == digest.size();
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    if (error != nullptr) {
      *error = "short write to " + tmp + ": " + std::strerror(errno);
    }
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) {
      *error = "cannot rename " + tmp + " to " + path + ": " + std::strerror(errno);
    }
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool LoadSnapshot(const std::string& path, RuntimeSnapshot* snapshot, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = "cannot open " + path + ": " + std::strerror(errno);
    }
    return false;
  }
  Bytes file;
  uint8_t buf[65536];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    file.insert(file.end(), buf, buf + n);
  }
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    if (error != nullptr) {
      *error = "read error on " + path;
    }
    return false;
  }

  constexpr size_t kHeader = sizeof(kMagic) + sizeof(uint32_t);
  constexpr size_t kDigest = 32;
  if (file.size() < kHeader + kDigest) {
    if (error != nullptr) {
      *error = path + " is truncated (" + std::to_string(file.size()) + " bytes)";
    }
    return false;
  }
  if (std::memcmp(file.data(), kMagic, sizeof(kMagic)) != 0) {
    if (error != nullptr) {
      *error = path + " is not a DStress checkpoint (bad magic)";
    }
    return false;
  }
  uint32_t version;
  std::memcpy(&version, file.data() + sizeof(kMagic), sizeof(version));
  if (version != kFormatVersion) {
    if (error != nullptr) {
      *error = path + " has checkpoint format version " + std::to_string(version) +
               "; this build reads version " + std::to_string(kFormatVersion);
    }
    return false;
  }
  Bytes body(file.begin() + kHeader, file.end() - kDigest);
  crypto::Sha256Digest digest = crypto::Sha256::Hash(body);
  if (std::memcmp(digest.data(), file.data() + (file.size() - kDigest), kDigest) != 0) {
    if (error != nullptr) {
      *error = path + " fails its integrity check (torn write or corruption)";
    }
    return false;
  }
  // The digest matched, so the body is byte-exact what SaveSnapshot wrote;
  // the strict (aborting) decoder is safe from here.
  *snapshot = DecodeSnapshot(body);
  return true;
}

}  // namespace dstress::ha
