// Session-resume bookkeeping for the TCP driver (docs/ha.md).
//
// With HA enabled the driver prefixes every data payload with a per-channel
// monotonic sequence number and keeps the encoded wire frame in a bounded
// retransmit buffer until the frame has been observed back at the driver
// (frames travel driver -> from-bank -> to-bank -> driver, so driver receipt
// is proof of end-to-end delivery). When a bank's session is resumed, every
// still-undelivered frame touching that bank is replayed in order; the
// delivery cursor makes redelivery exactly-once — duplicates (seq below the
// cursor) and in-flight strays that overtook the replay (seq above it) are
// both dropped, because the replay itself carries every pending sequence in
// FIFO order.
//
// The class is pure bookkeeping and not thread-safe; net::TcpNetwork guards
// it with its own HA mutex.
#ifndef DSTRESS_HA_RESUME_H_
#define DSTRESS_HA_RESUME_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/bytes.h"

namespace dstress::ha {

// One transport channel: the wire codec's (from, to, session) triple.
struct ChannelId {
  int32_t from = 0;
  int32_t to = 0;
  uint64_t session = 0;

  bool operator==(const ChannelId& o) const {
    return from == o.from && to == o.to && session == o.session;
  }
  bool operator<(const ChannelId& o) const {
    if (from != o.from) return from < o.from;
    if (to != o.to) return to < o.to;
    return session < o.session;
  }
};

struct ChannelIdHash {
  size_t operator()(const ChannelId& c) const {
    uint64_t h = static_cast<uint32_t>(c.from);
    h = h * 0x9e3779b97f4a7c15ULL + static_cast<uint32_t>(c.to);
    h = h * 0x9e3779b97f4a7c15ULL + c.session;
    return static_cast<size_t>(h ^ (h >> 32));
  }
};

// Sequence prefix helpers: payloads travel as [u64 seq][original payload].
Bytes WrapSeq(uint64_t seq, const Bytes& payload);
uint64_t PeekSeq(const Bytes& wrapped);
// Removes the 8-byte prefix in place and returns the original payload.
Bytes StripSeq(Bytes wrapped);

class ResumeLog {
 public:
  // Aborts when buffered retransmit state would exceed `max_buffered_bytes`
  // (the run is holding more undelivered traffic than the operator budgeted).
  explicit ResumeLog(size_t max_buffered_bytes);

  // Next sequence number to send on `ch` (0, 1, 2, ... per channel).
  uint64_t NextSendSeq(const ChannelId& ch);

  // Retains a sent frame (already seq-wrapped and wire-encoded) for replay.
  void Buffer(const ChannelId& ch, uint64_t seq, Bytes encoded_frame);

  // Called when a frame with `seq` arrives back at the driver. Returns true
  // exactly when the frame is the next expected one — the caller delivers it
  // and this log prunes it (and nothing else) from the retransmit buffer.
  // False means drop: a duplicate or a stray that overtook a replay.
  bool Deliver(const ChannelId& ch, uint64_t seq);

  struct ReplayFrame {
    int32_t from = 0;  // bank whose driver link carries the replay
    Bytes encoded;
  };

  // Every undelivered frame on channels touching `node`, ordered by channel
  // then sequence — push these onto the from-banks' links after a resume.
  std::vector<ReplayFrame> UndeliveredFor(int32_t node) const;

  size_t buffered_bytes() const { return buffered_bytes_; }
  size_t buffered_frames() const { return buffered_frames_; }

 private:
  struct ChannelState {
    uint64_t next_send = 0;
    uint64_t next_deliver = 0;
    // Undelivered frames in seq order: front() has seq == next_deliver.
    std::vector<Bytes> pending;
    size_t pending_head = 0;  // lazily compacted pop index
  };

  size_t max_buffered_bytes_;
  size_t buffered_bytes_ = 0;
  size_t buffered_frames_ = 0;
  std::unordered_map<ChannelId, ChannelState, ChannelIdHash> channels_;
};

}  // namespace dstress::ha

#endif  // DSTRESS_HA_RESUME_H_
