#include "src/ha/faulty.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>

#include "src/common/check.h"
#include "src/net/channel_demux.h"

namespace dstress::ha {

FaultyTransport::FaultyTransport(int num_nodes, const net::TransportSpec& spec) {
  DSTRESS_CHECK(spec.faulty_inner != "faulty");  // no self-decoration
  if (!net::KnownTransportBackend(spec.faulty_inner)) {
    std::fprintf(stderr, "transport faulty: unknown inner backend '%s'\n",
                 spec.faulty_inner.c_str());
    DSTRESS_CHECK(false);
  }
  net::TransportSpec inner_spec = spec;
  inner_spec.backend = spec.faulty_inner;
  inner_spec.faults.clear();
  inner_ = net::MakeTransport(inner_spec, num_nodes);
  faults_ = spec.faults;
  std::stable_sort(faults_.begin(), faults_.end(),
                   [](const net::FaultSpec& a, const net::FaultSpec& b) {
                     return a.after_sends < b.after_sends;
                   });
}

void FaultyTransport::Send(net::NodeId from, net::NodeId to, Bytes message,
                           net::SessionId session) {
  MaybeFire(sends_.fetch_add(1, std::memory_order_relaxed) + 1);
  inner_->Send(from, to, std::move(message), session);
}

void FaultyTransport::SendBatch(net::NodeId from, net::NodeId to, std::vector<Bytes> messages,
                                net::SessionId session) {
  // A batch counts each element, so a threshold landing inside the batch
  // fires before any of it is forwarded — the nearest deterministic point.
  MaybeFire(sends_.fetch_add(messages.size(), std::memory_order_relaxed) + messages.size());
  inner_->SendBatch(from, to, std::move(messages), session);
}

void FaultyTransport::MaybeFire(uint64_t count) {
  if (next_fault_ >= faults_.size()) {  // benign race: rechecked under the lock
    return;
  }
  std::lock_guard<std::mutex> lock(fault_mu_);
  while (next_fault_ < faults_.size() && faults_[next_fault_].after_sends <= count) {
    Fire(faults_[next_fault_]);
    next_fault_++;
  }
}

void FaultyTransport::Fire(const net::FaultSpec& fault) {
  switch (fault.action) {
    case net::FaultSpec::Action::kDelay:
      std::fprintf(stderr, "faulty: injecting %d ms delay at send #%llu\n", fault.delay_ms,
                   static_cast<unsigned long long>(fault.after_sends));
      std::this_thread::sleep_for(std::chrono::milliseconds(fault.delay_ms));
      return;
    case net::FaultSpec::Action::kKillNode:
    case net::FaultSpec::Action::kDropLink: {
      const bool kill = fault.action == net::FaultSpec::Action::kKillNode;
      std::fprintf(stderr, "faulty: injecting %s of bank %d at send #%llu\n",
                   kill ? "kill" : "link drop", fault.node,
                   static_cast<unsigned long long>(fault.after_sends));
      auto* injectable = dynamic_cast<net::FaultInjectable*>(inner_.get());
      if (injectable != nullptr) {
        if (kill) {
          injectable->InjectNodeKill(fault.node);
        } else {
          injectable->InjectLinkDrop(fault.node);
        }
        return;
      }
      // Backends without process/socket boundaries (sim): the fault is not
      // recoverable, so it degrades to declaring the peer dead — blocked
      // receivers on its channels wake with a clear error instead of
      // hanging (channel_demux.h).
      auto* demux = dynamic_cast<net::ChannelDemuxTransport*>(inner_.get());
      DSTRESS_CHECK(demux != nullptr);
      demux->DeclarePeerDead(fault.node,
                             std::string("injected ") + (kill ? "kill" : "link drop") +
                                 " at send #" + std::to_string(fault.after_sends));
      return;
    }
  }
  DSTRESS_CHECK(false);
}

void RegisterHaTransports() {
  static std::once_flag once;
  std::call_once(once, [] {
    net::RegisterTransport("faulty", [](int num_nodes, const net::TransportSpec& spec) {
      return std::make_unique<FaultyTransport>(num_nodes, spec);
    });
  });
}

}  // namespace dstress::ha
