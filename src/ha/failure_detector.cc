#include "src/ha/failure_detector.h"

#include "src/common/check.h"

namespace dstress::ha {

const char* PeerHealthName(PeerHealth health) {
  switch (health) {
    case PeerHealth::kAlive:
      return "alive";
    case PeerHealth::kSuspect:
      return "suspect";
    case PeerHealth::kDead:
      return "dead";
  }
  return "?";
}

FailureDetector::FailureDetector(int num_peers, FailureDetectorParams params, int64_t now_ms)
    : params_(params) {
  DSTRESS_CHECK(num_peers >= 0);
  DSTRESS_CHECK(params_.suspect_after_ms > 0);
  DSTRESS_CHECK(params_.dead_after_ms >= params_.suspect_after_ms);
  peers_.resize(static_cast<size_t>(num_peers));
  for (PeerState& p : peers_) p.last_heard_ms = now_ms;
}

void FailureDetector::OnHeartbeat(int peer, int64_t now_ms) {
  DSTRESS_CHECK(peer >= 0 && peer < static_cast<int>(peers_.size()));
  PeerState& p = peers_[static_cast<size_t>(peer)];
  p.last_heard_ms = now_ms;
  p.health = PeerHealth::kAlive;
  p.dead_since_ms = 0;
}

void FailureDetector::OnConnectionLoss(int peer, int64_t now_ms) {
  DSTRESS_CHECK(peer >= 0 && peer < static_cast<int>(peers_.size()));
  PeerState& p = peers_[static_cast<size_t>(peer)];
  if (p.health != PeerHealth::kDead) {
    p.health = PeerHealth::kDead;
    p.dead_since_ms = now_ms;
  }
}

std::vector<FailureDetector::Transition> FailureDetector::Tick(int64_t now_ms) {
  std::vector<Transition> transitions;
  for (size_t i = 0; i < peers_.size(); i++) {
    PeerState& p = peers_[i];
    if (p.health == PeerHealth::kDead) continue;
    int64_t silent = now_ms - p.last_heard_ms;
    PeerHealth next = p.health;
    if (silent >= params_.dead_after_ms) {
      next = PeerHealth::kDead;
    } else if (silent >= params_.suspect_after_ms) {
      next = PeerHealth::kSuspect;
    }
    if (next != p.health) {
      transitions.push_back(Transition{static_cast<int>(i), p.health, next});
      p.health = next;
      if (next == PeerHealth::kDead) {
        // Date the death at the moment the silence budget ran out, not at
        // the (possibly late) tick that noticed it.
        p.dead_since_ms = p.last_heard_ms + params_.dead_after_ms;
      }
    }
  }
  return transitions;
}

PeerHealth FailureDetector::health(int peer) const {
  DSTRESS_CHECK(peer >= 0 && peer < static_cast<int>(peers_.size()));
  return peers_[static_cast<size_t>(peer)].health;
}

int64_t FailureDetector::DeadForMs(int peer, int64_t now_ms) const {
  DSTRESS_CHECK(peer >= 0 && peer < static_cast<int>(peers_.size()));
  const PeerState& p = peers_[static_cast<size_t>(peer)];
  if (p.health != PeerHealth::kDead) return 0;
  int64_t dead_for = now_ms - p.dead_since_ms;
  return dead_for > 0 ? dead_for : 0;
}

}  // namespace dstress::ha
