// Runtime phase-state checkpoints (docs/ha.md): the on-disk snapshot format
// behind `ha checkpoint_every` and `--resume`.
//
// DStress's secure runtime is a deterministic lockstep computation: between
// iteration barriers the only state a rejoining driver needs is the share
// arrays (state, in-slot and out-slot message shares for every vertex and
// block member), the iteration cursor, and the position of every dealer
// triple tape. A snapshot captures exactly that, plus a fingerprint of the
// run configuration so a checkpoint can never be replayed into a different
// run shape. Because the PRG roles are stateless (every phase derives fresh
// streams from (seed, role, instance)), restoring those arrays and
// fast-forwarding the triple tapes reproduces the remaining iterations —
// and therefore the released figures — bit-identically.
//
// Snapshots only cover dealer-triple runs (use_ot_triples = false): OT
// sessions hold cross-process key state that cannot be re-wound from one
// side. The runtime enforces this at configuration time.
//
// File format (little-endian, ByteWriter):
//
//   "DSTRCKPT"            8-byte magic
//   u32 format version    currently 1
//   body                  EncodeSnapshot output
//   sha256(body)          32 trailing bytes
//
// SaveSnapshot writes to `<path>.tmp` and renames, so a crash mid-write
// leaves the previous checkpoint intact. LoadSnapshot verifies magic,
// version and digest and reports failures as error strings (a torn or
// stale file must surface as "cannot resume", not a CHECK abort deep in
// the parser).
#ifndef SRC_HA_CHECKPOINT_H_
#define SRC_HA_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/mpc/sharing.h"

namespace dstress::ha {

struct RuntimeSnapshot {
  // FNV-1a over the run parameters that shape the share arrays and tapes
  // (core::Runtime::ConfigFingerprint). Load-time mismatch = wrong run.
  uint64_t config_fingerprint = 0;
  // The first iteration still to execute when resuming.
  int32_t next_iteration = 0;
  // Share arrays exactly as the runtime holds them: [vertex][member],
  // [vertex][slot][member].
  std::vector<std::vector<mpc::BitVector>> state_shares;
  std::vector<std::vector<std::vector<mpc::BitVector>>> inmsg_shares;
  std::vector<std::vector<std::vector<mpc::BitVector>>> outmsg_shares;
  // One cursor per live DealerTripleSource: fast-forwarding a fresh source
  // to `calls` reproduces its tape position.
  struct TripleCursor {
    uint64_t tag = 0;
    int32_t member = 0;
    uint64_t calls = 0;
  };
  std::vector<TripleCursor> triple_cursors;
};

// Body codec (no framing/digest). DecodeSnapshot aborts on a malformed
// body — callers reach it only through LoadSnapshot's digest check.
Bytes EncodeSnapshot(const RuntimeSnapshot& snapshot);
RuntimeSnapshot DecodeSnapshot(const Bytes& body);

// Atomically writes `snapshot` to `path` (tmp + rename). Returns false and
// fills `error` on I/O failure.
bool SaveSnapshot(const std::string& path, const RuntimeSnapshot& snapshot, std::string* error);

// Reads and verifies `path`. Returns false and fills `error` when the file
// is missing, truncated, corrupt, or a different format version.
bool LoadSnapshot(const std::string& path, RuntimeSnapshot* snapshot, std::string* error);

}  // namespace dstress::ha

#endif  // SRC_HA_CHECKPOINT_H_
