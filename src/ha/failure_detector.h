// Per-peer liveness state machine for the driver-side heartbeat monitor
// (docs/ha.md). Pure and clock-free: every entry point takes the caller's
// monotonic clock reading in milliseconds, so tests drive it deterministically
// and the TCP monitor thread feeds it a steady_clock sample.
//
// A peer is kAlive while heartbeat acks keep arriving, degrades to kSuspect
// after `suspect_after_ms` of silence, to kDead after `dead_after_ms`, and an
// observed connection loss (reader EOF on the peer's link) is an immediate
// kDead regardless of timers. A heartbeat from any state revives the peer to
// kAlive — a resumed session starts a fresh silence window.
#ifndef DSTRESS_HA_FAILURE_DETECTOR_H_
#define DSTRESS_HA_FAILURE_DETECTOR_H_

#include <cstdint>
#include <vector>

namespace dstress::ha {

enum class PeerHealth { kAlive, kSuspect, kDead };

const char* PeerHealthName(PeerHealth health);

struct FailureDetectorParams {
  int64_t suspect_after_ms = 1000;
  int64_t dead_after_ms = 3000;
};

class FailureDetector {
 public:
  // All peers start kAlive with their silence window opened at `now_ms`.
  FailureDetector(int num_peers, FailureDetectorParams params, int64_t now_ms);

  // A heartbeat ack arrived from `peer`: refresh its window and revive it.
  void OnHeartbeat(int peer, int64_t now_ms);

  // The peer's link dropped (reader saw EOF / reset): immediately kDead.
  void OnConnectionLoss(int peer, int64_t now_ms);

  struct Transition {
    int peer;
    PeerHealth from;
    PeerHealth to;
  };

  // Advances timer-driven degradations and returns every state change.
  std::vector<Transition> Tick(int64_t now_ms);

  PeerHealth health(int peer) const;

  // How long `peer` has been kDead (0 when it is not dead). The monitor
  // declares the run lost once this exceeds the resume budget.
  int64_t DeadForMs(int peer, int64_t now_ms) const;

 private:
  struct PeerState {
    PeerHealth health = PeerHealth::kAlive;
    int64_t last_heard_ms = 0;
    int64_t dead_since_ms = 0;
  };

  FailureDetectorParams params_;
  std::vector<PeerState> peers_;
};

}  // namespace dstress::ha

#endif  // DSTRESS_HA_FAILURE_DETECTOR_H_
