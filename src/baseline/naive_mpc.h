// The naïve strawman of paper §5.5: run the entire systemic-risk
// computation as one monolithic MPC.
//
// The closed form of Eisenberg–Noe-style contagion essentially raises the
// N×N liability matrix to the I-th power, so the baseline cost is governed
// by an N×N fixed-point matrix multiplication circuit evaluated by all
// parties jointly. The paper measures this with a Wysteria program for
// N ≤ 25 (out of memory beyond that) and extrapolates O(N^3):
// (1750/25)^3 * 40 min * 11 ≈ 287 years. This module reproduces that
// methodology: build the circuit, run it in our GMW engine for small N,
// extrapolate to the full banking system.
#ifndef SRC_BASELINE_NAIVE_MPC_H_
#define SRC_BASELINE_NAIVE_MPC_H_

#include <cstdint>

#include "src/circuit/circuit.h"

namespace dstress::baseline {

struct NaiveMpcParams {
  int matrix_n = 10;      // matrix dimension
  int value_bits = 12;    // element width (the prototype's share width)
  int parties = 3;        // parties in the monolithic MPC
  bool use_ot_triples = false;
  uint64_t seed = 1;
};

struct NaiveMpcResult {
  double seconds = 0;
  uint64_t total_bytes = 0;
  size_t and_gates = 0;
  bool verified = false;  // output matched the plaintext product
};

// Builds the N×N matrix product circuit: inputs are two row-major matrices
// of value_bits elements; outputs the product (elements truncated to
// value_bits, matching fixed-point semantics).
circuit::Circuit BuildMatMulCircuit(int matrix_n, int value_bits);

// Evaluates one matrix multiplication in GMW among `parties` parties over a
// simulated transport and verifies the result against a host-side product.
NaiveMpcResult RunNaiveMatMul(const NaiveMpcParams& params);

// §5.5 extrapolation: scales a measured multiplication cubically to
// `target_n` and multiplies by `power - 1` chained multiplications.
double ExtrapolateMatrixPowerSeconds(double measured_seconds, int measured_n, int target_n,
                                     int power);

}  // namespace dstress::baseline

#endif  // SRC_BASELINE_NAIVE_MPC_H_
