#include "src/baseline/naive_mpc.h"

#include <thread>
#include <vector>

#include "src/circuit/builder.h"
#include "src/common/check.h"
#include "src/common/stopwatch.h"
#include "src/mpc/gmw.h"
#include "src/mpc/sharing.h"
#include "src/mpc/triples.h"
#include "src/net/transport_spec.h"

namespace dstress::baseline {

circuit::Circuit BuildMatMulCircuit(int matrix_n, int value_bits) {
  DSTRESS_CHECK(matrix_n >= 1);
  circuit::Builder b;
  std::vector<circuit::Word> a(static_cast<size_t>(matrix_n) * matrix_n);
  std::vector<circuit::Word> bm(static_cast<size_t>(matrix_n) * matrix_n);
  for (auto& word : a) {
    word = b.InputWord(value_bits);
  }
  for (auto& word : bm) {
    word = b.InputWord(value_bits);
  }
  for (int i = 0; i < matrix_n; i++) {
    for (int j = 0; j < matrix_n; j++) {
      circuit::Word acc = b.ConstWord(0, value_bits);
      for (int k = 0; k < matrix_n; k++) {
        acc = b.Add(acc, b.Mul(a[static_cast<size_t>(i) * matrix_n + k],
                               bm[static_cast<size_t>(k) * matrix_n + j]));
      }
      b.OutputWord(acc);
    }
  }
  return b.Build();
}

NaiveMpcResult RunNaiveMatMul(const NaiveMpcParams& params) {
  circuit::Circuit circuit = BuildMatMulCircuit(params.matrix_n, params.value_bits);

  // Random input matrices.
  auto prg = crypto::ChaCha20Prg::FromSeed(params.seed);
  mpc::BitVector inputs;
  inputs.reserve(circuit.num_inputs());
  for (size_t i = 0; i < circuit.num_inputs(); i++) {
    inputs.push_back(prg.NextBit() ? 1 : 0);
  }
  std::vector<uint8_t> expected = circuit.Eval(inputs);

  std::unique_ptr<net::Transport> net_owner = net::MakeSimTransport(params.parties);
  net::Transport& net = *net_owner;
  auto shares = mpc::ShareBits(inputs, params.parties, prg);
  std::vector<mpc::BitVector> outputs(params.parties);

  NaiveMpcResult result;
  result.and_gates = circuit.stats().num_and;
  Stopwatch timer;
  std::vector<std::thread> threads;
  threads.reserve(params.parties);
  for (int p = 0; p < params.parties; p++) {
    threads.emplace_back([&, p] {
      std::vector<net::NodeId> ids(params.parties);
      for (int i = 0; i < params.parties; i++) {
        ids[i] = i;
      }
      std::unique_ptr<mpc::TripleSource> triples;
      if (params.use_ot_triples) {
        triples = std::make_unique<mpc::OtTripleSource>(
            &net, ids, p, crypto::ChaCha20Prg::FromSeed(params.seed + 100 + p));
      } else {
        triples = std::make_unique<mpc::DealerTripleSource>(p, params.parties, params.seed);
      }
      mpc::GmwParty party(&net, ids, p, triples.get());
      outputs[p] = party.Eval(circuit, shares[p]);
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  result.seconds = timer.ElapsedSeconds();
  result.total_bytes = net.TotalBytes();
  result.verified = mpc::ReconstructBits(outputs) == expected;
  return result;
}

double ExtrapolateMatrixPowerSeconds(double measured_seconds, int measured_n, int target_n,
                                     int power) {
  DSTRESS_CHECK(measured_n >= 1 && target_n >= measured_n && power >= 2);
  double ratio = static_cast<double>(target_n) / measured_n;
  return measured_seconds * ratio * ratio * ratio * (power - 1);
}

}  // namespace dstress::baseline
