#include "src/engine/run_spec.h"

#include <cstdio>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace dstress::engine {

const char* ExecutionModeName(ExecutionMode mode) {
  switch (mode) {
    case ExecutionMode::kSecure:
      return "secure";
    case ExecutionMode::kCleartextFast:
      return "cleartext";
  }
  DSTRESS_CHECK(false);
  return "?";
}

std::optional<ExecutionMode> ExecutionModeFromName(const std::string& name) {
  if (name == "secure") {
    return ExecutionMode::kSecure;
  }
  if (name == "cleartext") {
    return ExecutionMode::kCleartextFast;
  }
  return std::nullopt;
}

TopologySpec CorePeripheryTopology(int num_vertices, int core_size) {
  TopologySpec topology;
  topology.kind = TopologySpec::Kind::kCorePeriphery;
  topology.num_vertices = num_vertices;
  topology.core_size = core_size;
  return topology;
}

TopologySpec ScaleFreeTopology(int num_vertices, int links_per_vertex) {
  TopologySpec topology;
  topology.kind = TopologySpec::Kind::kScaleFree;
  topology.num_vertices = num_vertices;
  topology.links_per_vertex = links_per_vertex;
  return topology;
}

TopologySpec ErdosRenyiTopology(int num_vertices, double edge_probability) {
  TopologySpec topology;
  topology.kind = TopologySpec::Kind::kErdosRenyi;
  topology.num_vertices = num_vertices;
  topology.edge_probability = edge_probability;
  return topology;
}

TopologySpec ExplicitTopology(int num_vertices, std::vector<std::pair<int, int>> edges) {
  TopologySpec topology;
  topology.kind = TopologySpec::Kind::kExplicit;
  topology.num_vertices = num_vertices;
  topology.edges = std::move(edges);
  return topology;
}

namespace {

graph::Graph BuildUncapped(const TopologySpec& topology, Rng& rng) {
  switch (topology.kind) {
    case TopologySpec::Kind::kCorePeriphery: {
      graph::CorePeripheryParams params;
      params.num_vertices = topology.num_vertices;
      params.core_size = topology.core_size;
      params.core_density = topology.core_density;
      params.max_core_links = topology.max_core_links;
      return graph::GenerateCorePeriphery(params, rng);
    }
    case TopologySpec::Kind::kScaleFree:
      return graph::GenerateScaleFree(topology.num_vertices, topology.links_per_vertex, rng);
    case TopologySpec::Kind::kErdosRenyi:
      return graph::GenerateErdosRenyi(topology.num_vertices, topology.edge_probability, rng);
    case TopologySpec::Kind::kExplicit: {
      graph::Graph g(topology.num_vertices);
      for (auto [u, v] : topology.edges) {
        g.AddEdge(u, v);
      }
      return g;
    }
  }
  DSTRESS_CHECK(false);
}

}  // namespace

graph::Graph BuildTopologyGraph(const TopologySpec& topology, uint64_t seed) {
  Rng rng(seed);
  graph::Graph g = BuildUncapped(topology, rng);
  if (topology.degree_cap > 0) {
    g = graph::CapDegree(g, topology.degree_cap);
  }
  return g;
}

int AutoIterations(int num_vertices) {
  int i = 1;
  while ((1 << i) < num_vertices) {
    i++;
  }
  return i;
}

finance::WorkloadParams DeriveWorkloadParams(const RunSpec& spec) {
  if (spec.workload.has_value()) {
    return *spec.workload;
  }
  finance::WorkloadParams workload;
  workload.format = spec.format;
  workload.seed = spec.seed;
  if (!spec.graph.has_value() && spec.topology.kind == TopologySpec::Kind::kCorePeriphery) {
    workload.core_size = spec.topology.core_size;
  } else {
    workload.core_size = 0;
  }
  return workload;
}

std::string RunReport::ToString() const {
  char buf[640];
  std::snprintf(buf, sizeof(buf), "mode=%s released=%lld%s %s", ExecutionModeName(mode),
                static_cast<long long>(released),
                has_reference ? (" ref=" + std::to_string(reference)).c_str() : "",
                metrics.ToString().c_str());
  return buf;
}

std::string FormatReport(const RunSpec& spec, const RunReport& report) {
  int num_vertices =
      spec.graph.has_value() ? spec.graph->num_vertices() : spec.topology.num_vertices;
  // For tcp: whether the banks were spawned locally or dialed in from
  // outside (the multi-machine deployment), and where the rendezvous was.
  std::string transport = spec.transport.backend;
  if (spec.transport.backend == "tcp" && spec.transport.external_nodes) {
    transport += " (external nodes, rendezvous " + spec.transport.host + ":" +
                 std::to_string(spec.transport.port) + ")";
  }
  // Circuit stats, so reported speedups are attributable: AND gates and
  // AND-depth fix the MPC work and round count per computation step;
  // triples are the consumed offline material (0 in cleartext mode).
  char circuit_line[192];
  std::snprintf(circuit_line, sizeof(circuit_line),
                "update circuit:      %zu AND gates, depth %zu (= GMW rounds/step), "
                "%llu triples consumed\n",
                report.metrics.update_and_gates, report.metrics.update_and_depth,
                static_cast<unsigned long long>(report.metrics.triples_consumed));
  // Plane knobs in effect; OT-triple runs also name the offline-phase mode
  // (docs/offline-phase.md) so reported walls are attributable. Dealer-run
  // output is unchanged.
  std::string planes = std::string("mpc_batching=") + (spec.mpc_batching ? "on" : "off") +
                       ", transfer_batching=" + (spec.transfer_batching ? "on" : "off");
  if (spec.use_ot_triples) {
    planes += std::string(", triples=ot, ot_batching=") + (spec.ot_batching ? "on" : "off");
  }
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "model:               %s\n"
      "mode:                %s\n"
      "transport:           %s (%s)\n"
      "banks:               %d (block size %d, %d iterations)\n"
      "shocked banks:       %zu\n"
      "%s"
      "released TDS:        %lld money units (eps=%.3f, leverage r=%.2f)\n"
      "reference TDS:       %llu money units (cleartext check, not released)\n"
      "wall time:           %.2f s\n"
      "traffic per bank:    %.2f MB\n",
      report.model_name.c_str(), ExecutionModeName(report.mode), transport.c_str(),
      planes.c_str(), num_vertices, spec.block_size,
      report.iterations, spec.shock.shocked_banks.size(), circuit_line,
      static_cast<long long>(report.released), spec.epsilon, spec.leverage,
      static_cast<unsigned long long>(report.reference), report.metrics.total_seconds,
      report.metrics.avg_bytes_per_node / 1e6);
  std::string out = buf;
  // HA overhead line, only when the fault-tolerance layer was on (docs/
  // ha.md) — HA control traffic is metered apart from the payload figures
  // above, which stay bit-identical to a fault-free run.
  if (spec.transport.ha.enabled || report.metrics.resumed_from_iteration >= 0) {
    char ha_line[192];
    std::snprintf(ha_line, sizeof(ha_line),
                  "ha overhead:         %.2f MB control traffic, %d session resume(s), "
                  "%.2f s checkpointing\n",
                  report.metrics.ha_control_bytes / 1e6, report.metrics.ha_resumes,
                  report.metrics.ha_checkpoint_seconds);
    out += ha_line;
    if (report.metrics.resumed_from_iteration >= 0) {
      out += "resumed:             from iteration " +
             std::to_string(report.metrics.resumed_from_iteration) + "\n";
    }
  }
  return out;
}

}  // namespace dstress::engine
