// ExecutionBackend — the seam between the declarative engine API and the
// machinery that actually runs a stress test.
//
// The engine compiles a RunSpec down to (graph, vertex program, runtime
// config, initial states) and hands the first three to a backend factory
// looked up by ExecutionMode in a process-wide registry. Two backends are
// built in:
//
//   kSecure        — secure_backend.h: wraps core::Runtime, i.e. the full
//                    GMW + OT + §3.5-transfer protocol stack.
//   kCleartextFast — cleartext_backend.h: same circuits, same transport and
//                    scheduler layers, no cryptography.
//
// RegisterExecutionMode lets deployments override a mode's factory (e.g. a
// test double) without any caller changing: every entry point goes through
// engine::Engine, and the engine goes through this registry. The wire a
// mode runs over is chosen separately by RunSpec::transport through the
// parallel transport registry (src/net/transport_spec.h) — both built-in
// backends resolve their transport from the spec, never by type name.
#ifndef SRC_ENGINE_BACKEND_H_
#define SRC_ENGINE_BACKEND_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/core/runtime.h"
#include "src/engine/run_spec.h"
#include "src/net/transport.h"

namespace dstress::engine {

// Everything a backend may depend on. The pointed-to objects are owned by
// the Engine and outlive the backend.
struct BackendContext {
  const RunSpec* spec = nullptr;
  const graph::Graph* graph = nullptr;
  const core::VertexProgram* program = nullptr;
  // Schedule knobs, already derived from the spec (block size, fanout,
  // triple source, seed, transfer parameters).
  core::RuntimeConfig runtime_config;
};

class ExecutionBackend {
 public:
  virtual ~ExecutionBackend() = default;

  virtual const char* name() const = 0;

  // Runs the program once on `initial_states` (one state per vertex) and
  // returns the released aggregate. Reusable: each call is an independent
  // run. `metrics` may be nullptr.
  virtual int64_t Execute(const std::vector<mpc::BitVector>& initial_states,
                          core::RunMetrics* metrics) = 0;

  // Ensemble plane: one run per element of `per_scenario_states` (scenario
  // s's state for vertex v at per_scenario_states[s][v]), returning one
  // released aggregate per scenario. The built-in backends pack scenarios
  // into the lanes of the batched data planes so the whole ensemble costs
  // one lockstep pass; the default implementation is the semantic fallback
  // (independent Execute per scenario) so registered override backends keep
  // working. Scenario s's figure must equal a solo Execute of its states.
  virtual std::vector<int64_t> ExecuteEnsemble(
      const std::vector<std::vector<mpc::BitVector>>& per_scenario_states,
      core::RunMetrics* metrics);

  // Final per-vertex states of the last solo Execute, for differential
  // testing (tests/graphplane_test.cc compares the arena and container
  // cleartext planes state-for-state). Optional: backends without a
  // cleartext state image return empty, and the result is unspecified
  // before the first Execute or after ExecuteEnsemble.
  virtual std::vector<mpc::BitVector> DebugFinalStates() const { return {}; }

  // Attaches a transport observer (audit layer); must happen before the
  // first Execute, see net::Transport::SetObserver.
  virtual void AttachObserver(net::NetworkObserver* observer) = 0;

  // The transport the run's traffic crosses (for traffic accounting).
  virtual const net::Transport& transport() const = 0;
};

using ExecutionBackendFactory =
    std::function<std::unique_ptr<ExecutionBackend>(const BackendContext& context)>;

// Replaces the factory for `mode` process-wide. Thread-safe.
void RegisterExecutionMode(ExecutionMode mode, ExecutionBackendFactory factory);

// Restores the built-in factory for `mode`.
void ResetExecutionMode(ExecutionMode mode);

// Instantiates the backend currently registered for `mode`.
std::unique_ptr<ExecutionBackend> MakeExecutionBackend(ExecutionMode mode,
                                                       const BackendContext& context);

}  // namespace dstress::engine

#endif  // SRC_ENGINE_BACKEND_H_
