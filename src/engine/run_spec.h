// engine::RunSpec — the declarative description of one DStress stress test,
// and the only input the public execution API (engine.h) takes.
//
// A spec names *what* to run — the network (a topology spec or a prebuilt
// graph), the contagion model (Eisenberg–Noe, Elliott–Golub–Jackson, or a
// custom vertex program), the privacy parameters, and the shock set — plus
// the schedule knobs (iterations, block size, aggregation fan-out, triple
// source) and the ExecutionMode that selects *how* it runs:
//
//   kSecure        — the full protocol stack: GMW updates over secret
//                    shares, OT-extension triples, §3.5 encrypted edge
//                    transfers, in-MPC noising. Traffic and results are
//                    bit-identical to driving core::Runtime directly.
//   kCleartextFast — skips the cryptography but keeps the vertex-program
//                    semantics (the same boolean circuits, evaluated in
//                    cleartext), the message shapes, and the transport +
//                    scheduler layers. Used for scenario sweeps at N in the
//                    tens of thousands, where the secure mode's MPC cost is
//                    prohibitive.
//
// Callers build a RunSpec, hand it to engine::Engine, and get an
// engine::RunReport back; no caller assembles SimNetwork / TrustedSetup /
// RuntimeConfig / vertex-program wiring by hand anymore.
#ifndef SRC_ENGINE_RUN_SPEC_H_
#define SRC_ENGINE_RUN_SPEC_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/core/runtime.h"
#include "src/core/vertex_program.h"
#include "src/ensemble/spec.h"
#include "src/finance/fixed_point.h"
#include "src/finance/workload.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "src/mpc/sharing.h"
#include "src/net/transport_spec.h"

namespace dstress::engine {

// Execution backends. The registry (backend.h) maps each mode to a factory;
// new modes plug in there without touching any RunSpec caller. (The wire a
// run crosses is orthogonal: RunSpec::transport.)
enum class ExecutionMode {
  kSecure,
  kCleartextFast,
};

// Stable names used by the scenario-file `mode` directive and reports.
const char* ExecutionModeName(ExecutionMode mode);
std::optional<ExecutionMode> ExecutionModeFromName(const std::string& name);

enum class ContagionModel {
  kEisenbergNoe,
  kElliottGolubJackson,
  // Caller-supplied vertex program (RunSpec::custom_program / custom_states).
  kCustom,
};

// Synthetic-network description, materialized deterministically from the
// run seed. Ignored when RunSpec::graph holds a prebuilt network.
struct TopologySpec {
  enum class Kind {
    kCorePeriphery,
    kScaleFree,
    kErdosRenyi,
    kExplicit,
  };
  Kind kind = Kind::kCorePeriphery;

  // Shared by every kind.
  int num_vertices = 0;

  // kind == kCorePeriphery (defaults mirror graph::CorePeripheryParams).
  int core_size = 10;
  double core_density = 0.9;
  int max_core_links = 2;

  int links_per_vertex = 2;       // scale_free
  double edge_probability = 0.1;  // erdos_renyi
  std::vector<std::pair<int, int>> edges;  // explicit (directed)

  // If > 0, the generated graph is degree-capped (graph::CapDegree) so a
  // public degree bound D < MaxDegree can be enforced.
  int degree_cap = 0;
};

TopologySpec CorePeripheryTopology(int num_vertices, int core_size);
TopologySpec ScaleFreeTopology(int num_vertices, int links_per_vertex);
TopologySpec ErdosRenyiTopology(int num_vertices, double edge_probability);
TopologySpec ExplicitTopology(int num_vertices, std::vector<std::pair<int, int>> edges);

// Materializes a topology spec (deterministic in `seed`).
graph::Graph BuildTopologyGraph(const TopologySpec& topology, uint64_t seed);

// Appendix C iteration rule: I = ceil(log2 N) suffices on two-tier
// networks. Used whenever RunSpec::iterations is 0.
int AutoIterations(int num_vertices);

struct RunSpec;

// The workload parameters a spec implies: spec.workload when set, otherwise
// defaults derived from format/seed/topology. Public so the ensemble layer
// can materialize per-scenario workloads consistent with solo runs.
finance::WorkloadParams DeriveWorkloadParams(const RunSpec& spec);

struct RunSpec {
  // --- the network -------------------------------------------------------
  // A prebuilt graph wins over the topology spec.
  std::optional<graph::Graph> graph;
  TopologySpec topology;

  // --- the computation ---------------------------------------------------
  ContagionModel model = ContagionModel::kEisenbergNoe;

  // Finance-model knobs (kEisenbergNoe / kElliottGolubJackson).
  finance::FixedPointFormat format;
  int aggregate_bits = 32;
  // §4.5 output privacy: the geometric-noise alpha is derived from
  // epsilon and the leverage-bound sensitivity (1/r for EN, 2/r for EGJ)
  // unless noise_alpha > 0 overrides it directly.
  double epsilon = 0.23;
  double leverage = 0.1;
  double noise_alpha = 0;
  // Balance sheets: when unset, the engine derives defaults from the spec
  // (format, seed, core size of a core-periphery topology).
  std::optional<finance::WorkloadParams> workload;
  finance::ShockParams shock;

  // Scenario ensemble (src/ensemble): when set, Engine::RunEnsemble packs
  // one scenario per lane of the batched planes and returns an
  // ensemble::EnsembleReport instead of a single figure. The base spec's
  // shock is the template the generator varies. EN/EGJ models only.
  std::optional<ensemble::EnsembleSpec> ensemble;

  // Custom vertex program (model == kCustom): the program is used as given
  // (its own iterations/noise), custom_states holds one initial state per
  // vertex.
  core::VertexProgram custom_program;
  std::vector<mpc::BitVector> custom_states;

  // Public degree bound D; 0 = the materialized graph's max degree.
  int degree_bound = 0;

  // --- schedule knobs ----------------------------------------------------
  int iterations = 0;  // 0 = AutoIterations(N)
  int block_size = 4;  // k+1
  int aggregation_fanout = 0;  // 0 = single aggregation block
  bool use_ot_triples = false;
  // Batched offline phase (core::RuntimeConfig::ot_batching): with OT
  // triples, run the node-pair triple factory — one IKNP session pair per
  // node pair, bulk extends per phase, offline generation pipelined ahead
  // of the online phase. Released figures and the online phase's per-node
  // TrafficStats are bit-identical either way; false keeps the seed
  // per-role OtTripleSource path for A/B benchmarking. No effect on dealer
  // runs.
  bool ot_batching = true;
  // Batched MPC data plane (core::RuntimeConfig::batch_mpc): each node
  // evaluates all its block roles per step in one lockstep bitsliced batch.
  // Results and per-node TrafficStats are bit-identical either way; false
  // keeps the seed one-role-per-task schedule for A/B benchmarking.
  bool mpc_batching = true;
  // Batched transfer plane (core::RuntimeConfig::batch_transfer): per-edge
  // role work runs as batched tasks against fixed-base key tables. Wire
  // bytes, released figures, and per-node TrafficStats are bit-identical
  // either way; false keeps the seed per-role schedule for A/B benchmarking.
  bool transfer_batching = true;
  // Flat-arena cleartext graph plane (src/graphplane, docs/graph-plane.md):
  // contiguous bitsliced state/message arenas plus an active-vertex
  // frontier. Released figures, per-vertex states and per-node TrafficStats
  // are bit-identical either way (pinned by tests/graphplane_test.cc);
  // false keeps the container-based plane for A/B until the differential
  // harness retires it.
  bool cleartext_arena = true;
  // Opt-in early exit for the arena plane: stop iterating once every
  // vertex lane has converged (the remaining iterations are provably
  // figure-identical no-ops). Off by default because it changes the
  // traffic shape — fewer communicate rounds are metered.
  bool cleartext_early_exit = false;
  // Secure-mode scheduling A/B (core::RuntimeConfig::batch_mpc_per_node):
  // run the batched compute phase as one lockstep task per node instead of
  // one whole-phase lockstep call, exercising multi-thread scheduling with
  // dealer triples. Results and traffic are bit-identical; benchmarked in
  // bench_fig6_scalability.
  bool mpc_per_node_schedule = false;
  int max_parallel_tasks = 0;  // 0 = auto
  size_t channel_high_watermark_bytes = 0;  // 0 = unbounded
  double transfer_budget_alpha = 0.9;
  int64_t dlog_range = 0;  // 0 = auto-size
  uint64_t seed = 1;
  // HA checkpointing (core::RuntimeConfig, docs/ha.md): snapshot phase
  // state to ha_checkpoint_path every `ha_checkpoint_every` iterations;
  // ha_resume restarts a run from that snapshot (dstress_run --resume).
  int ha_checkpoint_every = 0;
  std::string ha_checkpoint_path;
  bool ha_resume = false;

  // --- execution backend -------------------------------------------------
  ExecutionMode mode = ExecutionMode::kSecure;
  // Which wire the run crosses, resolved through the transport registry
  // (net/transport_spec.h): "sim" (in-process, default) or "tcp" (one
  // process per bank). Orthogonal to `mode`: the same mode runs over any
  // transport with identical results and per-node traffic stats.
  net::TransportSpec transport;
};

// Everything a run produces: the released (noised) figure, the cleartext
// fixed-point reference when the model has one, and the execution metrics.
struct RunReport {
  int64_t released = 0;
  // Cleartext fixed-point reference result (EN/EGJ only). Never released in
  // a real deployment — computing it needs all the books.
  bool has_reference = false;
  uint64_t reference = 0;

  core::RunMetrics metrics;
  int iterations = 0;
  std::string model_name;
  ExecutionMode mode = ExecutionMode::kSecure;

  // One-line summary (wraps RunMetrics::ToString with the released figure).
  std::string ToString() const;
};

// Multi-line human-readable report (the regulator-facing output of
// examples/dstress_run).
std::string FormatReport(const RunSpec& spec, const RunReport& report);

}  // namespace dstress::engine

#endif  // SRC_ENGINE_RUN_SPEC_H_
