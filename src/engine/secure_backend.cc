#include "src/engine/secure_backend.h"

namespace dstress::engine {

namespace {

class SecureBackend : public ExecutionBackend {
 public:
  explicit SecureBackend(const BackendContext& context)
      : runtime_(context.runtime_config, *context.graph, *context.program) {}

  const char* name() const override { return ExecutionModeName(ExecutionMode::kSecure); }

  int64_t Execute(const std::vector<mpc::BitVector>& initial_states,
                  core::RunMetrics* metrics) override {
    return runtime_.Run(initial_states, metrics);
  }

  std::vector<int64_t> ExecuteEnsemble(
      const std::vector<std::vector<mpc::BitVector>>& per_scenario_states,
      core::RunMetrics* metrics) override {
    return runtime_.RunEnsemble(per_scenario_states, metrics);
  }

  void AttachObserver(net::NetworkObserver* observer) override {
    runtime_.AttachObserver(observer);
  }

  const net::Transport& transport() const override { return runtime_.network(); }

 private:
  core::Runtime runtime_;
};

}  // namespace

std::unique_ptr<ExecutionBackend> MakeSecureBackend(const BackendContext& context) {
  return std::make_unique<SecureBackend>(context);
}

}  // namespace dstress::engine
