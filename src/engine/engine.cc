#include "src/engine/engine.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/engine/backend.h"
#include "src/finance/eisenberg_noe.h"
#include "src/finance/elliott_golub_jackson.h"
#include "src/finance/utility.h"

namespace dstress::engine {

namespace {

core::RuntimeConfig DeriveRuntimeConfig(const RunSpec& spec) {
  core::RuntimeConfig config;
  config.block_size = spec.block_size;
  config.transfer_budget_alpha = spec.transfer_budget_alpha;
  config.dlog_range = spec.dlog_range;
  config.use_ot_triples = spec.use_ot_triples;
  config.aggregation_fanout = spec.aggregation_fanout;
  config.max_parallel_tasks = spec.max_parallel_tasks;
  config.channel_high_watermark_bytes = spec.channel_high_watermark_bytes;
  config.transport = spec.transport;
  config.batch_mpc = spec.mpc_batching;
  config.batch_transfer = spec.transfer_batching;
  config.seed = spec.seed;
  return config;
}

finance::WorkloadParams DeriveWorkload(const RunSpec& spec) {
  if (spec.workload.has_value()) {
    return *spec.workload;
  }
  finance::WorkloadParams workload;
  workload.format = spec.format;
  workload.seed = spec.seed;
  if (!spec.graph.has_value() && spec.topology.kind == TopologySpec::Kind::kCorePeriphery) {
    workload.core_size = spec.topology.core_size;
  } else {
    workload.core_size = 0;
  }
  return workload;
}

double DeriveNoiseAlpha(const RunSpec& spec) {
  if (spec.noise_alpha > 0) {
    return spec.noise_alpha;
  }
  double sensitivity = spec.model == ContagionModel::kEisenbergNoe
                           ? finance::EnSensitivity(spec.leverage)
                           : finance::EgjSensitivity(spec.leverage);
  return finance::NoiseAlphaForRelease(sensitivity, spec.epsilon, /*unit_dollars=*/1.0);
}

}  // namespace

Engine::Engine(RunSpec spec) : spec_(std::move(spec)) {
  if (spec_.graph.has_value()) {
    graph_ = &*spec_.graph;
  } else {
    built_graph_.emplace(BuildTopologyGraph(spec_.topology, spec_.seed));
    graph_ = &*built_graph_;
  }
  const int n = graph_->num_vertices();
  DSTRESS_CHECK(n > 0);
  const int degree_bound =
      spec_.degree_bound > 0 ? spec_.degree_bound : std::max(1, graph_->MaxDegree());

  switch (spec_.model) {
    case ContagionModel::kEisenbergNoe: {
      model_name_ = "Eisenberg-Noe";
      iterations_ = spec_.iterations > 0 ? spec_.iterations : AutoIterations(n);
      finance::EnProgramParams params;
      params.format = spec_.format;
      params.degree_bound = degree_bound;
      params.iterations = iterations_;
      params.aggregate_bits = spec_.aggregate_bits;
      params.noise_alpha = DeriveNoiseAlpha(spec_);
      finance::EnInstance instance =
          finance::MakeEnWorkload(*graph_, DeriveWorkload(spec_), spec_.shock);
      program_ = finance::MakeEnProgram(params);
      initial_states_ = finance::MakeEnInitialStates(instance, params);
      reference_ = finance::EnSolveFixed(instance, params);
      has_reference_ = true;
      break;
    }
    case ContagionModel::kElliottGolubJackson: {
      model_name_ = "Elliott-Golub-Jackson";
      iterations_ = spec_.iterations > 0 ? spec_.iterations : AutoIterations(n);
      finance::EgjProgramParams params;
      params.format = spec_.format;
      params.degree_bound = degree_bound;
      params.iterations = iterations_;
      params.aggregate_bits = spec_.aggregate_bits;
      params.noise_alpha = DeriveNoiseAlpha(spec_);
      finance::EgjInstance instance =
          finance::MakeEgjWorkload(*graph_, DeriveWorkload(spec_), spec_.shock);
      program_ = finance::MakeEgjProgram(params);
      initial_states_ = finance::MakeEgjInitialStates(instance, params);
      reference_ = finance::EgjSolveFixed(instance, params);
      has_reference_ = true;
      break;
    }
    case ContagionModel::kCustom: {
      model_name_ = "custom";
      DSTRESS_CHECK(spec_.custom_program.build_update != nullptr);
      DSTRESS_CHECK(spec_.custom_program.build_contribution != nullptr);
      program_ = spec_.custom_program;
      if (spec_.iterations > 0) {
        program_.iterations = spec_.iterations;
      }
      iterations_ = program_.iterations;
      DSTRESS_CHECK(static_cast<int>(spec_.custom_states.size()) == n);
      initial_states_ = spec_.custom_states;
      break;
    }
  }

  BackendContext context;
  context.spec = &spec_;
  context.graph = graph_;
  context.program = &program_;
  context.runtime_config = DeriveRuntimeConfig(spec_);
  backend_ = MakeExecutionBackend(spec_.mode, context);
}

Engine::~Engine() = default;

RunReport Engine::Run() {
  RunReport report;
  report.iterations = iterations_;
  report.model_name = model_name_;
  report.mode = spec_.mode;
  report.has_reference = has_reference_;
  report.reference = reference_;
  report.released = backend_->Execute(initial_states_, &report.metrics);
  return report;
}

void Engine::AttachObserver(net::NetworkObserver* observer) {
  backend_->AttachObserver(observer);
}

const net::Transport& Engine::transport() const { return backend_->transport(); }

}  // namespace dstress::engine
