#include "src/engine/engine.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "src/common/check.h"
#include "src/dp/release.h"
#include "src/engine/backend.h"
#include "src/ha/faulty.h"
#include "src/finance/eisenberg_noe.h"
#include "src/finance/elliott_golub_jackson.h"
#include "src/finance/utility.h"

namespace dstress::engine {

namespace {

core::RuntimeConfig DeriveRuntimeConfig(const RunSpec& spec) {
  core::RuntimeConfig config;
  config.block_size = spec.block_size;
  config.transfer_budget_alpha = spec.transfer_budget_alpha;
  config.dlog_range = spec.dlog_range;
  config.use_ot_triples = spec.use_ot_triples;
  config.ot_batching = spec.ot_batching;
  config.aggregation_fanout = spec.aggregation_fanout;
  config.max_parallel_tasks = spec.max_parallel_tasks;
  config.channel_high_watermark_bytes = spec.channel_high_watermark_bytes;
  config.transport = spec.transport;
  config.batch_mpc = spec.mpc_batching;
  config.batch_mpc_per_node = spec.mpc_per_node_schedule;
  config.batch_transfer = spec.transfer_batching;
  config.seed = spec.seed;
  config.checkpoint_every = spec.ha_checkpoint_every;
  config.checkpoint_path = spec.ha_checkpoint_path;
  config.resume = spec.ha_resume;
  if (spec.ensemble.has_value()) {
    config.ensemble_width = std::max(1, spec.ensemble->Width());
  }
  return config;
}

double DeriveNoiseAlpha(const RunSpec& spec) {
  if (spec.noise_alpha > 0) {
    return spec.noise_alpha;
  }
  double sensitivity = spec.model == ContagionModel::kEisenbergNoe
                           ? finance::EnSensitivity(spec.leverage)
                           : finance::EgjSensitivity(spec.leverage);
  return finance::NoiseAlphaForRelease(sensitivity, spec.epsilon, /*unit_dollars=*/1.0);
}

}  // namespace

Engine::Engine(RunSpec spec) : spec_(std::move(spec)) {
  // Make the "faulty" fault-injection backend resolvable by name before any
  // transport spec is materialized (the registry is the only way scenarios
  // reach it; explicit because static-lib self-registration gets dropped).
  ha::RegisterHaTransports();
  if (spec_.graph.has_value()) {
    graph_ = &*spec_.graph;
  } else {
    built_graph_.emplace(BuildTopologyGraph(spec_.topology, spec_.seed));
    graph_ = &*built_graph_;
  }
  const int n = graph_->num_vertices();
  DSTRESS_CHECK(n > 0);
  const int degree_bound =
      spec_.degree_bound > 0 ? spec_.degree_bound : std::max(1, graph_->MaxDegree());

  switch (spec_.model) {
    case ContagionModel::kEisenbergNoe: {
      model_name_ = "Eisenberg-Noe";
      iterations_ = spec_.iterations > 0 ? spec_.iterations : AutoIterations(n);
      finance::EnProgramParams params;
      params.format = spec_.format;
      params.degree_bound = degree_bound;
      params.iterations = iterations_;
      params.aggregate_bits = spec_.aggregate_bits;
      params.noise_alpha = DeriveNoiseAlpha(spec_);
      finance::EnInstance instance =
          finance::MakeEnWorkload(*graph_, DeriveWorkloadParams(spec_), spec_.shock);
      program_ = finance::MakeEnProgram(params);
      initial_states_ = finance::MakeEnInitialStates(instance, params);
      reference_ = finance::EnSolveFixed(instance, params);
      has_reference_ = true;
      break;
    }
    case ContagionModel::kElliottGolubJackson: {
      model_name_ = "Elliott-Golub-Jackson";
      iterations_ = spec_.iterations > 0 ? spec_.iterations : AutoIterations(n);
      finance::EgjProgramParams params;
      params.format = spec_.format;
      params.degree_bound = degree_bound;
      params.iterations = iterations_;
      params.aggregate_bits = spec_.aggregate_bits;
      params.noise_alpha = DeriveNoiseAlpha(spec_);
      finance::EgjInstance instance =
          finance::MakeEgjWorkload(*graph_, DeriveWorkloadParams(spec_), spec_.shock);
      program_ = finance::MakeEgjProgram(params);
      initial_states_ = finance::MakeEgjInitialStates(instance, params);
      reference_ = finance::EgjSolveFixed(instance, params);
      has_reference_ = true;
      break;
    }
    case ContagionModel::kCustom: {
      model_name_ = "custom";
      DSTRESS_CHECK(spec_.custom_program.build_update != nullptr);
      DSTRESS_CHECK(spec_.custom_program.build_contribution != nullptr);
      program_ = spec_.custom_program;
      if (spec_.iterations > 0) {
        program_.iterations = spec_.iterations;
      }
      iterations_ = program_.iterations;
      DSTRESS_CHECK(static_cast<int>(spec_.custom_states.size()) == n);
      initial_states_ = spec_.custom_states;
      break;
    }
  }

  if (spec_.ensemble.has_value()) {
    // An ensemble varies shocks and balance sheets; a custom program has
    // neither channel to vary.
    DSTRESS_CHECK(spec_.model != ContagionModel::kCustom);
    CompileEnsemble(degree_bound);
  }

  BackendContext context;
  context.spec = &spec_;
  context.graph = graph_;
  context.program = &program_;
  context.runtime_config = DeriveRuntimeConfig(spec_);
  backend_ = MakeExecutionBackend(spec_.mode, context);
}

void Engine::CompileEnsemble(int degree_bound) {
  const ensemble::EnsembleSpec& es = *spec_.ensemble;
  scenarios_ = ensemble::MaterializeScenarios(es, spec_.shock, graph_->num_vertices());
  DSTRESS_CHECK(!scenarios_.empty());
  const finance::WorkloadParams base_workload = DeriveWorkloadParams(spec_);
  ensemble_states_.reserve(scenarios_.size());
  ensemble_refs_.reserve(scenarios_.size());
  ensemble_defaults_.reserve(scenarios_.size());
  const int n = graph_->num_vertices();
  if (spec_.model == ContagionModel::kEisenbergNoe) {
    finance::EnProgramParams params;
    params.format = spec_.format;
    params.degree_bound = degree_bound;
    params.iterations = iterations_;
    params.aggregate_bits = spec_.aggregate_bits;
    params.noise_alpha = DeriveNoiseAlpha(spec_);
    // One base workload per distinct seed; per-scenario shocks stamp onto a
    // copy (all RNG draws precede the shock, so this equals regenerating).
    const finance::EnInstance base =
        finance::MakeEnWorkload(*graph_, base_workload, finance::ShockParams{});
    for (const ensemble::Scenario& sc : scenarios_) {
      finance::EnInstance instance;
      if (sc.workload_seed.has_value()) {
        finance::WorkloadParams workload = base_workload;
        workload.seed = *sc.workload_seed;
        instance = finance::MakeEnWorkload(*graph_, workload, sc.shock);
      } else {
        instance = base;
        finance::ApplyEnShock(instance, sc.shock);
      }
      ensemble_states_.push_back(finance::MakeEnInitialStates(instance, params));
      std::vector<uint64_t> prorate;
      ensemble_refs_.push_back(finance::EnSolveFixed(instance, params, &prorate));
      std::vector<uint8_t> defaults(n);
      for (int v = 0; v < n; v++) {
        defaults[v] = prorate[v] < spec_.format.One() ? 1 : 0;
      }
      ensemble_defaults_.push_back(std::move(defaults));
    }
  } else {
    finance::EgjProgramParams params;
    params.format = spec_.format;
    params.degree_bound = degree_bound;
    params.iterations = iterations_;
    params.aggregate_bits = spec_.aggregate_bits;
    params.noise_alpha = DeriveNoiseAlpha(spec_);
    const finance::EgjInstance base =
        finance::MakeEgjWorkload(*graph_, base_workload, finance::ShockParams{});
    for (const ensemble::Scenario& sc : scenarios_) {
      finance::EgjInstance instance;
      if (sc.workload_seed.has_value()) {
        finance::WorkloadParams workload = base_workload;
        workload.seed = *sc.workload_seed;
        instance = finance::MakeEgjWorkload(*graph_, workload, sc.shock);
      } else {
        instance = base;
        finance::ApplyEgjShock(instance, sc.shock);
      }
      ensemble_states_.push_back(finance::MakeEgjInitialStates(instance, params));
      std::vector<uint64_t> values;
      ensemble_refs_.push_back(finance::EgjSolveFixed(instance, params, &values));
      std::vector<uint8_t> defaults(n);
      for (int v = 0; v < n; v++) {
        defaults[v] = values[v] < instance.threshold[v] ? 1 : 0;
      }
      ensemble_defaults_.push_back(std::move(defaults));
    }
  }
}

Engine::~Engine() = default;

RunReport Engine::Run() {
  RunReport report;
  report.iterations = iterations_;
  report.model_name = model_name_;
  report.mode = spec_.mode;
  report.has_reference = has_reference_;
  report.reference = reference_;
  report.released = backend_->Execute(initial_states_, &report.metrics);
  return report;
}

ensemble::EnsembleReport Engine::RunEnsemble() {
  DSTRESS_CHECK(spec_.ensemble.has_value());
  const ensemble::EnsembleSpec& es = *spec_.ensemble;
  const int k = static_cast<int>(scenarios_.size());
  if (es.epsilon_budget > 0) {
    // Ensemble-aware accounting: every lane is a release at spec epsilon,
    // so the whole ensemble must fit the cap before anything is computed —
    // a data-dependent partial refusal would itself leak (dp/release.h).
    dp::ReleaseManager manager(es.epsilon_budget, spec_.seed);
    std::string error;
    if (!manager.ChargeEnsemble(model_name_, k, spec_.epsilon, &error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      std::abort();
    }
  }
  ensemble::EnsembleReport report;
  report.iterations = iterations_;
  report.model_name = model_name_;
  report.mode = spec_.mode;
  report.epsilon_each = spec_.epsilon;
  report.epsilon_total = static_cast<double>(k) * spec_.epsilon;
  report.epsilon_budget = es.epsilon_budget;
  std::vector<int64_t> released = backend_->ExecuteEnsemble(ensemble_states_, &report.metrics);
  DSTRESS_CHECK(released.size() == scenarios_.size());
  report.scenarios.reserve(scenarios_.size());
  for (size_t s = 0; s < scenarios_.size(); s++) {
    ensemble::ScenarioResult result;
    result.label = scenarios_[s].label;
    result.released = released[s];
    result.has_reference = true;
    result.reference = ensemble_refs_[s];
    report.scenarios.push_back(std::move(result));
  }
  ensemble::ReduceEnsemble(ensemble_defaults_, &report);
  return report;
}

void Engine::AttachObserver(net::NetworkObserver* observer) {
  backend_->AttachObserver(observer);
}

std::vector<mpc::BitVector> Engine::FinalStates() const { return backend_->DebugFinalStates(); }

const net::Transport& Engine::transport() const { return backend_->transport(); }

}  // namespace dstress::engine
