// The kSecure execution backend: the full DStress protocol stack.
//
// A thin adapter over core::Runtime — GMW circuit evaluation over secret
// shares, Beaver triples (dealer or IKNP OT extension), §3.5 encrypted edge
// transfers, and in-MPC output noising, scheduled on the persistent worker
// pool. Behavior and per-node traffic are bit-identical to constructing
// core::Runtime directly with the same config, graph, program and seed
// (asserted by engine_test.cc).
#ifndef SRC_ENGINE_SECURE_BACKEND_H_
#define SRC_ENGINE_SECURE_BACKEND_H_

#include <memory>

#include "src/engine/backend.h"

namespace dstress::engine {

std::unique_ptr<ExecutionBackend> MakeSecureBackend(const BackendContext& context);

}  // namespace dstress::engine

#endif  // SRC_ENGINE_SECURE_BACKEND_H_
