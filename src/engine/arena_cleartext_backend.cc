// Arena-based kCleartextFast backend: the flat graph plane (src/graphplane)
// composed with the legacy backend's circuits, noise and aggregation
// schedule. Selected by RunSpec::cleartext_arena (default); the container-
// based plane in cleartext_backend.cc remains behind the flag for A/B until
// the differential harness (tests/graphplane_test.cc) retires it. Both are
// bit-identical in released figures, per-vertex states and per-node
// TrafficStats — that contract is the whole point of the split.
#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "src/circuit/builder.h"
#include "src/circuit/eval_plan.h"
#include "src/common/check.h"
#include "src/common/stopwatch.h"
#include "src/core/worker_pool.h"
#include "src/crypto/chacha20.h"
#include "src/dp/noise_circuit.h"
#include "src/engine/cleartext_backend.h"
#include "src/graphplane/plane.h"
#include "src/mpc/packed.h"
#include "src/net/transport_spec.h"

namespace dstress::engine {

namespace {

// Session namespaces and aggregator role, identical to the container plane
// (cleartext_backend.cc) so the two planes' wire transcripts match.
constexpr net::SessionId kEdgeSession = 1ULL << 60;
constexpr net::SessionId kGatherSession = 2ULL << 60;
constexpr net::SessionId kCombineSession = 3ULL << 60;
constexpr net::NodeId kAggregatorNode = 0;

Bytes PackBits(const mpc::BitVector& bits) {
  Bytes out((bits.size() + 7) / 8, 0);
  for (size_t i = 0; i < bits.size(); i++) {
    if (bits[i] & 1) {
      out[i / 8] |= static_cast<uint8_t>(1u << (i % 8));
    }
  }
  return out;
}

mpc::BitVector UnpackBits(const Bytes& raw, size_t bits) {
  DSTRESS_CHECK(raw.size() == (bits + 7) / 8);
  mpc::BitVector out(bits);
  for (size_t i = 0; i < bits; i++) {
    out[i] = (raw[i / 8] >> (i % 8)) & 1;
  }
  return out;
}

uint64_t BitsToWord(const std::vector<uint8_t>& bits) {
  uint64_t value = 0;
  for (size_t i = 0; i < bits.size(); i++) {
    value |= static_cast<uint64_t>(bits[i] & 1) << i;
  }
  return value;
}

mpc::BitVector WordToBits(uint64_t value, int bits) {
  mpc::BitVector out(static_cast<size_t>(bits));
  for (int i = 0; i < bits; i++) {
    out[i] = (value >> i) & 1;
  }
  return out;
}

class ArenaCleartextBackend : public ExecutionBackend {
 public:
  explicit ArenaCleartextBackend(const BackendContext& context)
      : graph_(*context.graph),
        program_(*context.program),
        config_(context.runtime_config),
        early_exit_(context.spec != nullptr && context.spec->cleartext_early_exit),
        update_circuit_(core::BuildUpdateCircuit(program_)),
        contribution_circuit_(core::BuildAggregateCircuit(program_, 1, /*with_noise=*/false)) {
    DSTRESS_CHECK(graph_.MaxDegree() <= program_.degree_bound);
    DSTRESS_CHECK(config_.aggregation_fanout != 1);

    circuit::Builder noise_builder;
    noise_builder.OutputWord(dp::BuildGeometricNoise(noise_builder, program_.output_noise,
                                                     program_.aggregate_bits));
    noise_circuit_ = std::make_unique<circuit::Circuit>(noise_builder.Build());

    net_ = net::MakeTransport(
        config_.transport.WithChannelHighWatermark(config_.channel_high_watermark_bytes),
        graph_.num_vertices());
    pool_ = std::make_unique<core::WorkerPool>(
        core::ResolveThreadBudget(config_.max_parallel_tasks));

    graphplane::GraphPlane::Options options;
    options.num_scenarios = 1;
    options.stride = 1;
    options.edge_session_base = kEdgeSession;
    solo_plane_ = std::make_unique<graphplane::GraphPlane>(graph_, program_, update_plan_,
                                                           pool_.get(), net_.get(), options);
  }

  const char* name() const override { return ExecutionModeName(ExecutionMode::kCleartextFast); }

  int64_t Execute(const std::vector<mpc::BitVector>& initial_states,
                  core::RunMetrics* metrics) override;

  std::vector<int64_t> ExecuteEnsemble(
      const std::vector<std::vector<mpc::BitVector>>& per_scenario_states,
      core::RunMetrics* metrics) override;

  std::vector<mpc::BitVector> DebugFinalStates() const override {
    if (!solo_ran_) {
      return {};
    }
    std::vector<mpc::BitVector> states;
    states.reserve(static_cast<size_t>(graph_.num_vertices()));
    for (int v = 0; v < graph_.num_vertices(); v++) {
      states.push_back(solo_plane_->VertexState(v, 0));
    }
    return states;
  }

  void AttachObserver(net::NetworkObserver* observer) override { net_->SetObserver(observer); }

  const net::Transport& transport() const override { return *net_; }

 private:
  // One wrapping sum per scenario from the plane's final states: packed
  // contribution eval over every lane, then the transpose reduction. Same
  // circuit as the container plane's per-vertex Eval, so per-lane values
  // are bit-identical; same vertex-major addition order, so sums are too.
  std::vector<uint64_t> PackedContributionSums(const graphplane::GraphPlane& plane) const {
    return plane.ScenarioSums(plane.EvalOverStates(contribution_plan_),
                              program_.aggregate_bits);
  }

  // sum + sampled noise, masked and sign-extended at aggregate_bits — the
  // aggregation circuit's arithmetic, identical to the container plane.
  int64_t Release(uint64_t sum, uint64_t noise) const {
    const int agg_bits = program_.aggregate_bits;
    const uint64_t mask = agg_bits >= 64 ? ~0ULL : (1ULL << agg_bits) - 1;
    const uint64_t value = (sum + noise) & mask;
    if (agg_bits < 64 && (value >> (agg_bits - 1)) != 0) {
      return static_cast<int64_t>(value) - static_cast<int64_t>(1ULL << agg_bits);
    }
    return static_cast<int64_t>(value);
  }

  uint64_t SampleNoise() const {
    auto prg = crypto::ChaCha20Prg::FromSeed(
        core::RolePrgSeed(config_.seed, core::kNoiseRoleTag), /*instance=*/0);
    std::vector<uint8_t> noise_input(noise_circuit_->num_inputs());
    for (auto& bit : noise_input) {
      bit = prg.NextBit() ? 1 : 0;
    }
    return BitsToWord(noise_circuit_->Eval(noise_input));
  }

  // Flat gather for a plane of S scenario lanes (the solo S=1 case
  // included): every vertex's state payload crosses to node 0 — as one
  // bulk-metered TrafficStats delta when the transport accepts, literally
  // otherwise — then the packed contribution reduction releases per-lane
  // figures.
  void AggregateFlat(const graphplane::GraphPlane& plane, int num_scenarios, int64_t* results) {
    const int n = graph_.num_vertices();
    const int sb = program_.state_bits;
    const size_t payload_bits = static_cast<size_t>(sb) * num_scenarios;
    const size_t payload_bytes = (payload_bits + 7) / 8;

    std::vector<net::TrafficStats> delta(static_cast<size_t>(n));
    for (int v = 0; v < n; v++) {
      delta[static_cast<size_t>(v)].bytes_sent += payload_bytes;
      delta[static_cast<size_t>(v)].messages_sent += 1;
      delta[static_cast<size_t>(kAggregatorNode)].bytes_received += payload_bytes;
      delta[static_cast<size_t>(kAggregatorNode)].messages_received += 1;
    }
    if (!net_->MeterSelfDelivered(delta)) {
      // Literal fallback: the exact payload bytes the container plane puts
      // on the wire (bit r*S+s = state bit r of scenario s), so observers
      // see identical transcripts. Contributions still come from the
      // arena — the received copies hold the same valid-lane values.
      for (int v = 0; v < n; v++) {
        Bytes payload(payload_bytes, 0);
        for (int r = 0; r < sb; r++) {
          graphplane::InsertBits(&payload, static_cast<size_t>(r) * num_scenarios,
                                 plane.StateLaneGroup(static_cast<size_t>(r), v, num_scenarios),
                                 num_scenarios);
        }
        net_->Send(v, kAggregatorNode, std::move(payload),
                   kGatherSession | static_cast<uint64_t>(v));
      }
      for (int v = 0; v < n; v++) {
        Bytes raw = net_->Recv(kAggregatorNode, v, kGatherSession | static_cast<uint64_t>(v));
        DSTRESS_CHECK(raw.size() == payload_bytes);
      }
    }

    const std::vector<uint64_t> sums = PackedContributionSums(plane);
    const uint64_t noise = SampleNoise();
    for (int s = 0; s < num_scenarios; s++) {
      results[s] = Release(sums[static_cast<size_t>(s)], noise);
    }
  }

  // Tree gather (solo only; the ensemble aggregation schedule is flat,
  // mirroring the secure plane). Bulk-metered mode replays the container
  // plane's §3.6 tree traffic as one delta; the sum itself is the packed
  // flat reduction — associative two's-complement addition makes it equal
  // to the tree's level-by-level partials.
  uint64_t MeterGatherTree() {
    const int n = graph_.num_vertices();
    const int fanout = config_.aggregation_fanout;
    const uint64_t state_bytes = (static_cast<uint64_t>(program_.state_bits) + 7) / 8;
    const uint64_t agg_bytes = (static_cast<uint64_t>(program_.aggregate_bits) + 7) / 8;

    std::vector<net::TrafficStats> delta(static_cast<size_t>(n));
    auto meter = [&](int from, int to, uint64_t bytes) {
      delta[static_cast<size_t>(from)].bytes_sent += bytes;
      delta[static_cast<size_t>(from)].messages_sent += 1;
      delta[static_cast<size_t>(to)].bytes_received += bytes;
      delta[static_cast<size_t>(to)].messages_received += 1;
    };
    for (int v = 0; v < n; v++) {
      meter(v, (v / fanout) * fanout, state_bytes);
    }
    const int num_groups = (n + fanout - 1) / fanout;
    std::vector<int> owners(static_cast<size_t>(num_groups));
    for (int g = 0; g < num_groups; g++) {
      owners[static_cast<size_t>(g)] = g * fanout;
    }
    while (static_cast<int>(owners.size()) > fanout) {
      const int p = static_cast<int>(owners.size());
      for (int g = 0; g < p; g++) {
        meter(owners[static_cast<size_t>(g)], owners[static_cast<size_t>((g / fanout) * fanout)],
              agg_bytes);
      }
      const int next_groups = (p + fanout - 1) / fanout;
      std::vector<int> next(static_cast<size_t>(next_groups));
      for (int g = 0; g < next_groups; g++) {
        next[static_cast<size_t>(g)] = owners[static_cast<size_t>(g * fanout)];
      }
      owners = std::move(next);
    }
    for (int g = 0; g < static_cast<int>(owners.size()); g++) {
      meter(owners[static_cast<size_t>(g)], kAggregatorNode, agg_bytes);
    }
    if (net_->MeterSelfDelivered(delta)) {
      return PackedContributionSums(*solo_plane_)[0];
    }
    return GatherTreeLiteral();
  }

  // Literal tree gather — the container plane's GatherTree verbatim, with
  // leaf states read out of the arena. Fallback path only (observer or a
  // real wire), so per-vertex circuit evaluation is fine here.
  uint64_t GatherTreeLiteral() {
    const int n = graph_.num_vertices();
    const int fanout = config_.aggregation_fanout;
    const int num_groups = (n + fanout - 1) / fanout;
    const size_t agg_bits = static_cast<size_t>(program_.aggregate_bits);

    for (int v = 0; v < n; v++) {
      net_->Send(v, (v / fanout) * fanout, PackBits(solo_plane_->VertexState(v, 0)),
                 kGatherSession | static_cast<uint64_t>(v));
    }
    std::vector<uint64_t> partials(static_cast<size_t>(num_groups), 0);
    std::vector<int> owners(static_cast<size_t>(num_groups), 0);
    pool_->RunGrouped(static_cast<size_t>(num_groups), 1, [&](size_t gg, size_t) {
      int g = static_cast<int>(gg);
      int lo = g * fanout;
      int hi = std::min(n, lo + fanout);
      uint64_t sum = 0;
      for (int v = lo; v < hi; v++) {
        Bytes raw = net_->Recv(lo, v, kGatherSession | static_cast<uint64_t>(v));
        mpc::BitVector state = UnpackBits(raw, static_cast<size_t>(program_.state_bits));
        sum += BitsToWord(contribution_circuit_.Eval(state));
      }
      partials[gg] = sum;
      owners[gg] = lo;
    });

    uint64_t level = 1;
    while (static_cast<int>(partials.size()) > fanout) {
      int p = static_cast<int>(partials.size());
      int next_groups = (p + fanout - 1) / fanout;
      for (int g = 0; g < p; g++) {
        net_->Send(owners[static_cast<size_t>(g)],
                   owners[static_cast<size_t>((g / fanout) * fanout)],
                   PackBits(WordToBits(partials[static_cast<size_t>(g)], program_.aggregate_bits)),
                   kCombineSession | (level << 32) | static_cast<uint64_t>(g));
      }
      std::vector<uint64_t> next_partials(static_cast<size_t>(next_groups), 0);
      std::vector<int> next_owners(static_cast<size_t>(next_groups), 0);
      pool_->RunGrouped(static_cast<size_t>(next_groups), 1, [&](size_t gg, size_t) {
        int g = static_cast<int>(gg);
        int lo = g * fanout;
        int hi = std::min(p, lo + fanout);
        uint64_t sum = 0;
        for (int child = lo; child < hi; child++) {
          Bytes raw = net_->Recv(owners[static_cast<size_t>(lo)],
                                 owners[static_cast<size_t>(child)],
                                 kCombineSession | (level << 32) | static_cast<uint64_t>(child));
          sum += BitsToWord(UnpackBits(raw, agg_bits));
        }
        next_partials[gg] = sum;
        next_owners[gg] = owners[static_cast<size_t>(lo)];
      });
      partials = std::move(next_partials);
      owners = std::move(next_owners);
      level++;
    }

    int p = static_cast<int>(partials.size());
    for (int g = 0; g < p; g++) {
      net_->Send(owners[static_cast<size_t>(g)], kAggregatorNode,
                 PackBits(WordToBits(partials[static_cast<size_t>(g)], program_.aggregate_bits)),
                 kCombineSession | (level << 32) | static_cast<uint64_t>(g));
    }
    uint64_t sum = 0;
    for (int g = 0; g < p; g++) {
      Bytes raw = net_->Recv(kAggregatorNode, owners[static_cast<size_t>(g)],
                             kCombineSession | (level << 32) | static_cast<uint64_t>(g));
      sum += BitsToWord(UnpackBits(raw, agg_bits));
    }
    return sum;
  }

  const graph::Graph& graph_;
  core::VertexProgram program_;
  core::RuntimeConfig config_;
  bool early_exit_ = false;
  circuit::Circuit update_circuit_;
  circuit::EvalPlan update_plan_{update_circuit_};
  circuit::Circuit contribution_circuit_;
  circuit::EvalPlan contribution_plan_{contribution_circuit_};
  std::unique_ptr<circuit::Circuit> noise_circuit_;
  std::unique_ptr<net::Transport> net_;
  std::unique_ptr<core::WorkerPool> pool_;
  // The solo (S = stride = 1) plane, allocated once and Reset per run; also
  // the source of DebugFinalStates. Ensemble chunks build their own planes
  // (stride varies with the chunk width).
  std::unique_ptr<graphplane::GraphPlane> solo_plane_;
  bool solo_ran_ = false;
};

int64_t ArenaCleartextBackend::Execute(const std::vector<mpc::BitVector>& initial_states,
                                       core::RunMetrics* metrics) {
  const int n = graph_.num_vertices();
  DSTRESS_CHECK(static_cast<int>(initial_states.size()) == n);
  for (const mpc::BitVector& state : initial_states) {
    DSTRESS_CHECK(static_cast<int>(state.size()) == program_.state_bits);
  }

  core::RunMetrics local;
  core::RunMetrics* m = metrics != nullptr ? metrics : &local;
  *m = core::RunMetrics{};
  m->iterations = program_.iterations;
  m->update_and_gates = update_circuit_.stats().num_and;
  m->update_and_depth = update_circuit_.stats().and_depth;
  m->aggregate_and_gates =
      contribution_circuit_.stats().num_and * static_cast<size_t>(n) +
      noise_circuit_->stats().num_and;

  Stopwatch total;
  uint64_t bytes_before = net_->TotalBytes();

  Stopwatch phase;
  solo_plane_->Reset();
  graphplane::PackSoloStates(initial_states, &solo_plane_->input_matrix());
  solo_ran_ = true;
  m->init.seconds = phase.ElapsedSeconds();
  m->init.bytes = net_->TotalBytes() - bytes_before;

  uint64_t phase_bytes = net_->TotalBytes();
  for (int iter = 0; iter < program_.iterations; iter++) {
    phase.Reset();
    solo_plane_->ComputeStep();
    m->compute.seconds += phase.ElapsedSeconds();
    m->compute.bytes += net_->TotalBytes() - phase_bytes;
    phase_bytes = net_->TotalBytes();

    phase.Reset();
    solo_plane_->CommunicateStep();
    m->communicate.seconds += phase.ElapsedSeconds();
    m->communicate.bytes += net_->TotalBytes() - phase_bytes;
    phase_bytes = net_->TotalBytes();

    if (early_exit_ && solo_plane_->AllConverged()) {
      // Every remaining (compute, communicate) round is a figure-identical
      // no-op; only the traffic shape changes, which is what the opt-in
      // acknowledges.
      break;
    }
  }
  // Final computation step, as in the secure schedule (§3.6).
  phase.Reset();
  solo_plane_->ComputeStep();
  m->compute.seconds += phase.ElapsedSeconds();
  m->compute.bytes += net_->TotalBytes() - phase_bytes;
  phase_bytes = net_->TotalBytes();

  phase.Reset();
  int64_t result;
  if (config_.aggregation_fanout > 0) {
    result = Release(MeterGatherTree(), SampleNoise());
  } else {
    AggregateFlat(*solo_plane_, /*num_scenarios=*/1, &result);
  }
  m->aggregate.seconds = phase.ElapsedSeconds();
  m->aggregate.bytes = net_->TotalBytes() - phase_bytes;

  m->iterations = static_cast<int>(solo_plane_->stats().iterations);
  m->total_seconds = total.ElapsedSeconds();
  m->total_bytes = net_->TotalBytes() - bytes_before;
  m->avg_bytes_per_node = static_cast<double>(m->total_bytes) / n;
  return result;
}

std::vector<int64_t> ArenaCleartextBackend::ExecuteEnsemble(
    const std::vector<std::vector<mpc::BitVector>>& per_scenario_states,
    core::RunMetrics* metrics) {
  const int total_scenarios = static_cast<int>(per_scenario_states.size());
  DSTRESS_CHECK(total_scenarios > 0);
  if (total_scenarios == 1) {
    core::RunMetrics local;
    core::RunMetrics* m = metrics != nullptr ? metrics : &local;
    return {Execute(per_scenario_states[0], m)};
  }
  DSTRESS_CHECK(config_.aggregation_fanout == 0);

  const int n = graph_.num_vertices();
  const int sb = program_.state_bits;

  core::RunMetrics local;
  core::RunMetrics* m = metrics != nullptr ? metrics : &local;
  *m = core::RunMetrics{};
  m->iterations = program_.iterations;
  m->update_and_gates = update_circuit_.stats().num_and;
  m->update_and_depth = update_circuit_.stats().and_depth;

  Stopwatch total;
  uint64_t bytes_before = net_->TotalBytes();

  int iterations_run = 0;
  std::vector<int64_t> results(static_cast<size_t>(total_scenarios), 0);
  for (int chunk_lo = 0; chunk_lo < total_scenarios; chunk_lo += 64) {
    const int num_scenarios = std::min(64, total_scenarios - chunk_lo);
    int stride = 1;
    while (stride < num_scenarios) {
      stride <<= 1;
    }

    Stopwatch phase;
    uint64_t phase_bytes = net_->TotalBytes();
    graphplane::GraphPlane::Options options;
    options.num_scenarios = num_scenarios;
    options.stride = stride;
    options.edge_session_base = kEdgeSession;
    graphplane::GraphPlane plane(graph_, program_, update_plan_, pool_.get(), net_.get(),
                                 options);
    mpc::PackedShareMatrix& in_mat = plane.input_matrix();
    for (int s = 0; s < num_scenarios; s++) {
      const auto& states = per_scenario_states[static_cast<size_t>(chunk_lo + s)];
      DSTRESS_CHECK(static_cast<int>(states.size()) == n);
      for (int v = 0; v < n; v++) {
        DSTRESS_CHECK(static_cast<int>(states[static_cast<size_t>(v)].size()) == sb);
      }
    }
    if (sb <= 64) {
      // Per vertex: word-pack each scenario's state, transpose the S x sb
      // block, and the rows come out as ready-made lane groups.
      uint64_t block[64];
      for (int v = 0; v < n; v++) {
        for (int s = 0; s < 64; s++) {
          uint64_t word = 0;
          if (s < num_scenarios) {
            const mpc::BitVector& state =
                per_scenario_states[static_cast<size_t>(chunk_lo + s)][static_cast<size_t>(v)];
            for (int r = 0; r < sb; r++) {
              word |= static_cast<uint64_t>(state[static_cast<size_t>(r)] & 1) << r;
            }
          }
          block[s] = word;
        }
        mpc::TransposeBits64x64(block);
        for (int r = 0; r < sb; r++) {
          in_mat.SetLaneGroup(static_cast<size_t>(r), static_cast<size_t>(v) * stride,
                              num_scenarios, block[r]);
        }
      }
    } else {
      for (int v = 0; v < n; v++) {
        for (int r = 0; r < sb; r++) {
          uint64_t bits = 0;
          for (int s = 0; s < num_scenarios; s++) {
            if (per_scenario_states[static_cast<size_t>(chunk_lo + s)][static_cast<size_t>(v)]
                                   [static_cast<size_t>(r)] &
                1) {
              bits |= 1ULL << s;
            }
          }
          in_mat.SetLaneGroup(static_cast<size_t>(r), static_cast<size_t>(v) * stride,
                              num_scenarios, bits);
        }
      }
    }
    m->init.seconds += phase.ElapsedSeconds();
    m->init.bytes += net_->TotalBytes() - phase_bytes;
    phase_bytes = net_->TotalBytes();

    for (int iter = 0; iter < program_.iterations; iter++) {
      phase.Reset();
      plane.ComputeStep();
      m->compute.seconds += phase.ElapsedSeconds();
      m->compute.bytes += net_->TotalBytes() - phase_bytes;
      phase_bytes = net_->TotalBytes();

      phase.Reset();
      plane.CommunicateStep();
      m->communicate.seconds += phase.ElapsedSeconds();
      m->communicate.bytes += net_->TotalBytes() - phase_bytes;
      phase_bytes = net_->TotalBytes();

      if (early_exit_ && plane.AllConverged()) {
        break;
      }
    }
    phase.Reset();
    plane.ComputeStep();
    m->compute.seconds += phase.ElapsedSeconds();
    m->compute.bytes += net_->TotalBytes() - phase_bytes;
    phase_bytes = net_->TotalBytes();

    phase.Reset();
    AggregateFlat(plane, num_scenarios, &results[static_cast<size_t>(chunk_lo)]);
    m->aggregate_and_gates +=
        contribution_circuit_.stats().num_and * static_cast<size_t>(n) * num_scenarios +
        noise_circuit_->stats().num_and;
    m->aggregate.seconds += phase.ElapsedSeconds();
    m->aggregate.bytes += net_->TotalBytes() - phase_bytes;
    iterations_run = std::max(iterations_run, static_cast<int>(plane.stats().iterations));
  }

  m->iterations = iterations_run;
  m->total_seconds = total.ElapsedSeconds();
  m->total_bytes = net_->TotalBytes() - bytes_before;
  m->avg_bytes_per_node = static_cast<double>(m->total_bytes) / n;
  return results;
}

}  // namespace

std::unique_ptr<ExecutionBackend> MakeArenaCleartextBackend(const BackendContext& context) {
  return std::make_unique<ArenaCleartextBackend>(context);
}

}  // namespace dstress::engine
