#include "src/engine/backend.h"

#include <map>
#include <mutex>

#include "src/common/check.h"
#include "src/engine/cleartext_backend.h"
#include "src/engine/secure_backend.h"

namespace dstress::engine {

namespace {

// Overrides installed with RegisterExecutionMode. Built-ins are dispatched
// directly (not via static self-registration, which a static-library link
// would silently drop), so a mode with no override always resolves.
std::mutex registry_mu;
std::map<ExecutionMode, ExecutionBackendFactory>& Registry() {
  static auto* registry = new std::map<ExecutionMode, ExecutionBackendFactory>();
  return *registry;
}

std::unique_ptr<ExecutionBackend> MakeBuiltin(ExecutionMode mode, const BackendContext& context) {
  switch (mode) {
    case ExecutionMode::kSecure:
      return MakeSecureBackend(context);
    case ExecutionMode::kCleartextFast:
      return MakeCleartextFastBackend(context);
  }
  DSTRESS_CHECK(false);
  return nullptr;
}

}  // namespace

std::vector<int64_t> ExecutionBackend::ExecuteEnsemble(
    const std::vector<std::vector<mpc::BitVector>>& per_scenario_states,
    core::RunMetrics* metrics) {
  std::vector<int64_t> released;
  released.reserve(per_scenario_states.size());
  core::RunMetrics total;
  for (const auto& states : per_scenario_states) {
    core::RunMetrics m;
    released.push_back(Execute(states, &m));
    total.init.seconds += m.init.seconds;
    total.init.bytes += m.init.bytes;
    total.compute.seconds += m.compute.seconds;
    total.compute.bytes += m.compute.bytes;
    total.communicate.seconds += m.communicate.seconds;
    total.communicate.bytes += m.communicate.bytes;
    total.aggregate.seconds += m.aggregate.seconds;
    total.aggregate.bytes += m.aggregate.bytes;
    total.total_seconds += m.total_seconds;
    total.total_bytes += m.total_bytes;
    total.avg_bytes_per_node += m.avg_bytes_per_node;
    total.triples_consumed += m.triples_consumed;
    total.update_and_gates = m.update_and_gates;
    total.update_and_depth = m.update_and_depth;
    total.update_rounds += m.update_rounds;
    total.aggregate_and_gates += m.aggregate_and_gates;
    total.iterations = m.iterations;
  }
  if (metrics != nullptr) {
    *metrics = total;
  }
  return released;
}

void RegisterExecutionMode(ExecutionMode mode, ExecutionBackendFactory factory) {
  DSTRESS_CHECK(factory != nullptr);
  std::lock_guard<std::mutex> lock(registry_mu);
  Registry()[mode] = std::move(factory);
}

void ResetExecutionMode(ExecutionMode mode) {
  std::lock_guard<std::mutex> lock(registry_mu);
  Registry().erase(mode);
}

std::unique_ptr<ExecutionBackend> MakeExecutionBackend(ExecutionMode mode,
                                                       const BackendContext& context) {
  ExecutionBackendFactory factory;
  {
    std::lock_guard<std::mutex> lock(registry_mu);
    auto it = Registry().find(mode);
    if (it != Registry().end()) {
      factory = it->second;
    }
  }
  if (factory) {
    return factory(context);
  }
  return MakeBuiltin(mode, context);
}

}  // namespace dstress::engine
