#include "src/engine/backend.h"

#include <map>
#include <mutex>

#include "src/common/check.h"
#include "src/engine/cleartext_backend.h"
#include "src/engine/secure_backend.h"

namespace dstress::engine {

namespace {

// Overrides installed with RegisterExecutionMode. Built-ins are dispatched
// directly (not via static self-registration, which a static-library link
// would silently drop), so a mode with no override always resolves.
std::mutex registry_mu;
std::map<ExecutionMode, ExecutionBackendFactory>& Registry() {
  static auto* registry = new std::map<ExecutionMode, ExecutionBackendFactory>();
  return *registry;
}

std::unique_ptr<ExecutionBackend> MakeBuiltin(ExecutionMode mode, const BackendContext& context) {
  switch (mode) {
    case ExecutionMode::kSecure:
      return MakeSecureBackend(context);
    case ExecutionMode::kCleartextFast:
      return MakeCleartextFastBackend(context);
  }
  DSTRESS_CHECK(false);
  return nullptr;
}

}  // namespace

void RegisterExecutionMode(ExecutionMode mode, ExecutionBackendFactory factory) {
  DSTRESS_CHECK(factory != nullptr);
  std::lock_guard<std::mutex> lock(registry_mu);
  Registry()[mode] = std::move(factory);
}

void ResetExecutionMode(ExecutionMode mode) {
  std::lock_guard<std::mutex> lock(registry_mu);
  Registry().erase(mode);
}

std::unique_ptr<ExecutionBackend> MakeExecutionBackend(ExecutionMode mode,
                                                       const BackendContext& context) {
  ExecutionBackendFactory factory;
  {
    std::lock_guard<std::mutex> lock(registry_mu);
    auto it = Registry().find(mode);
    if (it != Registry().end()) {
      factory = it->second;
    }
  }
  if (factory) {
    return factory(context);
  }
  return MakeBuiltin(mode, context);
}

}  // namespace dstress::engine
