// engine::Engine — the public way to execute a DStress stress test.
//
// The engine closes the four-layer architecture (see ROADMAP.md):
//
//   transport (src/net)  — metered message passing
//   protocol  (src/mpc, src/ot, src/transfer)  — GMW / OT / §3.5 transfers
//   scheduler (src/core) — worker-pool phase execution
//   engine    (this dir) — declarative RunSpec in, RunReport out
//
// Construction compiles the spec: the network is materialized (topology
// spec or prebuilt graph), the contagion model is lowered to a vertex
// program with privacy-calibrated output noise, initial states and the
// cleartext reference are derived from the synthetic workload, and the
// ExecutionMode registry supplies the backend (secure MPC or the cleartext
// fast path). Run() then executes and returns the released figure plus
// metrics.
//
//   engine::RunSpec spec;
//   spec.topology = engine::CorePeripheryTopology(50, 10);
//   spec.shock.shocked_banks = {0, 1};
//   engine::RunReport report = engine::Engine(spec).Run();
#ifndef SRC_ENGINE_ENGINE_H_
#define SRC_ENGINE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/engine/run_spec.h"
#include "src/ensemble/ensemble.h"
#include "src/net/transport.h"

namespace dstress::engine {

class ExecutionBackend;

class Engine {
 public:
  // Compiles the spec and instantiates its execution backend. Aborts (via
  // DSTRESS_CHECK) on an inconsistent spec — scenario-file input is
  // validated upstream by the parser.
  explicit Engine(RunSpec spec);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Executes the stress test once. Reusable: each call is an independent
  // run over the same compiled spec. With spec.ensemble set this runs the
  // *base* scenario only; use RunEnsemble for the ensemble.
  RunReport Run();

  // Executes every scenario of spec.ensemble in one lockstep pass (one lane
  // per scenario in the batched data planes) and reduces the per-lane
  // figures into a distributional report. Charges the composed epsilon
  // against spec.ensemble->epsilon_budget first and aborts — naming the
  // overrun — if the ensemble does not fit. Requires spec.ensemble.
  ensemble::EnsembleReport RunEnsemble();

  // Attaches a transport observer (e.g. audit::TranscriptRecorder; nullptr
  // detaches). Must be called before the first Run().
  void AttachObserver(net::NetworkObserver* observer);

  // Final per-vertex states of the last Run(), when the backend exposes
  // them (ExecutionBackend::DebugFinalStates; the cleartext backends do).
  // Empty otherwise. Differential-testing hook, not part of the release
  // surface.
  std::vector<mpc::BitVector> FinalStates() const;

  // The materialized network and compiled program.
  const graph::Graph& graph() const { return *graph_; }
  const core::VertexProgram& program() const { return program_; }
  int iterations() const { return iterations_; }
  const RunSpec& spec() const { return spec_; }

  // The transport the run's traffic crosses (per-node traffic accounting).
  const net::Transport& transport() const;

 private:
  RunSpec spec_;
  // Points at spec_.graph when the caller supplied a prebuilt network (no
  // second copy is kept), or at built_graph_ materialized from the
  // topology spec.
  std::optional<graph::Graph> built_graph_;
  const graph::Graph* graph_ = nullptr;
  core::VertexProgram program_;
  std::vector<mpc::BitVector> initial_states_;
  bool has_reference_ = false;
  uint64_t reference_ = 0;
  std::string model_name_;
  int iterations_ = 0;
  std::unique_ptr<ExecutionBackend> backend_;

  // Ensemble compilation (spec_.ensemble): the materialized scenarios, one
  // initial-state vector per scenario, and the cleartext reference channel
  // (per-scenario reference TDS + per-bank default indicators).
  void CompileEnsemble(int degree_bound);
  std::vector<ensemble::Scenario> scenarios_;
  std::vector<std::vector<mpc::BitVector>> ensemble_states_;
  std::vector<uint64_t> ensemble_refs_;
  std::vector<std::vector<uint8_t>> ensemble_defaults_;
};

}  // namespace dstress::engine

#endif  // SRC_ENGINE_ENGINE_H_
