#include "src/engine/cleartext_backend.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/circuit/builder.h"
#include "src/circuit/eval_plan.h"
#include "src/common/check.h"
#include "src/common/stopwatch.h"
#include "src/core/worker_pool.h"
#include "src/crypto/chacha20.h"
#include "src/dp/noise_circuit.h"
#include "src/mpc/packed.h"
#include "src/net/transport_spec.h"

namespace dstress::engine {

namespace {

// Session namespaces, mirroring the secure runtime's convention of keying
// concurrent protocol streams by phase.
constexpr net::SessionId kEdgeSession = 1ULL << 60;
constexpr net::SessionId kGatherSession = 2ULL << 60;
constexpr net::SessionId kCombineSession = 3ULL << 60;

// The root aggregation role is played by node 0 (any fixed node works —
// there is no aggregation block to protect in cleartext mode).
constexpr net::NodeId kAggregatorNode = 0;

Bytes PackBits(const mpc::BitVector& bits) {
  Bytes out((bits.size() + 7) / 8, 0);
  for (size_t i = 0; i < bits.size(); i++) {
    if (bits[i] & 1) {
      out[i / 8] |= static_cast<uint8_t>(1u << (i % 8));
    }
  }
  return out;
}

mpc::BitVector UnpackBits(const Bytes& raw, size_t bits) {
  DSTRESS_CHECK(raw.size() == (bits + 7) / 8);
  mpc::BitVector out(bits);
  for (size_t i = 0; i < bits; i++) {
    out[i] = (raw[i / 8] >> (i % 8)) & 1;
  }
  return out;
}

uint64_t BitsToWord(const std::vector<uint8_t>& bits) {
  uint64_t value = 0;
  for (size_t i = 0; i < bits.size(); i++) {
    value |= static_cast<uint64_t>(bits[i] & 1) << i;
  }
  return value;
}

mpc::BitVector WordToBits(uint64_t value, int bits) {
  mpc::BitVector out(static_cast<size_t>(bits));
  for (int i = 0; i < bits; i++) {
    out[i] = (value >> i) & 1;
  }
  return out;
}

// Bit-packed payload helpers for the ensemble wire format: bit r of
// scenario s travels at payload bit r*S + s, so an S=1 payload is
// byte-identical to PackBits of the corresponding solo message.
// Byte-wise, not bit-wise: lane groups are up to 64 bits and these run once
// per (edge, message bit), which is the ensemble communicate phase's hot
// loop. Groups never overlap, so OR-ing into the zero-initialized payload
// is enough.
void InsertBits(Bytes* out, size_t bit_offset, uint64_t bits, int count) {
  if (count < 64) {
    bits &= (1ULL << count) - 1;
  }
  size_t byte = bit_offset / 8;
  const int shift = static_cast<int>(bit_offset % 8);
  (*out)[byte] |= static_cast<uint8_t>(bits << shift);
  for (int written = 8 - shift; written < count; written += 8) {
    (*out)[++byte] |= static_cast<uint8_t>(bits >> written);
  }
}

uint64_t ExtractBits(const Bytes& raw, size_t bit_offset, int count) {
  size_t byte = bit_offset / 8;
  const int shift = static_cast<int>(bit_offset % 8);
  uint64_t bits = raw[byte] >> shift;
  for (int got = 8 - shift; got < count; got += 8) {
    bits |= static_cast<uint64_t>(raw[++byte]) << got;
  }
  if (count < 64) {
    bits &= (1ULL << count) - 1;
  }
  return bits;
}

int SlotOf(const std::vector<int>& neighbors, int target) {
  for (size_t i = 0; i < neighbors.size(); i++) {
    if (neighbors[i] == target) {
      return static_cast<int>(i);
    }
  }
  DSTRESS_CHECK(false);
  return -1;
}

class CleartextFastBackend : public ExecutionBackend {
 public:
  explicit CleartextFastBackend(const BackendContext& context)
      : graph_(*context.graph),
        program_(*context.program),
        config_(context.runtime_config),
        update_circuit_(core::BuildUpdateCircuit(program_)),
        contribution_circuit_(core::BuildAggregateCircuit(program_, 1, /*with_noise=*/false)),
        edges_(graph_.Edges()) {
    DSTRESS_CHECK(graph_.MaxDegree() <= program_.degree_bound);
    // fanout 1 would make the aggregation-tree reduction never shrink.
    DSTRESS_CHECK(config_.aggregation_fanout != 1);

    // The in-circuit noise sampler, evaluated in cleartext on seed-derived
    // uniform bits: the released figure follows the same discrete-Laplace
    // distribution as a secure run.
    circuit::Builder noise_builder;
    noise_builder.OutputWord(dp::BuildGeometricNoise(noise_builder, program_.output_noise,
                                                     program_.aggregate_bits));
    noise_circuit_ = std::make_unique<circuit::Circuit>(noise_builder.Build());

    net_ = net::MakeTransport(
        config_.transport.WithChannelHighWatermark(config_.channel_high_watermark_bytes),
        graph_.num_vertices());

    pool_ = std::make_unique<core::WorkerPool>(
        core::ResolveThreadBudget(config_.max_parallel_tasks));

    out_slot_.reserve(edges_.size());
    in_slot_.reserve(edges_.size());
    for (auto [i, j] : edges_) {
      out_slot_.push_back(SlotOf(graph_.OutNeighbors(i), j));
      in_slot_.push_back(SlotOf(graph_.InNeighbors(j), i));
    }
  }

  const char* name() const override { return ExecutionModeName(ExecutionMode::kCleartextFast); }

  int64_t Execute(const std::vector<mpc::BitVector>& initial_states,
                  core::RunMetrics* metrics) override;

  std::vector<int64_t> ExecuteEnsemble(
      const std::vector<std::vector<mpc::BitVector>>& per_scenario_states,
      core::RunMetrics* metrics) override;

  std::vector<mpc::BitVector> DebugFinalStates() const override { return state_; }

  void AttachObserver(net::NetworkObserver* observer) override { net_->SetObserver(observer); }

  const net::Transport& transport() const override { return *net_; }

 private:
  void ComputePhase();
  void CommunicatePhase();
  int64_t AggregatePhase();
  uint64_t GatherFlat();
  uint64_t GatherTree();

  // Scenario-ensemble lane plane (docs/ensemble.md): scenario s of a
  // <=64-wide chunk lives in lane v*P + s of a packed matrix (P = smallest
  // power of two >= S, so a vertex's lanes form one contiguous group).
  void EvalPlanPacked(const circuit::EvalPlan& plan, const mpc::PackedShareMatrix& in_mat,
                      mpc::PackedShareMatrix& out_mat);
  void CommunicateEnsembleChunk(const mpc::PackedShareMatrix& out_mat,
                                mpc::PackedShareMatrix& in_mat, int num_scenarios, int stride);
  void AggregateEnsembleChunk(const mpc::PackedShareMatrix& state_mat, int num_scenarios,
                              int stride, int64_t* results);

  const graph::Graph& graph_;
  core::VertexProgram program_;
  core::RuntimeConfig config_;
  circuit::Circuit update_circuit_;
  // Precompiled once; every computation step's bitsliced chunks reuse it.
  circuit::EvalPlan update_plan_{update_circuit_};
  circuit::Circuit contribution_circuit_;
  // Packed plan over the single-vertex contribution circuit: the ensemble
  // aggregation evaluates all n*S contributions in one bitsliced pass.
  circuit::EvalPlan contribution_plan_{contribution_circuit_};
  std::unique_ptr<circuit::Circuit> noise_circuit_;
  std::vector<std::pair<int, int>> edges_;
  std::vector<int> out_slot_;
  std::vector<int> in_slot_;
  std::unique_ptr<net::Transport> net_;
  std::unique_ptr<core::WorkerPool> pool_;

  // Plaintext per-vertex state and message slots; entry v is only touched
  // by the pool task evaluating vertex v.
  std::vector<mpc::BitVector> state_;
  std::vector<std::vector<mpc::BitVector>> inmsg_;   // [vertex][in_slot]
  std::vector<std::vector<mpc::BitVector>> outmsg_;  // [vertex][out_slot]
};

void CleartextFastBackend::ComputePhase() {
  // Word-parallel (bitsliced) evaluation over the precompiled plan: chunks
  // of up to 64 vertices share one pass over the gate list, vertex j of a
  // chunk living in bit lane j of every wire row (eval_plan.h). Replaces
  // the seed's one per-bit Circuit::Eval per vertex.
  const int n = graph_.num_vertices();
  const int d = program_.degree_bound;
  const size_t in_rows = update_plan_.num_inputs();
  const size_t out_rows = update_plan_.num_outputs();
  const int num_chunks = (n + 63) / 64;
  pool_->RunGrouped(static_cast<size_t>(num_chunks), 1, [&](size_t chunk, size_t) {
    const int lo = static_cast<int>(chunk) * 64;
    const int hi = std::min(n, lo + 64);
    std::vector<uint64_t> inputs(in_rows, 0);
    for (int v = lo; v < hi; v++) {
      const uint64_t lane = 1ULL << (v - lo);
      size_t row = 0;
      for (uint8_t bit : state_[v]) {
        if (bit & 1) {
          inputs[row] |= lane;
        }
        row++;
      }
      for (int slot = 0; slot < d; slot++) {
        for (uint8_t bit : inmsg_[v][slot]) {
          if (bit & 1) {
            inputs[row] |= lane;
          }
          row++;
        }
      }
      DSTRESS_CHECK(row == in_rows);
    }
    std::vector<uint64_t> outputs(out_rows);
    update_plan_.EvalPacked(inputs.data(), /*words_per_row=*/1, outputs.data());
    for (int v = lo; v < hi; v++) {
      const int lane = v - lo;
      size_t row = 0;
      state_[v].resize(static_cast<size_t>(program_.state_bits));
      for (auto& bit : state_[v]) {
        bit = (outputs[row++] >> lane) & 1;
      }
      for (int slot = 0; slot < d; slot++) {
        outmsg_[v][slot].resize(static_cast<size_t>(program_.message_bits));
        for (auto& bit : outmsg_[v][slot]) {
          bit = (outputs[row++] >> lane) & 1;
        }
      }
    }
  });
}

void CleartextFastBackend::CommunicatePhase() {
  // Same discipline as the secure init phase: sends never block, so a
  // send-all / receive-all sequence is deadlock-free and meters every byte.
  // Every directed edge carries exactly one L-bit message per iteration —
  // the secure path's traffic shape with the encryption stripped off.
  for (size_t e = 0; e < edges_.size(); e++) {
    auto [i, j] = edges_[e];
    net_->Send(i, j, PackBits(outmsg_[i][out_slot_[e]]), kEdgeSession | e);
  }
  for (size_t e = 0; e < edges_.size(); e++) {
    auto [i, j] = edges_[e];
    inmsg_[j][in_slot_[e]] = UnpackBits(net_->Recv(j, i, kEdgeSession | e),
                                        static_cast<size_t>(program_.message_bits));
  }
}

// Flat gather: every vertex forwards its final state to the root.
uint64_t CleartextFastBackend::GatherFlat() {
  const int n = graph_.num_vertices();
  for (int v = 0; v < n; v++) {
    net_->Send(v, kAggregatorNode, PackBits(state_[v]), kGatherSession | static_cast<uint64_t>(v));
  }
  std::vector<uint64_t> contributions(n, 0);
  pool_->RunGrouped(static_cast<size_t>(n), 1, [&](size_t vg, size_t) {
    int v = static_cast<int>(vg);
    Bytes raw = net_->Recv(kAggregatorNode, v, kGatherSession | static_cast<uint64_t>(v));
    mpc::BitVector state = UnpackBits(raw, static_cast<size_t>(program_.state_bits));
    contributions[v] = BitsToWord(contribution_circuit_.Eval(state));
  });
  uint64_t sum = 0;
  for (uint64_t contribution : contributions) {
    sum += contribution;
  }
  return sum;
}

// Tree gather, mirroring the secure runtime's §3.6 aggregation schedule so
// large-N sweeps don't funnel every state through one node: leaf groups of
// `fanout` vertices reduce at the group's first vertex, intermediate levels
// combine up to `fanout` partials, and only the root sees the total. The
// arithmetic (word sums in aggregate_bits two's complement) is associative,
// so the released figure is identical to the flat gather's.
uint64_t CleartextFastBackend::GatherTree() {
  const int n = graph_.num_vertices();
  const int fanout = config_.aggregation_fanout;
  const int num_groups = (n + fanout - 1) / fanout;
  const size_t agg_bits = static_cast<size_t>(program_.aggregate_bits);

  for (int v = 0; v < n; v++) {
    net_->Send(v, (v / fanout) * fanout, PackBits(state_[v]),
               kGatherSession | static_cast<uint64_t>(v));
  }
  std::vector<uint64_t> partials(num_groups, 0);
  std::vector<int> owners(num_groups, 0);
  pool_->RunGrouped(static_cast<size_t>(num_groups), 1, [&](size_t gg, size_t) {
    int g = static_cast<int>(gg);
    int lo = g * fanout;
    int hi = std::min(n, lo + fanout);
    uint64_t sum = 0;
    for (int v = lo; v < hi; v++) {
      Bytes raw = net_->Recv(lo, v, kGatherSession | static_cast<uint64_t>(v));
      mpc::BitVector state = UnpackBits(raw, static_cast<size_t>(program_.state_bits));
      sum += BitsToWord(contribution_circuit_.Eval(state));
    }
    partials[gg] = sum;
    owners[gg] = lo;
  });

  // Combine levels until at most `fanout` partials remain.
  uint64_t level = 1;
  while (static_cast<int>(partials.size()) > fanout) {
    int p = static_cast<int>(partials.size());
    int next_groups = (p + fanout - 1) / fanout;
    for (int g = 0; g < p; g++) {
      net_->Send(owners[g], owners[(g / fanout) * fanout],
                 PackBits(WordToBits(partials[g], program_.aggregate_bits)),
                 kCombineSession | (level << 32) | static_cast<uint64_t>(g));
    }
    std::vector<uint64_t> next_partials(next_groups, 0);
    std::vector<int> next_owners(next_groups, 0);
    pool_->RunGrouped(static_cast<size_t>(next_groups), 1, [&](size_t gg, size_t) {
      int g = static_cast<int>(gg);
      int lo = g * fanout;
      int hi = std::min(p, lo + fanout);
      uint64_t sum = 0;
      for (int child = lo; child < hi; child++) {
        Bytes raw = net_->Recv(owners[lo], owners[child],
                               kCombineSession | (level << 32) | static_cast<uint64_t>(child));
        sum += BitsToWord(UnpackBits(raw, agg_bits));
      }
      next_partials[gg] = sum;
      next_owners[gg] = owners[lo];
    });
    partials = std::move(next_partials);
    owners = std::move(next_owners);
    level++;
  }

  // Root: combine the remaining partials at the aggregator node.
  int p = static_cast<int>(partials.size());
  for (int g = 0; g < p; g++) {
    net_->Send(owners[g], kAggregatorNode, PackBits(WordToBits(partials[g], program_.aggregate_bits)),
               kCombineSession | (level << 32) | static_cast<uint64_t>(g));
  }
  uint64_t sum = 0;
  for (int g = 0; g < p; g++) {
    Bytes raw = net_->Recv(kAggregatorNode, owners[g],
                           kCombineSession | (level << 32) | static_cast<uint64_t>(g));
    sum += BitsToWord(UnpackBits(raw, agg_bits));
  }
  return sum;
}

int64_t CleartextFastBackend::AggregatePhase() {
  // Sum of contributions plus sampled output noise, in aggregate_bits
  // two's-complement arithmetic — exactly the aggregation circuit's math.
  uint64_t sum = config_.aggregation_fanout > 0 ? GatherTree() : GatherFlat();
  auto prg = crypto::ChaCha20Prg::FromSeed(
      core::RolePrgSeed(config_.seed, core::kNoiseRoleTag), /*instance=*/0);
  std::vector<uint8_t> noise_input(noise_circuit_->num_inputs());
  for (auto& bit : noise_input) {
    bit = prg.NextBit() ? 1 : 0;
  }
  sum += BitsToWord(noise_circuit_->Eval(noise_input));

  const int agg_bits = program_.aggregate_bits;
  uint64_t mask = agg_bits >= 64 ? ~0ULL : (1ULL << agg_bits) - 1;
  uint64_t value = sum & mask;
  if (agg_bits < 64 && (value >> (agg_bits - 1)) != 0) {
    return static_cast<int64_t>(value) - static_cast<int64_t>(1ULL << agg_bits);
  }
  return static_cast<int64_t>(value);
}

void CleartextFastBackend::EvalPlanPacked(const circuit::EvalPlan& plan,
                                          const mpc::PackedShareMatrix& in_mat,
                                          mpc::PackedShareMatrix& out_mat) {
  const size_t words = in_mat.words_per_row();
  const size_t in_rows = plan.num_inputs();
  const size_t out_rows = plan.num_outputs();
  const size_t num_wires = plan.num_wires();
  // Small word chunks keep the per-task wire scratch (num_wires * chunk
  // words) cache-resident; one 64-lane-wide pass over a large circuit would
  // blow it out.
  constexpr size_t kWordsPerTask = 16;
  const size_t num_tasks = (words + kWordsPerTask - 1) / kWordsPerTask;
  pool_->RunGrouped(num_tasks, 1, [&](size_t task, size_t) {
    const size_t w0 = task * kWordsPerTask;
    const size_t cw = std::min(kWordsPerTask, words - w0);
    // Uninitialized on purpose: in/out are fully written before being read,
    // and the 4-arg EvalPacked tolerates garbage scratch. Zeroing num_wires
    // * cw words per task would cost more than the evaluation itself.
    std::unique_ptr<uint64_t[]> in_chunk(new uint64_t[in_rows * cw]);
    std::unique_ptr<uint64_t[]> out_chunk(new uint64_t[out_rows * cw]);
    std::unique_ptr<uint64_t[]> scratch(new uint64_t[num_wires * cw]);
    for (size_t r = 0; r < in_rows; r++) {
      std::copy_n(in_mat.row(r) + w0, cw, &in_chunk[r * cw]);
    }
    plan.EvalPacked(in_chunk.get(), cw, out_chunk.get(), scratch.get());
    for (size_t r = 0; r < out_rows; r++) {
      std::copy_n(&out_chunk[r * cw], cw, out_mat.row(r) + w0);
    }
  });
}

void CleartextFastBackend::CommunicateEnsembleChunk(const mpc::PackedShareMatrix& out_mat,
                                                    mpc::PackedShareMatrix& in_mat,
                                                    int num_scenarios, int stride) {
  // One message per directed edge regardless of the scenario count — the
  // whole point of the lane plane's amortization. Payload bit r*S + s is
  // message bit r of scenario s.
  const int sb = program_.state_bits;
  const int mb = program_.message_bits;
  const size_t payload_bits = static_cast<size_t>(mb) * num_scenarios;
  for (size_t e = 0; e < edges_.size(); e++) {
    auto [i, j] = edges_[e];
    Bytes payload((payload_bits + 7) / 8, 0);
    const size_t row0 = static_cast<size_t>(sb) + static_cast<size_t>(out_slot_[e]) * mb;
    for (int r = 0; r < mb; r++) {
      InsertBits(&payload, static_cast<size_t>(r) * num_scenarios,
                 out_mat.GetLaneGroup(row0 + r, static_cast<size_t>(i) * stride, num_scenarios),
                 num_scenarios);
    }
    net_->Send(i, j, std::move(payload), kEdgeSession | e);
  }
  for (size_t e = 0; e < edges_.size(); e++) {
    auto [i, j] = edges_[e];
    Bytes raw = net_->Recv(j, i, kEdgeSession | e);
    DSTRESS_CHECK(raw.size() == (payload_bits + 7) / 8);
    const size_t row0 = static_cast<size_t>(sb) + static_cast<size_t>(in_slot_[e]) * mb;
    for (int r = 0; r < mb; r++) {
      in_mat.SetLaneGroup(row0 + r, static_cast<size_t>(j) * stride, num_scenarios,
                          ExtractBits(raw, static_cast<size_t>(r) * num_scenarios, num_scenarios));
    }
  }
}

void CleartextFastBackend::AggregateEnsembleChunk(const mpc::PackedShareMatrix& state_mat,
                                                  int num_scenarios, int stride,
                                                  int64_t* results) {
  const int n = graph_.num_vertices();
  const int sb = program_.state_bits;
  const size_t payload_bits = static_cast<size_t>(sb) * num_scenarios;
  for (int v = 0; v < n; v++) {
    Bytes payload((payload_bits + 7) / 8, 0);
    for (int r = 0; r < sb; r++) {
      InsertBits(&payload, static_cast<size_t>(r) * num_scenarios,
                 state_mat.GetLaneGroup(r, static_cast<size_t>(v) * stride, num_scenarios),
                 num_scenarios);
    }
    net_->Send(v, kAggregatorNode, std::move(payload), kGatherSession | static_cast<uint64_t>(v));
  }

  const size_t lanes = static_cast<size_t>(n) * stride;
  mpc::PackedShareMatrix contrib_in(contribution_plan_.num_inputs(), lanes);
  for (int v = 0; v < n; v++) {
    Bytes raw = net_->Recv(kAggregatorNode, v, kGatherSession | static_cast<uint64_t>(v));
    DSTRESS_CHECK(raw.size() == (payload_bits + 7) / 8);
    for (int r = 0; r < sb; r++) {
      contrib_in.SetLaneGroup(r, static_cast<size_t>(v) * stride, num_scenarios,
                              ExtractBits(raw, static_cast<size_t>(r) * num_scenarios,
                                          num_scenarios));
    }
  }
  mpc::PackedShareMatrix contrib_out(contribution_plan_.num_outputs(), lanes);
  EvalPlanPacked(contribution_plan_, contrib_in, contrib_out);

  // Per vertex: bit-transpose the agg_bits x S contribution block so word s
  // becomes scenario s's contribution word, then accumulate — no per-bit
  // loops in the reduction.
  const int agg_bits = program_.aggregate_bits;
  DSTRESS_CHECK(agg_bits <= 64);
  std::vector<uint64_t> sums(num_scenarios, 0);
  uint64_t block[64];
  for (int v = 0; v < n; v++) {
    for (int b = 0; b < 64; b++) {
      block[b] = b < agg_bits
                     ? contrib_out.GetLaneGroup(b, static_cast<size_t>(v) * stride, num_scenarios)
                     : 0;
    }
    mpc::TransposeBits64x64(block);
    for (int s = 0; s < num_scenarios; s++) {
      sums[s] += block[s];
    }
  }

  // The noise is sampled once and added to every scenario's sum: each solo
  // run with the same seed draws this exact stream, which is what makes
  // every lane bit-identical to its solo release.
  auto prg = crypto::ChaCha20Prg::FromSeed(
      core::RolePrgSeed(config_.seed, core::kNoiseRoleTag), /*instance=*/0);
  std::vector<uint8_t> noise_input(noise_circuit_->num_inputs());
  for (auto& bit : noise_input) {
    bit = prg.NextBit() ? 1 : 0;
  }
  const uint64_t noise = BitsToWord(noise_circuit_->Eval(noise_input));

  const uint64_t mask = agg_bits >= 64 ? ~0ULL : (1ULL << agg_bits) - 1;
  for (int s = 0; s < num_scenarios; s++) {
    uint64_t value = (sums[s] + noise) & mask;
    if (agg_bits < 64 && (value >> (agg_bits - 1)) != 0) {
      results[s] = static_cast<int64_t>(value) - static_cast<int64_t>(1ULL << agg_bits);
    } else {
      results[s] = static_cast<int64_t>(value);
    }
  }
}

std::vector<int64_t> CleartextFastBackend::ExecuteEnsemble(
    const std::vector<std::vector<mpc::BitVector>>& per_scenario_states,
    core::RunMetrics* metrics) {
  const int total_scenarios = static_cast<int>(per_scenario_states.size());
  DSTRESS_CHECK(total_scenarios > 0);
  if (total_scenarios == 1) {
    // Width-1 ensemble == solo run, traffic included.
    core::RunMetrics local;
    core::RunMetrics* m = metrics != nullptr ? metrics : &local;
    return {Execute(per_scenario_states[0], m)};
  }
  // Mirrors the secure plane: the ensemble aggregation schedule is flat.
  DSTRESS_CHECK(config_.aggregation_fanout == 0);

  const int n = graph_.num_vertices();
  const int sb = program_.state_bits;

  core::RunMetrics local;
  core::RunMetrics* m = metrics != nullptr ? metrics : &local;
  *m = core::RunMetrics{};
  m->iterations = program_.iterations;
  m->update_and_gates = update_circuit_.stats().num_and;
  m->update_and_depth = update_circuit_.stats().and_depth;

  Stopwatch total;
  uint64_t bytes_before = net_->TotalBytes();

  std::vector<int64_t> results(total_scenarios, 0);
  for (int chunk_lo = 0; chunk_lo < total_scenarios; chunk_lo += 64) {
    const int num_scenarios = std::min(64, total_scenarios - chunk_lo);
    int stride = 1;
    while (stride < num_scenarios) {
      stride <<= 1;
    }
    const size_t lanes = static_cast<size_t>(n) * stride;

    Stopwatch phase;
    uint64_t chunk_bytes = net_->TotalBytes();
    mpc::PackedShareMatrix in_mat(update_plan_.num_inputs(), lanes);
    mpc::PackedShareMatrix out_mat(update_plan_.num_outputs(), lanes);
    for (int s = 0; s < num_scenarios; s++) {
      const auto& states = per_scenario_states[chunk_lo + s];
      DSTRESS_CHECK(static_cast<int>(states.size()) == n);
      for (int v = 0; v < n; v++) {
        DSTRESS_CHECK(static_cast<int>(states[v].size()) == sb);
      }
    }
    if (sb <= 64) {
      // Per vertex: word-pack each scenario's state, transpose the S x sb
      // block, and the rows come out as ready-made lane groups.
      uint64_t block[64];
      for (int v = 0; v < n; v++) {
        for (int s = 0; s < 64; s++) {
          uint64_t word = 0;
          if (s < num_scenarios) {
            const mpc::BitVector& state = per_scenario_states[chunk_lo + s][v];
            for (int r = 0; r < sb; r++) {
              word |= static_cast<uint64_t>(state[r] & 1) << r;
            }
          }
          block[s] = word;
        }
        mpc::TransposeBits64x64(block);
        for (int r = 0; r < sb; r++) {
          in_mat.SetLaneGroup(r, static_cast<size_t>(v) * stride, num_scenarios, block[r]);
        }
      }
    } else {
      for (int v = 0; v < n; v++) {
        for (int r = 0; r < sb; r++) {
          uint64_t bits = 0;
          for (int s = 0; s < num_scenarios; s++) {
            if (per_scenario_states[chunk_lo + s][v][r] & 1) {
              bits |= 1ULL << s;
            }
          }
          in_mat.SetLaneGroup(r, static_cast<size_t>(v) * stride, num_scenarios, bits);
        }
      }
    }
    m->init.seconds += phase.ElapsedSeconds();
    m->init.bytes += net_->TotalBytes() - chunk_bytes;

    uint64_t phase_bytes = net_->TotalBytes();
    for (int iter = 0; iter < program_.iterations; iter++) {
      phase.Reset();
      EvalPlanPacked(update_plan_, in_mat, out_mat);
      for (int r = 0; r < sb; r++) {
        std::copy_n(out_mat.row(r), out_mat.words_per_row(), in_mat.row(r));
      }
      m->compute.seconds += phase.ElapsedSeconds();
      m->compute.bytes += net_->TotalBytes() - phase_bytes;
      phase_bytes = net_->TotalBytes();

      phase.Reset();
      CommunicateEnsembleChunk(out_mat, in_mat, num_scenarios, stride);
      m->communicate.seconds += phase.ElapsedSeconds();
      m->communicate.bytes += net_->TotalBytes() - phase_bytes;
      phase_bytes = net_->TotalBytes();
    }
    phase.Reset();
    EvalPlanPacked(update_plan_, in_mat, out_mat);
    m->compute.seconds += phase.ElapsedSeconds();
    m->compute.bytes += net_->TotalBytes() - phase_bytes;
    phase_bytes = net_->TotalBytes();

    phase.Reset();
    AggregateEnsembleChunk(out_mat, num_scenarios, stride, &results[chunk_lo]);
    m->aggregate_and_gates +=
        contribution_circuit_.stats().num_and * static_cast<size_t>(n) * num_scenarios +
        noise_circuit_->stats().num_and;
    m->aggregate.seconds += phase.ElapsedSeconds();
    m->aggregate.bytes += net_->TotalBytes() - phase_bytes;
  }

  m->total_seconds = total.ElapsedSeconds();
  m->total_bytes = net_->TotalBytes() - bytes_before;
  m->avg_bytes_per_node = static_cast<double>(m->total_bytes) / n;
  return results;
}

int64_t CleartextFastBackend::Execute(const std::vector<mpc::BitVector>& initial_states,
                                      core::RunMetrics* metrics) {
  const int n = graph_.num_vertices();
  const int d = program_.degree_bound;
  DSTRESS_CHECK(static_cast<int>(initial_states.size()) == n);

  core::RunMetrics local;
  core::RunMetrics* m = metrics != nullptr ? metrics : &local;
  *m = core::RunMetrics{};
  m->iterations = program_.iterations;
  m->update_and_gates = update_circuit_.stats().num_and;
  m->update_and_depth = update_circuit_.stats().and_depth;
  m->aggregate_and_gates =
      contribution_circuit_.stats().num_and * static_cast<size_t>(n) +
      noise_circuit_->stats().num_and;

  Stopwatch total;
  uint64_t bytes_before = net_->TotalBytes();

  Stopwatch phase;
  state_ = initial_states;
  for (const mpc::BitVector& state : state_) {
    DSTRESS_CHECK(static_cast<int>(state.size()) == program_.state_bits);
  }
  inmsg_.assign(n, std::vector<mpc::BitVector>(
                       d, mpc::BitVector(static_cast<size_t>(program_.message_bits), 0)));
  outmsg_.assign(n, std::vector<mpc::BitVector>(
                        d, mpc::BitVector(static_cast<size_t>(program_.message_bits), 0)));
  m->init.seconds = phase.ElapsedSeconds();
  m->init.bytes = net_->TotalBytes() - bytes_before;

  uint64_t phase_bytes = net_->TotalBytes();
  for (int iter = 0; iter < program_.iterations; iter++) {
    phase.Reset();
    ComputePhase();
    m->compute.seconds += phase.ElapsedSeconds();
    m->compute.bytes += net_->TotalBytes() - phase_bytes;
    phase_bytes = net_->TotalBytes();

    phase.Reset();
    CommunicatePhase();
    m->communicate.seconds += phase.ElapsedSeconds();
    m->communicate.bytes += net_->TotalBytes() - phase_bytes;
    phase_bytes = net_->TotalBytes();
  }
  // Final computation step, as in the secure schedule (§3.6).
  phase.Reset();
  ComputePhase();
  m->compute.seconds += phase.ElapsedSeconds();
  m->compute.bytes += net_->TotalBytes() - phase_bytes;
  phase_bytes = net_->TotalBytes();

  phase.Reset();
  int64_t result = AggregatePhase();
  m->aggregate.seconds = phase.ElapsedSeconds();
  m->aggregate.bytes = net_->TotalBytes() - phase_bytes;

  m->total_seconds = total.ElapsedSeconds();
  m->total_bytes = net_->TotalBytes() - bytes_before;
  m->avg_bytes_per_node = static_cast<double>(m->total_bytes) / n;
  return result;
}

}  // namespace

std::unique_ptr<ExecutionBackend> MakeContainerCleartextBackend(const BackendContext& context) {
  return std::make_unique<CleartextFastBackend>(context);
}

std::unique_ptr<ExecutionBackend> MakeCleartextFastBackend(const BackendContext& context) {
  if (context.spec == nullptr || context.spec->cleartext_arena) {
    return MakeArenaCleartextBackend(context);
  }
  return MakeContainerCleartextBackend(context);
}

}  // namespace dstress::engine
