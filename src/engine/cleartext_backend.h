// The kCleartextFast execution backend: scenario sweeps without crypto.
//
// The ROADMAP's large scenario sweeps (N in the tens of thousands) are out
// of reach for the secure stack — every vertex would cost a full GMW block
// evaluation plus k+1 encrypted transfers per edge per iteration. This
// backend drops the cryptography but deliberately keeps everything else the
// secure path has:
//
//  * the *semantics*: the very same update / aggregation / noise boolean
//    circuits are built and evaluated (in cleartext), so fixed-point
//    saturation, division and clamping behave bit-for-bit like the MPC run
//    and the released figure matches the EnSolveFixed/EgjSolveFixed
//    references exactly (modulo the output noise, which is drawn from the
//    same sampler circuit fed by a seed-derived PRG);
//  * the *transport layer*: every inter-vertex message (one L-bit word per
//    edge per iteration, one state word per vertex at aggregation) crosses
//    a metered net::Transport with the secure path's FIFO (from, to,
//    session) channel discipline — so traffic shapes are observable and any
//    registered transport (including the TCP multi-process backend, single-
//    or multi-machine) can back this mode too;
//  * the *scheduler layer*: compute phases run as (vertex, 1) groups on a
//    persistent core::WorkerPool, exactly like the secure runtime's phase
//    batches.
//
// What it does not preserve: byte counts (a cleartext message is the L-bit
// word, not an encrypted share matrix) and, of course, any privacy.
#ifndef SRC_ENGINE_CLEARTEXT_BACKEND_H_
#define SRC_ENGINE_CLEARTEXT_BACKEND_H_

#include <memory>

#include "src/engine/backend.h"

namespace dstress::engine {

// The registered kCleartextFast factory: dispatches on
// RunSpec::cleartext_arena between the two data planes below.
std::unique_ptr<ExecutionBackend> MakeCleartextFastBackend(const BackendContext& context);

// Flat-arena plane (src/graphplane, docs/graph-plane.md) — the default.
std::unique_ptr<ExecutionBackend> MakeArenaCleartextBackend(const BackendContext& context);

// The original container-based plane (per-vertex vector state/messages),
// kept for A/B against the arena plane; tests/graphplane_test.cc pins the
// two bit-identical.
std::unique_ptr<ExecutionBackend> MakeContainerCleartextBackend(const BackendContext& context);

}  // namespace dstress::engine

#endif  // SRC_ENGINE_CLEARTEXT_BACKEND_H_
