// Monotonic wall-clock stopwatch used by benchmarks and cost calibration.
#ifndef SRC_COMMON_STOPWATCH_H_
#define SRC_COMMON_STOPWATCH_H_

#include <chrono>

namespace dstress {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dstress

#endif  // SRC_COMMON_STOPWATCH_H_
