// Deterministic, seedable pseudo-random generator for simulation use.
//
// This is NOT a cryptographic generator; protocol-grade randomness comes
// from crypto::ChaCha20Prg. Rng is used for workload generation, synthetic
// graphs, and test sweeps, where reproducibility across runs matters more
// than unpredictability. The implementation is xoshiro256** seeded through
// splitmix64, which has excellent statistical quality for simulation.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>

#include "src/common/check.h"

namespace dstress {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) {
    DSTRESS_CHECK(bound > 0);
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (0ULL - bound) % bound;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    DSTRESS_CHECK(lo <= hi);
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo) + 1));
  }

  bool Bit() { return (Next() & 1) != 0; }

  // Uniform double in [0, 1).
  double Uniform() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  // Standard exponential variate (rate 1).
  double Exponential();

  // Laplace variate with scale b (location 0).
  double Laplace(double b);

  // Two-sided geometric variate: P(Y = d) = (1-alpha)/(1+alpha) * alpha^|d|,
  // alpha in (0,1). This is the discrete analogue of the Laplace
  // distribution used by the DStress transfer protocol (Ghosh et al.).
  int64_t TwoSidedGeometric(double alpha);

  // One-sided geometric: number of failures before first success with
  // success probability p in (0,1]; P(Y=k) = (1-p)^k p.
  int64_t Geometric(double p);

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace dstress

#endif  // SRC_COMMON_RNG_H_
