// Byte-buffer utilities: hex encoding, little-endian serialization helpers.
#ifndef SRC_COMMON_BYTES_H_
#define SRC_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/check.h"

namespace dstress {

using Bytes = std::vector<uint8_t>;

// Returns the lowercase hex encoding of `data`.
std::string HexEncode(const uint8_t* data, size_t len);
std::string HexEncode(const Bytes& data);

// Parses a hex string (even length, [0-9a-fA-F]) into bytes. Aborts on
// malformed input; intended for test vectors and fixed constants.
Bytes HexDecode(const std::string& hex);

// Little-endian append-only serializer. All DStress wire messages are
// serialized with this writer and parsed with ByteReader, so the byte
// accounting in the transport layer reflects real message sizes.
class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }
  void U16(uint16_t v) { AppendLe(&v, 2); }
  void U32(uint32_t v) { AppendLe(&v, 4); }
  void U64(uint64_t v) { AppendLe(&v, 8); }
  void Raw(const uint8_t* data, size_t len) { buf_.insert(buf_.end(), data, data + len); }
  void Raw(const Bytes& data) { Raw(data.data(), data.size()); }
  // Length-prefixed byte string.
  void Blob(const Bytes& data) {
    U32(static_cast<uint32_t>(data.size()));
    Raw(data);
  }

  const Bytes& bytes() const { return buf_; }
  Bytes Take() { return std::move(buf_); }

 private:
  void AppendLe(const void* p, size_t n) {
    // Host is little-endian on all supported platforms (x86-64, aarch64 LE).
    const uint8_t* b = static_cast<const uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  Bytes buf_;
};

// Matching reader. Aborts (via DSTRESS_CHECK) on truncated input: a short
// read inside the protocol engine indicates a logic error, not bad user
// input.
class ByteReader {
 public:
  explicit ByteReader(const Bytes& buf) : buf_(buf) {}

  uint8_t U8() { return buf_[Advance(1)]; }
  uint16_t U16() { return ReadLe<uint16_t>(); }
  uint32_t U32() { return ReadLe<uint32_t>(); }
  uint64_t U64() { return ReadLe<uint64_t>(); }
  Bytes Blob() {
    uint32_t n = U32();
    size_t at = Advance(n);
    return Bytes(buf_.begin() + at, buf_.begin() + at + n);
  }
  void Raw(uint8_t* out, size_t n) {
    size_t at = Advance(n);
    std::memcpy(out, buf_.data() + at, n);
  }
  bool AtEnd() const { return pos_ == buf_.size(); }
  size_t remaining() const { return buf_.size() - pos_; }

 private:
  template <typename T>
  T ReadLe() {
    T v;
    size_t at = Advance(sizeof(T));
    std::memcpy(&v, buf_.data() + at, sizeof(T));
    return v;
  }
  size_t Advance(size_t n) {
    DSTRESS_CHECK(pos_ + n <= buf_.size());
    size_t at = pos_;
    pos_ += n;
    return at;
  }

  const Bytes& buf_;
  size_t pos_ = 0;
};

}  // namespace dstress

#endif  // SRC_COMMON_BYTES_H_
