// Lightweight runtime-check macros used across the DStress codebase.
//
// We deliberately avoid a heavyweight logging dependency: a failed check in
// a cryptographic protocol is unrecoverable, so we print and abort. CHECK is
// always on; DSTRESS_DCHECK compiles out in NDEBUG builds.
#ifndef SRC_COMMON_CHECK_H_
#define SRC_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace dstress {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace dstress

#define DSTRESS_CHECK(expr)                                \
  do {                                                     \
    if (!(expr)) {                                         \
      ::dstress::CheckFailed(#expr, __FILE__, __LINE__);   \
    }                                                      \
  } while (0)

#ifdef NDEBUG
#define DSTRESS_DCHECK(expr) \
  do {                       \
  } while (0)
#else
#define DSTRESS_DCHECK(expr) DSTRESS_CHECK(expr)
#endif

#endif  // SRC_COMMON_CHECK_H_
