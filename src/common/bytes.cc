#include "src/common/bytes.h"

namespace dstress {

namespace {

int HexNibble(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}

}  // namespace

std::string HexEncode(const uint8_t* data, size_t len) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(len * 2);
  for (size_t i = 0; i < len; i++) {
    out.push_back(kDigits[data[i] >> 4]);
    out.push_back(kDigits[data[i] & 0xf]);
  }
  return out;
}

std::string HexEncode(const Bytes& data) { return HexEncode(data.data(), data.size()); }

Bytes HexDecode(const std::string& hex) {
  DSTRESS_CHECK(hex.size() % 2 == 0);
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexNibble(hex[i]);
    int lo = HexNibble(hex[i + 1]);
    DSTRESS_CHECK(hi >= 0 && lo >= 0);
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

}  // namespace dstress
