#include "src/common/rng.h"

#include <cmath>

namespace dstress {

double Rng::Exponential() {
  // Inverse CDF; guard against log(0).
  double u = Uniform();
  while (u <= 0.0) {
    u = Uniform();
  }
  return -std::log(u);
}

double Rng::Laplace(double b) {
  DSTRESS_CHECK(b > 0);
  // Difference of two exponentials has a Laplace distribution.
  return b * (Exponential() - Exponential());
}

int64_t Rng::Geometric(double p) {
  DSTRESS_CHECK(p > 0 && p <= 1);
  if (p == 1.0) {
    return 0;
  }
  double u = Uniform();
  while (u <= 0.0) {
    u = Uniform();
  }
  return static_cast<int64_t>(std::floor(std::log(u) / std::log(1.0 - p)));
}

int64_t Rng::TwoSidedGeometric(double alpha) {
  DSTRESS_CHECK(alpha > 0 && alpha < 1);
  // Sample magnitude and sign: P(Y=0) = (1-alpha)/(1+alpha);
  // P(|Y|=k) = 2 alpha^k (1-alpha)/(1+alpha) for k >= 1. A clean way to draw
  // this is the difference of two iid geometric(1-alpha) variables.
  int64_t a = Geometric(1.0 - alpha);
  int64_t b = Geometric(1.0 - alpha);
  return a - b;
}

}  // namespace dstress
