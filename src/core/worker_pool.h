// Persistent worker pool with group-affinity scheduling.
//
// The runtime's phases each run groups × subtasks protocol-role tasks,
// where the subtasks of one group exchange blocking Recv messages with each
// other (the members of a GMW block, the 2(k+1)+2 roles of one edge
// transfer). Spawning a fresh thread per task per batch — what the seed
// scheduler did — pays thread creation and teardown on every phase of every
// iteration. This pool keeps a fixed set of threads alive across phases and
// runs and feeds them tasks instead.
//
// No-deadlock invariant (the load-bearing part): a task may block inside an
// intra-group Recv, so every subtask of its group must be able to hold a
// thread at the same time. Tasks are therefore admitted to the run queue a
// whole group at a time, and a group is only admitted while
//   admitted-but-unfinished tasks + subtasks  <=  thread count.
// Under that bound every admitted task is either running or has an idle
// thread coming for it (threads only block inside tasks), so all admitted
// tasks run concurrently, and since sends never block (transport.h), each
// admitted group's blocking receives are eventually satisfied. Admission
// order is group order, preserving the deterministic global scheduling the
// phases rely on for reproducible traffic.
//
// If one group alone needs more threads than the pool has (subtasks >
// num_threads), the pool grows permanently to fit it — equivalent to the
// seed scheduler's batch floor of one whole group.
#ifndef SRC_CORE_WORKER_POOL_H_
#define SRC_CORE_WORKER_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dstress::core {

// Thread budget for a phase scheduler: `max_parallel_tasks` if nonzero,
// else 4x hardware concurrency (oversubscribed so blocking intra-group
// receives still leave runnable threads), 16 when concurrency is unknown.
// Shared by core::Runtime and the engine's cleartext backend.
int ResolveThreadBudget(int max_parallel_tasks);

class WorkerPool {
 public:
  // `num_threads` is the pool's thread budget. Threads are spawned lazily
  // as work demands them — a Runtime over a tiny graph never materializes
  // a many-core machine's full budget — and persist once started.
  explicit WorkerPool(int num_threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Current thread budget (grows past the constructor value only when a
  // single group needs more).
  int num_threads() const;

  // Runs fn(group, subtask) for every pair in {0..groups-1} x
  // {0..subtasks-1}, blocking until all complete. Group-affinity batching
  // as described above; one RunGrouped executes at a time (concurrent
  // callers serialize).
  void RunGrouped(size_t groups, size_t subtasks,
                  const std::function<void(size_t, size_t)>& fn);

 private:
  struct Task {
    size_t group;
    size_t subtask;
  };

  void WorkerLoop();
  // Admits whole groups while the invariant allows; callers hold mu_.
  void AdmitGroupsLocked();
  // Spawns threads up to min(capacity_, want); callers hold mu_.
  void EnsureThreadsLocked(size_t want);

  // Serializes RunGrouped callers.
  std::mutex run_mu_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers: queue non-empty or shutdown
  std::condition_variable done_cv_;  // RunGrouped caller: remaining == 0
  size_t capacity_;                  // thread budget; admission bound
  std::vector<std::thread> threads_;  // spawned so far (<= capacity_)
  std::deque<Task> queue_;
  bool shutdown_ = false;

  // State of the in-flight RunGrouped, guarded by mu_.
  const std::function<void(size_t, size_t)>* fn_ = nullptr;
  size_t groups_ = 0;
  size_t subtasks_ = 0;
  size_t next_group_ = 0;    // first group not yet admitted
  size_t outstanding_ = 0;   // admitted but unfinished tasks
  size_t remaining_ = 0;     // all unfinished tasks
};

}  // namespace dstress::core

#endif  // SRC_CORE_WORKER_POOL_H_
