#include "src/core/worker_pool.h"

#include "src/common/check.h"

namespace dstress::core {

int ResolveThreadBudget(int max_parallel_tasks) {
  if (max_parallel_tasks > 0) {
    return max_parallel_tasks;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(hw == 0 ? 16 : 4 * hw);
}

WorkerPool::WorkerPool(int num_threads) : capacity_(static_cast<size_t>(num_threads)) {
  DSTRESS_CHECK(num_threads > 0);
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) {
    t.join();
  }
}

int WorkerPool::num_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(capacity_);
}

void WorkerPool::EnsureThreadsLocked(size_t want) {
  if (want > capacity_) {
    want = capacity_;
  }
  while (threads_.size() < want) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

void WorkerPool::AdmitGroupsLocked() {
  while (next_group_ < groups_ && outstanding_ + subtasks_ <= threads_.size()) {
    for (size_t s = 0; s < subtasks_; s++) {
      queue_.push_back(Task{next_group_, s});
    }
    outstanding_ += subtasks_;
    next_group_++;
  }
  // The no-deadlock invariant itself: every admitted task can hold a
  // thread at the same time.
  DSTRESS_DCHECK(outstanding_ <= threads_.size());
}

void WorkerPool::RunGrouped(size_t groups, size_t subtasks,
                            const std::function<void(size_t, size_t)>& fn) {
  if (groups == 0 || subtasks == 0) {
    return;
  }
  std::lock_guard<std::mutex> run_lock(run_mu_);
  std::unique_lock<std::mutex> lock(mu_);
  // Grow the budget (permanently) so one whole group always fits, then
  // spawn no more threads than this workload can occupy.
  if (subtasks > capacity_) {
    capacity_ = subtasks;
  }
  EnsureThreadsLocked(groups * subtasks);
  fn_ = &fn;
  groups_ = groups;
  subtasks_ = subtasks;
  next_group_ = 0;
  outstanding_ = 0;
  remaining_ = groups * subtasks;
  AdmitGroupsLocked();
  work_cv_.notify_all();
  done_cv_.wait(lock, [this] { return remaining_ == 0; });
  fn_ = nullptr;
}

void WorkerPool::WorkerLoop() {
  for (;;) {
    Task task;
    const std::function<void(size_t, size_t)>* fn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_) {
        return;
      }
      task = queue_.front();
      queue_.pop_front();
      fn = fn_;
    }
    (*fn)(task.group, task.subtask);
    {
      std::lock_guard<std::mutex> lock(mu_);
      outstanding_--;
      remaining_--;
      size_t queued_before = queue_.size();
      AdmitGroupsLocked();
      if (queue_.size() > queued_before) {
        work_cv_.notify_all();
      }
      if (remaining_ == 0) {
        done_cv_.notify_all();
      }
    }
  }
}

}  // namespace dstress::core
