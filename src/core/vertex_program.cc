#include "src/core/vertex_program.h"

#include "src/common/check.h"

namespace dstress::core {

using circuit::Builder;
using circuit::Circuit;
using circuit::Word;

Circuit BuildUpdateCircuit(const VertexProgram& program) {
  DSTRESS_CHECK(program.state_bits > 0);
  DSTRESS_CHECK(program.build_update != nullptr);
  Builder builder;
  Word state = builder.InputWord(program.state_bits);
  std::vector<Word> in_msgs;
  in_msgs.reserve(program.degree_bound);
  for (int d = 0; d < program.degree_bound; d++) {
    in_msgs.push_back(builder.InputWord(program.message_bits));
  }
  Word new_state;
  std::vector<Word> out_msgs;
  program.build_update(builder, state, in_msgs, &new_state, &out_msgs);
  DSTRESS_CHECK(static_cast<int>(new_state.size()) == program.state_bits);
  DSTRESS_CHECK(static_cast<int>(out_msgs.size()) == program.degree_bound);
  builder.OutputWord(new_state);
  for (const Word& msg : out_msgs) {
    DSTRESS_CHECK(static_cast<int>(msg.size()) == program.message_bits);
    builder.OutputWord(msg);
  }
  return builder.Build();
}

Circuit BuildAggregateCircuit(const VertexProgram& program, int group_size, bool with_noise) {
  DSTRESS_CHECK(program.build_contribution != nullptr);
  DSTRESS_CHECK(group_size >= 1);
  Builder builder;
  Word total = builder.ConstWord(0, program.aggregate_bits);
  for (int v = 0; v < group_size; v++) {
    Word state = builder.InputWord(program.state_bits);
    Word contribution = program.build_contribution(builder, state);
    DSTRESS_CHECK(static_cast<int>(contribution.size()) == program.aggregate_bits);
    total = builder.Add(total, contribution);
  }
  if (with_noise) {
    Word noise = dp::BuildGeometricNoise(builder, program.output_noise, program.aggregate_bits);
    total = builder.Add(total, noise);
  }
  builder.OutputWord(total);
  return builder.Build();
}

Circuit BuildCombineCircuit(const VertexProgram& program, int num_partials, bool with_noise) {
  DSTRESS_CHECK(num_partials >= 1);
  Builder builder;
  Word total = builder.ConstWord(0, program.aggregate_bits);
  for (int i = 0; i < num_partials; i++) {
    Word partial = builder.InputWord(program.aggregate_bits);
    total = builder.Add(total, partial);
  }
  if (with_noise) {
    Word noise = dp::BuildGeometricNoise(builder, program.output_noise, program.aggregate_bits);
    total = builder.Add(total, noise);
  }
  builder.OutputWord(total);
  return builder.Build();
}

}  // namespace dstress::core
