// The DStress programming model (paper §3.1).
//
// A vertex program is (1) a graph, (2) per-vertex initial state and an
// update function, (3) an iteration count n, (4) an aggregation function,
// (5) a no-op message ⊥, and (6) a sensitivity bound. Because computation
// steps execute inside GMW, the update and aggregation functions are
// expressed as boolean-circuit builders rather than host code: the runtime
// instantiates one update circuit (identical for every vertex — vertex
// identity must not influence circuit shape, or the degree would leak) and
// one aggregation circuit.
//
// The aggregation function is restricted to a sum of per-vertex
// contributions. Both of the paper's case studies have this form (TDS is a
// sum over banks), and the restriction is what enables the hierarchical
// aggregation tree of §3.6.
#ifndef SRC_CORE_VERTEX_PROGRAM_H_
#define SRC_CORE_VERTEX_PROGRAM_H_

#include <functional>
#include <vector>

#include "src/circuit/builder.h"
#include "src/dp/noise_circuit.h"

namespace dstress::core {

struct VertexProgram {
  // Bit widths. message_bits is the L of the transfer protocol; the paper's
  // prototype uses 12-bit shares.
  int state_bits = 0;
  int message_bits = 12;
  // Public degree bound D: the update circuit always has D input and D
  // output message slots; unused slots carry the no-op message (all-zero).
  int degree_bound = 0;
  // Fixed number of (computation, communication) rounds before the final
  // computation step (§3.7: no data-dependent convergence checks).
  int iterations = 1;
  // Sensitivity bound s of the aggregate output (e.g. 1/r for
  // Eisenberg-Noe, 2/r for Elliott-Golub-Jackson, in output units).
  double sensitivity = 1.0;
  // Width of the aggregate output word (two's complement).
  int aggregate_bits = 32;

  // Builds the body of the update function: given the current state and D
  // incoming message words, define the new state and D outgoing messages.
  // Invoked once; the same circuit runs at every vertex.
  std::function<void(circuit::Builder& builder, const circuit::Word& state,
                     const std::vector<circuit::Word>& in_msgs, circuit::Word* new_state,
                     std::vector<circuit::Word>* out_msgs)>
      build_update;

  // Builds the per-vertex contribution to the aggregate (width
  // aggregate_bits, two's complement). The runtime sums contributions and
  // adds the DP noise inside the aggregation MPC.
  std::function<circuit::Word(circuit::Builder& builder, const circuit::Word& state)>
      build_contribution;

  // Discrete-Laplace output noise (added in-circuit). alpha should be
  // exp(-epsilon / sensitivity_in_output_units).
  dp::NoiseCircuitSpec output_noise;
};

// Materialized circuits for a program (built once per run).
struct ProgramCircuits {
  circuit::Circuit update;     // inputs: state + D*L; outputs: state + D*L
  circuit::Circuit aggregate;  // inputs: group_size*state + noise bits (optional)
  int aggregate_group_size = 0;
  bool aggregate_has_noise = false;
};

// Builds the update circuit for `program`.
circuit::Circuit BuildUpdateCircuit(const VertexProgram& program);

// Builds an aggregation circuit summing `group_size` states' contributions;
// if `with_noise` is set, appends the geometric noise sampler (whose random
// bits become extra inputs, supplied by the aggregation-block members) and
// adds it to the sum. Output: one aggregate_bits-wide word.
circuit::Circuit BuildAggregateCircuit(const VertexProgram& program, int group_size,
                                       bool with_noise);

// Builds the combine circuit for the root of an aggregation tree: sums
// `num_partials` aggregate_bits-wide partial sums and adds noise.
circuit::Circuit BuildCombineCircuit(const VertexProgram& program, int num_partials,
                                     bool with_noise);

}  // namespace dstress::core

#endif  // SRC_CORE_VERTEX_PROGRAM_H_
