// The DStress execution engine (paper §3.3 / §3.6).
//
// The engine is the middle of a three-layer architecture:
//
//   transport (src/net)   — net::Transport carries serialized protocol
//                           messages over FIFO (from, to, session) channels
//                           and meters every byte; backends are selected by
//                           name via net::TransportSpec ("sim" in-process,
//                           "tcp" one process per bank — see
//                           RuntimeConfig::transport). net::Channel
//                           coalesces a role's per-round message bursts.
//   protocol  (src/mpc, src/ot, src/transfer)
//                         — GMW circuit evaluation, OT-extension triples,
//                           and the §3.5 share-transfer scheme, all written
//                           against net::Transport* so backends swap freely.
//   scheduler (this file + worker_pool.h)
//                         — decides which protocol roles run when, on a
//                           persistent core::WorkerPool.
//
// The runtime runs a vertex program over a distributed set of nodes, one
// per vertex, where every protocol role executes as a pool task and
// communicates exclusively through transport messages:
//
//  * Initialization — each node XOR-splits its vertex's initial state into
//    k+1 shares and distributes them to its block; message slots start as
//    shares of the no-op message ⊥ (all zeros).
//  * Computation step — every block evaluates the update circuit in GMW;
//    inputs and outputs stay shared, no member ever sees a value.
//  * Communication step — every directed edge runs the §3.5 transfer
//    protocol, moving each message's sharing from the sender's block to the
//    receiver's block through the two edge endpoints.
//  * Aggregation + noising — blocks forward their state shares
//    (member-index aligned) to the aggregation block, which evaluates the
//    contribution-sum circuit plus the in-MPC discrete-Laplace sampler and
//    opens only the noised total. With aggregation_fanout > 0 an
//    aggregation tree is used (§3.6's scalable variant): leaf blocks sum
//    groups of `fanout` states, intermediate blocks combine up to `fanout`
//    partials per level (all sums stay shared), and only the root adds
//    noise and opens.
//
// Scheduling: phases process vertices/edges in deterministic global order
// as (group, subtask) tasks on the worker pool, where a group is one GMW
// block or one edge transfer. The pool admits whole groups only while every
// subtask of the admitted set can hold a thread concurrently; sends never
// block, so every admitted protocol instance eventually progresses — see
// worker_pool.h for the full invariant. The pool's threads persist across
// phases and runs, so a run pays thread creation once, not once per batch.
#ifndef SRC_CORE_RUNTIME_H_
#define SRC_CORE_RUNTIME_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/setup.h"
#include "src/core/vertex_program.h"
#include "src/core/worker_pool.h"
#include "src/graph/graph.h"
#include "src/mpc/gmw.h"
#include "src/mpc/triple_factory.h"
#include "src/net/transport.h"
#include "src/net/transport_spec.h"
#include "src/transfer/transfer.h"

namespace dstress::transfer {
class EvenNoiseCache;  // batch_engine.h; held by unique_ptr only
}

namespace dstress::core {

struct RuntimeConfig {
  int block_size = 8;  // k+1
  // Batched MPC data plane (the default): every node evaluates all of its
  // block roles for a phase in one lockstep mpc::EvalBatchInstances call
  // over bitsliced packed shares, instead of one task + one GmwParty per
  // (vertex, member) role. Released figures and per-node TrafficStats are
  // bit-identical either way (asserted in engine_test.cc); false keeps the
  // seed one-role-per-task schedule for A/B comparison.
  bool batch_mpc = true;
  // With batch_mpc and dealer triples: run each batched phase as one
  // lockstep task per executing node on the worker pool (the schedule OT
  // triples always use) instead of one whole-phase lockstep call on the
  // scheduler thread. Per-instance messages are identical — only which
  // thread drives them changes — so figures and TrafficStats match;
  // benchmarked as the lockstep-per-node vs hybrid A/B in
  // bench_fig6_scalability.
  bool batch_mpc_per_node = false;
  // Batched transfer data plane (the default): every edge's sender/source/
  // dest/receiver role work runs as per-edge batched tasks over the
  // fixed-base/batch-affine crypto engine (src/transfer/batch_engine.h)
  // instead of one task + one pure-scheme call per role. Wire bytes,
  // released figures and per-node TrafficStats are bit-identical either way
  // (asserted in transfer_test.cc/engine_test.cc); false keeps the seed
  // schedule for A/B comparison. See docs/transfer-crypto.md.
  bool batch_transfer = true;
  // Transfer-protocol noise and lookup parameters (production-scale alpha
  // needs the paper's 8 GB lookup table; defaults are test-scale).
  double transfer_budget_alpha = 0.9;
  // Half-range of the ElGamal discrete-log table. 0 = size automatically so
  // the Appendix B lookup-failure probability is negligible per run.
  int64_t dlog_range = 0;
  // false: dealer triples (simulated offline phase, fast). true: IKNP
  // OT-extension triples (the real protocol; pairwise setup per block).
  bool use_ot_triples = false;
  // With use_ot_triples: run the offline phase through the node-pair triple
  // factory (src/mpc/triple_factory.h) — one IKNP session pair per node
  // pair, bulk extends sized to each phase's aggregate demand, and triple
  // generation for iteration i+1 prefetched while iteration i evaluates.
  // Released figures and the online phase's per-node TrafficStats are
  // bit-identical either way (asserted in triple_factory_test.cc); false
  // keeps the seed per-role OtTripleSource path for A/B comparison.
  bool ot_batching = true;
  // With ot_batching: hand waves to the factory's background dispatcher
  // (the offline/online pipeline). False generates each wave synchronously
  // at enqueue — the A/B knob behind the pipelined == unpipelined fidelity
  // tests; identical figures, traffic and triple streams either way.
  bool ot_prefetch = true;
  // 0 = single aggregation block; >0 = aggregation tree with this group
  // size per level (depth grows as log_fanout(N)).
  int aggregation_fanout = 0;
  // Target number of concurrently live role threads (0 = auto). The worker
  // pool grows past this if a single protocol group needs more.
  int max_parallel_tasks = 0;
  // Per-channel queued-byte cap forwarded to the transport
  // (TransportOptions::channel_high_watermark_bytes); 0 = unbounded. With
  // batch_mpc on, a round's openings for every instance two nodes share
  // coalesce onto one channel — size the cap for that sum, not for a
  // single vertex's burst (see TransportOptions).
  size_t channel_high_watermark_bytes = 0;
  // Which wire carries the run (resolved via net::MakeTransport; "sim" or
  // "tcp" built in). The runtime never names a concrete transport type.
  net::TransportSpec transport;
  // Largest scenario count Runtime::RunEnsemble will be called with (1 =
  // solo runs only). Only scales the auto-sized dlog-table failure budget:
  // an ensemble multiplies the transfer draws per run by its width.
  int ensemble_width = 1;
  uint64_t seed = 1;
  // --- HA checkpointing (src/ha/checkpoint.h, docs/ha.md) -----------------
  // >0: Run() snapshots its phase state to checkpoint_path after every
  // `checkpoint_every`-th communication step (an iteration barrier).
  // Requires use_ot_triples == false (OT sessions hold unrewindable
  // cross-process state) and applies to solo Run() only, not RunEnsemble.
  int checkpoint_every = 0;
  std::string checkpoint_path;
  // Resume Run() from checkpoint_path instead of starting at iteration 0:
  // restores the share arrays and dealer-triple tape positions and skips
  // the init phase. The released figure is bit-identical to an
  // uninterrupted run (the config fingerprint guards against resuming a
  // different run shape).
  bool resume = false;
};

// Derives the PRG seed for a protocol role from the run seed. Shared with
// the engine's cleartext backend, which must draw the aggregation-noise
// bits (role tag kNoiseRoleTag) from the same stream family the secure
// runtime uses — keep any change to this mixing in sync with nothing else:
// this function is the single definition.
constexpr uint64_t kNoiseRoleTag = 0x44;
uint64_t RolePrgSeed(uint64_t run_seed, uint64_t role_tag);

struct PhaseMetrics {
  double seconds = 0;
  uint64_t bytes = 0;
};

struct RunMetrics {
  PhaseMetrics init;
  PhaseMetrics compute;      // summed over all computation steps
  PhaseMetrics communicate;  // summed over all communication steps
  PhaseMetrics aggregate;
  double total_seconds = 0;
  uint64_t total_bytes = 0;
  double avg_bytes_per_node = 0;
  size_t update_and_gates = 0;
  size_t aggregate_and_gates = 0;
  // Circuit-stats surface (run_spec.h FormatReport): the update circuit's
  // AND depth is the number of GMW communication rounds one computation
  // step must take; update_rounds is the exchange-round count the MPC layer
  // actually reported for a step (engine_test asserts they are equal), and
  // triples_consumed totals the Beaver triples drawn across all parties and
  // phases of the run. Cleartext runs report the depth but no rounds or
  // triples (there is no MPC).
  size_t update_and_depth = 0;
  size_t update_rounds = 0;
  uint64_t triples_consumed = 0;
  int iterations = 0;
  // HA surface (docs/ha.md), all zero when the HA layer is off: transport
  // fault-tolerance traffic (heartbeats, resume handshakes, replays —
  // excluded from the byte totals above), completed session resumes, wall
  // time spent writing checkpoints, and the iteration a resumed run
  // restarted from (-1 = not resumed). ToString appends them only when HA
  // was active, so non-HA reports are unchanged.
  uint64_t ha_control_bytes = 0;
  int ha_resumes = 0;
  double ha_checkpoint_seconds = 0;
  int resumed_from_iteration = -1;
  // Offline-phase surface (docs/offline-phase.md), all zero for dealer
  // runs: wall time the triple factory spent generating waves (overlaps
  // the phase timings above — with ot_prefetch the factory runs while the
  // online phase evaluates), online time spent blocked on the triple pool,
  // and base-OT protocol executions during the run (both endpoints count,
  // so one node-pair setup contributes 4). ToString appends them only for
  // OT runs, so dealer reports are unchanged.
  double offline_seconds = 0;
  double offline_wait_seconds = 0;
  uint64_t base_ot_executions = 0;

  std::string ToString() const;
};

class Runtime {
 public:
  Runtime(const RuntimeConfig& config, const graph::Graph& graph, const VertexProgram& program);
  ~Runtime();

  // Executes the program on the given initial states (one state_bits-wide
  // bit vector per vertex, held by that vertex's node). Returns the noised
  // aggregate as a signed integer. Reusable: each call is an independent
  // run (state is re-initialized), but OT/triple sessions persist.
  int64_t Run(const std::vector<mpc::BitVector>& initial_states, RunMetrics* metrics);

  // Scenario-ensemble run: S independent programs (initial_states[s][v] =
  // scenario s's state for vertex v) advance in one lockstep pass — every
  // batched phase carries all S scenarios as extra lanes of the same
  // EvalBatchInstances / per-edge transfer batches — and S noised
  // aggregates are opened. Scenario s's figure is identical to
  // Run(initial_states[s]): per-scenario PRG roles (init shares, transfer
  // masks, aggregation noise) reproduce the solo streams, and S == 1
  // delegates to Run() outright (bit-identical traffic included). Ensembles
  // always use the batched planes regardless of batch_mpc/batch_transfer;
  // S > 1 requires aggregation_fanout == 0 (flat aggregation).
  std::vector<int64_t> RunEnsemble(const std::vector<std::vector<mpc::BitVector>>& initial_states,
                                   RunMetrics* metrics);

  const net::Transport& network() const { return *net_; }
  // Attaches a NetworkObserver (e.g. an audit::TranscriptRecorder; nullptr
  // detaches); see src/audit. Must happen before the first Run: the
  // transport aborts on an attach after worker threads have started
  // exchanging traffic.
  void AttachObserver(net::NetworkObserver* observer) { net_->SetObserver(observer); }
  const circuit::Circuit& update_circuit() const { return update_circuit_; }
  const TrustedSetup& setup() const { return setup_; }

 private:
  void InitPhase(const std::vector<mpc::BitVector>& initial_states);
  void ComputePhase();
  // The two computation-step schedules (RuntimeConfig::batch_mpc): one
  // lockstep batched evaluation per node vs one task per (vertex, member)
  // role. Identical wire traffic; see docs/packed-eval.md.
  void ComputePhaseBatched();
  void ComputePhaseUnbatched();
  void CommunicatePhase();
  // The two communication-step schedules (RuntimeConfig::batch_transfer):
  // four barrier-separated sub-phases of per-edge batched crypto vs one
  // task per transfer role. Identical wire traffic; docs/transfer-crypto.md.
  // `scenario` selects the ensemble lane (0 = the solo run: sessions and
  // PRG instances are then exactly the seed schedule's).
  void CommunicatePhaseBatched(int scenario);
  void CommunicatePhaseUnbatched();
  int64_t AggregatePhase();
  int64_t AggregateSingleLevel();
  int64_t AggregateTree();

  // Ensemble phases (RunEnsemble, S > 1): the share arrays are sized S*n
  // and role (s, v) lives at flat index s*n + v, so the solo
  // Assemble/Scatter helpers work unchanged on flat indices.
  void InitPhaseEnsemble(const std::vector<std::vector<mpc::BitVector>>& initial_states);
  void ComputePhaseEnsemble(int num_scenarios);
  std::vector<int64_t> AggregateEnsemble(int num_scenarios);

  // This party's share of one update-circuit input vector (state + incoming
  // message slots) and the inverse scatter of an output vector.
  mpc::BitVector AssembleUpdateInput(int v, int m) const;
  void ScatterUpdateOutput(int v, int m, const mpc::BitVector& output);
  void AccumulateBatchStats(const mpc::BatchStats& stats);

  // Shared scheduler for a batched MPC phase over `roles` = (group,
  // member) pairs. With a non-interactive triple source the whole phase is
  // one lockstep EvalBatchInstances call on the calling thread (nothing
  // ever parks: each round's receives are satisfied by sends earlier in
  // the same round); with OT triples it runs one lockstep task per
  // executing node so the pairwise triple protocols can interleave.
  // make_item(g, m) builds the instance (triples prefetched inside, in
  // role order), sink(i, output) stores role i's output shares.
  //
  // Scheduling tradeoffs (measured on the 1-core CI container; see the
  // ROADMAP open item on multi-core policy): the single-scheduler mode
  // trades the seed schedule's cross-block thread parallelism for maximal
  // slicing width and zero blocking — the right trade when per-layer
  // synchronization dominates, unproven on many-core hosts (batch_mpc =
  // false restores the seed schedule). The OT mode needs every node's
  // task live at once (the lockstep superstep argument), so the pool
  // grows to one thread per participating node — fine at the block-level
  // N the ~100x-slower OT configs are practical at, but not a schedule
  // for OT at thousands of nodes.
  void RunBatchedPhase(const std::vector<std::pair<int, int>>& roles,
                       const std::function<int(int, int)>& node_of,
                       const std::function<mpc::BatchInstance(int, int)>& make_item,
                       const std::function<void(size_t, const mpc::BitVector&)>& sink,
                       bool count_rounds);

  // Runs fn(group, subtask) for every (group, subtask) pair on the
  // persistent worker pool, with admission aligned to whole groups so
  // intra-group blocking receives cannot deadlock (worker_pool.h).
  void RunGrouped(size_t groups, size_t subtasks,
                  const std::function<void(size_t, size_t)>& fn);

  mpc::TripleSource* TripleSourceFor(uint64_t tag, int member_index,
                                     const std::vector<int>& block);
  crypto::ChaCha20Prg RolePrg(uint64_t role_tag, uint64_t instance);

  // Offline-phase demand estimation (config_.ot_batching): registers one
  // factory wave covering every triple the named phase will draw —
  // update-circuit AND count x scenarios per vertex block for a
  // computation step, the aggregation circuits' AND counts for the
  // aggregation step (flat or tree). No-ops when the factory is off.
  void EnqueueComputeWave(int num_scenarios);
  void EnqueueAggregateWave(int num_scenarios);

  // HA checkpointing (config_.checkpoint_every / config_.resume). The
  // fingerprint covers every parameter that shapes the share arrays and
  // triple tapes, so a checkpoint can never be replayed into a different
  // run. SaveCheckpoint snapshots after the iteration barrier;
  // RestoreCheckpoint returns the iteration to resume at (aborts when the
  // file is unreadable or from another run).
  uint64_t ConfigFingerprint() const;
  void SaveCheckpoint(int next_iteration, RunMetrics* m);
  int RestoreCheckpoint();

  RuntimeConfig config_;
  const graph::Graph& graph_;
  VertexProgram program_;
  circuit::Circuit update_circuit_;
  // Precompiled layer structure of the update circuit, shared by every
  // round, instance and run (circuit/eval_plan.h).
  circuit::EvalPlan update_plan_;
  transfer::TransferParams transfer_params_;
  TrustedSetup setup_;
  std::unique_ptr<net::Transport> net_;
  std::unique_ptr<crypto::DlogTable> dlog_table_;
  // Noise points for the batched aggregation step, sized to the dlog table
  // range; built on the first batched communication step.
  std::unique_ptr<transfer::EvenNoiseCache> noise_cache_;
  std::unique_ptr<WorkerPool> pool_;

  // Shares indexed [vertex][member]: the runtime stores them centrally, but
  // entry [v][m] is only ever touched by the thread playing member m of
  // B_v — the access pattern respects the trust boundaries.
  std::vector<std::vector<mpc::BitVector>> state_shares_;
  // [vertex][in_slot][member]
  std::vector<std::vector<std::vector<mpc::BitVector>>> inmsg_shares_;
  // [vertex][out_slot][member]
  std::vector<std::vector<std::vector<mpc::BitVector>>> outmsg_shares_;

  // Persistent triple sources keyed by (vertex or agg tag, member index).
  std::map<std::pair<uint64_t, int>, std::unique_ptr<mpc::TripleSource>> triple_sources_;
  std::mutex triple_mu_;
  // Offline phase (use_ot_triples && ot_batching): the node-pair triple
  // factory, plus the IKNP session cache the legacy per-role path uses so
  // regenerated roles reuse their base-OT setup.
  std::unique_ptr<mpc::TripleFactory> triple_factory_;
  mpc::IknpSessionCache iknp_cache_;

  std::vector<std::pair<int, int>> edges_;
  int threads_target_ = 0;
  size_t last_aggregate_ands_ = 0;

  // Per-run circuit-stat accumulators (RunMetrics surface).
  std::atomic<uint64_t> triples_consumed_{0};
  std::atomic<size_t> compute_rounds_{0};
};

}  // namespace dstress::core

#endif  // SRC_CORE_RUNTIME_H_
