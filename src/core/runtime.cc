#include "src/core/runtime.h"

#include <algorithm>
#include <cstdio>
#include <functional>

#include "src/common/check.h"
#include "src/common/stopwatch.h"
#include "src/ha/checkpoint.h"
#include "src/net/channel.h"
#include "src/ot/base_ot.h"
#include "src/transfer/batch_engine.h"

namespace dstress::core {

namespace {

// Session-id namespaces (top 4 bits of a 64-bit id select the phase).
constexpr net::SessionId kInitSession = 1ULL << 60;
constexpr net::SessionId kComputeSession = 2ULL << 60;
constexpr net::SessionId kTransferSession = 3ULL << 60;
constexpr net::SessionId kAggGatherSession = 4ULL << 60;
constexpr net::SessionId kAggEvalSession = 5ULL << 60;
constexpr net::SessionId kAggCombineSession = 6ULL << 60;
// All lockstep batched GMW exchanges share one session: phases are
// separated by scheduler barriers (every message of a phase is consumed
// before the next phase sends), so the per-(from, to, session) FIFO order
// inside a phase is the only order that matters — and batch_eval.h fixes it
// by instance order_key.
constexpr net::SessionId kBatchSession = 7ULL << 60;

// Triple-source tags outside the vertex-id space.
constexpr uint64_t kAggTripleTag = 1ULL << 40;

Bytes PackBits(const mpc::BitVector& bits) {
  Bytes out((bits.size() + 7) / 8, 0);
  for (size_t i = 0; i < bits.size(); i++) {
    if (bits[i] & 1) {
      out[i / 8] |= static_cast<uint8_t>(1u << (i % 8));
    }
  }
  return out;
}

mpc::BitVector UnpackBits(const Bytes& raw, size_t bits) {
  DSTRESS_CHECK(raw.size() == (bits + 7) / 8);
  mpc::BitVector out(bits);
  for (size_t i = 0; i < bits; i++) {
    out[i] = (raw[i / 8] >> (i % 8)) & 1;
  }
  return out;
}

int SlotOf(const std::vector<int>& neighbors, int target) {
  for (size_t i = 0; i < neighbors.size(); i++) {
    if (neighbors[i] == target) {
      return static_cast<int>(i);
    }
  }
  DSTRESS_CHECK(false);
  return -1;
}

}  // namespace

std::string RunMetrics::ToString() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "total=%.2fs (init=%.2fs compute=%.2fs comm=%.2fs agg=%.2fs) "
                "traffic: total=%.2fMB avg/node=%.2fMB update_ands=%zu depth=%zu rounds=%zu "
                "agg_ands=%zu triples=%llu iters=%d",
                total_seconds, init.seconds, compute.seconds, communicate.seconds,
                aggregate.seconds, total_bytes / 1e6, avg_bytes_per_node / 1e6, update_and_gates,
                update_and_depth, update_rounds, aggregate_and_gates,
                static_cast<unsigned long long>(triples_consumed), iterations);
  std::string out = buf;
  if (ha_control_bytes > 0 || ha_resumes > 0 || ha_checkpoint_seconds > 0 ||
      resumed_from_iteration >= 0) {
    std::snprintf(buf, sizeof(buf), " ha: ctrl=%.2fMB resumes=%d ckpt=%.2fs resumed_from=%d",
                  ha_control_bytes / 1e6, ha_resumes, ha_checkpoint_seconds,
                  resumed_from_iteration);
    out += buf;
  }
  if (base_ot_executions > 0 || offline_seconds > 0) {
    std::snprintf(buf, sizeof(buf), " offline: gen=%.2fs wait=%.2fs base_ots=%llu",
                  offline_seconds, offline_wait_seconds,
                  static_cast<unsigned long long>(base_ot_executions));
    out += buf;
  }
  return out;
}

uint64_t RolePrgSeed(uint64_t run_seed, uint64_t role_tag) {
  return run_seed * 0x9e3779b97f4a7c15ULL + role_tag;
}

Runtime::Runtime(const RuntimeConfig& config, const graph::Graph& graph,
                 const VertexProgram& program)
    : config_(config),
      graph_(graph),
      program_(program),
      update_circuit_(BuildUpdateCircuit(program)),
      update_plan_(update_circuit_) {
  DSTRESS_CHECK(graph.MaxDegree() <= program.degree_bound);
  // fanout 1 would make the aggregation-tree reduction never shrink.
  DSTRESS_CHECK(config.aggregation_fanout != 1);
  if (config.checkpoint_every > 0 || config.resume) {
    // Checkpoints only rewind dealer triple tapes (src/ha/checkpoint.h);
    // OT sessions hold cross-process key state that cannot be restored.
    DSTRESS_CHECK(!config.use_ot_triples);
    DSTRESS_CHECK(!config.checkpoint_path.empty());
  }

  transfer_params_.block_size = config.block_size;
  transfer_params_.message_bits = program.message_bits;
  transfer_params_.budget_alpha = config.transfer_budget_alpha;
  if (config.dlog_range > 0) {
    transfer_params_.dlog_range = config.dlog_range;
  } else {
    // Auto-size: a run performs about |E|·(k+1)·L·I bit-sum lookups; budget
    // a 1e-6 total failure probability across all of them.
    double draws = static_cast<double>(graph.Edges().size()) * config.block_size *
                   program.message_bits * std::max(program.iterations, 1) *
                   std::max(config.ensemble_width, 1);
    transfer_params_.dlog_range =
        transfer_params_.RecommendedDlogRange(1e-6 / std::max(draws, 1.0));
  }

  SetupConfig setup_config;
  setup_config.num_nodes = graph.num_vertices();
  setup_config.block_size = config.block_size;
  setup_config.message_bits = program.message_bits;
  setup_config.seed = config.seed;
  setup_ = RunTrustedSetup(setup_config, graph);

  net_ = net::MakeTransport(
      config.transport.WithChannelHighWatermark(config.channel_high_watermark_bytes),
      graph.num_vertices());
  dlog_table_ = std::make_unique<crypto::DlogTable>(transfer_params_.dlog_range);
  edges_ = graph.Edges();

  threads_target_ = ResolveThreadBudget(config.max_parallel_tasks);
  pool_ = std::make_unique<WorkerPool>(threads_target_);

  if (config_.use_ot_triples && config_.ot_batching) {
    mpc::TripleFactoryOptions factory_options;
    factory_options.prg_seed = RolePrgSeed(config_.seed, 0x78);
    factory_options.pipeline = config_.ot_prefetch;
    triple_factory_ = std::make_unique<mpc::TripleFactory>(net_.get(), factory_options);
  }
}

Runtime::~Runtime() = default;

crypto::ChaCha20Prg Runtime::RolePrg(uint64_t role_tag, uint64_t instance) {
  return crypto::ChaCha20Prg::FromSeed(RolePrgSeed(config_.seed, role_tag), instance);
}

mpc::TripleSource* Runtime::TripleSourceFor(uint64_t tag, int member_index,
                                            const std::vector<int>& block) {
  if (triple_factory_ != nullptr) {
    // Factory mode: the offline waves enqueued per phase carry this role's
    // triples; the view is a local blocking cursor over them.
    return triple_factory_->ViewFor(tag, member_index);
  }
  std::pair<uint64_t, int> key{tag, member_index};
  {
    std::lock_guard<std::mutex> lock(triple_mu_);
    auto it = triple_sources_.find(key);
    if (it != triple_sources_.end()) {
      return it->second.get();
    }
  }
  std::unique_ptr<mpc::TripleSource> source;
  if (config_.use_ot_triples) {
    // Legacy per-role path (ot_batching off; the A/B baseline). All triple
    // traffic rides the offline session namespace, keyed by role tag, so
    // observers classify offline vs online bytes the same way in both
    // modes; the shared cache lets a regenerated role reuse its base-OT
    // setup instead of re-running it.
    source = std::make_unique<mpc::OtTripleSource>(
        net_.get(), block, member_index,
        RolePrg(0x77, (tag << 8) | static_cast<uint64_t>(member_index)),
        mpc::kOfflineSessionNamespace | tag, &iknp_cache_);
  } else {
    source = std::make_unique<mpc::DealerTripleSource>(member_index, config_.block_size,
                                                       config_.seed ^ tag);
  }
  std::lock_guard<std::mutex> lock(triple_mu_);
  auto [it, _] = triple_sources_.emplace(key, std::move(source));
  return it->second.get();
}

void Runtime::EnqueueComputeWave(int num_scenarios) {
  if (triple_factory_ == nullptr) {
    return;
  }
  const size_t num_and = update_circuit_.stats().num_and;
  if (num_and == 0) {
    return;  // the online phase draws no triples either (gmw.cc guards)
  }
  const int n = graph_.num_vertices();
  std::vector<mpc::TripleDemand> demands;
  demands.reserve(static_cast<size_t>(n));
  for (int v = 0; v < n; v++) {
    mpc::TripleDemand d;
    d.tag = static_cast<uint64_t>(v);
    d.parties = setup_.blocks[v];
    // Ensembles draw num_and once per scenario from the shared (v, m)
    // source (ComputePhaseEnsemble), so one wave covers all lanes.
    d.count = num_and * static_cast<size_t>(num_scenarios);
    demands.push_back(std::move(d));
  }
  triple_factory_->Enqueue(std::move(demands));
}

void Runtime::EnqueueAggregateWave(int num_scenarios) {
  if (triple_factory_ == nullptr) {
    return;
  }
  const int n = graph_.num_vertices();
  std::vector<mpc::TripleDemand> demands;
  if (config_.aggregation_fanout == 0) {
    const size_t num_and =
        BuildAggregateCircuit(program_, n, /*with_noise=*/true).stats().num_and;
    if (num_and > 0) {
      mpc::TripleDemand d;
      d.tag = kAggTripleTag;
      d.parties = setup_.aggregation_block;
      d.count = num_and * static_cast<size_t>(num_scenarios);
      demands.push_back(std::move(d));
    }
    triple_factory_->Enqueue(std::move(demands));
    return;
  }
  // Tree aggregation (solo runs only — RunEnsemble requires fanout 0).
  // Re-derive the level structure exactly as AggregateTree will: same
  // RolePrg(0x55, 0) block stream, same per-size circuits, so the demand
  // tags and counts line up with what each tree role draws.
  DSTRESS_CHECK(num_scenarios == 1);
  const int fanout = config_.aggregation_fanout;
  auto block_prg = RolePrg(0x55, 0);
  auto add_demand = [&](uint64_t tag, std::vector<int> parties, size_t count) {
    if (count == 0) {
      return;
    }
    mpc::TripleDemand d;
    d.tag = tag;
    d.parties = std::move(parties);
    d.count = count;
    demands.push_back(std::move(d));
  };
  int num_groups = (n + fanout - 1) / fanout;
  std::map<int, size_t> leaf_ands;
  for (int g = 0; g < num_groups; g++) {
    std::vector<int> block = setup_.MakeExtraBlock(block_prg);
    int size = std::min(n, g * fanout + fanout) - g * fanout;
    auto it = leaf_ands.find(size);
    if (it == leaf_ands.end()) {
      it = leaf_ands
               .emplace(size,
                        BuildAggregateCircuit(program_, size, /*with_noise=*/false).stats().num_and)
               .first;
    }
    add_demand(kAggTripleTag + 1 + static_cast<uint64_t>(g), std::move(block), it->second);
  }
  uint64_t level = 1;
  int p = num_groups;
  while (p > fanout) {
    int next_groups = (p + fanout - 1) / fanout;
    std::map<int, size_t> combine_ands;
    for (int g = 0; g < next_groups; g++) {
      std::vector<int> block = setup_.MakeExtraBlock(block_prg);
      int size = std::min(p, g * fanout + fanout) - g * fanout;
      auto it = combine_ands.find(size);
      if (it == combine_ands.end()) {
        it = combine_ands
                 .emplace(size,
                          BuildCombineCircuit(program_, size, /*with_noise=*/false).stats().num_and)
                 .first;
      }
      add_demand(kAggTripleTag + 1 + (level << 20) + static_cast<uint64_t>(g), std::move(block),
                 it->second);
    }
    p = next_groups;
    level++;
  }
  add_demand(kAggTripleTag, setup_.aggregation_block,
             BuildCombineCircuit(program_, p, /*with_noise=*/true).stats().num_and);
  triple_factory_->Enqueue(std::move(demands));
}

void Runtime::RunGrouped(size_t groups, size_t subtasks,
                         const std::function<void(size_t, size_t)>& fn) {
  pool_->RunGrouped(groups, subtasks, fn);
}

uint64_t Runtime::ConfigFingerprint() const {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; i++) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  };
  mix(static_cast<uint64_t>(graph_.num_vertices()));
  mix(static_cast<uint64_t>(edges_.size()));
  mix(static_cast<uint64_t>(config_.block_size));
  mix(static_cast<uint64_t>(program_.state_bits));
  mix(static_cast<uint64_t>(program_.message_bits));
  mix(static_cast<uint64_t>(program_.degree_bound));
  mix(static_cast<uint64_t>(program_.iterations));
  mix(static_cast<uint64_t>(config_.aggregation_fanout));
  mix(config_.seed);
  return h;
}

void Runtime::SaveCheckpoint(int next_iteration, RunMetrics* m) {
  Stopwatch sw;
  ha::RuntimeSnapshot snapshot;
  snapshot.config_fingerprint = ConfigFingerprint();
  snapshot.next_iteration = next_iteration;
  snapshot.state_shares = state_shares_;
  snapshot.inmsg_shares = inmsg_shares_;
  snapshot.outmsg_shares = outmsg_shares_;
  {
    std::lock_guard<std::mutex> lock(triple_mu_);
    for (const auto& [key, source] : triple_sources_) {
      auto* dealer = dynamic_cast<mpc::DealerTripleSource*>(source.get());
      DSTRESS_CHECK(dealer != nullptr);  // the ctor rejects checkpoint + OT
      snapshot.triple_cursors.push_back({key.first, key.second, dealer->calls()});
    }
  }
  std::string error;
  if (!ha::SaveSnapshot(config_.checkpoint_path, snapshot, &error)) {
    std::fprintf(stderr, "checkpoint: %s\n", error.c_str());
    DSTRESS_CHECK(false);
  }
  m->ha_checkpoint_seconds += sw.ElapsedSeconds();
}

int Runtime::RestoreCheckpoint() {
  ha::RuntimeSnapshot snapshot;
  std::string error;
  if (!ha::LoadSnapshot(config_.checkpoint_path, &snapshot, &error)) {
    std::fprintf(stderr, "resume: %s\n", error.c_str());
    DSTRESS_CHECK(false);
  }
  if (snapshot.config_fingerprint != ConfigFingerprint()) {
    std::fprintf(stderr, "resume: checkpoint %s is from a different run configuration\n",
                 config_.checkpoint_path.c_str());
    DSTRESS_CHECK(false);
  }
  state_shares_ = std::move(snapshot.state_shares);
  inmsg_shares_ = std::move(snapshot.inmsg_shares);
  outmsg_shares_ = std::move(snapshot.outmsg_shares);
  DSTRESS_CHECK(static_cast<int>(state_shares_.size()) == graph_.num_vertices());
  {
    // Fresh dealer sources fast-forwarded to the saved tape positions; any
    // source the snapshot does not name starts at zero calls, exactly as
    // the uninterrupted run would first touch it.
    std::lock_guard<std::mutex> lock(triple_mu_);
    for (const auto& cursor : snapshot.triple_cursors) {
      auto source = std::make_unique<mpc::DealerTripleSource>(
          cursor.member, config_.block_size, config_.seed ^ cursor.tag);
      source->FastForward(cursor.calls);
      triple_sources_[{cursor.tag, cursor.member}] = std::move(source);
    }
  }
  DSTRESS_CHECK(snapshot.next_iteration >= 0 && snapshot.next_iteration <= program_.iterations);
  return snapshot.next_iteration;
}

void Runtime::InitPhase(const std::vector<mpc::BitVector>& initial_states) {
  int n = graph_.num_vertices();
  int k1 = config_.block_size;
  int d = program_.degree_bound;

  state_shares_.assign(n, std::vector<mpc::BitVector>(k1));
  inmsg_shares_.assign(
      n, std::vector<std::vector<mpc::BitVector>>(
             d, std::vector<mpc::BitVector>(k1, mpc::BitVector(program_.message_bits, 0))));
  outmsg_shares_.assign(
      n, std::vector<std::vector<mpc::BitVector>>(
             d, std::vector<mpc::BitVector>(k1, mpc::BitVector(program_.message_bits, 0))));

  // Each node splits its initial state and distributes the shares to its
  // block. Sends never block, so a simple send-all / receive-all sequence
  // is deadlock-free and still meters every byte.
  for (int v = 0; v < n; v++) {
    DSTRESS_CHECK(static_cast<int>(initial_states[v].size()) == program_.state_bits);
    auto prg = RolePrg(0x11, static_cast<uint64_t>(v));
    auto shares = mpc::ShareBits(initial_states[v], k1, prg);
    for (int m = 0; m < k1; m++) {
      net_->Send(v, setup_.blocks[v][m], PackBits(shares[m]),
                 kInitSession | static_cast<uint64_t>(v));
    }
  }
  for (int v = 0; v < n; v++) {
    for (int m = 0; m < k1; m++) {
      Bytes raw = net_->Recv(setup_.blocks[v][m], v, kInitSession | static_cast<uint64_t>(v));
      state_shares_[v][m] = UnpackBits(raw, static_cast<size_t>(program_.state_bits));
    }
  }
}

mpc::BitVector Runtime::AssembleUpdateInput(int v, int m) const {
  mpc::BitVector input = state_shares_[v][m];
  input.reserve(update_circuit_.num_inputs());
  for (int slot = 0; slot < program_.degree_bound; slot++) {
    mpc::AppendBits(&input, inmsg_shares_[v][slot][m]);
  }
  return input;
}

void Runtime::ScatterUpdateOutput(int v, int m, const mpc::BitVector& output) {
  // Split: new state, then D outgoing message words.
  state_shares_[v][m].assign(output.begin(), output.begin() + program_.state_bits);
  size_t cursor = static_cast<size_t>(program_.state_bits);
  for (int slot = 0; slot < program_.degree_bound; slot++) {
    outmsg_shares_[v][slot][m].assign(output.begin() + cursor,
                                      output.begin() + cursor + program_.message_bits);
    cursor += program_.message_bits;
  }
}

// Compute-phase stats: triples total plus the observed exchange-round
// count (the rounds max is only meaningful for the update circuit — the
// aggregation stages account their triples directly).
void Runtime::AccumulateBatchStats(const mpc::BatchStats& stats) {
  triples_consumed_.fetch_add(stats.triples_consumed, std::memory_order_relaxed);
  size_t prev = compute_rounds_.load(std::memory_order_relaxed);
  while (stats.rounds > prev &&
         !compute_rounds_.compare_exchange_weak(prev, stats.rounds, std::memory_order_relaxed)) {
  }
}

void Runtime::ComputePhase() {
  if (config_.batch_mpc) {
    ComputePhaseBatched();
  } else {
    ComputePhaseUnbatched();
  }
}

// Seed schedule: one pool task and one GmwParty per (vertex, member) role.
void Runtime::ComputePhaseUnbatched() {
  int n = graph_.num_vertices();
  int k1 = config_.block_size;

  RunGrouped(static_cast<size_t>(n), static_cast<size_t>(k1), [&](size_t vg, size_t ms) {
    int v = static_cast<int>(vg);
    int m = static_cast<int>(ms);
    net::SessionId session = kComputeSession | static_cast<uint64_t>(v);

    mpc::TripleSource* triples = TripleSourceFor(static_cast<uint64_t>(v), m, setup_.blocks[v]);
    mpc::GmwParty party(net_.get(), setup_.blocks[v], m, triples, session);
    mpc::PackedShareMatrix input(update_plan_.num_inputs(), 1);
    input.SetInstance(0, AssembleUpdateInput(v, m));
    mpc::BatchStats stats;
    mpc::BitVector output = party.EvalBatch(update_plan_, input, &stats).Instance(0);
    AccumulateBatchStats(stats);
    ScatterUpdateOutput(v, m, output);
  });
}

void Runtime::RunBatchedPhase(const std::vector<std::pair<int, int>>& roles,
                              const std::function<int(int, int)>& node_of,
                              const std::function<mpc::BatchInstance(int, int)>& make_item,
                              const std::function<void(size_t, const mpc::BitVector&)>& sink,
                              bool count_rounds) {
  auto accumulate = [&](const mpc::BatchStats& stats) {
    if (count_rounds) {
      AccumulateBatchStats(stats);
    } else {
      triples_consumed_.fetch_add(stats.triples_consumed, std::memory_order_relaxed);
    }
  };
  const bool interactive_triples = config_.use_ot_triples && !config_.ot_batching;
  if (!interactive_triples && !config_.batch_mpc_per_node) {
    // Single-scheduler mode: the triple source needs no communication
    // (dealer tapes, or factory views whose OT traffic already ran in the
    // offline wave), so the whole phase is one lockstep call on this
    // thread.
    std::vector<mpc::BatchInstance> items;
    items.reserve(roles.size());
    for (auto [g, m] : roles) {
      items.push_back(make_item(g, m));
    }
    mpc::BatchStats stats;
    std::vector<mpc::BitVector> outputs =
        mpc::EvalBatchInstances(net_.get(), kBatchSession, std::move(items), &stats);
    accumulate(stats);
    for (size_t i = 0; i < roles.size(); i++) {
      sink(i, outputs[i]);
    }
    return;
  }
  // Per-node schedule (always for OT triples; opt-in for dealer triples
  // via batch_mpc_per_node): one lockstep task per executing node. Triples
  // are prefetched inside make_item in role order — ascending by group at
  // every node — so the collective pairwise OT sessions run in a globally
  // consistent order and the smallest unfinished group can always progress.
  // Dealer sources are per-(node, session) streams behind a mutex, so the
  // same prefetch order holds and the schedules stay traffic-identical.
  std::map<int, std::vector<size_t>> by_node;
  for (size_t i = 0; i < roles.size(); i++) {
    by_node[node_of(roles[i].first, roles[i].second)].push_back(i);
  }
  std::vector<const std::vector<size_t>*> tasks;
  tasks.reserve(by_node.size());
  for (auto& [x, idxs] : by_node) {
    tasks.push_back(&idxs);
  }
  RunGrouped(1, tasks.size(), [&](size_t, size_t t) {
    const std::vector<size_t>& idxs = *tasks[t];
    std::vector<mpc::BatchInstance> items;
    items.reserve(idxs.size());
    for (size_t i : idxs) {
      items.push_back(make_item(roles[i].first, roles[i].second));
    }
    mpc::BatchStats stats;
    std::vector<mpc::BitVector> outputs =
        mpc::EvalBatchInstances(net_.get(), kBatchSession, std::move(items), &stats);
    accumulate(stats);
    for (size_t k = 0; k < idxs.size(); k++) {
      sink(idxs[k], outputs[k]);
    }
  });
}

// Batched schedule: the step's (vertex, member) roles advance through the
// update circuit's AND layers in lockstep over bitsliced shares
// (batch_eval.h) instead of one task + one GmwParty per role. Wire traffic
// is bit-identical to the unbatched schedule — same per-instance payloads,
// rounds still = AND depth — but the per-layer synchronization is paid once
// per scheduler instead of once per role, and the free gates of up to 64
// roles cost one word op.
void Runtime::ComputePhaseBatched() {
  int n = graph_.num_vertices();
  int k1 = config_.block_size;
  const size_t num_and = update_circuit_.stats().num_and;

  std::vector<std::pair<int, int>> roles;
  roles.reserve(static_cast<size_t>(n) * k1);
  for (int v = 0; v < n; v++) {
    for (int m = 0; m < k1; m++) {
      roles.emplace_back(v, m);
    }
  }
  RunBatchedPhase(
      roles, [&](int v, int m) { return setup_.blocks[v][m]; },
      [&](int v, int m) {
        mpc::TripleSource* source =
            TripleSourceFor(static_cast<uint64_t>(v), m, setup_.blocks[v]);
        mpc::BatchInstance item;
        item.plan = &update_plan_;
        item.parties = setup_.blocks[v];
        item.my_index = m;
        if (num_and > 0) {
          item.triples = source->Generate(num_and);
        }
        item.input_shares = AssembleUpdateInput(v, m);
        item.order_key = static_cast<uint64_t>(v);
        return item;
      },
      [&](size_t i, const mpc::BitVector& output) {
        ScatterUpdateOutput(roles[i].first, roles[i].second, output);
      },
      /*count_rounds=*/true);
}

void Runtime::CommunicatePhase() {
  if (config_.batch_transfer) {
    CommunicatePhaseBatched(/*scenario=*/0);
  } else {
    CommunicatePhaseUnbatched();
  }
}

// Batched schedule: the step's per-edge role work runs through the wire-
// level batch engine (transfer/batch_engine.h) in four barrier-separated
// sub-phases — senders, source endpoints, dest endpoints, receivers — so
// every Recv is satisfied by a Send from an earlier sub-phase and no task
// ever parks on a peer. Messages, sessions and byte counts are identical to
// the unbatched schedule; only the CPU cost per role changes.
void Runtime::CommunicatePhaseBatched(int scenario) {
  int k1 = config_.block_size;
  const int n = graph_.num_vertices();
  // Ensemble lane (scenario > 0): shares live at flat index s*n + v, and
  // sessions / PRG instances are salted per scenario so lanes stay
  // independent streams. scenario == 0 reduces to the solo schedule
  // bit-for-bit (offset 0, salt 0, same PRG instances).
  const size_t vertex_offset = static_cast<size_t>(scenario) * n;
  const uint64_t session_salt = static_cast<uint64_t>(scenario) << 40;
  const uint64_t prg_base = static_cast<uint64_t>(scenario) * edges_.size();
  if (noise_cache_ == nullptr) {
    noise_cache_ = std::make_unique<transfer::EvenNoiseCache>(dlog_table_->range());
  }

  // Sub-phase 1: all sender members of every edge, one batched encrypt per
  // edge sharing the certificate's fixed-base tables.
  RunGrouped(edges_.size(), 1, [&](size_t e, size_t) {
    auto [i, j] = edges_[e];
    net::SessionId session = kTransferSession | session_salt | e;
    int out_slot = SlotOf(graph_.OutNeighbors(i), j);
    std::vector<mpc::BitVector> shares;
    std::vector<crypto::ChaCha20Prg> prgs;
    shares.reserve(k1);
    prgs.reserve(k1);
    for (int x = 0; x < k1; x++) {
      shares.push_back(outmsg_shares_[vertex_offset + i][out_slot][x]);
      prgs.push_back(RolePrg(0x22, ((prg_base + e) << 8) | static_cast<uint64_t>(x)));
    }
    std::vector<Bytes> bundles =
        transfer::EncryptSubsharesWire(shares, setup_.edge_certificates.at({i, j}), prgs);
    for (int x = 0; x < k1; x++) {
      net_->Send(setup_.blocks[i][x], i, std::move(bundles[x]),
                 transfer::TransferSubSession(session, 0));
    }
  });

  // Sub-phase 2: node i aggregates + masks every edge's bundles.
  RunGrouped(edges_.size(), 1, [&](size_t e, size_t) {
    auto [i, j] = edges_[e];
    net::SessionId session = kTransferSession | session_salt | e;
    std::vector<Bytes> bundles;
    bundles.reserve(k1);
    for (int member : setup_.blocks[i]) {
      bundles.push_back(net_->Recv(i, member, transfer::TransferSubSession(session, 0)));
    }
    auto prg = RolePrg(0x33, prg_base + e);
    Bytes agg = transfer::AggregateSubsharesWire(bundles, transfer_params_, prg, *noise_cache_);
    net_->Send(i, j, std::move(agg), transfer::TransferSubSession(session, 1));
  });

  // Sub-phase 3: node j adjusts and fans the columns out (same Channel
  // burst as RunDestEndpoint, so per-node traffic accounting matches).
  RunGrouped(edges_.size(), 1, [&](size_t e, size_t) {
    auto [i, j] = edges_[e];
    net::SessionId session = kTransferSession | session_salt | e;
    int in_slot = SlotOf(graph_.InNeighbors(j), i);
    Bytes agg = net_->Recv(j, i, transfer::TransferSubSession(session, 1));
    std::vector<Bytes> columns =
        transfer::AdjustAndSplitWire(agg, setup_.neighbor_keys[j][in_slot], transfer_params_);
    std::vector<net::NodeId> members(setup_.blocks[j].begin(), setup_.blocks[j].end());
    net::Channel fanout(net_.get(), j, members, transfer::TransferSubSession(session, 2));
    for (size_t y = 0; y < members.size(); y++) {
      fanout.Send(members[y], std::move(columns[y]));
    }
    fanout.Flush();
  });

  // Sub-phase 4: all receiver members of every edge, one batched recovery
  // per edge sharing the c1 fixed-base table.
  RunGrouped(edges_.size(), 1, [&](size_t e, size_t) {
    auto [i, j] = edges_[e];
    net::SessionId session = kTransferSession | session_salt | e;
    int in_slot = SlotOf(graph_.InNeighbors(j), i);
    std::vector<Bytes> columns;
    std::vector<const transfer::MemberKeys*> keys;
    columns.reserve(k1);
    keys.reserve(k1);
    for (int y = 0; y < k1; y++) {
      int member_node = setup_.blocks[j][y];
      columns.push_back(
          net_->Recv(member_node, j, transfer::TransferSubSession(session, 2)));
      keys.push_back(&setup_.node_keys[member_node]);
    }
    std::vector<mpc::BitVector> shares;
    bool ok = transfer::RecoverSharesWire(columns, keys, *dlog_table_, transfer_params_, &shares);
    // Same contract as RunReceiverMember: a lookup miss is the Appendix B
    // P_fail event, negligible by parameter choice and fatal if it fires.
    DSTRESS_CHECK(ok);
    for (int y = 0; y < k1; y++) {
      inmsg_shares_[vertex_offset + j][in_slot][y] = std::move(shares[y]);
    }
  });
}

void Runtime::CommunicatePhaseUnbatched() {
  int k1 = config_.block_size;
  size_t roles_per_edge = static_cast<size_t>(2 * k1 + 2);

  RunGrouped(edges_.size(), roles_per_edge, [&](size_t e, size_t role_s) {
    int role = static_cast<int>(role_s);
    auto [i, j] = edges_[e];
    net::SessionId session = kTransferSession | e;
    int out_slot = SlotOf(graph_.OutNeighbors(i), j);
    int in_slot = SlotOf(graph_.InNeighbors(j), i);

    if (role < k1) {
      // Sender member `role` of B_i.
      int member_node = setup_.blocks[i][role];
      auto prg = RolePrg(0x22, (e << 8) | static_cast<uint64_t>(role));
      transfer::RunSenderMember(net_.get(), member_node, i, session,
                                outmsg_shares_[i][out_slot][role],
                                setup_.edge_certificates.at({i, j}), prg);
    } else if (role == k1) {
      // Node i: aggregation + masking noise.
      std::vector<int> member_nodes = setup_.blocks[i];
      auto prg = RolePrg(0x33, e);
      transfer::RunSourceEndpoint(net_.get(), i, member_nodes, j, session, transfer_params_, prg);
    } else if (role == k1 + 1) {
      // Node j: ephemeral adjustment + fan-out.
      transfer::RunDestEndpoint(net_.get(), j, i, setup_.blocks[j], session,
                                setup_.neighbor_keys[j][in_slot], transfer_params_);
    } else {
      // Receiver member of B_j.
      int y = role - (k1 + 2);
      int member_node = setup_.blocks[j][y];
      inmsg_shares_[j][in_slot][y] =
          transfer::RunReceiverMember(net_.get(), member_node, j, session,
                                      setup_.node_keys[member_node], *dlog_table_,
                                      transfer_params_);
    }
  });
}

int64_t Runtime::AggregateSingleLevel() {
  int n = graph_.num_vertices();
  int k1 = config_.block_size;
  circuit::Circuit agg_circuit = BuildAggregateCircuit(program_, n, /*with_noise=*/true);
  last_aggregate_ands_ = agg_circuit.stats().num_and;

  // Gather: member m of every B_v forwards its state share to member m of
  // the aggregation block (index-aligned so collusion resistance carries
  // over).
  for (int v = 0; v < n; v++) {
    for (int m = 0; m < k1; m++) {
      net_->Send(setup_.blocks[v][m], setup_.aggregation_block[m],
                 PackBits(state_shares_[v][m]), kAggGatherSession | static_cast<uint64_t>(v));
    }
  }

  std::vector<int64_t> results(k1, 0);
  RunGrouped(1, static_cast<size_t>(k1), [&](size_t, size_t m_flat) {
    int m = static_cast<int>(m_flat);
    int agg_node = setup_.aggregation_block[m];
    mpc::BitVector input;
    input.reserve(agg_circuit.num_inputs());
    for (int v = 0; v < n; v++) {
      Bytes raw = net_->Recv(agg_node, setup_.blocks[v][m],
                             kAggGatherSession | static_cast<uint64_t>(v));
      mpc::BitVector share = UnpackBits(raw, static_cast<size_t>(program_.state_bits));
      mpc::AppendBits(&input, share);
    }
    // Noise randomness: each member feeds its own uniform bits as its input
    // shares; the shared value is the XOR of all members' bits.
    auto prg = RolePrg(kNoiseRoleTag, m_flat);
    size_t noise_bits = dp::NoiseInputBits(program_.output_noise);
    for (size_t b = 0; b < noise_bits; b++) {
      input.push_back(prg.NextBit() ? 1 : 0);
    }

    mpc::TripleSource* triples = TripleSourceFor(kAggTripleTag, m, setup_.aggregation_block);
    mpc::GmwParty party(net_.get(), setup_.aggregation_block, m, triples, kAggEvalSession);
    mpc::BitVector out_shares = party.Eval(agg_circuit, input);
    triples_consumed_.fetch_add(agg_circuit.stats().num_and, std::memory_order_relaxed);
    mpc::BitVector opened = party.Open(out_shares);
    results[m] = mpc::BitsToSignedWord(opened, 0, program_.aggregate_bits);
  });
  return results[0];
}

int64_t Runtime::AggregateTree() {
  int n = graph_.num_vertices();
  int k1 = config_.block_size;
  int fanout = config_.aggregation_fanout;
  int num_groups = (n + fanout - 1) / fanout;

  // Deterministic extra blocks for the tree leaves.
  auto block_prg = RolePrg(0x55, 0);
  std::vector<std::vector<int>> blocks;
  blocks.reserve(num_groups);
  for (int g = 0; g < num_groups; g++) {
    blocks.push_back(setup_.MakeExtraBlock(block_prg));
  }

  // Gather shares to the leaf blocks.
  for (int v = 0; v < n; v++) {
    int g = v / fanout;
    for (int m = 0; m < k1; m++) {
      net_->Send(setup_.blocks[v][m], blocks[g][m], PackBits(state_shares_[v][m]),
                 kAggGatherSession | static_cast<uint64_t>(v));
    }
  }

  // Leaf level: partial sums of up to `fanout` vertex states stay shared.
  // Each role's input is the gathered state shares of its group's vertices;
  // each distinct group size needs its own circuit (the last group may be
  // short), precompiled once per level.
  std::map<int, std::pair<circuit::Circuit, circuit::EvalPlan>> leaf_plans;
  auto leaf_plan_for = [&](int size) -> const circuit::EvalPlan& {
    auto it = leaf_plans.find(size);
    if (it == leaf_plans.end()) {
      circuit::Circuit c = BuildAggregateCircuit(program_, size, /*with_noise=*/false);
      circuit::EvalPlan plan(c);
      it = leaf_plans.emplace(size, std::make_pair(std::move(c), std::move(plan))).first;
    }
    return it->second.second;
  };
  leaf_plan_for(std::min(n, fanout));
  if (n % fanout != 0) {
    leaf_plan_for(n - (num_groups - 1) * fanout);
  }
  auto leaf_input = [&](int g, int m) {
    int lo = g * fanout;
    int hi = std::min(n, lo + fanout);
    int agg_node = blocks[g][m];
    mpc::BitVector input;
    for (int v = lo; v < hi; v++) {
      Bytes raw = net_->Recv(agg_node, setup_.blocks[v][m],
                             kAggGatherSession | static_cast<uint64_t>(v));
      mpc::AppendBits(&input, UnpackBits(raw, static_cast<size_t>(program_.state_bits)));
    }
    return input;
  };
  std::vector<std::vector<mpc::BitVector>> shares(num_groups, std::vector<mpc::BitVector>(k1));
  if (config_.batch_mpc) {
    // All leaf roles advance in lockstep (same wire traffic as the
    // per-role schedule; see ComputePhaseBatched).
    std::vector<std::pair<int, int>> roles;
    roles.reserve(static_cast<size_t>(num_groups) * k1);
    for (int g = 0; g < num_groups; g++) {
      for (int m = 0; m < k1; m++) {
        roles.emplace_back(g, m);
      }
    }
    RunBatchedPhase(
        roles, [&](int g, int m) { return blocks[g][m]; },
        [&](int g, int m) {
          int size = std::min(n, g * fanout + fanout) - g * fanout;
          const circuit::EvalPlan& plan = leaf_plan_for(size);
          mpc::TripleSource* source =
              TripleSourceFor(kAggTripleTag + 1 + static_cast<uint64_t>(g), m, blocks[g]);
          mpc::BatchInstance item;
          item.plan = &plan;
          item.parties = blocks[g];
          item.my_index = m;
          if (plan.stats().num_and > 0) {
            item.triples = source->Generate(plan.stats().num_and);
          }
          item.input_shares = leaf_input(g, m);
          item.order_key = static_cast<uint64_t>(g);
          return item;
        },
        [&](size_t i, const mpc::BitVector& output) {
          shares[roles[i].first][roles[i].second] = output;
        },
        /*count_rounds=*/false);
  } else {
    RunGrouped(static_cast<size_t>(num_groups), static_cast<size_t>(k1),
               [&](size_t gg, size_t mm) {
                 int g = static_cast<int>(gg);
                 int m = static_cast<int>(mm);
                 int size = std::min(n, g * fanout + fanout) - g * fanout;
                 const circuit::EvalPlan& plan = leaf_plan_for(size);
                 net::SessionId session = kAggEvalSession | static_cast<uint64_t>(g);
                 mpc::TripleSource* triples =
                     TripleSourceFor(kAggTripleTag + 1 + static_cast<uint64_t>(g), m, blocks[g]);
                 mpc::GmwParty party(net_.get(), blocks[g], m, triples, session);
                 shares[g][m] = party.Eval(plan, leaf_input(g, m));
                 triples_consumed_.fetch_add(plan.stats().num_and, std::memory_order_relaxed);
               });
  }

  // Intermediate combine levels (without noise) until one root group of at
  // most `fanout` partials remains — the general tree of §3.6. For the
  // N=1750, fanout=100 deployment this loop never executes (depth 2); it
  // matters when fanout is small relative to N.
  uint64_t level = 1;
  while (static_cast<int>(shares.size()) > fanout) {
    int p = static_cast<int>(shares.size());
    int next_groups = (p + fanout - 1) / fanout;
    std::vector<std::vector<int>> next_blocks;
    next_blocks.reserve(next_groups);
    for (int g = 0; g < next_groups; g++) {
      next_blocks.push_back(setup_.MakeExtraBlock(block_prg));
    }
    for (int g = 0; g < p; g++) {
      for (int m = 0; m < k1; m++) {
        net_->Send(blocks[g][m], next_blocks[g / fanout][m], PackBits(shares[g][m]),
                   kAggCombineSession | (level << 32) | static_cast<uint64_t>(g));
      }
    }
    std::map<int, std::pair<circuit::Circuit, circuit::EvalPlan>> combine_plans;
    auto combine_plan_for = [&](int size) -> const circuit::EvalPlan& {
      auto it = combine_plans.find(size);
      if (it == combine_plans.end()) {
        circuit::Circuit c = BuildCombineCircuit(program_, size, /*with_noise=*/false);
        circuit::EvalPlan plan(c);
        it = combine_plans.emplace(size, std::make_pair(std::move(c), std::move(plan))).first;
      }
      return it->second.second;
    };
    combine_plan_for(std::min(p, fanout));
    combine_plan_for(p - (next_groups - 1) * fanout);
    auto combine_input = [&, p](int g, int m, const std::vector<std::vector<int>>& nb) {
      int lo = g * fanout;
      int hi = std::min(p, lo + fanout);
      int agg_node = nb[g][m];
      mpc::BitVector input;
      for (int child = lo; child < hi; child++) {
        Bytes raw =
            net_->Recv(agg_node, blocks[child][m],
                       kAggCombineSession | (level << 32) | static_cast<uint64_t>(child));
        mpc::AppendBits(&input, UnpackBits(raw, static_cast<size_t>(program_.aggregate_bits)));
      }
      return input;
    };
    std::vector<std::vector<mpc::BitVector>> next_shares(next_groups,
                                                         std::vector<mpc::BitVector>(k1));
    if (config_.batch_mpc) {
      std::vector<std::pair<int, int>> roles;
      roles.reserve(static_cast<size_t>(next_groups) * k1);
      for (int g = 0; g < next_groups; g++) {
        for (int m = 0; m < k1; m++) {
          roles.emplace_back(g, m);
        }
      }
      RunBatchedPhase(
          roles, [&](int g, int m) { return next_blocks[g][m]; },
          [&](int g, int m) {
            int size = std::min(p, g * fanout + fanout) - g * fanout;
            const circuit::EvalPlan& plan = combine_plan_for(size);
            mpc::TripleSource* source = TripleSourceFor(
                kAggTripleTag + 1 + (level << 20) + static_cast<uint64_t>(g), m, next_blocks[g]);
            mpc::BatchInstance item;
            item.plan = &plan;
            item.parties = next_blocks[g];
            item.my_index = m;
            if (plan.stats().num_and > 0) {
              item.triples = source->Generate(plan.stats().num_and);
            }
            item.input_shares = combine_input(g, m, next_blocks);
            item.order_key = static_cast<uint64_t>(g);
            return item;
          },
          [&](size_t i, const mpc::BitVector& output) {
            next_shares[roles[i].first][roles[i].second] = output;
          },
          /*count_rounds=*/false);
    } else {
      RunGrouped(static_cast<size_t>(next_groups), static_cast<size_t>(k1),
                 [&](size_t gg, size_t mm) {
                   int g = static_cast<int>(gg);
                   int m = static_cast<int>(mm);
                   int size = std::min(p, g * fanout + fanout) - g * fanout;
                   const circuit::EvalPlan& plan = combine_plan_for(size);
                   net::SessionId session =
                       kAggEvalSession | (level << 32) | static_cast<uint64_t>(g);
                   mpc::TripleSource* triples = TripleSourceFor(
                       kAggTripleTag + 1 + (level << 20) + static_cast<uint64_t>(g), m,
                       next_blocks[g]);
                   mpc::GmwParty party(net_.get(), next_blocks[g], m, triples, session);
                   next_shares[g][m] = party.Eval(plan, combine_input(g, m, next_blocks));
                   triples_consumed_.fetch_add(plan.stats().num_and, std::memory_order_relaxed);
                 });
    }
    blocks = std::move(next_blocks);
    shares = std::move(next_shares);
    level++;
  }

  // Root: combine the remaining partials and add the output noise.
  int p = static_cast<int>(shares.size());
  for (int g = 0; g < p; g++) {
    for (int m = 0; m < k1; m++) {
      net_->Send(blocks[g][m], setup_.aggregation_block[m], PackBits(shares[g][m]),
                 kAggCombineSession | (level << 32) | static_cast<uint64_t>(g));
    }
  }
  circuit::Circuit combine_circuit = BuildCombineCircuit(program_, p, /*with_noise=*/true);
  last_aggregate_ands_ += combine_circuit.stats().num_and;
  std::vector<int64_t> results(k1, 0);
  RunGrouped(1, static_cast<size_t>(k1), [&](size_t, size_t m_flat) {
    int m = static_cast<int>(m_flat);
    int root_node = setup_.aggregation_block[m];
    mpc::BitVector input;
    for (int g = 0; g < p; g++) {
      Bytes raw = net_->Recv(root_node, blocks[g][m],
                             kAggCombineSession | (level << 32) | static_cast<uint64_t>(g));
      mpc::AppendBits(&input, UnpackBits(raw, static_cast<size_t>(program_.aggregate_bits)));
    }
    auto prg = RolePrg(0x66, m_flat);
    size_t noise_bits = dp::NoiseInputBits(program_.output_noise);
    for (size_t b = 0; b < noise_bits; b++) {
      input.push_back(prg.NextBit() ? 1 : 0);
    }
    mpc::TripleSource* triples = TripleSourceFor(kAggTripleTag, m, setup_.aggregation_block);
    mpc::GmwParty party(net_.get(), setup_.aggregation_block, m, triples, kAggEvalSession);
    mpc::BitVector out_shares = party.Eval(combine_circuit, input);
    triples_consumed_.fetch_add(combine_circuit.stats().num_and, std::memory_order_relaxed);
    mpc::BitVector opened = party.Open(out_shares);
    results[m] = mpc::BitsToSignedWord(opened, 0, program_.aggregate_bits);
  });
  return results[0];
}

int64_t Runtime::AggregatePhase() {
  if (config_.aggregation_fanout > 0) {
    return AggregateTree();
  }
  return AggregateSingleLevel();
}

int64_t Runtime::Run(const std::vector<mpc::BitVector>& initial_states, RunMetrics* metrics) {
  DSTRESS_CHECK(static_cast<int>(initial_states.size()) == graph_.num_vertices());
  RunMetrics local;
  RunMetrics* m = metrics != nullptr ? metrics : &local;
  *m = RunMetrics{};
  m->iterations = program_.iterations;
  m->update_and_gates = update_circuit_.stats().num_and;
  m->update_and_depth = update_circuit_.stats().and_depth;
  triples_consumed_.store(0, std::memory_order_relaxed);
  compute_rounds_.store(0, std::memory_order_relaxed);

  Stopwatch total;
  uint64_t bytes_before = net_->TotalBytes();
  uint64_t base_ots_before = ot::BaseOtExecutionCount();
  mpc::TripleFactoryStats factory_before;
  if (triple_factory_ != nullptr) {
    factory_before = triple_factory_->stats();
  }

  // Offline wave for the first computation step; the per-iteration
  // enqueues below keep the factory one phase ahead of the online plane.
  EnqueueComputeWave(/*num_scenarios=*/1);

  Stopwatch phase;
  int start_iteration = 0;
  if (config_.resume) {
    // Rejoin at the checkpointed iteration barrier: the share arrays and
    // dealer tapes replace the init phase (docs/ha.md).
    start_iteration = RestoreCheckpoint();
    m->resumed_from_iteration = start_iteration;
    m->init.seconds = phase.ElapsedSeconds();
  } else {
    InitPhase(initial_states);
    m->init.seconds = phase.ElapsedSeconds();
    m->init.bytes = net_->TotalBytes() - bytes_before;
  }

  uint64_t phase_bytes = net_->TotalBytes();
  for (int iter = start_iteration; iter < program_.iterations; iter++) {
    // Prefetch the NEXT computation step's triples (the loop's next
    // iteration, or the final step after it) while this iteration's online
    // phases evaluate.
    EnqueueComputeWave(/*num_scenarios=*/1);

    phase.Reset();
    ComputePhase();
    m->compute.seconds += phase.ElapsedSeconds();
    m->compute.bytes += net_->TotalBytes() - phase_bytes;
    phase_bytes = net_->TotalBytes();

    phase.Reset();
    CommunicatePhase();
    m->communicate.seconds += phase.ElapsedSeconds();
    m->communicate.bytes += net_->TotalBytes() - phase_bytes;
    phase_bytes = net_->TotalBytes();

    if (config_.checkpoint_every > 0 && (iter + 1) % config_.checkpoint_every == 0) {
      SaveCheckpoint(iter + 1, m);
    }
  }
  // Final computation step (§3.6). Its triples were enqueued by the last
  // loop iteration (or the pre-loop enqueue when iterations == 0); the
  // aggregation wave overlaps this step.
  EnqueueAggregateWave(/*num_scenarios=*/1);
  phase.Reset();
  ComputePhase();
  m->compute.seconds += phase.ElapsedSeconds();
  m->compute.bytes += net_->TotalBytes() - phase_bytes;
  phase_bytes = net_->TotalBytes();

  phase.Reset();
  last_aggregate_ands_ = 0;
  int64_t result = AggregatePhase();
  m->aggregate_and_gates = last_aggregate_ands_;
  m->aggregate.seconds = phase.ElapsedSeconds();
  m->aggregate.bytes = net_->TotalBytes() - phase_bytes;

  m->total_seconds = total.ElapsedSeconds();
  m->total_bytes = net_->TotalBytes() - bytes_before;
  m->avg_bytes_per_node = static_cast<double>(m->total_bytes) / graph_.num_vertices();
  m->update_rounds = compute_rounds_.load(std::memory_order_relaxed);
  m->triples_consumed = triples_consumed_.load(std::memory_order_relaxed);
  m->ha_control_bytes = net_->HaControlBytes();
  m->ha_resumes = net_->HaResumeCount();
  m->base_ot_executions = ot::BaseOtExecutionCount() - base_ots_before;
  if (triple_factory_ != nullptr) {
    mpc::TripleFactoryStats fs = triple_factory_->stats();
    m->offline_seconds = fs.offline_seconds - factory_before.offline_seconds;
    m->offline_wait_seconds = fs.online_wait_seconds - factory_before.online_wait_seconds;
  }
  return result;
}

// --- scenario ensemble (RunEnsemble) ---------------------------------------
//
// S scenarios advance in lockstep as extra lanes of the batched planes:
// role (s, v) lives at flat share index s*n + v, compute phases batch all
// S*n vertex instances into one EvalBatchInstances pass, transfers reuse the
// scenario-salted CommunicatePhaseBatched, and a single batched aggregation
// opens S noised figures. Scenario s's released figure equals
// Run(initial_states[s]): init-share and transfer randomness cancel out of
// opened values, and the aggregation noise is drawn from the same
// (kNoiseRoleTag, m) streams every solo run uses.

void Runtime::InitPhaseEnsemble(const std::vector<std::vector<mpc::BitVector>>& initial_states) {
  const int n = graph_.num_vertices();
  const int k1 = config_.block_size;
  const int d = program_.degree_bound;
  const int num_scenarios = static_cast<int>(initial_states.size());
  const size_t total = static_cast<size_t>(num_scenarios) * n;

  state_shares_.assign(total, std::vector<mpc::BitVector>(k1));
  inmsg_shares_.assign(
      total, std::vector<std::vector<mpc::BitVector>>(
                 d, std::vector<mpc::BitVector>(k1, mpc::BitVector(program_.message_bits, 0))));
  outmsg_shares_.assign(
      total, std::vector<std::vector<mpc::BitVector>>(
                 d, std::vector<mpc::BitVector>(k1, mpc::BitVector(program_.message_bits, 0))));

  for (int s = 0; s < num_scenarios; s++) {
    const uint64_t salt = static_cast<uint64_t>(s) << 40;
    DSTRESS_CHECK(static_cast<int>(initial_states[s].size()) == n);
    for (int v = 0; v < n; v++) {
      DSTRESS_CHECK(static_cast<int>(initial_states[s][v].size()) == program_.state_bits);
      auto prg = RolePrg(0x11, static_cast<uint64_t>(s) * n + static_cast<uint64_t>(v));
      auto shares = mpc::ShareBits(initial_states[s][v], k1, prg);
      for (int m = 0; m < k1; m++) {
        net_->Send(v, setup_.blocks[v][m], PackBits(shares[m]),
                   kInitSession | salt | static_cast<uint64_t>(v));
      }
    }
  }
  for (int s = 0; s < num_scenarios; s++) {
    const uint64_t salt = static_cast<uint64_t>(s) << 40;
    for (int v = 0; v < n; v++) {
      for (int m = 0; m < k1; m++) {
        Bytes raw = net_->Recv(setup_.blocks[v][m], v, kInitSession | salt | static_cast<uint64_t>(v));
        state_shares_[static_cast<size_t>(s) * n + v][m] =
            UnpackBits(raw, static_cast<size_t>(program_.state_bits));
      }
    }
  }
}

void Runtime::ComputePhaseEnsemble(int num_scenarios) {
  const int n = graph_.num_vertices();
  const int k1 = config_.block_size;
  const size_t num_and = update_circuit_.stats().num_and;

  std::vector<std::pair<int, int>> roles;
  roles.reserve(static_cast<size_t>(num_scenarios) * n * k1);
  for (int g = 0; g < num_scenarios * n; g++) {
    for (int m = 0; m < k1; m++) {
      roles.emplace_back(g, m);
    }
  }
  RunBatchedPhase(
      roles, [&](int g, int m) { return setup_.blocks[g % n][m]; },
      [&](int g, int m) {
        // Triple sources are shared per (vertex, member) across scenarios —
        // consumed in ascending scenario order at every member, and triple
        // randomness cancels out of opened results anyway.
        const int v = g % n;
        mpc::TripleSource* source =
            TripleSourceFor(static_cast<uint64_t>(v), m, setup_.blocks[v]);
        mpc::BatchInstance item;
        item.plan = &update_plan_;
        item.parties = setup_.blocks[v];
        item.my_index = m;
        if (num_and > 0) {
          item.triples = source->Generate(num_and);
        }
        item.input_shares = AssembleUpdateInput(g, m);
        item.order_key = static_cast<uint64_t>(g);
        return item;
      },
      [&](size_t i, const mpc::BitVector& output) {
        ScatterUpdateOutput(roles[i].first, roles[i].second, output);
      },
      /*count_rounds=*/true);
}

std::vector<int64_t> Runtime::AggregateEnsemble(int num_scenarios) {
  const int n = graph_.num_vertices();
  const int k1 = config_.block_size;
  circuit::Circuit agg_circuit = BuildAggregateCircuit(program_, n, /*with_noise=*/true);
  circuit::EvalPlan agg_plan(agg_circuit);
  const size_t num_and = agg_circuit.stats().num_and;
  last_aggregate_ands_ = num_and * static_cast<size_t>(num_scenarios);

  for (int s = 0; s < num_scenarios; s++) {
    const uint64_t salt = static_cast<uint64_t>(s) << 40;
    for (int v = 0; v < n; v++) {
      for (int m = 0; m < k1; m++) {
        net_->Send(setup_.blocks[v][m], setup_.aggregation_block[m],
                   PackBits(state_shares_[static_cast<size_t>(s) * n + v][m]),
                   kAggGatherSession | salt | static_cast<uint64_t>(v));
      }
    }
  }

  std::vector<std::pair<int, int>> roles;  // (scenario, member)
  roles.reserve(static_cast<size_t>(num_scenarios) * k1);
  for (int s = 0; s < num_scenarios; s++) {
    for (int m = 0; m < k1; m++) {
      roles.emplace_back(s, m);
    }
  }
  std::vector<std::vector<mpc::BitVector>> out_shares(num_scenarios,
                                                      std::vector<mpc::BitVector>(k1));
  RunBatchedPhase(
      roles, [&](int, int m) { return setup_.aggregation_block[m]; },
      [&](int s, int m) {
        const uint64_t salt = static_cast<uint64_t>(s) << 40;
        mpc::BitVector input;
        input.reserve(agg_circuit.num_inputs());
        for (int v = 0; v < n; v++) {
          Bytes raw = net_->Recv(setup_.aggregation_block[m], setup_.blocks[v][m],
                                 kAggGatherSession | salt | static_cast<uint64_t>(v));
          mpc::AppendBits(&input, UnpackBits(raw, static_cast<size_t>(program_.state_bits)));
        }
        // Fresh (kNoiseRoleTag, m) stream per scenario: every lane gets the
        // exact noise its solo run would draw.
        auto prg = RolePrg(kNoiseRoleTag, static_cast<uint64_t>(m));
        size_t noise_bits = dp::NoiseInputBits(program_.output_noise);
        for (size_t b = 0; b < noise_bits; b++) {
          input.push_back(prg.NextBit() ? 1 : 0);
        }
        mpc::TripleSource* source = TripleSourceFor(kAggTripleTag, m, setup_.aggregation_block);
        mpc::BatchInstance item;
        item.plan = &agg_plan;
        item.parties = setup_.aggregation_block;
        item.my_index = m;
        if (num_and > 0) {
          item.triples = source->Generate(num_and);
        }
        item.input_shares = std::move(input);
        item.order_key = static_cast<uint64_t>(s);
        return item;
      },
      [&](size_t i, const mpc::BitVector& output) {
        out_shares[roles[i].first][roles[i].second] = output;
      },
      /*count_rounds=*/false);

  // Open every scenario's noised aggregate: a full share exchange among the
  // aggregation block (every member both sends and receives, so no session
  // queue is left behind).
  for (int s = 0; s < num_scenarios; s++) {
    const uint64_t salt = static_cast<uint64_t>(s) << 40;
    for (int m = 0; m < k1; m++) {
      for (int m2 = 0; m2 < k1; m2++) {
        if (m2 == m) {
          continue;
        }
        net_->Send(setup_.aggregation_block[m], setup_.aggregation_block[m2],
                   PackBits(out_shares[s][m]),
                   kAggCombineSession | salt | static_cast<uint64_t>(m));
      }
    }
  }
  std::vector<int64_t> results(num_scenarios, 0);
  for (int s = 0; s < num_scenarios; s++) {
    const uint64_t salt = static_cast<uint64_t>(s) << 40;
    for (int m = 0; m < k1; m++) {
      mpc::BitVector opened = out_shares[s][m];
      for (int m2 = 0; m2 < k1; m2++) {
        if (m2 == m) {
          continue;
        }
        Bytes raw = net_->Recv(setup_.aggregation_block[m], setup_.aggregation_block[m2],
                               kAggCombineSession | salt | static_cast<uint64_t>(m2));
        mpc::BitVector other = UnpackBits(raw, opened.size());
        for (size_t b = 0; b < opened.size(); b++) {
          opened[b] ^= other[b];
        }
      }
      if (m == 0) {
        results[s] = mpc::BitsToSignedWord(opened, 0, program_.aggregate_bits);
      }
    }
  }
  return results;
}

std::vector<int64_t> Runtime::RunEnsemble(
    const std::vector<std::vector<mpc::BitVector>>& initial_states, RunMetrics* metrics) {
  const int num_scenarios = static_cast<int>(initial_states.size());
  DSTRESS_CHECK(num_scenarios > 0);
  if (num_scenarios == 1) {
    // Width-1 ensemble == solo run, traffic included.
    RunMetrics local;
    RunMetrics* m = metrics != nullptr ? metrics : &local;
    return {Run(initial_states[0], m)};
  }
  // S > 1 aggregates all scenarios through the flat batched aggregation;
  // the tree variant has no ensemble schedule.
  DSTRESS_CHECK(config_.aggregation_fanout == 0);

  RunMetrics local;
  RunMetrics* m = metrics != nullptr ? metrics : &local;
  *m = RunMetrics{};
  m->iterations = program_.iterations;
  m->update_and_gates = update_circuit_.stats().num_and;
  m->update_and_depth = update_circuit_.stats().and_depth;
  triples_consumed_.store(0, std::memory_order_relaxed);
  compute_rounds_.store(0, std::memory_order_relaxed);

  Stopwatch total;
  uint64_t bytes_before = net_->TotalBytes();
  uint64_t base_ots_before = ot::BaseOtExecutionCount();
  mpc::TripleFactoryStats factory_before;
  if (triple_factory_ != nullptr) {
    factory_before = triple_factory_->stats();
  }

  // Offline wave for the first computation step (all S lanes at once);
  // same prefetch schedule as Run().
  EnqueueComputeWave(num_scenarios);

  Stopwatch phase;
  InitPhaseEnsemble(initial_states);
  m->init.seconds = phase.ElapsedSeconds();
  m->init.bytes = net_->TotalBytes() - bytes_before;

  uint64_t phase_bytes = net_->TotalBytes();
  for (int iter = 0; iter < program_.iterations; iter++) {
    EnqueueComputeWave(num_scenarios);

    phase.Reset();
    ComputePhaseEnsemble(num_scenarios);
    m->compute.seconds += phase.ElapsedSeconds();
    m->compute.bytes += net_->TotalBytes() - phase_bytes;
    phase_bytes = net_->TotalBytes();

    phase.Reset();
    for (int s = 0; s < num_scenarios; s++) {
      CommunicatePhaseBatched(s);
    }
    m->communicate.seconds += phase.ElapsedSeconds();
    m->communicate.bytes += net_->TotalBytes() - phase_bytes;
    phase_bytes = net_->TotalBytes();
  }
  EnqueueAggregateWave(num_scenarios);
  phase.Reset();
  ComputePhaseEnsemble(num_scenarios);
  m->compute.seconds += phase.ElapsedSeconds();
  m->compute.bytes += net_->TotalBytes() - phase_bytes;
  phase_bytes = net_->TotalBytes();

  phase.Reset();
  last_aggregate_ands_ = 0;
  std::vector<int64_t> results = AggregateEnsemble(num_scenarios);
  m->aggregate_and_gates = last_aggregate_ands_;
  m->aggregate.seconds = phase.ElapsedSeconds();
  m->aggregate.bytes = net_->TotalBytes() - phase_bytes;

  m->total_seconds = total.ElapsedSeconds();
  m->total_bytes = net_->TotalBytes() - bytes_before;
  m->avg_bytes_per_node = static_cast<double>(m->total_bytes) / graph_.num_vertices();
  m->update_rounds = compute_rounds_.load(std::memory_order_relaxed);
  m->triples_consumed = triples_consumed_.load(std::memory_order_relaxed);
  m->ha_control_bytes = net_->HaControlBytes();
  m->ha_resumes = net_->HaResumeCount();
  m->base_ot_executions = ot::BaseOtExecutionCount() - base_ots_before;
  if (triple_factory_ != nullptr) {
    mpc::TripleFactoryStats fs = triple_factory_->stats();
    m->offline_seconds = fs.offline_seconds - factory_before.offline_seconds;
    m->offline_wait_seconds = fs.online_wait_seconds - factory_before.online_wait_seconds;
  }
  return results;
}

}  // namespace dstress::core
