#include "src/core/setup.h"

#include "src/common/check.h"

namespace dstress::core {

namespace {

// Random block containing `anchor` (at position 0) plus block_size-1 other
// distinct nodes.
std::vector<int> PickBlock(int anchor, int num_nodes, int block_size, crypto::ChaCha20Prg& prg) {
  DSTRESS_CHECK(block_size <= num_nodes);
  std::vector<int> members;
  members.reserve(block_size);
  if (anchor >= 0) {
    members.push_back(anchor);
  }
  while (static_cast<int>(members.size()) < block_size) {
    int candidate = static_cast<int>(prg.NextBelow(static_cast<uint64_t>(num_nodes)));
    bool duplicate = false;
    for (int m : members) {
      if (m == candidate) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      members.push_back(candidate);
    }
  }
  return members;
}

}  // namespace

std::vector<int> TrustedSetup::MakeExtraBlock(crypto::ChaCha20Prg& prg) const {
  return PickBlock(-1, num_nodes, block_size, prg);
}

TrustedSetup RunTrustedSetup(const SetupConfig& config, const graph::Graph& graph) {
  DSTRESS_CHECK(config.num_nodes == graph.num_vertices());
  DSTRESS_CHECK(config.block_size >= 2 && config.block_size <= config.num_nodes);

  TrustedSetup setup;
  setup.block_size = config.block_size;
  setup.num_nodes = config.num_nodes;
  setup.message_bits = config.message_bits;

  auto prg = crypto::ChaCha20Prg::FromSeed(config.seed, /*stream_id=*/0x5e79);
  // Identity keys: L key pairs per node.
  setup.node_keys.reserve(config.num_nodes);
  for (int node = 0; node < config.num_nodes; node++) {
    transfer::MemberKeys keys;
    keys.keys.reserve(config.message_bits);
    for (int b = 0; b < config.message_bits; b++) {
      keys.keys.push_back(crypto::ElGamalKeyGen(prg));
    }
    setup.node_keys.push_back(std::move(keys));
  }

  // Blocks: B_v contains v plus block_size-1 random distinct nodes.
  setup.blocks.reserve(config.num_nodes);
  for (int v = 0; v < config.num_nodes; v++) {
    setup.blocks.push_back(PickBlock(v, config.num_nodes, config.block_size, prg));
  }
  setup.aggregation_block = PickBlock(-1, config.num_nodes, config.block_size, prg);

  // Neighbor keys: one per in-edge slot of each node. (The paper issues a
  // full set of D keys per node; keys for unused slots would simply never
  // be exercised, so we materialize only the in-degree many.)
  setup.neighbor_keys.resize(config.num_nodes);
  for (int j = 0; j < config.num_nodes; j++) {
    int slots = graph.InDegree(j);
    setup.neighbor_keys[j].reserve(slots);
    for (int d = 0; d < slots; d++) {
      setup.neighbor_keys[j].push_back(prg.NextScalar(crypto::CurveOrder()));
    }
  }

  // Edge certificates: for edge (i, j) at j's in-slot d, blind B_j's member
  // public keys with neighbor key n^j_d.
  for (int j = 0; j < config.num_nodes; j++) {
    const auto& in_neighbors = graph.InNeighbors(j);
    for (size_t d = 0; d < in_neighbors.size(); d++) {
      int i = in_neighbors[d];
      transfer::BlockPublicKeys publics;
      publics.reserve(config.block_size);
      for (int member : setup.blocks[j]) {
        std::vector<crypto::ElGamalPublicKey> row;
        row.reserve(config.message_bits);
        for (const auto& kp : setup.node_keys[member].keys) {
          row.push_back(kp.pub);
        }
        publics.push_back(std::move(row));
      }
      setup.edge_certificates.emplace(
          std::make_pair(i, j),
          transfer::MakeBlockCertificate(publics, setup.neighbor_keys[j][d]));
    }
  }
  return setup;
}

}  // namespace dstress::core
