// Trusted-party setup (paper §3.4).
//
// Before a graph can be processed, an offline trusted party (e.g. the
// Federal Reserve in the systemic-risk deployment):
//
//  1. collects each node's public ElGamal keys (L of them, one per message
//     bit — the Kurosawa optimization) and D secret neighbor keys;
//  2. assigns every node i a block B_i of k+1 nodes including i (random
//     membership prevents Sybil-packed blocks), plus the aggregation
//     block(s);
//  3. issues, for each node j and each of its in-edge slots d, a block
//     certificate: B_j's member public keys re-randomized with j's d-th
//     neighbor key. Node j hands the certificate to the in-neighbor using
//     slot d, which distributes it to its own block members.
//
// The TP never learns the topology: it hands node j D certificates
// regardless of j's real degree (unused ones are discarded). In this
// simulation the setup object is constructed centrally and the runtime
// accesses exactly the fields each role would hold; the TP's signatures are
// modeled by provenance.
#ifndef SRC_CORE_SETUP_H_
#define SRC_CORE_SETUP_H_

#include <map>
#include <utility>
#include <vector>

#include "src/crypto/chacha20.h"
#include "src/graph/graph.h"
#include "src/transfer/transfer.h"

namespace dstress::core {

struct SetupConfig {
  int num_nodes = 0;
  int block_size = 8;  // k+1
  int message_bits = 12;
  uint64_t seed = 1;
};

struct TrustedSetup {
  // blocks[v] = node ids of B_v; blocks[v][0] == v.
  std::vector<std::vector<int>> blocks;
  // Root aggregation block B_A.
  std::vector<int> aggregation_block;
  // Identity key material: node_keys[node] holds that node's L key pairs.
  // (Each node would of course only hold its own entry; the runtime indexes
  // this per role.)
  std::vector<transfer::MemberKeys> node_keys;
  // neighbor_keys[j][d]: node j's secret neighbor key for in-edge slot d.
  std::vector<std::vector<crypto::U256>> neighbor_keys;
  // Certificate held by the members of B_i for the directed edge (i, j):
  // B_j's member keys blinded with j's neighbor key for i's slot.
  std::map<std::pair<int, int>, transfer::BlockCertificate> edge_certificates;

  // Picks a fresh random block of `block_size` nodes (used for aggregation
  // tree levels).
  std::vector<int> MakeExtraBlock(crypto::ChaCha20Prg& prg) const;

  int block_size = 0;
  int num_nodes = 0;
  int message_bits = 0;
};

TrustedSetup RunTrustedSetup(const SetupConfig& config, const graph::Graph& graph);

}  // namespace dstress::core

#endif  // SRC_CORE_SETUP_H_
