// Differential-privacy noise samplers over the cryptographic PRG.
//
// Two mechanisms appear in DStress:
//  * the Laplace mechanism on the final aggregate (paper §3.1, §3.6) —
//    realized here in its discrete form, the two-sided geometric mechanism
//    of Ghosh et al., which is what the paper's Appendix B analysis uses and
//    what a boolean circuit can sample exactly;
//  * two-sided geometric masking noise inside the message-transfer protocol
//    (§3.5 "Final protocol": i adds an even draw from 2·Geo(α^{2/(k+1)})).
#ifndef SRC_DP_SAMPLERS_H_
#define SRC_DP_SAMPLERS_H_

#include <cstdint>

#include "src/crypto/chacha20.h"

namespace dstress::dp {

// Uniform double in [0, 1) from 53 PRG bits.
double UniformUnit(crypto::ChaCha20Prg& prg);

// Continuous Laplace(b) variate (used by utility analyses, not protocols).
double LaplaceSample(crypto::ChaCha20Prg& prg, double scale);

// One-sided geometric: failures before first success, success prob p.
int64_t GeometricSample(crypto::ChaCha20Prg& prg, double p);

// Two-sided geometric with parameter alpha in (0,1):
//   P(Y = d) = (1-alpha)/(1+alpha) * alpha^|d|.
// Sampled as the difference of two iid one-sided geometrics with
// p = 1 - alpha. This is the discrete Laplace distribution.
int64_t TwoSidedGeometricSample(crypto::ChaCha20Prg& prg, double alpha);

// The even masking noise of the transfer protocol: 2 * TwoSidedGeometric.
int64_t EvenGeometricMask(crypto::ChaCha20Prg& prg, double alpha);

// Epsilon-DP release of an integer-valued query with sensitivity
// `sensitivity`: value + TwoSidedGeometric(exp(-epsilon / sensitivity)).
int64_t GeometricMechanism(crypto::ChaCha20Prg& prg, int64_t value, double sensitivity,
                           double epsilon);

}  // namespace dstress::dp

#endif  // SRC_DP_SAMPLERS_H_
