// In-MPC noise generation (the "noising" circuit of Figures 3/4).
//
// DStress never lets any party see the unnoised aggregate: the aggregation
// block draws the Laplace noise *inside* MPC from jointly contributed
// randomness (paper §3.6, citing the Dwork et al. EUROCRYPT'06 circuit).
// This module builds that circuit for the discrete (two-sided geometric)
// Laplace:
//
//  * Each member of the aggregation block feeds its own uniform random bits
//    directly as its GMW input *shares*; the shared bit value is then the
//    XOR of all members' bits, which is uniform as long as one member is
//    honest — this realizes "combine the random shares to get a random
//    input seed" with zero gates.
//  * A one-sided geometric variate Y with parameter beta has independent
//    binary digits: P(digit_i = 1) = beta^(2^i) / (1 + beta^(2^i)). Each
//    digit is produced by comparing a fresh t-bit uniform word against a
//    public threshold (a constant comparator, heavily constant-folded).
//  * The released noise is the difference of two such variates — the
//    two-sided geometric / discrete Laplace of Ghosh et al., which is the
//    distribution the paper's Appendix B analyzes.
//
// Truncating magnitudes to `magnitude_bits` and thresholds to
// `threshold_bits` perturbs the distribution by at most
// 2*beta^(2^magnitude_bits) + magnitude_bits*2^-threshold_bits in total
// variation — negligible at the default 16/16.
#ifndef SRC_DP_NOISE_CIRCUIT_H_
#define SRC_DP_NOISE_CIRCUIT_H_

#include "src/circuit/builder.h"

namespace dstress::dp {

struct NoiseCircuitSpec {
  double alpha = 0.5;      // two-sided geometric parameter (e^-eps/sens)
  int magnitude_bits = 16;  // digits per one-sided variate
  int threshold_bits = 16;  // uniform bits per biased digit
};

// Uniform input bits the circuit consumes (all created as fresh inputs, in
// order, by BuildGeometricNoise).
size_t NoiseInputBits(const NoiseCircuitSpec& spec);

// Appends the sampler to `builder`, creating NoiseInputBits() new inputs,
// and returns the signed noise word (two's complement, `out_bits` wide).
circuit::Word BuildGeometricNoise(circuit::Builder& builder, const NoiseCircuitSpec& spec,
                                  int out_bits);

// Reference plaintext sampler with the same digit-wise construction, used
// by tests to cross-validate the circuit against dp::TwoSidedGeometricSample.
int64_t DigitwiseGeometricRef(const NoiseCircuitSpec& spec, const std::vector<uint8_t>& bits);

}  // namespace dstress::dp

#endif  // SRC_DP_NOISE_CIRCUIT_H_
