// Budget-gated query release: the §4.5 deployment loop in one object.
//
// A regulator holds a yearly privacy budget (eps_max = ln 2 in the paper),
// replenished annually because banks retrospectively disclose aggregates
// anyway. Every released statistic must (a) be charged against the budget
// *before* the value is produced, and (b) be refused once the budget is
// exhausted — returning no value at all, since even a refusal calibrated on
// the data would leak. ReleaseManager enforces that discipline around the
// geometric mechanism and keeps an audit trail of what was spent on what.
//
// Note: inside a DStress run the noise is drawn in-MPC (src/dp
// noise_circuit) so no party sees the raw aggregate; this host-side manager
// models the *regulator-side* accounting across runs, and is also usable
// standalone for non-MPC analyses.
#ifndef SRC_DP_RELEASE_H_
#define SRC_DP_RELEASE_H_

#include <optional>
#include <string>
#include <vector>

#include "src/crypto/chacha20.h"
#include "src/dp/edge_privacy.h"

namespace dstress::dp {

struct ReleaseRecord {
  std::string label;
  double epsilon = 0;
  double sensitivity = 0;
  int64_t released_value = 0;
};

class ReleaseManager {
 public:
  ReleaseManager(double yearly_budget, uint64_t seed)
      : accountant_(yearly_budget), prg_(crypto::ChaCha20Prg::FromSeed(seed)) {}

  // Releases value + TwoSidedGeometric noise under (epsilon, sensitivity),
  // charging the budget first. Returns std::nullopt (and charges nothing)
  // if the remaining budget cannot cover epsilon.
  std::optional<int64_t> Release(const std::string& label, int64_t value, double sensitivity,
                                 double epsilon);

  // Ensemble composition: an ensemble of `count` scenarios each released at
  // epsilon_each composes (sequential composition) to count * epsilon_each.
  // Charges the composed epsilon atomically — either the whole ensemble fits
  // in the remaining budget and is charged, or nothing is charged, false is
  // returned, and *error names the overrun (composed eps, remaining budget,
  // and by how much the ensemble exceeds it). The per-scenario charges are
  // recorded in history() as "<label>[k/count]" entries so the audit trail
  // stays per-release.
  bool ChargeEnsemble(const std::string& label, int count, double epsilon_each,
                      std::string* error);

  // New budget year (paper: replenished once per year).
  void Replenish() { accountant_.Replenish(); }

  double remaining_budget() const { return accountant_.remaining(); }
  double spent_budget() const { return accountant_.spent(); }
  const std::vector<ReleaseRecord>& history() const { return history_; }

 private:
  PrivacyAccountant accountant_;
  crypto::ChaCha20Prg prg_;
  std::vector<ReleaseRecord> history_;
};

}  // namespace dstress::dp

#endif  // SRC_DP_RELEASE_H_
