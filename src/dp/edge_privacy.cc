#include "src/dp/edge_privacy.h"

#include <cmath>

#include "src/common/check.h"

namespace dstress::dp {

int TransferSensitivity(int collusion_bound_k) { return collusion_bound_k + 1; }

double TotalTransfers(const TransferAccountingParams& p) {
  double block = static_cast<double>(p.collusion_bound_k + 1);
  return static_cast<double>(p.years) * p.runs_per_year * p.iterations * p.num_nodes *
         p.degree_bound * p.message_bits * block * block;
}

double FailureProbability(double alpha_effective, int64_t lookup_entries) {
  DSTRESS_CHECK(alpha_effective > 0 && alpha_effective < 1);
  // Exact two-sided-geometric tail: P(|Y| > Nl/2) = 2*a^(Nl/2 + 1)/(1 + a).
  // (The closed form printed in the paper's Appendix B, (2*a^(Nl/2)+a-1)/
  // (1+a), contains an algebraic slip — it goes negative for a near 1; the
  // tail above reproduces the appendix's own concrete eps = 2.34e-7.)
  // Computed in log space to dodge underflow for large tables.
  double log_pow =
      (static_cast<double>(lookup_entries) / 2.0 + 1.0) * std::log(alpha_effective);
  double pow_term = (log_pow < -745.0) ? 0.0 : std::exp(log_pow);
  double p = 2.0 * pow_term / (1.0 + alpha_effective);
  if (p > 1) {
    p = 1;
  }
  return p;
}

double MaxAlphaForFailureBudget(int64_t lookup_entries, double total_transfers) {
  DSTRESS_CHECK(lookup_entries > 2);
  DSTRESS_CHECK(total_transfers >= 1);
  double target = 1.0 / total_transfers;
  // FailureProbability is increasing in alpha; bisect on (0, 1).
  double lo = 1e-12;
  double hi = 1.0 - 1e-15;
  if (FailureProbability(hi, lookup_entries) <= target) {
    return hi;
  }
  for (int iter = 0; iter < 200; iter++) {
    double mid = 0.5 * (lo + hi);
    if (FailureProbability(mid, lookup_entries) <= target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

int64_t RequiredLookupEntries(double alpha_effective, double max_failure_probability) {
  DSTRESS_CHECK(alpha_effective > 0 && alpha_effective < 1);
  DSTRESS_CHECK(max_failure_probability > 0 && max_failure_probability < 1);
  // Solve 2·a^(Nl/2 + 1)/(1 + a) <= p for Nl:
  //   Nl >= 2·(log(p·(1 + a)/2)/log(a) - 1).
  double needed =
      2.0 * (std::log(max_failure_probability * (1.0 + alpha_effective) / 2.0) /
                 std::log(alpha_effective) -
             1.0);
  if (needed < 2) {
    return 2;
  }
  return static_cast<int64_t>(std::ceil(needed));
}

double PerIterationEpsilon(int collusion_bound_k, int message_bits,
                           double epsilon_per_transfer) {
  // k colluding receivers each observe (k+1)·L sums per edge per iteration.
  return static_cast<double>(collusion_bound_k) * (collusion_bound_k + 1) * message_bits *
         epsilon_per_transfer;
}

double YearlyEpsilon(const TransferAccountingParams& p, double epsilon_per_transfer) {
  return PerIterationEpsilon(p.collusion_bound_k, p.message_bits, epsilon_per_transfer) *
         p.runs_per_year * p.iterations;
}

TransferBudgetReport EvaluateTransferBudget(const TransferAccountingParams& p) {
  TransferBudgetReport report;
  report.total_transfers = TotalTransfers(p);
  report.alpha_max = MaxAlphaForFailureBudget(p.lookup_entries, report.total_transfers);
  report.epsilon_per_transfer = -std::log(report.alpha_max);
  report.per_iteration_epsilon =
      PerIterationEpsilon(p.collusion_bound_k, p.message_bits, report.epsilon_per_transfer);
  report.yearly_epsilon = YearlyEpsilon(p, report.epsilon_per_transfer);
  report.failure_probability = FailureProbability(report.alpha_max, p.lookup_entries);
  return report;
}

bool PrivacyAccountant::Charge(double epsilon) {
  DSTRESS_CHECK(epsilon >= 0);
  if (spent_ + epsilon > budget_ + 1e-12) {
    return false;
  }
  spent_ += epsilon;
  return true;
}

}  // namespace dstress::dp
