#include "src/dp/noise_circuit.h"

#include <cmath>

#include "src/common/check.h"

namespace dstress::dp {

namespace {

using circuit::Builder;
using circuit::Wire;
using circuit::Word;

// Threshold for digit i: round(q_i * 2^t) with q_i = beta^(2^i)/(1+beta^(2^i)).
uint64_t DigitThreshold(double alpha, int digit, int threshold_bits) {
  // beta^(2^digit) in log space to dodge underflow.
  double log_pow = std::pow(2.0, digit) * std::log(alpha);
  double p = (log_pow < -745.0) ? 0.0 : std::exp(log_pow);
  double q = p / (1.0 + p);
  double scaled = q * std::pow(2.0, threshold_bits);
  uint64_t threshold = static_cast<uint64_t>(std::llround(scaled));
  uint64_t max = 1ULL << threshold_bits;
  if (threshold > max) {
    threshold = max;
  }
  return threshold;
}

}  // namespace

size_t NoiseInputBits(const NoiseCircuitSpec& spec) {
  return static_cast<size_t>(2) * spec.magnitude_bits * spec.threshold_bits;
}

circuit::Word BuildGeometricNoise(Builder& builder, const NoiseCircuitSpec& spec, int out_bits) {
  DSTRESS_CHECK(spec.alpha > 0 && spec.alpha < 1);
  DSTRESS_CHECK(spec.magnitude_bits > 0 && spec.threshold_bits > 0 && spec.threshold_bits <= 62);
  DSTRESS_CHECK(out_bits > spec.magnitude_bits);  // room for the sign

  auto sample_one_sided = [&]() -> Word {
    Word magnitude(spec.magnitude_bits);
    for (int digit = 0; digit < spec.magnitude_bits; digit++) {
      Word uniform = builder.InputWord(spec.threshold_bits);
      uint64_t threshold = DigitThreshold(spec.alpha, digit, spec.threshold_bits);
      if (threshold == 0) {
        // The digit is (almost surely) zero; the inputs are still consumed
        // so the input layout stays independent of alpha.
        magnitude[digit] = builder.Zero();
      } else {
        Word bound = builder.ConstWord(threshold, spec.threshold_bits);
        magnitude[digit] = builder.Ult(uniform, bound);
      }
    }
    return magnitude;
  };

  Word pos = sample_one_sided();
  Word neg = sample_one_sided();
  Word wide_pos = builder.ZeroExtend(pos, out_bits);
  Word wide_neg = builder.ZeroExtend(neg, out_bits);
  return builder.Sub(wide_pos, wide_neg);
}

int64_t DigitwiseGeometricRef(const NoiseCircuitSpec& spec, const std::vector<uint8_t>& bits) {
  DSTRESS_CHECK(bits.size() == NoiseInputBits(spec));
  size_t cursor = 0;
  auto sample = [&]() -> int64_t {
    int64_t magnitude = 0;
    for (int digit = 0; digit < spec.magnitude_bits; digit++) {
      uint64_t uniform = 0;
      for (int b = 0; b < spec.threshold_bits; b++) {
        uniform |= static_cast<uint64_t>(bits[cursor++] & 1) << b;
      }
      uint64_t threshold = DigitThreshold(spec.alpha, digit, spec.threshold_bits);
      if (threshold != 0 && uniform < threshold) {
        magnitude |= 1LL << digit;
      }
    }
    return magnitude;
  };
  int64_t pos = sample();
  int64_t neg = sample();
  return pos - neg;
}

}  // namespace dstress::dp
