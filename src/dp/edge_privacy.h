// Edge-privacy accounting for the message-transfer protocol — a direct
// implementation of the paper's Appendix B formulas.
//
// Every bit-share transfer from block B_i to B_j is treated as a query
// Q_(i,j) on the graph with global sensitivity Δ = k+1 (the number of
// members whose 0/1 subshare bits enter the revealed sum). Node i masks the
// sum with 2·Geo(α^{2/Δ}) noise, so each transfer is (−ln α)-DP. The
// accountant below tracks:
//
//  * failure probability P_fail that the noised exponent falls outside the
//    ElGamal lookup table (Appendix B, the N_l-entry table bound),
//  * the largest α compatible with a target failure rate over N_q
//    transfers,
//  * per-iteration and yearly budget spend k·(k+1)·L·ε.
#ifndef SRC_DP_EDGE_PRIVACY_H_
#define SRC_DP_EDGE_PRIVACY_H_

#include <cstdint>

namespace dstress::dp {

struct TransferAccountingParams {
  int collusion_bound_k = 19;     // k; block size is k+1
  int message_bits = 16;          // L
  int iterations = 11;            // I
  int runs_per_year = 3;          // R
  int num_nodes = 1750;           // N
  int degree_bound = 100;         // D
  int years = 10;                 // Y (horizon for the failure budget)
  int64_t lookup_entries = 230'000'000;  // N_l (8 GB of table per Appendix B)
};

// Sensitivity Δ of one bit-share transfer: k+1.
int TransferSensitivity(int collusion_bound_k);

// Total number of bit-share transfers N_q = Y·R·I·N·D·L·(k+1)^2.
double TotalTransfers(const TransferAccountingParams& p);

// P_fail for a lookup table of N_l entries under noise parameter `alpha`
// (the per-transfer two-sided-geometric parameter after the 2/Δ exponent is
// applied): P_fail = (2·a^(N_l/2) + a − 1)/(1 + a) clipped to [0,1], where
// a = alpha_effective.
double FailureProbability(double alpha_effective, int64_t lookup_entries);

// Largest alpha (per-transfer epsilon = −ln alpha) such that the expected
// number of lookup failures over N_q transfers is at most one. Solved by
// bisection on the Appendix B inequality.
double MaxAlphaForFailureBudget(int64_t lookup_entries, double total_transfers);

// Inverse of FailureProbability in the table dimension: the smallest N_l
// such that a table of N_l entries keeps the per-transfer failure
// probability at or below `max_failure_probability` for the given effective
// alpha. Callers sizing a DlogTable (half-range r, N_l = 2r+1 entries) want
// r = RequiredLookupEntries(..)/2 plus slack for the un-noised bit sum.
int64_t RequiredLookupEntries(double alpha_effective, double max_failure_probability);

// Privacy cost of one DStress iteration against an adversary watching one
// edge: the adversary's colluding members observe k·(k+1)·L noised sums.
double PerIterationEpsilon(int collusion_bound_k, int message_bits, double epsilon_per_transfer);

// Yearly spend: R·I iterations per year.
double YearlyEpsilon(const TransferAccountingParams& p, double epsilon_per_transfer);

// End-to-end evaluation used by the Appendix B bench: computes N_q,
// alpha_max, per-transfer epsilon, per-iteration and yearly budget use.
struct TransferBudgetReport {
  double total_transfers = 0;
  double alpha_max = 0;
  double epsilon_per_transfer = 0;
  double per_iteration_epsilon = 0;
  double yearly_epsilon = 0;
  double failure_probability = 0;
};
TransferBudgetReport EvaluateTransferBudget(const TransferAccountingParams& p);

// Simple additive privacy-budget accountant for the output mechanism
// (§4.5): budget eps_max = ln 2 replenished yearly, each query spending
// eps_query.
class PrivacyAccountant {
 public:
  explicit PrivacyAccountant(double budget) : budget_(budget) {}

  double budget() const { return budget_; }
  double spent() const { return spent_; }
  double remaining() const { return budget_ - spent_; }

  // Returns false (and charges nothing) if the charge exceeds the remaining
  // budget.
  bool Charge(double epsilon);
  void Replenish() { spent_ = 0; }

 private:
  double budget_;
  double spent_ = 0;
};

}  // namespace dstress::dp

#endif  // SRC_DP_EDGE_PRIVACY_H_
