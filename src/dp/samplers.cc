#include "src/dp/samplers.h"

#include <cmath>

#include "src/common/check.h"

namespace dstress::dp {

double UniformUnit(crypto::ChaCha20Prg& prg) {
  return static_cast<double>(prg.NextU64() >> 11) * 0x1.0p-53;
}

double LaplaceSample(crypto::ChaCha20Prg& prg, double scale) {
  DSTRESS_CHECK(scale > 0);
  // Difference of two exponentials.
  double u1 = UniformUnit(prg);
  double u2 = UniformUnit(prg);
  while (u1 <= 0.0) {
    u1 = UniformUnit(prg);
  }
  while (u2 <= 0.0) {
    u2 = UniformUnit(prg);
  }
  return scale * (std::log(u1) - std::log(u2));
}

int64_t GeometricSample(crypto::ChaCha20Prg& prg, double p) {
  DSTRESS_CHECK(p > 0 && p <= 1);
  if (p == 1.0) {
    return 0;
  }
  double u = UniformUnit(prg);
  while (u <= 0.0) {
    u = UniformUnit(prg);
  }
  return static_cast<int64_t>(std::floor(std::log(u) / std::log(1.0 - p)));
}

int64_t TwoSidedGeometricSample(crypto::ChaCha20Prg& prg, double alpha) {
  DSTRESS_CHECK(alpha > 0 && alpha < 1);
  return GeometricSample(prg, 1.0 - alpha) - GeometricSample(prg, 1.0 - alpha);
}

int64_t EvenGeometricMask(crypto::ChaCha20Prg& prg, double alpha) {
  return 2 * TwoSidedGeometricSample(prg, alpha);
}

int64_t GeometricMechanism(crypto::ChaCha20Prg& prg, int64_t value, double sensitivity,
                           double epsilon) {
  DSTRESS_CHECK(sensitivity > 0 && epsilon > 0);
  double alpha = std::exp(-epsilon / sensitivity);
  return value + TwoSidedGeometricSample(prg, alpha);
}

}  // namespace dstress::dp
