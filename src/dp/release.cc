#include "src/dp/release.h"

#include "src/common/check.h"
#include "src/dp/samplers.h"

namespace dstress::dp {

std::optional<int64_t> ReleaseManager::Release(const std::string& label, int64_t value,
                                               double sensitivity, double epsilon) {
  DSTRESS_CHECK(sensitivity > 0);
  DSTRESS_CHECK(epsilon > 0);
  if (!accountant_.Charge(epsilon)) {
    return std::nullopt;
  }
  int64_t released = GeometricMechanism(prg_, value, sensitivity, epsilon);
  history_.push_back(ReleaseRecord{label, epsilon, sensitivity, released});
  return released;
}

}  // namespace dstress::dp
