#include "src/dp/release.h"

#include <cstdio>

#include "src/common/check.h"
#include "src/dp/samplers.h"

namespace dstress::dp {

std::optional<int64_t> ReleaseManager::Release(const std::string& label, int64_t value,
                                               double sensitivity, double epsilon) {
  DSTRESS_CHECK(sensitivity > 0);
  DSTRESS_CHECK(epsilon > 0);
  if (!accountant_.Charge(epsilon)) {
    return std::nullopt;
  }
  int64_t released = GeometricMechanism(prg_, value, sensitivity, epsilon);
  history_.push_back(ReleaseRecord{label, epsilon, sensitivity, released});
  return released;
}

bool ReleaseManager::ChargeEnsemble(const std::string& label, int count, double epsilon_each,
                                    std::string* error) {
  DSTRESS_CHECK(count > 0);
  DSTRESS_CHECK(epsilon_each > 0);
  const double composed = static_cast<double>(count) * epsilon_each;
  const double remaining = accountant_.remaining();
  if (composed > remaining) {
    if (error != nullptr) {
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "ensemble '%s': composed epsilon %.6g (%d scenarios x %.6g) exceeds "
                    "remaining budget %.6g by %.6g; refusing release",
                    label.c_str(), composed, count, epsilon_each, remaining,
                    composed - remaining);
      *error = buf;
    }
    return false;
  }
  DSTRESS_CHECK(accountant_.Charge(composed));
  for (int k = 0; k < count; k++) {
    history_.push_back(ReleaseRecord{label + "[" + std::to_string(k) + "/" +
                                         std::to_string(count) + "]",
                                     epsilon_each, /*sensitivity=*/0, /*released_value=*/0});
  }
  if (error != nullptr) {
    error->clear();
  }
  return true;
}

}  // namespace dstress::dp
