#include "src/transfer/transfer.h"

#include <cmath>

#include "src/common/check.h"
#include "src/dp/edge_privacy.h"
#include "src/dp/samplers.h"
#include "src/net/channel.h"

namespace dstress::transfer {

namespace {

using crypto::EcPoint;

void WritePoint(ByteWriter& writer, const EcPoint& point) {
  auto compressed = point.Compress();
  writer.Raw(compressed.data(), compressed.size());
}

EcPoint ReadPoint(ByteReader& reader) {
  uint8_t raw[EcPoint::kCompressedSize];
  reader.Raw(raw, sizeof(raw));
  auto point = EcPoint::Decompress(raw);
  DSTRESS_CHECK(point.has_value());
  return *point;
}

}  // namespace

double TransferParams::EffectiveAlpha() const {
  return std::pow(budget_alpha, 2.0 / block_size);
}

int64_t TransferParams::RecommendedDlogRange(double max_failure_probability) const {
  // The table must absorb the even geometric mask (tail bounded by
  // RequiredLookupEntries) plus the raw bit sum, which lies in
  // [0, block_size].
  return dp::RequiredLookupEntries(EffectiveAlpha(), max_failure_probability) / 2 + block_size;
}

BlockKeys TransferSetup(int block_size, int message_bits, crypto::ChaCha20Prg& prg) {
  BlockKeys out;
  out.members.resize(block_size);
  for (auto& member : out.members) {
    member.keys.reserve(message_bits);
    for (int b = 0; b < message_bits; b++) {
      member.keys.push_back(crypto::ElGamalKeyGen(prg));
    }
  }
  return out;
}

BlockPublicKeys PublicKeysOf(const BlockKeys& keys) {
  BlockPublicKeys out;
  out.reserve(keys.members.size());
  for (const auto& member : keys.members) {
    std::vector<crypto::ElGamalPublicKey> row;
    row.reserve(member.keys.size());
    for (const auto& kp : member.keys) {
      row.push_back(kp.pub);
    }
    out.push_back(std::move(row));
  }
  return out;
}

BlockCertificate MakeBlockCertificate(const BlockPublicKeys& publics, const crypto::U256& r) {
  BlockCertificate cert;
  cert.keys.reserve(publics.size());
  for (const auto& member : publics) {
    std::vector<crypto::ElGamalPublicKey> row;
    row.reserve(member.size());
    for (const auto& pub : member) {
      row.push_back(crypto::RandomizePublicKey(pub, r));
    }
    cert.keys.push_back(std::move(row));
  }
  return cert;
}

Bytes BlockCertificate::Serialize() const {
  ByteWriter writer;
  writer.U32(static_cast<uint32_t>(keys.size()));
  writer.U32(keys.empty() ? 0 : static_cast<uint32_t>(keys[0].size()));
  for (const auto& member : keys) {
    for (const auto& pub : member) {
      WritePoint(writer, pub.point);
    }
  }
  return writer.Take();
}

BlockCertificate BlockCertificate::Deserialize(const Bytes& raw) {
  ByteReader reader(raw);
  uint32_t members = reader.U32();
  uint32_t bits = reader.U32();
  BlockCertificate cert;
  cert.keys.resize(members);
  for (auto& member : cert.keys) {
    member.reserve(bits);
    for (uint32_t b = 0; b < bits; b++) {
      member.push_back(crypto::ElGamalPublicKey{ReadPoint(reader)});
    }
  }
  return cert;
}

std::shared_ptr<const CertTables> BlockCertificate::Tables() const {
  auto cached = std::atomic_load_explicit(&tables_cache_, std::memory_order_acquire);
  if (cached) {
    return cached;
  }
  auto built = std::make_shared<CertTables>();
  built->block_size = static_cast<int>(keys.size());
  built->message_bits = keys.empty() ? 0 : static_cast<int>(keys[0].size());
  std::vector<crypto::EcPoint> bases;
  bases.reserve(static_cast<size_t>(built->block_size) * built->message_bits);
  for (const auto& member : keys) {
    for (const auto& pub : member) {
      bases.push_back(pub.point);
    }
  }
  built->set = crypto::FixedBaseTableSet::Build(bases);
  std::shared_ptr<const CertTables> expected;
  std::shared_ptr<const CertTables> desired = built;
  if (std::atomic_compare_exchange_strong(&tables_cache_, &expected, desired)) {
    return desired;
  }
  return expected;
}

size_t SubshareBundle::SerializedSize() const {
  size_t slots = 0;
  for (const auto& row : c2) {
    slots += row.size();
  }
  return (1 + slots) * EcPoint::kCompressedSize;
}

Bytes SubshareBundle::Serialize() const {
  ByteWriter writer;
  WritePoint(writer, c1);
  for (const auto& row : c2) {
    for (const auto& point : row) {
      WritePoint(writer, point);
    }
  }
  return writer.Take();
}

SubshareBundle SubshareBundle::Deserialize(const Bytes& raw, int block_size, int message_bits) {
  ByteReader reader(raw);
  SubshareBundle out;
  out.c1 = ReadPoint(reader);
  out.c2.resize(block_size);
  for (auto& row : out.c2) {
    row.reserve(message_bits);
    for (int b = 0; b < message_bits; b++) {
      row.push_back(ReadPoint(reader));
    }
  }
  DSTRESS_CHECK(reader.AtEnd());
  return out;
}

Bytes AggregatedColumns::Serialize() const {
  ByteWriter writer;
  WritePoint(writer, c1);
  for (const auto& row : c2) {
    for (const auto& point : row) {
      WritePoint(writer, point);
    }
  }
  return writer.Take();
}

AggregatedColumns AggregatedColumns::Deserialize(const Bytes& raw, int block_size,
                                                 int message_bits) {
  ByteReader reader(raw);
  AggregatedColumns out;
  out.c1 = ReadPoint(reader);
  out.c2.resize(block_size);
  for (auto& row : out.c2) {
    row.reserve(message_bits);
    for (int b = 0; b < message_bits; b++) {
      row.push_back(ReadPoint(reader));
    }
  }
  DSTRESS_CHECK(reader.AtEnd());
  return out;
}

Bytes MemberColumn::Serialize() const {
  ByteWriter writer;
  WritePoint(writer, c1);
  for (const auto& point : c2) {
    WritePoint(writer, point);
  }
  return writer.Take();
}

MemberColumn MemberColumn::Deserialize(const Bytes& raw, int message_bits) {
  ByteReader reader(raw);
  MemberColumn out;
  out.c1 = ReadPoint(reader);
  out.c2.reserve(message_bits);
  for (int b = 0; b < message_bits; b++) {
    out.c2.push_back(ReadPoint(reader));
  }
  DSTRESS_CHECK(reader.AtEnd());
  return out;
}

SubshareBundle EncryptSubshares(const mpc::BitVector& share_bits, const BlockCertificate& cert,
                                crypto::ChaCha20Prg& prg) {
  int block_size = static_cast<int>(cert.keys.size());
  int bits = static_cast<int>(share_bits.size());
  DSTRESS_CHECK(block_size >= 1);
  DSTRESS_CHECK(!cert.keys[0].empty() && static_cast<int>(cert.keys[0].size()) == bits);

  // Split the L-bit share into block_size XOR subshares.
  std::vector<mpc::BitVector> subshares = mpc::ShareBits(share_bits, block_size, prg);

  // One ephemeral scalar across all (recipient, bit) slots — the Kurosawa
  // optimization. Each slot's payload is 0 or 1 in the exponent.
  crypto::U256 ephemeral = prg.NextScalar(crypto::CurveOrder());
  SubshareBundle bundle;
  bundle.c1 = crypto::MulBase(ephemeral);
  bundle.c2.resize(block_size);
  const EcPoint g = EcPoint::Generator();
  for (int recipient = 0; recipient < block_size; recipient++) {
    bundle.c2[recipient].reserve(bits);
    for (int b = 0; b < bits; b++) {
      EcPoint masked = cert.keys[recipient][b].point.Mul(ephemeral);
      if (subshares[recipient][b] & 1) {
        masked = masked.Add(g);
      }
      bundle.c2[recipient].push_back(masked);
    }
  }
  return bundle;
}

AggregatedColumns AggregateSubshares(const std::vector<SubshareBundle>& bundles,
                                     const TransferParams& params, crypto::ChaCha20Prg& prg) {
  DSTRESS_CHECK(static_cast<int>(bundles.size()) == params.block_size);
  AggregatedColumns agg;
  agg.c1 = EcPoint::Infinity();
  agg.c2.assign(params.block_size, std::vector<EcPoint>(params.message_bits, EcPoint::Infinity()));
  for (const auto& bundle : bundles) {
    agg.c1 = agg.c1.Add(bundle.c1);
    for (int recipient = 0; recipient < params.block_size; recipient++) {
      for (int b = 0; b < params.message_bits; b++) {
        agg.c2[recipient][b] = agg.c2[recipient][b].Add(bundle.c2[recipient][b]);
      }
    }
  }
  // Mask every bit sum with an even two-sided-geometric draw. Even noise
  // preserves the parity that encodes the XOR of the subshare bits.
  double effective_alpha = params.EffectiveAlpha();
  for (int recipient = 0; recipient < params.block_size; recipient++) {
    for (int b = 0; b < params.message_bits; b++) {
      int64_t mask = dp::EvenGeometricMask(prg, effective_alpha);
      if (mask != 0) {
        agg.c2[recipient][b] =
            agg.c2[recipient][b].Add(crypto::MulBase(crypto::EncodeExponent(mask)));
      }
    }
  }
  return agg;
}

AggregatedColumns AdjustAggregated(const AggregatedColumns& agg,
                                   const crypto::U256& neighbor_key) {
  AggregatedColumns out;
  out.c1 = agg.c1.Mul(neighbor_key);
  out.c2 = agg.c2;
  return out;
}

bool RecoverShare(const MemberColumn& column, const MemberKeys& my_keys,
                  const crypto::DlogTable& table, mpc::BitVector* share_out) {
  int bits = static_cast<int>(column.c2.size());
  DSTRESS_CHECK(static_cast<int>(my_keys.keys.size()) == bits);
  share_out->assign(bits, 0);
  for (int b = 0; b < bits; b++) {
    crypto::ElGamalCiphertext ct{column.c1, column.c2[b]};
    int64_t sum = 0;
    if (!table.Decrypt(my_keys.keys[b].secret, ct, &sum)) {
      return false;
    }
    (*share_out)[b] = static_cast<uint8_t>(((sum % 2) + 2) % 2);
  }
  return true;
}

void RunSenderMember(net::Transport* net, net::NodeId self, net::NodeId node_i,
                     net::SessionId session, const mpc::BitVector& share_bits,
                     const BlockCertificate& cert, crypto::ChaCha20Prg& prg) {
  SubshareBundle bundle = EncryptSubshares(share_bits, cert, prg);
  net->Send(self, node_i, bundle.Serialize(), TransferSubSession(session, 0));
}

void RunSourceEndpoint(net::Transport* net, net::NodeId self,
                       const std::vector<net::NodeId>& members, net::NodeId node_j,
                       net::SessionId session, const TransferParams& params,
                       crypto::ChaCha20Prg& prg) {
  std::vector<SubshareBundle> bundles;
  bundles.reserve(members.size());
  for (net::NodeId member : members) {
    Bytes raw = net->Recv(self, member, TransferSubSession(session, 0));
    bundles.push_back(SubshareBundle::Deserialize(raw, params.block_size, params.message_bits));
  }
  AggregatedColumns agg = AggregateSubshares(bundles, params, prg);
  net->Send(self, node_j, agg.Serialize(), TransferSubSession(session, 1));
}

void RunDestEndpoint(net::Transport* net, net::NodeId self, net::NodeId node_i,
                     const std::vector<net::NodeId>& members, net::SessionId session,
                     const crypto::U256& neighbor_key, const TransferParams& params) {
  Bytes raw = net->Recv(self, node_i, TransferSubSession(session, 1));
  AggregatedColumns agg =
      AggregatedColumns::Deserialize(raw, params.block_size, params.message_bits);
  AggregatedColumns adjusted = AdjustAggregated(agg, neighbor_key);
  DSTRESS_CHECK(members.size() == adjusted.c2.size());
  // Fan out through a channel endpoint: serialize every member's column
  // before the first delivery, then flush the whole burst.
  net::Channel fanout(net, self, members, TransferSubSession(session, 2));
  for (size_t y = 0; y < members.size(); y++) {
    MemberColumn column{adjusted.c1, adjusted.c2[y]};
    fanout.Send(members[y], column.Serialize());
  }
  fanout.Flush();
}

mpc::BitVector RunReceiverMember(net::Transport* net, net::NodeId self, net::NodeId node_j,
                                 net::SessionId session, const MemberKeys& my_keys,
                                 const crypto::DlogTable& table, const TransferParams& params) {
  Bytes raw = net->Recv(self, node_j, TransferSubSession(session, 2));
  MemberColumn column = MemberColumn::Deserialize(raw, params.message_bits);
  mpc::BitVector share;
  bool ok = RecoverShare(column, my_keys, table, &share);
  // A lookup failure is the Appendix B P_fail event; parameters are chosen
  // so its probability is negligible (about once in ten years for the
  // production configuration), so the runtime treats it as fatal.
  DSTRESS_CHECK(ok);
  return share;
}

}  // namespace dstress::transfer
