// Batched, wire-level implementations of the four transfer roles — the
// tentpole of the transfer-phase crypto engine (docs/transfer-crypto.md).
//
// Each function performs the same cryptographic work as its pure-scheme
// counterpart in transfer.h but for a whole per-edge burst at once, keeping
// points in batch-affine form end to end:
//
//  * every (recipient, bit) slot of every bundle is one lane of a single
//    MulBatch over the certificate's FixedBaseTables, sharing one scalar
//    recoding per sender and one field inversion per window level;
//  * results are serialized straight from affine coordinates, so the
//    per-point Jacobian normalization (one field inversion each) on the
//    seed serialization path disappears;
//  * aggregation masks come from the EvenNoiseCache instead of a fresh
//    MulBase per (recipient, bit) slot;
//  * decryption builds one table for the column's shared ephemeral c1 and
//    evaluates all (member, bit) secrets against it in lockstep.
//
// Bit-fidelity contract: given the same PRG streams, every Bytes value
// produced here is byte-identical to what the seed schedule sends
// (transfer_test pins this). Compressed encodings are unique per group
// element, so equality of group values implies equality of wire bytes; the
// draw order of every PRG consumer matches the seed path exactly.
#ifndef SRC_TRANSFER_BATCH_ENGINE_H_
#define SRC_TRANSFER_BATCH_ENGINE_H_

#include <vector>

#include "src/transfer/transfer.h"

namespace dstress::transfer {

// Cache of even noise points mask*G for the aggregation step: the even
// geometric masks are small with overwhelming probability, so a dense table
// of the likely range turns each mask application into a lookup. Out-of-range
// masks fall back to a MulBase evaluation.
class EvenNoiseCache {
 public:
  // Covers even masks with |mask| <= 2*min(half_range, internal cap).
  explicit EvenNoiseCache(int64_t half_range);

  // `even_mask` must be even (the transfer only ever applies even noise).
  crypto::AffinePoint Get(int64_t even_mask) const;

  int64_t covered_steps() const { return max_steps_; }

 private:
  int64_t max_steps_;
  std::vector<crypto::AffinePoint> pos_;  // pos_[t] = 2t*G
  std::vector<crypto::AffinePoint> neg_;  // neg_[t] = -2t*G
};

// All sender members of one edge in one pass. member_share_bits[x] is member
// x's L-bit share; prgs[x] is member x's role PRG, consumed exactly as
// EncryptSubshares does (ShareBits, then one ephemeral scalar). Returns each
// member's serialized SubshareBundle.
std::vector<Bytes> EncryptSubsharesWire(const std::vector<mpc::BitVector>& member_share_bits,
                                        const BlockCertificate& cert,
                                        std::vector<crypto::ChaCha20Prg>& prgs);

// Node i's aggregation + masking over the serialized bundles; `prg` draws
// the masks in the same (recipient, bit) order as AggregateSubshares.
// Returns the serialized AggregatedColumns.
Bytes AggregateSubsharesWire(const std::vector<Bytes>& bundle_wires, const TransferParams& params,
                             crypto::ChaCha20Prg& prg, const EvenNoiseCache& noise);

// Node j's adjustment + fan-out split: adjusts c1 with the neighbor key and
// splices each recipient's c2 row out of the aggregate wire verbatim
// (compressed encodings are unique, so re-serialization is the identity).
// Returns one serialized MemberColumn per recipient.
std::vector<Bytes> AdjustAndSplitWire(const Bytes& agg_wire, const crypto::U256& neighbor_key,
                                      const TransferParams& params);

// All receiver members of one edge in one pass: one FixedBaseTable for the
// shared c1, every (member, bit) secret evaluated in lockstep. Returns false
// on any lookup-table miss (the Appendix B failure event, same contract as
// RecoverShare).
bool RecoverSharesWire(const std::vector<Bytes>& column_wires,
                       const std::vector<const MemberKeys*>& member_keys,
                       const crypto::DlogTable& table, const TransferParams& params,
                       std::vector<mpc::BitVector>* shares_out);

}  // namespace dstress::transfer

#endif  // SRC_TRANSFER_BATCH_ENGINE_H_
