#include "src/transfer/batch_engine.h"

#include <algorithm>
#include <cstring>

#include "src/common/check.h"
#include "src/dp/samplers.h"

namespace dstress::transfer {

namespace {

using crypto::AffinePoint;
using crypto::EcPoint;
using crypto::FixedBaseTable;

constexpr size_t kPoint = EcPoint::kCompressedSize;

// Serializes an affine point in the compressed wire format without the
// per-point inversion EcPoint::Compress() pays for Jacobian inputs.
void WriteAffine(const AffinePoint& p, uint8_t* out33) {
  if (p.infinity) {
    std::memset(out33, 0, kPoint);
    return;
  }
  out33[0] = p.y.IsOdd() ? 0x03 : 0x02;
  p.x.raw().ToBytesBe(out33 + 1);
}

const AffinePoint& GeneratorAffine() {
  static const AffinePoint g = [] {
    AffinePoint out;
    EcPoint::ToAffineBatch(&EcPoint::Generator(), 1, &out);
    return out;
  }();
  return g;
}

}  // namespace

EvenNoiseCache::EvenNoiseCache(int64_t half_range) {
  // A dense table of ±2t*G for t up to the lookup-table half-range (the
  // aggregation only ever needs masks the decrypt table can absorb), capped
  // so pathological ranges stay a few MB.
  constexpr int64_t kMaxSteps = int64_t{1} << 15;
  max_steps_ = std::max<int64_t>(0, std::min(half_range, kMaxSteps));
  const EcPoint two_g = EcPoint::Generator().Double();
  std::vector<EcPoint> chain(static_cast<size_t>(max_steps_) + 1);
  chain[0] = EcPoint::Infinity();
  for (int64_t t = 1; t <= max_steps_; t++) {
    chain[t] = chain[t - 1].Add(two_g);
  }
  pos_.resize(chain.size());
  EcPoint::ToAffineBatch(chain.data(), chain.size(), pos_.data());
  neg_.resize(pos_.size());
  for (size_t t = 0; t < pos_.size(); t++) {
    neg_[t] = pos_[t];
    if (!neg_[t].infinity) {
      neg_[t].y = neg_[t].y.Neg();
    }
  }
}

AffinePoint EvenNoiseCache::Get(int64_t even_mask) const {
  DSTRESS_CHECK(even_mask % 2 == 0);
  int64_t steps = (even_mask >= 0 ? even_mask : -even_mask) / 2;
  if (steps <= max_steps_) {
    return even_mask >= 0 ? pos_[static_cast<size_t>(steps)] : neg_[static_cast<size_t>(steps)];
  }
  EcPoint p = crypto::MulBase(crypto::EncodeExponent(even_mask));
  AffinePoint out;
  EcPoint::ToAffineBatch(&p, 1, &out);
  return out;
}

std::vector<Bytes> EncryptSubsharesWire(const std::vector<mpc::BitVector>& member_share_bits,
                                        const BlockCertificate& cert,
                                        std::vector<crypto::ChaCha20Prg>& prgs) {
  const int block_size = static_cast<int>(cert.keys.size());
  DSTRESS_CHECK(block_size >= 1);
  const int bits = static_cast<int>(cert.keys[0].size());
  const size_t senders = member_share_bits.size();
  DSTRESS_CHECK(prgs.size() == senders);
  auto tables = cert.Tables();

  // Per sender: PRG draws in seed order (subshare split, then the shared
  // ephemeral), one recoding shared by all of the sender's slots.
  std::vector<std::vector<mpc::BitVector>> subshares(senders);
  std::vector<crypto::U256> ephemerals(senders);
  std::vector<FixedBaseTable::Recoding> recodings(senders);
  for (size_t x = 0; x < senders; x++) {
    DSTRESS_CHECK(static_cast<int>(member_share_bits[x].size()) == bits);
    subshares[x] = mpc::ShareBits(member_share_bits[x], block_size, prgs[x]);
    ephemerals[x] = prgs[x].NextScalar(crypto::CurveOrder());
    recodings[x] = FixedBaseTable::Recode(ephemerals[x]);
  }

  // One lane per (sender, recipient, bit) slot. Each sender's slots share
  // one ephemeral, so a single MulShared sweep over the certificate's
  // window-major table set produces the sender's whole c2 burst.
  const size_t slots_per_sender = static_cast<size_t>(block_size) * bits;
  DSTRESS_CHECK(tables->set.num_keys() == slots_per_sender);
  std::vector<AffinePoint> lanes(senders * slots_per_sender);
  for (size_t x = 0; x < senders; x++) {
    tables->set.MulShared(recodings[x], lanes.data() + x * slots_per_sender);
  }

  // Fold the payload bits in: +G on every set subshare bit, one shared
  // inversion for the whole burst.
  std::vector<size_t> set_lanes;
  for (size_t x = 0; x < senders; x++) {
    for (int recipient = 0; recipient < block_size; recipient++) {
      for (int b = 0; b < bits; b++) {
        if (subshares[x][recipient][b] & 1) {
          set_lanes.push_back(x * slots_per_sender + recipient * bits + b);
        }
      }
    }
  }
  std::vector<AffinePoint> gen(set_lanes.size(), GeneratorAffine());
  crypto::BatchAddSelected(lanes.data(), set_lanes.data(), gen.data(), set_lanes.size());

  // Ephemeral components c1 = MulBase(ephemeral), compressed as a burst.
  std::vector<EcPoint> c1(senders);
  for (size_t x = 0; x < senders; x++) {
    c1[x] = crypto::MulBase(ephemerals[x]);
  }
  std::vector<uint8_t> c1_wire(senders * kPoint);
  EcPoint::CompressBatch(c1.data(), senders, c1_wire.data());

  std::vector<Bytes> out(senders);
  for (size_t x = 0; x < senders; x++) {
    out[x].resize((1 + slots_per_sender) * kPoint);
    std::memcpy(out[x].data(), c1_wire.data() + x * kPoint, kPoint);
    for (size_t s = 0; s < slots_per_sender; s++) {
      WriteAffine(lanes[x * slots_per_sender + s], out[x].data() + (1 + s) * kPoint);
    }
  }
  return out;
}

Bytes AggregateSubsharesWire(const std::vector<Bytes>& bundle_wires, const TransferParams& params,
                             crypto::ChaCha20Prg& prg, const EvenNoiseCache& noise) {
  DSTRESS_CHECK(static_cast<int>(bundle_wires.size()) == params.block_size);
  const size_t slots = static_cast<size_t>(params.block_size) * params.message_bits;
  for (const Bytes& wire : bundle_wires) {
    DSTRESS_CHECK(wire.size() == (1 + slots) * kPoint);
  }

  // c1: the few ephemeral components sum in Jacobian form.
  EcPoint c1 = EcPoint::Infinity();
  for (const Bytes& wire : bundle_wires) {
    auto p = EcPoint::Decompress(wire.data());
    DSTRESS_CHECK(p.has_value());
    c1 = c1.Add(*p);
  }

  // c2: accumulate bundle after bundle across all slots in lockstep (same
  // association order as the seed loop; the group value — and therefore the
  // compressed bytes — is order-independent anyway).
  std::vector<AffinePoint> acc(slots);
  std::vector<AffinePoint> bundle_slots(slots);
  DSTRESS_CHECK(EcPoint::DecompressBatch(bundle_wires[0].data() + kPoint, slots, acc.data()));
  for (size_t x = 1; x < bundle_wires.size(); x++) {
    DSTRESS_CHECK(
        EcPoint::DecompressBatch(bundle_wires[x].data() + kPoint, slots, bundle_slots.data()));
    crypto::BatchAddAssign(acc.data(), bundle_slots.data(), slots);
  }

  // Masks drawn in the seed's exact (recipient, bit) order, zero draws
  // skipped just like the seed path, points served from the cache.
  const double effective_alpha = params.EffectiveAlpha();
  std::vector<size_t> masked_lanes;
  std::vector<AffinePoint> mask_points;
  for (size_t s = 0; s < slots; s++) {
    int64_t mask = dp::EvenGeometricMask(prg, effective_alpha);
    if (mask != 0) {
      masked_lanes.push_back(s);
      mask_points.push_back(noise.Get(mask));
    }
  }
  crypto::BatchAddSelected(acc.data(), masked_lanes.data(), mask_points.data(),
                           masked_lanes.size());

  Bytes out((1 + slots) * kPoint);
  auto c1_wire = c1.Compress();
  std::memcpy(out.data(), c1_wire.data(), kPoint);
  for (size_t s = 0; s < slots; s++) {
    WriteAffine(acc[s], out.data() + (1 + s) * kPoint);
  }
  return out;
}

std::vector<Bytes> AdjustAndSplitWire(const Bytes& agg_wire, const crypto::U256& neighbor_key,
                                      const TransferParams& params) {
  const size_t slots = static_cast<size_t>(params.block_size) * params.message_bits;
  DSTRESS_CHECK(agg_wire.size() == (1 + slots) * kPoint);
  auto c1 = EcPoint::Decompress(agg_wire.data());
  DSTRESS_CHECK(c1.has_value());
  auto adjusted_wire = c1->Mul(neighbor_key).Compress();

  // Each recipient's c2 row is spliced out verbatim: the seed path's
  // decompress/re-compress round trip is the identity on valid encodings,
  // and validity is enforced where the points are consumed (the receivers).
  std::vector<Bytes> out(params.block_size);
  const size_t row = static_cast<size_t>(params.message_bits) * kPoint;
  for (int y = 0; y < params.block_size; y++) {
    out[y].resize(kPoint + row);
    std::memcpy(out[y].data(), adjusted_wire.data(), kPoint);
    std::memcpy(out[y].data() + kPoint, agg_wire.data() + kPoint + y * row, row);
  }
  return out;
}

bool RecoverSharesWire(const std::vector<Bytes>& column_wires,
                       const std::vector<const MemberKeys*>& member_keys,
                       const crypto::DlogTable& table, const TransferParams& params,
                       std::vector<mpc::BitVector>* shares_out) {
  const size_t members = column_wires.size();
  DSTRESS_CHECK(member_keys.size() == members);
  const int bits = params.message_bits;
  for (const Bytes& wire : column_wires) {
    DSTRESS_CHECK(wire.size() == (1 + static_cast<size_t>(bits)) * kPoint);
  }

  // Every column of the burst shares the edge's adjusted ephemeral c1, so
  // one fixed-base table serves all (member, bit) decryptions.
  for (size_t y = 1; y < members; y++) {
    DSTRESS_CHECK(std::memcmp(column_wires[y].data(), column_wires[0].data(), kPoint) == 0);
  }
  auto c1 = EcPoint::Decompress(column_wires[0].data());
  DSTRESS_CHECK(c1.has_value());
  FixedBaseTable c1_table(*c1);

  const size_t lanes_n = members * bits;
  std::vector<FixedBaseTable::Recoding> recodings(lanes_n);
  std::vector<crypto::MulTask> tasks(lanes_n);
  for (size_t y = 0; y < members; y++) {
    DSTRESS_CHECK(static_cast<int>(member_keys[y]->keys.size()) == bits);
    for (int b = 0; b < bits; b++) {
      recodings[y * bits + b] = FixedBaseTable::Recode(member_keys[y]->keys[b].secret);
      tasks[y * bits + b] = crypto::MulTask{&c1_table, &recodings[y * bits + b]};
    }
  }
  std::vector<AffinePoint> lanes(lanes_n);
  crypto::MulBatch(tasks.data(), lanes_n, lanes.data());
  // Decryption is c2 + (-secret*c1): negate, then add the c2 points.
  for (AffinePoint& p : lanes) {
    if (!p.infinity) {
      p.y = p.y.Neg();
    }
  }
  std::vector<AffinePoint> c2(lanes_n);
  for (size_t y = 0; y < members; y++) {
    DSTRESS_CHECK(EcPoint::DecompressBatch(column_wires[y].data() + kPoint, bits,
                                           c2.data() + y * bits));
  }
  crypto::BatchAddAssign(lanes.data(), c2.data(), lanes_n);

  // Bulk-compress the decrypted points and take parities via the table.
  std::vector<uint8_t> compressed(lanes_n * kPoint);
  for (size_t i = 0; i < lanes_n; i++) {
    WriteAffine(lanes[i], compressed.data() + i * kPoint);
  }
  shares_out->assign(members, mpc::BitVector(bits, 0));
  for (size_t y = 0; y < members; y++) {
    for (int b = 0; b < bits; b++) {
      int64_t sum = 0;
      if (!table.LookupCompressed(compressed.data() + (y * bits + b) * kPoint, &sum)) {
        return false;
      }
      (*shares_out)[y][b] = static_cast<uint8_t>(((sum % 2) + 2) % 2);
    }
  }
  return true;
}

}  // namespace dstress::transfer
