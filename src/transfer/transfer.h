// DStressTransfer: the share-transfer scheme of paper §3.5 / Appendix A.
//
// Context: block B_i (k+1 members) holds an XOR-sharing of an L-bit message
// m destined for block B_j along the graph edge (i, j). The transfer must
// not reveal m to any k-collusion, must not let the blocks identify each
// other, and must not leak the existence of the edge. The construction:
//
//  1. Every member x of B_i splits its share s_x into k+1 subshares, one
//     per member of B_j (strawman #2: restores collusion resistance).
//  2. Each subshare is encrypted *bitwise* under the recipient's
//     re-randomized public keys from the block certificate (strawman #3:
//     prevents subshare recognition). One ephemeral scalar is shared across
//     all (recipient, bit) slots — the Kurosawa multi-recipient
//     optimization the prototype applies (§5.1), which requires each
//     member to own L distinct key pairs.
//  3. Node i homomorphically aggregates the (k+1)^2 encrypted subshare
//     columns into k+1 columns of encrypted bit-SUMS and masks every sum
//     with an even draw 2·Geo(alpha^(2/(k+1))) (the "final protocol" step
//     that yields the Appendix B edge-privacy guarantee).
//  4. Node j adjusts the ephemeral component with the edge's neighbor key
//     n_{i,j} so the recipients' original secret keys decrypt, and fans the
//     columns out to B_j's members.
//  5. Each member of B_j decrypts its L bit-sums through the bounded
//     discrete-log table and takes parities: the parity of (sum + even
//     noise) equals the XOR of the subshare bits, so the members end up
//     with a fresh XOR-sharing of m (Theorem 1).
//
// Two APIs are provided: pure scheme functions mirroring Appendix A's
// Setup / RandomizeKey / Encrypt / Aggregate / Adjust / Decrypt / Recover
// (used directly by the correctness tests), and networked role functions
// used by the runtime, which exchange the serialized forms over the transport
// so traffic is metered per role exactly as §5.3 measures it.
#ifndef SRC_TRANSFER_TRANSFER_H_
#define SRC_TRANSFER_TRANSFER_H_

#include <memory>
#include <vector>

#include "src/crypto/elgamal.h"
#include "src/crypto/fixed_base.h"
#include "src/mpc/sharing.h"
#include "src/net/transport.h"

namespace dstress::transfer {

struct TransferParams {
  int block_size = 8;       // k+1
  int message_bits = 12;    // L (the prototype's 12-bit shares)
  // Two-sided-geometric budget parameter alpha; the mask applied per bit
  // sum is 2·Geo(alpha^(2/block_size)).
  double budget_alpha = 0.99;
  // Half-range of the discrete-log lookup table (N_l = 2*dlog_range + 1).
  // Production parameters (alpha ~ 1 - 2e-7) need the paper's 8 GB table;
  // tests and benches use small alpha with small tables. See Appendix B.
  int64_t dlog_range = 4096;

  // Effective per-transfer noise parameter alpha^(2/(k+1)).
  double EffectiveAlpha() const;

  // Lookup-table half-range that keeps the per-bit-sum failure probability
  // (Appendix B's P_fail) at or below `max_failure_probability` for these
  // parameters, including slack for the un-noised sum of k+1 subshare bits.
  int64_t RecommendedDlogRange(double max_failure_probability) const;
};

// --- key material -----------------------------------------------------------

// One block member's L ElGamal key pairs (one per message bit).
struct MemberKeys {
  std::vector<crypto::ElGamalKeyPair> keys;
};

// Secret-side view of a whole block (held collectively, one entry per
// member; only used by tests and by the per-node key store).
struct BlockKeys {
  std::vector<MemberKeys> members;
};

// Public-side view: what the trusted party sees.
using BlockPublicKeys = std::vector<std::vector<crypto::ElGamalPublicKey>>;  // [member][bit]

// Appendix A `Setup`: generates k+1 members' key material.
BlockKeys TransferSetup(int block_size, int message_bits, crypto::ChaCha20Prg& prg);
BlockPublicKeys PublicKeysOf(const BlockKeys& keys);

// Fixed-base tables for every [member][bit] key of one certificate — the
// batched encrypt path's amortization unit: built once per certificate,
// reused by every per-run transfer along that edge. Keys are flattened in
// [member * message_bits + bit] order, matching a bundle's (recipient, bit)
// slot order, so one MulShared call against the set produces a whole
// bundle's c2 lanes.
struct CertTables {
  int block_size = 0;
  int message_bits = 0;
  crypto::FixedBaseTableSet set;
};

// Appendix A `RandomizeKey`: the block certificate C_{i,j} — every member
// key blinded by the neighbor key r (TP-signed in the paper; the signature
// is modeled by provenance here since the TP is a trusted setup entity).
struct BlockCertificate {
  BlockPublicKeys keys;  // [member][bit], blinded

  Bytes Serialize() const;
  static BlockCertificate Deserialize(const Bytes& raw);

  // Fixed-base tables for every key, built lazily on first use and cached.
  // Thread-safe via an atomic shared_ptr rather than a mutex so the struct
  // stays copyable; concurrent first calls may briefly duplicate the build
  // (benign — the results are value-identical and one wins the exchange).
  std::shared_ptr<const CertTables> Tables() const;

  // Lazy cache behind Tables(); not part of the serialized form.
  mutable std::shared_ptr<const CertTables> tables_cache_;
};
BlockCertificate MakeBlockCertificate(const BlockPublicKeys& publics, const crypto::U256& r);

// --- scheme messages --------------------------------------------------------

// Appendix A `Encrypt` output of ONE sender member: a shared ephemeral
// component plus one encrypted bit per (recipient, bit) slot.
struct SubshareBundle {
  crypto::EcPoint c1;
  std::vector<std::vector<crypto::EcPoint>> c2;  // [recipient][bit]

  Bytes Serialize() const;
  static SubshareBundle Deserialize(const Bytes& raw, int block_size, int message_bits);
  size_t SerializedSize() const;
};

// Appendix A `Aggregate` (+noise) output of node i: per-recipient columns
// of encrypted noised bit sums under one aggregated ephemeral component.
struct AggregatedColumns {
  crypto::EcPoint c1;
  std::vector<std::vector<crypto::EcPoint>> c2;  // [recipient][bit]

  Bytes Serialize() const;
  static AggregatedColumns Deserialize(const Bytes& raw, int block_size, int message_bits);
};

// One recipient's column after node j's `Adjust`.
struct MemberColumn {
  crypto::EcPoint c1;
  std::vector<crypto::EcPoint> c2;  // [bit]

  Bytes Serialize() const;
  static MemberColumn Deserialize(const Bytes& raw, int message_bits);
};

// --- pure scheme functions --------------------------------------------------

// Member x: split `share_bits` (length L) into block_size subshares and
// encrypt them bitwise under the certificate.
SubshareBundle EncryptSubshares(const mpc::BitVector& share_bits, const BlockCertificate& cert,
                                crypto::ChaCha20Prg& prg);

// Node i: homomorphic aggregation of all members' bundles plus the even
// geometric mask on every bit sum.
AggregatedColumns AggregateSubshares(const std::vector<SubshareBundle>& bundles,
                                     const TransferParams& params, crypto::ChaCha20Prg& prg);

// Node j: ephemeral-key adjustment with the neighbor key.
AggregatedColumns AdjustAggregated(const AggregatedColumns& agg, const crypto::U256& neighbor_key);

// Member y of B_j: decrypt own column and recover the new share by parity.
// Returns false if a bit sum falls outside the lookup table (the Appendix B
// failure event).
bool RecoverShare(const MemberColumn& column, const MemberKeys& my_keys,
                  const crypto::DlogTable& table, mpc::BitVector* share_out);

// --- networked roles (used by the runtime) ----------------------------------

// The three wire steps of one edge transfer run on distinct sub-sessions of
// the caller's session id, because one physical node can simultaneously be
// a sender member of B_i and a receiver member of B_j for the same edge —
// without the split, the bundle and the column would share a FIFO channel
// with two concurrent consumers.
inline net::SessionId TransferSubSession(net::SessionId base, int step) {
  return base | (static_cast<net::SessionId>(step + 1) << 56);
}

void RunSenderMember(net::Transport* net, net::NodeId self, net::NodeId node_i,
                     net::SessionId session, const mpc::BitVector& share_bits,
                     const BlockCertificate& cert, crypto::ChaCha20Prg& prg);

void RunSourceEndpoint(net::Transport* net, net::NodeId self,
                       const std::vector<net::NodeId>& members, net::NodeId node_j,
                       net::SessionId session, const TransferParams& params,
                       crypto::ChaCha20Prg& prg);

void RunDestEndpoint(net::Transport* net, net::NodeId self, net::NodeId node_i,
                     const std::vector<net::NodeId>& members, net::SessionId session,
                     const crypto::U256& neighbor_key, const TransferParams& params);

mpc::BitVector RunReceiverMember(net::Transport* net, net::NodeId self, net::NodeId node_j,
                                 net::SessionId session, const MemberKeys& my_keys,
                                 const crypto::DlogTable& table, const TransferParams& params);

}  // namespace dstress::transfer

#endif  // SRC_TRANSFER_TRANSFER_H_
