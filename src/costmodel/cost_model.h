// Analytic scale-out model for Figure 6.
//
// The paper could not run 1,750 EC2 nodes, so §5.5 projects end-to-end cost
// from microbenchmark measurements under conservative assumptions (degree
// bound D = 100, block size 20, no overlap between a node's block
// computations, two-level aggregation tree of fan-in 100). This module
// reproduces that methodology: Calibrate() measures per-operation costs of
// this build's actual protocol implementations (per-AND GMW cost, per-
// bundle encryption cost, endpoint aggregation cost, per-column decryption
// cost), and Project() combines them with exact circuit AND-counts and
// exact wire formats into per-node time and traffic as functions of N
// and D. Validation against real end-to-end runs is done by the Figure 6
// bench.
#ifndef SRC_COSTMODEL_COST_MODEL_H_
#define SRC_COSTMODEL_COST_MODEL_H_

#include <cstdint>
#include <string>

namespace dstress::costmodel {

struct MicroCosts {
  // GMW online evaluation, per AND gate, per block member (seconds).
  double seconds_per_and = 0;
  // GMW online traffic per AND gate per member (bytes; d+e bits to each of
  // k peers).
  double bytes_per_and = 0;
  // Transfer protocol per edge (seconds): one member's bundle encryption,
  // the source endpoint's aggregation + masking, the destination's
  // adjustment, one member's column decryption.
  double seconds_bundle_encrypt = 0;
  double seconds_source_endpoint = 0;
  double seconds_dest_adjust = 0;
  double seconds_column_decrypt = 0;
  // Batched engine only (zero under the seed schedule): building one edge
  // certificate's fixed-base key tables (k+1 members x L bits). Paid once
  // per run per (member, out-edge certificate) and amortized over all
  // iterations' bundle encryptions; Project() charges it separately from
  // the per-iteration terms.
  double seconds_cert_table_build = 0;
  int calibrated_block_size = 0;
  int calibrated_message_bits = 0;

  std::string ToString() const;
};

// Measures the micro costs at the given block size on this machine, with
// the seed (one GmwParty per role, one thread per member) MPC schedule.
MicroCosts Calibrate(int block_size, int message_bits);

// Same measurements, but with the batched data planes the runtime uses by
// default: the MPC term via the bitsliced packed-share engine
// (docs/packed-eval.md — `batch_width` independent instances advance
// through the AND layers in one lockstep mpc::EvalBatchInstances call),
// and the transfer terms via the batched wire-level crypto engine
// (docs/transfer-crypto.md — fixed-base key tables, batch-affine bundle
// encryption, cached noise points, lockstep column decryption).
// `seed_costs` must come from Calibrate() with the same block size; the
// per-AND wire bytes (which batching does not change) are copied from it.
// The result additionally carries seconds_cert_table_build, the batched
// engine's once-per-run table cost that Project() charges separately.
MicroCosts CalibrateBatched(const MicroCosts& seed_costs, int message_bits, int batch_width);

struct ProjectionParams {
  int num_nodes = 1750;
  int degree_bound = 100;
  int block_size = 20;
  int iterations = 11;     // I = ceil(log2 N) for the US banking system
  int message_bits = 12;   // L
  int aggregation_fanout = 100;
  // AND-gate counts of the program circuits (obtained from the real
  // builders so the model tracks the implementation exactly).
  size_t update_and_gates = 0;
  size_t aggregate_and_gates_per_group = 0;  // leaf circuit, fan-in groups
  size_t combine_and_gates = 0;              // root circuit incl. noising
  int state_bits = 0;
  // AND-depths (= GMW communication rounds) of the same circuits; only used
  // by the wide-area projection, where every round pays an RTT.
  size_t update_and_depth = 0;
  size_t aggregate_and_depth = 0;
  size_t combine_and_depth = 0;
  // Worker threads a deployment node's transfer plane overlaps its per-edge
  // work across. 1 reproduces the paper's §5.5 conservative serialization
  // ("a node's block computations do not overlap") and is the seed-schedule
  // baseline. The batched plane (core::Runtime::CommunicatePhaseBatched)
  // runs every edge's role work as an independent task on the persistent
  // worker pool — no blocking receives inside a sub-phase, shared state
  // read-only, scratch thread-local — so its projection divides the per-node
  // transfer CPU terms (bundle encrypts, endpoint aggregation/adjustment,
  // column decrypts, certificate table builds) by this worker count.
  // Traffic, the GMW terms, and the WAN latency model are never divided.
  // See docs/transfer-crypto.md for the deployment assumption.
  int transfer_workers = 1;
};

struct Projection {
  double init_seconds = 0;
  double compute_seconds = 0;
  double communicate_seconds = 0;
  double aggregate_seconds = 0;
  double total_seconds = 0;
  double traffic_bytes_per_node = 0;

  std::string ToString() const;
};

// Projects per-node wall-clock cost and average per-node traffic for a full
// run, under the paper's conservative serialization assumption (a node's
// k+1 block computations do not overlap).
Projection Project(const MicroCosts& costs, const ProjectionParams& params);

// Wide-area deployment model (the §5.3 caveat: "this would be different in
// a wide-area deployment"). On a LAN/in-process substrate, GMW round
// latency is negligible; across the Internet every AND-depth layer costs a
// round trip and every byte crosses a bounded uplink.
struct WanParams {
  double rtt_ms = 50;           // round trip between any two banks
  double bandwidth_mbps = 100;  // per-node uplink
};

// Project() plus WAN latency/bandwidth terms: per computation step each of
// a node's serialized block memberships pays update_and_depth RTTs, each
// communication step pays the transfer protocol's 3 one-way hops, the
// aggregation tree pays its two levels' depths, and all per-node traffic is
// pushed through the uplink. ProjectionParams must carry the *_and_depth
// fields for the latency terms to be counted.
Projection ProjectWan(const MicroCosts& costs, const ProjectionParams& params,
                      const WanParams& wan);

}  // namespace dstress::costmodel

#endif  // SRC_COSTMODEL_COST_MODEL_H_
