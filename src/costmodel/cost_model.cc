#include "src/costmodel/cost_model.h"

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/circuit/builder.h"
#include "src/common/check.h"
#include "src/common/stopwatch.h"
#include "src/crypto/elgamal.h"
#include "src/mpc/gmw.h"
#include "src/mpc/sharing.h"
#include "src/mpc/triples.h"
#include "src/net/transport_spec.h"
#include "src/transfer/transfer.h"

namespace dstress::costmodel {

std::string MicroCosts::ToString() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "per-AND: %.2f us / %.1f B; transfer: encrypt=%.2f ms endpoint=%.2f ms "
                "adjust=%.2f ms decrypt=%.2f ms (block=%d L=%d)",
                seconds_per_and * 1e6, bytes_per_and, seconds_bundle_encrypt * 1e3,
                seconds_source_endpoint * 1e3, seconds_dest_adjust * 1e3,
                seconds_column_decrypt * 1e3, calibrated_block_size, calibrated_message_bits);
  return buf;
}

std::string Projection::ToString() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "total=%.1f min (init=%.1fs compute=%.1f min comm=%.1f min agg=%.1fs) "
                "traffic/node=%.1f MB",
                total_seconds / 60, init_seconds, compute_seconds / 60,
                communicate_seconds / 60, aggregate_seconds, traffic_bytes_per_node / 1e6);
  return buf;
}

namespace {

// The multiplier-heavy circuit both calibrations evaluate.
circuit::Circuit CalibrationCircuit() {
  circuit::Builder b;
  circuit::Word x = b.InputWord(32);
  circuit::Word y = b.InputWord(32);
  circuit::Word acc = b.Mul(x, y);
  for (int i = 0; i < 6; i++) {
    acc = b.Mul(acc, y);
  }
  b.OutputWord(acc);
  return b.Build();
}

}  // namespace

MicroCosts Calibrate(int block_size, int message_bits) {
  MicroCosts costs;
  costs.calibrated_block_size = block_size;
  costs.calibrated_message_bits = message_bits;

  // --- GMW per-AND cost: evaluate a multiplier-heavy circuit in one block.
  {
    circuit::Circuit circuit = CalibrationCircuit();

    std::unique_ptr<net::Transport> net_owner = net::MakeSimTransport(block_size);
    net::Transport& net = *net_owner;
    auto prg = crypto::ChaCha20Prg::FromSeed(11);
    mpc::BitVector inputs(circuit.num_inputs(), 0);
    for (auto& bit : inputs) {
      bit = prg.NextBit() ? 1 : 0;
    }
    auto shares = mpc::ShareBits(inputs, block_size, prg);

    // Best of a few repetitions: one block evaluation is only ~10 ms, so
    // a single shot is at the mercy of scheduler noise.
    constexpr int kGmwReps = 3;
    double seconds = 0;
    for (int rep = 0; rep < kGmwReps; rep++) {
      Stopwatch timer;
      std::vector<std::thread> threads;
      for (int p = 0; p < block_size; p++) {
        threads.emplace_back([&, p, rep] {
          std::vector<net::NodeId> ids(block_size);
          for (int i = 0; i < block_size; i++) {
            ids[i] = i;
          }
          mpc::DealerTripleSource triples(p, block_size, 77 + rep);
          mpc::GmwParty party(&net, ids, p, &triples);
          party.Eval(circuit, shares[p]);
        });
      }
      for (auto& t : threads) {
        t.join();
      }
      double rep_seconds = timer.ElapsedSeconds();
      seconds = rep == 0 ? rep_seconds : std::min(seconds, rep_seconds);
    }
    costs.seconds_per_and = seconds / static_cast<double>(circuit.stats().num_and);
    costs.bytes_per_and = static_cast<double>(net.TotalBytes()) /
                          (static_cast<double>(kGmwReps) * block_size * circuit.stats().num_and);
  }

  // --- Transfer protocol per-role costs (pure scheme functions, measured
  // without network overhead).
  {
    auto prg = crypto::ChaCha20Prg::FromSeed(21);
    transfer::TransferParams params;
    params.block_size = block_size;
    params.message_bits = message_bits;
    params.budget_alpha = 0.9;
    // Sized for the masking noise at this block size; the fixed 512 the
    // seed used overflows for the paper's block size 20 and aborts the
    // full-scale calibration.
    params.dlog_range = params.RecommendedDlogRange(1e-9);

    transfer::BlockKeys dest_keys = transfer::TransferSetup(block_size, message_bits, prg);
    crypto::U256 neighbor_key = prg.NextScalar(crypto::CurveOrder());
    transfer::BlockCertificate cert =
        transfer::MakeBlockCertificate(transfer::PublicKeysOf(dest_keys), neighbor_key);
    crypto::DlogTable table(params.dlog_range);

    mpc::BitVector share(message_bits, 0);
    for (auto& bit : share) {
      bit = prg.NextBit() ? 1 : 0;
    }

    constexpr int kReps = 3;
    Stopwatch timer;
    std::vector<transfer::SubshareBundle> bundles;
    for (int member = 0; member < block_size; member++) {
      bundles.push_back(transfer::EncryptSubshares(share, cert, prg));
    }
    costs.seconds_bundle_encrypt = timer.ElapsedSeconds() / block_size;

    timer.Reset();
    transfer::AggregatedColumns agg = transfer::AggregateSubshares(bundles, params, prg);
    for (int rep = 1; rep < kReps; rep++) {
      agg = transfer::AggregateSubshares(bundles, params, prg);
    }
    costs.seconds_source_endpoint = timer.ElapsedSeconds() / kReps;

    timer.Reset();
    transfer::AggregatedColumns adjusted = transfer::AdjustAggregated(agg, neighbor_key);
    for (int rep = 1; rep < kReps; rep++) {
      adjusted = transfer::AdjustAggregated(agg, neighbor_key);
    }
    costs.seconds_dest_adjust = timer.ElapsedSeconds() / kReps;

    timer.Reset();
    for (int member = 0; member < block_size; member++) {
      transfer::MemberColumn column{adjusted.c1, adjusted.c2[member]};
      mpc::BitVector recovered;
      bool ok = transfer::RecoverShare(column, dest_keys.members[member], table, &recovered);
      DSTRESS_CHECK(ok);
    }
    costs.seconds_column_decrypt = timer.ElapsedSeconds() / block_size;
  }
  return costs;
}

MicroCosts CalibrateBatched(const MicroCosts& seed_costs, int message_bits, int batch_width) {
  DSTRESS_CHECK(batch_width > 0);
  // Transfer costs (and the per-AND wire bytes, which batching does not
  // change) are identical to the seed schedule's — reuse the caller's
  // measurement instead of paying the EC microbenchmarks twice.
  const int block_size = seed_costs.calibrated_block_size;
  DSTRESS_CHECK(block_size > 0 && seed_costs.calibrated_message_bits == message_bits);
  MicroCosts costs = seed_costs;

  circuit::Circuit circuit = CalibrationCircuit();
  circuit::EvalPlan plan(circuit);
  const size_t num_and = circuit.stats().num_and;

  std::unique_ptr<net::Transport> net_owner = net::MakeSimTransport(block_size);
  std::vector<net::NodeId> ids(block_size);
  for (int i = 0; i < block_size; i++) {
    ids[i] = i;
  }
  auto prg = crypto::ChaCha20Prg::FromSeed(11);
  // batch_width independent instances, each XOR-shared across the block.
  std::vector<std::vector<mpc::BitVector>> instance_shares;  // [instance][party]
  instance_shares.reserve(batch_width);
  for (int j = 0; j < batch_width; j++) {
    mpc::BitVector inputs(circuit.num_inputs(), 0);
    for (auto& bit : inputs) {
      bit = prg.NextBit() ? 1 : 0;
    }
    instance_shares.push_back(mpc::ShareBits(inputs, block_size, prg));
  }
  std::vector<mpc::DealerTripleSource> sources;
  sources.reserve(block_size);
  for (int p = 0; p < block_size; p++) {
    sources.emplace_back(p, block_size, 77);
  }

  // All roles of all instances advance in one lockstep call on this thread
  // — the runtime's single-scheduler mode. Triple prefetch is inside the
  // timed section, mirroring Calibrate() where Eval draws its own triples;
  // best of a few repetitions, like the seed measurement.
  constexpr int kGmwReps = 3;
  double seconds = 0;
  for (int rep = 0; rep < kGmwReps; rep++) {
    Stopwatch timer;
    std::vector<mpc::BatchInstance> items;
    items.reserve(static_cast<size_t>(block_size) * batch_width);
    for (int p = 0; p < block_size; p++) {
      for (int j = 0; j < batch_width; j++) {
        mpc::BatchInstance item;
        item.plan = &plan;
        item.parties = ids;
        item.my_index = p;
        item.triples = sources[p].Generate(num_and);
        item.input_shares = instance_shares[j][p];
        item.order_key = static_cast<uint64_t>(j);
        items.push_back(std::move(item));
      }
    }
    mpc::EvalBatchInstances(net_owner.get(), /*session=*/0, std::move(items));
    double rep_seconds = timer.ElapsedSeconds();
    seconds = rep == 0 ? rep_seconds : std::min(seconds, rep_seconds);
  }
  costs.seconds_per_and = seconds / (static_cast<double>(num_and) * batch_width);
  return costs;
}

Projection Project(const MicroCosts& costs, const ProjectionParams& p) {
  Projection out;
  const double k1 = p.block_size;
  const double d = p.degree_bound;
  const double iters = p.iterations;
  const double point = crypto::EcPoint::kCompressedSize;

  // Initialization: share split + distribution; compute cost is a few ns
  // per shared bit, traffic is one packed state per member.
  out.init_seconds = 1e-8 * k1 * p.state_bits;
  double init_traffic = k1 * (p.state_bits / 8.0);

  // Computation steps: a node serves in k+1 blocks and, per the paper's
  // conservative assumption, does not overlap them. I iterations plus the
  // final computation step.
  out.compute_seconds =
      (iters + 1) * k1 * static_cast<double>(p.update_and_gates) * costs.seconds_per_and;
  double compute_traffic =
      (iters + 1) * k1 * static_cast<double>(p.update_and_gates) * costs.bytes_per_and;

  // Communication steps, per iteration, per node:
  //  - as a member of k+1 blocks, encrypt one bundle per out-edge (D);
  //  - as source endpoint of its own D out-edges, aggregate + mask;
  //  - as destination endpoint of its D in-edges, adjust + fan out;
  //  - as a member of k+1 blocks, decrypt one column per in-edge (D).
  out.communicate_seconds =
      iters * (k1 * d * costs.seconds_bundle_encrypt + d * costs.seconds_source_endpoint +
               d * costs.seconds_dest_adjust + k1 * d * costs.seconds_column_decrypt);
  double bundle_bytes = (1.0 + k1 * p.message_bits) * point;
  double column_bytes = (1.0 + p.message_bits) * point;
  double communicate_traffic =
      iters * (k1 * d * bundle_bytes     // member -> source endpoint
               + d * bundle_bytes        // source endpoint -> destination
               + d * k1 * column_bytes);  // destination -> members

  // Aggregation tree: leaf groups in parallel, then the root combine with
  // in-MPC noising; two serial levels of MPC wall time.
  out.aggregate_seconds =
      static_cast<double>(p.aggregate_and_gates_per_group) * costs.seconds_per_and +
      static_cast<double>(p.combine_and_gates) * costs.seconds_per_and;
  double groups = static_cast<double>((p.num_nodes + p.aggregation_fanout - 1) /
                                      p.aggregation_fanout);
  // Per-node amortized aggregation traffic: forwarding the state shares
  // plus the (rare) leaf/root memberships' GMW traffic.
  double aggregate_traffic =
      k1 * (p.state_bits / 8.0) +
      (groups * k1 / p.num_nodes) *
          (static_cast<double>(p.aggregate_and_gates_per_group) * costs.bytes_per_and) +
      (k1 / p.num_nodes) * (static_cast<double>(p.combine_and_gates) * costs.bytes_per_and);

  out.total_seconds = out.init_seconds + out.compute_seconds + out.communicate_seconds +
                      out.aggregate_seconds;
  out.traffic_bytes_per_node =
      init_traffic + compute_traffic + communicate_traffic + aggregate_traffic;
  return out;
}

Projection ProjectWan(const MicroCosts& costs, const ProjectionParams& p,
                      const WanParams& wan) {
  Projection out = Project(costs, p);
  const double rtt = wan.rtt_ms / 1e3;
  const double k1 = p.block_size;
  const double iters = p.iterations;

  // GMW latency: each computation step runs update_and_depth communication
  // rounds; a node's k+1 serialized block memberships each pay them.
  out.compute_seconds += (iters + 1) * k1 * static_cast<double>(p.update_and_depth) * rtt;
  // Transfer latency: member -> i -> j -> member is three one-way hops per
  // communication step (edges within a step proceed in parallel).
  out.communicate_seconds += iters * 1.5 * rtt;
  // Aggregation: one hop to the leaf block, the leaf MPC's rounds, one hop
  // to the root, the root MPC's rounds.
  out.aggregate_seconds +=
      rtt + static_cast<double>(p.aggregate_and_depth) * rtt +
      rtt + static_cast<double>(p.combine_and_depth) * rtt;

  // Bandwidth: all of a node's traffic crosses its uplink.
  double uplink_bytes_per_second = wan.bandwidth_mbps * 1e6 / 8.0;
  double bandwidth_seconds = out.traffic_bytes_per_node / uplink_bytes_per_second;

  out.total_seconds = out.init_seconds + out.compute_seconds + out.communicate_seconds +
                      out.aggregate_seconds + bandwidth_seconds;
  return out;
}

}  // namespace dstress::costmodel
