#include "src/costmodel/cost_model.h"

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/circuit/builder.h"
#include "src/common/check.h"
#include "src/common/stopwatch.h"
#include "src/crypto/elgamal.h"
#include "src/mpc/gmw.h"
#include "src/mpc/sharing.h"
#include "src/mpc/triples.h"
#include "src/net/transport_spec.h"
#include "src/transfer/batch_engine.h"
#include "src/transfer/transfer.h"

namespace dstress::costmodel {

std::string MicroCosts::ToString() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "per-AND: %.2f us / %.1f B; transfer: encrypt=%.2f ms endpoint=%.2f ms "
                "adjust=%.2f ms decrypt=%.2f ms table-build=%.2f ms (block=%d L=%d)",
                seconds_per_and * 1e6, bytes_per_and, seconds_bundle_encrypt * 1e3,
                seconds_source_endpoint * 1e3, seconds_dest_adjust * 1e3,
                seconds_column_decrypt * 1e3, seconds_cert_table_build * 1e3,
                calibrated_block_size, calibrated_message_bits);
  return buf;
}

std::string Projection::ToString() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "total=%.1f min (init=%.1fs compute=%.1f min comm=%.1f min agg=%.1fs) "
                "traffic/node=%.1f MB",
                total_seconds / 60, init_seconds, compute_seconds / 60,
                communicate_seconds / 60, aggregate_seconds, traffic_bytes_per_node / 1e6);
  return buf;
}

namespace {

// The multiplier-heavy circuit both calibrations evaluate.
circuit::Circuit CalibrationCircuit() {
  circuit::Builder b;
  circuit::Word x = b.InputWord(32);
  circuit::Word y = b.InputWord(32);
  circuit::Word acc = b.Mul(x, y);
  for (int i = 0; i < 6; i++) {
    acc = b.Mul(acc, y);
  }
  b.OutputWord(acc);
  return b.Build();
}

}  // namespace

MicroCosts Calibrate(int block_size, int message_bits) {
  MicroCosts costs;
  costs.calibrated_block_size = block_size;
  costs.calibrated_message_bits = message_bits;

  // --- GMW per-AND cost: evaluate a multiplier-heavy circuit in one block.
  {
    circuit::Circuit circuit = CalibrationCircuit();

    std::unique_ptr<net::Transport> net_owner = net::MakeSimTransport(block_size);
    net::Transport& net = *net_owner;
    auto prg = crypto::ChaCha20Prg::FromSeed(11);
    mpc::BitVector inputs(circuit.num_inputs(), 0);
    for (auto& bit : inputs) {
      bit = prg.NextBit() ? 1 : 0;
    }
    auto shares = mpc::ShareBits(inputs, block_size, prg);

    // Best of a few repetitions: one block evaluation is only ~10 ms, so
    // a single shot is at the mercy of scheduler noise.
    constexpr int kGmwReps = 3;
    double seconds = 0;
    for (int rep = 0; rep < kGmwReps; rep++) {
      Stopwatch timer;
      std::vector<std::thread> threads;
      for (int p = 0; p < block_size; p++) {
        threads.emplace_back([&, p, rep] {
          std::vector<net::NodeId> ids(block_size);
          for (int i = 0; i < block_size; i++) {
            ids[i] = i;
          }
          mpc::DealerTripleSource triples(p, block_size, 77 + rep);
          mpc::GmwParty party(&net, ids, p, &triples);
          party.Eval(circuit, shares[p]);
        });
      }
      for (auto& t : threads) {
        t.join();
      }
      double rep_seconds = timer.ElapsedSeconds();
      seconds = rep == 0 ? rep_seconds : std::min(seconds, rep_seconds);
    }
    costs.seconds_per_and = seconds / static_cast<double>(circuit.stats().num_and);
    costs.bytes_per_and = static_cast<double>(net.TotalBytes()) /
                          (static_cast<double>(kGmwReps) * block_size * circuit.stats().num_and);
  }

  // --- Transfer protocol per-role costs, wire-to-wire: each role is timed
  // exactly as its Run*-task body executes it — deserialize incoming wire
  // bytes, run the scheme function, serialize outgoing wire bytes — without
  // the network itself. The codec is real per-role CPU (a field inversion
  // per compressed point written, a square root per point read), so leaving
  // it out would understate every role and overstate nothing.
  {
    auto prg = crypto::ChaCha20Prg::FromSeed(21);
    transfer::TransferParams params;
    params.block_size = block_size;
    params.message_bits = message_bits;
    params.budget_alpha = 0.9;
    // Sized for the masking noise at this block size; the fixed 512 the
    // seed used overflows for the paper's block size 20 and aborts the
    // full-scale calibration.
    params.dlog_range = params.RecommendedDlogRange(1e-9);

    transfer::BlockKeys dest_keys = transfer::TransferSetup(block_size, message_bits, prg);
    crypto::U256 neighbor_key = prg.NextScalar(crypto::CurveOrder());
    transfer::BlockCertificate cert =
        transfer::MakeBlockCertificate(transfer::PublicKeysOf(dest_keys), neighbor_key);
    crypto::DlogTable table(params.dlog_range);

    mpc::BitVector share(message_bits, 0);
    for (auto& bit : share) {
      bit = prg.NextBit() ? 1 : 0;
    }

    constexpr int kReps = 3;
    Stopwatch timer;
    std::vector<Bytes> bundle_wires;  // RunSenderMember: encrypt + serialize
    for (int member = 0; member < block_size; member++) {
      bundle_wires.push_back(transfer::EncryptSubshares(share, cert, prg).Serialize());
    }
    costs.seconds_bundle_encrypt = timer.ElapsedSeconds() / block_size;

    timer.Reset();
    Bytes agg_wire;  // RunSourceEndpoint: deserialize all + aggregate + serialize
    for (int rep = 0; rep < kReps; rep++) {
      std::vector<transfer::SubshareBundle> bundles;
      bundles.reserve(block_size);
      for (const Bytes& raw : bundle_wires) {
        bundles.push_back(transfer::SubshareBundle::Deserialize(raw, block_size, message_bits));
      }
      agg_wire = transfer::AggregateSubshares(bundles, params, prg).Serialize();
    }
    costs.seconds_source_endpoint = timer.ElapsedSeconds() / kReps;

    timer.Reset();
    std::vector<Bytes> column_wires;  // RunDestEndpoint: deser + adjust + fan out
    for (int rep = 0; rep < kReps; rep++) {
      transfer::AggregatedColumns agg =
          transfer::AggregatedColumns::Deserialize(agg_wire, block_size, message_bits);
      transfer::AggregatedColumns adjusted = transfer::AdjustAggregated(agg, neighbor_key);
      column_wires.clear();
      for (int member = 0; member < block_size; member++) {
        transfer::MemberColumn column{adjusted.c1, adjusted.c2[member]};
        column_wires.push_back(column.Serialize());
      }
    }
    costs.seconds_dest_adjust = timer.ElapsedSeconds() / kReps;

    timer.Reset();
    for (int member = 0; member < block_size; member++) {
      // RunReceiverMember: deserialize + recover.
      transfer::MemberColumn column =
          transfer::MemberColumn::Deserialize(column_wires[member], message_bits);
      mpc::BitVector recovered;
      bool ok = transfer::RecoverShare(column, dest_keys.members[member], table, &recovered);
      DSTRESS_CHECK(ok);
    }
    costs.seconds_column_decrypt = timer.ElapsedSeconds() / block_size;
  }
  return costs;
}

MicroCosts CalibrateBatched(const MicroCosts& seed_costs, int message_bits, int batch_width) {
  DSTRESS_CHECK(batch_width > 0);
  // The per-AND wire bytes are copied from the seed measurement (batching
  // does not change the wire); the per-AND time and all four transfer role
  // times are re-measured through the batched engines below.
  const int block_size = seed_costs.calibrated_block_size;
  DSTRESS_CHECK(block_size > 0 && seed_costs.calibrated_message_bits == message_bits);
  MicroCosts costs = seed_costs;

  circuit::Circuit circuit = CalibrationCircuit();
  circuit::EvalPlan plan(circuit);
  const size_t num_and = circuit.stats().num_and;

  std::unique_ptr<net::Transport> net_owner = net::MakeSimTransport(block_size);
  std::vector<net::NodeId> ids(block_size);
  for (int i = 0; i < block_size; i++) {
    ids[i] = i;
  }
  auto prg = crypto::ChaCha20Prg::FromSeed(11);
  // batch_width independent instances, each XOR-shared across the block.
  std::vector<std::vector<mpc::BitVector>> instance_shares;  // [instance][party]
  instance_shares.reserve(batch_width);
  for (int j = 0; j < batch_width; j++) {
    mpc::BitVector inputs(circuit.num_inputs(), 0);
    for (auto& bit : inputs) {
      bit = prg.NextBit() ? 1 : 0;
    }
    instance_shares.push_back(mpc::ShareBits(inputs, block_size, prg));
  }
  std::vector<mpc::DealerTripleSource> sources;
  sources.reserve(block_size);
  for (int p = 0; p < block_size; p++) {
    sources.emplace_back(p, block_size, 77);
  }

  // All roles of all instances advance in one lockstep call on this thread
  // — the runtime's single-scheduler mode. Triple prefetch is inside the
  // timed section, mirroring Calibrate() where Eval draws its own triples;
  // best of a few repetitions, like the seed measurement.
  constexpr int kGmwReps = 3;
  double seconds = 0;
  for (int rep = 0; rep < kGmwReps; rep++) {
    Stopwatch timer;
    std::vector<mpc::BatchInstance> items;
    items.reserve(static_cast<size_t>(block_size) * batch_width);
    for (int p = 0; p < block_size; p++) {
      for (int j = 0; j < batch_width; j++) {
        mpc::BatchInstance item;
        item.plan = &plan;
        item.parties = ids;
        item.my_index = p;
        item.triples = sources[p].Generate(num_and);
        item.input_shares = instance_shares[j][p];
        item.order_key = static_cast<uint64_t>(j);
        items.push_back(std::move(item));
      }
    }
    mpc::EvalBatchInstances(net_owner.get(), /*session=*/0, std::move(items));
    double rep_seconds = timer.ElapsedSeconds();
    seconds = rep == 0 ? rep_seconds : std::min(seconds, rep_seconds);
  }
  costs.seconds_per_and = seconds / (static_cast<double>(num_and) * batch_width);

  // --- Transfer role costs through the batched wire-level engine. Mirrors
  // Calibrate()'s setup; the wire bytes the two paths produce are
  // bit-identical (transfer_test pins this), only the CPU time differs.
  {
    auto prg = crypto::ChaCha20Prg::FromSeed(21);
    transfer::TransferParams params;
    params.block_size = block_size;
    params.message_bits = message_bits;
    params.budget_alpha = 0.9;
    params.dlog_range = params.RecommendedDlogRange(1e-9);

    transfer::BlockKeys dest_keys = transfer::TransferSetup(block_size, message_bits, prg);
    crypto::U256 neighbor_key = prg.NextScalar(crypto::CurveOrder());
    transfer::BlockCertificate cert =
        transfer::MakeBlockCertificate(transfer::PublicKeysOf(dest_keys), neighbor_key);
    crypto::DlogTable table(params.dlog_range);
    transfer::EvenNoiseCache noise(table.range());

    // Once-per-run cert table build (Project() charges it k1*D times per
    // node). Copies taken before the first Tables() call have an empty
    // cache, so each rep measures a real build.
    constexpr int kReps = 3;
    std::vector<transfer::BlockCertificate> cert_copies(kReps, cert);
    double build_seconds = 0;
    for (int rep = 0; rep < kReps; rep++) {
      Stopwatch timer;
      cert_copies[rep].Tables();
      double rep_seconds = timer.ElapsedSeconds();
      build_seconds = rep == 0 ? rep_seconds : std::min(build_seconds, rep_seconds);
    }
    costs.seconds_cert_table_build = build_seconds;
    cert = std::move(cert_copies[0]);  // tables already built: steady state

    mpc::BitVector share(message_bits, 0);
    for (auto& bit : share) {
      bit = prg.NextBit() ? 1 : 0;
    }
    std::vector<mpc::BitVector> member_shares(block_size, share);

    double encrypt_seconds = 0;
    std::vector<Bytes> bundles;
    for (int rep = 0; rep < kReps; rep++) {
      std::vector<crypto::ChaCha20Prg> prgs;
      for (int member = 0; member < block_size; member++) {
        prgs.push_back(crypto::ChaCha20Prg::FromSeed(100 + member));
      }
      Stopwatch timer;
      bundles = transfer::EncryptSubsharesWire(member_shares, cert, prgs);
      double rep_seconds = timer.ElapsedSeconds();
      encrypt_seconds = rep == 0 ? rep_seconds : std::min(encrypt_seconds, rep_seconds);
    }
    costs.seconds_bundle_encrypt = encrypt_seconds / block_size;

    Stopwatch timer;
    Bytes agg = transfer::AggregateSubsharesWire(bundles, params, prg, noise);
    for (int rep = 1; rep < kReps; rep++) {
      agg = transfer::AggregateSubsharesWire(bundles, params, prg, noise);
    }
    costs.seconds_source_endpoint = timer.ElapsedSeconds() / kReps;

    timer.Reset();
    std::vector<Bytes> columns = transfer::AdjustAndSplitWire(agg, neighbor_key, params);
    for (int rep = 1; rep < kReps; rep++) {
      columns = transfer::AdjustAndSplitWire(agg, neighbor_key, params);
    }
    costs.seconds_dest_adjust = timer.ElapsedSeconds() / kReps;

    std::vector<const transfer::MemberKeys*> member_keys;
    for (int member = 0; member < block_size; member++) {
      member_keys.push_back(&dest_keys.members[member]);
    }
    // The per-column c1 table build happens inside RecoverSharesWire, so it
    // is part of the measured per-use cost, as in the real schedule.
    timer.Reset();
    std::vector<mpc::BitVector> recovered;
    bool ok = transfer::RecoverSharesWire(columns, member_keys, table, params, &recovered);
    DSTRESS_CHECK(ok);
    costs.seconds_column_decrypt = timer.ElapsedSeconds() / block_size;
  }
  return costs;
}

Projection Project(const MicroCosts& costs, const ProjectionParams& p) {
  Projection out;
  const double k1 = p.block_size;
  const double d = p.degree_bound;
  const double iters = p.iterations;
  const double point = crypto::EcPoint::kCompressedSize;

  // Initialization: share split + distribution; compute cost is a few ns
  // per shared bit, traffic is one packed state per member.
  out.init_seconds = 1e-8 * k1 * p.state_bits;
  double init_traffic = k1 * (p.state_bits / 8.0);

  // Computation steps: a node serves in k+1 blocks and, per the paper's
  // conservative assumption, does not overlap them. I iterations plus the
  // final computation step.
  out.compute_seconds =
      (iters + 1) * k1 * static_cast<double>(p.update_and_gates) * costs.seconds_per_and;
  double compute_traffic =
      (iters + 1) * k1 * static_cast<double>(p.update_and_gates) * costs.bytes_per_and;

  // Communication steps, per iteration, per node:
  //  - as a member of k+1 blocks, encrypt one bundle per out-edge (D);
  //  - as source endpoint of its own D out-edges, aggregate + mask;
  //  - as destination endpoint of its D in-edges, adjust + fan out;
  //  - as a member of k+1 blocks, decrypt one column per in-edge (D).
  out.communicate_seconds =
      iters * (k1 * d * costs.seconds_bundle_encrypt + d * costs.seconds_source_endpoint +
               d * costs.seconds_dest_adjust + k1 * d * costs.seconds_column_decrypt);
  // Batched engine only (zero for seed costs): each node builds fixed-base
  // key tables for every (block membership, out-edge certificate) pair once
  // per run, reused across all iterations' encryptions.
  out.communicate_seconds += k1 * d * costs.seconds_cert_table_build;
  // Transfer-plane overlap (see ProjectionParams::transfer_workers): the
  // node's k1*d per-edge tasks are independent, so with W workers the CPU
  // time divides by min(W, task count). At the paper's scale (k1*d >= 200)
  // the min never binds; it guards toy parameter sets.
  double workers = std::min(static_cast<double>(std::max(p.transfer_workers, 1)), k1 * d);
  out.communicate_seconds /= workers;
  double bundle_bytes = (1.0 + k1 * p.message_bits) * point;
  double column_bytes = (1.0 + p.message_bits) * point;
  double communicate_traffic =
      iters * (k1 * d * bundle_bytes     // member -> source endpoint
               + d * bundle_bytes        // source endpoint -> destination
               + d * k1 * column_bytes);  // destination -> members

  // Aggregation tree: leaf groups in parallel, then the root combine with
  // in-MPC noising; two serial levels of MPC wall time.
  out.aggregate_seconds =
      static_cast<double>(p.aggregate_and_gates_per_group) * costs.seconds_per_and +
      static_cast<double>(p.combine_and_gates) * costs.seconds_per_and;
  double groups = static_cast<double>((p.num_nodes + p.aggregation_fanout - 1) /
                                      p.aggregation_fanout);
  // Per-node amortized aggregation traffic: forwarding the state shares
  // plus the (rare) leaf/root memberships' GMW traffic.
  double aggregate_traffic =
      k1 * (p.state_bits / 8.0) +
      (groups * k1 / p.num_nodes) *
          (static_cast<double>(p.aggregate_and_gates_per_group) * costs.bytes_per_and) +
      (k1 / p.num_nodes) * (static_cast<double>(p.combine_and_gates) * costs.bytes_per_and);

  out.total_seconds = out.init_seconds + out.compute_seconds + out.communicate_seconds +
                      out.aggregate_seconds;
  out.traffic_bytes_per_node =
      init_traffic + compute_traffic + communicate_traffic + aggregate_traffic;
  return out;
}

Projection ProjectWan(const MicroCosts& costs, const ProjectionParams& p,
                      const WanParams& wan) {
  Projection out = Project(costs, p);
  const double rtt = wan.rtt_ms / 1e3;
  const double k1 = p.block_size;
  const double iters = p.iterations;

  // GMW latency: each computation step runs update_and_depth communication
  // rounds; a node's k+1 serialized block memberships each pay them.
  out.compute_seconds += (iters + 1) * k1 * static_cast<double>(p.update_and_depth) * rtt;
  // Transfer latency: member -> i -> j -> member is three one-way hops per
  // communication step (edges within a step proceed in parallel).
  out.communicate_seconds += iters * 1.5 * rtt;
  // Aggregation: one hop to the leaf block, the leaf MPC's rounds, one hop
  // to the root, the root MPC's rounds.
  out.aggregate_seconds +=
      rtt + static_cast<double>(p.aggregate_and_depth) * rtt +
      rtt + static_cast<double>(p.combine_and_depth) * rtt;

  // Bandwidth: all of a node's traffic crosses its uplink.
  double uplink_bytes_per_second = wan.bandwidth_mbps * 1e6 / 8.0;
  double bandwidth_seconds = out.traffic_bytes_per_node / uplink_bytes_per_second;

  out.total_seconds = out.init_seconds + out.compute_seconds + out.communicate_seconds +
                      out.aggregate_seconds + bandwidth_seconds;
  return out;
}

}  // namespace dstress::costmodel
