// Synthetic balance-sheet workloads for the systemic-risk case studies.
//
// There is no public interbank dataset (paper Appendix C), so workloads are
// generated over a synthetic network: banks receive cash/base assets and
// debt/cross-holding weights, scaled so that core banks are an order of
// magnitude larger than peripheral ones, and an exogenous shock wipes out
// the assets of a chosen set of banks. The two scenarios of Appendix C —
// a periphery shock the core absorbs, and a core shock that cascades — are
// both expressible through ShockParams.
#ifndef SRC_FINANCE_WORKLOAD_H_
#define SRC_FINANCE_WORKLOAD_H_

#include "src/common/rng.h"
#include "src/finance/eisenberg_noe.h"
#include "src/finance/elliott_golub_jackson.h"
#include "src/graph/graph.h"

namespace dstress::finance {

struct WorkloadParams {
  FixedPointFormat format;
  // Banks [0, core_size) are treated as core (larger balance sheets).
  int core_size = 0;
  double core_scale = 10.0;       // core balance-sheet multiplier
  uint64_t base_cash = 40;        // mean liquid reserve, money units
  uint64_t base_debt = 20;        // mean per-edge debt
  double cross_holding = 0.15;    // mean per-edge equity share (EGJ)
  double threshold_ratio = 0.6;   // EGJ failure threshold vs origVal
  double penalty_ratio = 0.25;    // EGJ penalty vs origVal
  uint64_t seed = 7;
};

struct ShockParams {
  // Vertices whose liquid/base assets are zeroed before the run.
  std::vector<int> shocked_banks;
  // Fraction of the asset that survives the shock (0 = total wipeout).
  double survival = 0.0;
};

// Generates an Eisenberg–Noe instance over `graph` and applies the shock.
EnInstance MakeEnWorkload(const graph::Graph& graph, const WorkloadParams& params,
                          const ShockParams& shock);

// Generates an Elliott–Golub–Jackson instance. orig_val is solved as the
// no-shock fixpoint of the valuation equation, then the shock is applied to
// base assets.
EgjInstance MakeEgjWorkload(const graph::Graph& graph, const WorkloadParams& params,
                            const ShockParams& shock);

// Shock application split out of the Make* generators: all RNG draws happen
// before the shock, so an ensemble can generate one base instance per
// workload seed and stamp many per-lane shocks onto copies of it instead of
// regenerating the workload per scenario.
void ApplyEnShock(EnInstance& instance, const ShockParams& shock);
void ApplyEgjShock(EgjInstance& instance, const ShockParams& shock);

}  // namespace dstress::finance

#endif  // SRC_FINANCE_WORKLOAD_H_
