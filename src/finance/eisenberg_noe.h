// The Eisenberg–Noe contagion model (paper §4.2, Figure 2a).
//
// Banks hold debt contracts: edge (i, j) with weight debts[i][j] means i
// owes j. Each bank pays its debts pro rata from its liquid assets (cash
// plus incoming payments); if assets fall short, the bank is bankrupt and
// pays the fraction prorate = liquid / totalDebt. Messages carry the
// *shortfall* — the part of a debt that will not be paid — and the
// aggregate is the Total Dollar Shortfall, TDS = Σ_i totalDebt_i * (1 −
// prorate_i). Eisenberg & Noe prove the fixpoint is unique and reached in
// at most n rounds; DStress runs a fixed iteration count (I ≈ log2 N per
// Appendix C).
//
// Three implementations, used to cross-validate each other in tests:
//  * MakeEnProgram — the DStress vertex program (boolean circuits);
//  * EnSolveFixed — host integer simulation with bit-identical arithmetic;
//  * EnSolveExact — double-precision economic reference.
#ifndef SRC_FINANCE_EISENBERG_NOE_H_
#define SRC_FINANCE_EISENBERG_NOE_H_

#include <vector>

#include "src/core/vertex_program.h"
#include "src/finance/fixed_point.h"
#include "src/graph/graph.h"
#include "src/mpc/sharing.h"

namespace dstress::finance {

// A concrete Eisenberg–Noe problem instance. debts[i] is aligned with
// graph.OutNeighbors(i): debts[i][d] is owed by i to its d-th out-neighbor.
struct EnInstance {
  const graph::Graph* graph = nullptr;
  std::vector<uint64_t> cash;                // [vertex], money units
  std::vector<std::vector<uint64_t>> debts;  // [vertex][out_slot]

  uint64_t TotalDebtOf(int v) const;
};

struct EnProgramParams {
  FixedPointFormat format;
  int degree_bound = 0;
  int iterations = 0;
  // Output-noise parameters (two-sided geometric on the TDS): alpha =
  // exp(-epsilon / sensitivity-in-money-units).
  double noise_alpha = 0.5;
  int aggregate_bits = 32;
};

// Builds the vertex program implementing Figure 2a.
core::VertexProgram MakeEnProgram(const EnProgramParams& params);

// Packs the per-vertex initial states in the layout the program's circuits
// expect.
std::vector<mpc::BitVector> MakeEnInitialStates(const EnInstance& instance,
                                                const EnProgramParams& params);

// Host-side integer simulation with exactly the circuit's fixed-point
// arithmetic (same division, clamps and widths). Returns the exact
// (unnoised) TDS in money units and optionally the per-vertex prorate
// words.
uint64_t EnSolveFixed(const EnInstance& instance, const EnProgramParams& params,
                      std::vector<uint64_t>* prorate_out = nullptr);

// Double-precision reference of the economic model (pro-rata clearing
// iteration). Returns the TDS; prorates_out gets the clearing fractions.
double EnSolveExact(const EnInstance& instance, int iterations,
                    std::vector<double>* prorates_out = nullptr);

}  // namespace dstress::finance

#endif  // SRC_FINANCE_EISENBERG_NOE_H_
