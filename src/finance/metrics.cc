#include "src/finance/metrics.h"

#include "src/common/check.h"

namespace dstress::finance {

RiskBreakdown EnBreakdown(const EnInstance& instance, const EnProgramParams& params) {
  RiskBreakdown out;
  std::vector<uint64_t> prorates;
  out.total_shortfall = EnSolveFixed(instance, params, &prorates);
  const uint64_t one = params.format.One();
  int n = instance.graph->num_vertices();
  DSTRESS_CHECK(static_cast<int>(prorates.size()) == n);
  out.banks.reserve(n);
  for (int v = 0; v < n; v++) {
    BankOutcome outcome;
    outcome.bank = v;
    outcome.failed = prorates[v] < one;
    uint64_t total_debt = instance.TotalDebtOf(v);
    // Unpaid fraction of the bank's debt, rounded exactly as the aggregate
    // circuit does: debt * (one - prorate) / one.
    outcome.shortfall = total_debt * (one - prorates[v]) / one;
    if (outcome.failed) {
      out.failed_banks++;
    }
    out.banks.push_back(outcome);
  }
  return out;
}

RiskBreakdown EgjBreakdown(const EgjInstance& instance, const EgjProgramParams& params) {
  RiskBreakdown out;
  std::vector<uint64_t> values;
  out.total_shortfall = EgjSolveFixed(instance, params, &values);
  int n = instance.graph->num_vertices();
  DSTRESS_CHECK(static_cast<int>(values.size()) == n);
  out.banks.reserve(n);
  for (int v = 0; v < n; v++) {
    BankOutcome outcome;
    outcome.bank = v;
    outcome.failed = values[v] < instance.threshold[v];
    outcome.shortfall = outcome.failed ? instance.threshold[v] - values[v] : 0;
    if (outcome.failed) {
      out.failed_banks++;
    }
    out.banks.push_back(outcome);
  }
  return out;
}

}  // namespace dstress::finance
