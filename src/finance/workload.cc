#include "src/finance/workload.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace dstress::finance {

namespace {

double ScaleOf(int v, const WorkloadParams& p) {
  return v < p.core_size ? p.core_scale : 1.0;
}

// Uniform draw in [0.5*mean, 1.5*mean].
uint64_t JitteredAmount(uint64_t mean, double scale, Rng& rng) {
  double lo = 0.5 * static_cast<double>(mean) * scale;
  double hi = 1.5 * static_cast<double>(mean) * scale;
  return static_cast<uint64_t>(lo + (hi - lo) * rng.Uniform());
}

}  // namespace

EnInstance MakeEnWorkload(const graph::Graph& graph, const WorkloadParams& params,
                          const ShockParams& shock) {
  Rng rng(params.seed);
  EnInstance instance;
  instance.graph = &graph;
  int n = graph.num_vertices();
  instance.cash.resize(n);
  instance.debts.resize(n);
  for (int v = 0; v < n; v++) {
    double scale = ScaleOf(v, params);
    instance.cash[v] = params.format.SaturateValue(JitteredAmount(params.base_cash, scale, rng));
    instance.debts[v].resize(graph.OutDegree(v));
    for (int s = 0; s < graph.OutDegree(v); s++) {
      // Debt size scales with the smaller endpoint, so a peripheral bank
      // never owes a core-sized amount.
      double edge_scale = std::min(scale, ScaleOf(graph.OutNeighbors(v)[s], params));
      instance.debts[v][s] =
          params.format.SaturateValue(JitteredAmount(params.base_debt, edge_scale, rng));
    }
  }
  ApplyEnShock(instance, shock);
  return instance;
}

void ApplyEnShock(EnInstance& instance, const ShockParams& shock) {
  const int n = static_cast<int>(instance.cash.size());
  for (int bank : shock.shocked_banks) {
    DSTRESS_CHECK(bank >= 0 && bank < n);
    instance.cash[bank] =
        static_cast<uint64_t>(static_cast<double>(instance.cash[bank]) * shock.survival);
  }
}

EgjInstance MakeEgjWorkload(const graph::Graph& graph, const WorkloadParams& params,
                            const ShockParams& shock) {
  Rng rng(params.seed);
  EgjInstance instance;
  instance.graph = &graph;
  int n = graph.num_vertices();
  instance.base.resize(n);
  instance.insh.resize(n);

  for (int v = 0; v < n; v++) {
    double scale = ScaleOf(v, params);
    instance.base[v] = params.format.SaturateValue(JitteredAmount(params.base_cash, scale, rng));
    instance.insh[v].resize(graph.InDegree(v));
  }
  // Cross-holdings: the shares of bank j held by others must sum below 1.
  // Draw per-edge shares and normalize per issuer when they exceed a cap.
  std::vector<double> issued(n, 0.0);
  std::vector<std::vector<double>> shares(n);
  for (int v = 0; v < n; v++) {
    shares[v].resize(graph.InDegree(v));
    for (int d = 0; d < graph.InDegree(v); d++) {
      double share = params.cross_holding * (0.5 + rng.Uniform());
      shares[v][d] = share;
      issued[graph.InNeighbors(v)[d]] += share;
    }
  }
  constexpr double kIssueCap = 0.8;
  for (int v = 0; v < n; v++) {
    for (int d = 0; d < graph.InDegree(v); d++) {
      int issuer = graph.InNeighbors(v)[d];
      double share = shares[v][d];
      if (issued[issuer] > kIssueCap) {
        share *= kIssueCap / issued[issuer];
      }
      instance.insh[v][d] = params.format.FracFromDouble(share);
    }
  }

  // Initial valuations: no-shock fixpoint of v_i = base_i + sum insh*v_j.
  std::vector<double> val(n);
  for (int v = 0; v < n; v++) {
    val[v] = static_cast<double>(instance.base[v]);
  }
  for (int iter = 0; iter < 64; iter++) {
    std::vector<double> next(n);
    for (int v = 0; v < n; v++) {
      double acc = static_cast<double>(instance.base[v]);
      for (int d = 0; d < graph.InDegree(v); d++) {
        acc += params.format.FracToDouble(instance.insh[v][d]) * val[graph.InNeighbors(v)[d]];
      }
      next[v] = acc;
    }
    val = next;
  }
  instance.orig_val.resize(n);
  instance.threshold.resize(n);
  instance.penalty.resize(n);
  for (int v = 0; v < n; v++) {
    instance.orig_val[v] = params.format.SaturateValue(static_cast<uint64_t>(val[v]));
    instance.threshold[v] = params.format.SaturateValue(
        static_cast<uint64_t>(val[v] * params.threshold_ratio));
    instance.penalty[v] = params.format.SaturateValue(
        static_cast<uint64_t>(val[v] * params.penalty_ratio));
  }

  ApplyEgjShock(instance, shock);
  return instance;
}

void ApplyEgjShock(EgjInstance& instance, const ShockParams& shock) {
  const int n = static_cast<int>(instance.base.size());
  for (int bank : shock.shocked_banks) {
    DSTRESS_CHECK(bank >= 0 && bank < n);
    instance.base[bank] =
        static_cast<uint64_t>(static_cast<double>(instance.base[bank]) * shock.survival);
  }
}

}  // namespace dstress::finance
