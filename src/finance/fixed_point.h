// Fixed-point conventions shared by the systemic-risk models.
//
// MPC circuits compute over integers, so dollar values are scaled to
// `value_bits`-wide unsigned words (one unit = one "money unit" of the
// workload, e.g. $10M per unit at the default widths) and fractions
// (prorate factors, valuation discounts, cross-holding shares) are Q0.F
// words with F = frac_bits: the rational x is represented by round(x*2^F).
//
// All model arithmetic saturates instead of wrapping — a circuit must be a
// total function, and saturation preserves the models' monotonicity.
#ifndef SRC_FINANCE_FIXED_POINT_H_
#define SRC_FINANCE_FIXED_POINT_H_

#include <cstdint>

namespace dstress::finance {

struct FixedPointFormat {
  int value_bits = 16;  // width of dollar-valued words
  int frac_bits = 8;    // fractional bits of ratio words

  uint64_t One() const { return 1ULL << frac_bits; }
  uint64_t MaxValue() const { return (1ULL << value_bits) - 1; }

  // Host-side helpers mirroring the circuit semantics (used by the exact
  // fixed-point reference implementations and the workload generators).
  uint64_t SaturateValue(uint64_t v) const { return v > MaxValue() ? MaxValue() : v; }
  uint64_t FracFromDouble(double x) const {
    if (x < 0) {
      return 0;
    }
    double scaled = x * static_cast<double>(One());
    uint64_t v = static_cast<uint64_t>(scaled + 0.5);
    return v > One() ? One() : v;
  }
  double FracToDouble(uint64_t f) const { return static_cast<double>(f) / One(); }
};

}  // namespace dstress::finance

#endif  // SRC_FINANCE_FIXED_POINT_H_
