// Alternative systemic-risk metrics and per-bank breakdowns.
//
// The paper's §4.1 weighs two metrics and picks the Total Dollar Shortfall
// (TDS): the more intuitive "number of failed banks" both collapses very
// different shortfalls into one count and — worse for privacy — can jump by
// Θ(N) when a single edge changes, so it has no useful differential-privacy
// sensitivity bound. These helpers compute the failed-bank count and the
// per-bank breakdowns from the *reference* solvers for analysis, scenario
// exploration and tests; DStress itself only ever releases the noised TDS.
#ifndef SRC_FINANCE_METRICS_H_
#define SRC_FINANCE_METRICS_H_

#include <cstdint>
#include <vector>

#include "src/finance/eisenberg_noe.h"
#include "src/finance/elliott_golub_jackson.h"

namespace dstress::finance {

struct BankOutcome {
  int bank = 0;
  bool failed = false;
  // EN: unpaid debt (totalDebt * (1 - prorate)); EGJ: threshold - value for
  // failed banks, 0 otherwise. Money units.
  uint64_t shortfall = 0;
};

struct RiskBreakdown {
  uint64_t total_shortfall = 0;  // == the models' TDS
  int failed_banks = 0;
  std::vector<BankOutcome> banks;
};

// Runs the fixed-point EN solver and derives per-bank outcomes. A bank
// "fails" when its clearing prorate ends below 1 (it cannot pay in full).
RiskBreakdown EnBreakdown(const EnInstance& instance, const EnProgramParams& params);

// Runs the fixed-point EGJ solver; a bank fails when its final valuation is
// below its threshold.
RiskBreakdown EgjBreakdown(const EgjInstance& instance, const EgjProgramParams& params);

}  // namespace dstress::finance

#endif  // SRC_FINANCE_METRICS_H_
