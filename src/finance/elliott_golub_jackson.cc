#include "src/finance/elliott_golub_jackson.h"

#include <algorithm>

#include "src/common/check.h"

namespace dstress::finance {

namespace {

using circuit::Builder;
using circuit::Wire;
using circuit::Word;

// State layout (all words value_bits wide):
//   [base][origVal][value][threshold][penalty][insh[0..D)][origValNbr[0..D)]
// insh words hold Q0.F fractions; origValNbr is the in-neighbor's initial
// valuation (the origVal[i][j] of Figure 2b).
int StateBits(const EgjProgramParams& p) {
  return (5 + 2 * p.degree_bound) * p.format.value_bits;
}

Word Slice(const Word& state, int index, int width) {
  return Word(state.begin() + static_cast<long>(index) * width,
              state.begin() + static_cast<long>(index + 1) * width);
}

}  // namespace

core::VertexProgram MakeEgjProgram(const EgjProgramParams& params) {
  DSTRESS_CHECK(params.degree_bound > 0);
  const int w = params.format.value_bits;
  const int f = params.format.frac_bits;
  DSTRESS_CHECK(f < w);

  core::VertexProgram program;
  program.state_bits = StateBits(params);
  program.message_bits = w;
  program.degree_bound = params.degree_bound;
  program.iterations = params.iterations;
  program.aggregate_bits = params.aggregate_bits;
  program.output_noise.alpha = params.noise_alpha;

  const int d_bound = params.degree_bound;
  const FixedPointFormat format = params.format;

  program.build_update = [w, f, d_bound, format](Builder& b, const Word& state,
                                                 const std::vector<Word>& in_msgs,
                                                 Word* new_state, std::vector<Word>* out_msgs) {
    Word base = Slice(state, 0, w);
    Word orig_val = Slice(state, 1, w);
    Word threshold = Slice(state, 3, w);
    Word penalty = Slice(state, 4, w);
    std::vector<Word> insh(d_bound), orig_nbr(d_bound);
    for (int d = 0; d < d_bound; d++) {
      insh[d] = Slice(state, 5 + d, w);
      orig_nbr[d] = Slice(state, 5 + d_bound + d, w);
    }

    Word one = b.ConstWord(format.One(), w);

    // value = base + sum_d insh[d] * (1 - discount_d) * origValNbr[d].
    const int wide = w + 8;
    DSTRESS_CHECK(d_bound < (1 << 8));
    Word value_wide = b.ZeroExtend(base, wide);
    for (int d = 0; d < d_bound; d++) {
      Word discount = b.ClampMax(in_msgs[d], one);
      Word remain = b.Sub(one, discount);
      Word nbr_value = b.Truncate(
          b.ShiftRightConst(
              b.Mul(b.ZeroExtend(orig_nbr[d], w + f), b.ZeroExtend(remain, w + f)), f),
          w);
      Word holding = b.Truncate(
          b.ShiftRightConst(b.Mul(b.ZeroExtend(insh[d], w + f), b.ZeroExtend(nbr_value, w + f)),
                            f),
          w);
      value_wide = b.Add(value_wide, b.ZeroExtend(holding, wide));
    }
    Wire overflow = b.Zero();
    for (int bit = w; bit < wide; bit++) {
      overflow = b.Or(overflow, value_wide[bit]);
    }
    Word value = b.MuxWord(overflow, b.ConstWord(format.MaxValue(), w),
                           b.Truncate(value_wide, w));

    // Distress penalty: if value < threshold, value -= penalty (floored 0).
    Wire failed = b.Ult(value, threshold);
    Wire penalty_underflow = b.Ult(value, penalty);
    Word after_penalty =
        b.MuxWord(penalty_underflow, b.ConstWord(0, w), b.Sub(value, penalty));
    value = b.MuxWord(failed, after_penalty, value);

    *new_state = base;
    new_state->insert(new_state->end(), orig_val.begin(), orig_val.end());
    new_state->insert(new_state->end(), value.begin(), value.end());
    new_state->insert(new_state->end(), threshold.begin(), threshold.end());
    new_state->insert(new_state->end(), penalty.begin(), penalty.end());
    for (int d = 0; d < d_bound; d++) {
      new_state->insert(new_state->end(), insh[d].begin(), insh[d].end());
    }
    for (int d = 0; d < d_bound; d++) {
      new_state->insert(new_state->end(), orig_nbr[d].begin(), orig_nbr[d].end());
    }

    // Broadcast discount: 1 - value/origVal (clamped into [0, 1]).
    Word ratio = b.ClampMax(b.DivFixed(value, orig_val, f), one);
    Word discount_out = b.Sub(one, ratio);
    out_msgs->assign(d_bound, discount_out);
  };

  const int agg_bits = params.aggregate_bits;
  program.build_contribution = [w, agg_bits](Builder& b, const Word& state) -> Word {
    Word value = Slice(state, 2, w);
    Word threshold = Slice(state, 3, w);
    Wire failed = b.Ult(value, threshold);
    Word gap = b.MuxWord(failed, b.Sub(threshold, value), b.ConstWord(0, w));
    return b.ZeroExtend(gap, agg_bits);
  };

  return program;
}

std::vector<mpc::BitVector> MakeEgjInitialStates(const EgjInstance& instance,
                                                 const EgjProgramParams& params) {
  const graph::Graph& g = *instance.graph;
  const int w = params.format.value_bits;
  const int d_bound = params.degree_bound;
  std::vector<mpc::BitVector> states;
  states.reserve(g.num_vertices());
  for (int v = 0; v < g.num_vertices(); v++) {
    mpc::BitVector state;
    state.reserve(StateBits(params));
    auto append = [&](uint64_t value) {
      mpc::AppendBits(&state, mpc::WordToBits(params.format.SaturateValue(value), w));
    };
    append(instance.base[v]);
    append(instance.orig_val[v]);
    append(instance.orig_val[v]);  // value starts at the initial valuation
    append(instance.threshold[v]);
    append(instance.penalty[v]);
    for (int d = 0; d < d_bound; d++) {
      append(d < g.InDegree(v) ? instance.insh[v][d] : 0);
    }
    for (int d = 0; d < d_bound; d++) {
      uint64_t nbr = 0;
      if (d < g.InDegree(v)) {
        nbr = instance.orig_val[g.InNeighbors(v)[d]];
      }
      append(nbr);
    }
    states.push_back(std::move(state));
  }
  return states;
}

uint64_t EgjSolveFixed(const EgjInstance& instance, const EgjProgramParams& params,
                       std::vector<uint64_t>* values_out) {
  const graph::Graph& g = *instance.graph;
  const int n = g.num_vertices();
  const int f = params.format.frac_bits;
  const uint64_t one = params.format.One();
  const uint64_t max_value = params.format.MaxValue();

  auto sat = [&](uint64_t v) { return params.format.SaturateValue(v); };

  std::vector<std::vector<uint64_t>> discount_in(n);
  for (int v = 0; v < n; v++) {
    discount_in[v].assign(g.InDegree(v), 0);
  }
  std::vector<uint64_t> value(n);
  for (int v = 0; v < n; v++) {
    value[v] = sat(instance.orig_val[v]);
  }

  for (int step = 0; step <= params.iterations; step++) {
    for (int v = 0; v < n; v++) {
      uint64_t acc = sat(instance.base[v]);
      for (int d = 0; d < g.InDegree(v); d++) {
        uint64_t discount = std::min(discount_in[v][d], one);
        uint64_t remain = one - discount;
        uint64_t nbr_orig = sat(instance.orig_val[g.InNeighbors(v)[d]]);
        uint64_t nbr_value = (nbr_orig * remain) >> f;
        uint64_t holding = (sat(instance.insh[v][d]) * nbr_value) >> f;
        acc += holding;
      }
      acc = std::min(acc, max_value);
      if (acc < sat(instance.threshold[v])) {
        uint64_t pen = sat(instance.penalty[v]);
        acc = acc < pen ? 0 : acc - pen;
      }
      value[v] = acc;
    }
    if (step == params.iterations) {
      break;
    }
    // Communication: broadcast discounts to holders (out-neighbors).
    for (int v = 0; v < n; v++) {
      uint64_t orig = sat(instance.orig_val[v]);
      uint64_t ratio = orig == 0 ? one : std::min(one, (value[v] << f) / orig);
      uint64_t discount = one - ratio;
      for (int s = 0; s < g.OutDegree(v); s++) {
        int holder = g.OutNeighbors(v)[s];
        const auto& in = g.InNeighbors(holder);
        for (size_t slot = 0; slot < in.size(); slot++) {
          if (in[slot] == v) {
            discount_in[holder][slot] = discount;
            break;
          }
        }
      }
    }
  }

  if (values_out != nullptr) {
    *values_out = value;
  }
  uint64_t tds = 0;
  for (int v = 0; v < n; v++) {
    uint64_t thr = sat(instance.threshold[v]);
    if (value[v] < thr) {
      tds += thr - value[v];
    }
  }
  return tds;
}

double EgjSolveExact(const EgjInstance& instance, int iterations,
                     const FixedPointFormat& fmt, std::vector<double>* values_out) {
  const graph::Graph& g = *instance.graph;
  const int n = g.num_vertices();
  std::vector<double> value(n);
  for (int v = 0; v < n; v++) {
    value[v] = static_cast<double>(instance.orig_val[v]);
  }
  for (int it = 0; it <= iterations; it++) {
    std::vector<double> next(n, 0.0);
    for (int v = 0; v < n; v++) {
      double acc = static_cast<double>(instance.base[v]);
      for (int d = 0; d < g.InDegree(v); d++) {
        int j = g.InNeighbors(v)[d];
        double share = fmt.FracToDouble(instance.insh[v][d]);
        acc += share * std::max(0.0, value[j]);
      }
      if (acc < static_cast<double>(instance.threshold[v])) {
        acc = std::max(0.0, acc - static_cast<double>(instance.penalty[v]));
      }
      next[v] = acc;
    }
    value = next;
  }
  if (values_out != nullptr) {
    *values_out = value;
  }
  double tds = 0;
  for (int v = 0; v < n; v++) {
    double thr = static_cast<double>(instance.threshold[v]);
    if (value[v] < thr) {
      tds += thr - value[v];
    }
  }
  return tds;
}

}  // namespace dstress::finance
