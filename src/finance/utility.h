// Utility and privacy-parameter analysis for the systemic-risk deployment
// (paper §4.4–§4.5).
//
// Sensitivity bounds come from Hemenway–Khanna: 2/r for
// Elliott–Golub–Jackson and 1/r for Eisenberg–Noe, where r bounds the
// leverage ratio (Basel III: r = 0.1). Dollar-differential privacy protects
// reallocations of up to T dollars in one portfolio, so the Laplace scale
// is T * sensitivity / epsilon.
#ifndef SRC_FINANCE_UTILITY_H_
#define SRC_FINANCE_UTILITY_H_

namespace dstress::finance {

// Sensitivity of the TDS to a T-dollar reallocation, in multiples of T.
double EnSensitivity(double leverage_bound_r);   // 1/r
double EgjSensitivity(double leverage_bound_r);  // 2/r

// Smallest epsilon such that |Lap(T*s/eps)| <= error_bound with the given
// confidence: eps = s*T*ln(1/(1-confidence)) / error_bound.
double EpsilonForAccuracy(double sensitivity, double granularity_dollars,
                          double error_bound_dollars, double confidence);

// How many queries a yearly budget supports at the given per-query epsilon.
double QueriesPerYear(double yearly_budget, double epsilon_per_query);

// Probability that a Laplace(scale) draw exceeds `bound` in absolute value.
double LaplaceTailProbability(double scale, double bound);

// Geometric-mechanism alpha for an integer-valued query: the TDS is
// released in money units of `unit_dollars`; sensitivity is in dollars.
double NoiseAlphaForRelease(double sensitivity_dollars, double epsilon, double unit_dollars);

}  // namespace dstress::finance

#endif  // SRC_FINANCE_UTILITY_H_
