#include "src/finance/utility.h"

#include <cmath>

#include "src/common/check.h"

namespace dstress::finance {

double EnSensitivity(double leverage_bound_r) {
  DSTRESS_CHECK(leverage_bound_r > 0);
  return 1.0 / leverage_bound_r;
}

double EgjSensitivity(double leverage_bound_r) {
  DSTRESS_CHECK(leverage_bound_r > 0);
  return 2.0 / leverage_bound_r;
}

double EpsilonForAccuracy(double sensitivity, double granularity_dollars,
                          double error_bound_dollars, double confidence) {
  DSTRESS_CHECK(confidence > 0 && confidence < 1);
  DSTRESS_CHECK(error_bound_dollars > 0);
  // One-sided Laplace tail P(Lap(b) > t) = 0.5*exp(-t/b) with b = T*s/eps,
  // the convention under which the paper's Section 4.5 obtains
  // eps >= ln(10)/10 ~ 0.23 for +-$200B at 95%.
  return sensitivity * granularity_dollars * std::log(0.5 / (1.0 - confidence)) /
         error_bound_dollars;
}

double QueriesPerYear(double yearly_budget, double epsilon_per_query) {
  DSTRESS_CHECK(epsilon_per_query > 0);
  return yearly_budget / epsilon_per_query;
}

double LaplaceTailProbability(double scale, double bound) {
  DSTRESS_CHECK(scale > 0 && bound >= 0);
  return std::exp(-bound / scale);
}

double NoiseAlphaForRelease(double sensitivity_dollars, double epsilon, double unit_dollars) {
  DSTRESS_CHECK(sensitivity_dollars > 0 && epsilon > 0 && unit_dollars > 0);
  double sensitivity_units = sensitivity_dollars / unit_dollars;
  return std::exp(-epsilon / sensitivity_units);
}

}  // namespace dstress::finance
