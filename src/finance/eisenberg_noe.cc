#include "src/finance/eisenberg_noe.h"

#include <algorithm>

#include "src/common/check.h"

namespace dstress::finance {

namespace {

using circuit::Builder;
using circuit::Wire;
using circuit::Word;

// State layout (all words value_bits wide):
//   [cash][totalDebt][prorate][debts[0..D)][credits[0..D)]
// debts are out-slot aligned, credits in-slot aligned. prorate is a Q0.F
// word stored at value width (2^F == fully solvent).
int StateBits(const EnProgramParams& p) {
  return (3 + 2 * p.degree_bound) * p.format.value_bits;
}

Word Slice(const Word& state, int index, int width) {
  return Word(state.begin() + static_cast<long>(index) * width,
              state.begin() + static_cast<long>(index + 1) * width);
}

}  // namespace

uint64_t EnInstance::TotalDebtOf(int v) const {
  uint64_t total = 0;
  for (uint64_t d : debts[v]) {
    total += d;
  }
  return total;
}

core::VertexProgram MakeEnProgram(const EnProgramParams& params) {
  DSTRESS_CHECK(params.degree_bound > 0);
  const int w = params.format.value_bits;
  const int f = params.format.frac_bits;
  DSTRESS_CHECK(f < w);

  core::VertexProgram program;
  program.state_bits = StateBits(params);
  program.message_bits = w;
  program.degree_bound = params.degree_bound;
  program.iterations = params.iterations;
  program.aggregate_bits = params.aggregate_bits;
  program.output_noise.alpha = params.noise_alpha;

  const int d_bound = params.degree_bound;
  const FixedPointFormat format = params.format;

  program.build_update = [w, f, d_bound, format](Builder& b, const Word& state,
                                                 const std::vector<Word>& in_msgs,
                                                 Word* new_state, std::vector<Word>* out_msgs) {
    Word cash = Slice(state, 0, w);
    Word total_debt = Slice(state, 1, w);
    std::vector<Word> debts(d_bound), credits(d_bound);
    for (int d = 0; d < d_bound; d++) {
      debts[d] = Slice(state, 3 + d, w);
      credits[d] = Slice(state, 3 + d_bound + d, w);
    }

    // liquid = cash + sum over in-slots of the payment actually received:
    // credits[d] - shortfall[d], floored at zero. A wide accumulator
    // prevents wraparound; the final value saturates at the format maximum.
    const int wide = w + 8;
    DSTRESS_CHECK(d_bound < (1 << 8));
    Word liquid_wide = b.ZeroExtend(cash, wide);
    for (int d = 0; d < d_bound; d++) {
      const Word& shortfall = in_msgs[d];
      Wire under = b.Ult(credits[d], shortfall);
      Word paid = b.MuxWord(under, b.ConstWord(0, w), b.Sub(credits[d], shortfall));
      liquid_wide = b.Add(liquid_wide, b.ZeroExtend(paid, wide));
    }
    Wire overflow = b.Zero();
    for (int bit = w; bit < wide; bit++) {
      overflow = b.Or(overflow, liquid_wide[bit]);
    }
    Word liquid = b.MuxWord(overflow, b.ConstWord(format.MaxValue(), w),
                            b.Truncate(liquid_wide, w));

    // prorate = min(1.0, liquid / totalDebt). DivFixed saturates when
    // totalDebt == 0, so debt-free banks come out fully solvent.
    Word ratio = b.DivFixed(liquid, total_debt, f);
    Word prorate = b.ClampMax(ratio, b.ConstWord(format.One(), w));

    // New state: constants carry through, prorate is replaced.
    *new_state = cash;
    new_state->insert(new_state->end(), total_debt.begin(), total_debt.end());
    new_state->insert(new_state->end(), prorate.begin(), prorate.end());
    for (int d = 0; d < d_bound; d++) {
      new_state->insert(new_state->end(), debts[d].begin(), debts[d].end());
    }
    for (int d = 0; d < d_bound; d++) {
      new_state->insert(new_state->end(), credits[d].begin(), credits[d].end());
    }

    // Outgoing shortfall notices: debts[d] * (1 - prorate).
    Word unpaid_frac = b.Sub(b.ConstWord(format.One(), w), prorate);
    out_msgs->clear();
    for (int d = 0; d < d_bound; d++) {
      Word product = b.Mul(b.ZeroExtend(debts[d], w + f), b.ZeroExtend(unpaid_frac, w + f));
      Word shortfall = b.Truncate(b.ShiftRightConst(product, f), w);
      out_msgs->push_back(shortfall);
    }
  };

  const int agg_bits = params.aggregate_bits;
  program.build_contribution = [w, f, agg_bits, format](Builder& b, const Word& state) -> Word {
    Word total_debt = Slice(state, 1, w);
    Word prorate = Slice(state, 2, w);
    Word unpaid_frac = b.Sub(b.ConstWord(format.One(), w), prorate);
    Word product = b.Mul(b.ZeroExtend(total_debt, w + f), b.ZeroExtend(unpaid_frac, w + f));
    Word shortfall = b.Truncate(b.ShiftRightConst(product, f), w);
    return b.ZeroExtend(shortfall, agg_bits);
  };

  return program;
}

std::vector<mpc::BitVector> MakeEnInitialStates(const EnInstance& instance,
                                                const EnProgramParams& params) {
  const graph::Graph& g = *instance.graph;
  const int w = params.format.value_bits;
  const int d_bound = params.degree_bound;
  std::vector<mpc::BitVector> states;
  states.reserve(g.num_vertices());
  for (int v = 0; v < g.num_vertices(); v++) {
    mpc::BitVector state;
    state.reserve(StateBits(params));
    mpc::AppendBits(&state, mpc::WordToBits(params.format.SaturateValue(instance.cash[v]), w));
    mpc::AppendBits(&state,
                    mpc::WordToBits(params.format.SaturateValue(instance.TotalDebtOf(v)), w));
    mpc::AppendBits(&state, mpc::WordToBits(params.format.One(), w));  // prorate = 1.0
    // Out-slot debts (padded to D with zeros).
    for (int d = 0; d < d_bound; d++) {
      uint64_t debt =
          d < g.OutDegree(v) ? params.format.SaturateValue(instance.debts[v][d]) : 0;
      mpc::AppendBits(&state, mpc::WordToBits(debt, w));
    }
    // In-slot credits: what the in-neighbor owes me.
    for (int d = 0; d < d_bound; d++) {
      uint64_t credit = 0;
      if (d < g.InDegree(v)) {
        int j = g.InNeighbors(v)[d];
        // Find my slot in j's out list.
        const auto& out = g.OutNeighbors(j);
        for (size_t s = 0; s < out.size(); s++) {
          if (out[s] == v) {
            credit = params.format.SaturateValue(instance.debts[j][s]);
            break;
          }
        }
      }
      mpc::AppendBits(&state, mpc::WordToBits(credit, w));
    }
    states.push_back(std::move(state));
  }
  return states;
}

uint64_t EnSolveFixed(const EnInstance& instance, const EnProgramParams& params,
                      std::vector<uint64_t>* prorate_out) {
  const graph::Graph& g = *instance.graph;
  const int n = g.num_vertices();
  const uint64_t one = params.format.One();
  const uint64_t max_value = params.format.MaxValue();

  std::vector<uint64_t> cash(n), total_debt(n);
  for (int v = 0; v < n; v++) {
    cash[v] = params.format.SaturateValue(instance.cash[v]);
    total_debt[v] = params.format.SaturateValue(instance.TotalDebtOf(v));
  }
  // shortfall_in[v][slot]: last received shortfall notice per in-slot.
  std::vector<std::vector<uint64_t>> shortfall_in(n);
  for (int v = 0; v < n; v++) {
    shortfall_in[v].assign(g.InDegree(v), 0);
  }
  std::vector<uint64_t> prorate(n, one);

  // Mirrors the runtime: iterations+1 computation steps with a
  // communication step between consecutive ones.
  for (int step = 0; step <= params.iterations; step++) {
    for (int v = 0; v < n; v++) {
      uint64_t liquid = cash[v];
      for (int d = 0; d < g.InDegree(v); d++) {
        int j = g.InNeighbors(v)[d];
        uint64_t credit = 0;
        const auto& out = g.OutNeighbors(j);
        for (size_t s = 0; s < out.size(); s++) {
          if (out[s] == v) {
            credit = params.format.SaturateValue(instance.debts[j][s]);
            break;
          }
        }
        uint64_t paid = shortfall_in[v][d] > credit ? 0 : credit - shortfall_in[v][d];
        liquid += paid;
      }
      liquid = std::min(liquid, max_value);
      uint64_t ratio = total_debt[v] == 0 ? one : (liquid << params.format.frac_bits) /
                                                      total_debt[v];
      prorate[v] = std::min(ratio, one);
    }
    if (step == params.iterations) {
      break;
    }
    // Communication: update shortfall notices.
    for (int v = 0; v < n; v++) {
      uint64_t unpaid_frac = one - prorate[v];
      for (int s = 0; s < g.OutDegree(v); s++) {
        int j = g.OutNeighbors(v)[s];
        uint64_t debt = params.format.SaturateValue(instance.debts[v][s]);
        uint64_t shortfall = (debt * unpaid_frac) >> params.format.frac_bits;
        // Locate v's slot among j's in-neighbors.
        const auto& in = g.InNeighbors(j);
        for (size_t slot = 0; slot < in.size(); slot++) {
          if (in[slot] == v) {
            shortfall_in[j][slot] = shortfall;
            break;
          }
        }
      }
    }
  }

  if (prorate_out != nullptr) {
    *prorate_out = prorate;
  }
  uint64_t tds = 0;
  for (int v = 0; v < n; v++) {
    tds += (total_debt[v] * (one - prorate[v])) >> params.format.frac_bits;
  }
  return tds;
}

double EnSolveExact(const EnInstance& instance, int iterations,
                    std::vector<double>* prorates_out) {
  const graph::Graph& g = *instance.graph;
  const int n = g.num_vertices();
  std::vector<double> total_debt(n, 0.0);
  for (int v = 0; v < n; v++) {
    total_debt[v] = static_cast<double>(instance.TotalDebtOf(v));
  }
  std::vector<double> p(n, 1.0);
  for (int it = 0; it <= iterations; it++) {
    std::vector<double> next(n, 1.0);
    for (int v = 0; v < n; v++) {
      double liquid = static_cast<double>(instance.cash[v]);
      for (int d = 0; d < g.InDegree(v); d++) {
        int j = g.InNeighbors(v)[d];
        const auto& out = g.OutNeighbors(j);
        for (size_t s = 0; s < out.size(); s++) {
          if (out[s] == v) {
            liquid += static_cast<double>(instance.debts[j][s]) * p[j];
            break;
          }
        }
      }
      next[v] = total_debt[v] == 0 ? 1.0 : std::min(1.0, liquid / total_debt[v]);
    }
    p = next;
  }
  if (prorates_out != nullptr) {
    *prorates_out = p;
  }
  double tds = 0;
  for (int v = 0; v < n; v++) {
    tds += total_debt[v] * (1.0 - p[v]);
  }
  return tds;
}

}  // namespace dstress::finance
