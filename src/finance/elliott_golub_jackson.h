// The Elliott–Golub–Jackson contagion model (paper §4.3, Figure 2b).
//
// Banks hold equity cross-holdings: insh[i][j] is the share of bank j's
// value held by bank i. A bank's valuation is its primitive ("base") assets
// plus the current value of its holdings; when the valuation falls below a
// bank-specific threshold, the bank is "distressed" and suffers an
// additional discontinuous penalty. Messages carry each bank's valuation
// *discount* relative to its initial valuation (a Q0.F fraction); the
// aggregate is the TDS of failed banks relative to their thresholds,
// Σ_i max(0, threshold_i − value_i).
//
// As the paper notes (§4.3), the fixpoint is not unique and convergence is
// monotone from above but not guaranteed within n rounds; a fixed iteration
// budget gives a sound approximation (Hemenway–Khanna).
#ifndef SRC_FINANCE_ELLIOTT_GOLUB_JACKSON_H_
#define SRC_FINANCE_ELLIOTT_GOLUB_JACKSON_H_

#include <vector>

#include "src/core/vertex_program.h"
#include "src/finance/fixed_point.h"
#include "src/graph/graph.h"
#include "src/mpc/sharing.h"

namespace dstress::finance {

// Instance data. insh[i] is aligned with graph.InNeighbors(i): insh[i][d]
// is the Q0.F share of in-neighbor d's equity held by i (an edge (j, i)
// means j's valuation discount flows to holder i).
struct EgjInstance {
  const graph::Graph* graph = nullptr;
  std::vector<uint64_t> base;       // [vertex] primitive assets, money units
  std::vector<uint64_t> orig_val;   // [vertex] initial valuation
  std::vector<uint64_t> threshold;  // [vertex] failure threshold
  std::vector<uint64_t> penalty;    // [vertex] failure penalty
  std::vector<std::vector<uint64_t>> insh;  // [vertex][in_slot], Q0.F
};

struct EgjProgramParams {
  FixedPointFormat format;
  int degree_bound = 0;
  int iterations = 0;
  double noise_alpha = 0.5;
  int aggregate_bits = 32;
};

core::VertexProgram MakeEgjProgram(const EgjProgramParams& params);

std::vector<mpc::BitVector> MakeEgjInitialStates(const EgjInstance& instance,
                                                 const EgjProgramParams& params);

// Host integer mirror of the circuit arithmetic; returns the unnoised TDS.
uint64_t EgjSolveFixed(const EgjInstance& instance, const EgjProgramParams& params,
                       std::vector<uint64_t>* values_out = nullptr);

// Double-precision reference (insh words are interpreted through `format`).
// Returns the TDS; values_out gets final valuations.
double EgjSolveExact(const EgjInstance& instance, int iterations,
                     const FixedPointFormat& format = FixedPointFormat{},
                     std::vector<double>* values_out = nullptr);

}  // namespace dstress::finance

#endif  // SRC_FINANCE_ELLIOTT_GOLUB_JACKSON_H_
