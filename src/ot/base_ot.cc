#include "src/ot/base_ot.h"

#include <atomic>
#include <cstring>

#include "src/common/check.h"
#include "src/crypto/ec.h"
#include "src/crypto/sha256.h"

namespace dstress::ot {

namespace {

using crypto::EcPoint;

std::atomic<uint64_t> g_base_ot_executions{0};

OtKey DeriveKey(uint32_t index, const EcPoint& point) {
  crypto::Sha256 h;
  uint8_t idx[4];
  std::memcpy(idx, &index, 4);
  h.Update(idx, 4);
  auto compressed = point.Compress();
  h.Update(compressed.data(), compressed.size());
  auto digest = h.Finish();
  OtKey key;
  std::memcpy(key.data(), digest.data(), key.size());
  return key;
}

}  // namespace

uint64_t BaseOtExecutionCount() { return g_base_ot_executions.load(std::memory_order_relaxed); }

BaseOtSenderOutput BaseOtSend(net::Transport* net, net::NodeId self, net::NodeId peer, int count,
                              crypto::ChaCha20Prg& prg, net::SessionId session) {
  using crypto::CurveOrder;
  using crypto::MulBase;
  g_base_ot_executions.fetch_add(1, std::memory_order_relaxed);

  crypto::U256 a = prg.NextScalar(CurveOrder());
  EcPoint big_a = MulBase(a);

  ByteWriter announce;
  auto a_compressed = big_a.Compress();
  announce.Raw(a_compressed.data(), a_compressed.size());
  net->Send(self, peer, announce.Take(), session);

  Bytes reply = net->Recv(self, peer, session);
  DSTRESS_CHECK(reply.size() == static_cast<size_t>(count) * EcPoint::kCompressedSize);

  BaseOtSenderOutput out;
  out.keys0.reserve(count);
  out.keys1.reserve(count);
  EcPoint neg_a = big_a.Neg();
  for (int i = 0; i < count; i++) {
    auto b_point = EcPoint::Decompress(reply.data() + static_cast<size_t>(i) * 33);
    DSTRESS_CHECK(b_point.has_value());
    EcPoint p0 = b_point->Mul(a);
    EcPoint p1 = b_point->Add(neg_a).Mul(a);
    out.keys0.push_back(DeriveKey(static_cast<uint32_t>(i), p0));
    out.keys1.push_back(DeriveKey(static_cast<uint32_t>(i), p1));
  }
  return out;
}

BaseOtReceiverOutput BaseOtRecv(net::Transport* net, net::NodeId self, net::NodeId peer,
                                const std::vector<bool>& choices, crypto::ChaCha20Prg& prg,
                                net::SessionId session) {
  using crypto::CurveOrder;
  using crypto::MulBase;
  g_base_ot_executions.fetch_add(1, std::memory_order_relaxed);

  Bytes announce = net->Recv(self, peer, session);
  DSTRESS_CHECK(announce.size() == EcPoint::kCompressedSize);
  auto big_a = EcPoint::Decompress(announce.data());
  DSTRESS_CHECK(big_a.has_value());

  ByteWriter reply;
  std::vector<crypto::U256> secrets;
  secrets.reserve(choices.size());
  for (bool choice : choices) {
    crypto::U256 b = prg.NextScalar(CurveOrder());
    secrets.push_back(b);
    EcPoint point = MulBase(b);
    if (choice) {
      point = point.Add(*big_a);
    }
    auto compressed = point.Compress();
    reply.Raw(compressed.data(), compressed.size());
  }
  net->Send(self, peer, reply.Take(), session);

  BaseOtReceiverOutput out;
  out.keys.reserve(choices.size());
  for (size_t i = 0; i < choices.size(); i++) {
    out.keys.push_back(DeriveKey(static_cast<uint32_t>(i), big_a->Mul(secrets[i])));
  }
  return out;
}

}  // namespace dstress::ot
